// Deterministic fault injection for the simulated cluster (docs/cluster.md,
// "Fault model"). A FaultPlan is data: a list of simulated-clock events that
// ClusterService::run replays through the event loop. All randomness a plan
// needs (storm synthesis, optional injection jitter) comes from the loop's
// dedicated fault stream (EventLoop::kFaultStream), so attaching a plan never
// perturbs the service-time jitter sequence — the determinism contract the
// empty-plan trace-hash pin in tests/test_cluster_faults.cpp enforces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace graphm::cluster {

enum class FaultKind : int {
  kCrash = 0,     // backend dies: all resources released, in-flight jobs fail
  kSlowdown = 1,  // cores + disks serve `factor`x slower for the window
  kPartition = 2, // network cut between node groups for the window
};

const char* fault_kind_name(FaultKind kind);

/// One injected fault, targeting one backend at one simulated instant.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  std::uint32_t backend = 0;
  std::uint64_t at_ns = 0;
  /// Window length; 0 means the fault never clears (permanent crash).
  std::uint64_t duration_ns = 0;
  /// kSlowdown: service-time multiplier while the window is open.
  double factor = 4.0;
  /// kPartition: fraction of the backend's nodes on the near side of the cut.
  double boundary = 0.5;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// The knobs of FaultPlan::storm — how violent a synthesized storm is.
struct StormConfig {
  std::uint64_t horizon_ns = 10'000'000;  // faults land uniformly in [0, horizon)
  std::size_t crashes = 1;
  std::size_t slowdowns = 2;
  std::size_t partitions = 1;
  /// Window bounds for recoverable faults (crash windows included: a crash
  /// with a window rejoins after it; permanent crashes need explicit events).
  std::uint64_t min_duration_ns = 500'000;
  std::uint64_t max_duration_ns = 3'000'000;
  double slowdown_factor = 4.0;
};

/// A replayable set of faults. Plans are plain data — build them by hand for
/// targeted tests or via storm() for chaos benches; either way the same plan
/// + seed reproduces the same trace bit for bit.
struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// Events ordered by (time, backend, kind) — the injection schedule. The
  /// sort is total over the fields that matter, so plans built in any order
  /// replay identically.
  [[nodiscard]] std::vector<FaultEvent> sorted() const;

  /// Synthesizes a random storm over `num_backends` backends. Draws from the
  /// fault stream derived off `seed` (EventLoop::kFaultStream), matching the
  /// stream a ClusterService run at the same seed uses — one root seed pins
  /// both the storm and its replay.
  static FaultPlan storm(std::uint64_t seed, std::size_t num_backends,
                         const StormConfig& config = {});
};

/// Health-tracking and retry policy for replica failover, on the simulated
/// clock. Defaults are sized for the microsecond-scale job mixes the tests
/// and benches run; services with longer jobs should stretch everything
/// proportionally.
struct FailoverConfig {
  /// Monitor cadence: backends "beat" by being observed alive at each tick.
  std::uint64_t heartbeat_interval_ns = 500'000;
  /// Silence before alive -> suspect (no routing change yet).
  std::uint64_t suspect_after_ns = 1'500'000;
  /// Silence before suspect -> dead: queue drains to replicas, dispatched
  /// jobs become failover retries.
  std::uint64_t dead_after_ns = 4'000'000;
  /// Capped exponential backoff between failover attempts for a job.
  std::uint64_t retry_backoff_ns = 1'000'000;
  std::uint64_t retry_backoff_cap_ns = 16'000'000;
  /// Failover attempts per job before it sheds (kFailoverShed).
  std::uint32_t retry_budget = 6;
};

}  // namespace graphm::cluster
