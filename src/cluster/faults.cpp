#include "cluster/faults.hpp"

#include <algorithm>

#include "cluster/event_loop.hpp"
#include "util/rng.hpp"

namespace graphm::cluster {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kSlowdown: return "slowdown";
    case FaultKind::kPartition: return "partition";
  }
  return "?";
}

std::vector<FaultEvent> FaultPlan::sorted() const {
  std::vector<FaultEvent> out = events;
  std::stable_sort(out.begin(), out.end(), [](const FaultEvent& a, const FaultEvent& b) {
    if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
    if (a.backend != b.backend) return a.backend < b.backend;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  });
  return out;
}

FaultPlan FaultPlan::storm(std::uint64_t seed, std::size_t num_backends,
                           const StormConfig& config) {
  FaultPlan plan;
  if (num_backends == 0) return plan;
  util::SplitMix64 rng(util::derive_stream_seed(seed, EventLoop::kFaultStream));
  const auto duration = [&rng, &config]() {
    if (config.max_duration_ns <= config.min_duration_ns) return config.min_duration_ns;
    return config.min_duration_ns +
           rng.next_below(config.max_duration_ns - config.min_duration_ns);
  };
  const auto emit = [&](FaultKind kind, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      FaultEvent event;
      event.kind = kind;
      event.backend = static_cast<std::uint32_t>(rng.next_below(num_backends));
      event.at_ns = config.horizon_ns == 0 ? 0 : rng.next_below(config.horizon_ns);
      event.duration_ns = duration();
      event.factor = config.slowdown_factor;
      event.boundary = 0.5;
      plan.events.push_back(event);
    }
  };
  emit(FaultKind::kCrash, config.crashes);
  emit(FaultKind::kSlowdown, config.slowdowns);
  emit(FaultKind::kPartition, config.partitions);
  return plan;
}

}  // namespace graphm::cluster
