// Message-level discrete-event simulation of the paper's distributed systems
// (PowerGraph and Chaos under the -S/-C/-M schemes) — the event-driven twin
// of the closed-form engines in src/dist/.
//
// The analytic engines divide aggregate work by aggregate bandwidth; here the
// same dist::JobProfile demand is *scheduled*: every node computes its own
// hashed edge share, every structure load and replica-sync round is a set of
// pairwise transfers on per-link bandwidth, every iteration ends at a
// superstep barrier, and concurrent jobs contend on the per-node FIFO disks,
// NICs and core complexes. Interference (-C streams seeking past each other),
// stragglers (hash imbalance x seeded service jitter) and sharing wins (-M's
// single structure movement) therefore emerge from messages instead of being
// priced by closed-form terms — the ROADMAP's "sweep message-level effects"
// item. The analytic engines remain the fast path; on single-bottleneck
// configurations with the noise knobs zeroed the DES agrees with them within
// a small tolerance (the anchor tests in tests/test_cluster.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/event_loop.hpp"
#include "cluster/resources.hpp"
#include "dist/cluster_model.hpp"

namespace graphm::cluster {

enum class Backend : int { kPowerGraph = 0, kChaos = 1 };

const char* backend_name(Backend backend);

/// DES noise/cost knobs. The defaults are bench-scale plausible; the anchor
/// tests zero them so the simulation collapses onto the analytic model.
struct DesConfig {
  std::uint64_t seed = 0x5EED;
  /// ± multiplicative service-time noise on compute tasks (seeded; disks and
  /// links stay deterministic so scheme orderings are never jitter artifacts).
  double compute_jitter = 0.02;
  /// Seek charged when a node's disk switches between different streams —
  /// what makes Chaos-C's interleaved full-graph streams slower than
  /// back-to-back (-S), the paper's Table-4 inversion, emerge. Must stay
  /// well above superstep_overhead_ns: -C hides per-job barrier overheads
  /// that -S serializes, and the seek is what it pays in exchange.
  std::uint64_t disk_switch_ns = 500'000;
  std::uint64_t net_latency_ns = 50'000;
  /// Per-superstep synchronization cost beyond the messages themselves
  /// (master coordination, barrier bookkeeping).
  std::uint64_t superstep_overhead_ns = 100'000;
  /// Uniform extra injection latency in [0, fault_jitter_ns) per fault event,
  /// drawn from the loop's fault stream (EventLoop::fault_rng). 0 draws
  /// nothing — plans land exactly at FaultEvent::at_ns.
  std::uint64_t fault_jitter_ns = 0;
  bool record_trace = false;
};

/// How a simulated job ended. kFailed is fault-injection territory: the
/// backend crashed under the job, so nothing about it completed — the
/// failover layer in ClusterService decides whether to retry it elsewhere.
enum class JobEnd : int {
  kCompleted = 0,  // ran to its final superstep barrier
  kAborted = 1,    // deadline abort at a superstep boundary
  kFailed = 2,     // backend crash killed it mid-flight
};

/// Deterministic vertex-cut placement: per-node edge shares under the same
/// hash replication_factor uses, plus that factor itself. The share spread is
/// the straggler profile — the slowest node of every superstep barrier.
struct Placement {
  std::vector<double> edge_share;   // fraction of the graph's edges per node
  double replication = 1.0;         // dist::replication_factor at this width

  [[nodiscard]] double max_share() const;
};

Placement vertex_cut_placement(const graph::EdgeList& graph, std::size_t num_nodes);

/// One simulated backend: `num_nodes` machines running one engine kind,
/// optionally sharing the graph structure across resident jobs (GraphM on the
/// backend). Used by des_run for the batch schemes and by ClusterService for
/// open-loop serving — start_job() is the only entry point either needs.
///
/// PowerGraph semantics: a job needs the structure resident (ingest: per-node
/// disk read + shuffle). Private mode ingests per job; shared mode ingests
/// once — later jobs attach, and the structure stays resident for future
/// arrivals. Supersteps: per-node compute then replica sync (r·|active|·Uv
/// bytes over the links) then barrier.
/// Chaos semantics: nothing resident; every superstep streams each node's
/// slice from its disk. Private mode streams per job (concurrent jobs seek
/// past each other); shared mode runs one stream loop all resident jobs ride,
/// attaching at superstep boundaries — the graph moves max(iterations) times
/// instead of sum(iterations).
class BackendSim {
 public:
  /// `placement` (optional) supplies a precomputed vertex-cut for
  /// (graph, num_nodes) — it must match both; nullptr computes it here.
  /// Placement is two full edge scans, so callers running many sims over the
  /// same graph/width (des_run's groups, node sweeps) should hoist it.
  BackendSim(EventLoop& loop, std::uint32_t backend_id, std::size_t num_nodes,
             const graph::EdgeList& graph, const dist::ClusterConfig& node_params,
             const DesConfig& des, Backend engine, bool shared_structure,
             const Placement* placement = nullptr);
  ~BackendSim();

  BackendSim(const BackendSim&) = delete;
  BackendSim& operator=(const BackendSim&) = delete;

  /// Fires exactly once per start_job with how the job ended.
  using CompletionFn = std::function<void(JobEnd end)>;

  /// Starts `profile` as job `job_id` at the loop's current time;
  /// `on_complete` fires at the job's final superstep barrier. `profile`
  /// must outlive the run. Infeasible placements (structure + job data
  /// exceeding node memory) still run but clear feasible().
  ///
  /// `abort_deadline_ns` (0 = never) mirrors JobService's
  /// cancel_past_deadline on the simulated clock: the job is aborted at the
  /// first superstep-barrier event past the deadline — it stops submitting
  /// disk/core/network work, releases any private structure replica it
  /// holds, and leaves the shared stream — so a missed-deadline job frees
  /// its reservations early instead of running to completion.
  void start_job(std::uint32_t job_id, const dist::JobProfile& profile,
                 CompletionFn on_complete, std::uint64_t abort_deadline_ns = 0);

  /// Crash fault: every resource forgets its reservations, the resident
  /// structure and shared-stream state are dropped, and every in-flight job
  /// ends with JobEnd::kFailed. Closures already on the event loop are
  /// invalidated by an epoch bump — they fire later and no-op, so nothing
  /// from before the crash can touch post-crash state. start_job while
  /// crashed fails the job immediately (a dispatch racing the crash).
  void crash();
  /// Ends the crash window: the next start_job re-ingests from scratch.
  void restart();
  [[nodiscard]] bool crashed() const { return crashed_; }
  /// Slowdown fault: service-time multiplier on every node's cores and disk;
  /// 1.0 (or anything <= 0) restores full speed.
  void set_slowdown(double factor);
  /// Partition fault: cuts the node network at floor(fraction * num_nodes),
  /// clamped so both sides are non-empty. No-op on single-node backends.
  void partition(double fraction);
  void heal_partition();
  /// Jobs killed by crashes (JobEnd::kFailed).
  [[nodiscard]] std::uint64_t jobs_failed() const { return jobs_failed_; }

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] double replication() const { return placement_.replication; }
  [[nodiscard]] bool feasible() const { return feasible_; }
  /// Times the structure moved: PowerGraph ingests or Chaos full-graph
  /// streams — the redundancy -M removes.
  [[nodiscard]] double structure_loads() const { return structure_loads_; }
  /// Jobs deadline-aborted at a superstep barrier (start_job's
  /// abort_deadline_ns).
  [[nodiscard]] std::uint64_t jobs_aborted() const { return jobs_aborted_; }
  [[nodiscard]] double disk_bytes() const;
  [[nodiscard]] double network_bytes() const { return network_.total_bytes(); }

 private:
  struct JobRun;

  void begin_ingest(JobRun* job);
  void begin_supersteps(JobRun* job);
  void private_superstep(JobRun* job);
  void attach_shared_stream(JobRun* job);
  void shared_superstep();
  void complete(JobRun* job, JobEnd end);
  /// True iff the job carries an abort deadline the simulated clock has
  /// passed. Checked only at superstep-barrier events.
  [[nodiscard]] bool past_deadline(const JobRun* job) const;
  void abort_job(JobRun* job);

  [[nodiscard]] std::uint64_t compute_ns(const dist::JobProfile& profile, std::size_t iter,
                                         std::size_t node);
  /// Re-evaluates the per-node resident footprint against node memory and
  /// latches feasible_ = false on overflow (Table 4's "-" rows).
  void check_memory();

  EventLoop& loop_;
  std::uint32_t backend_id_;
  dist::ClusterConfig node_params_;
  DesConfig des_;
  Backend engine_;
  bool shared_structure_;

  double structure_bytes_ = 0.0;
  double vertex_bytes_ = 0.0;  // |V| * Uv
  Placement placement_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
  Network network_;

  std::vector<std::unique_ptr<JobRun>> jobs_;
  std::size_t jobs_running_ = 0;
  bool feasible_ = true;
  double structure_loads_ = 0.0;
  std::uint64_t jobs_aborted_ = 0;
  std::uint64_t jobs_failed_ = 0;
  bool crashed_ = false;
  /// Bumped by crash(). Every closure the sim puts on the event loop
  /// captures the epoch it was created under and no-ops on mismatch — the
  /// cheap way to cancel all in-flight work without touching the queue.
  std::uint64_t epoch_ = 0;

  // PowerGraph shared-structure state.
  enum class Structure { kAbsent, kLoading, kResident };
  Structure structure_ = Structure::kAbsent;
  std::vector<JobRun*> ingest_waiters_;
  std::size_t resident_structures_ = 0;

  // Chaos shared-stream state.
  bool stream_running_ = false;
  std::uint64_t stream_supersteps_ = 0;
  std::vector<JobRun*> stream_attached_;
  std::vector<JobRun*> stream_pending_;
};

/// Result of one batch DES run — RunEstimate's fields plus the determinism
/// witnesses (event count, trace hash, optional full trace) and per-job
/// completion times.
struct DesEstimate {
  double seconds = 0.0;
  bool feasible = true;
  double structure_loads = 0.0;
  double network_gb = 0.0;
  double disk_gb = 0.0;
  std::uint64_t events = 0;
  std::uint64_t trace_hash = 0;
  std::vector<TraceRecord> trace;        // populated when DesConfig::record_trace
  std::vector<double> job_completion_s;  // indexed like `profiles`
};

/// The DES twin of dist::run_powergraph / dist::run_chaos: same profiles,
/// same ClusterConfig (num_groups slices the nodes exactly like the analytic
/// engines; groups are resource-disjoint), same scheme semantics — -S chains
/// job starts, -C starts every job at t=0 with private structures, -M starts
/// every job at t=0 against one shared structure/stream. `placement`
/// (optional) must be the vertex_cut_placement of (graph, nodes/groups);
/// node-sweep callers hoist it across the schemes of one width.
DesEstimate des_run(Backend backend, dist::DistScheme scheme,
                    const std::vector<dist::JobProfile>& profiles,
                    const graph::EdgeList& graph, const dist::ClusterConfig& cluster,
                    const DesConfig& config = {}, const Placement* placement = nullptr);

}  // namespace graphm::cluster
