// Converts the cluster subsystem's deterministic event traces
// (cluster::TraceRecord, stamped on the simulated clock) into obs trace
// events for the Chrome/Perfetto exporter — the piggyback path of the
// observability layer: the DES keeps emitting exactly the records the golden
// FNV hashes pin, and tracing is a pure post-run transformation of them.
//
// Mapping (one Perfetto track per backend, plus "backend N (slot S)"
// overflow lanes when a backend runs several jobs concurrently — 'X' spans
// on one track must nest, so simultaneous dispatches fan out over lanes):
//   kJobDispatched / kJobRedispatched  open a "job J" span on the backend's
//                                      track; kJobComplete / kJobAborted /
//                                      kJobFailed close it (the end state
//                                      suffixes the name). A failover
//                                      therefore renders as the span dying
//                                      on the crashed backend's track and
//                                      reappearing on the survivor's — the
//                                      crash -> drain -> redispatch
//                                      migration, visible as geometry.
//   kSuperstep / kIngestDone           instants on the backend's track.
//   fault + health codes (7..11)       instants ("fault crash", "suspect",
//                                      "dead", ...) on the backend's track.
//   kJobRejected / kJobShed            instants carrying the job id.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/event_loop.hpp"
#include "obs/trace_export.hpp"

namespace graphm::cluster {

/// Spans + instants derived from `records`, with one track per backend id
/// seen (track index == backend id for indices <= the max backend id, so
/// replicas line up predictably; overflow concurrency lanes are appended
/// after). Jobs still open at the trace's end are closed at the last
/// timestamp with an "(open)" suffix rather than dropped.
obs::TraceProcess des_trace_process(const std::vector<TraceRecord>& records,
                                    std::uint32_t pid = 2);

/// One-call exporter for benches/examples: converts and writes `path`.
bool export_des_trace(const std::string& path, const std::vector<TraceRecord>& records);

}  // namespace graphm::cluster
