// Simulated cluster resources: FIFO reservation servers for disks, NIC
// directions and core complexes, a pairwise cut-through network, and the
// countdown barriers supersteps synchronize on.
//
// Every server is a reservation queue on the event loop's clock: a request
// occupies [max(now, busy_until), +service) and its completion callback fires
// at the end. Requests are served in submission order, so queueing delays —
// concurrent jobs' streams interleaving on one disk, replica-sync bursts
// serializing on a NIC — *emerge* from message timing instead of being priced
// by the closed-form interference terms of src/dist/. The one non-FIFO touch
// is the disk's ownership switch cost: consecutive requests from different
// streams pay a seek, which is where Chaos-C's concurrent-stream inversion
// (Table 4) comes from.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/event_loop.hpp"

namespace graphm::cluster {

inline constexpr std::uint32_t kNoOwner = 0xFFFFFFFFu;

/// FIFO reservation server over service times. `switch_ns` is charged before
/// a request whose owner differs from the previous one (disk seek between
/// interleaved streams); 0 models a seek-free resource (cores, NICs).
class FifoServer {
 public:
  struct Reservation {
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
  };

  explicit FifoServer(EventLoop& loop, std::uint64_t switch_ns = 0)
      : loop_(&loop), switch_ns_(switch_ns) {}

  /// Reserves the server for `service_ns` on behalf of `owner`; `done` (may
  /// be empty) fires at the reservation's end.
  Reservation submit(std::uint32_t owner, std::uint64_t service_ns,
                     std::function<void()> done);

  [[nodiscard]] std::uint64_t busy_until_ns() const { return busy_until_ns_; }
  [[nodiscard]] std::uint64_t switches() const { return switches_; }
  /// Total reserved service time (excludes switch costs) — utilization probe.
  [[nodiscard]] std::uint64_t busy_ns() const { return busy_ns_; }

  /// Service-time multiplier for injected slowdowns: submissions while
  /// scale > 1 take scale× longer. Values <= 0 restore 1.0. The multiply is
  /// gated on scale != 1 so unfaulted runs take the exact pre-fault path.
  void set_scale(double scale) { scale_ = scale <= 0.0 ? 1.0 : scale; }
  [[nodiscard]] double scale() const { return scale_; }

  /// Forgets all reservations (crash: the backend's hardware restarts idle).
  /// Cumulative stats survive — a crash should not erase utilization history.
  void reset() {
    busy_until_ns_ = 0;
    last_owner_ = kNoOwner;
  }

 private:
  EventLoop* loop_;
  std::uint64_t switch_ns_;
  std::uint64_t busy_until_ns_ = 0;
  std::uint64_t busy_ns_ = 0;
  std::uint32_t last_owner_ = kNoOwner;
  std::uint64_t switches_ = 0;
  double scale_ = 1.0;
};

/// Byte-rate façade over FifoServer: disks and NIC directions.
class BandwidthServer {
 public:
  BandwidthServer(EventLoop& loop, double bytes_per_s, std::uint64_t switch_ns = 0)
      : server_(loop, switch_ns), bytes_per_s_(bytes_per_s) {}

  [[nodiscard]] std::uint64_t ns_for(double bytes) const {
    if (bytes <= 0.0 || bytes_per_s_ <= 0.0) return 0;
    return static_cast<std::uint64_t>(bytes / bytes_per_s_ * 1e9);
  }

  FifoServer::Reservation submit(std::uint32_t owner, double bytes,
                                 std::function<void()> done) {
    total_bytes_ += bytes;
    return server_.submit(owner, ns_for(bytes), std::move(done));
  }

  [[nodiscard]] double total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t switches() const { return server_.switches(); }
  [[nodiscard]] std::uint64_t busy_ns() const { return server_.busy_ns(); }

  void set_scale(double scale) { server_.set_scale(scale); }
  void reset() { server_.reset(); }

 private:
  FifoServer server_;
  double bytes_per_s_;
  double total_bytes_ = 0.0;
};

/// One simulated machine: a core complex (callers submit per-superstep tasks
/// whose service time is already divided by the node's core count — the node
/// fans a task across its cores, concurrent jobs' tasks serialize FIFO), one
/// disk with seek-on-switch, and a resident-memory counter for the
/// feasibility check (the "-" rows of Table 4).
struct SimNode {
  SimNode(EventLoop& loop, double disk_bytes_per_s, std::uint64_t disk_switch_ns)
      : cores(loop), disk(loop, disk_bytes_per_s, disk_switch_ns) {}

  FifoServer cores;
  BandwidthServer disk;
  std::uint64_t resident_bytes = 0;
};

/// Message-level pairwise network: per-node egress and ingress links (full
/// duplex, `bytes_per_s` each way) plus a propagation latency. Transfers are
/// cut-through: the head of a message reaches the receiver `latency_ns` after
/// the sender starts serializing, and the receiver's link reserves at arrival
/// — so a balanced shuffle costs one serialization, not two, and incast on a
/// receiver queues by arrival order.
class Network {
 public:
  Network(EventLoop& loop, std::size_t num_nodes, double bytes_per_s,
          std::uint64_t latency_ns);

  /// Moves `bytes` from `src` to `dst` on behalf of `owner`; `done` fires
  /// when the receiver has the full message. src == dst short-circuits to a
  /// latency-only hop (local delivery).
  void transfer(std::uint32_t src, std::uint32_t dst, std::uint32_t owner, double bytes,
                std::function<void()> done);

  [[nodiscard]] double total_bytes() const { return total_bytes_; }

  /// Splits the cluster into [0, boundary) vs [boundary, n): transfers that
  /// would cross the cut are held (in submission order) instead of delivered.
  /// Intra-group traffic flows normally — a partition slows barriers, it does
  /// not stop same-side work.
  void partition(std::size_t boundary);
  /// Ends the partition and releases held transfers in the order they were
  /// submitted, re-entering transfer() so they pay serialization from "now".
  void heal();
  /// Crash semantics: drops held transfers and forgets link reservations.
  void reset();
  [[nodiscard]] bool partitioned() const { return partitioned_; }
  [[nodiscard]] std::uint64_t held_transfers() const { return held_total_; }

 private:
  struct HeldTransfer {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint32_t owner = 0;
    double bytes = 0.0;
    std::function<void()> done;
  };

  EventLoop* loop_;
  std::uint64_t latency_ns_;
  std::vector<BandwidthServer> egress_;
  std::vector<BandwidthServer> ingress_;
  double total_bytes_ = 0.0;
  bool partitioned_ = false;
  std::size_t boundary_ = 0;
  std::vector<HeldTransfer> held_;
  std::uint64_t held_total_ = 0;
};

/// Fires `done` once `arrive()` has been called `count` times — the superstep
/// barrier. Heap-allocate (shared_ptr) and capture in per-node callbacks.
class Countdown {
 public:
  Countdown(std::size_t count, std::function<void()> done)
      : remaining_(count), done_(std::move(done)) {
    if (remaining_ == 0 && done_) done_();
  }

  void arrive() {
    if (remaining_ == 0) return;
    if (--remaining_ == 0 && done_) done_();
  }

 private:
  std::size_t remaining_;
  std::function<void()> done_;
};

}  // namespace graphm::cluster
