#include "cluster/resources.hpp"

namespace graphm::cluster {

FifoServer::Reservation FifoServer::submit(std::uint32_t owner, std::uint64_t service_ns,
                                           std::function<void()> done) {
  if (scale_ != 1.0) {
    service_ns = static_cast<std::uint64_t>(static_cast<double>(service_ns) * scale_);
  }
  std::uint64_t start = busy_until_ns_ > loop_->now_ns() ? busy_until_ns_ : loop_->now_ns();
  if (switch_ns_ != 0 && last_owner_ != kNoOwner && last_owner_ != owner) {
    start += switch_ns_;
    ++switches_;
  }
  last_owner_ = owner;
  const Reservation reservation{start, start + service_ns};
  busy_until_ns_ = reservation.end_ns;
  busy_ns_ += service_ns;
  if (done) loop_->schedule_at(reservation.end_ns, std::move(done));
  return reservation;
}

Network::Network(EventLoop& loop, std::size_t num_nodes, double bytes_per_s,
                 std::uint64_t latency_ns)
    : loop_(&loop), latency_ns_(latency_ns) {
  egress_.reserve(num_nodes);
  ingress_.reserve(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    egress_.emplace_back(loop, bytes_per_s);
    ingress_.emplace_back(loop, bytes_per_s);
  }
}

void Network::transfer(std::uint32_t src, std::uint32_t dst, std::uint32_t owner,
                       double bytes, std::function<void()> done) {
  if (src == dst) {
    if (done) loop_->schedule_after(latency_ns_, std::move(done));
    return;
  }
  if (partitioned_ && (src < boundary_) != (dst < boundary_)) {
    // Cross-cut message: park it. It pays its serialization when heal()
    // re-submits it, so total_bytes_ is charged exactly once, on delivery.
    held_.push_back(HeldTransfer{src, dst, owner, bytes, std::move(done)});
    ++held_total_;
    return;
  }
  total_bytes_ += bytes;
  const auto reservation = egress_[src].submit(owner, bytes, nullptr);
  // Cut-through: the message head arrives latency_ns after the sender starts
  // serializing; the receiver link reserves *at arrival* so two transfers
  // submitted out of time order still queue on the receiver by arrival order
  // (causality, not submission, decides incast ordering). With an idle
  // receiver the completion lands at egress_start + latency + serialization —
  // one serialization end to end, which is what lets a balanced shuffle match
  // the analytic aggregate-bandwidth term on single-bottleneck configs.
  loop_->schedule_at(
      reservation.start_ns + latency_ns_,
      [this, dst, owner, bytes, done = std::move(done)]() mutable {
        ingress_[dst].submit(owner, bytes, std::move(done));
      });
}

void Network::partition(std::size_t boundary) {
  partitioned_ = true;
  boundary_ = boundary;
}

void Network::heal() {
  partitioned_ = false;
  // Swap-out first: a released transfer re-enters transfer(), which must see
  // an empty hold queue (and could in principle re-hold under a nested
  // partition — not lose messages to iterator invalidation).
  std::vector<HeldTransfer> released;
  released.swap(held_);
  for (auto& t : released) {
    transfer(t.src, t.dst, t.owner, t.bytes, std::move(t.done));
  }
}

void Network::reset() {
  partitioned_ = false;
  held_.clear();  // in-flight messages die with the crashed backend
  for (auto& link : egress_) link.reset();
  for (auto& link : ingress_) link.reset();
}

}  // namespace graphm::cluster
