#include "cluster/trace_export.hpp"

#include <algorithm>
#include <map>

#include "cluster/faults.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace graphm::cluster {

namespace {

std::string fault_instant_name(const char* prefix, std::uint64_t detail) {
  const auto kind = static_cast<FaultKind>(detail);
  switch (kind) {
    case FaultKind::kCrash:
    case FaultKind::kSlowdown:
    case FaultKind::kPartition:
      return std::string(prefix) + " " + fault_kind_name(kind);
  }
  return prefix;
}

}  // namespace

obs::TraceProcess des_trace_process(const std::vector<TraceRecord>& records,
                                    std::uint32_t pid) {
  obs::TraceProcess process;
  process.pid = pid;
  process.name = "graphm cluster (simulated clock)";

  std::uint32_t max_backend = 0;
  std::uint64_t last_ns = 0;
  for (const TraceRecord& r : records) {
    max_backend = std::max(max_backend, r.actor);
    last_ns = std::max(last_ns, r.t_ns);
  }
  process.tracks.reserve(max_backend + 1);
  for (std::uint32_t b = 0; b <= max_backend; ++b) {
    process.tracks.push_back("backend " + std::to_string(b));
  }

  const auto instant_on = [&process](std::uint32_t track, const TraceRecord& r,
                                     std::string name) {
    obs::TraceEvent e;
    e.ts_ns = r.t_ns;
    e.track = track;
    e.job = r.job;
    e.detail = r.detail;
    e.phase = 'i';
    const std::size_t n = std::min(name.size(), obs::TraceEvent::kNameCapacity);
    name.copy(e.name, n);
    e.name[n] = '\0';
    process.events.push_back(e);
  };
  const auto instant = [&instant_on](const TraceRecord& r, std::string name) {
    instant_on(r.actor, r, std::move(name));
  };

  // Detector events render on one dedicated "slo" track (created only when
  // the detector actually fired) so the burn-rate signal sits right next to
  // the latency spans that caused it in the viewer.
  std::uint32_t slo_track = obs::Tracer::kNoTrack;
  const auto slo_track_id = [&process, &slo_track] {
    if (slo_track == obs::Tracer::kNoTrack) {
      slo_track = static_cast<std::uint32_t>(process.tracks.size());
      process.tracks.push_back("slo");
    }
    return slo_track;
  };

  // A backend dispatches up to max_concurrent jobs at once, and complete
  // ('X') spans on one Chrome track must nest, never partially overlap. Each
  // backend therefore owns a set of lanes: a dispatch takes the first free
  // lane (lane 0 is the "backend N" track itself; overflow lanes appear as
  // "backend N (slot S)" tracks) and its completion frees it. A lone job per
  // backend never leaves lane 0, so single-occupancy traces keep the plain
  // one-track-per-backend shape.
  struct Lane {
    std::uint32_t track = 0;
    bool busy = false;
  };
  std::vector<std::vector<Lane>> lanes(max_backend + 1);
  for (std::uint32_t b = 0; b <= max_backend; ++b) lanes[b].push_back({b, false});

  const auto acquire_lane = [&process, &lanes](std::uint32_t backend) {
    for (Lane& lane : lanes[backend]) {
      if (!lane.busy) {
        lane.busy = true;
        return lane.track;
      }
    }
    const auto track = static_cast<std::uint32_t>(process.tracks.size());
    process.tracks.push_back("backend " + std::to_string(backend) + " (slot " +
                             std::to_string(lanes[backend].size()) + ")");
    lanes[backend].push_back({track, true});
    return track;
  };

  // One open span per (job, dispatch episode): a redispatched job opens a
  // fresh span on its new backend, so failover shows as track migration.
  struct OpenSpan {
    std::uint64_t start_ns = 0;
    std::uint32_t backend = 0;
    std::uint32_t track = 0;
  };
  std::map<std::uint32_t, OpenSpan> open;

  const auto close = [&process, &open, &lanes](std::uint32_t job,
                                               std::uint64_t end_ns,
                                               const char* suffix) {
    const auto it = open.find(job);
    if (it == open.end()) return;
    obs::TraceEvent e;
    e.ts_ns = it->second.start_ns;
    e.dur_ns = end_ns >= it->second.start_ns ? end_ns - it->second.start_ns : 0;
    e.track = it->second.track;
    e.job = job;
    e.phase = 'X';
    const std::string name = "job " + std::to_string(job) + suffix;
    const std::size_t n = std::min(name.size(), obs::TraceEvent::kNameCapacity);
    name.copy(e.name, n);
    e.name[n] = '\0';
    process.events.push_back(e);
    for (Lane& lane : lanes[it->second.backend]) {
      if (lane.track == it->second.track) lane.busy = false;
    }
    open.erase(it);
  };

  for (const TraceRecord& r : records) {
    switch (r.code) {
      case TraceCode::kJobDispatched:
      case TraceCode::kJobRedispatched:
        // A dispatch while a span is open (shouldn't happen — terminal codes
        // precede redispatch) closes the stale one defensively.
        close(r.job, r.t_ns, " (preempted)");
        open[r.job] = {r.t_ns, r.actor, acquire_lane(r.actor)};
        if (r.code == TraceCode::kJobRedispatched) {
          instant(r, "redispatch job " + std::to_string(r.job));
        }
        break;
      case TraceCode::kJobComplete:
        close(r.job, r.t_ns, "");
        break;
      case TraceCode::kJobAborted:
        close(r.job, r.t_ns, " (aborted)");
        break;
      case TraceCode::kJobFailed:
        close(r.job, r.t_ns, " (failed)");
        break;
      case TraceCode::kJobShed:
        close(r.job, r.t_ns, " (shed)");
        instant(r, "shed job " + std::to_string(r.job));
        break;
      case TraceCode::kIngestDone:
        instant(r, "ingest-done");
        break;
      case TraceCode::kSuperstep:
        instant(r, "superstep");
        break;
      case TraceCode::kJobRejected:
        instant(r, "reject job " + std::to_string(r.job));
        break;
      case TraceCode::kFaultInjected:
        instant(r, fault_instant_name("fault", r.detail));
        break;
      case TraceCode::kFaultCleared:
        instant(r, fault_instant_name("clear", r.detail));
        break;
      case TraceCode::kBackendSuspect:
        instant(r, "suspect");
        break;
      case TraceCode::kBackendDead:
        instant(r, "dead (queue drains)");
        break;
      case TraceCode::kBackendRejoined:
        instant(r, "rejoin");
        break;
      case TraceCode::kJobSloShed:
        // Never dispatched, so no span to close — the shed is an instant on
        // the detector's track (detail carries the fast burn, milli).
        instant_on(slo_track_id(), r, "slo shed job " + std::to_string(r.job));
        break;
      case TraceCode::kSloStateChange:
        instant_on(slo_track_id(), r,
                   std::string("slo ") + obs::slo_state_name(static_cast<obs::SloState>(
                                             static_cast<int>(r.detail))));
        break;
    }
  }
  // Trace ended with jobs mid-flight (deadline'd sweeps, truncated runs):
  // close their spans at the horizon so the timeline still renders them.
  while (!open.empty()) {
    close(open.begin()->first, last_ns, " (open)");
  }
  return process;
}

bool export_des_trace(const std::string& path, const std::vector<TraceRecord>& records) {
  return obs::write_chrome_trace(path, {des_trace_process(records)});
}

}  // namespace graphm::cluster
