// ClusterService — distributed serving over the discrete-event cluster: the
// JobService story (open-loop arrivals, admission policies, SLO percentiles)
// played out on simulated PowerGraph/Chaos/GraphM-per-node backends instead
// of the local engine pool.
//
// The dataset is sharded by contiguous source ranges (balanced by edge
// count), one shard per backend; a submission names its dataset shard and is
// routed to the backend serving it (unnamed submissions go to the least
// loaded backend at arrival). Each backend applies its own admission policy —
// the same kImmediate / kBatchUntilK / kDeadline semantics as
// service::AdmissionQueue, re-expressed event-driven — ahead of a bounded
// dispatch-slot pool, and jobs then execute as message-level DES runs
// (BackendSim): GraphM-per-node backends (shared_structure = true) load or
// stream the shard once and attach later arrivals, private backends pay per
// job. Per backend the service reports the same queue-wait / stream / e2e
// p50-p95-p99 stats JobService emits, through the same service_stats
// machinery (service::LatencySummary / summarize_latency).
//
// Replication and failover (docs/cluster.md, "Fault model"): one shard may be
// served by N replica backends — reads load-balance to the least-loaded live
// replica. A heartbeat monitor on the simulated clock walks each backend
// through alive -> suspect -> dead; a dead backend's admission queue drains to
// its surviving replicas, dispatched-but-dead jobs retry with capped
// exponential backoff under a budget, and a job is shed
// (service::Outcome::kFailoverShed) only when no live replica remains or the
// budget runs out. run() optionally replays a FaultPlan (crash / slowdown /
// partition) against the cluster; an empty plan reproduces the fault-free
// trace bit for bit.
//
// Everything runs on the simulated clock: run() takes the full arrival
// schedule, plays it deterministically, and returns the per-backend report —
// same seed, same submissions, same fault plan, bit-identical trace.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include <memory>

#include "cluster/des_engine.hpp"
#include "cluster/faults.hpp"
#include "graph/edge_list.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "service/admission.hpp"
#include "service/service_stats.hpp"

namespace graphm::cluster {

/// "No backend" sentinel for JobReport::backend (never admitted anywhere).
inline constexpr std::uint32_t kNoBackend = 0xFFFFFFFFu;

/// One serving backend: a node slice running one engine kind over one dataset
/// shard, behind its own admission queue.
///
/// Replication: backends sharing a `dataset` name are replicas of one shard —
/// they serve identical data and any of them may take a read. Sharding is
/// either implicit (all total_shards == 0: distinct dataset names get one
/// shard each, in first-appearance order — the pre-replication behavior) or
/// explicit (total_shards > 0 on every backend, all agreeing: the graph is
/// cut into total_shards pieces and each backend serves shards[shard_id];
/// replicas must agree on shard_id).
struct BackendConfig {
  std::string dataset;  // routing key; shared by replicas of one shard
  Backend engine = Backend::kPowerGraph;
  /// GraphM on the backend: one resident structure / one shared stream that
  /// arrivals attach to. False prices the engine's native per-job loading.
  bool shared_structure = true;
  std::size_t num_nodes = 16;
  /// Dispatch slots: jobs running concurrently on the backend (its worker
  /// pool). Queued jobs wait under the admission policy.
  std::size_t max_concurrent = 8;
  std::size_t max_queue_depth = 1024;  // backpressure bound, JobService-style
  service::AdmissionPolicy policy = service::AdmissionPolicy::kImmediate;
  std::size_t batch_k = 4;
  std::uint64_t batch_max_wait_ns = 50'000'000;
  /// Mirror of ServiceConfig::cancel_past_deadline on the simulated clock:
  /// a job whose deadline passed while queued is shed at dispatch, and a
  /// dispatched job is aborted at its next superstep barrier (BackendSim
  /// frees its disk/core/structure reservations early). Off by default —
  /// deadlines then only feed EDF ordering and the miss counter.
  bool cancel_past_deadline = false;
  /// kAdaptive only: queue depth above which even deadlined arrivals shed
  /// while an objective is Critical (deadline-less arrivals always shed
  /// then). 0 = max_concurrent (one dispatch round of backlog).
  std::size_t adaptive_queue_quota = 0;
  /// Which replica of the shard this backend is (informational; echoed in
  /// BackendStats — routing load-balances regardless).
  std::uint32_t replica_id = 0;
  /// Explicit sharding (see the struct comment). All backends must agree on
  /// total_shards; 0 on every backend selects implicit by-dataset sharding.
  std::uint32_t shard_id = 0;
  std::uint32_t total_shards = 0;
};

struct ClusterServiceConfig {
  /// Per-node hardware (memory, disk/net bandwidth, cores). num_nodes and
  /// num_groups are ignored — BackendConfig::num_nodes sizes each backend.
  dist::ClusterConfig node;
  DesConfig des;
  /// Health tracking + retry/backoff policy for replica failover.
  FailoverConfig failover;
  /// SLO objectives tracked on the simulated clock (obs::SloMonitor, scoped
  /// per dataset). Non-empty turns tracking on for every run(); backends
  /// whose policy is service::AdmissionPolicy::kAdaptive additionally shed
  /// on the Critical signal. Backend health folds in as capacity: each
  /// declared-dead backend scales every burn by total/live, so a degraded
  /// cluster trips the detector earlier. Tracking alone emits no trace and
  /// draws no randomness — fault-free golden traces stay bit-identical
  /// until an objective actually fires.
  std::vector<obs::SloSpec> objectives;
};

/// One JobService-style submission on the simulated clock.
struct Submission {
  algos::JobSpec spec;
  std::uint64_t arrival_ns = 0;
  /// Absolute sim-clock deadline; service::kNoDeadline (0) = none. Derive
  /// real deadlines with service::deadline_from(arrival_ns, slo_ns) so a
  /// time-zero deadline can never collapse into the sentinel.
  std::uint64_t deadline_ns = service::kNoDeadline;
  std::string dataset;  // empty = route to the least-loaded backend
};

/// Per-backend SLO report — the ServiceStats view of one simulated backend.
struct BackendStats {
  std::string dataset;
  Backend engine = Backend::kPowerGraph;
  std::uint32_t shard = 0;       // shard index this backend serves
  std::uint32_t replica_id = 0;  // echo of BackendConfig::replica_id
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;  // admission backpressure
  std::uint64_t completed = 0;
  std::uint64_t deadline_misses = 0;
  /// Jobs cancelled under cancel_past_deadline: shed at dispatch or aborted
  /// mid-run at a superstep barrier. Every abort is also a deadline miss;
  /// aborted jobs are excluded from `completed` and the latency summaries.
  std::uint64_t deadline_aborts = 0;
  /// Fault-side counters: jobs this backend lost to a crash, failover jobs
  /// re-admitted here from a dead sibling, jobs that gave up while this was
  /// their last backend, faults that landed here (crashes included).
  std::uint64_t failed = 0;
  std::uint64_t redispatched_in = 0;
  std::uint64_t failover_shed = 0;
  /// Arrivals shed by adaptive admission while the burn signal was Critical
  /// (service::Outcome::kSloShed).
  std::uint64_t slo_shed = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t crashes = 0;

  service::LatencySummary queue_wait;   // dispatch − arrival
  service::LatencySummary stream_time;  // completion − dispatch
  service::LatencySummary e2e;          // completion − arrival

  double sustained_jobs_per_s = 0.0;  // completed over [first arrival, last completion]
  double structure_loads = 0.0;
  double network_gb = 0.0;
  double disk_gb = 0.0;
  double replication = 1.0;
  bool feasible = true;
};

/// Per-job terminal record of one run(). Every submission produces exactly
/// one report — the conservation law (submissions == sum over outcomes) the
/// fault tests pin.
struct JobReport {
  std::uint32_t job = 0;  // submission index
  service::Outcome outcome = service::Outcome::kCompleted;
  std::uint32_t shard = 0;             // shard the job was routed against
  std::uint32_t backend = kNoBackend;  // last backend it touched
  /// Failover attempts consumed (0 = never failed over).
  std::uint32_t attempts = 0;
  std::uint64_t completion_ns = 0;  // sim time the terminal state latched
};

/// Whole-run fault/failover counters.
struct FaultStats {
  std::uint64_t faults_injected = 0;
  std::uint64_t crashes = 0;
  std::uint64_t slowdowns = 0;
  std::uint64_t partitions = 0;
  std::uint64_t suspects = 0;   // alive -> suspect transitions
  std::uint64_t failovers = 0;  // suspect -> dead transitions (queue drains)
  std::uint64_t rejoins = 0;    // dead -> alive transitions
  std::uint64_t redispatched_jobs = 0;
  std::uint64_t retries = 0;  // backoff waits scheduled
  std::uint64_t failover_shed = 0;
  std::uint64_t slo_shed = 0;  // adaptive-admission sheds (whole run)
};

/// Shards `graph` into `shards` edge lists by contiguous source ranges,
/// balanced by edge count. Every shard keeps the full vertex id space so any
/// root remains addressable; shard i holds the edges whose source falls in
/// its range (the grid's partition rows, coarsened).
std::vector<graph::EdgeList> shard_by_source(const graph::EdgeList& graph,
                                             std::size_t shards);

class ClusterService {
 public:
  /// Shards `graph` per the backends' shard configuration (see BackendConfig)
  /// and prepares the routing table. Dataset names must be non-empty;
  /// backends sharing a name are replicas and must serve the same shard.
  ClusterService(const graph::EdgeList& graph, std::vector<BackendConfig> backends,
                 ClusterServiceConfig config);

  [[nodiscard]] std::size_t num_backends() const { return backends_.size(); }
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  /// The shard data backend `backend` serves (replicas return the same list).
  [[nodiscard]] const graph::EdgeList& shard(std::size_t backend) const {
    return shards_[backend_shard_[backend]];
  }

  /// Plays the full arrival schedule on a fresh simulated cluster —
  /// optionally under a fault plan — and returns per-backend stats.
  /// Deterministic in (submissions, config seed, faults); callable
  /// repeatedly, each run independent; an empty plan is trace-identical to
  /// the pre-fault service. Submissions naming an unknown dataset are
  /// dropped and counted in unroutable().
  std::vector<BackendStats> run(const std::vector<Submission>& submissions,
                                const FaultPlan& faults = {});

  [[nodiscard]] std::uint64_t unroutable() const { return unroutable_; }
  /// Determinism witnesses of the last run().
  [[nodiscard]] std::uint64_t last_trace_hash() const { return last_trace_hash_; }
  [[nodiscard]] std::uint64_t last_events() const { return last_events_; }
  [[nodiscard]] const std::vector<TraceRecord>& last_trace() const { return last_trace_; }
  /// Terminal record per submission of the last run(), in submission order.
  [[nodiscard]] const std::vector<JobReport>& last_job_reports() const {
    return last_job_reports_;
  }
  [[nodiscard]] const FaultStats& last_fault_stats() const { return last_fault_stats_; }
  /// The last run's SLO monitor (nullptr before the first run or when no
  /// objectives are configured) — cached evals, per-scope sheds.
  [[nodiscard]] const obs::SloMonitor* last_slo() const { return last_slo_.get(); }

  /// Re-homes the last run's fault/failover counters and `stats` (the
  /// vector run() returned) into `registry`: whole-run totals under
  /// `graphm.cluster.*`, per-backend counters under
  /// `graphm.cluster.backend<i>.*` (publish-style, idempotent).
  void publish_metrics(obs::Registry& registry,
                       const std::vector<BackendStats>& stats) const;

 private:
  /// One dist::JobProfile per distinct spec a shard has served (replicas of
  /// a shard share the cache). Persisted across run() calls (profiles depend
  /// only on the shard); deque keeps addresses stable for in-flight
  /// references.
  const dist::JobProfile& profile_for(std::size_t shard, const algos::JobSpec& spec);

  std::vector<BackendConfig> backends_;
  ClusterServiceConfig config_;
  std::vector<graph::EdgeList> shards_;
  /// backend index -> shard index it serves.
  std::vector<std::size_t> backend_shard_;
  /// shard index -> backends serving it (its replica set), in config order.
  std::vector<std::vector<std::size_t>> shard_replicas_;
  std::vector<std::deque<dist::JobProfile>> profile_cache_;  // per shard
  /// Vertex-cut per backend (shard × node count are fixed at construction),
  /// computed lazily on the first run() and reused — placement is two full
  /// shard scans. Empty edge_share = not yet computed.
  std::vector<Placement> placement_cache_;

  std::uint64_t unroutable_ = 0;
  std::unique_ptr<obs::SloMonitor> last_slo_;
  std::uint64_t last_trace_hash_ = 0;
  std::uint64_t last_events_ = 0;
  std::vector<TraceRecord> last_trace_;
  std::vector<JobReport> last_job_reports_;
  FaultStats last_fault_stats_;
};

}  // namespace graphm::cluster
