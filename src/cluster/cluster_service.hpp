// ClusterService — distributed serving over the discrete-event cluster: the
// JobService story (open-loop arrivals, admission policies, SLO percentiles)
// played out on simulated PowerGraph/Chaos/GraphM-per-node backends instead
// of the local engine pool.
//
// The dataset is sharded by contiguous source ranges (balanced by edge
// count), one shard per backend; a submission names its dataset shard and is
// routed to the backend serving it (unnamed submissions go to the least
// loaded backend at arrival). Each backend applies its own admission policy —
// the same kImmediate / kBatchUntilK / kDeadline semantics as
// service::AdmissionQueue, re-expressed event-driven — ahead of a bounded
// dispatch-slot pool, and jobs then execute as message-level DES runs
// (BackendSim): GraphM-per-node backends (shared_structure = true) load or
// stream the shard once and attach later arrivals, private backends pay per
// job. Per backend the service reports the same queue-wait / stream / e2e
// p50-p95-p99 stats JobService emits, through the same service_stats
// machinery (service::LatencySummary / summarize_latency).
//
// Everything runs on the simulated clock: run() takes the full arrival
// schedule, plays it deterministically, and returns the per-backend report —
// same seed, same submissions, bit-identical trace.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "cluster/des_engine.hpp"
#include "graph/edge_list.hpp"
#include "service/admission.hpp"
#include "service/service_stats.hpp"

namespace graphm::cluster {

/// One serving backend: a node slice running one engine kind over one dataset
/// shard, behind its own admission queue.
struct BackendConfig {
  std::string dataset;  // routing key; must be unique across backends
  Backend engine = Backend::kPowerGraph;
  /// GraphM on the backend: one resident structure / one shared stream that
  /// arrivals attach to. False prices the engine's native per-job loading.
  bool shared_structure = true;
  std::size_t num_nodes = 16;
  /// Dispatch slots: jobs running concurrently on the backend (its worker
  /// pool). Queued jobs wait under the admission policy.
  std::size_t max_concurrent = 8;
  std::size_t max_queue_depth = 1024;  // backpressure bound, JobService-style
  service::AdmissionPolicy policy = service::AdmissionPolicy::kImmediate;
  std::size_t batch_k = 4;
  std::uint64_t batch_max_wait_ns = 50'000'000;
  /// Mirror of ServiceConfig::cancel_past_deadline on the simulated clock:
  /// a job whose deadline passed while queued is shed at dispatch, and a
  /// dispatched job is aborted at its next superstep barrier (BackendSim
  /// frees its disk/core/structure reservations early). Off by default —
  /// deadlines then only feed EDF ordering and the miss counter.
  bool cancel_past_deadline = false;
};

struct ClusterServiceConfig {
  /// Per-node hardware (memory, disk/net bandwidth, cores). num_nodes and
  /// num_groups are ignored — BackendConfig::num_nodes sizes each backend.
  dist::ClusterConfig node;
  DesConfig des;
};

/// One JobService-style submission on the simulated clock.
struct Submission {
  algos::JobSpec spec;
  std::uint64_t arrival_ns = 0;
  /// Absolute sim-clock deadline; service::kNoDeadline (0) = none. Derive
  /// real deadlines with service::deadline_from(arrival_ns, slo_ns) so a
  /// time-zero deadline can never collapse into the sentinel.
  std::uint64_t deadline_ns = service::kNoDeadline;
  std::string dataset;  // empty = route to the least-loaded backend
};

/// Per-backend SLO report — the ServiceStats view of one simulated backend.
struct BackendStats {
  std::string dataset;
  Backend engine = Backend::kPowerGraph;
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;  // admission backpressure
  std::uint64_t completed = 0;
  std::uint64_t deadline_misses = 0;
  /// Jobs cancelled under cancel_past_deadline: shed at dispatch or aborted
  /// mid-run at a superstep barrier. Every abort is also a deadline miss;
  /// aborted jobs are excluded from `completed` and the latency summaries.
  std::uint64_t deadline_aborts = 0;

  service::LatencySummary queue_wait;   // dispatch − arrival
  service::LatencySummary stream_time;  // completion − dispatch
  service::LatencySummary e2e;          // completion − arrival

  double sustained_jobs_per_s = 0.0;  // completed over [first arrival, last completion]
  double structure_loads = 0.0;
  double network_gb = 0.0;
  double disk_gb = 0.0;
  double replication = 1.0;
  bool feasible = true;
};

/// Shards `graph` into `shards` edge lists by contiguous source ranges,
/// balanced by edge count. Every shard keeps the full vertex id space so any
/// root remains addressable; shard i holds the edges whose source falls in
/// its range (the grid's partition rows, coarsened).
std::vector<graph::EdgeList> shard_by_source(const graph::EdgeList& graph,
                                             std::size_t shards);

class ClusterService {
 public:
  /// Shards `graph` across `backends` in order (one shard per backend) and
  /// prepares the routing table. Backend dataset names must be non-empty and
  /// unique.
  ClusterService(const graph::EdgeList& graph, std::vector<BackendConfig> backends,
                 ClusterServiceConfig config);

  [[nodiscard]] std::size_t num_backends() const { return backends_.size(); }
  [[nodiscard]] const graph::EdgeList& shard(std::size_t backend) const {
    return shards_[backend];
  }

  /// Plays the full arrival schedule on a fresh simulated cluster and
  /// returns per-backend stats. Deterministic in (submissions, config seed);
  /// callable repeatedly, each run independent. Submissions naming an
  /// unknown dataset are dropped and counted in unroutable().
  std::vector<BackendStats> run(const std::vector<Submission>& submissions);

  [[nodiscard]] std::uint64_t unroutable() const { return unroutable_; }
  /// Determinism witnesses of the last run().
  [[nodiscard]] std::uint64_t last_trace_hash() const { return last_trace_hash_; }
  [[nodiscard]] std::uint64_t last_events() const { return last_events_; }
  [[nodiscard]] const std::vector<TraceRecord>& last_trace() const { return last_trace_; }

 private:
  /// One dist::JobProfile per distinct spec a backend has served, measured
  /// against its shard. Persisted across run() calls (profiles depend only on
  /// the shard); deque keeps addresses stable for in-flight references.
  const dist::JobProfile& profile_for(std::size_t backend, const algos::JobSpec& spec);

  std::vector<BackendConfig> backends_;
  ClusterServiceConfig config_;
  std::vector<graph::EdgeList> shards_;
  std::vector<std::deque<dist::JobProfile>> profile_cache_;
  /// Vertex-cut per backend (shard × node count are fixed at construction),
  /// computed lazily on the first run() and reused — placement is two full
  /// shard scans. Empty edge_share = not yet computed.
  std::vector<Placement> placement_cache_;

  std::uint64_t unroutable_ = 0;
  std::uint64_t last_trace_hash_ = 0;
  std::uint64_t last_events_ = 0;
  std::vector<TraceRecord> last_trace_;
};

}  // namespace graphm::cluster
