// Deterministic discrete-event core of the cluster subsystem (src/cluster/).
//
// Everything the simulated cluster does — disk reads, pairwise network
// transfers, per-node compute, superstep barriers, job arrivals — is an event
// on one simulated clock. Events fire in (time, schedule order): ties break
// by the order schedule_*() was called, which is itself a pure function of
// earlier events, so a run is a deterministic function of (inputs, seed).
// There is no wall clock, no threads, and no address-dependent state anywhere
// in the loop, which is what makes the event trace reproducible bit for bit —
// the property tests/test_cluster.cpp pins and docs/cluster.md documents as
// the determinism contract.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/rng.hpp"

namespace graphm::cluster {

/// What a trace record describes. Records are emitted at coarse simulation
/// milestones (not per message), so a trace stays small while still capturing
/// the full ordering and timing of the run.
enum class TraceCode : std::uint32_t {
  kJobDispatched = 1,  // job handed to a backend (detail: backend id)
  kIngestDone = 2,     // structure resident on the backend (detail: loads so far)
  kSuperstep = 3,      // a superstep barrier completed (detail: iteration)
  kJobComplete = 4,    // job's final barrier (detail: completion time ns)
  kJobRejected = 5,    // admission backpressure (detail: queue depth)
  kJobAborted = 6,     // deadline abort at a superstep barrier (detail: deadline ns)
  // Fault-injection and failover milestones (src/cluster/faults.*). None of
  // these fire under an empty FaultPlan, which is what keeps fault-free
  // traces bit-identical to the pre-fault subsystem.
  kFaultInjected = 7,    // fault landed on a backend (detail: FaultKind)
  kFaultCleared = 8,     // fault window ended (detail: FaultKind)
  kBackendSuspect = 9,   // heartbeats missed (detail: ns since last beat)
  kBackendDead = 10,     // declared dead; queue drains (detail: jobs drained)
  kBackendRejoined = 11, // heartbeats resumed after the fault window
  kJobFailed = 12,       // job died with its backend (detail: sim epoch)
  kJobRedispatched = 13, // failover re-submission (actor: new backend, detail: attempt)
  kJobShed = 14,         // failover gave up: replicas down / budget out (detail: attempts)
  // Closed-loop SLO milestones (obs::SloMonitor on the simulated clock,
  // docs/observability.md "SLOs and error budgets"). Neither fires while
  // every objective stays Healthy, so SLO *tracking* alone keeps traces
  // bit-identical — only the detector acting changes the hash.
  kJobSloShed = 15,      // adaptive admission shed it (detail: fast burn, milli)
  kSloStateChange = 16,  // tri-state signal moved (detail: new SloState)
};

/// Human-readable code label (the failover example prints raw traces).
const char* trace_code_name(TraceCode code);

/// One entry of the reproducible event trace. POD with defaulted equality:
/// two runs agree iff their record vectors compare equal.
struct TraceRecord {
  std::uint64_t t_ns = 0;
  TraceCode code{};
  std::uint32_t actor = 0;  // backend or node id, code-specific
  std::uint32_t job = 0;
  std::uint64_t detail = 0;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

class EventLoop {
 public:
  /// Named RNG streams behind the loop's one seeded root. Stream ids feed
  /// util::derive_stream_seed: kJitter (0) is the root itself, so the jitter
  /// draw sequence is bit-identical to the pre-split loop; kFaults is an
  /// independent sibling, so injecting a fault plan never perturbs the
  /// jitter sequence (and vice versa).
  static constexpr std::uint64_t kJitterStream = 0;
  static constexpr std::uint64_t kFaultStream = 1;

  /// `seed` is the root of the loop's named RNG streams (service-time
  /// jitter, fault timing); `record_trace` keeps the full TraceRecord vector
  /// (the FNV hash is accumulated regardless, so cheap determinism checks
  /// never pay for storage).
  explicit EventLoop(std::uint64_t seed, bool record_trace = false)
      : rng_(util::derive_stream_seed(seed, kJitterStream)),
        fault_rng_(util::derive_stream_seed(seed, kFaultStream)),
        record_trace_(record_trace) {}

  [[nodiscard]] std::uint64_t now_ns() const { return now_ns_; }

  void schedule_at(std::uint64_t t_ns, std::function<void()> fn);
  void schedule_after(std::uint64_t delay_ns, std::function<void()> fn) {
    schedule_at(now_ns_ + delay_ns, std::move(fn));
  }

  /// Fires events in (time, schedule order) until the queue is empty. The
  /// clock never goes backwards: events scheduled in the past fire "now".
  void run();

  [[nodiscard]] util::SplitMix64& rng() { return rng_; }
  /// The fault subsystem's own stream (fault timing noise, storm synthesis
  /// riding the same root). Drawing from it never advances rng().
  [[nodiscard]] util::SplitMix64& fault_rng() { return fault_rng_; }

  /// `base_ns` stretched by a uniform draw from [1-fraction, 1+fraction) —
  /// the seeded service-time noise that makes stragglers emerge without
  /// breaking reproducibility. fraction <= 0 returns base_ns and consumes no
  /// randomness (the analytic-anchor configuration).
  [[nodiscard]] std::uint64_t jittered(std::uint64_t base_ns, double fraction) {
    if (fraction <= 0.0 || base_ns == 0) return base_ns;
    const double factor = rng_.next_double(1.0 - fraction, 1.0 + fraction);
    return static_cast<std::uint64_t>(static_cast<double>(base_ns) * factor);
  }

  void trace(TraceCode code, std::uint32_t actor, std::uint32_t job, std::uint64_t detail);

  /// FNV-1a over every trace record, accumulated as they are emitted. Two
  /// runs with equal hashes (and equal record counts) took the same path at
  /// the same times.
  [[nodiscard]] std::uint64_t trace_hash() const { return trace_hash_; }
  [[nodiscard]] const std::vector<TraceRecord>& trace_records() const { return trace_records_; }
  /// Moves the trace out (for callers that outlive the loop — a traced sweep
  /// is easily 10^5+ records, not worth deep-copying off a dying loop).
  [[nodiscard]] std::vector<TraceRecord> take_trace_records() {
    return std::move(trace_records_);
  }
  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    std::uint64_t t_ns = 0;
    std::uint64_t seq = 0;  // total order among equal-time events
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t_ns != b.t_ns) return a.t_ns > b.t_ns;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t now_ns_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  util::SplitMix64 rng_;        // kJitterStream
  util::SplitMix64 fault_rng_;  // kFaultStream

  bool record_trace_ = false;
  std::uint64_t trace_hash_ = 1469598103934665603ULL;  // FNV-1a offset basis
  std::vector<TraceRecord> trace_records_;
};

}  // namespace graphm::cluster
