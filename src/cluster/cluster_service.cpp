#include "cluster/cluster_service.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <memory>

namespace graphm::cluster {

std::vector<graph::EdgeList> shard_by_source(const graph::EdgeList& graph,
                                             std::size_t shards) {
  const std::size_t count = std::max<std::size_t>(1, shards);
  std::vector<graph::EdgeList> result;
  result.reserve(count);
  if (count == 1) {
    result.emplace_back(graph.num_vertices(), graph.edges());
    return result;
  }
  // Prefix out-degrees give the contiguous source ranges with ~equal edge
  // counts; every shard keeps the full vertex space so roots stay valid.
  std::vector<std::uint64_t> degree(graph.num_vertices() + 1, 0);
  for (const graph::Edge& e : graph.edges()) ++degree[e.src + 1];
  for (std::size_t v = 1; v < degree.size(); ++v) degree[v] += degree[v - 1];

  std::vector<graph::VertexId> bounds;  // shard s covers [bounds[s], bounds[s+1])
  bounds.push_back(0);
  for (std::size_t s = 1; s < count; ++s) {
    const std::uint64_t target = graph.num_edges() * s / count;
    const auto it = std::lower_bound(degree.begin(), degree.end(), target);
    auto boundary = static_cast<graph::VertexId>(it - degree.begin());
    boundary = std::max(boundary, bounds.back());  // ranges stay monotone
    bounds.push_back(std::min<graph::VertexId>(boundary, graph.num_vertices()));
  }
  bounds.push_back(graph.num_vertices());

  // One bucketing pass: the prefix degrees give each shard's exact edge
  // count up front, and a binary search on the (sorted) bounds places each
  // edge. Duplicate bounds (clamped empty shards) resolve to the last shard
  // whose range actually contains the source.
  std::vector<std::vector<graph::Edge>> buckets(count);
  for (std::size_t s = 0; s < count; ++s) {
    buckets[s].reserve(degree[bounds[s + 1]] - degree[bounds[s]]);
  }
  for (const graph::Edge& e : graph.edges()) {
    const auto it = std::upper_bound(bounds.begin(), bounds.end(), e.src);
    buckets[static_cast<std::size_t>(it - bounds.begin()) - 1].push_back(e);
  }
  for (std::size_t s = 0; s < count; ++s) {
    result.emplace_back(graph.num_vertices(), std::move(buckets[s]));
  }
  return result;
}

ClusterService::ClusterService(const graph::EdgeList& graph,
                               std::vector<BackendConfig> backends,
                               ClusterServiceConfig config)
    : backends_(std::move(backends)), config_(std::move(config)) {
  assert(!backends_.empty());
  // Shard mapping — implicit (one shard per distinct dataset name, in
  // first-appearance order: the pre-replication layout, bit-identical for
  // unique-name configs) or explicit (shard_id / total_shards).
  bool explicit_shards = false;
  for (const BackendConfig& backend : backends_) {
    if (backend.total_shards != 0) explicit_shards = true;
  }
  std::size_t num_shards = 0;
  backend_shard_.resize(backends_.size());
  if (explicit_shards) {
    num_shards = backends_.front().total_shards;
    for (std::size_t b = 0; b < backends_.size(); ++b) {
      assert(backends_[b].total_shards == num_shards);
      assert(backends_[b].shard_id < num_shards);
      backend_shard_[b] = backends_[b].shard_id;
    }
  } else {
    std::vector<std::string> names;
    for (std::size_t b = 0; b < backends_.size(); ++b) {
      std::size_t index = names.size();
      for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == backends_[b].dataset) {
          index = i;
          break;
        }
      }
      if (index == names.size()) names.push_back(backends_[b].dataset);
      backend_shard_[b] = index;
    }
    num_shards = names.size();
  }
  shard_replicas_.resize(num_shards);
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    shard_replicas_[backend_shard_[b]].push_back(b);
  }
#ifndef NDEBUG
  // Replicas (same dataset name) must serve the same shard — routing by name
  // would otherwise silently read different data after a failover.
  for (std::size_t a = 0; a < backends_.size(); ++a) {
    for (std::size_t b = a + 1; b < backends_.size(); ++b) {
      if (backends_[a].dataset == backends_[b].dataset) {
        assert(backend_shard_[a] == backend_shard_[b]);
      }
    }
  }
#endif
  shards_ = shard_by_source(graph, num_shards);
  profile_cache_.resize(num_shards);
  placement_cache_.resize(backends_.size());
}

namespace {

bool same_spec(const algos::JobSpec& a, const algos::JobSpec& b) {
  return a.kind == b.kind && a.damping == b.damping &&
         a.max_iterations == b.max_iterations && a.root == b.root;
}

/// One submission's mutable serving record for the duration of a run().
/// Owned by RunContext::tickets (deque: stable addresses); every queue and
/// closure holds Ticket*, so a job keeps its identity across failovers.
struct Ticket {
  std::uint32_t id = 0;
  std::uint64_t arrival_ns = 0;
  std::uint64_t deadline_ns = 0;
  std::uint32_t shard = 0;
  const dist::JobProfile* profile = nullptr;
  /// Replica set the job may run on (points into the service's routing
  /// table, or the run's all-backends list for unnamed submissions).
  const std::vector<std::size_t>* candidates = nullptr;
  std::uint32_t failover_attempts = 0;
  bool terminal = false;
  service::Outcome outcome = service::Outcome::kCompleted;
  std::uint32_t backend = kNoBackend;  // last backend it was admitted to
  std::uint64_t completion_ns = 0;
};

enum class Health : int { kAlive = 0, kSuspect = 1, kDead = 2 };

/// Per-backend serving state for one run(): admission queue + dispatch slots
/// + sample accumulators + health. Event callbacks hold raw pointers into
/// the run's deque, which never reallocates elements.
struct BackendState {
  std::uint32_t backend_id = 0;
  const BackendConfig* config = nullptr;
  std::unique_ptr<BackendSim> sim;

  std::deque<Ticket*> ready;
  std::deque<Ticket*> held;  // kBatchUntilK only
  std::uint64_t batch_epoch = 0;
  std::size_t running = 0;

  Health health = Health::kAlive;
  std::uint64_t last_beat_ns = 0;
  /// Overlapping crash windows: restart only when the last one clears.
  std::size_t crash_depth = 0;

  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t deadline_aborts = 0;
  std::uint64_t failed = 0;
  std::uint64_t redispatched_in = 0;
  std::uint64_t failover_shed = 0;
  std::uint64_t slo_shed = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t crashes = 0;
  std::vector<std::uint64_t> queue_wait_ns;
  std::vector<std::uint64_t> stream_ns;
  std::vector<std::uint64_t> e2e_ns;
  std::uint64_t first_arrival_ns = 0;
  std::uint64_t last_completion_ns = 0;
  bool saw_arrival = false;

  [[nodiscard]] std::size_t queued() const { return ready.size() + held.size(); }
  [[nodiscard]] std::size_t outstanding() const { return queued() + running; }
};

/// Everything one run() shares with its event closures. Stack-local in
/// run(), strictly outliving loop.run().
struct RunContext {
  EventLoop& loop;
  std::deque<BackendState>& states;
  FailoverConfig failover;
  FaultStats fstats;
  std::deque<Ticket> tickets;
  std::vector<std::size_t> all_backends;  // candidates of unnamed submissions
  /// Non-terminal tickets — with arrivals_remaining, the monitor's liveness
  /// condition (it stops rescheduling when no work can possibly remain, so
  /// EventLoop::run() terminates).
  std::uint64_t jobs_outstanding = 0;
  std::size_t arrivals_remaining = 0;
  /// SLO tracking on the simulated clock; nullptr/disabled when the config
  /// names no objectives (every call below guards on it).
  obs::SloMonitor* slo = nullptr;
};

/// Re-evaluates every objective at sim-now and traces the tri-state signal's
/// transitions. Called at admissions (where shed decisions are made), so the
/// DES stays single-threaded-deterministic: same arrivals, same windows,
/// same decisions. Emits nothing while the signal rests at Healthy.
obs::SloState evaluate_slo(RunContext& ctx, const BackendState& state) {
  const obs::SloState before = ctx.slo->state();
  const obs::SloState after = ctx.slo->evaluate(ctx.loop.now_ns());
  if (after != before) {
    ctx.loop.trace(TraceCode::kSloStateChange, state.backend_id, 0,
                   static_cast<std::uint64_t>(after));
  }
  return after;
}

/// Backend health folded into the detector as capacity: live (not
/// declared-dead) backends over total. Called on every dead/rejoin
/// transition; pure bookkeeping, no events, no trace.
void update_slo_capacity(RunContext& ctx) {
  if (ctx.slo == nullptr || !ctx.slo->enabled()) return;
  std::size_t live = 0;
  for (const BackendState& state : ctx.states) {
    if (state.health != Health::kDead) ++live;
  }
  ctx.slo->set_capacity(static_cast<double>(live) /
                        static_cast<double>(ctx.states.size()));
}

/// Index of the next job to dispatch under the backend's policy: EDF picks
/// the tightest real deadline via the shared service::edf_deadline_key
/// (deadline-less jobs — the service::kNoDeadline sentinel — last, FIFO
/// among equals); everything else is FIFO. `ready` is in arrival order.
std::size_t pick_next(const BackendState& state) {
  if (!service::policy_uses_edf(state.config->policy)) return 0;
  std::size_t best = 0;
  auto key = [](const Ticket* t) { return service::edf_deadline_key(t->deadline_ns); };
  for (std::size_t i = 1; i < state.ready.size(); ++i) {
    if (key(state.ready[i]) < key(state.ready[best])) best = i;
  }
  return best;
}

void try_dispatch(RunContext& ctx, BackendState& state);
void admit(RunContext& ctx, BackendState& state, Ticket* t, bool redispatch);
void retry_later(RunContext& ctx, Ticket* t);
void reroute(RunContext& ctx, Ticket* t);

/// Latches the ticket's terminal state; exactly one call wins, so every
/// submission lands in exactly one outcome bucket (the conservation law).
void finish(RunContext& ctx, Ticket* t, service::Outcome outcome) {
  if (t->terminal) return;
  t->terminal = true;
  t->outcome = outcome;
  t->completion_ns = ctx.loop.now_ns();
  if (ctx.jobs_outstanding > 0) --ctx.jobs_outstanding;
}

/// Failover gave up on the job: no live replica, or the retry budget is
/// spent. The one graceful-shed path (service::Outcome::kFailoverShed).
void shed(RunContext& ctx, Ticket* t) {
  ++ctx.fstats.failover_shed;
  if (t->backend != kNoBackend) ++ctx.states[t->backend].failover_shed;
  ctx.loop.trace(TraceCode::kJobShed, t->backend, t->id, t->failover_attempts);
  finish(ctx, t, service::Outcome::kFailoverShed);
}

void dispatch_one(RunContext& ctx, BackendState& state, Ticket* t) {
  EventLoop& loop = ctx.loop;
  const bool cancellable =
      state.config->cancel_past_deadline && t->deadline_ns != service::kNoDeadline;
  if (cancellable && loop.now_ns() > t->deadline_ns) {
    // Shed at dispatch (JobService::cancel_past_deadline semantics): the
    // deadline passed while the job sat in the queue, so running it would
    // only burn the backend's disks and cores on a guaranteed miss.
    ++state.deadline_misses;
    ++state.deadline_aborts;
    // As much an SLO violation as a mid-run abort: the request failed its
    // latency objective (it just failed it in the queue).
    if (ctx.slo != nullptr && ctx.slo->enabled()) {
      ctx.slo->violation(state.config->dataset, loop.now_ns());
    }
    loop.trace(TraceCode::kJobAborted, state.backend_id, t->id, t->deadline_ns);
    finish(ctx, t, service::Outcome::kDeadlineShed);
    return;
  }
  ++state.running;
  const std::uint64_t start_ns = loop.now_ns();
  state.queue_wait_ns.push_back(start_ns - t->arrival_ns);
  state.sim->start_job(
      t->id, *t->profile,
      [&ctx, &state, t, start_ns](JobEnd end) {
        EventLoop& loop = ctx.loop;
        const std::uint64_t completion = loop.now_ns();
        if (end == JobEnd::kFailed) {
          // The backend crashed under the job. No slot freed up in any
          // useful sense (the whole backend is down), so no try_dispatch —
          // the job goes to the failover path instead.
          ++state.failed;
          if (state.running > 0) --state.running;
          retry_later(ctx, t);
          return;
        }
        state.last_completion_ns = std::max(state.last_completion_ns, completion);
        if (end == JobEnd::kAborted) {
          ++state.deadline_misses;
          ++state.deadline_aborts;
          if (ctx.slo != nullptr && ctx.slo->enabled()) {
            ctx.slo->violation(state.config->dataset, completion);
          }
          finish(ctx, t, service::Outcome::kDeadlineAborted);
        } else {
          ++state.completed;
          state.stream_ns.push_back(completion - start_ns);
          state.e2e_ns.push_back(completion - t->arrival_ns);
          if (t->deadline_ns != service::kNoDeadline && completion > t->deadline_ns) {
            ++state.deadline_misses;
          }
          if (ctx.slo != nullptr && ctx.slo->enabled()) {
            ctx.slo->observe(state.config->dataset, completion,
                             completion - t->arrival_ns);
          }
          finish(ctx, t, service::Outcome::kCompleted);
        }
        --state.running;
        try_dispatch(ctx, state);
      },
      cancellable ? t->deadline_ns : 0);
}

void try_dispatch(RunContext& ctx, BackendState& state) {
  if (state.sim->crashed()) return;  // nothing dispatches into a dead machine
  while (state.running < std::max<std::size_t>(1, state.config->max_concurrent) &&
         !state.ready.empty()) {
    const std::size_t index = pick_next(state);
    Ticket* t = state.ready[index];
    state.ready.erase(state.ready.begin() + static_cast<std::ptrdiff_t>(index));
    dispatch_one(ctx, state, t);
  }
}

void release_batch(RunContext& ctx, BackendState& state) {
  ++state.batch_epoch;  // invalidates any pending flush timer
  while (!state.held.empty()) {
    state.ready.push_back(state.held.front());
    state.held.pop_front();
  }
  try_dispatch(ctx, state);
}

/// Schedules the job's next failover attempt after a capped exponential
/// backoff, or sheds it once the budget is spent. Every wait consumes budget,
/// so a job can never ping-pong forever against a permanently dead cluster.
void retry_later(RunContext& ctx, Ticket* t) {
  if (t->terminal) return;
  if (t->failover_attempts >= ctx.failover.retry_budget) {
    shed(ctx, t);
    return;
  }
  ++t->failover_attempts;
  ++ctx.fstats.retries;
  const auto shift = std::min<std::uint32_t>(t->failover_attempts - 1, 16);
  const std::uint64_t delay = std::min(ctx.failover.retry_backoff_cap_ns,
                                       ctx.failover.retry_backoff_ns << shift);
  ctx.loop.schedule_after(delay, [&ctx, t] {
    if (t->terminal) return;
    reroute(ctx, t);
  });
}

/// Re-admits the job on the least-loaded live replica. "Live" here excludes
/// both declared-dead backends and crashed-but-undetected ones — a failover
/// retry already knows something is wrong, so it gets the stronger check
/// fresh arrivals don't (those queue on an undetected crash and drain when
/// the monitor declares it dead).
void reroute(RunContext& ctx, Ticket* t) {
  std::size_t best = ctx.states.size();
  for (const std::size_t b : *t->candidates) {
    BackendState& candidate = ctx.states[b];
    if (candidate.health == Health::kDead || candidate.sim->crashed()) continue;
    if (best == ctx.states.size() ||
        candidate.outstanding() < ctx.states[best].outstanding()) {
      best = b;
    }
  }
  if (best == ctx.states.size()) {
    retry_later(ctx, t);  // nobody alive right now; back off and try again
    return;
  }
  BackendState& state = ctx.states[best];
  ++ctx.fstats.redispatched_jobs;
  ++state.redispatched_in;
  ctx.loop.trace(TraceCode::kJobRedispatched, state.backend_id, t->id,
                 t->failover_attempts);
  admit(ctx, state, t, /*redispatch=*/true);
}

void admit(RunContext& ctx, BackendState& state, Ticket* t, bool redispatch) {
  EventLoop& loop = ctx.loop;
  t->backend = state.backend_id;
  if (!redispatch) {
    ++state.submitted;
    if (!state.saw_arrival) {
      state.saw_arrival = true;
      state.first_arrival_ns = loop.now_ns();
    }
    if (ctx.slo != nullptr && ctx.slo->enabled()) {
      // The detector is consulted at every arrival (tracking alone — the
      // evaluation is pure computation, no events, no randomness); only
      // kAdaptive backends act on it. While Critical, the lowest-priority
      // work sheds: deadline-less jobs outright, deadlined jobs once the
      // queue is over quota. Re-opening is the monitor's hysteresis — the
      // fast window cooling below reopen_burn flips the state back.
      const obs::SloState slo_state = evaluate_slo(ctx, state);
      if (state.config->policy == service::AdmissionPolicy::kAdaptive &&
          slo_state == obs::SloState::kCritical) {
        const std::size_t quota =
            state.config->adaptive_queue_quota != 0
                ? state.config->adaptive_queue_quota
                : std::max<std::size_t>(1, state.config->max_concurrent);
        if (t->deadline_ns == service::kNoDeadline || state.queued() >= quota) {
          ++state.slo_shed;
          ++ctx.fstats.slo_shed;
          ctx.slo->count_shed(state.config->dataset);
          loop.trace(TraceCode::kJobSloShed, state.backend_id, t->id,
                     static_cast<std::uint64_t>(ctx.slo->worst_eval().fast_burn * 1e3));
          finish(ctx, t, service::Outcome::kSloShed);
          return;
        }
      }
    }
    if (state.queued() >= std::max<std::size_t>(1, state.config->max_queue_depth)) {
      ++state.rejected;
      loop.trace(TraceCode::kJobRejected, state.backend_id, t->id, state.queued());
      finish(ctx, t, service::Outcome::kRejected);
      return;
    }
    if (state.config->policy == service::AdmissionPolicy::kBatchUntilK) {
      state.held.push_back(t);
      if (state.held.size() >= std::max<std::size_t>(1, state.config->batch_k)) {
        release_batch(ctx, state);
      } else if (state.held.size() == 1) {
        // The batch timer caps how long the oldest held job waits; a release
        // in the meantime bumps the epoch and turns this into a no-op.
        const std::uint64_t epoch = state.batch_epoch;
        loop.schedule_after(state.config->batch_max_wait_ns, [&ctx, &state, epoch] {
          if (state.batch_epoch == epoch && !state.held.empty()) {
            release_batch(ctx, state);
          }
        });
      }
      return;
    }
  }
  // Failover re-admissions skip batching (they have waited enough) and the
  // depth bound (a drained queue must land somewhere, or jobs would be lost
  // to backpressure through no fault of the client's pacing).
  state.ready.push_back(t);
  try_dispatch(ctx, state);
}

/// Declared dead: drain the whole admission queue to surviving replicas.
/// Jobs already dispatched are not here — they fail via the crash's
/// JobEnd::kFailed completions and retry on their own.
void declare_dead(RunContext& ctx, BackendState& state) {
  state.health = Health::kDead;
  ++ctx.fstats.failovers;
  ctx.loop.trace(TraceCode::kBackendDead, state.backend_id, 0,
                 static_cast<std::uint64_t>(state.queued()));
  ++state.batch_epoch;  // cancels any pending batch-release timer
  std::deque<Ticket*> drained;
  drained.swap(state.ready);
  while (!state.held.empty()) {
    drained.push_back(state.held.front());
    state.held.pop_front();
  }
  for (Ticket* t : drained) {
    if (!t->terminal) reroute(ctx, t);
  }
  update_slo_capacity(ctx);
}

/// The heartbeat monitor, rescheduling itself every heartbeat interval while
/// work remains. A backend "beats" by being observed un-crashed at a tick.
/// Consumes no randomness and emits no trace while everyone is healthy, so
/// fault-free traces stay bit-identical to the pre-fault service.
void monitor_tick(RunContext& ctx) {
  const std::uint64_t now = ctx.loop.now_ns();
  for (BackendState& state : ctx.states) {
    if (!state.sim->crashed()) state.last_beat_ns = now;
    const std::uint64_t silent = now - state.last_beat_ns;
    switch (state.health) {
      case Health::kAlive:
        if (silent >= ctx.failover.suspect_after_ns) {
          state.health = Health::kSuspect;
          ++ctx.fstats.suspects;
          ctx.loop.trace(TraceCode::kBackendSuspect, state.backend_id, 0, silent);
        }
        break;
      case Health::kSuspect:
        if (silent == 0) {
          state.health = Health::kAlive;  // beat observed: a false alarm
        } else if (silent >= ctx.failover.dead_after_ns) {
          declare_dead(ctx, state);
        }
        break;
      case Health::kDead:
        if (silent == 0) {
          // The fault window ended and the machine is back: rejoin. Its
          // queue was drained at death, so it restarts empty and takes new
          // routing immediately.
          state.health = Health::kAlive;
          ++ctx.fstats.rejoins;
          ctx.loop.trace(TraceCode::kBackendRejoined, state.backend_id, 0, 0);
          update_slo_capacity(ctx);
          try_dispatch(ctx, state);
        }
        break;
    }
  }
  if (ctx.arrivals_remaining > 0 || ctx.jobs_outstanding > 0) {
    const std::uint64_t interval =
        std::max<std::uint64_t>(1, ctx.failover.heartbeat_interval_ns);
    ctx.loop.schedule_after(interval, [&ctx] { monitor_tick(ctx); });
  }
}

/// Lands one FaultEvent on its backend (and schedules the matching clear for
/// windowed faults).
void apply_fault(RunContext& ctx, const FaultEvent& fault) {
  BackendState& state = ctx.states[fault.backend];
  ++ctx.fstats.faults_injected;
  ++state.faults_injected;
  ctx.loop.trace(TraceCode::kFaultInjected, fault.backend, 0,
                 static_cast<std::uint64_t>(fault.kind));
  switch (fault.kind) {
    case FaultKind::kCrash:
      ++ctx.fstats.crashes;
      ++state.crashes;
      ++state.crash_depth;
      // crash() fails every in-flight job; their completion handlers run
      // synchronously here and queue the failover retries.
      state.sim->crash();
      break;
    case FaultKind::kSlowdown:
      ++ctx.fstats.slowdowns;
      state.sim->set_slowdown(fault.factor);
      break;
    case FaultKind::kPartition:
      ++ctx.fstats.partitions;
      state.sim->partition(fault.boundary);
      break;
  }
  if (fault.duration_ns == 0) return;  // permanent
  ctx.loop.schedule_after(fault.duration_ns, [&ctx, fault] {
    BackendState& state = ctx.states[fault.backend];
    ctx.loop.trace(TraceCode::kFaultCleared, fault.backend, 0,
                   static_cast<std::uint64_t>(fault.kind));
    switch (fault.kind) {
      case FaultKind::kCrash:
        if (state.crash_depth > 0 && --state.crash_depth == 0) {
          state.sim->restart();
          // Anything still queued (crash never got declared dead) runs now;
          // the monitor flips health back on its next beat.
          try_dispatch(ctx, state);
        }
        break;
      case FaultKind::kSlowdown:
        state.sim->set_slowdown(1.0);
        break;
      case FaultKind::kPartition:
        state.sim->heal_partition();
        break;
    }
  });
}

}  // namespace

const dist::JobProfile& ClusterService::profile_for(std::size_t shard,
                                                    const algos::JobSpec& spec) {
  std::deque<dist::JobProfile>& cache = profile_cache_[shard];
  for (const dist::JobProfile& profile : cache) {
    if (same_spec(profile.spec, spec)) return profile;
  }
  cache.push_back(dist::profile_job(shards_[shard], spec));
  return cache.back();
}

std::vector<BackendStats> ClusterService::run(const std::vector<Submission>& submissions,
                                              const FaultPlan& faults) {
  EventLoop loop(config_.des.seed, config_.des.record_trace);

  std::deque<BackendState> states;
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    const std::size_t shard = backend_shard_[b];
    states.emplace_back();
    BackendState& state = states.back();
    state.backend_id = static_cast<std::uint32_t>(b);
    state.config = &backends_[b];
    if (placement_cache_[b].edge_share.empty()) {
      placement_cache_[b] = vertex_cut_placement(shards_[shard], backends_[b].num_nodes);
    }
    state.sim = std::make_unique<BackendSim>(
        loop, static_cast<std::uint32_t>(b), backends_[b].num_nodes, shards_[shard],
        config_.node, config_.des, backends_[b].engine, backends_[b].shared_structure,
        &placement_cache_[b]);
  }

  RunContext ctx{loop, states, config_.failover, {}, {}, {}, 0, submissions.size(), nullptr};
  ctx.all_backends.resize(backends_.size());
  for (std::size_t b = 0; b < backends_.size(); ++b) ctx.all_backends[b] = b;

  // Fresh monitor per run (windows must not leak across runs — determinism
  // demands each run sees only its own history). Kept after the run for
  // publish_metrics / last_slo().
  auto slo_monitor = std::make_unique<obs::SloMonitor>(config_.objectives);
  ctx.slo = slo_monitor.get();

  // The heartbeat monitor starts at t=0 and outlives the last job; it emits
  // nothing and draws nothing while the cluster is healthy.
  loop.schedule_at(0, [&ctx] { monitor_tick(ctx); });

  // Fault injection: the plan replays in (time, backend, kind) order, each
  // event optionally delayed by a draw from the loop's dedicated fault
  // stream — the jitter stream never sees any of this, which is what keeps
  // an empty plan bit-identical to the pre-fault service.
  for (const FaultEvent& fault : faults.sorted()) {
    if (fault.backend >= backends_.size()) continue;
    std::uint64_t at_ns = fault.at_ns;
    if (config_.des.fault_jitter_ns > 0) {
      at_ns += loop.fault_rng().next_below(config_.des.fault_jitter_ns);
    }
    loop.schedule_at(at_ns, [&ctx, fault] { apply_fault(ctx, fault); });
  }

  unroutable_ = 0;
  std::uint32_t next_id = 0;
  for (const Submission& submission : submissions) {
    const std::uint32_t id = next_id++;
    loop.schedule_at(submission.arrival_ns, [this, &ctx, &states, &submission, id] {
      if (ctx.arrivals_remaining > 0) --ctx.arrivals_remaining;
      // Routing: named datasets map to their shard's replica set; unnamed
      // submissions may run anywhere. The pick is the least-outstanding
      // non-dead candidate (ties: lowest index) — crashed-but-undetected
      // backends still take arrivals, which drain when the monitor declares
      // them dead.
      const std::vector<std::size_t>* candidates = &ctx.all_backends;
      if (!submission.dataset.empty()) {
        std::size_t named = backends_.size();
        for (std::size_t b = 0; b < backends_.size(); ++b) {
          if (backends_[b].dataset == submission.dataset) {
            named = b;
            break;
          }
        }
        if (named == backends_.size()) {
          ++unroutable_;
          ctx.tickets.emplace_back();
          Ticket* t = &ctx.tickets.back();
          t->id = id;
          t->arrival_ns = submission.arrival_ns;
          ++ctx.jobs_outstanding;
          finish(ctx, t, service::Outcome::kUnroutable);
          return;
        }
        candidates = &shard_replicas_[backend_shard_[named]];
      }
      std::size_t target = states.size();
      for (const std::size_t b : *candidates) {
        if (states[b].health == Health::kDead) continue;
        if (target == states.size() ||
            states[b].outstanding() < states[target].outstanding()) {
          target = b;
        }
      }
      ctx.tickets.emplace_back();
      Ticket* t = &ctx.tickets.back();
      t->id = id;
      t->arrival_ns = submission.arrival_ns;
      t->deadline_ns = submission.deadline_ns;
      t->candidates = candidates;
      ++ctx.jobs_outstanding;
      if (target == states.size()) {
        // Every replica is already declared dead: graceful shed at arrival.
        shed(ctx, t);
        return;
      }
      const std::size_t shard = backend_shard_[target];
      t->shard = static_cast<std::uint32_t>(shard);
      // Failover must stay within the shard the job was profiled against —
      // replicas serve identical data, other shards do not.
      t->candidates = &shard_replicas_[shard];
      t->profile = &profile_for(shard, submission.spec);
      admit(ctx, states[target], t, /*redispatch=*/false);
    });
  }

  loop.run();

  std::vector<BackendStats> report;
  report.reserve(states.size());
  for (std::size_t b = 0; b < states.size(); ++b) {
    BackendState& state = states[b];
    BackendStats stats;
    stats.dataset = backends_[b].dataset;
    stats.engine = backends_[b].engine;
    stats.shard = static_cast<std::uint32_t>(backend_shard_[b]);
    stats.replica_id = backends_[b].replica_id;
    stats.submitted = state.submitted;
    stats.rejected = state.rejected;
    stats.completed = state.completed;
    stats.deadline_misses = state.deadline_misses;
    stats.deadline_aborts = state.deadline_aborts;
    stats.failed = state.failed;
    stats.redispatched_in = state.redispatched_in;
    stats.failover_shed = state.failover_shed;
    stats.slo_shed = state.slo_shed;
    stats.faults_injected = state.faults_injected;
    stats.crashes = state.crashes;
    stats.queue_wait = service::summarize_latency(std::move(state.queue_wait_ns));
    stats.stream_time = service::summarize_latency(std::move(state.stream_ns));
    stats.e2e = service::summarize_latency(std::move(state.e2e_ns));
    stats.sustained_jobs_per_s = service::sustained_jobs_per_s(
        state.completed, state.first_arrival_ns, state.last_completion_ns);
    stats.structure_loads = state.sim->structure_loads();
    stats.network_gb = state.sim->network_bytes() / 1e9;
    stats.disk_gb = state.sim->disk_bytes() / 1e9;
    stats.replication = state.sim->replication();
    stats.feasible = state.sim->feasible();
    report.push_back(std::move(stats));
  }
  last_job_reports_.clear();
  last_job_reports_.reserve(ctx.tickets.size());
  for (const Ticket& t : ctx.tickets) {
    JobReport job_report;
    job_report.job = t.id;
    job_report.outcome = t.outcome;
    job_report.shard = t.shard;
    job_report.backend = t.backend;
    job_report.attempts = t.failover_attempts;
    job_report.completion_ns = t.completion_ns;
    last_job_reports_.push_back(job_report);
  }
  // Tickets are created in arrival-time order; reports read better (and
  // diff against submissions directly) in submission order.
  std::sort(last_job_reports_.begin(), last_job_reports_.end(),
            [](const JobReport& a, const JobReport& b) { return a.job < b.job; });
  last_fault_stats_ = ctx.fstats;
  last_slo_ = std::move(slo_monitor);
  last_trace_hash_ = loop.trace_hash();
  last_events_ = loop.events_processed();
  last_trace_ = loop.take_trace_records();
  return report;
}

void ClusterService::publish_metrics(obs::Registry& registry,
                                     const std::vector<BackendStats>& stats) const {
  registry.set_counter("graphm.cluster.unroutable", unroutable_);
  registry.set_counter("graphm.cluster.events", last_events_);
  const FaultStats& f = last_fault_stats_;
  registry.set_counter("graphm.cluster.faults_injected", f.faults_injected);
  registry.set_counter("graphm.cluster.crashes", f.crashes);
  registry.set_counter("graphm.cluster.slowdowns", f.slowdowns);
  registry.set_counter("graphm.cluster.partitions", f.partitions);
  registry.set_counter("graphm.cluster.suspects", f.suspects);
  registry.set_counter("graphm.cluster.failovers", f.failovers);
  registry.set_counter("graphm.cluster.rejoins", f.rejoins);
  registry.set_counter("graphm.cluster.redispatched_jobs", f.redispatched_jobs);
  registry.set_counter("graphm.cluster.retries", f.retries);
  registry.set_counter("graphm.cluster.failover_shed", f.failover_shed);
  registry.set_counter("graphm.cluster.slo_shed", f.slo_shed);
  if (last_slo_ != nullptr) last_slo_->publish(registry);

  for (std::size_t b = 0; b < stats.size(); ++b) {
    const BackendStats& s = stats[b];
    const std::string prefix = "graphm.cluster.backend" + std::to_string(b) + ".";
    registry.set_counter(prefix + "submitted", s.submitted);
    registry.set_counter(prefix + "rejected", s.rejected);
    registry.set_counter(prefix + "completed", s.completed);
    registry.set_counter(prefix + "deadline_misses", s.deadline_misses);
    registry.set_counter(prefix + "deadline_aborts", s.deadline_aborts);
    registry.set_counter(prefix + "failed", s.failed);
    registry.set_counter(prefix + "redispatched_in", s.redispatched_in);
    registry.set_counter(prefix + "failover_shed", s.failover_shed);
    registry.set_counter(prefix + "slo_shed", s.slo_shed);
    registry.set_counter(prefix + "faults_injected", s.faults_injected);
    registry.set_counter(prefix + "crashes", s.crashes);
  }
}

}  // namespace graphm::cluster
