#include "cluster/cluster_service.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <memory>

namespace graphm::cluster {

std::vector<graph::EdgeList> shard_by_source(const graph::EdgeList& graph,
                                             std::size_t shards) {
  const std::size_t count = std::max<std::size_t>(1, shards);
  std::vector<graph::EdgeList> result;
  result.reserve(count);
  if (count == 1) {
    result.emplace_back(graph.num_vertices(), graph.edges());
    return result;
  }
  // Prefix out-degrees give the contiguous source ranges with ~equal edge
  // counts; every shard keeps the full vertex space so roots stay valid.
  std::vector<std::uint64_t> degree(graph.num_vertices() + 1, 0);
  for (const graph::Edge& e : graph.edges()) ++degree[e.src + 1];
  for (std::size_t v = 1; v < degree.size(); ++v) degree[v] += degree[v - 1];

  std::vector<graph::VertexId> bounds;  // shard s covers [bounds[s], bounds[s+1])
  bounds.push_back(0);
  for (std::size_t s = 1; s < count; ++s) {
    const std::uint64_t target = graph.num_edges() * s / count;
    const auto it = std::lower_bound(degree.begin(), degree.end(), target);
    auto boundary = static_cast<graph::VertexId>(it - degree.begin());
    boundary = std::max(boundary, bounds.back());  // ranges stay monotone
    bounds.push_back(std::min<graph::VertexId>(boundary, graph.num_vertices()));
  }
  bounds.push_back(graph.num_vertices());

  // One bucketing pass: the prefix degrees give each shard's exact edge
  // count up front, and a binary search on the (sorted) bounds places each
  // edge. Duplicate bounds (clamped empty shards) resolve to the last shard
  // whose range actually contains the source.
  std::vector<std::vector<graph::Edge>> buckets(count);
  for (std::size_t s = 0; s < count; ++s) {
    buckets[s].reserve(degree[bounds[s + 1]] - degree[bounds[s]]);
  }
  for (const graph::Edge& e : graph.edges()) {
    const auto it = std::upper_bound(bounds.begin(), bounds.end(), e.src);
    buckets[static_cast<std::size_t>(it - bounds.begin()) - 1].push_back(e);
  }
  for (std::size_t s = 0; s < count; ++s) {
    result.emplace_back(graph.num_vertices(), std::move(buckets[s]));
  }
  return result;
}

ClusterService::ClusterService(const graph::EdgeList& graph,
                               std::vector<BackendConfig> backends,
                               ClusterServiceConfig config)
    : backends_(std::move(backends)), config_(std::move(config)) {
  assert(!backends_.empty());
  shards_ = shard_by_source(graph, backends_.size());
  profile_cache_.resize(backends_.size());
  placement_cache_.resize(backends_.size());
}

namespace {

bool same_spec(const algos::JobSpec& a, const algos::JobSpec& b) {
  return a.kind == b.kind && a.damping == b.damping &&
         a.max_iterations == b.max_iterations && a.root == b.root;
}

struct PendingJob {
  std::uint32_t id = 0;
  std::uint64_t arrival_ns = 0;
  std::uint64_t deadline_ns = 0;
  const dist::JobProfile* profile = nullptr;
};

/// Per-backend serving state for one run(): admission queue + dispatch slots
/// + sample accumulators. Event callbacks hold raw pointers into the run's
/// deque, which never reallocates elements.
struct BackendState {
  std::uint32_t backend_id = 0;
  const BackendConfig* config = nullptr;
  std::unique_ptr<BackendSim> sim;

  std::deque<PendingJob> ready;
  std::deque<PendingJob> held;  // kBatchUntilK only
  std::uint64_t batch_epoch = 0;
  std::size_t running = 0;

  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t deadline_aborts = 0;
  std::vector<std::uint64_t> queue_wait_ns;
  std::vector<std::uint64_t> stream_ns;
  std::vector<std::uint64_t> e2e_ns;
  std::uint64_t first_arrival_ns = 0;
  std::uint64_t last_completion_ns = 0;
  bool saw_arrival = false;

  [[nodiscard]] std::size_t queued() const { return ready.size() + held.size(); }
  [[nodiscard]] std::size_t outstanding() const { return queued() + running; }
};

/// Index of the next job to dispatch under the backend's policy: EDF picks
/// the tightest real deadline via the shared service::edf_deadline_key
/// (deadline-less jobs — the service::kNoDeadline sentinel — last, FIFO
/// among equals); everything else is FIFO. `ready` is in arrival order.
std::size_t pick_next(const BackendState& state) {
  if (state.config->policy != service::AdmissionPolicy::kDeadline) return 0;
  std::size_t best = 0;
  auto key = [](const PendingJob& j) { return service::edf_deadline_key(j.deadline_ns); };
  for (std::size_t i = 1; i < state.ready.size(); ++i) {
    if (key(state.ready[i]) < key(state.ready[best])) best = i;
  }
  return best;
}

void try_dispatch(EventLoop& loop, BackendState& state);

void dispatch_one(EventLoop& loop, BackendState& state, PendingJob job) {
  const bool cancellable =
      state.config->cancel_past_deadline && job.deadline_ns != service::kNoDeadline;
  if (cancellable && loop.now_ns() > job.deadline_ns) {
    // Shed at dispatch (JobService::cancel_past_deadline semantics): the
    // deadline passed while the job sat in the queue, so running it would
    // only burn the backend's disks and cores on a guaranteed miss.
    ++state.deadline_misses;
    ++state.deadline_aborts;
    loop.trace(TraceCode::kJobAborted, state.backend_id, job.id, job.deadline_ns);
    return;
  }
  ++state.running;
  const std::uint64_t start_ns = loop.now_ns();
  state.queue_wait_ns.push_back(start_ns - job.arrival_ns);
  state.sim->start_job(
      job.id, *job.profile,
      [&loop, &state, job, start_ns](bool aborted) {
        const std::uint64_t completion = loop.now_ns();
        state.last_completion_ns = std::max(state.last_completion_ns, completion);
        if (aborted) {
          ++state.deadline_misses;
          ++state.deadline_aborts;
        } else {
          ++state.completed;
          state.stream_ns.push_back(completion - start_ns);
          state.e2e_ns.push_back(completion - job.arrival_ns);
          if (job.deadline_ns != service::kNoDeadline && completion > job.deadline_ns) {
            ++state.deadline_misses;
          }
        }
        --state.running;
        try_dispatch(loop, state);
      },
      cancellable ? job.deadline_ns : 0);
}

void try_dispatch(EventLoop& loop, BackendState& state) {
  while (state.running < std::max<std::size_t>(1, state.config->max_concurrent) &&
         !state.ready.empty()) {
    const std::size_t index = pick_next(state);
    PendingJob job = state.ready[index];
    state.ready.erase(state.ready.begin() + static_cast<std::ptrdiff_t>(index));
    dispatch_one(loop, state, job);
  }
}

void release_batch(EventLoop& loop, BackendState& state) {
  ++state.batch_epoch;  // invalidates any pending flush timer
  while (!state.held.empty()) {
    state.ready.push_back(state.held.front());
    state.held.pop_front();
  }
  try_dispatch(loop, state);
}

void admit(EventLoop& loop, BackendState& state, PendingJob job) {
  ++state.submitted;
  if (!state.saw_arrival) {
    state.saw_arrival = true;
    state.first_arrival_ns = loop.now_ns();
  }
  if (state.queued() >= std::max<std::size_t>(1, state.config->max_queue_depth)) {
    ++state.rejected;
    loop.trace(TraceCode::kJobRejected, state.backend_id, job.id, state.queued());
    return;
  }
  if (state.config->policy == service::AdmissionPolicy::kBatchUntilK) {
    state.held.push_back(job);
    if (state.held.size() >= std::max<std::size_t>(1, state.config->batch_k)) {
      release_batch(loop, state);
    } else if (state.held.size() == 1) {
      // The batch timer caps how long the oldest held job waits; a release
      // in the meantime bumps the epoch and turns this into a no-op.
      const std::uint64_t epoch = state.batch_epoch;
      loop.schedule_after(state.config->batch_max_wait_ns, [&loop, &state, epoch] {
        if (state.batch_epoch == epoch && !state.held.empty()) release_batch(loop, state);
      });
    }
    return;
  }
  state.ready.push_back(job);
  try_dispatch(loop, state);
}

}  // namespace

const dist::JobProfile& ClusterService::profile_for(std::size_t backend,
                                                    const algos::JobSpec& spec) {
  std::deque<dist::JobProfile>& cache = profile_cache_[backend];
  for (const dist::JobProfile& profile : cache) {
    if (same_spec(profile.spec, spec)) return profile;
  }
  cache.push_back(dist::profile_job(shards_[backend], spec));
  return cache.back();
}

std::vector<BackendStats> ClusterService::run(const std::vector<Submission>& submissions) {
  EventLoop loop(config_.des.seed, config_.des.record_trace);

  std::deque<BackendState> states;
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    states.emplace_back();
    BackendState& state = states.back();
    state.backend_id = static_cast<std::uint32_t>(b);
    state.config = &backends_[b];
    if (placement_cache_[b].edge_share.empty()) {
      placement_cache_[b] = vertex_cut_placement(shards_[b], backends_[b].num_nodes);
    }
    state.sim = std::make_unique<BackendSim>(
        loop, static_cast<std::uint32_t>(b), backends_[b].num_nodes, shards_[b],
        config_.node, config_.des, backends_[b].engine, backends_[b].shared_structure,
        &placement_cache_[b]);
  }

  unroutable_ = 0;
  std::uint32_t next_id = 0;
  for (const Submission& submission : submissions) {
    const std::uint32_t id = next_id++;
    loop.schedule_at(submission.arrival_ns, [this, &loop, &states, &submission, id] {
      // Routing: named datasets map to their backend; unnamed submissions go
      // to the least-outstanding backend at arrival (ties: lowest index).
      std::size_t target = states.size();
      if (submission.dataset.empty()) {
        target = 0;
        for (std::size_t b = 1; b < states.size(); ++b) {
          if (states[b].outstanding() < states[target].outstanding()) target = b;
        }
      } else {
        for (std::size_t b = 0; b < states.size(); ++b) {
          if (backends_[b].dataset == submission.dataset) {
            target = b;
            break;
          }
        }
        if (target == states.size()) {
          ++unroutable_;
          return;
        }
      }
      BackendState& state = states[target];
      PendingJob job;
      job.id = id;
      job.arrival_ns = submission.arrival_ns;
      job.deadline_ns = submission.deadline_ns;
      job.profile = &profile_for(target, submission.spec);
      admit(loop, state, job);
    });
  }

  loop.run();

  std::vector<BackendStats> report;
  report.reserve(states.size());
  for (std::size_t b = 0; b < states.size(); ++b) {
    BackendState& state = states[b];
    BackendStats stats;
    stats.dataset = backends_[b].dataset;
    stats.engine = backends_[b].engine;
    stats.submitted = state.submitted;
    stats.rejected = state.rejected;
    stats.completed = state.completed;
    stats.deadline_misses = state.deadline_misses;
    stats.deadline_aborts = state.deadline_aborts;
    stats.queue_wait = service::summarize_latency(std::move(state.queue_wait_ns));
    stats.stream_time = service::summarize_latency(std::move(state.stream_ns));
    stats.e2e = service::summarize_latency(std::move(state.e2e_ns));
    stats.sustained_jobs_per_s = service::sustained_jobs_per_s(
        state.completed, state.first_arrival_ns, state.last_completion_ns);
    stats.structure_loads = state.sim->structure_loads();
    stats.network_gb = state.sim->network_bytes() / 1e9;
    stats.disk_gb = state.sim->disk_bytes() / 1e9;
    stats.replication = state.sim->replication();
    stats.feasible = state.sim->feasible();
    report.push_back(std::move(stats));
  }
  last_trace_hash_ = loop.trace_hash();
  last_events_ = loop.events_processed();
  last_trace_ = loop.take_trace_records();
  return report;
}

}  // namespace graphm::cluster
