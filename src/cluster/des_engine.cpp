#include "cluster/des_engine.hpp"

#include <algorithm>
#include <deque>

namespace graphm::cluster {

namespace {
/// Disk/NIC owner id of the shared Chaos stream: all riders' reads are ONE
/// stream, so it must never pay a seek against itself.
constexpr std::uint32_t kSharedStreamOwner = 0x7FFFFFFEu;
}  // namespace

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kPowerGraph: return "PowerGraph";
    case Backend::kChaos: return "Chaos";
  }
  return "?";
}

double Placement::max_share() const {
  double best = 0.0;
  for (const double share : edge_share) best = std::max(best, share);
  return best;
}

Placement vertex_cut_placement(const graph::EdgeList& graph, std::size_t num_nodes) {
  Placement placement;
  const std::size_t m = std::max<std::size_t>(1, num_nodes);
  placement.edge_share.assign(m, 0.0);
  if (graph.num_edges() == 0) {
    for (double& share : placement.edge_share) share = 1.0 / static_cast<double>(m);
    return placement;
  }
  std::vector<std::uint64_t> counts(m, 0);
  for (const graph::Edge& e : graph.edges()) ++counts[dist::edge_placement_node(e, m)];
  for (std::size_t n = 0; n < m; ++n) {
    placement.edge_share[n] =
        static_cast<double>(counts[n]) / static_cast<double>(graph.num_edges());
  }
  placement.replication = dist::replication_factor(graph, m);
  return placement;
}

struct BackendSim::JobRun {
  std::uint32_t id = 0;
  const dist::JobProfile* profile = nullptr;
  CompletionFn on_complete;
  /// Supersteps completed — the job's own iteration privately, supersteps
  /// ridden since attach on the shared Chaos stream.
  std::size_t iter = 0;
  /// This job ingested a private structure replica (PowerGraph, sharing
  /// off) that completion must release. Zero-iteration jobs never take one.
  bool holds_structure = false;
  /// Abort-at-barrier deadline on the simulated clock (0 = never abort).
  std::uint64_t abort_deadline_ns = 0;
  /// Terminal latch: complete() fires on_complete exactly once, however many
  /// paths (barrier, abort, crash sweep) reach it.
  bool done = false;
};

BackendSim::BackendSim(EventLoop& loop, std::uint32_t backend_id, std::size_t num_nodes,
                       const graph::EdgeList& graph, const dist::ClusterConfig& node_params,
                       const DesConfig& des, Backend engine, bool shared_structure,
                       const Placement* placement)
    : loop_(loop),
      backend_id_(backend_id),
      node_params_(node_params),
      des_(des),
      engine_(engine),
      shared_structure_(shared_structure),
      structure_bytes_(static_cast<double>(graph.num_edges()) * sizeof(graph::Edge)),
      vertex_bytes_(static_cast<double>(graph.num_vertices()) * dist::kVertexValueBytes),
      placement_(placement != nullptr ? *placement
                                      : vertex_cut_placement(graph, num_nodes)),
      network_(loop, std::max<std::size_t>(1, num_nodes),
               node_params.net_bandwidth_bytes_per_s, des.net_latency_ns) {
  const std::size_t m = std::max<std::size_t>(1, num_nodes);
  nodes_.reserve(m);
  for (std::size_t n = 0; n < m; ++n) {
    nodes_.push_back(std::make_unique<SimNode>(
        loop_, node_params.disk_bandwidth_bytes_per_s, des.disk_switch_ns));
  }
}

BackendSim::~BackendSim() = default;

double BackendSim::disk_bytes() const {
  double total = 0.0;
  for (const auto& node : nodes_) total += node->disk.total_bytes();
  return total;
}

std::uint64_t BackendSim::compute_ns(const dist::JobProfile& profile, std::size_t iter,
                                     std::size_t node) {
  // The node fans its slice of the iteration's active edges across its cores;
  // hash imbalance (edge_share spread) plus the seeded jitter is what makes
  // one node the barrier's straggler.
  const double edges =
      static_cast<double>(profile.active_edges[iter]) * placement_.edge_share[node];
  const double seconds = edges * dist::kEdgeComputeSeconds /
                         static_cast<double>(std::max<std::size_t>(1, node_params_.cores_per_node));
  return loop_.jittered(static_cast<std::uint64_t>(seconds * 1e9), des_.compute_jitter);
}

void BackendSim::check_memory() {
  if (engine_ == Backend::kChaos) return;  // out-of-core: nothing resident
  const auto m = static_cast<double>(nodes_.size());
  const double structure_per_node =
      (structure_bytes_ + placement_.replication * vertex_bytes_) / m;
  const double job_per_node = placement_.replication * vertex_bytes_ / m;
  const double per_node = static_cast<double>(resident_structures_) * structure_per_node +
                          static_cast<double>(jobs_running_) * job_per_node;
  if (per_node > static_cast<double>(node_params_.node_memory_bytes)) feasible_ = false;
}

void BackendSim::start_job(std::uint32_t job_id, const dist::JobProfile& profile,
                           CompletionFn on_complete, std::uint64_t abort_deadline_ns) {
  jobs_.push_back(std::make_unique<JobRun>());
  JobRun* job = jobs_.back().get();
  job->id = job_id;
  job->profile = &profile;
  job->on_complete = std::move(on_complete);
  job->abort_deadline_ns = abort_deadline_ns;
  ++jobs_running_;
  if (crashed_) {
    // The dispatch raced the crash: nothing ran, so no dispatch trace — the
    // job fails immediately and the failover layer decides what happens next.
    complete(job, JobEnd::kFailed);
    return;
  }
  loop_.trace(TraceCode::kJobDispatched, backend_id_, job_id,
              static_cast<std::uint64_t>(nodes_.size()));

  if (profile.iterations() == 0) {
    complete(job, JobEnd::kCompleted);
    return;
  }

  if (engine_ == Backend::kChaos) {
    if (shared_structure_) {
      attach_shared_stream(job);
    } else {
      private_superstep(job);
    }
    return;
  }

  // PowerGraph: the structure must be resident before supersteps start.
  if (shared_structure_) {
    const bool first_load = structure_ == Structure::kAbsent;
    if (first_load) {
      structure_ = Structure::kLoading;
      resident_structures_ = 1;  // stays resident for every later arrival
    }
    // Every arrival adds its replicated vertex data to the nodes, so the
    // footprint is re-evaluated per job — not just when the loader starts —
    // matching the analytic engine's k * job_mem_per_node term.
    check_memory();
    if (structure_ == Structure::kResident) {
      begin_supersteps(job);
    } else {
      ingest_waiters_.push_back(job);
      if (first_load) begin_ingest(job);
    }
  } else {
    ++resident_structures_;  // private replica, released at completion
    job->holds_structure = true;
    check_memory();
    begin_ingest(job);
  }
}

void BackendSim::begin_ingest(JobRun* job) {
  structure_loads_ += 1.0;
  const std::size_t m = nodes_.size();
  const std::uint64_t epoch = epoch_;
  auto barrier = std::make_shared<Countdown>(m, [this, job, epoch] {
    if (epoch != epoch_) return;  // the load died with a crash
    loop_.trace(TraceCode::kIngestDone, backend_id_, job->id,
                static_cast<std::uint64_t>(structure_loads_));
    if (shared_structure_) {
      structure_ = Structure::kResident;
      // Everyone who arrived during the load attaches at once — the
      // open-loop "first job loads, later jobs share" of Algorithm 2.
      std::vector<JobRun*> waiters;
      waiters.swap(ingest_waiters_);
      for (JobRun* waiter : waiters) begin_supersteps(waiter);
    } else {
      begin_supersteps(job);
    }
  });
  // Per node: read the hashed slice from the local disk, then shuffle it to
  // its cut position — modeled as one ring transfer of the slice, which
  // occupies every egress and ingress link with exactly the slice's bytes
  // (the balanced all-to-all a vertex-cut build performs).
  for (std::size_t n = 0; n < m; ++n) {
    const double bytes = structure_bytes_ * placement_.edge_share[n];
    const auto src = static_cast<std::uint32_t>(n);
    const auto dst = static_cast<std::uint32_t>((n + 1) % m);
    nodes_[n]->disk.submit(job->id, bytes, [this, job, src, dst, bytes, barrier, epoch] {
      if (epoch != epoch_) return;
      network_.transfer(src, dst, job->id, bytes, [barrier] { barrier->arrive(); });
    });
  }
}

void BackendSim::begin_supersteps(JobRun* job) { private_superstep(job); }

bool BackendSim::past_deadline(const JobRun* job) const {
  return job->abort_deadline_ns != 0 && loop_.now_ns() > job->abort_deadline_ns;
}

void BackendSim::abort_job(JobRun* job) {
  // Deadline abort at a barrier event: the job submits no further disk,
  // core or network work from this point, so everything it reserved drains
  // on the simulated clock and competing jobs stop paying for it.
  ++jobs_aborted_;
  loop_.trace(TraceCode::kJobAborted, backend_id_, job->id, job->abort_deadline_ns);
  complete(job, JobEnd::kAborted);
}

void BackendSim::private_superstep(JobRun* job) {
  const dist::JobProfile& profile = *job->profile;
  if (job->iter >= profile.iterations()) {
    complete(job, JobEnd::kCompleted);
    return;
  }
  // Superstep boundary (also the post-ingest entry): the only points a run
  // can be cancelled, mirroring the engine's iteration/partition-boundary
  // polling in JobService's cancel_past_deadline.
  if (past_deadline(job)) {
    abort_job(job);
    return;
  }
  const std::size_t m = nodes_.size();
  const std::size_t iter = job->iter;
  if (engine_ == Backend::kChaos) structure_loads_ += 1.0;  // one full-graph stream
  const std::uint64_t epoch = epoch_;

  auto barrier = std::make_shared<Countdown>(m, [this, job, epoch] {
    if (epoch != epoch_) return;
    loop_.trace(TraceCode::kSuperstep, backend_id_, job->id, job->iter);
    loop_.schedule_after(des_.superstep_overhead_ns, [this, job, epoch] {
      if (epoch != epoch_) return;
      ++job->iter;
      private_superstep(job);
    });
  });

  // Replica synchronization: every active vertex's value crosses the cut
  // once per replica (PowerGraph, factor r); Chaos exchanges only the plain
  // update stream (factor 1) — its cost lives on the disks.
  const double sync_factor =
      engine_ == Backend::kPowerGraph ? placement_.replication : 1.0;
  const double sync_total = sync_factor *
                            static_cast<double>(profile.active_vertices[iter]) *
                            dist::kVertexValueBytes;
  for (std::size_t n = 0; n < m; ++n) {
    const auto src = static_cast<std::uint32_t>(n);
    const auto dst = static_cast<std::uint32_t>((n + 1) % m);
    const double sync_bytes = sync_total / static_cast<double>(m);
    const auto compute_then_sync = [this, job, iter, n, src, dst, sync_bytes, barrier,
                                    epoch] {
      if (epoch != epoch_) return;
      nodes_[n]->cores.submit(
          job->id, compute_ns(*job->profile, iter, n),
          [this, job, src, dst, sync_bytes, barrier, epoch] {
            if (epoch != epoch_) return;
            network_.transfer(src, dst, job->id, sync_bytes,
                              [barrier] { barrier->arrive(); });
          });
    };
    if (engine_ == Backend::kChaos) {
      // Chaos re-streams the node's whole slice every iteration; concurrent
      // private streams interleave on the disk and pay the seek.
      nodes_[n]->disk.submit(job->id, structure_bytes_ * placement_.edge_share[n],
                             compute_then_sync);
    } else {
      compute_then_sync();
    }
  }
}

void BackendSim::attach_shared_stream(JobRun* job) {
  // Joins at the next superstep boundary (mid-stream attach): the running
  // superstep's riders are fixed once its disk reads are in flight.
  stream_pending_.push_back(job);
  if (!stream_running_) {
    stream_running_ = true;
    shared_superstep();
  }
}

void BackendSim::shared_superstep() {
  for (JobRun* job : stream_pending_) stream_attached_.push_back(job);
  stream_pending_.clear();
  if (stream_attached_.empty()) {
    stream_running_ = false;
    return;
  }
  structure_loads_ += 1.0;  // all riders share this full-graph pass
  const std::size_t m = nodes_.size();
  const std::uint64_t superstep = stream_supersteps_++;
  const std::uint64_t epoch = epoch_;

  auto barrier = std::make_shared<Countdown>(m, [this, superstep, epoch] {
    if (epoch != epoch_) return;
    loop_.trace(TraceCode::kSuperstep, backend_id_, kSharedStreamOwner, superstep);
    loop_.schedule_after(des_.superstep_overhead_ns, [this, epoch] {
      if (epoch != epoch_) return;
      // Advance every rider one superstep; finished jobs leave the stream
      // before the next pass begins (they never hold it open).
      std::vector<JobRun*> still_riding;
      still_riding.reserve(stream_attached_.size());
      for (JobRun* job : stream_attached_) {
        ++job->iter;
        if (job->iter >= job->profile->iterations()) {
          complete(job, JobEnd::kCompleted);
        } else if (past_deadline(job)) {
          // Past-deadline riders leave the stream at the barrier: the next
          // pass no longer waits for their per-node compute or carries their
          // update bytes.
          abort_job(job);
        } else {
          still_riding.push_back(job);
        }
      }
      stream_attached_.swap(still_riding);
      shared_superstep();
    });
  });

  for (std::size_t n = 0; n < m; ++n) {
    const auto src = static_cast<std::uint32_t>(n);
    const auto dst = static_cast<std::uint32_t>((n + 1) % m);
    nodes_[n]->disk.submit(
        kSharedStreamOwner, structure_bytes_ * placement_.edge_share[n],
        [this, n, src, dst, barrier, epoch] {
          if (epoch != epoch_) return;
          // Every rider computes over the streamed slice; the node leaves for
          // the barrier when its slowest rider has computed and the node's
          // aggregated update exchange is delivered.
          auto riders_done = std::make_shared<Countdown>(
              stream_attached_.size(), [this, src, dst, barrier, epoch] {
                if (epoch != epoch_) return;
                double sync_bytes = 0.0;
                for (JobRun* job : stream_attached_) {
                  sync_bytes +=
                      static_cast<double>(job->profile->active_vertices[job->iter]) *
                      dist::kVertexValueBytes / static_cast<double>(nodes_.size());
                }
                network_.transfer(src, dst, kSharedStreamOwner, sync_bytes,
                                  [barrier] { barrier->arrive(); });
              });
          for (JobRun* job : stream_attached_) {
            nodes_[n]->cores.submit(job->id, compute_ns(*job->profile, job->iter, n),
                                    [riders_done] { riders_done->arrive(); });
          }
        });
  }
}

void BackendSim::complete(JobRun* job, JobEnd end) {
  if (job->done) return;
  job->done = true;
  if (end == JobEnd::kFailed) {
    ++jobs_failed_;
    loop_.trace(TraceCode::kJobFailed, backend_id_, job->id, epoch_);
  } else {
    // Aborted jobs keep the historical complete record (after kJobAborted):
    // they reached a terminal barrier, just not their last one.
    loop_.trace(TraceCode::kJobComplete, backend_id_, job->id, loop_.now_ns());
  }
  if (jobs_running_ > 0) --jobs_running_;
  if (job->holds_structure && resident_structures_ > 0) {
    --resident_structures_;  // the private replica is dropped (aborts too)
  }
  if (job->on_complete) job->on_complete(end);
}

void BackendSim::crash() {
  ++epoch_;  // every in-flight closure from before this instant now no-ops
  crashed_ = true;
  // Engine state dies with the machine: structure gone, stream stopped,
  // nobody waiting on anything.
  structure_ = Structure::kAbsent;
  ingest_waiters_.clear();
  resident_structures_ = 0;
  stream_running_ = false;
  stream_attached_.clear();
  stream_pending_.clear();
  for (auto& node : nodes_) {
    node->cores.reset();
    node->disk.reset();
  }
  network_.reset();
  // Fail every job still in flight. JobRun objects are owned by jobs_ and
  // never freed, so closures that captured them stay safe (and no-op on the
  // epoch check anyway).
  for (auto& job : jobs_) {
    if (!job->done) complete(job.get(), JobEnd::kFailed);
  }
}

void BackendSim::restart() { crashed_ = false; }

void BackendSim::set_slowdown(double factor) {
  for (auto& node : nodes_) {
    node->cores.set_scale(factor);
    node->disk.set_scale(factor);
  }
}

void BackendSim::partition(double fraction) {
  const std::size_t m = nodes_.size();
  if (m < 2) return;
  auto boundary = static_cast<std::size_t>(fraction * static_cast<double>(m));
  boundary = std::clamp<std::size_t>(boundary, 1, m - 1);
  network_.partition(boundary);
}

void BackendSim::heal_partition() { network_.heal(); }

DesEstimate des_run(Backend backend, dist::DistScheme scheme,
                    const std::vector<dist::JobProfile>& profiles,
                    const graph::EdgeList& graph, const dist::ClusterConfig& cluster,
                    const DesConfig& config, const Placement* hoisted) {
  DesEstimate estimate;
  if (profiles.empty() || cluster.num_nodes == 0) return estimate;

  EventLoop loop(config.seed, config.record_trace);
  const std::size_t groups = std::max<std::size_t>(1, cluster.num_groups);
  const std::size_t m = std::max<std::size_t>(1, cluster.num_nodes / groups);
  const bool shared = scheme.kind == dist::DistScheme::kShared;
  // Every group is the same width, so the vertex-cut (two full edge scans)
  // is computed at most once per call and shared by all group sims.
  const Placement placement =
      hoisted != nullptr ? *hoisted : vertex_cut_placement(graph, m);

  estimate.job_completion_s.assign(profiles.size(), 0.0);
  std::vector<std::unique_ptr<BackendSim>> sims;
  // Sequential chains: one continuation per group. The deque owns them and
  // outlives loop.run(); closures capture raw pointers, never owners (a
  // self-referential shared_ptr would leak the closure).
  std::deque<std::function<void(std::size_t)>> chains;

  for (std::size_t g = 0; g < groups; ++g) {
    const std::vector<std::size_t> jobs = dist::group_jobs(profiles.size(), groups, g);
    if (jobs.empty()) continue;
    sims.push_back(std::make_unique<BackendSim>(loop, static_cast<std::uint32_t>(g), m,
                                                graph, cluster, config, backend, shared,
                                                &placement));
    BackendSim* sim = sims.back().get();

    if (scheme.kind == dist::DistScheme::kSequential) {
      chains.emplace_back();
      std::function<void(std::size_t)>* chain = &chains.back();
      *chain = [&loop, &estimate, &profiles, sim, jobs, chain](std::size_t index) {
        if (index >= jobs.size()) return;
        const std::size_t j = jobs[index];
        sim->start_job(static_cast<std::uint32_t>(j), profiles[j],
                       [&loop, &estimate, chain, index, j](JobEnd /*end*/) {
                         estimate.job_completion_s[j] =
                             static_cast<double>(loop.now_ns()) / 1e9;
                         (*chain)(index + 1);
                       });
      };
      loop.schedule_at(0, [chain] { (*chain)(0); });
    } else {
      for (const std::size_t j : jobs) {
        loop.schedule_at(0, [&loop, &estimate, &profiles, sim, j] {
          sim->start_job(static_cast<std::uint32_t>(j), profiles[j],
                         [&loop, &estimate, j](JobEnd /*end*/) {
                           estimate.job_completion_s[j] =
                               static_cast<double>(loop.now_ns()) / 1e9;
                         });
        });
      }
    }
  }

  loop.run();

  for (const double t : estimate.job_completion_s) {
    estimate.seconds = std::max(estimate.seconds, t);
  }
  for (const auto& sim : sims) {
    estimate.feasible = estimate.feasible && sim->feasible();
    estimate.structure_loads += sim->structure_loads();
    estimate.disk_gb += sim->disk_bytes() / 1e9;
    estimate.network_gb += sim->network_bytes() / 1e9;
  }
  estimate.events = loop.events_processed();
  estimate.trace_hash = loop.trace_hash();
  estimate.trace = loop.take_trace_records();
  return estimate;
}

}  // namespace graphm::cluster
