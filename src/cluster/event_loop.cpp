#include "cluster/event_loop.hpp"

namespace graphm::cluster {

const char* trace_code_name(TraceCode code) {
  switch (code) {
    case TraceCode::kJobDispatched: return "dispatch";
    case TraceCode::kIngestDone: return "ingest-done";
    case TraceCode::kSuperstep: return "superstep";
    case TraceCode::kJobComplete: return "complete";
    case TraceCode::kJobRejected: return "reject";
    case TraceCode::kJobAborted: return "abort";
    case TraceCode::kFaultInjected: return "fault";
    case TraceCode::kFaultCleared: return "fault-clear";
    case TraceCode::kBackendSuspect: return "suspect";
    case TraceCode::kBackendDead: return "dead";
    case TraceCode::kBackendRejoined: return "rejoin";
    case TraceCode::kJobFailed: return "job-failed";
    case TraceCode::kJobRedispatched: return "redispatch";
    case TraceCode::kJobShed: return "shed";
    case TraceCode::kJobSloShed: return "slo-shed";
    case TraceCode::kSloStateChange: return "slo-state";
  }
  return "?";
}

void EventLoop::schedule_at(std::uint64_t t_ns, std::function<void()> fn) {
  queue_.push(Event{t_ns < now_ns_ ? now_ns_ : t_ns, next_seq_++, std::move(fn)});
}

void EventLoop::run() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; moving the callback out before pop is
    // safe because the comparator never touches `fn`.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ns_ = event.t_ns;
    ++events_processed_;
    event.fn();
  }
}

void EventLoop::trace(TraceCode code, std::uint32_t actor, std::uint32_t job,
                      std::uint64_t detail) {
  const TraceRecord record{now_ns_, code, actor, job, detail};
  const auto mix = [this](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      trace_hash_ ^= (v >> (8 * byte)) & 0xFF;
      trace_hash_ *= 1099511628211ULL;  // FNV-1a prime
    }
  };
  mix(record.t_ns);
  mix(static_cast<std::uint64_t>(record.code));
  mix((std::uint64_t{record.actor} << 32) | record.job);
  mix(record.detail);
  if (record_trace_) trace_records_.push_back(record);
}

}  // namespace graphm::cluster
