#include "graphm/chunk_table.hpp"

#include <numeric>
#include <unordered_map>

namespace graphm::core {

std::size_t chunk_size_bytes(const sim::PlatformConfig& config, std::uint64_t graph_bytes,
                             std::uint64_t num_vertices, std::size_t vertex_value_bytes) {
  // Sc * N * (1 + |V|*Uv/SG) <= C_LLC - r
  const double n = static_cast<double>(config.num_cores == 0 ? 1 : config.num_cores);
  const double vertex_term =
      graph_bytes == 0
          ? 0.0
          : static_cast<double>(num_vertices) * static_cast<double>(vertex_value_bytes) /
                static_cast<double>(graph_bytes);
  const double budget = config.llc_bytes > config.llc_reserved_bytes
                            ? static_cast<double>(config.llc_bytes - config.llc_reserved_bytes)
                            : static_cast<double>(config.llc_bytes);
  const double sc = budget / (n * (1.0 + vertex_term));

  // Common multiple of the edge size and the cache line size.
  const std::size_t quantum = std::lcm(sizeof(graph::Edge), config.cache_line);
  const auto quantized = static_cast<std::size_t>(sc / quantum) * quantum;
  return quantized == 0 ? quantum : quantized;
}

std::uint64_t ChunkInfo::active_edges(const util::AtomicBitmap& bitmap) const {
  std::uint64_t total = 0;
  for (const ChunkEntry& entry : entries) {
    if (bitmap.get(entry.source)) total += entry.out_edges;
  }
  return total;
}

graph::EdgeCount ChunkTable::total_edges() const {
  graph::EdgeCount total = 0;
  for (const ChunkInfo& chunk : chunks) total += chunk.total_edges();
  return total;
}

std::uint64_t ChunkTable::footprint_bytes() const {
  std::uint64_t bytes = chunks.size() * sizeof(ChunkInfo);
  for (const ChunkInfo& chunk : chunks) {
    bytes += chunk.entries.size() * sizeof(ChunkEntry);
    bytes += chunk.runs.size() * sizeof(graph::SourceRun);
    bytes += chunk.run_segments.size() * sizeof(std::uint32_t);
  }
  return bytes;
}

namespace {

// Epoch-stamped open-addressing map from source vertex to entry index. The
// labelling pass is the extra preprocessing Table 3 charges to GraphM, so it
// must stay a small fraction of the base format conversion — a chunk holds at
// most a few thousand edges, and this scratch table costs ~2 probes per edge
// with no allocation per chunk.
class SourceIndex {
 public:
  explicit SourceIndex(std::size_t max_entries) {
    std::size_t cap = 16;
    while (cap < 2 * max_entries) cap <<= 1;
    keys_.assign(cap, 0);
    values_.assign(cap, 0);
    stamps_.assign(cap, 0);
    mask_ = cap - 1;
  }

  void next_chunk() { ++epoch_; }

  /// Returns the slot for `src`; `found` reports whether it was present.
  std::size_t& lookup(graph::VertexId src, bool& found) {
    std::size_t slot = (src * 0x9E3779B9u) & mask_;
    for (;;) {
      if (stamps_[slot] != epoch_) {
        stamps_[slot] = epoch_;
        keys_[slot] = src;
        found = false;
        return values_[slot];
      }
      if (keys_[slot] == src) {
        found = true;
        return values_[slot];
      }
      slot = (slot + 1) & mask_;
    }
  }

 private:
  std::vector<graph::VertexId> keys_;
  std::vector<std::size_t> values_;
  std::vector<std::uint32_t> stamps_;
  std::size_t mask_ = 0;
  std::uint32_t epoch_ = 1;
};

ChunkInfo label_chunk_with(SourceIndex& index, const graph::Edge* edges,
                           graph::EdgeCount count, graph::EdgeCount edge_begin) {
  ChunkInfo info;
  info.edge_begin = edge_begin;
  info.edge_end = edge_begin + count;
  index.next_chunk();
  for (graph::EdgeCount i = 0; i < count; ++i) {
    const graph::VertexId src = edges[i].src;
    bool found = false;
    std::size_t& slot = index.lookup(src, found);
    if (!found) {
      slot = info.entries.size();
      info.entries.push_back(ChunkEntry{src, 1});  // InsertEntry(<es, 1>)
    } else {
      ++info.entries[slot].out_edges;              // N+(es) += 1
    }
    // The run index rides along at no extra passes.
    graph::append_source_run(info.runs, src);
  }
  info.runs_sorted = graph::source_runs_sorted(info.runs);
  if (!info.runs_sorted) info.run_segments = graph::sorted_run_segments(info.runs);
  return info;
}

}  // namespace

ChunkInfo label_chunk(const graph::Edge* edges, graph::EdgeCount count,
                      graph::EdgeCount edge_begin) {
  // Sources end up in first-appearance order, as the streaming pass of
  // Algorithm 1 naturally produces.
  SourceIndex index(std::max<std::size_t>(16, count));
  return label_chunk_with(index, edges, count, edge_begin);
}

ChunkTable label_partition(const graph::Edge* edges, graph::EdgeCount count,
                           std::size_t chunk_bytes, util::ThreadPool* pool) {
  ChunkTable table;
  if (count == 0) return table;
  const graph::EdgeCount edges_per_chunk =
      std::max<graph::EdgeCount>(1, chunk_bytes / sizeof(graph::Edge));
  // "edge_num * SG/|E| >= Sc or P_i is visited" — i.e. cut a chunk once its
  // byte size reaches Sc, or at the end of the partition. The cuts depend
  // only on the byte budget, so each chunk labels independently.
  const auto num_chunks =
      static_cast<std::size_t>((count + edges_per_chunk - 1) / edges_per_chunk);
  table.chunks.resize(num_chunks);
  if (pool != nullptr && num_chunks > 1) {
    pool->parallel_for(num_chunks, [&](std::size_t c) {
      const graph::EdgeCount begin = static_cast<graph::EdgeCount>(c) * edges_per_chunk;
      const graph::EdgeCount n = std::min<graph::EdgeCount>(edges_per_chunk, count - begin);
      SourceIndex scratch(std::min<std::size_t>(n, count));
      table.chunks[c] = label_chunk_with(scratch, edges + begin, n, begin);
    });
    return table;
  }
  SourceIndex scratch(std::min<std::size_t>(edges_per_chunk, count));
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const graph::EdgeCount begin = static_cast<graph::EdgeCount>(c) * edges_per_chunk;
    const graph::EdgeCount n = std::min<graph::EdgeCount>(edges_per_chunk, count - begin);
    table.chunks[c] = label_chunk_with(scratch, edges + begin, n, begin);
  }
  return table;
}

}  // namespace graphm::core
