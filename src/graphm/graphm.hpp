// GraphM facade — the public storage-system API of the paper's Table 1.
//
//   GraphM graphm(store, platform, options);
//   graphm.init();                                  // Init(): label chunks
//   auto loader = graphm.make_loader();             // Sharing() plug-in
//   engine.run_job(job_id, algorithm, *loader);     // GetActiveVertices /
//                                                   // Start / Barrier happen
//                                                   // inside the loader seam
//
// The engine code is unchanged between the -S/-C and -M schemes except for
// which PartitionLoader it is handed — exactly the integration story of the
// paper's Figure 6.
#pragma once

#include <memory>

#include "graphm/sharing_controller.hpp"
#include "graphm/sync_manager.hpp"
#include "grid/loader.hpp"

namespace graphm::core {

class GraphM {
 public:
  GraphM(const storage::PartitionedStore& store, sim::Platform& platform, GraphMOptions options = {});
  ~GraphM();

  GraphM(const GraphM&) = delete;
  GraphM& operator=(const GraphM&) = delete;

  /// Init(): one labelling pass over the graph building every partition's
  /// chunk_table (Algorithm 1). Returns the labelling wall time in ns — the
  /// extra preprocessing cost Table 3 reports.
  std::uint64_t init();

  /// Chunk size chosen by Formula 1 for this graph/platform.
  [[nodiscard]] std::size_t chunk_bytes() const { return chunk_bytes_; }
  [[nodiscard]] const std::vector<ChunkTable>& chunk_tables() const { return chunk_tables_; }
  /// Extra storage GraphM's metadata occupies (Table 3 discussion).
  [[nodiscard]] std::uint64_t metadata_bytes() const;

  /// Registers a job and returns its Sharing() loader. One loader per job
  /// thread; the loader routes register_iteration/acquire/release through the
  /// sharing controller and feeds chunk timings to the sync manager.
  std::unique_ptr<grid::PartitionLoader> make_loader(std::uint32_t job_id);

  [[nodiscard]] SharingController& controller() { return controller_; }
  [[nodiscard]] const SharingController& controller() const { return controller_; }
  [[nodiscard]] SyncManager& sync() { return sync_; }
  [[nodiscard]] const SyncManager& sync() const { return sync_; }
  [[nodiscard]] const storage::PartitionedStore& store() const { return store_; }

 private:
  const storage::PartitionedStore& store_;
  sim::Platform& platform_;
  GraphMOptions options_;
  std::size_t chunk_bytes_ = 0;
  std::vector<ChunkTable> chunk_tables_;
  sim::TrackedAllocation tables_tracking_;
  SyncManager sync_;
  SharingController controller_;
  bool initialized_ = false;
};

}  // namespace graphm::core
