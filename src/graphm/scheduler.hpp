// Section 4's scheduling strategy for out-of-core graph analysis.
//
// Formula 5:  Pri(P) = MAX_{j in J(P)}  (1 / N_j(P)) * N(J(P))
// where J(P) is the set of jobs needing partition P next, N_j(P) the number
// of active partitions of job j, and N(J(P)) the number of jobs needing P.
// Partitions handled by jobs with few active partitions float to the front
// (those jobs finish their iteration quickly and activate more partitions),
// and partitions wanted by many jobs float to the front (one load serves
// them all).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace graphm::core {

using JobId = std::uint32_t;
using PartitionId = std::uint32_t;

/// The global table of Section 3.3.1: partition -> PIDs of jobs that need it.
using GlobalTable = std::map<PartitionId, std::set<JobId>>;

/// Formula 5 for one partition. `job_active_counts[j]` is N_j(P).
double partition_priority(const std::set<JobId>& jobs_needing,
                          const std::map<JobId, std::size_t>& job_active_counts);

/// Orders the partitions of `table` for loading.
/// use_priority=true  -> Section 4 strategy (descending Formula-5 priority,
///                       pid ascending as tie-break);
/// use_priority=false -> the engines' default sequential order (pid
///                       ascending), the paper's Figure 8(a) baseline.
std::vector<PartitionId> loading_order(const GlobalTable& table, bool use_priority);

}  // namespace graphm::core
