#include "graphm/sync_manager.hpp"

#include <algorithm>
#include <cmath>

namespace graphm::core {

void SyncManager::record_chunk(std::uint32_t job_id, std::uint64_t active_edges,
                               std::uint64_t total_edges, std::uint64_t elapsed_ns) {
  MutexLock lock(mutex_);
  JobProfile& profile = profiles_[job_id];
  profile.pending.active_edges += active_edges;
  profile.pending.total_edges += total_edges;
  profile.pending.elapsed_ns += elapsed_ns;

  if (active_edges == 0 && total_edges != 0) {
    // Pure streaming: this chunk's time is T(E) * total_edges. Running mean.
    const double sample = static_cast<double>(elapsed_ns) / static_cast<double>(total_edges);
    t_e_ns_ = (t_e_ns_ * static_cast<double>(t_e_samples_) + sample) /
              static_cast<double>(t_e_samples_ + 1);
    ++t_e_samples_;
  }
}

void SyncManager::finish_partition(std::uint32_t job_id) {
  MutexLock lock(mutex_);
  JobProfile& profile = profiles_[job_id];
  if (profile.pending.total_edges != 0) {
    profile.closed.push_back(profile.pending);
  }
  profile.pending = PartitionObservation{};

  // With two observations of distinct A/B ratio and no direct T(E) sample
  // yet, Formula 2 is a solvable 2x2 system — solve it once.
  if (t_e_samples_ == 0 && profile.closed.size() >= 2) {
    const auto& o1 = profile.closed[profile.closed.size() - 2];
    const auto& o2 = profile.closed.back();
    const double a1 = static_cast<double>(o1.active_edges);
    const double b1 = static_cast<double>(o1.total_edges);
    const double a2 = static_cast<double>(o2.active_edges);
    const double b2 = static_cast<double>(o2.total_edges);
    const double det = a1 * b2 - a2 * b1;
    if (std::abs(det) > 1e-9 * std::max(1.0, std::abs(a1 * b2))) {
      const double t1 = static_cast<double>(o1.elapsed_ns);
      const double t2 = static_cast<double>(o2.elapsed_ns);
      const double te = (a1 * t2 - a2 * t1) / det;
      if (te > 0.0) {
        t_e_ns_ = te;
        t_e_samples_ = 1;
      }
    }
  }
}

bool SyncManager::profiled(std::uint32_t job_id) const {
  MutexLock lock(mutex_);
  const auto it = profiles_.find(job_id);
  return it != profiles_.end() && it->second.closed.size() >= 2;
}

double SyncManager::t_f_locked(std::uint32_t job_id) const {
  const auto it = profiles_.find(job_id);
  if (it == profiles_.end() || it->second.closed.empty()) return 0.0;
  // Least squares with known T(E): minimize over TF of
  //   sum_i (T_i - TE*B_i - TF*A_i)^2  =>  TF = sum A_i*(T_i - TE*B_i) / sum A_i^2.
  double numerator = 0.0;
  double denominator = 0.0;
  for (const auto& o : it->second.closed) {
    const double a = static_cast<double>(o.active_edges);
    const double residual =
        static_cast<double>(o.elapsed_ns) - t_e_ns_ * static_cast<double>(o.total_edges);
    numerator += a * residual;
    denominator += a * a;
  }
  if (denominator == 0.0) return 0.0;
  return std::max(0.0, numerator / denominator);
}

double SyncManager::t_f(std::uint32_t job_id) const {
  MutexLock lock(mutex_);
  return t_f_locked(job_id);
}

double SyncManager::t_e() const {
  MutexLock lock(mutex_);
  return t_e_ns_;
}

double SyncManager::chunk_load_ns(std::uint32_t job_id, const ChunkInfo& chunk,
                                  const util::AtomicBitmap& active) const {
  MutexLock lock(mutex_);
  return t_f_locked(job_id) * static_cast<double>(chunk.active_edges(active));
}

double SyncManager::first_toucher_ns(std::uint32_t job_id, const ChunkInfo& chunk,
                                     const util::AtomicBitmap& active) const {
  MutexLock lock(mutex_);
  return t_f_locked(job_id) * static_cast<double>(chunk.active_edges(active)) +
         t_e_ns_ * static_cast<double>(chunk.total_edges());
}

std::vector<SyncManager::PartitionObservation> SyncManager::observations(
    std::uint32_t job_id) const {
  MutexLock lock(mutex_);
  const auto it = profiles_.find(job_id);
  return it == profiles_.end() ? std::vector<PartitionObservation>{} : it->second.closed;
}

}  // namespace graphm::core
