// Fine-grained synchronization support: the profiling and syncing phases of
// Section 3.4.2.
//
// Profiling phase (Formula 2): for each job j the execution time of a
// partition decomposes as
//     T_i = T(F_j) * A_i + T(E) * B_i
// where A_i = sum of N+(v) over *active* sources (the job's relaxation work)
// and B_i = sum of N+(v) over all sources (the streaming/data-access work).
// T(E) — the per-edge data-access time — is a property of the graph and is
// profiled once: chunks that contain no active vertex for a job are pure
// streaming, so their time gives T(E) directly. T(F_j) then follows from the
// job's first two profiled partitions (least squares over all of them).
//
// Syncing phase (Formulas 3-4): the per-chunk computational load
//     L_k_j = T(F_j) * active_edges_k(j)
// and the first-toucher time
//     F_k_j = L_k_j + T(E) * total_edges_k
// quantify the skewed per-job CPU shares GraphM allocates while all jobs
// step through the chunks in lock-step.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "graphm/chunk_table.hpp"
#include "util/annotations.hpp"

namespace graphm::core {

class SyncManager {
 public:
  struct PartitionObservation {
    std::uint64_t active_edges = 0;  // A_i
    std::uint64_t total_edges = 0;   // B_i
    std::uint64_t elapsed_ns = 0;    // T_i
  };

  /// Chunk-level sample from the engine (accumulated into the current
  /// partition observation; zero-active chunks additionally refine T(E)).
  void record_chunk(std::uint32_t job_id, std::uint64_t active_edges,
                    std::uint64_t total_edges, std::uint64_t elapsed_ns);

  /// Closes the current partition observation for the job (called when the
  /// job releases a partition).
  void finish_partition(std::uint32_t job_id);

  /// True once the job's first two active partitions have been profiled.
  [[nodiscard]] bool profiled(std::uint32_t job_id) const;

  /// T(F_j) in ns/edge. Returns 0 if unprofiled.
  [[nodiscard]] double t_f(std::uint32_t job_id) const;

  /// T(E) in ns/edge (0 until any pure-streaming sample or solvable system
  /// has been seen).
  [[nodiscard]] double t_e() const;

  /// Formula 3.
  [[nodiscard]] double chunk_load_ns(std::uint32_t job_id, const ChunkInfo& chunk,
                                     const util::AtomicBitmap& active) const;
  /// Formula 4.
  [[nodiscard]] double first_toucher_ns(std::uint32_t job_id, const ChunkInfo& chunk,
                                        const util::AtomicBitmap& active) const;

  [[nodiscard]] std::vector<PartitionObservation> observations(std::uint32_t job_id) const;

 private:
  struct JobProfile {
    PartitionObservation pending;      // accumulating the current partition
    std::vector<PartitionObservation> closed;
  };

  [[nodiscard]] double t_f_locked(std::uint32_t job_id) const REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<std::uint32_t, JobProfile> profiles_ GUARDED_BY(mutex_);
  double t_e_ns_ GUARDED_BY(mutex_) = 0.0;
  std::uint64_t t_e_samples_ GUARDED_BY(mutex_) = 0;
};

}  // namespace graphm::core
