// Chunk labelling: Formula 1 (chunk sizing) and Algorithm 1 (the labelling
// pass that builds the per-partition chunk_table array, Set_c).
//
// A chunk is a *logical* range of a partition's edge stream sized to fit the
// LLC alongside the concurrent jobs' job-specific data; the specific graph
// representation is never modified. Each chunk_table entry is the paper's
// key-value pair <source vertex v, N+(v)> — the number of v's out-edges
// inside the chunk — which is exactly what Formulas 2-4 need to compute
// per-job computational loads without re-reading the graph.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "sim/cost_model.hpp"
#include "util/bitmap.hpp"
#include "util/thread_pool.hpp"

namespace graphm::core {

/// Formula 1: the largest chunk size Sc with
///   Sc*N + Sc*N/SG*|V|*Uv + r <= C_LLC,
/// rounded down to a common multiple of the edge size and the cache line
/// size "for better locality". Never returns less than one such multiple.
std::size_t chunk_size_bytes(const sim::PlatformConfig& config, std::uint64_t graph_bytes,
                             std::uint64_t num_vertices, std::size_t vertex_value_bytes);

struct ChunkEntry {
  graph::VertexId source;        // v
  std::uint32_t out_edges;       // N+(v) within the chunk
};

struct ChunkInfo {
  graph::EdgeCount edge_begin = 0;  // range within the partition's edge stream
  graph::EdgeCount edge_end = 0;
  /// c_table: one entry per distinct source, in first-appearance order.
  std::vector<ChunkEntry> entries;
  /// Source-run skip index over the chunk's edge stream (see
  /// graph::SourceRun): recorded for free during the labelling pass and
  /// handed to the engine through ChunkSpan so inactive sources' edges are
  /// never read. Re-labelled alongside entries when a snapshot replaces the
  /// chunk's content.
  std::vector<graph::SourceRun> runs;
  /// True iff `runs` ascends strictly by source (src-sorted chunk content),
  /// which lets sparse frontiers binary-search the run index instead of
  /// scanning it. Computed once at labelling time.
  bool runs_sorted = false;
  /// When the chunk spans several src-sorted grid blocks (so `runs` as a
  /// whole is unsorted), the maximal ascending segments of the run index
  /// (graph::sorted_run_segments boundaries) — the engine binary-searches
  /// within each. Empty for sorted chunks, where the global jump applies.
  std::vector<std::uint32_t> run_segments;

  [[nodiscard]] graph::EdgeCount total_edges() const { return edge_end - edge_begin; }

  /// Sum of N+(v) over sources active in `bitmap` — the
  /// "sum over v in Vk intersect Aj of N+k(v)" term of Formulas 2-3.
  [[nodiscard]] std::uint64_t active_edges(const util::AtomicBitmap& bitmap) const;
};

/// Set_c for one partition.
struct ChunkTable {
  std::vector<ChunkInfo> chunks;

  [[nodiscard]] graph::EdgeCount total_edges() const;
  /// Approximate memory footprint, tracked under kChunkTables.
  [[nodiscard]] std::uint64_t footprint_bytes() const;
};

/// Algorithm 1: labels one partition's edge stream into chunks of at most
/// `chunk_bytes` (the final chunk may be smaller). Chunk boundaries are fixed
/// by size alone, so with `pool` the chunks are labelled in parallel — the
/// output is identical to the serial pass.
ChunkTable label_partition(const graph::Edge* edges, graph::EdgeCount count,
                           std::size_t chunk_bytes, util::ThreadPool* pool = nullptr);

/// Re-labels a single chunk's (possibly mutated/updated) content in place;
/// used when snapshots replace chunk data (Section 3.3.2: "Set_c also needs
/// to be updated accordingly").
ChunkInfo label_chunk(const graph::Edge* edges, graph::EdgeCount count,
                      graph::EdgeCount edge_begin);

}  // namespace graphm::core
