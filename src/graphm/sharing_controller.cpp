#include "graphm/sharing_controller.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace graphm::core {

// GRAPHM_TRACE_SHARING=1 streams every protocol transition (register /
// advance / load / attach / suspend / barrier / detach) to stderr — the tool
// that pinpoints lockstep bugs like a former round member re-attaching
// mid-round. One cached env lookup; disabled it costs a branch. The same
// transitions also feed the obs tracer as instants (see trace_event).
namespace {
bool sharing_trace_enabled() {
  static const bool enabled = std::getenv("GRAPHM_TRACE_SHARING") != nullptr;
  return enabled;
}

std::atomic<std::uint32_t> next_group_id{0};
}  // namespace

SharingController::SharingController(const storage::PartitionedStore& store, sim::Platform& platform,
                                     const std::vector<ChunkTable>* chunk_tables,
                                     GraphMOptions options)
    : store_(store), platform_(platform), chunk_tables_(chunk_tables), options_(options),
      group_id_(next_group_id.fetch_add(1, std::memory_order_relaxed)) {}

void SharingController::trace_event(const char* name, JobId job, std::uint64_t detail,
                                    const char* fmt, ...) {
  if (sharing_trace_enabled()) {
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fflush(stderr);
  }
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    // Interned once per controller; every caller holds mutex_, which also
    // guards trace_track_.
    if (trace_track_ == obs::Tracer::kNoTrack) {
      trace_track_ = tracer.track("sharing #" + std::to_string(group_id_));
    }
    tracer.instant(trace_track_, name, tracer.now_ns(), job, detail);
  }
}

void SharingController::register_job(JobId job) {
  MutexLock lock(mutex_);
  jobs_[job].version = version_counter_;
}

void SharingController::detach_from_round_locked(JobId job) {
  // Mid-round detach: the job leaves a round it was assigned to (deadline
  // cancellation, early termination) without stalling the remaining
  // participants. Barrier bookkeeping shrinks with it, and if the job was the
  // last unreleased participant the round completes on its behalf.
  if (current_pid_ < 0) return;
  const bool was_assigned = current_unacquired_.erase(job) != 0;
  const bool was_unreleased = current_unreleased_.erase(job) != 0;
  if (barrier_members_.erase(job) != 0) {
    if (barrier_participants_ > 0) --barrier_participants_;
    if (barrier_participants_ <= 1) {
      // The survivors have nobody left to step in lock-step with.
      solo_round_.store(true, std::memory_order_release);
    }
    if (barrier_participants_ > 0 && barrier_arrived_ >= barrier_participants_) {
      // Everyone still in the round had already arrived: the departing job
      // was the one the barrier was waiting for. Complete it.
      barrier_arrived_ = 0;
      ++barrier_chunk_;
      ++stats_.chunk_barriers;
    }
  }
  if (was_assigned || was_unreleased) ++stats_.mid_round_detaches;
  if (was_unreleased && current_unreleased_.empty()) {
    buffer_tracking_.release_now();
    buffer_loaded_ = false;
    current_pid_ = -1;
    advance_locked();
  }
  barrier_cv_.notify_all();
}

void SharingController::job_finished(JobId job) {
  MutexLock lock(mutex_);
  trace_event("job_finished", job, 0, "[sc] job_finished job=%u\n", job);
  detach_from_round_locked(job);
  // Drop the job's private mutation copies ("the copied chunks will be
  // released when the corresponding job is finished").
  for (auto m = mutations_.begin(); m != mutations_.end();) {
    if (std::get<0>(m->first) == job) {
      m = mutations_.erase(m);
    } else {
      ++m;
    }
  }
  // Erase rather than flag: a long-lived service routes an unbounded job
  // stream through one controller, and every round assembly walks jobs_
  // under the mutex — finished entries must not accumulate. (Snapshot GC
  // below only consults live jobs, so erasure is equivalent to the flag.)
  jobs_.erase(job);
  gc_updates_locked();
  round_cv_.notify_all();
}

void SharingController::register_iteration(JobId job, const std::vector<PartitionId>& partitions) {
  MutexLock lock(mutex_);
  trace_event("reg_iter", job, partitions.size(), "[sc] reg_iter job=%u n=%zu\n", job,
              partitions.size());
  JobState& state = jobs_[job];
  state.needs = std::set<PartitionId>(partitions.begin(), partitions.end());
  round_cv_.notify_all();
}

bool SharingController::should_defer_locked() const {
  // A live job with no outstanding needs is at an iteration boundary (about
  // to call register_iteration) or about to finish. Starting the next
  // partition round without it would strand it for the whole round, so the
  // round waits — this is what keeps concurrent jobs traversing the graph
  // along the same path instead of drifting apart.
  for (const auto& [job, state] : jobs_) {
    if (state.needs.empty()) return true;
  }
  return false;
}

void SharingController::advance_locked() {
  current_pid_ = -1;
  if (should_defer_locked()) return;
  // Assemble the global table from every live job's outstanding needs.
  GlobalTable table;
  for (const auto& [job, state] : jobs_) {
    for (const PartitionId pid : state.needs) table[pid].insert(job);
  }
  if (table.empty()) {
    return;
  }
  const std::vector<PartitionId> order = loading_order(table, options_.use_scheduling);
  const PartitionId pid = order.front();
  trace_event("advance", 0, pid, "[sc] advance pid=%u participants=%zu\n", pid,
              table.at(pid).size());

  current_pid_ = pid;
  current_unacquired_.clear();
  current_unreleased_.clear();
  barrier_members_.clear();
  for (const JobId job : table.at(pid)) {
    current_unacquired_.insert(job);
    current_unreleased_.insert(job);
    barrier_members_.insert(job);
  }
  buffer_loaded_ = false;
  buffer_loading_ = false;
  barrier_participants_ = current_unreleased_.size();
  barrier_arrived_ = 0;
  barrier_chunk_ = 0;
  // Published for the lock-free begin/end_chunk fast path. Stable while any
  // participant is streaming: the round cannot advance until every
  // participant has released.
  solo_round_.store(barrier_participants_ <= 1, std::memory_order_release);
}

std::optional<grid::PartitionView> SharingController::acquire_next(JobId job) {
  MutexLock lock(mutex_);
  bool suspended = false;
  for (;;) {
    JobState& state = jobs_.at(job);
    if (state.needs.empty()) return std::nullopt;
    if (current_pid_ < 0) {
      advance_locked();
      if (current_pid_ >= 0) {
        round_cv_.notify_all();
        continue;
      }
      // Deferred: another live job is at its iteration boundary.
    } else if (current_unacquired_.count(job) != 0) {
      break;
    } else if (options_.allow_mid_round_attach && buffer_loaded_ &&
               state.needs.count(static_cast<PartitionId>(current_pid_)) != 0 &&
               current_unreleased_.count(job) == 0) {
      // Late attach (service mode): the partition this job needs is already
      // resident, so serve it from the shared buffer mid-round. The job pins
      // the buffer (current_unreleased_) but stays outside the chunk barrier
      // — it free-runs and the lock-step group never waits for it.
      //
      // The attacher may be a *former member* of this very round (it
      // released, started its next iteration, and needs the partition
      // again). Its member pass is over — a member can only release after
      // the round's final chunk barrier completed, so no member is waiting
      // on it — and its re-run must not arrive at the barrier again: strike
      // it from the roster so begin/end_chunk see a non-member.
      const auto pid = static_cast<PartitionId>(current_pid_);
      barrier_members_.erase(job);
      current_unreleased_.insert(job);
      ++stats_.attaches;
      ++stats_.mid_round_attaches;
      trace_event("mid_attach", job, pid, "[sc] mid_attach job=%u pid=%u\n", job, pid);
      return build_view_locked(job, pid);
    }
    // The job does not participate in the current partition (or has already
    // acquired it, or the round is deferred): suspend until state changes.
    // Counted once per suspension, not per wakeup.
    if (!suspended) {
      suspended = true;
      ++stats_.suspensions;
    }
    trace_event("suspend", job, state.needs.size(),
                "[sc] suspend job=%u cur=%lld needs=%zu\n", job, (long long)current_pid_,
                state.needs.size());
    lock.wait(round_cv_);
  }

  const auto pid = static_cast<PartitionId>(current_pid_);
  current_unacquired_.erase(job);

  if (!buffer_loaded_) {
    if (!buffer_loading_) {
      // First arrival: CreateMemory + Load (Algorithm 2 lines 9-10).
      // The disk read happens outside the mutex; the buffer is moved out and
      // back so no guarded member is touched unlocked (buffer_loading_ keeps
      // every other job off it, and the heap storage — the address the LLC
      // sim sees — is reused move-for-move).
      buffer_loading_ = true;
      std::vector<graph::Edge> loading = std::move(shared_buffer_);
      lock.unlock();
      store_.read_partition(pid, loading, platform_, job);
      lock.lock();
      shared_buffer_ = std::move(loading);
      buffer_tracking_ = sim::TrackedAllocation(&platform_.memory(),
                                                sim::MemoryCategory::kGraphStructure,
                                                shared_buffer_.size() * sizeof(graph::Edge));
      buffer_loaded_ = true;
      buffer_loading_ = false;
      ++stats_.partition_loads;
      trace_event("load", job, pid, "[sc] load job=%u pid=%u\n", job, pid);
      round_cv_.notify_all();
    } else {
      while (!buffer_loaded_) lock.wait(round_cv_);
      ++stats_.attaches;  // Attach (Algorithm 2 line 12)
    }
  } else {
    ++stats_.attaches;
  }
  trace_event("acquire", job, pid, "[sc] acquire job=%u pid=%u\n", job, pid);

  return build_view_locked(job, pid);
}

void SharingController::release(JobId job, PartitionId pid) {
  MutexLock lock(mutex_);
  trace_event("release", job, pid, "[sc] release job=%u pid=%u unrel_left=%zu\n", job, pid,
              current_unreleased_.size() - (current_unreleased_.count(job) ? 1 : 0));
  current_unreleased_.erase(job);
  auto it = jobs_.find(job);
  if (it != jobs_.end()) it->second.needs.erase(pid);
  if (current_unreleased_.empty() && static_cast<std::int64_t>(pid) == current_pid_) {
    // Last participant out: drop the shared buffer and move on.
    buffer_tracking_.release_now();
    buffer_loaded_ = false;
    current_pid_ = -1;
    advance_locked();
  }
  round_cv_.notify_all();
  barrier_cv_.notify_all();
}

void SharingController::begin_chunk(JobId job, PartitionId pid, std::uint32_t chunk_id) {
  if (!options_.fine_grained_sync) return;
  // Solo fast path: a round with one participant has nobody to step in
  // lock-step with — skip the mutex entirely so the single job streams its
  // chunks back to back at full block-batched speed.
  if (solo_round_.load(std::memory_order_acquire)) return;
  MutexLock lock(mutex_);
  // Late mid-round attachers are not barrier members: they free-run over the
  // resident buffer instead of pacing (or corrupting) the lock-step group.
  if (barrier_members_.count(job) == 0) return;
  trace_event("begin_chunk_wait", job, chunk_id, "[sc] begin_chunk_wait job=%u pid=%u c=%u bc=%u\n",
              job, pid, chunk_id, barrier_chunk_);
  while (static_cast<std::int64_t>(pid) == current_pid_ && barrier_chunk_ < chunk_id) {
    lock.wait(barrier_cv_);
  }
}

void SharingController::end_chunk(JobId job, PartitionId pid, std::uint32_t chunk_id) {
  if (!options_.fine_grained_sync) return;
  // Solo rounds complete no barrier (and charge no modeled barrier wakeups).
  if (solo_round_.load(std::memory_order_acquire)) return;
  MutexLock lock(mutex_);
  if (static_cast<std::int64_t>(pid) != current_pid_) return;
  if (barrier_members_.count(job) == 0) return;  // late attacher: no barrier
  if (barrier_participants_ <= 1) {
    barrier_chunk_ = chunk_id + 1;
    ++stats_.chunk_barriers;
    return;
  }
  trace_event("end_chunk", job, chunk_id, "[sc] end_chunk job=%u pid=%u c=%u arrived=%zu/%zu\n",
              job, pid, chunk_id, barrier_arrived_ + 1, barrier_participants_);
  if (++barrier_arrived_ == barrier_participants_) {
    barrier_arrived_ = 0;
    barrier_chunk_ = chunk_id + 1;
    ++stats_.chunk_barriers;
    barrier_cv_.notify_all();
    return;
  }
  while (static_cast<std::int64_t>(pid) == current_pid_ && barrier_chunk_ <= chunk_id) {
    lock.wait(barrier_cv_);
  }
}

const SharingController::OverlayPtr* SharingController::resolve_overlay_locked(
    JobId job, PartitionId pid, std::uint32_t chunk_id) const {
  // 1) job-private mutation wins;
  const auto m = mutations_.find({job, pid, chunk_id});
  if (m != mutations_.end()) return &m->second;
  // 2) latest update with version <= the job's snapshot version.
  const auto u = updates_.find({pid, chunk_id});
  if (u != updates_.end()) {
    const auto job_it = jobs_.find(job);
    const std::uint64_t job_version = job_it == jobs_.end() ? version_counter_
                                                            : job_it->second.version;
    const OverlayPtr* best = nullptr;
    for (const OverlayPtr& overlay : u->second) {
      if (overlay->version <= job_version) best = &overlay;
    }
    return best;
  }
  return nullptr;
}

grid::PartitionView SharingController::build_view_locked(JobId job, PartitionId pid) {
  grid::PartitionView view;
  view.pid = pid;
  const auto [vb, ve] = store_.meta().vertex_range(pid);
  view.vertex_begin = vb;
  view.vertex_end = ve;

  const ChunkTable& table = (*chunk_tables_)[pid];
  view.chunks.reserve(table.chunks.size());
  for (std::uint32_t c = 0; c < table.chunks.size(); ++c) {
    const ChunkInfo& info = table.chunks[c];
    grid::ChunkSpan span;
    span.chunk_id = c;
    if (const OverlayPtr* overlay = resolve_overlay_locked(job, pid, c)) {
      span.edges = (*overlay)->edges.data();
      span.edge_count = (*overlay)->edges.size();
      // Overlays are relabelled when created, so their run index matches the
      // replaced content.
      span.runs = (*overlay)->info.runs.data();
      span.num_runs = static_cast<std::uint32_t>((*overlay)->info.runs.size());
      span.runs_sorted = (*overlay)->info.runs_sorted;
      if (!(*overlay)->info.run_segments.empty()) {
        span.run_segments = (*overlay)->info.run_segments.data();
        span.num_run_segments =
            static_cast<std::uint32_t>((*overlay)->info.run_segments.size() - 1);
      }
    } else {
      span.edges = shared_buffer_.data() + info.edge_begin;
      span.edge_count = info.total_edges();
      span.runs = info.runs.data();
      span.num_runs = static_cast<std::uint32_t>(info.runs.size());
      span.runs_sorted = info.runs_sorted;
      if (!info.run_segments.empty()) {
        span.run_segments = info.run_segments.data();
        span.num_run_segments =
            static_cast<std::uint32_t>(info.run_segments.size() - 1);
      }
    }
    span.llc_base = reinterpret_cast<std::uint64_t>(span.edges);
    view.chunks.push_back(span);
  }
  if (table.chunks.empty() && !shared_buffer_.empty()) {
    // Partition without a chunk table (shouldn't happen after Init, but keep
    // the engine safe): expose it as a single chunk.
    view.chunks.push_back(grid::ChunkSpan{
        shared_buffer_.data(), shared_buffer_.size(),
        reinterpret_cast<std::uint64_t>(shared_buffer_.data()), 0});
  }
  return view;
}

std::vector<graph::Edge> SharingController::base_chunk_content_locked(PartitionId pid,
                                                                      std::uint32_t chunk_id,
                                                                      JobId job) {
  const ChunkInfo& info = (*chunk_tables_)[pid].chunks.at(chunk_id);
  std::vector<graph::Edge> edges(info.total_edges());
  store_.read_edges(pid, info.edge_begin, info.total_edges(), edges.data(), platform_, job);
  return edges;
}

SharingController::OverlayPtr SharingController::make_overlay_locked(
    PartitionId pid, std::uint32_t chunk_id, std::vector<graph::Edge> edges,
    std::uint64_t version) {
  auto overlay = std::make_shared<OverlayChunk>();
  overlay->info = label_chunk(edges.data(), edges.size(),
                              (*chunk_tables_)[pid].chunks.at(chunk_id).edge_begin);
  overlay->version = version;
  overlay->tracking = sim::TrackedAllocation(&platform_.memory(),
                                             sim::MemoryCategory::kGraphStructure,
                                             edges.size() * sizeof(graph::Edge));
  overlay->edges = std::move(edges);
  ++stats_.snapshot_copies;
  return overlay;
}

void SharingController::apply_mutation(JobId job, PartitionId pid, std::uint32_t chunk_id,
                                       std::vector<graph::Edge> new_edges) {
  MutexLock lock(mutex_);
  mutations_[{job, pid, chunk_id}] =
      make_overlay_locked(pid, chunk_id, std::move(new_edges), 0);
}

std::uint64_t SharingController::apply_update(PartitionId pid, std::uint32_t chunk_id,
                                              std::vector<graph::Edge> new_edges) {
  MutexLock lock(mutex_);
  const std::uint64_t version = ++version_counter_;
  updates_[{pid, chunk_id}].push_back(
      make_overlay_locked(pid, chunk_id, std::move(new_edges), version));
  return version;
}

std::vector<graph::Edge> SharingController::chunk_content(JobId job, PartitionId pid,
                                                          std::uint32_t chunk_id) {
  MutexLock lock(mutex_);
  if (const OverlayPtr* overlay = resolve_overlay_locked(job, pid, chunk_id)) {
    return (*overlay)->edges;
  }
  return base_chunk_content_locked(pid, chunk_id, job);
}

void SharingController::gc_updates_locked() {
  // "when all previous jobs are completed, these copied chunks will be
  // released": an update version is dead once a newer version exists that is
  // visible to every live job.
  std::uint64_t min_live_version = version_counter_;
  for (const auto& [job, state] : jobs_) {
    min_live_version = std::min(min_live_version, state.version);
  }
  for (auto& [key, versions] : updates_) {
    // Keep the last version whose `version <= min_live_version` and
    // everything newer; drop older entries.
    std::size_t keep_from = 0;
    for (std::size_t i = 0; i < versions.size(); ++i) {
      if (versions[i]->version <= min_live_version) keep_from = i;
    }
    if (keep_from > 0) versions.erase(versions.begin(), versions.begin() + keep_from);
  }
}

SharingController::Stats SharingController::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

std::size_t SharingController::live_jobs() const {
  MutexLock lock(mutex_);
  return jobs_.size();  // finished jobs are erased on job_finished
}

void SharingController::publish_metrics(obs::Registry& registry) const {
  const Stats s = stats();
  registry.set_counter("graphm.sharing.partition_loads", s.partition_loads);
  registry.set_counter("graphm.sharing.attaches", s.attaches);
  registry.set_counter("graphm.sharing.mid_round_attaches", s.mid_round_attaches);
  registry.set_counter("graphm.sharing.suspensions", s.suspensions);
  registry.set_counter("graphm.sharing.chunk_barriers", s.chunk_barriers);
  registry.set_counter("graphm.sharing.snapshot_copies", s.snapshot_copies);
  registry.set_counter("graphm.sharing.mid_round_detaches", s.mid_round_detaches);
  registry.set_gauge("graphm.sharing.live_jobs", static_cast<std::int64_t>(live_jobs()));
  registry.set_gauge("graphm.sharing.snapshot_chunks_live",
                     static_cast<std::int64_t>(snapshot_chunks_live()));
}

std::size_t SharingController::snapshot_chunks_live() const {
  MutexLock lock(mutex_);
  std::size_t live = mutations_.size();
  for (const auto& [key, versions] : updates_) live += versions.size();
  return live;
}

}  // namespace graphm::core
