#include "graphm/scheduler.hpp"

#include <algorithm>

namespace graphm::core {

double partition_priority(const std::set<JobId>& jobs_needing,
                          const std::map<JobId, std::size_t>& job_active_counts) {
  if (jobs_needing.empty()) return 0.0;
  const double n_jobs = static_cast<double>(jobs_needing.size());
  double best = 0.0;
  for (const JobId job : jobs_needing) {
    const auto it = job_active_counts.find(job);
    const std::size_t active = it == job_active_counts.end() || it->second == 0 ? 1 : it->second;
    best = std::max(best, (1.0 / static_cast<double>(active)) * n_jobs);
  }
  return best;
}

std::vector<PartitionId> loading_order(const GlobalTable& table, bool use_priority) {
  std::vector<PartitionId> order;
  order.reserve(table.size());
  for (const auto& [pid, jobs] : table) {
    if (!jobs.empty()) order.push_back(pid);
  }
  if (!use_priority) return order;  // std::map iteration is already pid-ascending

  // N_j(P): how many partitions each job currently needs.
  std::map<JobId, std::size_t> job_active_counts;
  for (const auto& [pid, jobs] : table) {
    for (const JobId job : jobs) ++job_active_counts[job];
  }
  std::vector<std::pair<double, PartitionId>> scored;
  scored.reserve(order.size());
  for (const PartitionId pid : order) {
    scored.emplace_back(partition_priority(table.at(pid), job_active_counts), pid);
  }
  std::stable_sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  order.clear();
  for (const auto& [priority, pid] : scored) order.push_back(pid);
  return order;
}

}  // namespace graphm::core
