#include "graphm/graphm.hpp"

#include <stdexcept>

#include "util/timer.hpp"

namespace graphm::core {

namespace {

/// The Sharing() adapter: implements the engine's PartitionLoader seam on top
/// of the sharing controller and the sync manager. The Start()/Barrier()
/// notifications of Table 1 correspond to begin_chunk/end_chunk around the
/// streaming of each shared chunk.
class SharedLoader final : public grid::PartitionLoader {
 public:
  SharedLoader(SharingController& controller, SyncManager& sync, std::uint32_t job_id)
      : controller_(controller), sync_(sync), job_id_(job_id) {
    controller_.register_job(job_id_);
  }

  void register_iteration(std::uint32_t job_id,
                          const std::vector<std::uint32_t>& active_partitions) override {
    controller_.register_iteration(job_id, active_partitions);
  }

  std::optional<grid::PartitionView> acquire_next(std::uint32_t job_id) override {
    return controller_.acquire_next(job_id);
  }

  void release(std::uint32_t job_id, std::uint32_t pid) override {
    sync_.finish_partition(job_id);
    controller_.release(job_id, pid);
  }

  void begin_chunk(std::uint32_t job_id, std::uint32_t pid, std::uint32_t chunk_id) override {
    controller_.begin_chunk(job_id, pid, chunk_id);
  }

  void end_chunk(std::uint32_t job_id, std::uint32_t pid, std::uint32_t chunk_id,
                 std::uint64_t active_edges, std::uint64_t total_edges,
                 std::uint64_t elapsed_ns) override {
    // Profiling phase sample first, then the chunk barrier arrival.
    sync_.record_chunk(job_id, active_edges, total_edges, elapsed_ns);
    controller_.end_chunk(job_id, pid, chunk_id);
  }

  void job_finished(std::uint32_t job_id) override { controller_.job_finished(job_id); }

 private:
  SharingController& controller_;
  SyncManager& sync_;
  std::uint32_t job_id_;
};

}  // namespace

GraphM::GraphM(const storage::PartitionedStore& store, sim::Platform& platform, GraphMOptions options)
    : store_(store),
      platform_(platform),
      options_(options),
      sync_(),
      controller_(store, platform, &chunk_tables_, options) {}

GraphM::~GraphM() = default;

std::uint64_t GraphM::init() {
  util::Timer timer;
  const auto& meta = store_.meta();

  chunk_bytes_ = options_.chunk_bytes_override != 0
                     ? options_.chunk_bytes_override
                     : chunk_size_bytes(platform_.config(), meta.num_edges * sizeof(graph::Edge),
                                        meta.num_vertices, options_.vertex_value_bytes);

  chunk_tables_.clear();
  chunk_tables_.resize(meta.num_partitions);
  // Partitions are read serially (the simulated page-cache charges stay in a
  // deterministic order); the labelling passes fan out across the pool.
  std::unique_ptr<util::ThreadPool> pool;
  if (options_.label_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(options_.label_threads);
  }
  std::vector<graph::Edge> buffer;
  for (std::uint32_t pid = 0; pid < meta.num_partitions; ++pid) {
    store_.read_partition(pid, buffer, platform_, kPreprocessJobId);
    chunk_tables_[pid] = label_partition(buffer.data(), buffer.size(), chunk_bytes_,
                                         pool.get());
  }
  tables_tracking_ = sim::TrackedAllocation(&platform_.memory(),
                                            sim::MemoryCategory::kChunkTables, metadata_bytes());
  initialized_ = true;
  return timer.elapsed_ns();
}

std::uint64_t GraphM::metadata_bytes() const {
  std::uint64_t bytes = 0;
  for (const ChunkTable& table : chunk_tables_) bytes += table.footprint_bytes();
  return bytes;
}

std::unique_ptr<grid::PartitionLoader> GraphM::make_loader(std::uint32_t job_id) {
  if (!initialized_) throw std::logic_error("GraphM::make_loader before init()");
  return std::make_unique<SharedLoader>(controller_, sync_, job_id);
}

}  // namespace graphm::core
