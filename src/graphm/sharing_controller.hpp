// The graph sharing controller (Section 3.3) plus the consistent-snapshot
// machinery (Section 3.3.2) and the chunk-grained synchronization barrier
// the synchronization manager drives (Section 3.4.2).
//
// One SharingController serves all concurrent jobs of one graph:
//  * a global table maps each partition to the set of jobs that must process
//    it next; the loading order over that table comes from Section 4's
//    priority (Formula 5) or, without the strategy, ascending pid;
//  * exactly one partition is resident at a time in a single shared buffer
//    (Algorithm 2: the first arriving job loads, the rest attach); jobs that
//    do not need the current partition are suspended on a condition variable
//    and resumed when one of theirs becomes current;
//  * while a partition is shared, its participant jobs step through the
//    labelled chunks in lock-step (a generation barrier per chunk), so each
//    chunk is pulled into the simulated LLC once and reused by every job;
//  * snapshots: *mutations* are chunk-grained copies private to one job;
//    *updates* are chunk-grained versions visible only to jobs submitted
//    later — earlier jobs keep resolving to the older version.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "graphm/chunk_table.hpp"
#include "util/annotations.hpp"
#include "graphm/scheduler.hpp"
#include "grid/grid_store.hpp"
#include "grid/partition_view.hpp"
#include "obs/metrics.hpp"
#include "sim/platform.hpp"

namespace graphm::core {

struct GraphMOptions {
  bool use_scheduling = true;      // Section 4 strategy (Figure 18 ablation)
  bool fine_grained_sync = true;   // chunk barrier (ablation)
  std::size_t vertex_value_bytes = sizeof(double);  // Uv of Formula 1
  std::size_t chunk_bytes_override = 0;             // 0 = Formula 1
  /// Workers for Init()'s labelling pass (Algorithm 1). Chunk boundaries are
  /// size-determined, so parallel labelling is bit-identical to serial.
  std::size_t label_threads = 1;
  /// Open-loop service mode (Algorithm 2 taken to its limit): a job whose
  /// needs include the partition already resident in the shared buffer may
  /// attach to the round in flight instead of waiting for the next round.
  /// Late attachers free-run over the resident buffer (they join neither the
  /// chunk barrier nor its lock-step pacing) and hold the buffer until they
  /// release, so the group never reloads for them. Off by default: the
  /// closed-batch executor keeps the paper's strict round membership.
  bool allow_mid_round_attach = false;
};

/// Reserved job id for preprocessing-time I/O accounting.
inline constexpr std::uint32_t kPreprocessJobId = 255;

class SharingController {
 public:
  struct Stats {
    std::uint64_t partition_loads = 0;   // Load() executions (buffer fills)
    std::uint64_t attaches = 0;          // jobs served from the shared buffer
    std::uint64_t mid_round_attaches = 0;  // late joins to a round in flight
    std::uint64_t suspensions = 0;       // waits in acquire_next
    std::uint64_t chunk_barriers = 0;    // completed chunk barrier rounds
    std::uint64_t snapshot_copies = 0;   // COW chunk copies created
    std::uint64_t mid_round_detaches = 0;  // jobs detached from a live round
  };

  SharingController(const storage::PartitionedStore& store, sim::Platform& platform,
                    const std::vector<ChunkTable>* chunk_tables, GraphMOptions options);

  // --- job lifecycle -------------------------------------------------------
  /// Captures the job's snapshot version (updates applied later stay
  /// invisible to it).
  void register_job(JobId job);
  /// Ends the job: detaches it from any live round, frees its mutation
  /// copies and erases its entry (GCing update versions it kept alive).
  void job_finished(JobId job);

  // --- iteration protocol (the PartitionLoader seam) -----------------------
  void register_iteration(JobId job, const std::vector<PartitionId>& partitions);
  std::optional<grid::PartitionView> acquire_next(JobId job);
  void release(JobId job, PartitionId pid);
  void begin_chunk(JobId job, PartitionId pid, std::uint32_t chunk_id);
  void end_chunk(JobId job, PartitionId pid, std::uint32_t chunk_id);

  // --- snapshots (Section 3.3.2) -------------------------------------------
  /// Job-private modification of one chunk; other jobs keep the shared data.
  void apply_mutation(JobId job, PartitionId pid, std::uint32_t chunk_id,
                      std::vector<graph::Edge> new_edges);
  /// Graph update: visible to jobs registered *after* this call. Returns the
  /// new version number.
  std::uint64_t apply_update(PartitionId pid, std::uint32_t chunk_id,
                             std::vector<graph::Edge> new_edges);
  /// The chunk content the given job would observe (loads the base from disk
  /// if no overlay applies). For tests and the evolving-graph example.
  std::vector<graph::Edge> chunk_content(JobId job, PartitionId pid, std::uint32_t chunk_id);

  [[nodiscard]] Stats stats() const;
  /// Number of live (registered, unfinished) jobs.
  [[nodiscard]] std::size_t live_jobs() const;
  /// Currently retained snapshot chunk copies (after GC).
  [[nodiscard]] std::size_t snapshot_chunks_live() const;
  /// Re-homes Stats into `registry` under `graphm.sharing.*` (publish-style:
  /// overwrites with current totals, callable at any snapshot point).
  void publish_metrics(obs::Registry& registry) const;

 private:
  /// One entry per *live* job (job_finished erases — the service routes an
  /// unbounded job stream through one controller, and round assembly walks
  /// this map under the mutex).
  struct JobState {
    std::set<PartitionId> needs;
    std::uint64_t version = 0;
  };
  struct OverlayChunk {
    std::vector<graph::Edge> edges;
    ChunkInfo info;              // re-labelled (Set_c update)
    std::uint64_t version = 0;   // updates only
    sim::TrackedAllocation tracking;
  };
  using OverlayPtr = std::shared_ptr<OverlayChunk>;

  void advance_locked() REQUIRES(mutex_);
  [[nodiscard]] bool should_defer_locked() const REQUIRES(mutex_);
  [[nodiscard]] grid::PartitionView build_view_locked(JobId job, PartitionId pid)
      REQUIRES(mutex_);
  [[nodiscard]] const OverlayPtr* resolve_overlay_locked(JobId job, PartitionId pid,
                                                         std::uint32_t chunk_id) const
      REQUIRES(mutex_);
  void gc_updates_locked() REQUIRES(mutex_);
  OverlayPtr make_overlay_locked(PartitionId pid, std::uint32_t chunk_id,
                                 std::vector<graph::Edge> edges, std::uint64_t version)
      REQUIRES(mutex_);
  std::vector<graph::Edge> base_chunk_content_locked(PartitionId pid, std::uint32_t chunk_id,
                                                     JobId job) REQUIRES(mutex_);

  const storage::PartitionedStore& store_;
  sim::Platform& platform_;
  const std::vector<ChunkTable>* chunk_tables_;
  GraphMOptions options_;

  mutable Mutex mutex_;
  std::condition_variable round_cv_;   // round advance, buffer loads, registrations
  std::condition_variable barrier_cv_;  // chunk barrier (participants only)

  std::map<JobId, JobState> jobs_ GUARDED_BY(mutex_);
  std::uint64_t version_counter_ GUARDED_BY(mutex_) = 0;

  void detach_from_round_locked(JobId job) REQUIRES(mutex_);

  /// The sharing trace seam: every protocol transition goes through here.
  /// Sinks: stderr printf when GRAPHM_TRACE_SHARING is set (the original
  /// lockstep-debugging stream, preserved verbatim) and an obs instant on
  /// this controller's "sharing #N" track when the global tracer is on.
  void trace_event(const char* name, JobId job, std::uint64_t detail,
                   const char* fmt, ...) REQUIRES(mutex_);

  const std::uint32_t group_id_;  // distinguishes controllers' trace tracks
  std::uint32_t trace_track_ GUARDED_BY(mutex_) = 0xFFFFFFFFu;  // lazily interned

  // Serving state (Algorithm 2).
  std::int64_t current_pid_ GUARDED_BY(mutex_) = -1;
  std::set<JobId> current_unacquired_ GUARDED_BY(mutex_);
  std::set<JobId> current_unreleased_ GUARDED_BY(mutex_);
  /// Round participants subject to the chunk barrier. Late mid-round
  /// attachers appear in current_unreleased_ (they pin the buffer) but never
  /// here — they stream at their own pace.
  std::set<JobId> barrier_members_ GUARDED_BY(mutex_);
  std::vector<graph::Edge> shared_buffer_ GUARDED_BY(mutex_);
  bool buffer_loaded_ GUARDED_BY(mutex_) = false;
  bool buffer_loading_ GUARDED_BY(mutex_) = false;
  sim::TrackedAllocation buffer_tracking_ GUARDED_BY(mutex_);

  // Chunk barrier.
  std::size_t barrier_participants_ GUARDED_BY(mutex_) = 0;
  std::size_t barrier_arrived_ GUARDED_BY(mutex_) = 0;
  std::uint32_t barrier_chunk_ GUARDED_BY(mutex_) = 0;
  /// True while the current round has at most one participant; read without
  /// the mutex by begin/end_chunk (it only changes between rounds, and a
  /// round cannot advance while one of its participants is streaming).
  std::atomic<bool> solo_round_{true};

  // Snapshots: mutations keyed by (job, pid, chunk); updates keyed by
  // (pid, chunk) as a version-ascending list.
  std::map<std::tuple<JobId, PartitionId, std::uint32_t>, OverlayPtr> mutations_
      GUARDED_BY(mutex_);
  std::map<std::pair<PartitionId, std::uint32_t>, std::vector<OverlayPtr>> updates_
      GUARDED_BY(mutex_);

  Stats stats_ GUARDED_BY(mutex_);
};

}  // namespace graphm::core
