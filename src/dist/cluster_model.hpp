// Shared model for the simulated distributed systems of the paper's Table 4
// and Figure 21 (PowerGraph and Chaos, each under the -S/-C/-M schemes).
//
// The cluster engines are *analytic*: a job is first profiled for real
// against the in-memory edge list (per-iteration active vertices/edges, via
// the same StreamingAlgorithm implementations every real engine runs), and
// the engine then prices that profile on a modeled cluster — compute over
// nodes*cores, replica synchronization over the aggregate network, streaming
// over the aggregate disks. This mirrors how the paper reports the
// distributed rows: the schemes differ in how often the *structure* moves
// (the thing GraphM's sharing removes), which the model makes explicit via
// RunEstimate::structure_loads.
#pragma once

#include <cstdint>
#include <vector>

#include "algos/factory.hpp"
#include "graph/edge_list.hpp"

namespace graphm::dist {

/// Per-iteration trace of one job, measured by running the real algorithm
/// over the edge list (per-edge semantics, single thread).
struct JobProfile {
  algos::JobSpec spec;
  std::vector<std::uint64_t> active_vertices;  // frontier size per iteration
  std::vector<std::uint64_t> active_edges;     // edges relaxed per iteration
  std::uint64_t total_active_edges = 0;

  [[nodiscard]] std::uint64_t iterations() const { return active_edges.size(); }
  [[nodiscard]] std::uint64_t max_iterations() const { return iterations(); }
};

JobProfile profile_job(const graph::EdgeList& graph, const algos::JobSpec& spec);
std::vector<JobProfile> profile_jobs(const graph::EdgeList& graph,
                                     const std::vector<algos::JobSpec>& jobs);

/// PowerGraph-style vertex-cut replication factor: edges are hashed across
/// `num_nodes` machines and the factor is the average number of machines
/// holding a replica of a vertex (averaged over vertices with at least one
/// edge). Deterministic; grows sublinearly with the node count and is
/// bounded by it.
double replication_factor(const graph::EdgeList& graph, std::size_t num_nodes);

/// The machine an edge lands on under the deterministic vertex-cut hash —
/// the single placement function shared by replication_factor and the
/// cluster subsystem's message-level placement (src/cluster/), so the DES
/// prices exactly the cut the analytic replication factor describes.
std::size_t edge_placement_node(const graph::Edge& e, std::size_t num_nodes);

struct ClusterConfig {
  std::size_t num_nodes = 64;
  /// Table-4 style job grouping: jobs are assigned round-robin to groups and
  /// each group runs on an equal slice of the nodes; the makespan is the
  /// slowest group's.
  std::size_t num_groups = 1;
  std::uint64_t node_memory_bytes = 4ull << 30;
  std::size_t cores_per_node = 8;
  double net_bandwidth_bytes_per_s = 125.0 * 1024 * 1024;   // 1 GbE per node
  double disk_bandwidth_bytes_per_s = 100.0 * 1024 * 1024;  // one HDD per node
};

struct DistScheme {
  enum Kind : int { kSequential = 0, kConcurrent = 1, kShared = 2 };
  Kind kind = kSequential;
};

struct RunEstimate {
  double seconds = 0.0;
  bool feasible = true;
  /// Times the graph structure moved through the cluster (loads under
  /// PowerGraph, full-graph streams under Chaos) — the redundancy the -M
  /// scheme eliminates.
  double structure_loads = 0.0;
  double network_gb = 0.0;
  double disk_gb = 0.0;
};

/// Modeled per-edge relaxation cost (seconds) shared by the cluster engines.
inline constexpr double kEdgeComputeSeconds = 2e-9;
/// Vertex value footprint used for replica synchronization (the paper's Uv).
inline constexpr double kVertexValueBytes = 8.0;

/// Jobs of group `g` under round-robin assignment.
std::vector<std::size_t> group_jobs(std::size_t num_jobs, std::size_t num_groups,
                                    std::size_t g);

}  // namespace graphm::dist
