#include "dist/chaos_engine.hpp"

#include <algorithm>

namespace graphm::dist {

namespace {
/// Aggregate-bandwidth degradation per extra concurrent full-graph stream
/// (seek interference on spinning disks).
constexpr double kStreamInterference = 0.35;
}  // namespace

RunEstimate run_chaos(DistScheme scheme, const std::vector<JobProfile>& profiles,
                      const graph::EdgeList& graph, const ClusterConfig& cluster) {
  RunEstimate estimate;
  if (profiles.empty() || cluster.num_nodes == 0) return estimate;

  const std::size_t groups = std::max<std::size_t>(1, cluster.num_groups);
  const std::size_t m = std::max<std::size_t>(1, cluster.num_nodes / groups);
  const double structure_bytes =
      static_cast<double>(graph.num_edges()) * sizeof(graph::Edge);
  const double agg_disk = static_cast<double>(m) * cluster.disk_bandwidth_bytes_per_s;
  const double cores = static_cast<double>(m) * static_cast<double>(cluster.cores_per_node);
  const double stream_s = structure_bytes / agg_disk;

  double makespan = 0.0;
  for (std::size_t g = 0; g < groups; ++g) {
    const auto jobs = group_jobs(profiles.size(), groups, g);
    if (jobs.empty()) continue;
    const auto k = static_cast<double>(jobs.size());

    double compute_sum = 0.0;
    double iters_sum = 0.0;
    double iters_max = 0.0;
    for (const std::size_t j : jobs) {
      const JobProfile& p = profiles[j];
      compute_sum += static_cast<double>(p.total_active_edges) * kEdgeComputeSeconds / cores;
      iters_sum += static_cast<double>(p.iterations());
      iters_max = std::max(iters_max, static_cast<double>(p.iterations()));
    }

    double streams = 0.0;
    double stream_time = 0.0;
    switch (scheme.kind) {
      case DistScheme::kSequential:
        streams = iters_sum;
        stream_time = iters_sum * stream_s;
        break;
      case DistScheme::kConcurrent:
        streams = iters_sum;
        stream_time = iters_sum * stream_s * (1.0 + kStreamInterference * (k - 1.0));
        break;
      case DistScheme::kShared:
        streams = iters_max;
        stream_time = iters_max * stream_s;
        break;
    }
    makespan = std::max(makespan, stream_time + compute_sum);
    estimate.structure_loads += streams;
    estimate.disk_gb += streams * structure_bytes / 1e9;
    estimate.network_gb += streams * structure_bytes / 1e9;
  }
  estimate.seconds = makespan;
  return estimate;
}

}  // namespace graphm::dist
