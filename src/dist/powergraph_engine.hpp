// Simulated PowerGraph (in-memory, vertex-cut) under the -S/-C/-M schemes.
//
// Cost model, per group of m nodes running k jobs:
//   ingest  = SG/(m*disk_bw) + SG/(m*net_bw)      read + shuffle one structure
//   compute = total_active_edges * t_edge/(m*cores)
//   comm    = iterations * r(m) * |V| * Uv / (m*net_bw)   replica sync rounds
//   -S: sum_j (ingest + compute_j + comm_j); one structure load per job.
//   -C: jobs overlap — max(k*ingest, sum_j work_j * (1 + beta*(k-1))): loads
//       still per job, plus a contention factor for k private structures
//       thrashing node memory (the paper's memory-error rows come from the
//       feasibility check, not a timing penalty).
//   -M: one shared structure per group: ingest + sum_j work_j.
// Feasibility: the replicated structure(s) plus per-job replicated vertex
// data must fit node memory ("-" rows of Table 4).
#pragma once

#include "dist/cluster_model.hpp"

namespace graphm::dist {

RunEstimate run_powergraph(DistScheme scheme, const std::vector<JobProfile>& profiles,
                           const graph::EdgeList& graph, const ClusterConfig& cluster);

}  // namespace graphm::dist
