// Simulated Chaos (out-of-core streaming over the cluster's disks) under the
// -S/-C/-M schemes.
//
// Every iteration of every job streams the full edge set from the cluster's
// disks (Chaos does no selective scheduling), so the structure traffic
// dominates. Per group of m nodes running k jobs:
//   stream  = SG/(m*disk_bw)                      one full-graph pass
//   compute = total_active_edges * t_edge/(m*cores)
//   -S: sum_j iters_j * stream + compute; streams run back to back.
//   -C: the k concurrent streams interleave on spinning disks — aggregate
//       bandwidth degrades by (1 + delta*(k-1)), which makes Chaos-C *slower*
//       than Chaos-S (the paper's Table-4 inversion).
//   -M: all jobs ride one shared stream; the graph is streamed max_j iters_j
//       times in total.
// Always feasible: Chaos never needs the graph resident in memory.
#pragma once

#include "dist/cluster_model.hpp"

namespace graphm::dist {

RunEstimate run_chaos(DistScheme scheme, const std::vector<JobProfile>& profiles,
                      const graph::EdgeList& graph, const ClusterConfig& cluster);

}  // namespace graphm::dist
