#include "dist/powergraph_engine.hpp"

#include <algorithm>
#include <cmath>

namespace graphm::dist {

namespace {
/// Slowdown per extra concurrent job under -C: private replicas evict each
/// other from node caches/memory bandwidth.
constexpr double kConcurrencyDrag = 0.08;
}  // namespace

RunEstimate run_powergraph(DistScheme scheme, const std::vector<JobProfile>& profiles,
                           const graph::EdgeList& graph, const ClusterConfig& cluster) {
  RunEstimate estimate;
  if (profiles.empty() || cluster.num_nodes == 0) return estimate;

  const std::size_t groups = std::max<std::size_t>(1, cluster.num_groups);
  const std::size_t m = std::max<std::size_t>(1, cluster.num_nodes / groups);
  const double r = replication_factor(graph, m);
  const double structure_bytes =
      static_cast<double>(graph.num_edges()) * sizeof(graph::Edge);
  const double vertex_bytes = static_cast<double>(graph.num_vertices()) * kVertexValueBytes;
  const double agg_disk = static_cast<double>(m) * cluster.disk_bandwidth_bytes_per_s;
  const double agg_net = static_cast<double>(m) * cluster.net_bandwidth_bytes_per_s;
  const double cores = static_cast<double>(m) * static_cast<double>(cluster.cores_per_node);

  const double ingest_s = structure_bytes / agg_disk + structure_bytes / agg_net;
  const double structure_mem_per_node = (structure_bytes + r * vertex_bytes) / m;
  const double job_mem_per_node = r * vertex_bytes / m;

  double makespan = 0.0;
  for (std::size_t g = 0; g < groups; ++g) {
    const auto jobs = group_jobs(profiles.size(), groups, g);
    if (jobs.empty()) continue;
    const auto k = static_cast<double>(jobs.size());

    double work_sum = 0.0;
    double comm_bytes = 0.0;
    for (const std::size_t j : jobs) {
      const JobProfile& p = profiles[j];
      const double compute_s =
          static_cast<double>(p.total_active_edges) * kEdgeComputeSeconds / cores;
      const double job_comm_bytes =
          static_cast<double>(p.iterations()) * r * vertex_bytes;
      work_sum += compute_s + job_comm_bytes / agg_net;
      comm_bytes += job_comm_bytes;
    }

    double group_s = 0.0;
    double structures_resident = 1.0;
    switch (scheme.kind) {
      case DistScheme::kSequential:
        group_s = k * ingest_s + work_sum;
        estimate.structure_loads += k;
        structures_resident = 1.0;
        break;
      case DistScheme::kConcurrent:
        group_s = std::max(k * ingest_s,
                           work_sum * (1.0 + kConcurrencyDrag * (k - 1.0)));
        estimate.structure_loads += k;
        structures_resident = k;
        break;
      case DistScheme::kShared:
        group_s = ingest_s + work_sum;
        estimate.structure_loads += 1;
        structures_resident = 1.0;
        break;
    }
    makespan = std::max(makespan, group_s);

    const double mem_per_node =
        structures_resident * structure_mem_per_node + k * job_mem_per_node;
    if (mem_per_node > static_cast<double>(cluster.node_memory_bytes)) {
      estimate.feasible = false;
    }

    estimate.network_gb +=
        (estimate.structure_loads * structure_bytes + comm_bytes) / 1e9;
    estimate.disk_gb += estimate.structure_loads * structure_bytes / 1e9;
  }
  estimate.seconds = makespan;
  return estimate;
}

}  // namespace graphm::dist
