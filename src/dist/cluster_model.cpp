#include "dist/cluster_model.hpp"

#include <bit>

namespace graphm::dist {

JobProfile profile_job(const graph::EdgeList& graph, const algos::JobSpec& spec) {
  JobProfile profile;
  profile.spec = spec;
  auto algorithm = algos::make_algorithm(spec);
  // Algorithms may keep a reference to the degree array (PageRank does).
  const std::vector<std::uint32_t> out_degrees = graph.out_degrees();
  algorithm->init(graph.num_vertices(), out_degrees, nullptr);

  constexpr std::uint64_t kGuard = 100000;
  std::uint64_t iteration = 0;
  while (!algorithm->done() && iteration < kGuard) {
    algorithm->iteration_start(iteration);
    const util::AtomicBitmap& active = algorithm->active_vertices();
    profile.active_vertices.push_back(active.count());
    // The devirtualized block path: profiling a 64-job mix re-streams the
    // whole edge list once per iteration, so it rides the same hot loop the
    // engines use.
    const graph::EdgeCount relaxed = algorithm->process_edge_block(
        graph.edges().data(), graph.num_edges(), active);
    profile.active_edges.push_back(relaxed);
    profile.total_active_edges += relaxed;
    algorithm->iteration_end();
    ++iteration;
  }
  return profile;
}

std::vector<JobProfile> profile_jobs(const graph::EdgeList& graph,
                                     const std::vector<algos::JobSpec>& jobs) {
  std::vector<JobProfile> profiles;
  profiles.reserve(jobs.size());
  for (const auto& spec : jobs) profiles.push_back(profile_job(graph, spec));
  return profiles;
}

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t edge_placement_node(const graph::Edge& e, std::size_t num_nodes) {
  const std::uint64_t key = (std::uint64_t{e.src} << 32) | e.dst;
  return static_cast<std::size_t>(splitmix64(key) % num_nodes);
}

double replication_factor(const graph::EdgeList& graph, std::size_t num_nodes) {
  if (num_nodes == 0 || graph.num_vertices() == 0) return 1.0;
  const std::size_t words_per_vertex = (num_nodes + 63) / 64;
  std::vector<std::uint64_t> replicas(
      static_cast<std::size_t>(graph.num_vertices()) * words_per_vertex, 0);
  for (const graph::Edge& e : graph.edges()) {
    const std::size_t node = edge_placement_node(e, num_nodes);
    const std::uint64_t mask = 1ULL << (node & 63);
    replicas[std::size_t{e.src} * words_per_vertex + (node >> 6)] |= mask;
    replicas[std::size_t{e.dst} * words_per_vertex + (node >> 6)] |= mask;
  }
  std::uint64_t total = 0;
  std::uint64_t touched = 0;
  for (graph::VertexId v = 0; v < graph.num_vertices(); ++v) {
    std::uint64_t count = 0;
    for (std::size_t w = 0; w < words_per_vertex; ++w) {
      count += std::popcount(replicas[std::size_t{v} * words_per_vertex + w]);
    }
    if (count != 0) {
      total += count;
      ++touched;
    }
  }
  return touched == 0 ? 1.0 : static_cast<double>(total) / static_cast<double>(touched);
}

std::vector<std::size_t> group_jobs(std::size_t num_jobs, std::size_t num_groups,
                                    std::size_t g) {
  std::vector<std::size_t> jobs;
  for (std::size_t j = g; j < num_jobs; j += std::max<std::size_t>(1, num_groups)) {
    jobs.push_back(j);
  }
  return jobs;
}

}  // namespace graphm::dist
