// ASCII table printer used by the bench harnesses to emit the same rows and
// series the paper's tables/figures report.
#pragma once

#include <string>
#include <vector>

namespace graphm::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 2);

  /// Renders the table to stdout.
  void print() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace graphm::util
