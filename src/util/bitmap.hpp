// Fixed-size atomic bitmap used for per-job active-vertex sets and for the
// engines' selective-scheduling masks (`should_access_shard`).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace graphm::util {

/// Thread-safe bitmap over [0, size). set/get are lock-free; clear_all is not
/// safe against concurrent set (callers quiesce between iterations, as the
/// engines do between supersteps).
class AtomicBitmap {
 public:
  AtomicBitmap() = default;
  explicit AtomicBitmap(std::size_t size);

  AtomicBitmap(const AtomicBitmap& other);
  AtomicBitmap& operator=(const AtomicBitmap& other);
  AtomicBitmap(AtomicBitmap&&) noexcept = default;
  AtomicBitmap& operator=(AtomicBitmap&&) noexcept = default;

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Sets bit i; returns true iff the bit was previously clear.
  bool set(std::size_t i);
  /// Clears bit i; returns true iff the bit was previously set.
  bool clear(std::size_t i);
  [[nodiscard]] bool get(std::size_t i) const;

  void clear_all();
  void set_all();

  /// Population count (not atomic w.r.t. concurrent mutation).
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] bool any() const;

  /// Calls fn(i) for every set bit, in increasing order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w].load(std::memory_order_relaxed);
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        const std::size_t i = w * 64 + static_cast<std::size_t>(b);
        if (i < size_) fn(i);
        bits &= bits - 1;
      }
    }
  }

  /// Number of set bits within [begin, end).
  [[nodiscard]] std::size_t count_range(std::size_t begin, std::size_t end) const;

  /// True iff any bit set within [begin, end).
  [[nodiscard]] bool any_in_range(std::size_t begin, std::size_t end) const;

 private:
  std::size_t size_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace graphm::util
