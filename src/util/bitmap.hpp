// Fixed-size atomic bitmap used for per-job active-vertex sets and for the
// engines' selective-scheduling masks (`should_access_shard`).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace graphm::util {

/// Thread-safe bitmap over [0, size). set/get are lock-free; clear_all is not
/// safe against concurrent set (callers quiesce between iterations, as the
/// engines do between supersteps).
class AtomicBitmap {
 public:
  AtomicBitmap() = default;
  explicit AtomicBitmap(std::size_t size);

  AtomicBitmap(const AtomicBitmap& other);
  AtomicBitmap& operator=(const AtomicBitmap& other);
  AtomicBitmap(AtomicBitmap&&) noexcept = default;
  AtomicBitmap& operator=(AtomicBitmap&&) noexcept = default;

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Sets bit i; returns true iff the bit was previously clear.
  bool set(std::size_t i);
  /// Clears bit i; returns true iff the bit was previously set.
  bool clear(std::size_t i);
  [[nodiscard]] bool get(std::size_t i) const;

  void clear_all();
  void set_all();

  /// Population count (not atomic w.r.t. concurrent mutation).
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] bool any() const;

  /// Calls fn(i) for every set bit, in increasing order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w].load(std::memory_order_relaxed);
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        const std::size_t i = w * 64 + static_cast<std::size_t>(b);
        if (i < size_) fn(i);
        bits &= bits - 1;
      }
    }
  }

  /// Number of set bits within [begin, end).
  [[nodiscard]] std::size_t count_range(std::size_t begin, std::size_t end) const;

  /// True iff any bit set within [begin, end).
  [[nodiscard]] bool any_in_range(std::size_t begin, std::size_t end) const;

  /// Number of 64-bit words backing the bitmap.
  [[nodiscard]] std::size_t num_words() const { return words_.size(); }

  /// Raw 64-bit word `w` (bit i of the bitmap lives in word i/64, bit i%64).
  /// The block-streaming inner loops load one word per 64 sources instead of
  /// one atomic bit test per edge.
  [[nodiscard]] std::uint64_t word(std::size_t w) const {
    return words_[w].load(std::memory_order_relaxed);
  }

  /// Index of the first set bit in [begin, end), or `end` if none. Skips 64
  /// clear bits per word load.
  [[nodiscard]] std::size_t next_set_in_range(std::size_t begin, std::size_t end) const;

 private:
  std::size_t size_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

/// Caches the last-loaded word of an AtomicBitmap. The block-streaming inner
/// loops test one source bit with a shift+mask instead of an atomic load per
/// edge — neighbouring edges in a partition usually share a frontier word, so
/// one load covers up to 64 sources. Snapshot semantics (a cached word may be
/// stale) are fine for the engines: the source-side frontier is frozen while
/// an iteration streams.
class WordCache {
 public:
  explicit WordCache(const AtomicBitmap& bitmap) : bitmap_(bitmap) {}

  [[nodiscard]] bool test(std::size_t i) {
    const std::size_t w = i >> 6;
    if (w != word_idx_) {
      word_idx_ = w;
      bits_ = bitmap_.word(w);
    }
    return (bits_ >> (i & 63)) & 1;
  }

 private:
  const AtomicBitmap& bitmap_;
  std::size_t word_idx_ = static_cast<std::size_t>(-1);
  std::uint64_t bits_ = 0;
};

}  // namespace graphm::util
