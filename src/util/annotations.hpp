// Clang thread-safety annotations (-Wthread-safety) plus the annotated
// graphm::Mutex / graphm::MutexLock wrappers every mutex-holding class in the
// repo uses. A clang build with -Werror=thread-safety proves the locking
// discipline — which members a mutex guards, which private methods require it
// held — at compile time; on GCC (and on clang without the capability
// attribute) every macro expands to nothing and the wrappers are exactly a
// std::mutex / std::unique_lock pair.
//
// House rules (docs/static-analysis.md):
//  * every std::mutex in a class becomes a graphm::Mutex; lock it with
//    graphm::MutexLock (never a bare std::lock_guard/std::unique_lock);
//  * every member the mutex protects is GUARDED_BY(mutex_);
//  * every private method that expects the mutex held is named *_locked and
//    annotated REQUIRES(mutex_);
//  * condition-variable waits go through MutexLock::wait/wait_for in an
//    explicit `while (!predicate)` loop — predicate lambdas passed to
//    std::condition_variable::wait are analyzed as separate functions and
//    would defeat the guarded-member checks.
#pragma once

#include <condition_variable>
#include <chrono>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define GRAPHM_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define GRAPHM_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op on GCC/MSVC
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) GRAPHM_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY GRAPHM_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) GRAPHM_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) GRAPHM_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
#endif

#ifndef REQUIRES
#define REQUIRES(...) \
  GRAPHM_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  GRAPHM_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) \
  GRAPHM_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) \
  GRAPHM_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  GRAPHM_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) GRAPHM_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) GRAPHM_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) GRAPHM_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  GRAPHM_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
#endif

namespace graphm {

/// std::mutex with a capability annotation, so GUARDED_BY(mutex_) members and
/// REQUIRES(mutex_) methods are checkable. Same cost and semantics as the
/// std::mutex it wraps.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over a graphm::Mutex — the only way the repo takes one.
/// Supports the two extra shapes std::unique_lock was used for:
///  * condition-variable waits (wait/wait_for; the wait atomically releases
///    and reacquires, so analysis-wise the capability is simply held at every
///    point the caller observes);
///  * temporary hand-off around blocking I/O (unlock()/lock(), tracked by the
///    analysis through the scoped object).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() {}

  void lock() ACQUIRE() { lock_.lock(); }
  void unlock() RELEASE() { lock_.unlock(); }

  void wait(std::condition_variable& cv) { cv.wait(lock_); }
  template <class Rep, class Period>
  std::cv_status wait_for(std::condition_variable& cv,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv.wait_for(lock_, d);
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace graphm
