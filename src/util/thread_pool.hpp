// A small fixed-size thread pool. The grid/shard engines use it to stream
// blocks with a configurable number of worker threads (the paper's jobs run
// with #threads == #cores); GraphM's sharing controller runs jobs as
// dedicated threads and does not go through the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace graphm::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; tasks may run in any order.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait_idle();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// The calling thread participates, and completion is tracked per call (not
  /// via pool idleness), so concurrent parallel_for calls from different
  /// threads — e.g. several jobs streaming through one shared engine pool —
  /// never wait on each other's work. fn must not block on other fn calls.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ GUARDED_BY(mutex_) = 0;
  bool stop_ GUARDED_BY(mutex_) = false;
};

}  // namespace graphm::util
