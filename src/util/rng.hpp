// Deterministic, seedable PRNG used everywhere randomness is needed so that
// all datasets, job mixes and traces are reproducible run-to-run.
#pragma once

#include <cstdint>

namespace graphm::util {

/// SplitMix64 — tiny, fast, and good enough for workload generation.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) { return lo + (hi - lo) * next_double(); }

 private:
  std::uint64_t state_;
};

/// Named-stream seed derivation: one root seed fans out into independent
/// child streams so separate consumers (service-time jitter vs. fault
/// injection) never perturb each other's draw sequences. Stream 0 is the
/// root itself — pre-split consumers seeded SplitMix64 with the raw root,
/// and stream 0 keeps their output bit-identical. Other stream ids run the
/// SplitMix64 finalizer over a root/id mix, so siblings are statistically
/// independent of the root stream and of each other.
inline std::uint64_t derive_stream_seed(std::uint64_t root, std::uint64_t stream) {
  if (stream == 0) return root;
  SplitMix64 mix(root ^ (stream * 0xA3EC647659359ACDULL));
  return mix.next();
}

/// Draws from Exp(rate); used for Poisson-process inter-arrival times.
inline double exponential_sample(SplitMix64& rng, double rate) {
  // Inverse-CDF; next_double() < 1 so the log argument stays positive.
  double u = rng.next_double();
  if (u <= 0.0) u = 1e-12;
  return -__builtin_log(1.0 - u) / rate;
}

}  // namespace graphm::util
