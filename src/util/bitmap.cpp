#include "util/bitmap.hpp"

#include <bit>

namespace graphm::util {

namespace {
constexpr std::size_t words_for(std::size_t size) { return (size + 63) / 64; }
}  // namespace

AtomicBitmap::AtomicBitmap(std::size_t size) : size_(size), words_(words_for(size)) {
  clear_all();
}

AtomicBitmap::AtomicBitmap(const AtomicBitmap& other) : size_(other.size_), words_(words_for(other.size_)) {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w].store(other.words_[w].load(std::memory_order_relaxed), std::memory_order_relaxed);
  }
}

AtomicBitmap& AtomicBitmap::operator=(const AtomicBitmap& other) {
  if (this == &other) return *this;
  size_ = other.size_;
  std::vector<std::atomic<std::uint64_t>> fresh(words_for(other.size_));
  for (std::size_t w = 0; w < fresh.size(); ++w) {
    fresh[w].store(other.words_[w].load(std::memory_order_relaxed), std::memory_order_relaxed);
  }
  words_ = std::move(fresh);
  return *this;
}

bool AtomicBitmap::set(std::size_t i) {
  const std::uint64_t mask = 1ULL << (i & 63);
  const std::uint64_t old = words_[i >> 6].fetch_or(mask, std::memory_order_relaxed);
  return (old & mask) == 0;
}

bool AtomicBitmap::clear(std::size_t i) {
  const std::uint64_t mask = 1ULL << (i & 63);
  const std::uint64_t old = words_[i >> 6].fetch_and(~mask, std::memory_order_relaxed);
  return (old & mask) != 0;
}

bool AtomicBitmap::get(std::size_t i) const {
  return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1;
}

void AtomicBitmap::clear_all() {
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
}

void AtomicBitmap::set_all() {
  for (auto& word : words_) word.store(~0ULL, std::memory_order_relaxed);
  // Mask off the bits beyond size_ in the last word so count() is exact.
  const std::size_t tail = size_ & 63;
  if (!words_.empty() && tail != 0) {
    words_.back().store((1ULL << tail) - 1, std::memory_order_relaxed);
  }
}

std::size_t AtomicBitmap::count() const {
  std::size_t total = 0;
  for (const auto& w : words_) total += std::popcount(w.load(std::memory_order_relaxed));
  return total;
}

bool AtomicBitmap::any() const {
  for (const auto& w : words_) {
    if (w.load(std::memory_order_relaxed) != 0) return true;
  }
  return false;
}

std::size_t AtomicBitmap::count_range(std::size_t begin, std::size_t end) const {
  if (end > size_) end = size_;
  std::size_t total = 0;
  for (std::size_t i = begin; i < end;) {
    if ((i & 63) == 0 && i + 64 <= end) {
      total += std::popcount(words_[i >> 6].load(std::memory_order_relaxed));
      i += 64;
    } else {
      total += get(i) ? 1 : 0;
      ++i;
    }
  }
  return total;
}

std::size_t AtomicBitmap::next_set_in_range(std::size_t begin, std::size_t end) const {
  if (end > size_) end = size_;
  if (begin >= end) return end;
  std::size_t w = begin >> 6;
  const std::size_t last_word = (end - 1) >> 6;
  // Mask off bits below `begin` in the first word, then scan whole words.
  std::uint64_t bits = words_[w].load(std::memory_order_relaxed) &
                       (~0ULL << (begin & 63));
  for (;;) {
    if (bits != 0) {
      const std::size_t i = (w << 6) + static_cast<std::size_t>(__builtin_ctzll(bits));
      return i < end ? i : end;
    }
    if (w == last_word) return end;
    bits = words_[++w].load(std::memory_order_relaxed);
  }
}

bool AtomicBitmap::any_in_range(std::size_t begin, std::size_t end) const {
  if (end > size_) end = size_;
  for (std::size_t i = begin; i < end;) {
    if ((i & 63) == 0 && i + 64 <= end) {
      if (words_[i >> 6].load(std::memory_order_relaxed) != 0) return true;
      i += 64;
    } else {
      if (get(i)) return true;
      ++i;
    }
  }
  return false;
}

}  // namespace graphm::util
