#include "util/table_printer.hpp"

#include <cstdio>
#include <sstream>

namespace graphm::util {

void TablePrinter::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void TablePrinter::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string TablePrinter::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::to_string() const {
  // Column widths.
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << cell;
      for (std::size_t pad = cell.size(); pad < widths[i] + 2; ++pad) out << ' ';
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace graphm::util
