// Wall-clock timers used for profiling T(F_j) / T(E) and for bench harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace graphm::util {

/// Monotonic stopwatch with nanosecond resolution.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_).count());
  }
  [[nodiscard]] double elapsed_us() const { return static_cast<double>(elapsed_ns()) / 1e3; }
  [[nodiscard]] double elapsed_ms() const { return static_cast<double>(elapsed_ns()) / 1e6; }
  [[nodiscard]] double elapsed_s() const { return static_cast<double>(elapsed_ns()) / 1e9; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Adds the elapsed time to an accumulator (in nanoseconds) on destruction.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(std::uint64_t& sink) : sink_(sink) {}
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;
  ~ScopedAccumulator() { sink_ += timer_.elapsed_ns(); }

 private:
  std::uint64_t& sink_;
  Timer timer_;
};

}  // namespace graphm::util
