#include "util/thread_pool.hpp"

#include <atomic>
#include <memory>

namespace graphm::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) lock.wait(cv_idle_);
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.size() == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Per-call completion state. Helpers hold a shared_ptr so the state stays
  // valid even if they only start after the caller has drained every index.
  struct Group {
    std::atomic<std::size_t> next{0};
    Mutex mutex;
    std::size_t helpers_left GUARDED_BY(mutex) = 0;
    std::condition_variable done;
  };
  auto group = std::make_shared<Group>();
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  {
    MutexLock lock(group->mutex);
    group->helpers_left = helpers;
  }

  for (std::size_t h = 0; h < helpers; ++h) {
    submit([group, n, &fn] {
      for (std::size_t i = group->next.fetch_add(1); i < n; i = group->next.fetch_add(1)) {
        fn(i);
      }
      MutexLock lock(group->mutex);
      if (--group->helpers_left == 0) group->done.notify_all();
    });
  }
  // The caller works too: even with every pool worker busy elsewhere, the
  // call makes progress and cannot deadlock.
  for (std::size_t i = group->next.fetch_add(1); i < n; i = group->next.fetch_add(1)) fn(i);

  MutexLock lock(group->mutex);
  while (group->helpers_left != 0) lock.wait(group->done);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) lock.wait(cv_task_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace graphm::util
