// Minimal leveled logger for the GraphM library.
//
// The library is used inside tight benchmark loops, so logging is kept to a
// single atomic level check on the fast path and formatting happens only when
// the record is actually emitted.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace graphm::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log level. Defaults to kWarn so benches stay quiet.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a single record (thread safe, one line per call).
void log_emit(LogLevel level, const std::string& message);

namespace detail {
inline bool enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}
}  // namespace detail

}  // namespace graphm::util

#define GRAPHM_LOG(level, expr)                                          \
  do {                                                                   \
    if (::graphm::util::detail::enabled(level)) {                        \
      std::ostringstream oss__;                                          \
      oss__ << expr;                                                     \
      ::graphm::util::log_emit(level, oss__.str());                      \
    }                                                                    \
  } while (0)

#define GRAPHM_DEBUG(expr) GRAPHM_LOG(::graphm::util::LogLevel::kDebug, expr)
#define GRAPHM_INFO(expr) GRAPHM_LOG(::graphm::util::LogLevel::kInfo, expr)
#define GRAPHM_WARN(expr) GRAPHM_LOG(::graphm::util::LogLevel::kWarn, expr)
#define GRAPHM_ERROR(expr) GRAPHM_LOG(::graphm::util::LogLevel::kError, expr)
