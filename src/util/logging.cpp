#include "util/logging.hpp"

#include <cstdio>
#include <mutex>
#include "util/annotations.hpp"

namespace graphm::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
graphm::Mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void log_emit(LogLevel level, const std::string& message) {
  graphm::MutexLock lock(g_emit_mutex);
  std::fprintf(stderr, "[graphm %-5s] %s\n", level_name(level), message.c_str());
}

}  // namespace graphm::util
