// Registry of the Table-2 dataset stand-ins (DESIGN.md section 4).
//
// Each dataset is generated deterministically on first use and cached as an
// edge-list binary under a cache directory, so every bench and test sees the
// exact same graphs. `scale` in (0, 1] shrinks vertices and edges together
// (used by the quick test configurations); scale 1 is the default bench size.
#pragma once

#include <string>
#include <vector>

#include "graph/edge_list.hpp"

namespace graphm::graph {

struct DatasetSpec {
  std::string name;          // e.g. "livej_s"
  std::string paper_name;    // e.g. "LiveJ (4.8M/69M)"
  VertexId num_vertices;
  EdgeCount num_edges;
  bool fits_in_memory;       // w.r.t. the simulated 32 MiB budget at scale 1
};

/// The five stand-ins, in the paper's Table 2 order.
const std::vector<DatasetSpec>& dataset_specs();

/// Spec lookup by name; throws on unknown name.
const DatasetSpec& dataset_spec(const std::string& name);

/// Directory where generated datasets are cached (honours GRAPHM_CACHE_DIR,
/// defaults to <tmp>/graphm_datasets). Created on demand.
std::string dataset_cache_dir();

/// Returns the dataset, generating and caching it if needed. Weights are
/// randomized in [1, 64) so SSSP is meaningful.
EdgeList load_dataset(const std::string& name, double scale = 1.0);

/// Path of the cached edge-list file for (name, scale); generates on miss.
std::string dataset_path(const std::string& name, double scale = 1.0);

/// Reads GRAPHM_SCALE from the environment (default 1.0, clamped to (0,1]).
double env_scale();

}  // namespace graphm::graph
