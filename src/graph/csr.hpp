// Compressed-sparse-row view of a graph. Used by the serial reference
// algorithm implementations (test oracles) and by the PowerGraph-like engine.
#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace graphm::graph {

class Csr {
 public:
  struct Neighbor {
    VertexId dst;
    float weight;
  };

  Csr() = default;
  /// Builds out-edge CSR; `transpose` builds in-edge CSR instead.
  static Csr build(const EdgeList& graph, bool transpose = false);

  [[nodiscard]] VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  [[nodiscard]] EdgeCount num_edges() const { return neighbors_.size(); }

  [[nodiscard]] std::span<const Neighbor> neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v], neighbors_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

 private:
  std::vector<EdgeCount> offsets_;
  std::vector<Neighbor> neighbors_;
};

}  // namespace graphm::graph
