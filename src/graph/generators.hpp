// Deterministic synthetic graph generators.
//
// The paper's public crawls (LiveJ, Orkut, Twitter, UK-union, Clueweb12) are
// not shippable; DESIGN.md section 2 explains how scaled RMAT / Chung-Lu /
// Erdős–Rényi stand-ins preserve the properties GraphM's results depend on
// (degree skew and size relative to LLC/memory).
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace graphm::graph {

struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
};

/// Recursive-matrix (Kronecker-like) generator: power-law out-degrees,
/// community structure. num_vertices is rounded up to a power of two
/// internally; emitted vertex ids stay < num_vertices.
EdgeList generate_rmat(VertexId num_vertices, EdgeCount num_edges, std::uint64_t seed,
                       const RmatParams& params = RmatParams{});

/// Uniform G(n, m) graph.
EdgeList generate_erdos_renyi(VertexId num_vertices, EdgeCount num_edges, std::uint64_t seed);

/// Chung–Lu graph with Zipf(exponent) expected degrees — a denser, less
/// skewed power-law than RMAT (our Orkut stand-in).
EdgeList generate_chung_lu(VertexId num_vertices, EdgeCount num_edges, double exponent,
                           std::uint64_t seed);

/// Directed cycle plus chords — a tiny deterministic graph for unit tests.
EdgeList generate_ring(VertexId num_vertices, VertexId chord_stride = 0);

/// Random weights in [lo, hi) for SSSP; deterministic given seed.
void randomize_weights(EdgeList& graph, float lo, float hi, std::uint64_t seed);

}  // namespace graphm::graph
