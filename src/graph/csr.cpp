#include "graph/csr.hpp"

namespace graphm::graph {

Csr Csr::build(const EdgeList& graph, bool transpose) {
  Csr csr;
  const VertexId n = graph.num_vertices();
  csr.offsets_.assign(n + 1, 0);
  for (const Edge& e : graph.edges()) {
    const VertexId key = transpose ? e.dst : e.src;
    ++csr.offsets_[key + 1];
  }
  for (VertexId v = 0; v < n; ++v) csr.offsets_[v + 1] += csr.offsets_[v];
  csr.neighbors_.resize(graph.num_edges());
  std::vector<EdgeCount> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  for (const Edge& e : graph.edges()) {
    const VertexId key = transpose ? e.dst : e.src;
    const VertexId other = transpose ? e.src : e.dst;
    csr.neighbors_[cursor[key]++] = Neighbor{other, e.weight};
  }
  return csr;
}

}  // namespace graphm::graph
