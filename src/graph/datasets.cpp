#include "graph/datasets.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <stdexcept>

#include "graph/generators.hpp"
#include "util/logging.hpp"
#include "util/annotations.hpp"

namespace graphm::graph {

namespace fs = std::filesystem;

const std::vector<DatasetSpec>& dataset_specs() {
  static const std::vector<DatasetSpec> specs = {
      {"livej_s", "LiveJ (4.8M v / 69M e)", 4'800, 69'000, true},
      {"orkut_s", "Orkut (3.1M v / 117.2M e)", 3'100, 117'200, true},
      {"twitter_s", "Twitter (41.7M v / 1.5B e)", 41'700, 1'500'000, true},
      {"ukunion_s", "UK-union (133.6M v / 5.5B e)", 133'600, 5'500'000, false},
      {"clueweb_s", "Clueweb12 (978.4M v / 42.6B e)", 489'200, 10'650'000, false},
  };
  return specs;
}

const DatasetSpec& dataset_spec(const std::string& name) {
  for (const auto& spec : dataset_specs()) {
    if (spec.name == name) return spec;
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

std::string dataset_cache_dir() {
  static const std::string dir = [] {
    const char* env = std::getenv("GRAPHM_CACHE_DIR");
    fs::path path = env != nullptr ? fs::path(env) : fs::temp_directory_path() / "graphm_datasets";
    std::error_code ec;
    fs::create_directories(path, ec);
    return path.string();
  }();
  return dir;
}

double env_scale() {
  const char* env = std::getenv("GRAPHM_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  if (v <= 0.0 || v > 1.0) return 1.0;
  return v;
}

namespace {

graphm::Mutex g_generate_mutex;

std::string cache_file(const std::string& name, double scale) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "_%.4f.bin", scale);
  return (fs::path(dataset_cache_dir()) / (name + buf)).string();
}

EdgeList generate(const DatasetSpec& spec, double scale) {
  const auto v = static_cast<VertexId>(std::max<double>(64.0, spec.num_vertices * scale));
  const auto e = static_cast<EdgeCount>(std::max<double>(256.0, spec.num_edges * scale));
  const std::uint64_t seed = std::hash<std::string>{}(spec.name);

  EdgeList graph;
  if (spec.name == "orkut_s") {
    graph = generate_chung_lu(v, e, 0.6, seed);
  } else if (spec.name == "twitter_s") {
    // More skew than the default RMAT: Twitter's max out-degree is ~3M.
    graph = generate_rmat(v, e, seed, RmatParams{0.62, 0.19, 0.14});
  } else {
    graph = generate_rmat(v, e, seed);
  }
  randomize_weights(graph, 1.0f, 64.0f, seed ^ 0x5eed);
  return graph;
}

}  // namespace

std::string dataset_path(const std::string& name, double scale) {
  const DatasetSpec& spec = dataset_spec(name);
  const std::string path = cache_file(name, scale);
  graphm::MutexLock lock(g_generate_mutex);
  if (!fs::exists(path)) {
    GRAPHM_INFO("generating dataset " << name << " at scale " << scale);
    generate(spec, scale).save(path);
  }
  return path;
}

EdgeList load_dataset(const std::string& name, double scale) {
  return EdgeList::load(dataset_path(name, scale));
}

}  // namespace graphm::graph
