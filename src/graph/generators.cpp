#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace graphm::graph {

using util::SplitMix64;

EdgeList generate_rmat(VertexId num_vertices, EdgeCount num_edges, std::uint64_t seed,
                       const RmatParams& params) {
  // Round the id space up to a power of two for the recursive descent, then
  // fold overflowing ids back into range (keeps the degree skew).
  int levels = 0;
  while ((VertexId{1} << levels) < num_vertices) ++levels;
  if (levels == 0) levels = 1;

  SplitMix64 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  for (EdgeCount i = 0; i < num_edges; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    for (int level = 0; level < levels; ++level) {
      const double r = rng.next_double();
      src <<= 1;
      dst <<= 1;
      if (r < params.a) {
        // top-left quadrant: no bits set
      } else if (r < ab) {
        dst |= 1;
      } else if (r < abc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    src %= num_vertices;
    dst %= num_vertices;
    edges.push_back(Edge{src, dst, 1.0f});
  }
  return EdgeList(num_vertices, std::move(edges));
}

EdgeList generate_erdos_renyi(VertexId num_vertices, EdgeCount num_edges, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (EdgeCount i = 0; i < num_edges; ++i) {
    const auto src = static_cast<VertexId>(rng.next_below(num_vertices));
    const auto dst = static_cast<VertexId>(rng.next_below(num_vertices));
    edges.push_back(Edge{src, dst, 1.0f});
  }
  return EdgeList(num_vertices, std::move(edges));
}

EdgeList generate_chung_lu(VertexId num_vertices, EdgeCount num_edges, double exponent,
                           std::uint64_t seed) {
  // Expected-degree weights w_i = (i+1)^-exponent, sampled via the inverse
  // CDF of the cumulative weight distribution.
  std::vector<double> cumulative(num_vertices);
  double total = 0.0;
  for (VertexId v = 0; v < num_vertices; ++v) {
    total += std::pow(static_cast<double>(v) + 1.0, -exponent);
    cumulative[v] = total;
  }
  SplitMix64 rng(seed);
  auto sample = [&]() -> VertexId {
    const double r = rng.next_double() * total;
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), r);
    return static_cast<VertexId>(std::distance(cumulative.begin(), it));
  };
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (EdgeCount i = 0; i < num_edges; ++i) {
    edges.push_back(Edge{sample(), sample(), 1.0f});
  }
  return EdgeList(num_vertices, std::move(edges));
}

EdgeList generate_ring(VertexId num_vertices, VertexId chord_stride) {
  std::vector<Edge> edges;
  edges.reserve(num_vertices * (chord_stride != 0 ? 2u : 1u));
  for (VertexId v = 0; v < num_vertices; ++v) {
    edges.push_back(Edge{v, (v + 1) % num_vertices, 1.0f});
    if (chord_stride != 0) {
      edges.push_back(Edge{v, (v + chord_stride) % num_vertices, 1.0f});
    }
  }
  return EdgeList(num_vertices, std::move(edges));
}

void randomize_weights(EdgeList& graph, float lo, float hi, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (Edge& e : graph.edges()) {
    e.weight = static_cast<float>(rng.next_double(lo, hi));
  }
}

}  // namespace graphm::graph
