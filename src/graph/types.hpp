// Fundamental graph types shared by every engine in the repository.
#pragma once

#include <cstdint>
#include <limits>

namespace graphm::graph {

using VertexId = std::uint32_t;
using EdgeCount = std::uint64_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// On-disk and in-memory edge record. 12 bytes, matching GridGraph's layout
/// (src, dst, weight); the weight is ignored by unweighted algorithms.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  float weight = 1.0f;

  friend bool operator==(const Edge&, const Edge&) = default;
};
static_assert(sizeof(Edge) == 12, "Edge must stay 12 bytes (grid file format)");

/// A maximal run of consecutive edges sharing one source within an edge
/// stream. Run arrays are the engines' frontier skip index: streaming an
/// edge stream is bandwidth-bound, so the win from an inactive source is not
/// a cheaper test but never touching its edges at all — the run array (8
/// bytes per run, sequential) is scanned instead of the 12-bytes-per-edge
/// stream. Valid for any edge order; src-grouped streams make runs long.
struct SourceRun {
  VertexId src = 0;
  std::uint32_t count = 0;

  friend bool operator==(const SourceRun&, const SourceRun&) = default;
};

/// Accounts one more edge from `src` into a run array under construction:
/// extends the trailing run or opens a new one. The single definition of run
/// granularity — every producer (chunk labelling, engine partition cache)
/// must build through this so their skip indexes stay consistent.
template <typename RunVector>
inline void append_source_run(RunVector& runs, VertexId src) {
  if (!runs.empty() && runs.back().src == src) {
    ++runs.back().count;
  } else {
    runs.push_back({src, 1});
  }
}

}  // namespace graphm::graph
