// Fundamental graph types shared by every engine in the repository.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace graphm::graph {

using VertexId = std::uint32_t;
using EdgeCount = std::uint64_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// On-disk and in-memory edge record. 12 bytes, matching GridGraph's layout
/// (src, dst, weight); the weight is ignored by unweighted algorithms.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  float weight = 1.0f;

  friend bool operator==(const Edge&, const Edge&) = default;
};
static_assert(sizeof(Edge) == 12, "Edge must stay 12 bytes (grid file format)");

/// A maximal run of consecutive edges sharing one source within an edge
/// stream. Run arrays are the engines' frontier skip index: streaming an
/// edge stream is bandwidth-bound, so the win from an inactive source is not
/// a cheaper test but never touching its edges at all — the run array (12
/// bytes per run, sequential) is scanned instead of the 12-bytes-per-edge
/// stream. `begin` is the run's first edge offset within the indexed span,
/// so a frontier jump (AtomicBitmap::next_set_in_range + binary search over
/// ascending-src runs) lands directly on the right edge range without
/// re-walking the skipped runs' counts. Valid for any edge order (begin is
/// always the stream position); src-grouped streams make runs long and, when
/// fully sorted, enable the jump path.
struct SourceRun {
  VertexId src = 0;
  std::uint32_t begin = 0;  // first edge of the run within the indexed span
  std::uint32_t count = 0;

  friend bool operator==(const SourceRun&, const SourceRun&) = default;
};

/// Accounts one more edge from `src` into a run array under construction:
/// extends the trailing run or opens a new one (begin = edges seen so far).
/// The single definition of run granularity — every producer (chunk
/// labelling, engine partition cache) must build through this so their skip
/// indexes stay consistent. Spans larger than 4G edges would overflow
/// `begin`; every indexed span in the repo (chunk or partition) is far
/// smaller.
template <typename RunVector>
inline void append_source_run(RunVector& runs, VertexId src) {
  if (!runs.empty() && runs.back().src == src) {
    ++runs.back().count;
  } else {
    const std::uint32_t begin =
        runs.empty() ? 0 : runs.back().begin + runs.back().count;
    runs.push_back({src, begin, 1});
  }
}

/// True iff `runs` is strictly ascending by source — the precondition for the
/// engines' binary-search frontier jump. One pass at index-build time.
template <typename RunVector>
[[nodiscard]] inline bool source_runs_sorted(const RunVector& runs) {
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].src <= runs[i - 1].src) return false;
  }
  return true;
}

/// Boundaries of the maximal strictly-ascending-src segments of `runs`: the
/// result b has b.front() == 0, b.back() == runs.size(), and every
/// [b[i], b[i+1]) ascends strictly by source. A fully sorted index yields one
/// segment. Multi-block spans — a concatenation of per-block src-sorted
/// streams, where the source range restarts at every block — yield one
/// segment per block, which is what lets the engines' binary-search frontier
/// jump work segment-locally where a global jump is impossible.
template <typename RunVector>
[[nodiscard]] inline std::vector<std::uint32_t> sorted_run_segments(const RunVector& runs) {
  std::vector<std::uint32_t> bounds;
  bounds.push_back(0);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].src <= runs[i - 1].src) bounds.push_back(static_cast<std::uint32_t>(i));
  }
  bounds.push_back(static_cast<std::uint32_t>(runs.size()));
  return bounds;
}

}  // namespace graphm::graph
