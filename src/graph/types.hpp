// Fundamental graph types shared by every engine in the repository.
#pragma once

#include <cstdint>
#include <limits>

namespace graphm::graph {

using VertexId = std::uint32_t;
using EdgeCount = std::uint64_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// On-disk and in-memory edge record. 12 bytes, matching GridGraph's layout
/// (src, dst, weight); the weight is ignored by unweighted algorithms.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  float weight = 1.0f;

  friend bool operator==(const Edge&, const Edge&) = default;
};
static_assert(sizeof(Edge) == 12, "Edge must stay 12 bytes (grid file format)");

}  // namespace graphm::graph
