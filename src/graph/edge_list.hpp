// In-memory edge list plus the binary file format every engine preprocesses
// from ("the original graph data" of Figure 5).
//
// File layout: 16-byte header {magic, num_vertices, num_edges} followed by
// num_edges packed Edge records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace graphm::graph {

class EdgeList {
 public:
  EdgeList() = default;
  EdgeList(VertexId num_vertices, std::vector<Edge> edges);

  [[nodiscard]] VertexId num_vertices() const { return num_vertices_; }
  [[nodiscard]] EdgeCount num_edges() const { return edges_.size(); }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] std::vector<Edge>& edges() { return edges_; }

  /// Total payload bytes (the S_G of Formula 1).
  [[nodiscard]] std::uint64_t data_bytes() const { return edges_.size() * sizeof(Edge); }

  void add_edge(VertexId src, VertexId dst, float weight = 1.0f);

  /// Grows num_vertices_ to cover every endpoint present in edges().
  void fit_num_vertices();

  [[nodiscard]] std::vector<std::uint32_t> out_degrees() const;
  [[nodiscard]] std::uint32_t max_out_degree() const;

  void save(const std::string& path) const;
  static EdgeList load(const std::string& path);

  friend bool operator==(const EdgeList&, const EdgeList&) = default;

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace graphm::graph
