#include "graph/edge_list.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace graphm::graph {

namespace {
constexpr std::uint32_t kMagic = 0x47724D31;  // "GrM1"

struct FileHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t num_vertices = 0;
  std::uint64_t num_edges = 0;
};
static_assert(sizeof(FileHeader) == 16);

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

EdgeList::EdgeList(VertexId num_vertices, std::vector<Edge> edges)
    : num_vertices_(num_vertices), edges_(std::move(edges)) {}

void EdgeList::add_edge(VertexId src, VertexId dst, float weight) {
  edges_.push_back(Edge{src, dst, weight});
  num_vertices_ = std::max({num_vertices_, src + 1, dst + 1});
}

void EdgeList::fit_num_vertices() {
  for (const Edge& e : edges_) {
    num_vertices_ = std::max({num_vertices_, e.src + 1, e.dst + 1});
  }
}

std::vector<std::uint32_t> EdgeList::out_degrees() const {
  std::vector<std::uint32_t> degrees(num_vertices_, 0);
  for (const Edge& e : edges_) ++degrees[e.src];
  return degrees;
}

std::uint32_t EdgeList::max_out_degree() const {
  const auto degrees = out_degrees();
  return degrees.empty() ? 0 : *std::max_element(degrees.begin(), degrees.end());
}

void EdgeList::save(const std::string& path) const {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("EdgeList::save: cannot open " + path);
  FileHeader header;
  header.num_vertices = num_vertices_;
  header.num_edges = edges_.size();
  if (std::fwrite(&header, sizeof(header), 1, f.get()) != 1) {
    throw std::runtime_error("EdgeList::save: header write failed: " + path);
  }
  if (!edges_.empty() &&
      std::fwrite(edges_.data(), sizeof(Edge), edges_.size(), f.get()) != edges_.size()) {
    throw std::runtime_error("EdgeList::save: payload write failed: " + path);
  }
}

EdgeList EdgeList::load(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("EdgeList::load: cannot open " + path);
  FileHeader header;
  if (std::fread(&header, sizeof(header), 1, f.get()) != 1 || header.magic != kMagic) {
    throw std::runtime_error("EdgeList::load: bad header: " + path);
  }
  std::vector<Edge> edges(header.num_edges);
  if (header.num_edges != 0 &&
      std::fread(edges.data(), sizeof(Edge), edges.size(), f.get()) != edges.size()) {
    throw std::runtime_error("EdgeList::load: truncated payload: " + path);
  }
  return EdgeList(header.num_vertices, std::move(edges));
}

}  // namespace graphm::graph
