#include "sim/memory_tracker.hpp"

namespace graphm::sim {

namespace {
void bump(std::atomic<std::uint64_t>& current, std::atomic<std::uint64_t>& peak,
          std::uint64_t bytes) {
  const std::uint64_t now = current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t prev_peak = peak.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak.compare_exchange_weak(prev_peak, now, std::memory_order_relaxed)) {
  }
}
}  // namespace

void MemoryTracker::allocate(MemoryCategory cat, std::uint64_t bytes) {
  auto& c = by_category_[static_cast<int>(cat)];
  bump(c.current, c.peak, bytes);
  bump(total_.current, total_.peak, bytes);
}

void MemoryTracker::release(MemoryCategory cat, std::uint64_t bytes) {
  by_category_[static_cast<int>(cat)].current.fetch_sub(bytes, std::memory_order_relaxed);
  total_.current.fetch_sub(bytes, std::memory_order_relaxed);
}

std::uint64_t MemoryTracker::current(MemoryCategory cat) const {
  return by_category_[static_cast<int>(cat)].current.load(std::memory_order_relaxed);
}

std::uint64_t MemoryTracker::peak(MemoryCategory cat) const {
  return by_category_[static_cast<int>(cat)].peak.load(std::memory_order_relaxed);
}

std::uint64_t MemoryTracker::current_total() const {
  return total_.current.load(std::memory_order_relaxed);
}

std::uint64_t MemoryTracker::peak_total() const {
  return total_.peak.load(std::memory_order_relaxed);
}

void MemoryTracker::reset() {
  for (auto& c : by_category_) {
    c.current.store(0, std::memory_order_relaxed);
    c.peak.store(0, std::memory_order_relaxed);
  }
  total_.current.store(0, std::memory_order_relaxed);
  total_.peak.store(0, std::memory_order_relaxed);
}

}  // namespace graphm::sim
