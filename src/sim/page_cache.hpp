// Simulated OS page cache with LRU replacement.
//
// Engines route every "disk" read through this model. A read of a page that
// is resident costs nothing; a miss is charged disk-transfer time and counted
// as I/O. This reproduces the paper's Figure 12: when the grid of a graph
// exceeds the memory budget, each *extra copy* streamed by a -C job evicts the
// others and turns into real disk traffic, while the single shared copy of -M
// is read once per traversal round.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "util/annotations.hpp"

namespace graphm::sim {

struct IoStats {
  std::uint64_t read_bytes = 0;       // bytes requested by the engine
  std::uint64_t disk_read_bytes = 0;  // bytes actually fetched from "disk"
  std::uint64_t disk_requests = 0;    // distinct miss runs
  std::uint64_t virtual_io_ns = 0;    // modeled stall time for the misses
};

class PageCacheSim {
 public:
  PageCacheSim(std::size_t capacity_bytes, std::size_t page_bytes,
               double disk_bandwidth_bytes_per_s, double disk_latency_s);

  /// Simulates reading [offset, offset+len) of file `file_id` on behalf of
  /// `job_id`. Returns the modeled stall in nanoseconds for this read.
  std::uint64_t read(std::uint32_t file_id, std::uint64_t offset, std::size_t len,
                     std::uint32_t job_id);

  /// Drops every cached page of `file_id` (e.g. when a dataset is rebuilt).
  void invalidate_file(std::uint32_t file_id);

  [[nodiscard]] IoStats total_stats() const;
  [[nodiscard]] IoStats job_stats(std::uint32_t job_id) const;
  [[nodiscard]] std::size_t resident_bytes() const;
  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_pages_ * page_bytes_; }

  void reset_stats();
  void reset();

 private:
  using PageKey = std::uint64_t;  // (file_id << 40) | page_index
  static PageKey key(std::uint32_t file_id, std::uint64_t page) {
    return (static_cast<std::uint64_t>(file_id) << 40) | page;
  }

  std::size_t page_bytes_;
  std::size_t capacity_pages_;
  double bandwidth_;
  double latency_;

  std::list<PageKey> lru_ GUARDED_BY(mutex_);  // front = most recent
  std::unordered_map<PageKey, std::list<PageKey>::iterator> map_ GUARDED_BY(mutex_);
  IoStats total_ GUARDED_BY(mutex_);
  std::vector<IoStats> per_job_ GUARDED_BY(mutex_);
  mutable Mutex mutex_;
};

}  // namespace graphm::sim
