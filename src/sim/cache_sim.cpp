#include "sim/cache_sim.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace graphm::sim {

namespace {
std::size_t round_down_pow2(std::size_t v) {
  if (v == 0) return 1;
  return std::size_t{1} << (63 - std::countl_zero(static_cast<std::uint64_t>(v)));
}
}  // namespace

CacheSim::CacheSim(std::size_t capacity_bytes, std::size_t ways, std::size_t line_bytes)
    : ways_(ways), line_bytes_(line_bytes) {
  if (ways == 0 || line_bytes == 0) throw std::invalid_argument("CacheSim: zero ways/line");
  num_sets_ = round_down_pow2(std::max<std::size_t>(1, capacity_bytes / (ways * line_bytes)));
  sets_.assign(num_sets_ * ways_, Way{});
}

void CacheSim::access(std::uint64_t addr, std::uint32_t job_id) {
  MutexLock lock(mutex_);
  access_line_locked(addr / line_bytes_, job_id, 1);
}

void CacheSim::access_range(std::uint64_t base, std::size_t len, std::uint32_t job_id,
                            std::uint32_t weight) {
  if (len == 0 || weight == 0) return;
  MutexLock lock(mutex_);
  const std::uint64_t first = base / line_bytes_;
  const std::uint64_t last = (base + len - 1) / line_bytes_;
  for (std::uint64_t line = first; line <= last; ++line) {
    access_line_locked(line, job_id, weight);
  }
}

void CacheSim::access_line_locked(std::uint64_t line_addr, std::uint32_t job_id,
                                  std::uint32_t weight) {
  const std::size_t set = static_cast<std::size_t>(line_addr & (num_sets_ - 1));
  Way* base = &sets_[set * ways_];
  CacheStats& js = stats_for_locked(job_id);

  // First touch of this burst: normal lookup.
  std::size_t victim = 0;
  bool hit = false;
  std::uint64_t oldest = ~0ULL;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == line_addr) {
      hit = true;
      victim = w;
      break;
    }
    const std::uint64_t use = base[w].valid ? base[w].last_use : 0;
    if (!base[w].valid) {
      // Prefer an invalid way outright.
      victim = w;
      oldest = 0;
    } else if (use < oldest) {
      oldest = use;
      victim = w;
    }
  }

  total_.accesses += weight;
  js.accesses += weight;
  if (!hit) {
    total_.misses += 1;
    total_.bytes_swapped_in += line_bytes_;
    js.misses += 1;
    js.bytes_swapped_in += line_bytes_;
    base[victim].tag = line_addr;
    base[victim].valid = true;
  }
  base[victim].last_use = ++tick_;
}

CacheStats& CacheSim::stats_for_locked(std::uint32_t job_id) {
  if (job_id >= per_job_.size()) per_job_.resize(job_id + 1);
  return per_job_[job_id];
}

CacheStats CacheSim::total_stats() const {
  MutexLock lock(mutex_);
  return total_;
}

CacheStats CacheSim::job_stats(std::uint32_t job_id) const {
  MutexLock lock(mutex_);
  if (job_id >= per_job_.size()) return CacheStats{};
  return per_job_[job_id];
}

void CacheSim::reset_stats() {
  MutexLock lock(mutex_);
  total_ = CacheStats{};
  per_job_.clear();
}

void CacheSim::reset() {
  MutexLock lock(mutex_);
  total_ = CacheStats{};
  per_job_.clear();
  std::fill(sets_.begin(), sets_.end(), Way{});
  tick_ = 0;
}

}  // namespace graphm::sim
