// Cost-model constants for the simulated platform.
//
// The paper evaluates on a 2-socket Xeon E5-2670 (2 x 20 MB LLC), 32 GB DRAM
// and a 1 TB HDD. Our synthetic datasets are ~1000x smaller than the paper's
// (see DESIGN.md section 4), so the simulated LLC and memory budget are scaled
// by the same factor to preserve the in-cache / in-memory / out-of-core splits
// that drive every result in the paper.
#pragma once

#include <cstddef>
#include <cstdint>

namespace graphm::sim {

struct PlatformConfig {
  // --- LLC model (scaled stand-in for 2 x 20 MB) ---
  std::size_t llc_bytes = 256 * 1024;
  std::size_t llc_ways = 16;
  std::size_t cache_line = 64;

  // --- Memory model (scaled stand-in for 32 GB) ---
  std::size_t memory_bytes = 32ull * 1024 * 1024;
  std::size_t page_bytes = 4096;

  // --- Disk model (HDD-like) ---
  double disk_bandwidth_bytes_per_s = 100.0 * 1024 * 1024;
  double disk_latency_s = 100e-6;

  // --- Network model (1-Gigabit Ethernet, for the simulated cluster) ---
  double net_bandwidth_bytes_per_s = 125.0 * 1024 * 1024;
  double net_latency_s = 50e-6;

  // --- Core model ---
  std::size_t num_cores = 16;

  // Space reserved in the LLC for code/stack/etc. (the `r` of Formula 1).
  std::size_t llc_reserved_bytes = 16 * 1024;
};

/// Virtual nanoseconds needed to move `bytes` over a channel with the given
/// bandwidth (bytes/s) and per-request latency (s).
inline std::uint64_t transfer_ns(std::size_t bytes, double bandwidth, double latency) {
  const double seconds = latency + static_cast<double>(bytes) / bandwidth;
  return static_cast<std::uint64_t>(seconds * 1e9);
}

}  // namespace graphm::sim
