#include "sim/platform.hpp"

namespace graphm::sim {

Platform::Platform(const PlatformConfig& config)
    : config_(config),
      llc_(config.llc_bytes, config.llc_ways, config.cache_line),
      page_cache_(config.memory_bytes, config.page_bytes, config.disk_bandwidth_bytes_per_s,
                  config.disk_latency_s) {}

void Platform::add_instructions(std::uint32_t job_id, std::uint64_t count) {
  MutexLock lock(instr_mutex_);
  if (job_id >= instructions_.size()) instructions_.resize(job_id + 1, 0);
  instructions_[job_id] += count;
}

std::uint64_t Platform::instructions(std::uint32_t job_id) const {
  MutexLock lock(instr_mutex_);
  if (job_id >= instructions_.size()) return 0;
  return instructions_[job_id];
}

std::uint64_t Platform::total_instructions() const {
  MutexLock lock(instr_mutex_);
  std::uint64_t total = 0;
  for (std::uint64_t v : instructions_) total += v;
  return total;
}

double Platform::average_lpi(const std::vector<std::uint32_t>& job_ids) const {
  if (job_ids.empty()) return 0.0;
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::uint32_t job : job_ids) {
    const std::uint64_t instr = instructions(job);
    if (instr == 0) continue;
    const CacheStats stats = llc_.job_stats(job);
    sum += static_cast<double>(stats.misses) / static_cast<double>(instr);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

void Platform::reset_stats() {
  llc_.reset_stats();
  page_cache_.reset_stats();
  memory_.reset();
  MutexLock lock(instr_mutex_);
  instructions_.clear();
}

}  // namespace graphm::sim
