// Tracks simulated resident memory by category, mirroring the paper's
// Figure 3(a)/11 breakdown: graph-structure copies vs. job-specific data vs.
// GraphM's chunk tables.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace graphm::sim {

enum class MemoryCategory : int {
  kGraphStructure = 0,  // partition buffers (shared or per-job copies)
  kJobSpecific = 1,     // vertex value arrays, frontiers, bitmaps
  kChunkTables = 2,     // GraphM's Set_c / chunk_table metadata
  kOther = 3,
};

inline constexpr int kNumMemoryCategories = 4;

class MemoryTracker {
 public:
  void allocate(MemoryCategory cat, std::uint64_t bytes);
  void release(MemoryCategory cat, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t current(MemoryCategory cat) const;
  [[nodiscard]] std::uint64_t peak(MemoryCategory cat) const;
  [[nodiscard]] std::uint64_t current_total() const;
  [[nodiscard]] std::uint64_t peak_total() const;

  void reset();

 private:
  struct Counter {
    std::atomic<std::uint64_t> current{0};
    std::atomic<std::uint64_t> peak{0};
  };
  std::array<Counter, kNumMemoryCategories> by_category_{};
  Counter total_{};
};

/// RAII registration of a tracked allocation.
class TrackedAllocation {
 public:
  TrackedAllocation() = default;
  TrackedAllocation(MemoryTracker* tracker, MemoryCategory cat, std::uint64_t bytes)
      : tracker_(tracker), cat_(cat), bytes_(bytes) {
    if (tracker_ != nullptr) tracker_->allocate(cat_, bytes_);
  }
  TrackedAllocation(const TrackedAllocation&) = delete;
  TrackedAllocation& operator=(const TrackedAllocation&) = delete;
  TrackedAllocation(TrackedAllocation&& other) noexcept { swap(other); }
  TrackedAllocation& operator=(TrackedAllocation&& other) noexcept {
    if (this != &other) {
      release_now();
      swap(other);
    }
    return *this;
  }
  ~TrackedAllocation() { release_now(); }

  void release_now() {
    if (tracker_ != nullptr) tracker_->release(cat_, bytes_);
    tracker_ = nullptr;
    bytes_ = 0;
  }

 private:
  void swap(TrackedAllocation& other) {
    std::swap(tracker_, other.tracker_);
    std::swap(cat_, other.cat_);
    std::swap(bytes_, other.bytes_);
  }
  MemoryTracker* tracker_ = nullptr;
  MemoryCategory cat_ = MemoryCategory::kOther;
  std::uint64_t bytes_ = 0;
};

}  // namespace graphm::sim
