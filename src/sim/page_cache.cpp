#include "sim/page_cache.hpp"

#include <algorithm>

#include "sim/cost_model.hpp"

namespace graphm::sim {

PageCacheSim::PageCacheSim(std::size_t capacity_bytes, std::size_t page_bytes,
                           double disk_bandwidth_bytes_per_s, double disk_latency_s)
    : page_bytes_(page_bytes == 0 ? 4096 : page_bytes),
      capacity_pages_(std::max<std::size_t>(1, capacity_bytes / page_bytes_)),
      bandwidth_(disk_bandwidth_bytes_per_s),
      latency_(disk_latency_s) {}

std::uint64_t PageCacheSim::read(std::uint32_t file_id, std::uint64_t offset, std::size_t len,
                                 std::uint32_t job_id) {
  if (len == 0) return 0;
  MutexLock lock(mutex_);
  if (job_id >= per_job_.size()) per_job_.resize(job_id + 1);
  IoStats& js = per_job_[job_id];

  const std::uint64_t first = offset / page_bytes_;
  const std::uint64_t last = (offset + len - 1) / page_bytes_;

  std::size_t miss_pages = 0;
  std::size_t miss_runs = 0;
  bool in_run = false;
  for (std::uint64_t page = first; page <= last; ++page) {
    const PageKey k = key(file_id, page);
    auto it = map_.find(k);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      in_run = false;
      continue;
    }
    ++miss_pages;
    if (!in_run) {
      ++miss_runs;
      in_run = true;
    }
    lru_.push_front(k);
    map_.emplace(k, lru_.begin());
    if (map_.size() > capacity_pages_) {
      const PageKey victim = lru_.back();
      map_.erase(victim);
      lru_.pop_back();
    }
  }

  const std::uint64_t miss_bytes = static_cast<std::uint64_t>(miss_pages) * page_bytes_;
  std::uint64_t stall = 0;
  if (miss_pages > 0) {
    stall = static_cast<std::uint64_t>(
        (latency_ * static_cast<double>(miss_runs) +
         static_cast<double>(miss_bytes) / bandwidth_) * 1e9);
  }

  total_.read_bytes += len;
  total_.disk_read_bytes += miss_bytes;
  total_.disk_requests += miss_runs;
  total_.virtual_io_ns += stall;
  js.read_bytes += len;
  js.disk_read_bytes += miss_bytes;
  js.disk_requests += miss_runs;
  js.virtual_io_ns += stall;
  return stall;
}

void PageCacheSim::invalidate_file(std::uint32_t file_id) {
  MutexLock lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if ((*it >> 40) == file_id) {
      map_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

IoStats PageCacheSim::total_stats() const {
  MutexLock lock(mutex_);
  return total_;
}

IoStats PageCacheSim::job_stats(std::uint32_t job_id) const {
  MutexLock lock(mutex_);
  if (job_id >= per_job_.size()) return IoStats{};
  return per_job_[job_id];
}

std::size_t PageCacheSim::resident_bytes() const {
  MutexLock lock(mutex_);
  return map_.size() * page_bytes_;
}

void PageCacheSim::reset_stats() {
  MutexLock lock(mutex_);
  total_ = IoStats{};
  per_job_.clear();
}

void PageCacheSim::reset() {
  MutexLock lock(mutex_);
  total_ = IoStats{};
  per_job_.clear();
  lru_.clear();
  map_.clear();
}

}  // namespace graphm::sim
