// Set-associative LRU last-level-cache simulator.
//
// The paper's motivation and evaluation lean on hardware LLC counters
// (total misses, miss rate, LPI, bytes swapped into the LLC). We reproduce
// those figures by feeding the engines' *actual buffer addresses* through
// this simulator: under the -C scheme every job streams its own private copy
// of a partition (distinct addresses -> capacity misses scale with the job
// count), while under -M all jobs walk one shared buffer (same lines hit).
#pragma once

#include <cstdint>
#include <vector>

#include "util/annotations.hpp"

namespace graphm::sim {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes_swapped_in = 0;  // misses * line size

  [[nodiscard]] double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

class CacheSim {
 public:
  CacheSim(std::size_t capacity_bytes, std::size_t ways, std::size_t line_bytes);

  /// One access at byte address `addr`, attributed to `job_id`.
  void access(std::uint64_t addr, std::uint32_t job_id);

  /// Sequential accesses covering [base, base+len), one per cache line,
  /// attributed to `job_id`. `weight` repeats each line access (used to model
  /// re-walks cheaply).
  void access_range(std::uint64_t base, std::size_t len, std::uint32_t job_id,
                    std::uint32_t weight = 1);

  [[nodiscard]] CacheStats total_stats() const;
  [[nodiscard]] CacheStats job_stats(std::uint32_t job_id) const;

  [[nodiscard]] std::size_t line_bytes() const { return line_bytes_; }
  [[nodiscard]] std::size_t capacity_bytes() const { return num_sets_ * ways_ * line_bytes_; }

  void reset_stats();
  /// Invalidates all cached lines and clears stats.
  void reset();

 private:
  struct Way {
    std::uint64_t tag = ~0ULL;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  void access_line_locked(std::uint64_t line_addr, std::uint32_t job_id,
                          std::uint32_t weight) REQUIRES(mutex_);
  CacheStats& stats_for_locked(std::uint32_t job_id) REQUIRES(mutex_);

  std::size_t ways_;
  std::size_t line_bytes_;
  std::size_t num_sets_;
  std::uint64_t tick_ GUARDED_BY(mutex_) = 0;
  std::vector<Way> sets_ GUARDED_BY(mutex_);  // num_sets_ * ways_, row-major
  CacheStats total_ GUARDED_BY(mutex_);
  std::vector<CacheStats> per_job_ GUARDED_BY(mutex_);
  mutable Mutex mutex_;
};

}  // namespace graphm::sim
