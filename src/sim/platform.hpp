// Bundles the simulated hardware one execution scheme runs on: the LLC
// simulator, the OS page-cache simulator and the memory tracker, plus per-job
// instruction counters for the LPI metric. Each scheme (-S / -C / -M)
// instantiates one Platform so its counters are directly comparable to the
// paper's per-scheme measurements.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cache_sim.hpp"
#include "sim/cost_model.hpp"
#include "sim/memory_tracker.hpp"
#include "sim/page_cache.hpp"
#include "util/annotations.hpp"

namespace graphm::sim {

class Platform {
 public:
  explicit Platform(const PlatformConfig& config = PlatformConfig{});

  [[nodiscard]] const PlatformConfig& config() const { return config_; }

  CacheSim& llc() { return llc_; }
  const CacheSim& llc() const { return llc_; }
  PageCacheSim& page_cache() { return page_cache_; }
  const PageCacheSim& page_cache() const { return page_cache_; }
  MemoryTracker& memory() { return memory_; }
  const MemoryTracker& memory() const { return memory_; }

  /// Simulated-only address space for per-job hot metadata (frontier words,
  /// degree slices, engine state) that has no real backing buffer. The region
  /// sits in the x86-64 kernel half (bit 63 set), which no user-space
  /// allocator can ever return — so these synthetic lines can never collide
  /// with the real `values_ptr`/chunk-buffer addresses the engines also feed
  /// through the LLC simulator. Each job gets a disjoint 1 MiB slice.
  static constexpr std::uint64_t kSimAddressBase = 0xFFFF'8000'0000'0000ULL;
  static constexpr std::uint64_t kSimJobStride = 1ULL << 20;
  [[nodiscard]] static std::uint64_t job_scratch_base(std::uint32_t job_id) {
    return kSimAddressBase + std::uint64_t{job_id} * kSimJobStride;
  }

  /// "Instructions retired" proxy: the engines report one unit per processed
  /// edge plus a small per-vertex cost; LPI = LLC misses / instructions.
  void add_instructions(std::uint32_t job_id, std::uint64_t count);
  [[nodiscard]] std::uint64_t instructions(std::uint32_t job_id) const;
  [[nodiscard]] std::uint64_t total_instructions() const;

  /// Average LLC-misses-per-instruction across the given jobs (Fig 3c).
  [[nodiscard]] double average_lpi(const std::vector<std::uint32_t>& job_ids) const;

  void reset_stats();

 private:
  PlatformConfig config_;
  CacheSim llc_;
  PageCacheSim page_cache_;
  MemoryTracker memory_;
  mutable Mutex instr_mutex_;
  std::vector<std::uint64_t> instructions_ GUARDED_BY(instr_mutex_);
};

}  // namespace graphm::sim
