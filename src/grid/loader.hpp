// The loading seam between the streaming engine and the storage layer.
//
// This is the paper's `Sharing(G, Load())` extension point (Figure 6): the
// engine is written against PartitionLoader; the default implementation is
// the engine's own private Load() (one buffer per job, job-local ordering),
// and GraphM substitutes a loader that shares buffers across jobs, imposes a
// common loading order and suspends jobs that do not need the partition
// currently in memory (Algorithm 2).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "grid/grid_store.hpp"
#include "grid/partition_view.hpp"
#include "sim/platform.hpp"
#include "util/bitmap.hpp"

namespace graphm::grid {

class PartitionLoader {
 public:
  virtual ~PartitionLoader() = default;

  /// Declares the partitions the job must process this iteration, derived
  /// from its active-vertex bitmap. Called once per iteration per job.
  virtual void register_iteration(std::uint32_t job_id,
                                  const std::vector<std::uint32_t>& active_partitions) = 0;

  /// Blocks until a partition this job registered for is available; returns
  /// the loaded view, or nullopt when the job's iteration is complete.
  /// A GraphM loader may suspend the calling job here.
  virtual std::optional<PartitionView> acquire_next(std::uint32_t job_id) = 0;

  /// Marks the job done with the partition it last acquired.
  virtual void release(std::uint32_t job_id, std::uint32_t pid) = 0;

  /// Chunk-boundary notifications (the paper's Start()/Barrier() pair wraps
  /// the streaming of a shared partition; chunk granularity lives here).
  virtual void begin_chunk(std::uint32_t job_id, std::uint32_t pid, std::uint32_t chunk_id) {
    (void)job_id; (void)pid; (void)chunk_id;
  }
  virtual void end_chunk(std::uint32_t job_id, std::uint32_t pid, std::uint32_t chunk_id,
                         std::uint64_t active_edges, std::uint64_t total_edges,
                         std::uint64_t elapsed_ns) {
    (void)job_id; (void)pid; (void)chunk_id;
    (void)active_edges; (void)total_edges; (void)elapsed_ns;
  }

  /// Called when the job finishes entirely (all iterations done).
  virtual void job_finished(std::uint32_t job_id) { (void)job_id; }
};

/// The engine's original Load(): a private reusable buffer per job, partitions
/// visited in ascending pid order. Used by the -S and -C schemes.
class DefaultLoader final : public PartitionLoader {
 public:
  DefaultLoader(const storage::PartitionedStore& store, sim::Platform& platform);
  ~DefaultLoader() override;

  void register_iteration(std::uint32_t job_id,
                          const std::vector<std::uint32_t>& active_partitions) override;
  std::optional<PartitionView> acquire_next(std::uint32_t job_id) override;
  void release(std::uint32_t job_id, std::uint32_t pid) override;

  /// Modeled I/O stall accumulated by this loader (nanoseconds).
  [[nodiscard]] std::uint64_t io_stall_ns() const { return io_stall_ns_; }

 private:
  const storage::PartitionedStore& store_;
  sim::Platform& platform_;
  std::vector<std::uint32_t> pending_;  // reversed: back() is next
  std::vector<Edge> buffer_;
  sim::TrackedAllocation buffer_tracking_;
  std::uint64_t io_stall_ns_ = 0;
};

}  // namespace graphm::grid
