// GridGraph-like on-disk format ("the specific graph representation" the
// GraphM preprocessor converts to for GridGraph, Section 3.1).
//
// Edges are bucketed into a P x P grid by (source range, destination range)
// and written to a single file, row-major: partition i (the streaming unit,
// GridGraph's "shard") is the contiguous byte range holding row i's blocks.
// A small metadata header records per-block offsets so selective scheduling
// can skip inactive rows without touching the file.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"
#include "sim/platform.hpp"
#include "storage/store.hpp"

namespace graphm::grid {

using graph::Edge;
using graph::EdgeCount;
using graph::VertexId;
using GridMeta = storage::StoreMeta;

/// Read-only handle on a preprocessed grid. Thread safe.
class GridStore final : public storage::PartitionedStore {
 public:
  /// Buckets `graph` into a P x P grid and writes <path>.{meta,data,deg}.
  /// Returns the conversion wall time (Table 3's GridGraph row).
  /// `src_sort` groups each block's edges by source (stable), which is what
  /// gives the engines long source runs; pass false only to reproduce the
  /// seed's ungrouped layout (the stream-bench baseline).
  static std::uint64_t preprocess(const graph::EdgeList& graph, std::uint32_t num_partitions,
                                  const std::string& path, bool src_sort = true);

  static GridStore open(const std::string& path);

  [[nodiscard]] const GridMeta& meta() const override { return meta_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint32_t file_id() const override { return file_id_; }

  std::uint64_t read_partition(std::uint32_t i, std::vector<Edge>& out, sim::Platform& platform,
                               std::uint32_t job_id) const override;
  std::uint64_t read_edges(std::uint32_t i, EdgeCount first_edge, EdgeCount count, Edge* out,
                           sim::Platform& platform, std::uint32_t job_id) const override;
  [[nodiscard]] std::vector<std::uint32_t> load_out_degrees() const override;

 private:
  GridStore(GridMeta meta, std::string path, std::uint32_t file_id);

  GridMeta meta_;
  std::string path_;
  std::uint32_t file_id_;
  struct FdCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::shared_ptr<std::FILE> data_file_;
};

/// Preprocesses (once, cached) the named dataset into the cache dir and opens
/// it. Convenience used by benches, examples and tests.
GridStore open_dataset_grid(const std::string& dataset, std::uint32_t num_partitions,
                            double scale = 1.0);

}  // namespace graphm::grid
