#include "grid/grid_store.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "graph/datasets.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"
#include "util/annotations.hpp"

namespace graphm::grid {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMetaMagic = 0x47724431;  // "GrD1"

std::uint32_t next_file_id() {
  static std::atomic<std::uint32_t> counter{1};
  return counter.fetch_add(1);
}

// The simulated page cache keys pages by (file_id, page); file ids must be
// stable per path within a process so -S/-C/-M schemes contend for the same
// simulated pages.
std::uint32_t file_id_for_path(const std::string& path) {
  static graphm::Mutex mutex;
  static std::unordered_map<std::string, std::uint32_t> ids;
  graphm::MutexLock lock(mutex);
  auto [it, inserted] = ids.try_emplace(path, 0);
  if (inserted) it->second = next_file_id();
  return it->second;
}

}  // namespace

std::uint64_t GridStore::preprocess(const graph::EdgeList& graph, std::uint32_t num_partitions,
                                    const std::string& path, bool src_sort) {
  if (num_partitions == 0) throw std::invalid_argument("GridStore: num_partitions == 0");
  util::Timer timer;

  GridMeta meta;
  meta.num_vertices = graph.num_vertices();
  meta.num_edges = graph.num_edges();
  meta.num_partitions = num_partitions;
  meta.blocks_per_partition = num_partitions;  // P columns per row
  const std::size_t cells = static_cast<std::size_t>(num_partitions) * num_partitions;
  meta.block_offsets.assign(cells, 0);
  meta.block_edges.assign(cells, 0);

  // Counting pass.
  for (const Edge& e : graph.edges()) {
    const std::uint32_t i = meta.partition_of(e.src);
    const std::uint32_t j = meta.partition_of(e.dst);
    ++meta.block_edges[meta.block_index(i, j)];
  }
  std::uint64_t offset = 0;
  for (std::size_t c = 0; c < cells; ++c) {
    meta.block_offsets[c] = offset;
    offset += meta.block_edges[c] * sizeof(Edge);
  }

  // Bucketing pass (in memory, then one sequential write).
  std::vector<Edge> data(graph.num_edges());
  std::vector<std::uint64_t> cursor(meta.block_offsets.begin(), meta.block_offsets.end());
  for (const Edge& e : graph.edges()) {
    const std::uint32_t i = meta.partition_of(e.src);
    const std::uint32_t j = meta.partition_of(e.dst);
    std::uint64_t& cur = cursor[meta.block_index(i, j)];
    data[cur / sizeof(Edge)] = e;
    cur += sizeof(Edge);
  }
  // Group each block's edges by source (stable, so the dst-block structure
  // and the relative order of one source's edges survive). Source-grouped
  // blocks give the engines long source runs: a frontier word then covers 64
  // consecutive sources and an inactive source's edges are skipped without
  // being read.
  if (src_sort) {
    for (std::size_t c = 0; c < cells; ++c) {
      Edge* begin = data.data() + meta.block_offsets[c] / sizeof(Edge);
      std::stable_sort(begin, begin + meta.block_edges[c],
                       [](const Edge& a, const Edge& b) { return a.src < b.src; });
    }
  }

  // Persisting the grid is part of the conversion the paper's Table 3 times.
  {
    std::FILE* f = std::fopen((path + ".data").c_str(), "wb");
    if (f == nullptr) throw std::runtime_error("GridStore: cannot write " + path + ".data");
    if (!data.empty() && std::fwrite(data.data(), sizeof(Edge), data.size(), f) != data.size()) {
      std::fclose(f);
      throw std::runtime_error("GridStore: short write " + path + ".data");
    }
    std::fclose(f);
  }
  meta.preprocess_ns = timer.elapsed_ns();
  {
    std::FILE* f = std::fopen((path + ".meta").c_str(), "wb");
    if (f == nullptr) throw std::runtime_error("GridStore: cannot write " + path + ".meta");
    const std::uint32_t magic = kMetaMagic;
    std::fwrite(&magic, sizeof(magic), 1, f);
    std::fwrite(&meta.num_vertices, sizeof(meta.num_vertices), 1, f);
    std::fwrite(&meta.num_edges, sizeof(meta.num_edges), 1, f);
    std::fwrite(&meta.num_partitions, sizeof(meta.num_partitions), 1, f);
    std::fwrite(&meta.preprocess_ns, sizeof(meta.preprocess_ns), 1, f);
    std::fwrite(meta.block_offsets.data(), sizeof(std::uint64_t), cells, f);
    std::fwrite(meta.block_edges.data(), sizeof(std::uint64_t), cells, f);
    std::fclose(f);
  }
  {
    const auto degrees = graph.out_degrees();
    std::FILE* f = std::fopen((path + ".deg").c_str(), "wb");
    if (f == nullptr) throw std::runtime_error("GridStore: cannot write " + path + ".deg");
    if (!degrees.empty() &&
        std::fwrite(degrees.data(), sizeof(std::uint32_t), degrees.size(), f) != degrees.size()) {
      std::fclose(f);
      throw std::runtime_error("GridStore: short write " + path + ".deg");
    }
    std::fclose(f);
  }
  return meta.preprocess_ns;
}

GridStore GridStore::open(const std::string& path) {
  std::FILE* f = std::fopen((path + ".meta").c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("GridStore: cannot open " + path + ".meta");
  GridMeta meta;
  std::uint32_t magic = 0;
  bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1 && magic == kMetaMagic;
  ok = ok && std::fread(&meta.num_vertices, sizeof(meta.num_vertices), 1, f) == 1;
  ok = ok && std::fread(&meta.num_edges, sizeof(meta.num_edges), 1, f) == 1;
  ok = ok && std::fread(&meta.num_partitions, sizeof(meta.num_partitions), 1, f) == 1;
  ok = ok && std::fread(&meta.preprocess_ns, sizeof(meta.preprocess_ns), 1, f) == 1;
  if (ok) {
    meta.blocks_per_partition = meta.num_partitions;
    const std::size_t cells = static_cast<std::size_t>(meta.num_partitions) * meta.num_partitions;
    meta.block_offsets.resize(cells);
    meta.block_edges.resize(cells);
    ok = std::fread(meta.block_offsets.data(), sizeof(std::uint64_t), cells, f) == cells &&
         std::fread(meta.block_edges.data(), sizeof(std::uint64_t), cells, f) == cells;
  }
  std::fclose(f);
  if (!ok) throw std::runtime_error("GridStore: corrupt meta " + path);
  return GridStore(std::move(meta), path, file_id_for_path(path));
}

GridStore::GridStore(GridMeta meta, std::string path, std::uint32_t file_id)
    : meta_(std::move(meta)), path_(std::move(path)), file_id_(file_id) {
  std::FILE* f = std::fopen((path_ + ".data").c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("GridStore: cannot open " + path_ + ".data");
  data_file_ = std::shared_ptr<std::FILE>(f, FdCloser{});
}

std::uint64_t GridStore::read_partition(std::uint32_t i, std::vector<Edge>& out,
                                        sim::Platform& platform, std::uint32_t job_id) const {
  const EdgeCount count = meta_.partition_edges(i);
  out.resize(count);
  return read_edges(i, 0, count, out.data(), platform, job_id);
}

std::uint64_t GridStore::read_edges(std::uint32_t i, EdgeCount first_edge, EdgeCount count,
                                    Edge* out, sim::Platform& platform,
                                    std::uint32_t job_id) const {
  if (count == 0) return 0;
  const std::uint64_t offset = meta_.partition_offset(i) + first_edge * sizeof(Edge);
  const std::uint64_t bytes = count * sizeof(Edge);

  // Real read (the data must actually flow — algorithms consume it).
  {
    static graphm::Mutex io_mutex;
    graphm::MutexLock lock(io_mutex);
    if (std::fseek(data_file_.get(), static_cast<long>(offset), SEEK_SET) != 0 ||
        std::fread(out, 1, bytes, data_file_.get()) != bytes) {
      throw std::runtime_error("GridStore: read failed on " + path_);
    }
  }

  // Simulated cost.
  return platform.page_cache().read(file_id_, offset, bytes, job_id);
}

std::vector<std::uint32_t> GridStore::load_out_degrees() const {
  std::vector<std::uint32_t> degrees(meta_.num_vertices, 0);
  std::FILE* f = std::fopen((path_ + ".deg").c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("GridStore: cannot open " + path_ + ".deg");
  const std::size_t got = std::fread(degrees.data(), sizeof(std::uint32_t), degrees.size(), f);
  std::fclose(f);
  if (got != degrees.size()) throw std::runtime_error("GridStore: truncated " + path_ + ".deg");
  return degrees;
}

GridStore open_dataset_grid(const std::string& dataset, std::uint32_t num_partitions,
                            double scale) {
  const std::string edge_path = graph::dataset_path(dataset, scale);
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), "_%.4f_p%u.grid", scale, num_partitions);
  const std::string grid_path =
      (fs::path(graph::dataset_cache_dir()) / (dataset + std::string(suffix))).string();

  static graphm::Mutex mutex;
  graphm::MutexLock lock(mutex);
  if (!fs::exists(grid_path + ".meta") || !fs::exists(grid_path + ".data")) {
    GRAPHM_INFO("preprocessing grid for " << dataset << " P=" << num_partitions);
    GridStore::preprocess(graph::EdgeList::load(edge_path), num_partitions, grid_path);
  }
  return GridStore::open(grid_path);
}

}  // namespace graphm::grid
