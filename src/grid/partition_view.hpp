// A loaded partition as the streaming engine sees it: an ordered list of
// chunk spans. Under the default loader the whole partition is one span;
// under GraphM each span is one labelled chunk (possibly redirected to a
// copy-on-write snapshot chunk), which is what makes chunk-grained
// synchronization and snapshot isolation possible without the engine caring.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace graphm::grid {

struct ChunkSpan {
  const graph::Edge* edges = nullptr;
  graph::EdgeCount edge_count = 0;
  /// Address fed to the LLC simulator (the span's actual buffer address, so
  /// shared buffers hit the same simulated lines and private copies do not).
  std::uint64_t llc_base = 0;
  /// Index of this chunk within the partition's chunk table (or 0).
  std::uint32_t chunk_id = 0;
  /// Optional source-run index covering exactly [edges, edges+edge_count):
  /// sum of counts == edge_count, runs in stream order. When present, the
  /// engine streams active runs and skips inactive sources' edges without
  /// reading them. Populated by loaders that have (or can cache) the index;
  /// nullptr falls back to the plain gated block scan.
  const graph::SourceRun* runs = nullptr;
  std::uint32_t num_runs = 0;
  /// True iff `runs` ascends strictly by source. Sparse frontiers then jump
  /// straight to the next active source (AtomicBitmap::next_set_in_range +
  /// binary search) instead of walking every run; unsorted indexes fall back
  /// to the linear word-test walk.
  bool runs_sorted = false;
  /// Optional ascending-segment boundaries over `runs` for indexes that are a
  /// concatenation of sorted pieces (multi-block partition spans, multi-block
  /// GraphM chunks): segment s covers runs [run_segments[s],
  /// run_segments[s+1]) and ascends strictly by source, so the binary-search
  /// frontier jump applies segment-locally even when `runs_sorted` is false.
  /// `run_segments` holds num_run_segments + 1 boundaries; nullptr keeps the
  /// linear word-test walk.
  const std::uint32_t* run_segments = nullptr;
  std::uint32_t num_run_segments = 0;
};

struct PartitionView {
  std::uint32_t pid = 0;
  std::vector<ChunkSpan> chunks;
  graph::VertexId vertex_begin = 0;  // partition's source-vertex range
  graph::VertexId vertex_end = 0;

  [[nodiscard]] graph::EdgeCount total_edges() const {
    graph::EdgeCount total = 0;
    for (const auto& c : chunks) total += c.edge_count;
    return total;
  }
};

}  // namespace graphm::grid
