#include "grid/stream_engine.hpp"

#include "util/timer.hpp"

namespace graphm::grid {

StreamEngine::StreamEngine(const storage::PartitionedStore& store, sim::Platform& platform, StreamConfig config)
    : store_(store), platform_(platform), config_(config),
      out_degrees_(store.load_out_degrees()) {}

std::vector<std::uint32_t> StreamEngine::active_partitions(
    const util::AtomicBitmap& active) const {
  const GridMeta& meta = store_.meta();
  std::vector<std::uint32_t> result;
  result.reserve(meta.num_partitions);
  for (std::uint32_t p = 0; p < meta.num_partitions; ++p) {
    if (meta.partition_edges(p) == 0) continue;
    const auto [begin, end] = meta.vertex_range(p);
    if (active.any_in_range(begin, end)) result.push_back(p);
  }
  return result;
}

JobRunStats StreamEngine::run_job(std::uint32_t job_id, algos::StreamingAlgorithm& algorithm,
                                  PartitionLoader& loader) const {
  JobRunStats stats;
  util::Timer wall;
  const std::uint64_t io_before = platform_.page_cache().job_stats(job_id).virtual_io_ns;

  algorithm.init(store_.meta().num_vertices, out_degrees_, &platform_.memory());

  std::uint64_t iteration = 0;
  while (!algorithm.done() && iteration < config_.max_iterations_guard) {
    algorithm.iteration_start(iteration);
    const util::AtomicBitmap& active = algorithm.active_vertices();
    loader.register_iteration(job_id, active_partitions(active));

    while (auto view = loader.acquire_next(job_id)) {
      ++stats.partitions_loaded;
      const auto [values_ptr, values_bytes] = algorithm.values_span();
      const std::size_t num_chunks = view->chunks.size();
      for (std::size_t c = 0; c < num_chunks; ++c) {
        const ChunkSpan& span = view->chunks[c];
        loader.begin_chunk(job_id, view->pid, span.chunk_id);

        util::Timer chunk_timer;
        std::uint64_t active_edges = 0;
        for (graph::EdgeCount i = 0; i < span.edge_count; ++i) {
          const graph::Edge& e = span.edges[i];
          if (active.get(e.src)) {
            algorithm.process_edge(e);
            ++active_edges;
          }
        }
        const std::uint64_t elapsed = chunk_timer.elapsed_ns();

        stats.edges_streamed += span.edge_count;
        stats.edges_processed += active_edges;
        stats.compute_ns += elapsed;

        if (config_.model_llc && span.edge_count != 0) {
          // Structure data: the chunk's actual buffer address, so shared
          // buffers (-M) hit the same simulated lines while private copies
          // (-C) do not.
          platform_.llc().access_range(span.llc_base, span.edge_count * sizeof(graph::Edge),
                                       job_id);
          // Per-job hot metadata (frontier words, degree entries, engine
          // state) touched at every chunk. Alone or under -M's lock-step this
          // set stays LLC-resident; under -C the other jobs' private streams
          // flush it between chunks — the cache-interference LPI growth of
          // the paper's Figure 3(c).
          constexpr std::size_t kHotSetBytes = 1024;
          platform_.llc().access_range(0x7f0000000000ULL + (std::uint64_t{job_id} << 20),
                                       kHotSetBytes, job_id);
          if (config_.model_vertex_data && values_bytes != 0 && c == 0 &&
              store_.meta().num_vertices != 0) {
            // Job-specific data: under the grid's 2-level layout a partition
            // touches its own source-value slice plus similarly-sized
            // destination windows, so charge the job's value slice for the
            // partition's vertex range twice per partition (weight 2). This
            // keeps the paper's ratio: structure accesses dominate.
            const std::size_t bytes_per_vertex =
                std::max<std::size_t>(1, values_bytes / store_.meta().num_vertices);
            const std::uint64_t base = reinterpret_cast<std::uint64_t>(values_ptr) +
                                       std::uint64_t{view->vertex_begin} * bytes_per_vertex;
            const std::size_t len =
                (view->vertex_end - view->vertex_begin) * bytes_per_vertex;
            platform_.llc().access_range(base, std::max<std::size_t>(len, 64), job_id, 2);
          }
        }
        // "Instructions retired" proxy: one unit per scanned edge plus the
        // relaxation work for active edges.
        platform_.add_instructions(job_id, span.edge_count + 2 * active_edges);

        loader.end_chunk(job_id, view->pid, span.chunk_id, active_edges, span.edge_count,
                         elapsed);
      }
      loader.release(job_id, view->pid);
    }
    algorithm.iteration_end();
    ++iteration;
  }

  loader.job_finished(job_id);
  stats.iterations = iteration;
  stats.wall_ns = wall.elapsed_ns();
  stats.io_stall_ns = platform_.page_cache().job_stats(job_id).virtual_io_ns - io_before;
  return stats;
}

}  // namespace graphm::grid
