#include "grid/stream_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace graphm::grid {

StreamEngine::StreamEngine(const storage::PartitionedStore& store, sim::Platform& platform, StreamConfig config)
    : store_(store), platform_(platform), config_(config),
      out_degrees_(store.load_out_degrees()),
      run_cache_(store.meta().num_partitions),
      run_cache_once_(store.meta().num_partitions) {
  if (config_.num_stream_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.num_stream_threads);
  }
}

const StreamEngine::RunIndex& StreamEngine::partition_runs(std::uint32_t pid,
                                                           const ChunkSpan& span) const {
  // call_once per partition: concurrent jobs first touching *different*
  // partitions build in parallel; once published the index is immutable and
  // reads are lock-free.
  std::call_once(run_cache_once_[pid], [&] {
    RunIndex& index = run_cache_[pid];
    for (graph::EdgeCount i = 0; i < span.edge_count; ++i) {
      graph::append_source_run(index.runs, span.edges[i].src);
    }
    index.runs.shrink_to_fit();
    index.sorted = graph::source_runs_sorted(index.runs);
    if (!index.sorted) index.segments = graph::sorted_run_segments(index.runs);
    MutexLock lock(run_cache_mutex_);
    run_cache_bytes_ += index.runs.size() * sizeof(graph::SourceRun) +
                        index.segments.size() * sizeof(std::uint32_t);
    run_cache_tracking_ = sim::TrackedAllocation(
        &platform_.memory(), sim::MemoryCategory::kChunkTables, run_cache_bytes_);
  });
  return run_cache_[pid];
}

std::vector<std::uint32_t> StreamEngine::active_partitions(
    const util::AtomicBitmap& active) const {
  const GridMeta& meta = store_.meta();
  std::vector<std::uint32_t> result;
  result.reserve(meta.num_partitions);
  for (std::uint32_t p = 0; p < meta.num_partitions; ++p) {
    if (meta.partition_edges(p) == 0) continue;
    const auto [begin, end] = meta.vertex_range(p);
    if (active.next_set_in_range(begin, end) != end) result.push_back(p);
  }
  return result;
}

std::uint64_t StreamEngine::stream_range(algos::StreamingAlgorithm& algorithm,
                                         const ChunkSpan& span, graph::EdgeCount begin,
                                         graph::EdgeCount len,
                                         const util::AtomicBitmap& active,
                                         bool fan_out) const {
  const graph::EdgeCount block = std::max<graph::EdgeCount>(1, config_.block_edges);
  if (!fan_out || len <= block) {
    std::uint64_t processed = 0;
    for (graph::EdgeCount off = 0; off < len; off += block) {
      const graph::EdgeCount n = std::min(block, len - off);
      processed += algorithm.process_edge_block(span.edges + begin + off, n, active);
    }
    return processed;
  }

  const std::uint32_t stripes = algorithm.dst_stripes();
  if (stripes > 0) {
    // Striped fan-out (order-sensitive reductions, e.g. PageRank): the work
    // unit is a destination stripe, not a block. Each stripe task scans the
    // whole range in stream order and relaxes only the destinations it owns,
    // so the per-destination summation order is the serial one no matter how
    // many workers run or which worker takes which stripe. Per-stripe relaxed
    // counts partition the source-active edges (each edge belongs to exactly
    // one dst stripe), so the integer-reduced total matches the serial scan.
    std::atomic<std::uint64_t> processed{0};
    pool_->parallel_for(stripes, [&](std::size_t s) {
      processed.fetch_add(
          algorithm.process_edge_block_striped(span.edges + begin, len, active,
                                               static_cast<std::uint32_t>(s)),
          std::memory_order_relaxed);
    });
    return processed.load(std::memory_order_relaxed);
  }

  // Fan the range's blocks across the pool. The per-block relaxed counts are
  // reduced with an integer fetch_add — order-independent, so the total (and
  // every simulated metric derived from it) is identical at any thread count.
  const auto num_blocks = static_cast<std::size_t>((len + block - 1) / block);
  std::atomic<std::uint64_t> processed{0};
  pool_->parallel_for(num_blocks, [&](std::size_t b) {
    const graph::EdgeCount off = static_cast<graph::EdgeCount>(b) * block;
    const graph::EdgeCount n = std::min(block, len - off);
    processed.fetch_add(algorithm.process_edge_block(span.edges + begin + off, n, active),
                        std::memory_order_relaxed);
  });
  return processed.load(std::memory_order_relaxed);
}

std::uint64_t StreamEngine::stream_chunk(algos::StreamingAlgorithm& algorithm,
                                         const ChunkSpan& span,
                                         const util::AtomicBitmap& active,
                                         bool fan_out, bool dense) const {
  if (!config_.use_blocks) {
    // Legacy scalar baseline: one atomic bit test + one virtual call per edge.
    std::uint64_t processed = 0;
    for (graph::EdgeCount i = 0; i < span.edge_count; ++i) {
      const graph::Edge& e = span.edges[i];
      if (active.get(e.src)) {
        algorithm.process_edge(e);
        ++processed;
      }
    }
    return processed;
  }

  if (dense || span.runs == nullptr || span.num_runs == 0) {
    return stream_range(algorithm, span, 0, span.edge_count, active, fan_out);
  }

  // Source-run skipping: streaming is bandwidth-bound, so the win on an
  // inactive source is never touching its edges. Walk the run index (one
  // frontier word covers up to 64 consecutive sorted sources), coalesce
  // active runs into segments, and only those segments' edges are read.
  // Short inactive gaps are absorbed into the surrounding segment — the
  // in-block word test filters them far cheaper than fragmenting the stream
  // into per-run dispatches — so skipping only kicks in for gaps long enough
  // to pay back. The segments cover, in stream order, every edge the gated
  // scan would relax; the per-edge gating inside process_edge_block does the
  // rest, so results stay bit-identical.
  //
  // Word-granular jumping: on a sorted index (strictly ascending srcs), an
  // inactive run doesn't start a linear scan — the frontier bitmap names the
  // next active source directly (next_set_in_range skips 64 clear bits per
  // word load) and a binary search lands on the first run at or past it, so
  // a genuinely sparse frontier touches O(active log runs) index entries
  // instead of all of them. Unsorted indexes that are concatenations of
  // sorted pieces (multi-block partition spans, multi-block GraphM chunks)
  // carry the ascending-segment boundaries instead and jump segment-locally;
  // only arbitrary-order indexes keep the linear word-test walk.
  constexpr graph::EdgeCount kMinSkipEdges = 24;
  std::uint64_t processed = 0;
  util::WordCache words(active);
  graph::EdgeCount segment_begin = 0;
  graph::EdgeCount segment_end = 0;  // segment = [segment_begin, segment_end)
  bool have_segment = false;
  std::uint32_t seg = 0;  // current entry of span.run_segments, when present
  std::uint32_t r = 0;
  while (r < span.num_runs) {
    const graph::SourceRun run = span.runs[r];
    if (words.test(run.src)) {
      const graph::EdgeCount run_begin = run.begin;
      if (!have_segment) {
        segment_begin = run_begin;
        have_segment = true;
      } else if (run_begin - segment_end >= kMinSkipEdges) {
        processed += stream_range(algorithm, span, segment_begin,
                                  segment_end - segment_begin, active, fan_out);
        segment_begin = run_begin;
      }
      // else: absorb the short gap [segment_end, run_begin).
      segment_end = run_begin + run.count;
      ++r;
      continue;
    }
    // Inactive run: jump over the sorted horizon this position sits in — the
    // whole index when globally sorted, the enclosing ascending segment on
    // multi-block spans, or nothing (linear walk) without either.
    std::uint32_t jump_end;
    if (span.runs_sorted) {
      jump_end = span.num_runs;
    } else if (span.run_segments != nullptr && span.num_run_segments != 0) {
      while (span.run_segments[seg + 1] <= r) ++seg;
      jump_end = span.run_segments[seg + 1];
    } else {
      ++r;
      continue;
    }
    const std::size_t next_src = active.next_set_in_range(run.src + 1, active.size());
    if (next_src >= active.size()) {
      // Nothing active at or above run.src: the rest of this ascending
      // horizon is all inactive. Later segments restart at lower sources, so
      // only a fully sorted index can stop outright.
      if (span.runs_sorted) break;
      r = jump_end;
      continue;
    }
    const graph::SourceRun* first = span.runs + r + 1;
    const graph::SourceRun* last = span.runs + jump_end;
    const graph::SourceRun* it =
        std::lower_bound(first, last, next_src,
                         [](const graph::SourceRun& a, std::size_t src) {
                           return a.src < src;
                         });
    r = static_cast<std::uint32_t>(it - span.runs);
  }
  if (have_segment) {
    processed += stream_range(algorithm, span, segment_begin,
                              segment_end - segment_begin, active, fan_out);
  }
  return processed;
}

JobRunStats StreamEngine::run_job(std::uint32_t job_id, algos::StreamingAlgorithm& algorithm,
                                  PartitionLoader& loader, const JobControl* control) const {
  JobRunStats stats;
  util::Timer wall;
  const std::uint64_t io_before = platform_.page_cache().job_stats(job_id).virtual_io_ns;

  algorithm.init(store_.meta().num_vertices, out_degrees_, &platform_.memory());
  const bool fan_out = pool_ != nullptr && config_.use_blocks && algorithm.parallel_safe();

  // Spans land on the calling thread's track: the service worker's job span
  // records on the same track, so iterations nest inside it in the viewer.
  obs::Tracer& tracer = obs::Tracer::global();
  const bool tracing = tracer.enabled();
  const std::uint32_t track = tracing ? tracer.thread_track() : obs::Tracer::kNoTrack;

  std::uint64_t iteration = 0;
  while (!algorithm.done() && iteration < config_.max_iterations_guard) {
    if (control != nullptr && control->cancel_requested()) {
      stats.cancelled = true;
      break;
    }
    const std::uint64_t iter_start_ns = tracing ? tracer.now_ns() : 0;
    algorithm.iteration_start(iteration);
    const util::AtomicBitmap& active = algorithm.active_vertices();
    loader.register_iteration(job_id, active_partitions(active));

    while (auto view = loader.acquire_next(job_id)) {
      const std::uint64_t part_start_ns = tracing ? tracer.now_ns() : 0;
      ++stats.partitions_loaded;
      // Partition-grouping seam of the striped-accumulation contract: every
      // engine path (legacy scalar, blocks, pooled) announces the partition
      // so accumulating algorithms group contributions identically — the
      // property that makes PageRank byte-identical across -S/-C/-M and any
      // partition visit order.
      algorithm.begin_partition(view->pid, store_.meta().num_partitions);
      const auto [values_ptr, values_bytes] = algorithm.values_span();
      // The run walk costs ~8 bytes of index bandwidth per run and only pays
      // when it actually skips edge reads. Dense-ish frontiers (PageRank/WCC
      // full scans, BFS wave peaks) skip almost nothing, so anything at or
      // above half-active streams plain blocks with the in-loop word test —
      // the run index is for genuinely sparse iterations.
      const graph::VertexId range =
          view->vertex_end > view->vertex_begin ? view->vertex_end - view->vertex_begin : 0;
      const bool dense =
          range == 0 ||
          2 * active.count_range(view->vertex_begin, view->vertex_end) >= range;
      const std::size_t num_chunks = view->chunks.size();
      for (std::size_t c = 0; c < num_chunks; ++c) {
        ChunkSpan span = view->chunks[c];
        // Loaders that hand out bare full-partition spans get the engine's
        // shared run index attached — built lazily, only when a sparse
        // frontier can actually use it.
        if (config_.use_blocks && !dense && span.runs == nullptr && num_chunks == 1 &&
            span.chunk_id == 0 && span.edge_count != 0 &&
            span.edge_count == store_.meta().partition_edges(view->pid)) {
          const RunIndex& index = partition_runs(view->pid, span);
          span.runs = index.runs.data();
          span.num_runs = static_cast<std::uint32_t>(index.runs.size());
          span.runs_sorted = index.sorted;
          if (!index.segments.empty()) {
            span.run_segments = index.segments.data();
            span.num_run_segments = static_cast<std::uint32_t>(index.segments.size() - 1);
          }
        }
        loader.begin_chunk(job_id, view->pid, span.chunk_id);

        util::Timer chunk_timer;
        const std::uint64_t active_edges =
            stream_chunk(algorithm, span, active, fan_out, dense);
        const std::uint64_t elapsed = chunk_timer.elapsed_ns();

        stats.edges_streamed += span.edge_count;
        stats.edges_processed += active_edges;
        stats.compute_ns += elapsed;

        // Simulated metrics are issued from this (the job's) thread in chunk
        // order, never from pool workers, so LLC state transitions and
        // instruction counts stay deterministic at any thread count.
        if (config_.model_llc && span.edge_count != 0) {
          // Structure data: the chunk's actual buffer address, so shared
          // buffers (-M) hit the same simulated lines while private copies
          // (-C) do not.
          platform_.llc().access_range(span.llc_base, span.edge_count * sizeof(graph::Edge),
                                       job_id);
          // Per-job hot metadata (frontier words, degree entries, engine
          // state) touched at every chunk. Alone or under -M's lock-step this
          // set stays LLC-resident; under -C the other jobs' private streams
          // flush it between chunks — the cache-interference LPI growth of
          // the paper's Figure 3(c). The addresses come from the platform's
          // reserved simulated region (kernel-half, bit 63 set), which can
          // never collide with a real buffer address.
          constexpr std::size_t kHotSetBytes = 1024;
          platform_.llc().access_range(sim::Platform::job_scratch_base(job_id),
                                       kHotSetBytes, job_id);
          if (config_.model_vertex_data && values_bytes != 0 && c == 0 &&
              store_.meta().num_vertices != 0) {
            // Job-specific data: under the grid's 2-level layout a partition
            // touches its own source-value slice plus similarly-sized
            // destination windows, so charge the job's value slice for the
            // partition's vertex range twice per partition (weight 2). This
            // keeps the paper's ratio: structure accesses dominate.
            const std::size_t bytes_per_vertex =
                std::max<std::size_t>(1, values_bytes / store_.meta().num_vertices);
            const std::uint64_t base = reinterpret_cast<std::uint64_t>(values_ptr) +
                                       std::uint64_t{view->vertex_begin} * bytes_per_vertex;
            const std::size_t len =
                (view->vertex_end - view->vertex_begin) * bytes_per_vertex;
            platform_.llc().access_range(base, std::max<std::size_t>(len, 64), job_id, 2);
          }
        }
        // "Instructions retired" proxy: one unit per scanned edge plus the
        // relaxation work for active edges.
        platform_.add_instructions(job_id, span.edge_count + 2 * active_edges);

        loader.end_chunk(job_id, view->pid, span.chunk_id, active_edges, span.edge_count,
                         elapsed);
      }
      loader.release(job_id, view->pid);
      if (tracing) {
        char name[32];
        std::snprintf(name, sizeof(name), "partition %u", view->pid);
        tracer.complete(track, name, part_start_ns, tracer.now_ns() - part_start_ns,
                        job_id, view->pid);
      }
      if (control != nullptr && control->cancel_requested()) {
        stats.cancelled = true;
        break;
      }
    }
    if (stats.cancelled) break;  // mid-iteration: skip iteration_end
    algorithm.iteration_end();
    if (tracing) {
      char name[32];
      std::snprintf(name, sizeof(name), "iteration %llu",
                    static_cast<unsigned long long>(iteration));
      tracer.complete(track, name, iter_start_ns, tracer.now_ns() - iter_start_ns,
                      job_id, iteration);
    }
    ++iteration;
  }

  // A cancelled job may leave partition needs unconsumed; job_finished tells
  // the loader (and, under -M, the sharing controller's detach seam) so the
  // group advances without it.
  loader.job_finished(job_id);
  stats.iterations = iteration;
  stats.wall_ns = wall.elapsed_ns();
  stats.io_stall_ns = platform_.page_cache().job_stats(job_id).virtual_io_ns - io_before;
  return stats;
}

}  // namespace graphm::grid
