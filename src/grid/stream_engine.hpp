// The GridGraph-like streaming-apply engine.
//
// One call to run_job() executes a complete iterative job: every iteration it
// derives the active partitions from the algorithm's frontier (GridGraph's
// `should_access_shard`), asks the PartitionLoader for partitions one by one
// (that seam is where GraphM plugs in, Figure 6), streams each loaded chunk
// through the algorithm's process_edge_block, and reports simulated LLC
// accesses, instructions and timings.
//
// The streaming hot path is block-batched: a chunk is cut into fixed-size
// edge blocks and each block goes through one virtual process_edge_block call
// whose override runs a tight devirtualized loop (word-at-a-time frontier
// tests). When the engine owns a thread pool and the algorithm declares
// parallel_safe(), the chunk fans out across the pool — the paper's intra-job
// `#threads == #cores` axis (Figure 20) — in one of two shapes: by block for
// order-independent relaxations, or by destination stripe for order-sensitive
// reductions (dst_stripes() > 0, e.g. PageRank), which keeps results
// bit-identical at any thread count. The engine also announces each
// partition via begin_partition so accumulating algorithms can group
// contributions by the graph layout rather than visit order. All simulated
// metrics (instructions, LLC accesses) are issued from the calling thread in
// canonical chunk order after each chunk's blocks complete, so they are
// bit-identical at any thread count; see docs/streaming.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>

#include "algos/algorithm.hpp"
#include "grid/grid_store.hpp"
#include "grid/loader.hpp"
#include "sim/platform.hpp"
#include "util/thread_pool.hpp"
#include "util/annotations.hpp"

namespace graphm::grid {

struct StreamConfig {
  bool model_llc = true;          // feed buffer addresses through the LLC sim
  bool model_vertex_data = true;  // also model job-specific value accesses
  /// false = legacy per-edge loop (one virtual call + one atomic bit test per
  /// edge). Kept as the measurable scalar baseline and as the oracle path for
  /// the block equivalence tests.
  bool use_blocks = true;
  /// Streaming workers per engine (1 = no pool). The pool is shared by every
  /// job running on the engine; a job's blocks are only fanned out when its
  /// algorithm is parallel_safe().
  std::size_t num_stream_threads = 1;
  /// Edges per process_edge_block dispatch (also the parallel work unit).
  graph::EdgeCount block_edges = 16384;
  std::uint64_t max_iterations_guard = 100000;  // safety net against bugs
};

struct JobRunStats {
  std::uint64_t iterations = 0;
  std::uint64_t edges_streamed = 0;   // edges scanned (loaded chunks)
  std::uint64_t edges_processed = 0;  // edges whose source was active
  std::uint64_t partitions_loaded = 0;
  std::uint64_t compute_ns = 0;   // time inside the edge loops
  std::uint64_t io_stall_ns = 0;  // modeled disk stall attributed to this job
  std::uint64_t wall_ns = 0;      // end-to-end (includes suspension under -M)
  bool cancelled = false;         // stopped early via JobControl
};

/// Cooperative cancellation for long-running jobs (the service layer's
/// deadline aborts). The engine polls it at iteration and partition
/// boundaries only — never inside the edge loops — so cancellation latency is
/// bounded by one partition round and the hot path stays untouched. A
/// cancelled job detaches from its sharing group via the loader's
/// job_finished seam; its algorithm state is left mid-flight.
struct JobControl {
  std::atomic<bool> cancel{false};
  /// Optional predicate polled alongside `cancel` (e.g. a deadline check
  /// against the service clock). Must be thread-safe and cheap.
  std::function<bool()> should_cancel;

  [[nodiscard]] bool cancel_requested() const {
    return cancel.load(std::memory_order_relaxed) || (should_cancel && should_cancel());
  }
};

class StreamEngine {
 public:
  StreamEngine(const storage::PartitionedStore& store, sim::Platform& platform, StreamConfig config = {});

  /// Runs `algorithm` to completion as job `job_id`, loading partitions via
  /// `loader`. Thread-safe w.r.t. other jobs running on the same engine.
  /// `control` (optional) is polled at iteration/partition boundaries; when
  /// it requests cancellation the job stops early with stats.cancelled set.
  JobRunStats run_job(std::uint32_t job_id, algos::StreamingAlgorithm& algorithm,
                      PartitionLoader& loader, const JobControl* control = nullptr) const;

  /// Partitions with at least one active source vertex and at least one edge.
  [[nodiscard]] std::vector<std::uint32_t> active_partitions(
      const util::AtomicBitmap& active) const;

  [[nodiscard]] const storage::PartitionedStore& store() const { return store_; }
  [[nodiscard]] const std::vector<std::uint32_t>& out_degrees() const { return out_degrees_; }
  [[nodiscard]] sim::Platform& platform() const { return platform_; }
  [[nodiscard]] const StreamConfig& config() const { return config_; }
  /// Streaming workers available to one job (pool size, or 1 without a pool).
  [[nodiscard]] std::size_t stream_threads() const {
    return pool_ ? pool_->size() : 1;
  }

 private:
  /// Streams one chunk span through the algorithm (block-batched, optionally
  /// pool-parallel) and returns the number of edges relaxed. `dense` reports
  /// that every source in the partition's vertex range is active, which
  /// bypasses the source-run skip index (nothing to skip).
  std::uint64_t stream_chunk(algos::StreamingAlgorithm& algorithm, const ChunkSpan& span,
                             const util::AtomicBitmap& active, bool fan_out,
                             bool dense) const;

  /// Streams [begin, begin+len) of `span` as block_edges-sized batches,
  /// serially or across the pool.
  std::uint64_t stream_range(algos::StreamingAlgorithm& algorithm, const ChunkSpan& span,
                             graph::EdgeCount begin, graph::EdgeCount len,
                             const util::AtomicBitmap& active, bool fan_out) const;

  struct RunIndex {
    std::vector<graph::SourceRun> runs;
    bool sorted = false;  // strictly ascending srcs => binary-search jumps
    /// For unsorted indexes (a partition is a row of src-sorted blocks, so
    /// its concatenated runs restart at every block): the ascending-segment
    /// boundaries (graph::sorted_run_segments), enabling segment-local jumps.
    std::vector<std::uint32_t> segments;
  };

  /// The shared per-partition source-run index for loaders that hand out
  /// bare full-partition spans (DefaultLoader). Built lazily from the span's
  /// own edges on first sparse use, then reused by every job on this engine
  /// — immutable structure metadata, like out_degrees_. Tracked under
  /// kChunkTables (it is skip-index metadata, the same class as GraphM's
  /// Set_c).
  const RunIndex& partition_runs(std::uint32_t pid, const ChunkSpan& span) const;

  const storage::PartitionedStore& store_;
  sim::Platform& platform_;
  StreamConfig config_;
  std::vector<std::uint32_t> out_degrees_;
  std::unique_ptr<util::ThreadPool> pool_;  // present iff num_stream_threads > 1

  mutable Mutex run_cache_mutex_;  // guards only the tracked byte counter
  /// Built under a per-partition once_flag, then immutable — lock-free reads
  /// after publication, so deliberately NOT GUARDED_BY(run_cache_mutex_).
  mutable std::vector<RunIndex> run_cache_;  // sized to P, stable
  /// One flag per partition so distinct partitions build concurrently; the
  /// deque keeps the (immovable) flags at stable addresses.
  mutable std::deque<std::once_flag> run_cache_once_;
  mutable std::uint64_t run_cache_bytes_ GUARDED_BY(run_cache_mutex_) = 0;
  mutable sim::TrackedAllocation run_cache_tracking_ GUARDED_BY(run_cache_mutex_);
};

}  // namespace graphm::grid
