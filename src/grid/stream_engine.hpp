// The GridGraph-like streaming-apply engine.
//
// One call to run_job() executes a complete iterative job: every iteration it
// derives the active partitions from the algorithm's frontier (GridGraph's
// `should_access_shard`), asks the PartitionLoader for partitions one by one
// (that seam is where GraphM plugs in, Figure 6), streams each loaded chunk
// through the algorithm's process_edge, and reports simulated LLC accesses,
// instructions and timings.
#pragma once

#include <cstdint>

#include "algos/algorithm.hpp"
#include "grid/grid_store.hpp"
#include "grid/loader.hpp"
#include "sim/platform.hpp"

namespace graphm::grid {

struct StreamConfig {
  bool model_llc = true;          // feed buffer addresses through the LLC sim
  bool model_vertex_data = true;  // also model job-specific value accesses
  std::uint64_t max_iterations_guard = 100000;  // safety net against bugs
};

struct JobRunStats {
  std::uint64_t iterations = 0;
  std::uint64_t edges_streamed = 0;   // edges scanned (loaded chunks)
  std::uint64_t edges_processed = 0;  // edges whose source was active
  std::uint64_t partitions_loaded = 0;
  std::uint64_t compute_ns = 0;   // time inside the edge loops
  std::uint64_t io_stall_ns = 0;  // modeled disk stall attributed to this job
  std::uint64_t wall_ns = 0;      // end-to-end (includes suspension under -M)
};

class StreamEngine {
 public:
  StreamEngine(const storage::PartitionedStore& store, sim::Platform& platform, StreamConfig config = {});

  /// Runs `algorithm` to completion as job `job_id`, loading partitions via
  /// `loader`. Thread-safe w.r.t. other jobs running on the same engine.
  JobRunStats run_job(std::uint32_t job_id, algos::StreamingAlgorithm& algorithm,
                      PartitionLoader& loader) const;

  /// Partitions with at least one active source vertex and at least one edge.
  [[nodiscard]] std::vector<std::uint32_t> active_partitions(
      const util::AtomicBitmap& active) const;

  [[nodiscard]] const storage::PartitionedStore& store() const { return store_; }
  [[nodiscard]] const std::vector<std::uint32_t>& out_degrees() const { return out_degrees_; }
  [[nodiscard]] sim::Platform& platform() const { return platform_; }

 private:
  const storage::PartitionedStore& store_;
  sim::Platform& platform_;
  StreamConfig config_;
  std::vector<std::uint32_t> out_degrees_;
};

}  // namespace graphm::grid
