#include "grid/loader.hpp"

#include <algorithm>

namespace graphm::grid {

DefaultLoader::DefaultLoader(const storage::PartitionedStore& store, sim::Platform& platform)
    : store_(store), platform_(platform) {
  // GridGraph streams partitions through one reusable buffer sized for the
  // largest partition; that allocation is what multiplies under the -C
  // scheme (one per concurrent job).
  buffer_.reserve(store_.meta().max_partition_bytes() / sizeof(Edge));
  buffer_tracking_ = sim::TrackedAllocation(&platform_.memory(),
                                            sim::MemoryCategory::kGraphStructure,
                                            store_.meta().max_partition_bytes());
}

DefaultLoader::~DefaultLoader() = default;

void DefaultLoader::register_iteration(std::uint32_t /*job_id*/,
                                       const std::vector<std::uint32_t>& active_partitions) {
  pending_.assign(active_partitions.rbegin(), active_partitions.rend());
}

std::optional<PartitionView> DefaultLoader::acquire_next(std::uint32_t job_id) {
  if (pending_.empty()) return std::nullopt;
  const std::uint32_t pid = pending_.back();
  pending_.pop_back();

  io_stall_ns_ += store_.read_partition(pid, buffer_, platform_, job_id);

  PartitionView view;
  view.pid = pid;
  const auto [vb, ve] = store_.meta().vertex_range(pid);
  view.vertex_begin = vb;
  view.vertex_end = ve;
  ChunkSpan span;
  span.edges = buffer_.data();
  span.edge_count = buffer_.size();
  span.llc_base = reinterpret_cast<std::uint64_t>(buffer_.data());
  span.chunk_id = 0;
  // No run index here: full-partition spans get theirs from the engine's
  // shared per-partition cache (immutable structure metadata, one copy per
  // engine rather than one per job).
  view.chunks.push_back(span);
  return view;
}

void DefaultLoader::release(std::uint32_t /*job_id*/, std::uint32_t /*pid*/) {}

}  // namespace graphm::grid
