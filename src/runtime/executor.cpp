#include "runtime/executor.hpp"

#include <latch>
#include <memory>
#include <thread>

#include "util/timer.hpp"

namespace graphm::runtime {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSequential: return "GridGraph-S";
    case Scheme::kConcurrent: return "GridGraph-C";
    case Scheme::kShared: return "GridGraph-M";
  }
  return "?";
}

namespace {

struct JobSlot {
  JobOutcome outcome;
};

void finalize_metrics(RunMetrics& metrics, const sim::Platform& platform,
                      const ExecutorConfig& config, std::size_t num_jobs) {
  metrics.llc = platform.llc().total_stats();
  metrics.io = platform.page_cache().total_stats();
  metrics.io_stall_ns = metrics.io.virtual_io_ns;
  metrics.peak_memory_bytes = platform.memory().peak_total();
  metrics.peak_graph_memory_bytes =
      platform.memory().peak(sim::MemoryCategory::kGraphStructure);
  metrics.peak_job_memory_bytes = platform.memory().peak(sim::MemoryCategory::kJobSpecific);
  metrics.peak_table_memory_bytes = platform.memory().peak(sim::MemoryCategory::kChunkTables);

  std::vector<std::uint32_t> job_ids(num_jobs);
  for (std::size_t j = 0; j < num_jobs; ++j) job_ids[j] = static_cast<std::uint32_t>(j);
  metrics.average_lpi = platform.average_lpi(job_ids);

  std::uint64_t mem_stall_total = 0;
  metrics.modeled_cores = config.modeled_cores;
  for (std::size_t j = 0; j < num_jobs; ++j) {
    const auto cache = platform.llc().job_stats(static_cast<std::uint32_t>(j));
    const auto stall = static_cast<std::uint64_t>(static_cast<double>(cache.misses) *
                                                  config.dram_latency_s * 1e9);
    metrics.jobs[j].mem_stall_ns = stall;
    metrics.jobs[j].modeled_cores = config.modeled_cores;
    mem_stall_total += stall;
    metrics.compute_ns += metrics.jobs[j].stats.compute_ns;
  }
  metrics.mem_stall_ns = mem_stall_total;
}

}  // namespace

RunMetrics run_jobs(Scheme scheme, const storage::PartitionedStore& store,
                    const std::vector<algos::JobSpec>& jobs, const ExecutorConfig& config) {
  RunMetrics metrics;
  metrics.scheme = scheme_name(scheme);
  metrics.jobs.resize(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) metrics.jobs[j].spec = jobs[j];
  if (jobs.empty()) return metrics;

  sim::Platform platform(config.platform);
  grid::StreamEngine engine(store, platform, config.stream);

  // GraphM is initialized before the measured run (the labelling cost is the
  // separate Table-3 experiment) and its chunk tables stay resident.
  std::unique_ptr<core::GraphM> graphm;
  if (scheme == Scheme::kShared) {
    graphm = std::make_unique<core::GraphM>(store, platform, config.graphm);
    graphm->init();
    // Labelling I/O is preprocessing (Table 3), and the pages it touched must
    // not warm the run: every scheme starts from a cold page cache.
    platform.page_cache().reset();
  }

  const util::Timer* run_wall = nullptr;  // the measured run clock (set below)
  auto run_one = [&](std::size_t index, std::latch* start_line) {
    const auto job_id = static_cast<std::uint32_t>(index);
    auto algorithm = algos::make_algorithm(jobs[index]);
    std::unique_ptr<grid::PartitionLoader> loader;
    if (scheme == Scheme::kShared) {
      loader = graphm->make_loader(job_id);
    } else {
      loader = std::make_unique<grid::DefaultLoader>(store, platform);
    }
    if (start_line != nullptr) {
      // Jobs submitted together really do run together: without this, a
      // single-core host could run one short job to completion before the
      // next thread is even scheduled, hiding the concurrent footprint that
      // the -C scheme is supposed to exhibit (and the overlap -M exploits).
      start_line->arrive_and_wait();
    }
    metrics.jobs[index].start_ns = run_wall->elapsed_ns();
    metrics.jobs[index].stats = engine.run_job(job_id, *algorithm, *loader);
    metrics.jobs[index].completion_ns = run_wall->elapsed_ns();
    if (config.record_results) metrics.jobs[index].result = algorithm->result();
  };

  util::Timer wall;
  run_wall = &wall;
  if (scheme == Scheme::kSequential) {
    // The whole batch is submitted up front (arrival 0 for everyone), so a
    // job's latency includes the time spent waiting for its predecessors —
    // the per-job-sequential baseline the service benches compare against.
    for (std::size_t j = 0; j < jobs.size(); ++j) run_one(j, nullptr);
  } else {
    const bool staggered = !config.arrival_offsets_ns.empty();
    std::latch start_line(static_cast<std::ptrdiff_t>(jobs.size()));
    std::vector<std::thread> threads;
    threads.reserve(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      threads.emplace_back([&, j] {
        if (staggered) {
          if (j < config.arrival_offsets_ns.size() && config.arrival_offsets_ns[j] != 0) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(config.arrival_offsets_ns[j]));
          }
          // Open-loop replay: the job "arrives" when its offset elapses.
          metrics.jobs[j].arrival_ns = wall.elapsed_ns();
          run_one(j, nullptr);
        } else {
          run_one(j, &start_line);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  metrics.makespan_wall_ns = wall.elapsed_ns();

  if (graphm) metrics.sharing = graphm->controller().stats();
  finalize_metrics(metrics, platform, config, jobs.size());
  return metrics;
}

}  // namespace graphm::runtime
