// Per-run metrics: everything the paper's evaluation figures report, gathered
// from the simulated platform and the measured job timings.
//
// Time model (DESIGN.md section 2). The host has fewer cores than the
// paper's 16, so the reported execution time composes measured and modeled
// terms explicitly:
//     ( measured compute  +  modeled DRAM stall  +  modeled sync cost ) / N
//   +   modeled disk stall
// where N is the modeled core count (16, like the paper's machine):
//  * compute is measured in the edge loops and is identical across schemes;
//  * the DRAM term is simulated LLC misses x latency — exactly what GraphM's
//    LLC sharing reduces;
//  * sync cost charges -M's fine-grained synchronization from the sharing
//    controller's counters (a barrier wakeup per participant per chunk, a
//    context switch per suspension); the paper reports this at 7-15% of -M's
//    total, which these per-event costs land in;
//  * the disk is one device; its stall time does not parallelize. The page
//    cache simulator already charges contention to the right scheme.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algos/factory.hpp"
#include "graphm/sharing_controller.hpp"
#include "grid/stream_engine.hpp"
#include "sim/cache_sim.hpp"
#include "sim/page_cache.hpp"

namespace graphm::runtime {

struct JobOutcome {
  algos::JobSpec spec;
  grid::JobRunStats stats;
  std::vector<double> result;      // final vertex values (optional)
  std::uint64_t mem_stall_ns = 0;  // this job's modeled DRAM stall
  std::uint32_t modeled_cores = 16;
  /// Measured per-job lifecycle on the run's wall clock (t=0 at the run
  /// start): when the job was submitted, when it actually started executing,
  /// and when it finished. The service layer's SLO reporting is built on
  /// latency = completion − arrival; the executor fills the same fields so
  /// batch runs report per-job latency percentiles through the same stats
  /// module (service::latency_from_outcomes).
  std::uint64_t arrival_ns = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t completion_ns = 0;
  [[nodiscard]] std::uint64_t latency_ns() const {
    return completion_ns > arrival_ns ? completion_ns - arrival_ns : 0;
  }
  [[nodiscard]] std::uint64_t queue_wait_ns() const {
    return start_ns > arrival_ns ? start_ns - arrival_ns : 0;
  }
  /// Per-job modeled execution time (Fig 3d): the job's own wall share and
  /// DRAM stalls over the modeled cores, plus its (serial) disk stalls.
  [[nodiscard]] std::uint64_t job_time_ns() const {
    return (stats.wall_ns + mem_stall_ns) / std::max(1u, modeled_cores) +
           stats.io_stall_ns;
  }
  /// Scheduling-noise-resistant variant: in-loop compute plus simulated
  /// stalls only — the per-job analogue of RunMetrics::total_time_ns. Unlike
  /// job_time_ns (whose wall share includes suspension and co-scheduling
  /// waits of the measuring host), every term here is either measured inside
  /// the edge loops or simulated, so cross-scheme comparisons survive an
  /// oversubscribed host. The service's modeled SLO replay is built on it.
  [[nodiscard]] std::uint64_t modeled_exec_ns() const {
    return (stats.compute_ns + mem_stall_ns) / std::max(1u, modeled_cores) +
           stats.io_stall_ns;
  }
};

struct RunMetrics {
  std::string scheme;

  std::uint64_t makespan_wall_ns = 0;  // measured, submission to last finish
  std::uint64_t compute_ns = 0;        // sum of in-loop edge processing time
  std::uint64_t io_stall_ns = 0;       // modeled disk stall, all jobs
  std::uint64_t mem_stall_ns = 0;      // modeled DRAM stall, all jobs

  sim::CacheStats llc;                 // totals for the run
  sim::IoStats io;
  std::uint64_t peak_memory_bytes = 0;
  std::uint64_t peak_graph_memory_bytes = 0;
  std::uint64_t peak_job_memory_bytes = 0;
  std::uint64_t peak_table_memory_bytes = 0;
  double average_lpi = 0.0;

  core::SharingController::Stats sharing;  // -M only (zeros otherwise)

  std::uint32_t modeled_cores = 16;
  std::vector<JobOutcome> jobs;

  /// Modeled fine-grained-synchronization cost (zero for -S/-C): one wakeup
  /// per participant per chunk barrier plus a context switch per suspension.
  [[nodiscard]] std::uint64_t sync_cost_ns() const {
    constexpr std::uint64_t kBarrierWakeupNs = 1000;
    constexpr std::uint64_t kSuspensionNs = 2000;
    return sharing.chunk_barriers * jobs.size() * kBarrierWakeupNs +
           sharing.suspensions * kSuspensionNs;
  }

  /// The figure-9 style "total execution time" (see the header comment).
  [[nodiscard]] std::uint64_t total_time_ns() const {
    return (compute_ns + mem_stall_ns + sync_cost_ns()) / std::max(1u, modeled_cores) +
           io_stall_ns;
  }
  /// Average per-job execution time (Fig 3d).
  [[nodiscard]] double average_job_time_ns() const {
    if (jobs.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& j : jobs) sum += static_cast<double>(j.job_time_ns());
    return sum / static_cast<double>(jobs.size());
  }
};

}  // namespace graphm::runtime
