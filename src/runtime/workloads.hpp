// Standard job mixes used across the benches, mirroring Section 5.1: WCC,
// PageRank, SSSP and BFS submitted in turn with randomized parameters.
#pragma once

#include <string>
#include <vector>

#include "algos/factory.hpp"

namespace graphm::runtime {

/// The paper's default mix: `count` jobs cycling WCC/PageRank/SSSP/BFS with
/// per-job randomized parameters.
std::vector<algos::JobSpec> paper_mix(std::size_t count, graph::VertexId num_vertices,
                                      std::uint64_t seed);

/// `count` identical-kind jobs (e.g. Figure 19's PageRank scaling).
std::vector<algos::JobSpec> uniform_mix(algos::AlgorithmKind kind, std::size_t count,
                                        graph::VertexId num_vertices, std::uint64_t seed);

/// Roots within `hops` hops of a base vertex (Figure 17): BFS/SSSP jobs whose
/// data accesses overlap more the closer the roots are.
std::vector<algos::JobSpec> rooted_mix(algos::AlgorithmKind kind, std::size_t count,
                                       const std::vector<std::uint32_t>& base_levels,
                                       std::uint32_t hops, std::uint64_t seed);

}  // namespace graphm::runtime
