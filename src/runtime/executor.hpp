// Executes a batch of jobs under one of the paper's three schemes:
//   kSequential  ("GridGraph-S"): jobs one after another, engine's own loader;
//   kConcurrent  ("GridGraph-C"): all jobs at once, each with a private
//                                  loader and private partition copies;
//   kShared      ("GridGraph-M"): all jobs at once through one GraphM
//                                  instance (shared buffers, common order,
//                                  chunk-grained sync).
// Every run gets a fresh simulated Platform so the hardware-counter style
// metrics are directly comparable across schemes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algos/factory.hpp"
#include "graphm/graphm.hpp"
#include "grid/grid_store.hpp"
#include "runtime/metrics.hpp"
#include "sim/cost_model.hpp"

namespace graphm::runtime {

enum class Scheme : int { kSequential = 0, kConcurrent = 1, kShared = 2 };

const char* scheme_name(Scheme scheme);

struct ExecutorConfig {
  sim::PlatformConfig platform;
  core::GraphMOptions graphm;
  grid::StreamConfig stream;
  bool record_results = false;  // keep final vertex values in the outcome
  /// Optional per-job submission offsets in ns (same length as jobs). Empty
  /// means submit everything at t=0 (kSequential ignores offsets).
  std::vector<std::uint64_t> arrival_offsets_ns;
  /// DRAM latency charged per simulated LLC miss.
  double dram_latency_s = 150e-9;
  /// Core count of the modeled machine (the paper's server has 16); divides
  /// compute and DRAM-stall time in the reported totals (see metrics.hpp).
  std::uint32_t modeled_cores = 16;
};

/// Runs `jobs` on `store` under `scheme` and returns the full metrics.
RunMetrics run_jobs(Scheme scheme, const storage::PartitionedStore& store,
                    const std::vector<algos::JobSpec>& jobs, const ExecutorConfig& config = {});

}  // namespace graphm::runtime
