#include "runtime/workloads.hpp"

#include "util/rng.hpp"

namespace graphm::runtime {

std::vector<algos::JobSpec> paper_mix(std::size_t count, graph::VertexId num_vertices,
                                      std::uint64_t seed) {
  std::vector<algos::JobSpec> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    jobs.push_back(algos::random_job_spec(i, num_vertices, seed));
  }
  return jobs;
}

std::vector<algos::JobSpec> uniform_mix(algos::AlgorithmKind kind, std::size_t count,
                                        graph::VertexId num_vertices, std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<algos::JobSpec> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    algos::JobSpec spec;
    spec.kind = kind;
    switch (kind) {
      case algos::AlgorithmKind::kPageRank:
        spec.damping = rng.next_double(0.1, 0.85);
        spec.max_iterations = 5;
        break;
      case algos::AlgorithmKind::kWcc:
        spec.max_iterations = 1 + static_cast<std::uint32_t>(rng.next_below(24));
        break;
      case algos::AlgorithmKind::kBfs:
      case algos::AlgorithmKind::kSssp:
        spec.root = static_cast<graph::VertexId>(rng.next_below(num_vertices));
        break;
    }
    jobs.push_back(spec);
  }
  return jobs;
}

std::vector<algos::JobSpec> rooted_mix(algos::AlgorithmKind kind, std::size_t count,
                                       const std::vector<std::uint32_t>& base_levels,
                                       std::uint32_t hops, std::uint64_t seed) {
  // Candidate roots: vertices within `hops` of the base vertex.
  std::vector<graph::VertexId> candidates;
  for (graph::VertexId v = 0; v < base_levels.size(); ++v) {
    if (base_levels[v] <= hops) candidates.push_back(v);
  }
  if (candidates.empty()) candidates.push_back(0);

  util::SplitMix64 rng(seed);
  std::vector<algos::JobSpec> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    algos::JobSpec spec;
    spec.kind = kind;
    spec.root = candidates[rng.next_below(candidates.size())];
    jobs.push_back(spec);
  }
  return jobs;
}

}  // namespace graphm::runtime
