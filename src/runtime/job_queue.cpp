#include "runtime/job_queue.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace graphm::runtime {

std::vector<std::uint64_t> poisson_arrivals(std::size_t count, double lambda,
                                            std::uint64_t mean_scale_ns, std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<std::uint64_t> offsets(count, 0);
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    offsets[i] = static_cast<std::uint64_t>(t);
    // Mean inter-arrival = mean_scale_ns / lambda.
    t += util::exponential_sample(rng, 1.0) * static_cast<double>(mean_scale_ns) /
         std::max(lambda, 1e-9);
  }
  return offsets;
}

std::vector<TracePoint> synthesize_week_trace(std::size_t hours, std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  std::vector<TracePoint> trace(hours);
  constexpr double kPi = 3.14159265358979323846;
  for (std::size_t h = 0; h < hours; ++h) {
    const double t = static_cast<double>(h);
    // Diurnal swing around a mean of ~16 with a mid-week surge; bounded noise.
    const double diurnal = 7.0 * std::sin(2.0 * kPi * (t - 9.0) / 24.0);
    const double weekly = 4.0 * std::sin(2.0 * kPi * (t - 40.0) / 168.0);
    const double noise = rng.next_double(-3.0, 3.0);
    double level = 16.0 + diurnal + weekly + noise;
    // One sharp peak per week, as in the measured trace (> 30 jobs).
    if (h % 168 == 81) level = 31.0 + rng.next_double(0.0, 3.0);
    trace[h].hour = t;
    trace[h].concurrent_jobs = static_cast<std::uint32_t>(std::clamp(level, 2.0, 34.0));
  }
  return trace;
}

std::vector<std::uint64_t> trace_to_arrivals(const std::vector<TracePoint>& trace,
                                             double job_duration_hours, std::uint64_t hour_ns,
                                             std::size_t max_jobs) {
  // To hold `c` jobs concurrent with duration d hours, submit c/d jobs/hour.
  std::vector<std::uint64_t> offsets;
  const double d = std::max(job_duration_hours, 1e-3);
  double backlog = 0.0;
  for (const TracePoint& point : trace) {
    backlog += static_cast<double>(point.concurrent_jobs) / d;
    std::uint32_t due = static_cast<std::uint32_t>(backlog);
    backlog -= due;
    for (std::uint32_t i = 0; i < due && offsets.size() < max_jobs; ++i) {
      const double frac = due == 0 ? 0.0 : static_cast<double>(i) / static_cast<double>(due);
      offsets.push_back(static_cast<std::uint64_t>((point.hour + frac) *
                                                   static_cast<double>(hour_ns)));
    }
    if (offsets.size() >= max_jobs) break;
  }
  return offsets;
}

}  // namespace graphm::runtime
