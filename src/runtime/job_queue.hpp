// Arrival processes for the paper's workload experiments:
//  * Poisson job submission (Section 5.1: inter-arrival times follow a
//    Poisson process, lambda = 16 by default; Figure 16 sweeps lambda);
//  * a synthesizer for the one-week production trace of Figure 2 (peak > 30
//    concurrent jobs, mean about 16, diurnal shape), used again by the
//    Figure 15 trace-replay experiment.
#pragma once

#include <cstdint>
#include <vector>

namespace graphm::runtime {

/// Submission offsets (ns) for `count` jobs whose inter-arrival times are
/// Exp(lambda) in units of `mean_scale_ns / lambda` — larger lambda packs the
/// submissions tighter, as in Figure 16.
std::vector<std::uint64_t> poisson_arrivals(std::size_t count, double lambda,
                                            std::uint64_t mean_scale_ns, std::uint64_t seed);

struct TracePoint {
  double hour = 0.0;            // time since trace start
  std::uint32_t concurrent_jobs = 0;
};

/// Synthesizes the Figure-2 style one-week concurrency trace: `hours` hourly
/// samples with a diurnal swing, a weekly peak above 30 and a mean near 16.
std::vector<TracePoint> synthesize_week_trace(std::size_t hours, std::uint64_t seed);

/// Converts a concurrency trace into per-job submission offsets: in each hour
/// enough jobs are submitted to track the trace level, assuming each job runs
/// for roughly `job_duration_hours`. `hour_ns` compresses one trace hour into
/// that many real nanoseconds for replay.
std::vector<std::uint64_t> trace_to_arrivals(const std::vector<TracePoint>& trace,
                                             double job_duration_hours, std::uint64_t hour_ns,
                                             std::size_t max_jobs);

}  // namespace graphm::runtime
