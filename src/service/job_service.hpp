// JobService — the always-on analytics front end over GraphM/StreamEngine.
//
// The executor (runtime/executor.hpp) answers the paper's batch question:
// "here are 16 jobs, run them under scheme X". The service answers the
// production question the ROADMAP's north star asks: jobs arrive open-loop
// (Poisson, diurnal traces), are admitted by a pluggable policy into the
// dataset's in-flight sharing group (Algorithm 2 taken open-loop: the first
// job loads, late arrivals attach mid-stream without a fresh structure
// load), and are judged by per-job latency percentiles against deadlines —
// not by batch makespan.
//
//   grid::GridStore store = ...;
//   service::ServiceConfig config;
//   service::JobService svc(store, config);
//   auto handle = svc.submit(spec, /*deadline_ns=*/svc.now_ns() + slo);
//   handle.await();
//   svc.drain();
//   service::ServiceStats stats = svc.stats();   // p50/p95/p99, groups, ...
//
// Execution modes: kShared routes every job through the dataset's GraphM
// loaders (one shared buffer, mid-round attach enabled); kIsolated gives
// each job a private DefaultLoader on the same engine — the
// isolated-concurrent baseline, and with workers == 1 the per-job-sequential
// baseline. The benches run the identical arrival stream through all three.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graphm/graphm.hpp"
#include "grid/stream_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "service/admission.hpp"
#include "service/group_manager.hpp"
#include "service/service_stats.hpp"
#include "sim/platform.hpp"
#include "util/annotations.hpp"
#include "util/timer.hpp"

namespace graphm::service {

enum class ExecMode : int { kShared = 0, kIsolated = 1 };

const char* exec_mode_name(ExecMode mode);

struct ServiceConfig {
  ExecMode mode = ExecMode::kShared;
  AdmissionPolicy policy = AdmissionPolicy::kImmediate;
  /// Worker slots = maximum concurrently executing jobs (the Figure-2 trace
  /// peaks above 30; the paper's server runs 16).
  std::size_t workers = 8;
  std::size_t max_queue_depth = 1024;  // backpressure bound
  std::size_t batch_k = 4;             // kBatchUntilK threshold
  std::uint64_t batch_max_wait_ns = 50'000'000;
  /// Abort running jobs once their deadline passes (polled at partition
  /// boundaries) and shed queued jobs already past it at dispatch. Off:
  /// deadlines only feed EDF ordering and the deadline-miss counter.
  bool cancel_past_deadline = false;
  bool record_results = false;  // keep final vertex values in the record
  /// SLO objectives tracked by the service's obs::SloMonitor, scoped per
  /// dataset. Tracking is on whenever non-empty; AdmissionPolicy::kAdaptive
  /// additionally acts on the signal (docs/observability.md, "SLOs and error
  /// budgets"): while an objective is Critical, deadline-less arrivals are
  /// shed outright and deadlined arrivals are shed once the queue is over
  /// quota, until the burn cools below SloSpec::reopen_burn.
  std::vector<obs::SloSpec> objectives;
  /// kAdaptive only: queue depth above which even deadlined arrivals shed
  /// while Critical. 0 = the worker count (one dispatch round of backlog).
  std::size_t adaptive_queue_quota = 0;
  core::GraphMOptions graphm;   // allow_mid_round_attach forced on in kShared
  grid::StreamConfig stream;
  sim::PlatformConfig platform;
  double dram_latency_s = 150e-9;  // metrics.hpp time composition
  std::uint32_t modeled_cores = 16;
};

/// Client-side view of one submission. Copyable; await() blocks until the
/// job reaches a terminal state and returns the record (timestamps, stats,
/// result when recorded).
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const { return record_ != nullptr; }
  [[nodiscard]] JobState state() const {
    return record_ == nullptr ? JobState::kRejected
                              : record_->state.load(std::memory_order_acquire);
  }
  /// Blocks until terminal. Invalid handles return a static rejected record.
  const JobRecord& await() const;

 private:
  friend class JobService;
  explicit JobHandle(JobRecordPtr record) : record_(std::move(record)) {}
  JobRecordPtr record_;
};

class JobService {
 public:
  struct DatasetSpec {
    std::string name;
    const storage::PartitionedStore* store = nullptr;
  };

  /// Single-dataset convenience.
  JobService(const storage::PartitionedStore& store, ServiceConfig config,
             std::string dataset_name = "default");
  /// One sharing group (GraphM instance + engine) per dataset; jobs name
  /// their dataset at submit().
  JobService(std::vector<DatasetSpec> datasets, ServiceConfig config);
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Submits a job. `deadline_ns` is an absolute service-clock deadline
  /// (now_ns() + budget), 0 for none. Returns a rejected handle when the
  /// bounded queue is full (backpressure), `dataset` names no registered
  /// dataset, or the service is shut down.
  JobHandle submit(const algos::JobSpec& spec, std::uint64_t deadline_ns = 0,
                   std::size_t dataset = 0);

  /// Blocks until every accepted job has reached a terminal state (releases
  /// any held admission batch first).
  void drain();
  /// drain() + stop the workers. Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] core::SharingController::Stats sharing_stats(std::size_t dataset = 0) const;
  /// Publishes every service-level instrument into `registry` under
  /// `graphm.*`: collector counters + latency histograms, queue depth and
  /// shed counts, per-dataset sharing totals (summed), and the simulated
  /// platform's LLC / page-cache counters. Histogram publishing merges —
  /// use a fresh registry per snapshot (metrics_json does).
  void publish_metrics(obs::Registry& registry) const;
  /// One-call JSON snapshot of publish_metrics into a fresh registry.
  [[nodiscard]] std::string metrics_json() const;
  /// Monotonic service clock (ns since construction) — the clock every
  /// JobRecord timestamp and deadline lives on.
  [[nodiscard]] std::uint64_t now_ns() const { return clock_.elapsed_ns(); }
  [[nodiscard]] std::size_t num_datasets() const { return datasets_.size(); }
  [[nodiscard]] sim::Platform& platform() { return platform_; }
  /// The service's SLO monitor (inert when ServiceConfig::objectives is
  /// empty). Exposed for tests and dashboards; the service itself evaluates
  /// it at submit and finish.
  [[nodiscard]] obs::SloMonitor& slo_monitor() const { return slo_; }

 private:
  struct Dataset {
    std::string name;
    const storage::PartitionedStore* store = nullptr;
    std::unique_ptr<core::GraphM> graphm;  // kShared only
    std::unique_ptr<grid::StreamEngine> engine;
  };

  void start_workers();
  void worker_loop(std::size_t worker_index);
  void execute(const JobRecordPtr& job);
  void finish(const JobRecordPtr& job, JobState terminal, bool started);
  /// Re-evaluates the monitor at `now` and emits a trace instant on the
  /// "slo" track when the tri-state signal changed.
  void evaluate_slo(std::uint64_t now);

  ServiceConfig config_;
  sim::Platform platform_;  // one simulated host serves every dataset
  util::Timer clock_;
  std::vector<Dataset> datasets_;
  AdmissionQueue queue_;
  GroupManager groups_;
  StatsCollector collector_;
  /// Burn-rate tracking per dataset; mutable because publishing reads cached
  /// evals from const snapshots (internally synchronized).
  mutable obs::SloMonitor slo_;

  std::vector<std::thread> workers_;
  std::atomic<bool> shut_down_{false};
  std::atomic<std::uint32_t> next_job_id_{0};

  mutable Mutex lifecycle_mutex_;
  std::condition_variable idle_cv_;
  /// Accepted, not yet terminal.
  std::size_t unfinished_ GUARDED_BY(lifecycle_mutex_) = 0;
};

}  // namespace graphm::service
