// Admission control for the open-loop job service: the bounded submission
// queue and the policies that decide when a queued job is dispatched into the
// sharing group.
//
// Policies:
//  * kImmediate    — dispatch as soon as a worker is free; the job attaches
//                    to the in-flight stream at the next chunk/partition
//                    boundary (Algorithm 2: the first job loads, later jobs
//                    attach — taken open-loop).
//  * kBatchUntilK  — hold arrivals until k are waiting (or the oldest has
//                    waited batch_max_wait_ns), then release them together.
//                    Trades queue wait for maximal overlap: a batch enters
//                    the stream at one point and shares every load.
//  * kDeadline     — earliest-deadline-first dispatch order (SLO-aware
//                    grouping): among queued jobs the tightest deadline runs
//                    next; deadline-less jobs sort last, FIFO among equals.
//  * kAdaptive     — kDeadline's EDF order, plus closed-loop shedding driven
//                    by the obs::SloMonitor burn-rate signal: while an
//                    objective is Critical, the lowest-priority work
//                    (deadline-less jobs, and over-quota arrivals) is shed
//                    instead of queued, and admission re-opens hysteretically
//                    when the burn cools (docs/observability.md, "SLOs and
//                    error budgets"). The queue itself only provides the
//                    ordering — the shedding decisions live in the services,
//                    which own the monitor.
//
// Backpressure: the queue is bounded (max_depth); submissions beyond it are
// rejected at submit() so an overloaded service sheds load at the edge
// instead of growing an unbounded backlog.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "util/annotations.hpp"

#include "algos/factory.hpp"
#include "grid/stream_engine.hpp"
#include "runtime/metrics.hpp"

namespace graphm::service {

enum class AdmissionPolicy : int {
  kImmediate = 0,
  kBatchUntilK = 1,
  kDeadline = 2,
  kAdaptive = 3,
};

/// Policies that dispatch in EDF order (share edf_deadline_key).
[[nodiscard]] constexpr bool policy_uses_edf(AdmissionPolicy policy) {
  return policy == AdmissionPolicy::kDeadline || policy == AdmissionPolicy::kAdaptive;
}

const char* admission_policy_name(AdmissionPolicy policy);

/// Terminal outcome of a submitted job — the shared vocabulary the local
/// service and the simulated cluster both account in. Every submission lands
/// in exactly ONE of these (the conservation law the fault tests pin):
/// submitted == completed + rejected + deadline_shed + deadline_aborted +
/// failover_shed + unroutable + slo_shed.
enum class Outcome : int {
  kCompleted = 0,        // ran to its final barrier
  kRejected = 1,         // backpressure at admission (queue full)
  kDeadlineShed = 2,     // deadline already unmeetable at dispatch time
  kDeadlineAborted = 3,  // started, aborted at a superstep past its deadline
  kFailoverShed = 4,     // every replica down or the retry budget ran out
  kUnroutable = 5,       // no backend serves the requested dataset
  kSloShed = 6,          // adaptive admission shed it while burn was Critical
};

const char* outcome_name(Outcome outcome);

// ---------------------------------------------------------------------------
// Deadline convention (repo-wide, local service and simulated cluster alike):
// deadline_ns is an absolute clock value and 0 is the reserved "no deadline"
// sentinel — EDF sorts it last and it can never be missed or aborted. The
// helpers below are the single definition of that convention; both EDF
// queues (AdmissionQueue::take_locked and the cluster service's pick_next)
// sort through edf_deadline_key, and deadline_from() is how real deadlines
// are derived from now + slo, clamping away the one value (0) that would
// otherwise silently turn a genuine time-zero deadline into "infinitely
// lax".
// ---------------------------------------------------------------------------

/// The "no deadline" sentinel.
inline constexpr std::uint64_t kNoDeadline = 0;

/// EDF sort key: tightest real deadline first, the sentinel last (mapped to
/// +inf, so it loses every comparison; FIFO among equals is the queue's
/// responsibility).
[[nodiscard]] constexpr std::uint64_t edf_deadline_key(std::uint64_t deadline_ns) {
  return deadline_ns == kNoDeadline ? std::numeric_limits<std::uint64_t>::max()
                                    : deadline_ns;
}

/// Builds an absolute deadline from a clock reading and a relative SLO.
/// Normalized: a computed deadline of exactly 0 ns (only reachable at clock
/// origin with a zero SLO) becomes 1 ns — still unmeetable-tight, but a real
/// deadline rather than the sentinel.
[[nodiscard]] constexpr std::uint64_t deadline_from(std::uint64_t now_ns,
                                                    std::uint64_t slo_ns) {
  const std::uint64_t deadline = now_ns + slo_ns;
  return deadline == kNoDeadline ? 1 : deadline;
}

enum class JobState : int { kQueued = 0, kRunning = 1, kDone = 2, kCancelled = 3, kRejected = 4 };

/// Shared record of one submitted job: the submission parameters, lifecycle
/// timestamps on the service clock, and the outcome. Owned jointly by the
/// service and the client's JobHandle.
struct JobRecord {
  std::uint32_t job_id = 0;
  std::size_t dataset = 0;
  algos::JobSpec spec;
  /// Absolute service-clock deadline; kNoDeadline (0) = none. Derive real
  /// deadlines with deadline_from(now, slo) — see the convention above.
  std::uint64_t deadline_ns = kNoDeadline;

  runtime::JobOutcome outcome;  // timestamps, engine stats, optional result
  std::uint64_t modeled_latency_ns = 0;
  bool missed_deadline = false;

  std::atomic<JobState> state{JobState::kQueued};
  Mutex mutex;
  std::condition_variable cv;  // signalled on terminal state

  [[nodiscard]] bool terminal() const {
    const JobState s = state.load(std::memory_order_acquire);
    return s == JobState::kDone || s == JobState::kCancelled || s == JobState::kRejected;
  }
};

using JobRecordPtr = std::shared_ptr<JobRecord>;

class AdmissionQueue {
 public:
  struct Config {
    AdmissionPolicy policy = AdmissionPolicy::kImmediate;
    std::size_t max_depth = 1024;
    std::size_t batch_k = 4;
    std::uint64_t batch_max_wait_ns = 50'000'000;  // 50 ms
  };

  explicit AdmissionQueue(Config config);

  /// Enqueues under the policy. Returns false (and leaves the record
  /// untouched) when the queue is at max_depth — the backpressure reject.
  bool push(JobRecordPtr job, std::uint64_t now_ns);

  /// Blocks until a job is dispatchable, the batch timer says to stop
  /// holding, or the queue is closed. Returns nullptr only when closed and
  /// empty. `now_ns` reads the service clock (used for batch timeouts).
  JobRecordPtr pop(const std::function<std::uint64_t()>& now_ns);

  /// Releases any held batch immediately (drain/shutdown path: a partial
  /// batch must not dam the queue forever).
  void flush();

  /// Wakes poppers; pop drains the remaining jobs, then returns nullptr.
  void close();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] bool closed() const;

 private:
  /// Removes and returns the next job per policy; ready_ must be non-empty.
  JobRecordPtr take_locked() REQUIRES(mutex_);

  Config config_;
  mutable Mutex mutex_;
  std::condition_variable cv_;
  /// Jobs eligible for dispatch. Under kBatchUntilK jobs sit in held_ first.
  std::deque<JobRecordPtr> ready_ GUARDED_BY(mutex_);
  std::deque<JobRecordPtr> held_ GUARDED_BY(mutex_);  // kBatchUntilK only
  std::uint64_t oldest_held_arrival_ns_ GUARDED_BY(mutex_) = 0;
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace graphm::service
