#include "service/group_manager.hpp"

#include <algorithm>

namespace graphm::service {

GroupManager::GroupManager(std::size_t num_datasets) : datasets_(num_datasets) {}

void GroupManager::set_dataset_name(std::size_t dataset, std::string name) {
  MutexLock lock(mutex_);
  datasets_.at(dataset).name = std::move(name);
}

void GroupManager::fill_deltas(GroupRecord& record,
                               const core::SharingController::Stats& at_open,
                               const core::SharingController::Stats& now) {
  record.partition_loads = now.partition_loads - at_open.partition_loads;
  record.attaches = now.attaches - at_open.attaches;
  record.mid_round_attaches = now.mid_round_attaches - at_open.mid_round_attaches;
}

void GroupManager::job_started(std::size_t dataset, std::uint64_t now_ns,
                               const core::SharingController::Stats& sharing) {
  MutexLock lock(mutex_);
  DatasetState& state = datasets_.at(dataset);
  if (!state.open_group) {
    state.open = GroupRecord{};
    state.open.group_id = next_group_id_++;
    state.open.dataset = state.name;
    state.open.opened_ns = now_ns;
    state.at_open = sharing;
    state.open_group = true;
  }
  ++state.running;
  ++state.open.jobs_served;
  state.open.peak_concurrency = std::max(state.open.peak_concurrency, state.running);
}

void GroupManager::job_finished(std::size_t dataset, std::uint64_t now_ns,
                                const core::SharingController::Stats& sharing) {
  MutexLock lock(mutex_);
  DatasetState& state = datasets_.at(dataset);
  if (state.running > 0) --state.running;
  if (state.running == 0 && state.open_group) {
    state.open.closed_ns = now_ns;
    fill_deltas(state.open, state.at_open, sharing);
    closed_.push_back(state.open);
    state.open_group = false;
  }
}

std::uint32_t GroupManager::running(std::size_t dataset) const {
  MutexLock lock(mutex_);
  return datasets_.at(dataset).running;
}

std::uint32_t GroupManager::running_total() const {
  MutexLock lock(mutex_);
  std::uint32_t total = 0;
  for (const DatasetState& state : datasets_) total += state.running;
  return total;
}

std::vector<GroupRecord> GroupManager::records() const {
  MutexLock lock(mutex_);
  std::vector<GroupRecord> records = closed_;
  for (const DatasetState& state : datasets_) {
    if (state.open_group) records.push_back(state.open);
  }
  return records;
}

}  // namespace graphm::service
