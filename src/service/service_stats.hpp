// SLO-aware service statistics: per-job latency decomposition and the
// aggregate report a long-running analytics service is judged by.
//
// Per job the service records arrival (submit), start (dispatch to the
// engine) and completion on one monotonic service clock, so
//     queue wait   = start − arrival        (admission + backpressure)
//     stream time  = completion − start     (engine execution, incl. -M
//                                            suspensions)
//     e2e latency  = completion − arrival   (what the client experiences)
// Aggregates are percentiles (p50/p95/p99) rather than makespans: the paper's
// batch experiments measure "16 jobs finished in T", an open-loop service is
// measured by "p95 latency under λ jobs/s" — the Figure 2 traffic judged per
// job. A modeled-latency twin (queue wait + the metrics.hpp per-job time
// composition) is reported alongside the measured one so the simulated
// platform's DRAM/disk stalls show up in the SLO view too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/metrics.hpp"
#include "util/annotations.hpp"

namespace graphm::service {

struct LatencySummary {
  std::size_t count = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
  double max_ns = 0.0;
};

/// Order statistics over `samples_ns` (nearest-rank percentiles; the sample
/// set is consumed). Empty input yields an all-zero summary.
LatencySummary summarize_latency(std::vector<std::uint64_t> samples_ns);

/// E2e latency summary straight from executor outcomes — batch runs
/// (runtime::run_jobs) report per-job latency percentiles through the same
/// machinery the service uses.
LatencySummary latency_from_outcomes(const std::vector<runtime::JobOutcome>& jobs);

/// Completed jobs per second over [first arrival, last completion] — the
/// sustained-throughput definition every serving surface reports (the local
/// JobService, its modeled replay, and the cluster subsystem's per-backend
/// stats). 0 when the window is empty or inverted.
double sustained_jobs_per_s(std::size_t completed, std::uint64_t first_arrival_ns,
                            std::uint64_t last_completion_ns);

/// One point of the service's concurrency timeline: `running` jobs were
/// executing from `t_ns` until the next point.
struct ConcurrencyPoint {
  std::uint64_t t_ns = 0;
  std::uint32_t running = 0;
};

/// One sharing group: a maximal interval during which a dataset had at least
/// one job in flight. Sharing-counter deltas are measured against the
/// dataset's controller at open/close, so each group reports its own
/// loads/attaches economy.
struct GroupRecord {
  std::uint64_t group_id = 0;
  std::string dataset;
  std::uint64_t opened_ns = 0;
  std::uint64_t closed_ns = 0;  // 0 while the group is still open
  std::uint32_t jobs_served = 0;
  std::uint32_t peak_concurrency = 0;
  std::uint64_t partition_loads = 0;
  std::uint64_t attaches = 0;
  std::uint64_t mid_round_attaches = 0;
};

/// Deterministic replay of the measured arrival stream against the *modeled*
/// per-job execution times (JobOutcome::modeled_exec_ns — (in-loop compute +
/// DRAM stall) / modeled cores + serial disk stall) on `workers` modeled
/// executors: FIFO, each job starts at max(its arrival, earliest free
/// worker). This is the paper-machine view of the service (the host may have
/// one core and a noisy scheduler; the simulated LLC/disk counters carry the
/// scheme differences — the same composition every fig bench reports instead
/// of wall makespans).
struct ModeledReplay {
  double sustained_jobs_per_s = 0.0;
  LatencySummary e2e;  // modeled completion − measured arrival
};

struct ReplayJob {
  std::uint64_t arrival_ns = 0;
  std::uint64_t service_ns = 0;  // modeled execution time
};

ModeledReplay modeled_replay(std::vector<ReplayJob> jobs, std::size_t workers);

struct ServiceStats {
  std::uint64_t submitted = 0;  // submit() calls, accepted or not
  std::uint64_t rejected = 0;   // backpressure (bounded queue full)
  std::uint64_t completed = 0;  // ran to completion
  std::uint64_t cancelled = 0;  // deadline-shed or aborted mid-run
  /// Jobs whose deadline passed before they finished: late completions plus
  /// deadline sheds/aborts (those also appear in `cancelled`).
  std::uint64_t deadline_misses = 0;

  LatencySummary queue_wait;
  LatencySummary stream_time;
  LatencySummary e2e;          // measured wall latency
  LatencySummary e2e_modeled;  // measured queue wait + modeled execution time
  LatencySummary exec_modeled; // modeled execution time alone (job_time_ns)

  /// Completed jobs per second over [first arrival, last completion],
  /// measured on the host's wall clock (noisy on oversubscribed hosts).
  double sustained_jobs_per_s = 0.0;
  /// The modeled-machine counterpart: arrival stream replayed against the
  /// modeled job times on the service's worker count. The SLO headline.
  ModeledReplay modeled;
  std::uint32_t peak_concurrency = 0;
  std::vector<ConcurrencyPoint> timeline;
  std::vector<GroupRecord> groups;
};

/// Thread-safe accumulator the service feeds; snapshot() derives the report.
///
/// Memory is bounded no matter how many jobs flow through (the always-on
/// service routes an unbounded stream through one collector):
///  * every latency metric feeds a log-bucketed obs::Histogram (~15 KB,
///    fixed) AND a sample reservoir holding the first kSampleCap outcomes.
///    Up to the cap, snapshot() reports *exact* nearest-rank percentiles
///    from the samples — byte-identical to the old store-everything path —
///    beyond it, histogram quantiles (within one ~3.1% bucket of exact);
///  * the concurrency timeline is capped at kTimelineCap points by stride
///    decimation: when full it drops every other point and doubles the
///    recording stride, so it always spans the full run at bounded size;
///  * the modeled FIFO replay runs over the reservoir (exact below the cap,
///    a first-cap approximation beyond).
class StatsCollector {
 public:
  /// Reservoir size: comfortably above every closed-batch experiment (exact
  /// stats there) while bounding an open-loop service's footprint.
  static constexpr std::size_t kSampleCap = 4096;
  static constexpr std::size_t kTimelineCap = 4096;

  void on_submit();
  void on_reject();
  /// `running` is the number of jobs executing after this transition.
  void on_start(std::uint64_t t_ns, std::uint32_t running);
  /// `outcome` must carry the arrival/start/completion timestamps; the
  /// collector owns no clock.
  void on_finish(const runtime::JobOutcome& outcome, std::uint64_t modeled_latency_ns,
                 bool cancelled, bool missed_deadline, std::uint64_t t_ns,
                 std::uint32_t running);

  /// `workers` is the service's executor-slot count, used for the modeled
  /// replay.
  [[nodiscard]] ServiceStats snapshot(std::vector<GroupRecord> groups,
                                      std::size_t workers) const;

  /// Re-homes counters into `registry` (`graphm.service.*`, publish-style)
  /// and merges the latency histograms into same-named registry histograms.
  /// Histogram merging accumulates: publish into a fresh registry per
  /// snapshot (JobService::metrics_json does).
  void publish_metrics(obs::Registry& registry) const;

  /// Bytes retained across reservoirs + timeline + histograms; flat once the
  /// caps are reached (the regression test pins this at 100k finishes).
  [[nodiscard]] std::size_t approx_memory_bytes() const;

 private:
  void push_timeline_locked(std::uint64_t t_ns, std::uint32_t running)
      REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::uint64_t submitted_ GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ GUARDED_BY(mutex_) = 0;
  std::uint64_t cancelled_ GUARDED_BY(mutex_) = 0;
  std::uint64_t deadline_misses_ GUARDED_BY(mutex_) = 0;

  std::uint64_t completed_count_ GUARDED_BY(mutex_) = 0;
  std::uint64_t first_arrival_ns_ GUARDED_BY(mutex_) = UINT64_MAX;
  std::uint64_t last_completion_ns_ GUARDED_BY(mutex_) = 0;
  /// First-kSampleCap reservoir (results stripped, stats kept) + the modeled
  /// latency aligned with it.
  std::vector<runtime::JobOutcome> sample_outcomes_ GUARDED_BY(mutex_);
  std::vector<std::uint64_t> sample_modeled_ GUARDED_BY(mutex_);
  obs::Histogram queue_wait_hist_ GUARDED_BY(mutex_);
  obs::Histogram stream_hist_ GUARDED_BY(mutex_);
  obs::Histogram e2e_hist_ GUARDED_BY(mutex_);
  obs::Histogram e2e_modeled_hist_ GUARDED_BY(mutex_);
  obs::Histogram exec_modeled_hist_ GUARDED_BY(mutex_);

  std::vector<ConcurrencyPoint> timeline_ GUARDED_BY(mutex_);
  std::uint64_t timeline_stride_ GUARDED_BY(mutex_) = 1;
  std::uint64_t timeline_seen_ GUARDED_BY(mutex_) = 0;
  std::uint32_t peak_concurrency_ GUARDED_BY(mutex_) = 0;
};

}  // namespace graphm::service
