#include "service/admission.hpp"

#include <algorithm>
#include <chrono>

namespace graphm::service {

const char* admission_policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kImmediate: return "immediate";
    case AdmissionPolicy::kBatchUntilK: return "batch-until-k";
    case AdmissionPolicy::kDeadline: return "deadline-edf";
    case AdmissionPolicy::kAdaptive: return "adaptive-slo";
  }
  return "?";
}

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kCompleted: return "completed";
    case Outcome::kRejected: return "rejected";
    case Outcome::kDeadlineShed: return "deadline-shed";
    case Outcome::kDeadlineAborted: return "deadline-aborted";
    case Outcome::kFailoverShed: return "failover-shed";
    case Outcome::kUnroutable: return "unroutable";
    case Outcome::kSloShed: return "slo-shed";
  }
  return "?";
}

AdmissionQueue::AdmissionQueue(Config config) : config_(config) {}

bool AdmissionQueue::push(JobRecordPtr job, std::uint64_t now_ns) {
  MutexLock lock(mutex_);
  if (closed_) return false;
  if (ready_.size() + held_.size() >= config_.max_depth) return false;
  if (config_.policy == AdmissionPolicy::kBatchUntilK && config_.batch_k > 1) {
    if (held_.empty()) oldest_held_arrival_ns_ = now_ns;
    held_.push_back(std::move(job));
    if (held_.size() >= config_.batch_k) {
      // Threshold reached: the whole batch becomes dispatchable at once, so
      // it enters the sharing group at a single point in the stream.
      for (JobRecordPtr& held : held_) ready_.push_back(std::move(held));
      held_.clear();
    }
  } else {
    ready_.push_back(std::move(job));
  }
  cv_.notify_all();
  return true;
}

JobRecordPtr AdmissionQueue::take_locked() {
  if (policy_uses_edf(config_.policy)) {
    // EDF: tightest deadline first; deadline-less jobs (the kNoDeadline
    // sentinel, mapped to +inf by the shared key) last; FIFO (queue order)
    // among equals.
    auto best = ready_.begin();
    auto key = [](const JobRecordPtr& job) { return edf_deadline_key(job->deadline_ns); };
    for (auto it = std::next(ready_.begin()); it != ready_.end(); ++it) {
      if (key(*it) < key(*best)) best = it;
    }
    JobRecordPtr job = std::move(*best);
    ready_.erase(best);
    return job;
  }
  JobRecordPtr job = std::move(ready_.front());
  ready_.pop_front();
  return job;
}

JobRecordPtr AdmissionQueue::pop(const std::function<std::uint64_t()>& now_ns) {
  MutexLock lock(mutex_);
  for (;;) {
    if (!ready_.empty()) return take_locked();
    if (!held_.empty()) {
      // A partial batch: dispatch anyway once the oldest member has waited
      // out the batch window (bounded added latency), otherwise sleep until
      // that moment or a state change.
      const std::uint64_t now = now_ns();
      const std::uint64_t release_at = oldest_held_arrival_ns_ + config_.batch_max_wait_ns;
      if (closed_ || now >= release_at) {
        for (JobRecordPtr& held : held_) ready_.push_back(std::move(held));
        held_.clear();
        continue;
      }
      lock.wait_for(cv_, std::chrono::nanoseconds(release_at - now));
      continue;
    }
    if (closed_) return nullptr;
    lock.wait(cv_);
  }
}

void AdmissionQueue::flush() {
  MutexLock lock(mutex_);
  for (JobRecordPtr& held : held_) ready_.push_back(std::move(held));
  held_.clear();
  cv_.notify_all();
}

void AdmissionQueue::close() {
  MutexLock lock(mutex_);
  closed_ = true;
  cv_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  MutexLock lock(mutex_);
  return ready_.size() + held_.size();
}

bool AdmissionQueue::closed() const {
  MutexLock lock(mutex_);
  return closed_;
}

}  // namespace graphm::service
