// Sharing-group lifecycle: one group per dataset per busy interval.
//
// GraphM's sharing machinery is always-on per dataset, but for an open-loop
// service the interesting unit is the *group*: the maximal interval during
// which the dataset has at least one job in flight. The first dispatched job
// opens the group (and pays the structure loads), later arrivals attach to
// the in-flight stream (SharingController::allow_mid_round_attach), and the
// last completion closes the group. Each closed group records its own
// sharing economy — loads vs attaches within the interval — by differencing
// the dataset controller's counters at open and close.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graphm/sharing_controller.hpp"
#include "service/service_stats.hpp"
#include "util/annotations.hpp"

namespace graphm::service {

class GroupManager {
 public:
  explicit GroupManager(std::size_t num_datasets);

  void set_dataset_name(std::size_t dataset, std::string name);

  /// A job starts executing on `dataset`. Opens a new group when the dataset
  /// was idle. `sharing` is the dataset controller's current counters.
  void job_started(std::size_t dataset, std::uint64_t now_ns,
                   const core::SharingController::Stats& sharing);

  /// A job finished (or was cancelled). Closes the group when the dataset
  /// goes idle.
  void job_finished(std::size_t dataset, std::uint64_t now_ns,
                    const core::SharingController::Stats& sharing);

  [[nodiscard]] std::uint32_t running(std::size_t dataset) const;
  [[nodiscard]] std::uint32_t running_total() const;

  /// Closed groups first (chronological), then any still-open groups with
  /// closed_ns == 0 and counters as of the last transition.
  [[nodiscard]] std::vector<GroupRecord> records() const;

 private:
  struct DatasetState {
    std::string name;
    std::uint32_t running = 0;
    GroupRecord open;                       // valid iff open_group
    core::SharingController::Stats at_open;  // counters when the group opened
    bool open_group = false;
  };

  static void fill_deltas(GroupRecord& record, const core::SharingController::Stats& at_open,
                          const core::SharingController::Stats& now);

  mutable Mutex mutex_;
  std::vector<DatasetState> datasets_ GUARDED_BY(mutex_);
  std::vector<GroupRecord> closed_ GUARDED_BY(mutex_);
  std::uint64_t next_group_id_ GUARDED_BY(mutex_) = 1;
};

}  // namespace graphm::service
