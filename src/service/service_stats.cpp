#include "service/service_stats.hpp"

#include <algorithm>

namespace graphm::service {

namespace {

double nearest_rank(const std::vector<std::uint64_t>& sorted, double quantile) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(quantile * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(rank, sorted.size() - 1)]);
}

}  // namespace

LatencySummary summarize_latency(std::vector<std::uint64_t> samples_ns) {
  LatencySummary summary;
  if (samples_ns.empty()) return summary;
  std::sort(samples_ns.begin(), samples_ns.end());
  summary.count = samples_ns.size();
  double sum = 0.0;
  for (const std::uint64_t s : samples_ns) sum += static_cast<double>(s);
  summary.mean_ns = sum / static_cast<double>(samples_ns.size());
  summary.p50_ns = nearest_rank(samples_ns, 0.50);
  summary.p95_ns = nearest_rank(samples_ns, 0.95);
  summary.p99_ns = nearest_rank(samples_ns, 0.99);
  summary.max_ns = static_cast<double>(samples_ns.back());
  return summary;
}

LatencySummary latency_from_outcomes(const std::vector<runtime::JobOutcome>& jobs) {
  std::vector<std::uint64_t> samples;
  samples.reserve(jobs.size());
  for (const runtime::JobOutcome& job : jobs) samples.push_back(job.latency_ns());
  return summarize_latency(std::move(samples));
}

double sustained_jobs_per_s(std::size_t completed, std::uint64_t first_arrival_ns,
                            std::uint64_t last_completion_ns) {
  if (completed == 0 || last_completion_ns <= first_arrival_ns) return 0.0;
  return static_cast<double>(completed) /
         (static_cast<double>(last_completion_ns - first_arrival_ns) / 1e9);
}

void StatsCollector::on_submit() {
  MutexLock lock(mutex_);
  ++submitted_;
}

void StatsCollector::on_reject() {
  MutexLock lock(mutex_);
  ++rejected_;
}

void StatsCollector::push_timeline_locked(std::uint64_t t_ns, std::uint32_t running) {
  peak_concurrency_ = std::max(peak_concurrency_, running);
  if (timeline_seen_++ % timeline_stride_ != 0) return;
  timeline_.push_back({t_ns, running});
  if (timeline_.size() >= kTimelineCap) {
    // Full: drop every other retained point and record half as often from
    // here on. The timeline keeps spanning the whole run at bounded size,
    // trading resolution — never coverage — as the run grows.
    for (std::size_t i = 0; 2 * i < timeline_.size(); ++i) {
      timeline_[i] = timeline_[2 * i];
    }
    timeline_.resize((timeline_.size() + 1) / 2);
    timeline_stride_ *= 2;
  }
}

void StatsCollector::on_start(std::uint64_t t_ns, std::uint32_t running) {
  MutexLock lock(mutex_);
  push_timeline_locked(t_ns, running);
}

void StatsCollector::on_finish(const runtime::JobOutcome& outcome,
                               std::uint64_t modeled_latency_ns, bool cancelled,
                               bool missed_deadline, std::uint64_t t_ns,
                               std::uint32_t running) {
  MutexLock lock(mutex_);
  push_timeline_locked(t_ns, running);
  if (cancelled) {
    ++cancelled_;
  } else {
    ++completed_count_;
    first_arrival_ns_ = std::min(first_arrival_ns_, outcome.arrival_ns);
    last_completion_ns_ = std::max(last_completion_ns_, outcome.completion_ns);
    queue_wait_hist_.record(outcome.queue_wait_ns());
    stream_hist_.record(outcome.completion_ns - outcome.start_ns);
    e2e_hist_.record(outcome.latency_ns());
    e2e_modeled_hist_.record(modeled_latency_ns);
    exec_modeled_hist_.record(outcome.modeled_exec_ns());
    if (sample_outcomes_.size() < kSampleCap) {
      runtime::JobOutcome kept = outcome;
      kept.result.clear();  // the record's copy stays with the handle
      sample_outcomes_.push_back(std::move(kept));
      sample_modeled_.push_back(modeled_latency_ns);
    }
  }
  if (missed_deadline) ++deadline_misses_;
}

ModeledReplay modeled_replay(std::vector<ReplayJob> jobs, std::size_t workers) {
  ModeledReplay replay;
  if (jobs.empty()) return replay;
  std::sort(jobs.begin(), jobs.end(),
            [](const ReplayJob& a, const ReplayJob& b) { return a.arrival_ns < b.arrival_ns; });
  // FIFO onto the earliest-free of `workers` modeled executors.
  std::vector<std::uint64_t> free_at(std::max<std::size_t>(1, workers), 0);
  std::vector<std::uint64_t> latencies;
  latencies.reserve(jobs.size());
  std::uint64_t last_completion = 0;
  for (const ReplayJob& job : jobs) {
    auto slot = std::min_element(free_at.begin(), free_at.end());
    const std::uint64_t start = std::max(*slot, job.arrival_ns);
    const std::uint64_t completion = start + job.service_ns;
    *slot = completion;
    latencies.push_back(completion - job.arrival_ns);
    last_completion = std::max(last_completion, completion);
  }
  replay.sustained_jobs_per_s =
      sustained_jobs_per_s(jobs.size(), jobs.front().arrival_ns, last_completion);
  replay.e2e = summarize_latency(std::move(latencies));
  return replay;
}

namespace {

LatencySummary summarize_histogram(const obs::Histogram& hist) {
  LatencySummary summary;
  if (hist.count() == 0) return summary;
  summary.count = hist.count();
  summary.mean_ns = hist.mean();
  summary.p50_ns = hist.quantile(0.50);
  summary.p95_ns = hist.quantile(0.95);
  summary.p99_ns = hist.quantile(0.99);
  summary.max_ns = static_cast<double>(hist.max());
  return summary;
}

}  // namespace

ServiceStats StatsCollector::snapshot(std::vector<GroupRecord> groups,
                                      std::size_t workers) const {
  MutexLock lock(mutex_);
  ServiceStats stats;
  stats.submitted = submitted_;
  stats.rejected = rejected_;
  stats.cancelled = cancelled_;
  stats.deadline_misses = deadline_misses_;
  stats.completed = completed_count_;
  stats.peak_concurrency = peak_concurrency_;
  stats.timeline = timeline_;
  stats.groups = std::move(groups);

  const bool exact = completed_count_ <= sample_outcomes_.size();
  if (exact) {
    // Reservoir holds every outcome: report the exact order statistics the
    // closed-batch tests and benches pin.
    std::vector<std::uint64_t> waits, streams, e2e, exec_modeled;
    waits.reserve(sample_outcomes_.size());
    streams.reserve(sample_outcomes_.size());
    e2e.reserve(sample_outcomes_.size());
    exec_modeled.reserve(sample_outcomes_.size());
    for (const runtime::JobOutcome& job : sample_outcomes_) {
      waits.push_back(job.queue_wait_ns());
      streams.push_back(job.completion_ns - job.start_ns);
      e2e.push_back(job.latency_ns());
      exec_modeled.push_back(job.modeled_exec_ns());
    }
    stats.queue_wait = summarize_latency(std::move(waits));
    stats.stream_time = summarize_latency(std::move(streams));
    stats.e2e = summarize_latency(std::move(e2e));
    stats.e2e_modeled = summarize_latency(sample_modeled_);
    stats.exec_modeled = summarize_latency(std::move(exec_modeled));
  } else {
    // Past the cap: bounded log-bucketed histograms (within one ~3.1% bucket
    // of exact, the accuracy contract tests/test_obs.cpp pins).
    stats.queue_wait = summarize_histogram(queue_wait_hist_);
    stats.stream_time = summarize_histogram(stream_hist_);
    stats.e2e = summarize_histogram(e2e_hist_);
    stats.e2e_modeled = summarize_histogram(e2e_modeled_hist_);
    stats.exec_modeled = summarize_histogram(exec_modeled_hist_);
  }

  std::vector<ReplayJob> replay_jobs;
  replay_jobs.reserve(sample_outcomes_.size());
  for (const runtime::JobOutcome& job : sample_outcomes_) {
    replay_jobs.push_back({job.arrival_ns, job.modeled_exec_ns()});
  }
  stats.modeled = modeled_replay(std::move(replay_jobs), workers);
  if (completed_count_ != 0) {
    stats.sustained_jobs_per_s = sustained_jobs_per_s(
        completed_count_, first_arrival_ns_, last_completion_ns_);
  }
  return stats;
}

void StatsCollector::publish_metrics(obs::Registry& registry) const {
  MutexLock lock(mutex_);
  registry.set_counter("graphm.service.submitted", submitted_);
  registry.set_counter("graphm.service.rejected", rejected_);
  registry.set_counter("graphm.service.completed", completed_count_);
  registry.set_counter("graphm.service.cancelled", cancelled_);
  registry.set_counter("graphm.service.deadline_misses", deadline_misses_);
  registry.set_gauge("graphm.service.peak_concurrency", peak_concurrency_);
  registry.histogram("graphm.service.queue_wait_ns").merge(queue_wait_hist_);
  registry.histogram("graphm.service.stream_time_ns").merge(stream_hist_);
  registry.histogram("graphm.service.e2e_ns").merge(e2e_hist_);
  registry.histogram("graphm.service.e2e_modeled_ns").merge(e2e_modeled_hist_);
  registry.histogram("graphm.service.exec_modeled_ns").merge(exec_modeled_hist_);
}

std::size_t StatsCollector::approx_memory_bytes() const {
  MutexLock lock(mutex_);
  return sample_outcomes_.capacity() * sizeof(runtime::JobOutcome) +
         sample_modeled_.capacity() * sizeof(std::uint64_t) +
         timeline_.capacity() * sizeof(ConcurrencyPoint) +
         5 * sizeof(obs::Histogram);
}

}  // namespace graphm::service
