#include "service/service_stats.hpp"

#include <algorithm>

namespace graphm::service {

namespace {

double nearest_rank(const std::vector<std::uint64_t>& sorted, double quantile) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(quantile * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(rank, sorted.size() - 1)]);
}

}  // namespace

LatencySummary summarize_latency(std::vector<std::uint64_t> samples_ns) {
  LatencySummary summary;
  if (samples_ns.empty()) return summary;
  std::sort(samples_ns.begin(), samples_ns.end());
  summary.count = samples_ns.size();
  double sum = 0.0;
  for (const std::uint64_t s : samples_ns) sum += static_cast<double>(s);
  summary.mean_ns = sum / static_cast<double>(samples_ns.size());
  summary.p50_ns = nearest_rank(samples_ns, 0.50);
  summary.p95_ns = nearest_rank(samples_ns, 0.95);
  summary.p99_ns = nearest_rank(samples_ns, 0.99);
  summary.max_ns = static_cast<double>(samples_ns.back());
  return summary;
}

LatencySummary latency_from_outcomes(const std::vector<runtime::JobOutcome>& jobs) {
  std::vector<std::uint64_t> samples;
  samples.reserve(jobs.size());
  for (const runtime::JobOutcome& job : jobs) samples.push_back(job.latency_ns());
  return summarize_latency(std::move(samples));
}

double sustained_jobs_per_s(std::size_t completed, std::uint64_t first_arrival_ns,
                            std::uint64_t last_completion_ns) {
  if (completed == 0 || last_completion_ns <= first_arrival_ns) return 0.0;
  return static_cast<double>(completed) /
         (static_cast<double>(last_completion_ns - first_arrival_ns) / 1e9);
}

void StatsCollector::on_submit() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++submitted_;
}

void StatsCollector::on_reject() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++rejected_;
}

void StatsCollector::on_start(std::uint64_t t_ns, std::uint32_t running) {
  std::lock_guard<std::mutex> lock(mutex_);
  timeline_.push_back({t_ns, running});
  peak_concurrency_ = std::max(peak_concurrency_, running);
}

void StatsCollector::on_finish(const runtime::JobOutcome& outcome,
                               std::uint64_t modeled_latency_ns, bool cancelled,
                               bool missed_deadline, std::uint64_t t_ns,
                               std::uint32_t running) {
  std::lock_guard<std::mutex> lock(mutex_);
  timeline_.push_back({t_ns, running});
  if (cancelled) {
    ++cancelled_;
  } else {
    runtime::JobOutcome kept = outcome;
    kept.result.clear();  // the record's copy stays with the handle
    completed_.push_back(std::move(kept));
    modeled_latency_ns_.push_back(modeled_latency_ns);
  }
  if (missed_deadline) ++deadline_misses_;
}

ModeledReplay modeled_replay(std::vector<ReplayJob> jobs, std::size_t workers) {
  ModeledReplay replay;
  if (jobs.empty()) return replay;
  std::sort(jobs.begin(), jobs.end(),
            [](const ReplayJob& a, const ReplayJob& b) { return a.arrival_ns < b.arrival_ns; });
  // FIFO onto the earliest-free of `workers` modeled executors.
  std::vector<std::uint64_t> free_at(std::max<std::size_t>(1, workers), 0);
  std::vector<std::uint64_t> latencies;
  latencies.reserve(jobs.size());
  std::uint64_t last_completion = 0;
  for (const ReplayJob& job : jobs) {
    auto slot = std::min_element(free_at.begin(), free_at.end());
    const std::uint64_t start = std::max(*slot, job.arrival_ns);
    const std::uint64_t completion = start + job.service_ns;
    *slot = completion;
    latencies.push_back(completion - job.arrival_ns);
    last_completion = std::max(last_completion, completion);
  }
  replay.sustained_jobs_per_s =
      sustained_jobs_per_s(jobs.size(), jobs.front().arrival_ns, last_completion);
  replay.e2e = summarize_latency(std::move(latencies));
  return replay;
}

ServiceStats StatsCollector::snapshot(std::vector<GroupRecord> groups,
                                      std::size_t workers) const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats stats;
  stats.submitted = submitted_;
  stats.rejected = rejected_;
  stats.cancelled = cancelled_;
  stats.deadline_misses = deadline_misses_;
  stats.completed = completed_.size();
  stats.peak_concurrency = peak_concurrency_;
  stats.timeline = timeline_;
  stats.groups = std::move(groups);

  std::vector<std::uint64_t> waits, streams, e2e, exec_modeled;
  std::vector<ReplayJob> replay_jobs;
  waits.reserve(completed_.size());
  streams.reserve(completed_.size());
  e2e.reserve(completed_.size());
  exec_modeled.reserve(completed_.size());
  replay_jobs.reserve(completed_.size());
  std::uint64_t first_arrival = UINT64_MAX;
  std::uint64_t last_completion = 0;
  for (const runtime::JobOutcome& job : completed_) {
    waits.push_back(job.queue_wait_ns());
    streams.push_back(job.completion_ns - job.start_ns);
    e2e.push_back(job.latency_ns());
    exec_modeled.push_back(job.modeled_exec_ns());
    replay_jobs.push_back({job.arrival_ns, job.modeled_exec_ns()});
    first_arrival = std::min(first_arrival, job.arrival_ns);
    last_completion = std::max(last_completion, job.completion_ns);
  }
  stats.queue_wait = summarize_latency(std::move(waits));
  stats.stream_time = summarize_latency(std::move(streams));
  stats.e2e = summarize_latency(std::move(e2e));
  stats.e2e_modeled = summarize_latency(modeled_latency_ns_);
  stats.exec_modeled = summarize_latency(std::move(exec_modeled));
  stats.modeled = modeled_replay(std::move(replay_jobs), workers);
  if (!completed_.empty()) {
    stats.sustained_jobs_per_s =
        sustained_jobs_per_s(completed_.size(), first_arrival, last_completion);
  }
  return stats;
}

}  // namespace graphm::service
