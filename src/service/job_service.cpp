#include "service/job_service.hpp"

#include <algorithm>

namespace graphm::service {

const char* exec_mode_name(ExecMode mode) {
  switch (mode) {
    case ExecMode::kShared: return "service-shared";
    case ExecMode::kIsolated: return "isolated";
  }
  return "?";
}

const JobRecord& JobHandle::await() const {
  static JobRecord rejected;
  rejected.state.store(JobState::kRejected, std::memory_order_release);
  if (record_ == nullptr) return rejected;
  std::unique_lock<std::mutex> lock(record_->mutex);
  record_->cv.wait(lock, [this] { return record_->terminal(); });
  return *record_;
}

JobService::JobService(const storage::PartitionedStore& store, ServiceConfig config,
                       std::string dataset_name)
    : JobService(std::vector<DatasetSpec>{{std::move(dataset_name), &store}},
                 std::move(config)) {}

JobService::JobService(std::vector<DatasetSpec> datasets, ServiceConfig config)
    : config_(std::move(config)),
      platform_(config_.platform),
      queue_({config_.policy, config_.max_queue_depth, config_.batch_k,
              config_.batch_max_wait_ns}),
      groups_(datasets.size()) {
  // Open-loop sharing needs mid-stream attach: a job dispatched while the
  // group streams must join the resident partition, not wait a full round.
  config_.graphm.allow_mid_round_attach = true;
  datasets_.reserve(datasets.size());
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    Dataset dataset;
    dataset.name = datasets[d].name;
    dataset.store = datasets[d].store;
    dataset.engine = std::make_unique<grid::StreamEngine>(*dataset.store, platform_,
                                                          config_.stream);
    if (config_.mode == ExecMode::kShared) {
      dataset.graphm = std::make_unique<core::GraphM>(*dataset.store, platform_,
                                                      config_.graphm);
      dataset.graphm->init();
    }
    groups_.set_dataset_name(d, dataset.name);
    datasets_.push_back(std::move(dataset));
  }
  // Labelling is preprocessing (Table 3); the serving clock starts cold.
  platform_.page_cache().reset();
  clock_.reset();
  start_workers();
}

JobService::~JobService() { shutdown(); }

void JobService::start_workers() {
  const std::size_t count = std::max<std::size_t>(1, config_.workers);
  workers_.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobHandle JobService::submit(const algos::JobSpec& spec, std::uint64_t deadline_ns,
                             std::size_t dataset) {
  collector_.on_submit();
  auto record = std::make_shared<JobRecord>();
  std::uint32_t id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  if (id == core::kPreprocessJobId) id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  record->job_id = id;
  record->dataset = dataset;
  record->spec = spec;
  record->deadline_ns = deadline_ns;
  record->outcome.spec = spec;
  record->outcome.modeled_cores = config_.modeled_cores;
  record->outcome.arrival_ns = now_ns();

  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    ++unfinished_;
  }
  if (dataset >= datasets_.size() || shut_down_.load(std::memory_order_acquire) ||
      !queue_.push(record, record->outcome.arrival_ns)) {
    {
      std::lock_guard<std::mutex> lock(lifecycle_mutex_);
      --unfinished_;
    }
    // A drain() may be sleeping on the count this submission briefly raised.
    idle_cv_.notify_all();
    collector_.on_reject();
    record->state.store(JobState::kRejected, std::memory_order_release);
    record->cv.notify_all();
    return JobHandle(record);
  }
  return JobHandle(record);
}

void JobService::worker_loop() {
  const auto clock = [this] { return now_ns(); };
  for (;;) {
    JobRecordPtr job = queue_.pop(clock);
    if (job == nullptr) return;  // queue closed and drained
    execute(job);
  }
}

void JobService::execute(const JobRecordPtr& job) {
  Dataset& dataset = datasets_[job->dataset];

  if (config_.cancel_past_deadline && job->deadline_ns != 0 && now_ns() > job->deadline_ns) {
    // Shed at dispatch: the deadline passed while the job sat in the queue.
    job->missed_deadline = true;
    job->outcome.start_ns = now_ns();
    job->outcome.completion_ns = job->outcome.start_ns;
    finish(job, JobState::kCancelled, /*started=*/false);
    return;
  }

  job->state.store(JobState::kRunning, std::memory_order_release);
  const core::SharingController::Stats sharing_before =
      dataset.graphm ? dataset.graphm->controller().stats() : core::SharingController::Stats{};
  groups_.job_started(job->dataset, now_ns(), sharing_before);
  collector_.on_start(now_ns(), groups_.running_total());

  std::unique_ptr<grid::PartitionLoader> loader;
  if (dataset.graphm) {
    loader = dataset.graphm->make_loader(job->job_id);
  } else {
    loader = std::make_unique<grid::DefaultLoader>(*dataset.store, platform_);
  }
  auto algorithm = algos::make_algorithm(job->spec);

  grid::JobControl control;
  if (config_.cancel_past_deadline && job->deadline_ns != 0) {
    const std::uint64_t deadline = job->deadline_ns;
    control.should_cancel = [this, deadline] { return now_ns() > deadline; };
  }

  job->outcome.start_ns = now_ns();
  job->outcome.stats = dataset.engine->run_job(job->job_id, *algorithm, *loader, &control);
  job->outcome.completion_ns = now_ns();
  if (config_.record_results && !job->outcome.stats.cancelled) {
    job->outcome.result = algorithm->result();
  }

  // Modeled latency: queue wait (measured) + the metrics.hpp per-job time
  // composition (wall share + DRAM stall over the modeled cores + serial
  // disk stall).
  const auto cache = platform_.llc().job_stats(job->job_id);
  job->outcome.mem_stall_ns = static_cast<std::uint64_t>(
      static_cast<double>(cache.misses) * config_.dram_latency_s * 1e9);
  job->modeled_latency_ns = job->outcome.queue_wait_ns() + job->outcome.job_time_ns();
  job->missed_deadline =
      job->deadline_ns != 0 && job->outcome.completion_ns > job->deadline_ns;

  finish(job, job->outcome.stats.cancelled ? JobState::kCancelled : JobState::kDone,
         /*started=*/true);
}

void JobService::finish(const JobRecordPtr& job, JobState terminal, bool started) {
  const Dataset& dataset = datasets_[job->dataset];
  const core::SharingController::Stats sharing_after =
      dataset.graphm ? dataset.graphm->controller().stats() : core::SharingController::Stats{};
  if (started) groups_.job_finished(job->dataset, now_ns(), sharing_after);
  collector_.on_finish(job->outcome, job->modeled_latency_ns,
                       terminal == JobState::kCancelled, job->missed_deadline, now_ns(),
                       groups_.running_total());

  {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->state.store(terminal, std::memory_order_release);
  }
  job->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    --unfinished_;
  }
  idle_cv_.notify_all();
}

void JobService::drain() {
  queue_.flush();
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

void JobService::shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  drain();
  queue_.close();  // workers exit when pop() drains to nullptr
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

ServiceStats JobService::stats() const {
  return collector_.snapshot(groups_.records(), std::max<std::size_t>(1, config_.workers));
}

core::SharingController::Stats JobService::sharing_stats(std::size_t dataset) const {
  const Dataset& d = datasets_.at(dataset);
  return d.graphm ? d.graphm->controller().stats() : core::SharingController::Stats{};
}

}  // namespace graphm::service
