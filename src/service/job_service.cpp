#include "service/job_service.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/trace.hpp"

namespace graphm::service {

const char* exec_mode_name(ExecMode mode) {
  switch (mode) {
    case ExecMode::kShared: return "service-shared";
    case ExecMode::kIsolated: return "isolated";
  }
  return "?";
}

const JobRecord& JobHandle::await() const {
  static JobRecord rejected;
  rejected.state.store(JobState::kRejected, std::memory_order_release);
  if (record_ == nullptr) return rejected;
  MutexLock lock(record_->mutex);
  while (!record_->terminal()) lock.wait(record_->cv);
  return *record_;
}

JobService::JobService(const storage::PartitionedStore& store, ServiceConfig config,
                       std::string dataset_name)
    : JobService(std::vector<DatasetSpec>{{std::move(dataset_name), &store}},
                 std::move(config)) {}

JobService::JobService(std::vector<DatasetSpec> datasets, ServiceConfig config)
    : config_(std::move(config)),
      platform_(config_.platform),
      queue_({config_.policy, config_.max_queue_depth, config_.batch_k,
              config_.batch_max_wait_ns}),
      groups_(datasets.size()),
      slo_(config_.objectives) {
  // Open-loop sharing needs mid-stream attach: a job dispatched while the
  // group streams must join the resident partition, not wait a full round.
  config_.graphm.allow_mid_round_attach = true;
  datasets_.reserve(datasets.size());
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    Dataset dataset;
    dataset.name = datasets[d].name;
    dataset.store = datasets[d].store;
    dataset.engine = std::make_unique<grid::StreamEngine>(*dataset.store, platform_,
                                                          config_.stream);
    if (config_.mode == ExecMode::kShared) {
      dataset.graphm = std::make_unique<core::GraphM>(*dataset.store, platform_,
                                                      config_.graphm);
      dataset.graphm->init();
    }
    groups_.set_dataset_name(d, dataset.name);
    datasets_.push_back(std::move(dataset));
  }
  // Labelling is preprocessing (Table 3); the serving clock starts cold.
  platform_.page_cache().reset();
  clock_.reset();
  start_workers();
}

JobService::~JobService() { shutdown(); }

void JobService::start_workers() {
  const std::size_t count = std::max<std::size_t>(1, config_.workers);
  workers_.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

JobHandle JobService::submit(const algos::JobSpec& spec, std::uint64_t deadline_ns,
                             std::size_t dataset) {
  collector_.on_submit();
  auto record = std::make_shared<JobRecord>();
  std::uint32_t id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  if (id == core::kPreprocessJobId) id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  record->job_id = id;
  record->dataset = dataset;
  record->spec = spec;
  record->deadline_ns = deadline_ns;
  record->outcome.spec = spec;
  record->outcome.modeled_cores = config_.modeled_cores;
  record->outcome.arrival_ns = now_ns();

  // Closed-loop shedding (kAdaptive): while the burn-rate signal is
  // Critical, deadline-less arrivals (lowest priority — they can never miss)
  // shed outright, and deadlined arrivals shed once the queue is over quota.
  // Admitting re-opens on its own when the fast window cools below
  // reopen_burn (the monitor's hysteresis) — no separate open/close state.
  bool slo_shed = false;
  if (config_.policy == AdmissionPolicy::kAdaptive && slo_.enabled() &&
      dataset < datasets_.size()) {
    if (slo_.evaluate(record->outcome.arrival_ns) == obs::SloState::kCritical) {
      const std::size_t quota = config_.adaptive_queue_quota != 0
                                    ? config_.adaptive_queue_quota
                                    : std::max<std::size_t>(1, config_.workers);
      slo_shed = deadline_ns == kNoDeadline || queue_.depth() >= quota;
    }
  }

  {
    MutexLock lock(lifecycle_mutex_);
    ++unfinished_;
  }
  if (slo_shed || dataset >= datasets_.size() ||
      shut_down_.load(std::memory_order_acquire) ||
      !queue_.push(record, record->outcome.arrival_ns)) {
    {
      MutexLock lock(lifecycle_mutex_);
      --unfinished_;
    }
    // A drain() may be sleeping on the count this submission briefly raised.
    idle_cv_.notify_all();
    collector_.on_reject();
    record->state.store(JobState::kRejected, std::memory_order_release);
    record->cv.notify_all();
    obs::Tracer& tracer = obs::Tracer::global();
    if (slo_shed) {
      // Client-visible as a rejection; accounted separately under
      // graphm.slo.<objective>.<dataset>.shed.
      slo_.count_shed(datasets_[dataset].name);
      if (tracer.enabled()) {
        tracer.instant(tracer.track("slo"), "slo shed", tracer.now_ns(), record->job_id,
                       static_cast<std::uint64_t>(slo_.worst_eval().fast_burn * 1e3));
      }
    } else if (tracer.enabled()) {
      tracer.instant(tracer.track("admission"), "reject", tracer.now_ns(), record->job_id);
    }
    return JobHandle(record);
  }
  // Admission wait renders as an async span (queued jobs overlap without
  // nesting): 'b' here, 'e' when a worker dispatches — matched by job id.
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    tracer.async_begin(tracer.track("admission"), "admission wait", tracer.now_ns(),
                       record->job_id);
  }
  return JobHandle(record);
}

void JobService::worker_loop(std::size_t worker_index) {
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    // Only when tracing is on: naming allocates this thread's ring, and the
    // disabled path must stay allocation-free.
    char name[32];
    std::snprintf(name, sizeof(name), "svc-worker %zu", worker_index);
    tracer.name_thread_track(name);
  }
  const auto clock = [this] { return now_ns(); };
  for (;;) {
    JobRecordPtr job = queue_.pop(clock);
    if (job == nullptr) return;  // queue closed and drained
    execute(job);
  }
}

void JobService::execute(const JobRecordPtr& job) {
  Dataset& dataset = datasets_[job->dataset];

  obs::Tracer& tracer = obs::Tracer::global();
  const bool tracing = tracer.enabled();
  char span_name[32];
  std::uint32_t worker_track = 0;
  if (tracing) {
    worker_track = tracer.thread_track();
    tracer.async_end(tracer.track("admission"), "admission wait", tracer.now_ns(),
                     job->job_id);
    std::snprintf(span_name, sizeof(span_name), "job %u", job->job_id);
  }

  if (config_.cancel_past_deadline && job->deadline_ns != 0 && now_ns() > job->deadline_ns) {
    // Shed at dispatch: the deadline passed while the job sat in the queue.
    if (tracing) {
      tracer.instant(worker_track, "shed at dispatch", tracer.now_ns(), job->job_id);
    }
    job->missed_deadline = true;
    job->outcome.start_ns = now_ns();
    job->outcome.completion_ns = job->outcome.start_ns;
    finish(job, JobState::kCancelled, /*started=*/false);
    return;
  }

  // Covers dispatch -> completion on this worker's track; the engine's
  // iteration/partition spans record on the same thread track, so they nest
  // inside this one in the viewer.
  obs::Span job_span(tracer, worker_track, tracing ? span_name : "", job->job_id);

  job->state.store(JobState::kRunning, std::memory_order_release);
  const core::SharingController::Stats sharing_before =
      dataset.graphm ? dataset.graphm->controller().stats() : core::SharingController::Stats{};
  groups_.job_started(job->dataset, now_ns(), sharing_before);
  collector_.on_start(now_ns(), groups_.running_total());

  std::unique_ptr<grid::PartitionLoader> loader;
  if (dataset.graphm) {
    loader = dataset.graphm->make_loader(job->job_id);
  } else {
    loader = std::make_unique<grid::DefaultLoader>(*dataset.store, platform_);
  }
  auto algorithm = algos::make_algorithm(job->spec);

  grid::JobControl control;
  if (config_.cancel_past_deadline && job->deadline_ns != 0) {
    const std::uint64_t deadline = job->deadline_ns;
    control.should_cancel = [this, deadline] { return now_ns() > deadline; };
  }

  job->outcome.start_ns = now_ns();
  job->outcome.stats = dataset.engine->run_job(job->job_id, *algorithm, *loader, &control);
  job->outcome.completion_ns = now_ns();
  if (config_.record_results && !job->outcome.stats.cancelled) {
    job->outcome.result = algorithm->result();
  }

  // Modeled latency: queue wait (measured) + the metrics.hpp per-job time
  // composition (wall share + DRAM stall over the modeled cores + serial
  // disk stall).
  const auto cache = platform_.llc().job_stats(job->job_id);
  job->outcome.mem_stall_ns = static_cast<std::uint64_t>(
      static_cast<double>(cache.misses) * config_.dram_latency_s * 1e9);
  job->modeled_latency_ns = job->outcome.queue_wait_ns() + job->outcome.job_time_ns();
  job->missed_deadline =
      job->deadline_ns != 0 && job->outcome.completion_ns > job->deadline_ns;

  finish(job, job->outcome.stats.cancelled ? JobState::kCancelled : JobState::kDone,
         /*started=*/true);
}

void JobService::finish(const JobRecordPtr& job, JobState terminal, bool started) {
  const Dataset& dataset = datasets_[job->dataset];
  const core::SharingController::Stats sharing_after =
      dataset.graphm ? dataset.graphm->controller().stats() : core::SharingController::Stats{};
  if (started) groups_.job_finished(job->dataset, now_ns(), sharing_after);
  collector_.on_finish(job->outcome, job->modeled_latency_ns,
                       terminal == JobState::kCancelled, job->missed_deadline, now_ns(),
                       groups_.running_total());

  if (slo_.enabled()) {
    // Completions feed the window with their e2e latency (late completions
    // land over the threshold on their own); cancellations — shed at
    // dispatch or aborted mid-run — are unconditional violations.
    const std::uint64_t now = now_ns();
    if (terminal == JobState::kDone) {
      slo_.observe(dataset.name, now,
                   job->outcome.completion_ns - job->outcome.arrival_ns);
    } else {
      slo_.violation(dataset.name, now);
    }
    evaluate_slo(now);
  }

  {
    MutexLock lock(job->mutex);
    job->state.store(terminal, std::memory_order_release);
  }
  job->cv.notify_all();
  {
    MutexLock lock(lifecycle_mutex_);
    --unfinished_;
  }
  idle_cv_.notify_all();
}

void JobService::evaluate_slo(std::uint64_t now) {
  const obs::SloState before = slo_.state();
  const obs::SloState after = slo_.evaluate(now);
  if (after == before) return;
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    // The detector firing renders next to the latency spans that caused it.
    const std::string name = std::string("slo ") + obs::slo_state_name(after);
    tracer.instant(tracer.track("slo"), name, tracer.now_ns(), 0,
                   static_cast<std::uint64_t>(slo_.worst_eval().fast_burn * 1e3));
  }
}

void JobService::drain() {
  queue_.flush();
  MutexLock lock(lifecycle_mutex_);
  while (unfinished_ != 0) lock.wait(idle_cv_);
}

void JobService::shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  drain();
  queue_.close();  // workers exit when pop() drains to nullptr
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

ServiceStats JobService::stats() const {
  return collector_.snapshot(groups_.records(), std::max<std::size_t>(1, config_.workers));
}

core::SharingController::Stats JobService::sharing_stats(std::size_t dataset) const {
  const Dataset& d = datasets_.at(dataset);
  return d.graphm ? d.graphm->controller().stats() : core::SharingController::Stats{};
}

void JobService::publish_metrics(obs::Registry& registry) const {
  collector_.publish_metrics(registry);
  registry.set_gauge("graphm.service.queue_depth",
                     static_cast<std::int64_t>(queue_.depth()));
  registry.set_gauge("graphm.service.workers",
                     static_cast<std::int64_t>(std::max<std::size_t>(1, config_.workers)));

  // Sharing economy, summed over every dataset's controller (kShared only).
  core::SharingController::Stats sharing{};
  bool any_shared = false;
  for (const Dataset& dataset : datasets_) {
    if (!dataset.graphm) continue;
    any_shared = true;
    const core::SharingController::Stats s = dataset.graphm->controller().stats();
    sharing.partition_loads += s.partition_loads;
    sharing.attaches += s.attaches;
    sharing.mid_round_attaches += s.mid_round_attaches;
    sharing.suspensions += s.suspensions;
    sharing.chunk_barriers += s.chunk_barriers;
    sharing.snapshot_copies += s.snapshot_copies;
    sharing.mid_round_detaches += s.mid_round_detaches;
  }
  if (any_shared) {
    registry.set_counter("graphm.sharing.partition_loads", sharing.partition_loads);
    registry.set_counter("graphm.sharing.attaches", sharing.attaches);
    registry.set_counter("graphm.sharing.mid_round_attaches", sharing.mid_round_attaches);
    registry.set_counter("graphm.sharing.suspensions", sharing.suspensions);
    registry.set_counter("graphm.sharing.chunk_barriers", sharing.chunk_barriers);
    registry.set_counter("graphm.sharing.snapshot_copies", sharing.snapshot_copies);
    registry.set_counter("graphm.sharing.mid_round_detaches", sharing.mid_round_detaches);
  }

  // Simulated platform totals (the paper's hardware-counter view).
  const sim::CacheStats llc = platform_.llc().total_stats();
  registry.set_counter("graphm.sim.llc.accesses", llc.accesses);
  registry.set_counter("graphm.sim.llc.misses", llc.misses);
  registry.set_counter("graphm.sim.llc.bytes_swapped_in", llc.bytes_swapped_in);
  const sim::IoStats io = platform_.page_cache().total_stats();
  registry.set_counter("graphm.sim.page_cache.read_bytes", io.read_bytes);
  registry.set_counter("graphm.sim.page_cache.disk_read_bytes", io.disk_read_bytes);
  registry.set_counter("graphm.sim.page_cache.disk_requests", io.disk_requests);
  registry.set_counter("graphm.sim.page_cache.virtual_io_ns", io.virtual_io_ns);
  registry.set_gauge("graphm.sim.memory.peak_bytes",
                     static_cast<std::int64_t>(platform_.memory().peak_total()));

  // SLO accounting (when objectives are configured) and the flight
  // recorder's own health — the observers observe themselves.
  slo_.publish(registry);
  obs::publish_tracer_metrics(registry, obs::Tracer::global());
}

std::string JobService::metrics_json() const {
  obs::Registry registry;
  publish_metrics(registry);
  return registry.json();
}

}  // namespace graphm::service
