// GraphChi-like shard format.
//
// Vertices are split into P execution intervals; shard s holds every edge
// whose *destination* falls in interval s, sorted by source (GraphChi's
// layout). LoadSubgraph(s) — the operation GraphM's Sharing() wraps for
// GraphChi (Section 3.1) — reads one whole shard. Because a shard's sources
// span the entire graph, StoreMeta::partitions_by_source is false and the
// engine treats every shard as active whenever any vertex is active (i.e.
// GraphChi without its optional selective scheduling).
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "graph/edge_list.hpp"
#include "storage/store.hpp"

namespace graphm::shard {

class ShardStore final : public storage::PartitionedStore {
 public:
  /// Converts `graph` into P shards and writes <path>.{meta,data,deg}.
  /// Returns the conversion wall time (Table 3 accounting).
  static std::uint64_t preprocess(const graph::EdgeList& graph, std::uint32_t num_shards,
                                  const std::string& path);

  static ShardStore open(const std::string& path);

  [[nodiscard]] const storage::StoreMeta& meta() const override { return meta_; }
  [[nodiscard]] std::uint32_t file_id() const override { return file_id_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  std::uint64_t read_partition(std::uint32_t i, std::vector<graph::Edge>& out,
                               sim::Platform& platform, std::uint32_t job_id) const override;
  std::uint64_t read_edges(std::uint32_t i, graph::EdgeCount first_edge, graph::EdgeCount count,
                           graph::Edge* out, sim::Platform& platform,
                           std::uint32_t job_id) const override;
  [[nodiscard]] std::vector<std::uint32_t> load_out_degrees() const override;

 private:
  ShardStore(storage::StoreMeta meta, std::string path, std::uint32_t file_id);

  storage::StoreMeta meta_;
  std::string path_;
  std::uint32_t file_id_;
  struct FdCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::shared_ptr<std::FILE> data_file_;
};

/// Preprocesses (once, cached) the named dataset into shards and opens it.
ShardStore open_dataset_shards(const std::string& dataset, std::uint32_t num_shards,
                               double scale = 1.0);

}  // namespace graphm::shard
