// GraphChi-like execution engine: iterates over the shard store's execution
// intervals, loading one subgraph (shard) at a time. Because ShardStore
// implements PartitionedStore, the engine is a configuration of the generic
// streaming core — and GraphM plugs into it by substituting the loader for
// LoadSubgraph(), exactly as the paper integrates GraphM into GraphChi
// (`Sharing(G, LoadSubgraph())`, Section 3.1).
//
// The block-batched, pool-parallel streaming path lives in the shared core:
// StreamConfig::num_stream_threads sizes this engine's worker pool too, and
// shards stream through process_edge_block exactly like grid partitions
// (GraphChi's parallel sliding windows collapse onto the same block axis).
#pragma once

#include "grid/stream_engine.hpp"
#include "shard/shard_store.hpp"

namespace graphm::shard {

class GraphChiEngine {
 public:
  GraphChiEngine(const ShardStore& store, sim::Platform& platform,
                 grid::StreamConfig config = {});

  /// Runs one job; `loader` is the LoadSubgraph() seam (default or GraphM's).
  grid::JobRunStats run_job(std::uint32_t job_id, algos::StreamingAlgorithm& algorithm,
                            grid::PartitionLoader& loader) const;

  /// The engine's own LoadSubgraph(): one private buffer per job.
  [[nodiscard]] std::unique_ptr<grid::PartitionLoader> make_default_loader() const;

  [[nodiscard]] const ShardStore& store() const { return store_; }
  [[nodiscard]] const grid::StreamEngine& core() const { return core_; }
  /// Streaming workers one job's blocks can fan out across.
  [[nodiscard]] std::size_t stream_threads() const { return core_.stream_threads(); }

 private:
  const ShardStore& store_;
  sim::Platform& platform_;
  grid::StreamEngine core_;
};

}  // namespace graphm::shard
