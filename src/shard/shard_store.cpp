#include "shard/shard_store.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "graph/datasets.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"
#include "util/annotations.hpp"

namespace graphm::shard {

namespace fs = std::filesystem;
using graph::Edge;

namespace {

constexpr std::uint32_t kMetaMagic = 0x53684431;  // "ShD1"

std::uint32_t file_id_for_path(const std::string& path) {
  static graphm::Mutex mutex;
  static std::unordered_map<std::string, std::uint32_t> ids;
  static std::atomic<std::uint32_t> counter{10000};  // distinct from grid ids
  graphm::MutexLock lock(mutex);
  auto [it, inserted] = ids.try_emplace(path, 0);
  if (inserted) it->second = counter.fetch_add(1);
  return it->second;
}

}  // namespace

std::uint64_t ShardStore::preprocess(const graph::EdgeList& graph, std::uint32_t num_shards,
                                     const std::string& path) {
  if (num_shards == 0) throw std::invalid_argument("ShardStore: num_shards == 0");
  util::Timer timer;

  storage::StoreMeta meta;
  meta.num_vertices = graph.num_vertices();
  meta.num_edges = graph.num_edges();
  meta.num_partitions = num_shards;
  meta.blocks_per_partition = 1;
  meta.partitions_by_source = false;
  meta.block_offsets.assign(num_shards, 0);
  meta.block_edges.assign(num_shards, 0);

  const graph::VertexId per =
      (graph.num_vertices() + num_shards - 1) / std::max<std::uint32_t>(1, num_shards);
  auto interval_of = [&](graph::VertexId v) {
    return per == 0 ? 0u : std::min<std::uint32_t>(num_shards - 1, v / per);
  };

  for (const Edge& e : graph.edges()) ++meta.block_edges[interval_of(e.dst)];
  std::uint64_t offset = 0;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    meta.block_offsets[s] = offset;
    offset += meta.block_edges[s] * sizeof(Edge);
  }

  // Bucket, then sort each shard by source (GraphChi's invariant).
  std::vector<Edge> data(graph.num_edges());
  std::vector<std::uint64_t> cursor(meta.block_offsets.begin(), meta.block_offsets.end());
  for (const Edge& e : graph.edges()) {
    std::uint64_t& cur = cursor[interval_of(e.dst)];
    data[cur / sizeof(Edge)] = e;
    cur += sizeof(Edge);
  }
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    Edge* begin = data.data() + meta.block_offsets[s] / sizeof(Edge);
    std::stable_sort(begin, begin + meta.block_edges[s],
                     [](const Edge& a, const Edge& b) { return a.src < b.src; });
  }

  {
    std::FILE* f = std::fopen((path + ".data").c_str(), "wb");
    if (f == nullptr) throw std::runtime_error("ShardStore: cannot write " + path + ".data");
    if (!data.empty() && std::fwrite(data.data(), sizeof(Edge), data.size(), f) != data.size()) {
      std::fclose(f);
      throw std::runtime_error("ShardStore: short write " + path + ".data");
    }
    std::fclose(f);
  }
  meta.preprocess_ns = timer.elapsed_ns();
  {
    std::FILE* f = std::fopen((path + ".meta").c_str(), "wb");
    if (f == nullptr) throw std::runtime_error("ShardStore: cannot write " + path + ".meta");
    const std::uint32_t magic = kMetaMagic;
    std::fwrite(&magic, sizeof(magic), 1, f);
    std::fwrite(&meta.num_vertices, sizeof(meta.num_vertices), 1, f);
    std::fwrite(&meta.num_edges, sizeof(meta.num_edges), 1, f);
    std::fwrite(&meta.num_partitions, sizeof(meta.num_partitions), 1, f);
    std::fwrite(&meta.preprocess_ns, sizeof(meta.preprocess_ns), 1, f);
    std::fwrite(meta.block_offsets.data(), sizeof(std::uint64_t), num_shards, f);
    std::fwrite(meta.block_edges.data(), sizeof(std::uint64_t), num_shards, f);
    std::fclose(f);
  }
  {
    const auto degrees = graph.out_degrees();
    std::FILE* f = std::fopen((path + ".deg").c_str(), "wb");
    if (f == nullptr) throw std::runtime_error("ShardStore: cannot write " + path + ".deg");
    if (!degrees.empty() &&
        std::fwrite(degrees.data(), sizeof(std::uint32_t), degrees.size(), f) != degrees.size()) {
      std::fclose(f);
      throw std::runtime_error("ShardStore: short write " + path + ".deg");
    }
    std::fclose(f);
  }
  return meta.preprocess_ns;
}

ShardStore ShardStore::open(const std::string& path) {
  std::FILE* f = std::fopen((path + ".meta").c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("ShardStore: cannot open " + path + ".meta");
  storage::StoreMeta meta;
  meta.blocks_per_partition = 1;
  meta.partitions_by_source = false;
  std::uint32_t magic = 0;
  bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1 && magic == kMetaMagic;
  ok = ok && std::fread(&meta.num_vertices, sizeof(meta.num_vertices), 1, f) == 1;
  ok = ok && std::fread(&meta.num_edges, sizeof(meta.num_edges), 1, f) == 1;
  ok = ok && std::fread(&meta.num_partitions, sizeof(meta.num_partitions), 1, f) == 1;
  ok = ok && std::fread(&meta.preprocess_ns, sizeof(meta.preprocess_ns), 1, f) == 1;
  if (ok) {
    meta.block_offsets.resize(meta.num_partitions);
    meta.block_edges.resize(meta.num_partitions);
    ok = std::fread(meta.block_offsets.data(), sizeof(std::uint64_t), meta.num_partitions, f) ==
             meta.num_partitions &&
         std::fread(meta.block_edges.data(), sizeof(std::uint64_t), meta.num_partitions, f) ==
             meta.num_partitions;
  }
  std::fclose(f);
  if (!ok) throw std::runtime_error("ShardStore: corrupt meta " + path);
  return ShardStore(std::move(meta), path, file_id_for_path(path));
}

ShardStore::ShardStore(storage::StoreMeta meta, std::string path, std::uint32_t file_id)
    : meta_(std::move(meta)), path_(std::move(path)), file_id_(file_id) {
  std::FILE* f = std::fopen((path_ + ".data").c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("ShardStore: cannot open " + path_ + ".data");
  data_file_ = std::shared_ptr<std::FILE>(f, FdCloser{});
}

std::uint64_t ShardStore::read_partition(std::uint32_t i, std::vector<Edge>& out,
                                         sim::Platform& platform, std::uint32_t job_id) const {
  const graph::EdgeCount count = meta_.partition_edges(i);
  out.resize(count);
  return read_edges(i, 0, count, out.data(), platform, job_id);
}

std::uint64_t ShardStore::read_edges(std::uint32_t i, graph::EdgeCount first_edge,
                                     graph::EdgeCount count, Edge* out, sim::Platform& platform,
                                     std::uint32_t job_id) const {
  if (count == 0) return 0;
  const std::uint64_t offset = meta_.partition_offset(i) + first_edge * sizeof(Edge);
  const std::uint64_t bytes = count * sizeof(Edge);
  {
    static graphm::Mutex io_mutex;
    graphm::MutexLock lock(io_mutex);
    if (std::fseek(data_file_.get(), static_cast<long>(offset), SEEK_SET) != 0 ||
        std::fread(out, 1, bytes, data_file_.get()) != bytes) {
      throw std::runtime_error("ShardStore: read failed on " + path_);
    }
  }
  return platform.page_cache().read(file_id_, offset, bytes, job_id);
}

std::vector<std::uint32_t> ShardStore::load_out_degrees() const {
  std::vector<std::uint32_t> degrees(meta_.num_vertices, 0);
  std::FILE* f = std::fopen((path_ + ".deg").c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("ShardStore: cannot open " + path_ + ".deg");
  const std::size_t got = std::fread(degrees.data(), sizeof(std::uint32_t), degrees.size(), f);
  std::fclose(f);
  if (got != degrees.size()) throw std::runtime_error("ShardStore: truncated " + path_ + ".deg");
  return degrees;
}

ShardStore open_dataset_shards(const std::string& dataset, std::uint32_t num_shards,
                               double scale) {
  const std::string edge_path = graph::dataset_path(dataset, scale);
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), "_%.4f_s%u.shard", scale, num_shards);
  const std::string shard_path =
      (fs::path(graph::dataset_cache_dir()) / (dataset + std::string(suffix))).string();

  static graphm::Mutex mutex;
  graphm::MutexLock lock(mutex);
  if (!fs::exists(shard_path + ".meta") || !fs::exists(shard_path + ".data")) {
    GRAPHM_INFO("preprocessing shards for " << dataset << " P=" << num_shards);
    ShardStore::preprocess(graph::EdgeList::load(edge_path), num_shards, shard_path);
  }
  return ShardStore::open(shard_path);
}

}  // namespace graphm::shard
