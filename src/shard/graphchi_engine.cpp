#include "shard/graphchi_engine.hpp"

namespace graphm::shard {

GraphChiEngine::GraphChiEngine(const ShardStore& store, sim::Platform& platform,
                               grid::StreamConfig config)
    : store_(store), platform_(platform), core_(store, platform, config) {}

grid::JobRunStats GraphChiEngine::run_job(std::uint32_t job_id,
                                          algos::StreamingAlgorithm& algorithm,
                                          grid::PartitionLoader& loader) const {
  return core_.run_job(job_id, algorithm, loader);
}

std::unique_ptr<grid::PartitionLoader> GraphChiEngine::make_default_loader() const {
  return std::make_unique<grid::DefaultLoader>(store_, platform_);
}

}  // namespace graphm::shard
