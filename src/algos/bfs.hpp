// Breadth-first search from a configurable root — the paper's
// frontier-driven workload: only a few partitions are active at the start,
// then the frontier fans out (the behaviour Section 4's scheduling strategy
// exploits).
#pragma once

#include <atomic>

#include "algos/algorithm.hpp"

namespace graphm::algos {

class Bfs final : public StreamingAlgorithm {
 public:
  explicit Bfs(graph::VertexId root) : root_(root) {}

  [[nodiscard]] std::string name() const override { return "BFS"; }
  void init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& out_degrees,
            sim::MemoryTracker* tracker) override;
  void iteration_start(std::uint64_t iteration) override;
  [[nodiscard]] const util::AtomicBitmap& active_vertices() const override { return frontier_; }
  void process_edge(const graph::Edge& e) override { relax(e.dst); }
  graph::EdgeCount process_edge_block(const graph::Edge* edges, graph::EdgeCount n,
                                      const util::AtomicBitmap& active) override;
  [[nodiscard]] bool parallel_safe() const override { return true; }
  void iteration_end() override;
  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] std::pair<const void*, std::size_t> values_span() const override {
    return {levels_.data(), levels_.size() * sizeof(std::uint32_t)};
  }
  [[nodiscard]] std::vector<double> result() const override {
    return {levels_.begin(), levels_.end()};
  }

  static constexpr std::uint32_t kUnreached = 0xFFFFFFFFu;

 private:
  /// Idempotent within an iteration (every writer stores the same level), so
  /// concurrent block workers need no CAS — just atomic loads/stores.
  void relax(graph::VertexId dst) {
    std::atomic_ref<std::uint32_t> level(levels_[dst]);
    if (level.load(std::memory_order_relaxed) == kUnreached) {
      level.store(current_level_ + 1, std::memory_order_relaxed);
      next_frontier_.set(dst);
    }
  }

  graph::VertexId root_;
  bool done_ = false;
  std::uint32_t current_level_ = 0;
  std::vector<std::uint32_t> levels_;
  util::AtomicBitmap frontier_;
  util::AtomicBitmap next_frontier_;
  sim::TrackedAllocation tracking_;
};

}  // namespace graphm::algos
