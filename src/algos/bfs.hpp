// Breadth-first search from a configurable root — the paper's
// frontier-driven workload: only a few partitions are active at the start,
// then the frontier fans out (the behaviour Section 4's scheduling strategy
// exploits).
#pragma once

#include "algos/algorithm.hpp"

namespace graphm::algos {

class Bfs final : public StreamingAlgorithm {
 public:
  explicit Bfs(graph::VertexId root) : root_(root) {}

  [[nodiscard]] std::string name() const override { return "BFS"; }
  void init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& out_degrees,
            sim::MemoryTracker* tracker) override;
  void iteration_start(std::uint64_t iteration) override;
  [[nodiscard]] const util::AtomicBitmap& active_vertices() const override { return frontier_; }
  void process_edge(const graph::Edge& e) override;
  void iteration_end() override;
  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] std::pair<const void*, std::size_t> values_span() const override {
    return {levels_.data(), levels_.size() * sizeof(std::uint32_t)};
  }
  [[nodiscard]] std::vector<double> result() const override {
    return {levels_.begin(), levels_.end()};
  }

  static constexpr std::uint32_t kUnreached = 0xFFFFFFFFu;

 private:
  graph::VertexId root_;
  bool done_ = false;
  std::uint32_t current_level_ = 0;
  std::vector<std::uint32_t> levels_;
  util::AtomicBitmap frontier_;
  util::AtomicBitmap next_frontier_;
  sim::TrackedAllocation tracking_;
};

}  // namespace graphm::algos
