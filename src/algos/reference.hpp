// Serial reference implementations used as test oracles. They are written
// against the plain edge list / CSR — independently of every engine — so a
// bug in an engine or in GraphM cannot hide in both sides of a comparison.
#pragma once

#include <vector>

#include "algos/algorithm.hpp"
#include "graph/edge_list.hpp"

namespace graphm::algos::reference {

/// Drives `algorithm` to completion over the plain edge list with the
/// per-edge scalar protocol — no engine, no chunks, no blocks, one thread.
/// This is the oracle the block-path equivalence tests compare every
/// process_edge_block override (and every thread count) against. Returns the
/// final result(); `max_iterations_guard` bounds runaway algorithms.
std::vector<double> run_streaming(const graph::EdgeList& graph,
                                  StreamingAlgorithm& algorithm,
                                  std::uint64_t max_iterations_guard = 100000);

/// Power iteration matching PageRank's semantics (dangling mass dropped),
/// `iterations` full passes.
std::vector<double> pagerank(const graph::EdgeList& graph, double damping,
                             std::uint32_t iterations);

/// Min-label propagation over undirected edges, at most `max_iterations`
/// full passes (pass the graph's vertex count for guaranteed convergence).
std::vector<graph::VertexId> wcc_labels(const graph::EdgeList& graph,
                                        std::uint32_t max_iterations);

/// Exact weakly-connected components via union-find (oracle for converged WCC).
std::vector<graph::VertexId> wcc_union_find(const graph::EdgeList& graph);

/// BFS levels from `root` over directed edges; unreached = 0xFFFFFFFF.
std::vector<std::uint32_t> bfs_levels(const graph::EdgeList& graph, graph::VertexId root);

/// Dijkstra distances from `root`; unreached = Sssp::kInfinity.
std::vector<float> sssp_distances(const graph::EdgeList& graph, graph::VertexId root);

}  // namespace graphm::algos::reference
