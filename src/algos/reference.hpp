// Serial reference implementations used as test oracles. They are written
// against the plain edge list / CSR — independently of every engine — so a
// bug in an engine or in GraphM cannot hide in both sides of a comparison.
#pragma once

#include <vector>

#include "graph/edge_list.hpp"

namespace graphm::algos::reference {

/// Power iteration matching PageRank's semantics (dangling mass dropped),
/// `iterations` full passes.
std::vector<double> pagerank(const graph::EdgeList& graph, double damping,
                             std::uint32_t iterations);

/// Min-label propagation over undirected edges, at most `max_iterations`
/// full passes (pass the graph's vertex count for guaranteed convergence).
std::vector<graph::VertexId> wcc_labels(const graph::EdgeList& graph,
                                        std::uint32_t max_iterations);

/// Exact weakly-connected components via union-find (oracle for converged WCC).
std::vector<graph::VertexId> wcc_union_find(const graph::EdgeList& graph);

/// BFS levels from `root` over directed edges; unreached = 0xFFFFFFFF.
std::vector<std::uint32_t> bfs_levels(const graph::EdgeList& graph, graph::VertexId root);

/// Dijkstra distances from `root`; unreached = Sssp::kInfinity.
std::vector<float> sssp_distances(const graph::EdgeList& graph, graph::VertexId root);

}  // namespace graphm::algos::reference
