#include "algos/sssp.hpp"

namespace graphm::algos {

void Sssp::init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& /*out_degrees*/,
                sim::MemoryTracker* tracker) {
  distance_.assign(num_vertices, kInfinity);
  frontier_ = util::AtomicBitmap(num_vertices);
  next_frontier_ = util::AtomicBitmap(num_vertices);
  if (root_ < num_vertices) {
    distance_[root_] = 0.0f;
    frontier_.set(root_);
  } else {
    done_ = true;
  }
  tracking_ = sim::TrackedAllocation(tracker, sim::MemoryCategory::kJobSpecific,
                                     num_vertices * sizeof(float) + num_vertices / 4);
}

void Sssp::iteration_start(std::uint64_t /*iteration*/) { next_frontier_.clear_all(); }

void Sssp::process_edge(const graph::Edge& e) {
  const float candidate = distance_[e.src] + e.weight;
  if (candidate < distance_[e.dst]) {
    distance_[e.dst] = candidate;
    next_frontier_.set(e.dst);
  }
}

void Sssp::iteration_end() {
  std::swap(frontier_, next_frontier_);
  done_ = !frontier_.any();
}

}  // namespace graphm::algos
