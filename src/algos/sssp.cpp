#include "algos/sssp.hpp"

namespace graphm::algos {

void Sssp::init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& /*out_degrees*/,
                sim::MemoryTracker* tracker) {
  distance_.assign(num_vertices, kInfinity);
  frontier_ = util::AtomicBitmap(num_vertices);
  next_frontier_ = util::AtomicBitmap(num_vertices);
  if (root_ < num_vertices) {
    distance_[root_] = 0.0f;
    frontier_.set(root_);
  } else {
    done_ = true;
  }
  prev_distance_ = distance_;
  tracking_ = sim::TrackedAllocation(tracker, sim::MemoryCategory::kJobSpecific,
                                     2 * num_vertices * sizeof(float) + num_vertices / 4);
}

void Sssp::iteration_start(std::uint64_t /*iteration*/) {
  next_frontier_.clear_all();
  // Only frontier sources' previous distances are ever read (relax gates on
  // the frontier), so refresh just those entries — O(|frontier|) instead of
  // an O(V) copy in the sparse iterations. Dense frontiers keep the bulk
  // copy, which is cheaper than a bit-walk.
  const std::size_t n = distance_.size();
  if (frontier_.count() * 4 >= n) {
    prev_distance_ = distance_;
    return;
  }
  for (std::size_t v = frontier_.next_set_in_range(0, n); v < n;
       v = frontier_.next_set_in_range(v + 1, n)) {
    prev_distance_[v] = distance_[v];
  }
}

graph::EdgeCount Sssp::process_edge_block(const graph::Edge* edges, graph::EdgeCount n,
                                          const util::AtomicBitmap& active) {
  return gated_block_loop(edges, n, active, [this](const graph::Edge& e) { relax(e); });
}

void Sssp::iteration_end() {
  std::swap(frontier_, next_frontier_);
  done_ = !frontier_.any();
}

}  // namespace graphm::algos
