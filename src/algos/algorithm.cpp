#include "algos/algorithm.hpp"

namespace graphm::algos {

graph::EdgeCount StreamingAlgorithm::process_edge_block(const graph::Edge* edges,
                                                        graph::EdgeCount n,
                                                        const util::AtomicBitmap& active) {
  // Scalar fallback: one atomic bit test and one virtual dispatch per edge.
  // Overrides replace this with a devirtualized loop; the equivalence tests
  // assert both paths produce bit-identical job state.
  graph::EdgeCount processed = 0;
  for (graph::EdgeCount i = 0; i < n; ++i) {
    const graph::Edge& e = edges[i];
    if (active.get(e.src)) {
      process_edge(e);
      ++processed;
    }
  }
  return processed;
}

}  // namespace graphm::algos
