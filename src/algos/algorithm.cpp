#include "algos/algorithm.hpp"

namespace graphm::algos {

graph::EdgeCount StreamingAlgorithm::process_edge_block(const graph::Edge* edges,
                                                        graph::EdgeCount n,
                                                        const util::AtomicBitmap& active) {
  // Scalar fallback: one atomic bit test and one virtual dispatch per edge.
  // Overrides replace this with a devirtualized loop; the equivalence tests
  // assert both paths produce bit-identical job state.
  graph::EdgeCount processed = 0;
  for (graph::EdgeCount i = 0; i < n; ++i) {
    const graph::Edge& e = edges[i];
    if (active.get(e.src)) {
      process_edge(e);
      ++processed;
    }
  }
  return processed;
}

graph::EdgeCount StreamingAlgorithm::process_edge_block_striped(const graph::Edge* edges,
                                                                graph::EdgeCount n,
                                                                const util::AtomicBitmap& active,
                                                                std::uint32_t stripe) {
  // Scalar fallback for the striped mode: same per-edge protocol as
  // process_edge_block plus the stripe-ownership gate. Every source-active
  // edge is relaxed by exactly one stripe (its destination's owner), so the
  // counts of all stripes sum to the plain block count.
  graph::EdgeCount processed = 0;
  for (graph::EdgeCount i = 0; i < n; ++i) {
    const graph::Edge& e = edges[i];
    if (active.get(e.src) && dst_stripe_of(e.dst) == stripe) {
      process_edge(e);
      ++processed;
    }
  }
  return processed;
}

}  // namespace graphm::algos
