#include "algos/reference.hpp"

#include <deque>
#include <numeric>
#include <queue>

#include "algos/sssp.hpp"
#include "graph/csr.hpp"

namespace graphm::algos::reference {

using graph::Edge;
using graph::EdgeList;
using graph::VertexId;

std::vector<double> run_streaming(const EdgeList& graph, StreamingAlgorithm& algorithm,
                                  std::uint64_t max_iterations_guard) {
  // Algorithms may keep a reference to the degree array (PageRank does), so
  // it must outlive the whole run.
  const std::vector<std::uint32_t> out_degrees = graph.out_degrees();
  algorithm.init(graph.num_vertices(), out_degrees, nullptr);
  std::uint64_t iteration = 0;
  while (!algorithm.done() && iteration < max_iterations_guard) {
    algorithm.iteration_start(iteration);
    const util::AtomicBitmap& active = algorithm.active_vertices();
    for (const Edge& e : graph.edges()) {
      if (active.get(e.src)) algorithm.process_edge(e);
    }
    algorithm.iteration_end();
    ++iteration;
  }
  return algorithm.result();
}

std::vector<double> pagerank(const EdgeList& graph, double damping, std::uint32_t iterations) {
  const VertexId n = graph.num_vertices();
  const auto degrees = graph.out_degrees();
  std::vector<double> rank(n, n == 0 ? 0.0 : 1.0 / n);
  std::vector<double> next(n, 0.0);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (const Edge& e : graph.edges()) {
      if (degrees[e.src] != 0) next[e.dst] += rank[e.src] / degrees[e.src];
    }
    for (VertexId v = 0; v < n; ++v) {
      rank[v] = (1.0 - damping) / static_cast<double>(n) + damping * next[v];
    }
  }
  return rank;
}

std::vector<VertexId> wcc_labels(const EdgeList& graph, std::uint32_t max_iterations) {
  // Jacobi propagation, matching algos::Wcc exactly (see wcc.hpp).
  std::vector<VertexId> labels(graph.num_vertices());
  std::iota(labels.begin(), labels.end(), VertexId{0});
  std::vector<VertexId> next(labels);
  for (std::uint32_t it = 0; it < max_iterations; ++it) {
    next = labels;
    bool changed = false;
    for (const Edge& e : graph.edges()) {
      if (labels[e.src] < next[e.dst]) {
        next[e.dst] = labels[e.src];
        changed = true;
      }
      if (labels[e.dst] < next[e.src]) {
        next[e.src] = labels[e.dst];
        changed = true;
      }
    }
    labels.swap(next);
    if (!changed) break;
  }
  return labels;
}

std::vector<VertexId> wcc_union_find(const EdgeList& graph) {
  std::vector<VertexId> parent(graph.num_vertices());
  std::iota(parent.begin(), parent.end(), VertexId{0});
  auto find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const Edge& e : graph.edges()) {
    const VertexId a = find(e.src);
    const VertexId b = find(e.dst);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  // Canonical label: minimum vertex id in the component.
  std::vector<VertexId> labels(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) labels[v] = find(v);
  return labels;
}

std::vector<std::uint32_t> bfs_levels(const EdgeList& graph, VertexId root) {
  constexpr std::uint32_t kUnreached = 0xFFFFFFFFu;
  std::vector<std::uint32_t> levels(graph.num_vertices(), kUnreached);
  if (root >= graph.num_vertices()) return levels;
  const auto csr = graph::Csr::build(graph);
  std::deque<VertexId> queue{root};
  levels[root] = 0;
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (const auto& nb : csr.neighbors(v)) {
      if (levels[nb.dst] == kUnreached) {
        levels[nb.dst] = levels[v] + 1;
        queue.push_back(nb.dst);
      }
    }
  }
  return levels;
}

std::vector<float> sssp_distances(const EdgeList& graph, VertexId root) {
  std::vector<float> dist(graph.num_vertices(), Sssp::kInfinity);
  if (root >= graph.num_vertices()) return dist;
  const auto csr = graph::Csr::build(graph);
  using Item = std::pair<float, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[root] = 0.0f;
  heap.emplace(0.0f, root);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    for (const auto& nb : csr.neighbors(v)) {
      const float candidate = d + nb.weight;
      if (candidate < dist[nb.dst]) {
        dist[nb.dst] = candidate;
        heap.emplace(candidate, nb.dst);
      }
    }
  }
  return dist;
}

}  // namespace graphm::algos::reference
