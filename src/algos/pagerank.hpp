// PageRank with configurable damping factor and iteration count — the
// paper's network-intensive workload (every iteration traverses the whole
// graph). Push-style: each edge adds rank[src]/deg[src] into the next sums.
//
// Deterministic parallel mode: PageRank's accumulation is order-sensitive
// floating point, so instead of block fan-out it opts into the striped-
// accumulation contract (see algorithm.hpp): destination vertices are split
// into kDstStripes fixed equal-width stripes, each stripe is relaxed by one
// task scanning the range in stream order, and contributions accumulate into
// one partial array per partition, merged in ascending partition order at
// iteration_end. The per-destination summation order is then a pure function
// of the graph layout — independent of thread count, of which worker owns
// which stripe, and of the order partitions are visited in — so -S/-C/-M
// produce byte-identical values_span() at any stream-thread count.
#pragma once

#include "algos/algorithm.hpp"

namespace graphm::algos {

class PageRank final : public StreamingAlgorithm {
 public:
  /// Fixed stripe count — a constant so the summation shape can never depend
  /// on the engine's pool size. Wide enough to feed the repo's largest test
  /// pools (8 workers) with slack for load balance on skewed dst
  /// distributions.
  static constexpr std::uint32_t kDstStripes = 16;

  PageRank(double damping, std::uint32_t max_iterations)
      : damping_(damping), max_iterations_(max_iterations) {}

  [[nodiscard]] std::string name() const override { return "PageRank"; }
  void init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& out_degrees,
            sim::MemoryTracker* tracker) override;
  void iteration_start(std::uint64_t iteration) override;
  [[nodiscard]] const util::AtomicBitmap& active_vertices() const override { return active_; }
  void process_edge(const graph::Edge& e) override;
  graph::EdgeCount process_edge_block(const graph::Edge* edges, graph::EdgeCount n,
                                      const util::AtomicBitmap& active) override;
  graph::EdgeCount process_edge_block_striped(const graph::Edge* edges, graph::EdgeCount n,
                                              const util::AtomicBitmap& active,
                                              std::uint32_t stripe) override;
  [[nodiscard]] bool parallel_safe() const override { return true; }
  [[nodiscard]] std::uint32_t dst_stripes() const override { return kDstStripes; }
  [[nodiscard]] std::uint32_t dst_stripe_of(graph::VertexId dst) const override {
    return stripe_of(dst);
  }
  void begin_partition(std::uint32_t pid, std::uint32_t num_partitions) override;
  void iteration_end() override;
  [[nodiscard]] bool done() const override { return iterations_done_ >= max_iterations_; }
  [[nodiscard]] std::pair<const void*, std::size_t> values_span() const override {
    return {rank_.data(), rank_.size() * sizeof(double)};
  }
  [[nodiscard]] std::vector<double> result() const override { return rank_; }

  [[nodiscard]] double damping() const { return damping_; }

 private:
  [[nodiscard]] std::uint32_t stripe_of(graph::VertexId dst) const {
    // Equal-width contiguous stripes: monotone in dst, so each stripe's
    // relaxations touch one dense slice of the accumulator.
    return static_cast<std::uint32_t>(std::uint64_t{dst} * kDstStripes / rank_.size());
  }
  /// First destination owned by `stripe` (inverse of stripe_of's floor map).
  [[nodiscard]] graph::VertexId stripe_begin(std::uint32_t stripe) const {
    return static_cast<graph::VertexId>(
        (std::uint64_t{stripe} * rank_.size() + kDstStripes - 1) / kDstStripes);
  }

  double damping_;
  std::uint32_t max_iterations_;
  std::uint32_t iterations_done_ = 0;
  std::vector<double> rank_;
  std::vector<double> next_;
  std::vector<double> contribution_;  // rank[v]/deg[v], frozen per iteration
  const std::vector<std::uint32_t>* degrees_ref_ = nullptr;
  /// Per-partition partial accumulators (allocated lazily on the first
  /// begin_partition of each partition; empty inner vector = untouched).
  /// iteration_end folds them into next_ in ascending partition order. With
  /// one partition (or no begin_partition calls at all — the engine-free
  /// oracle) accumulation goes straight into next_ and the merge is a no-op.
  std::vector<std::vector<double>> partials_;
  /// Accumulator the current partition's relaxations target: next_.data()
  /// in flat mode, partials_[pid].data() under engine partition grouping.
  double* partial_cur_ = nullptr;
  util::AtomicBitmap active_;
  sim::TrackedAllocation tracking_;
  sim::TrackedAllocation partials_tracking_;
  sim::MemoryTracker* tracker_ = nullptr;
};

}  // namespace graphm::algos
