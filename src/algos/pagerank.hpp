// PageRank with configurable damping factor and iteration count — the
// paper's network-intensive workload (every iteration traverses the whole
// graph). Push-style: each edge adds rank[src]/deg[src] into the next sums.
#pragma once

#include "algos/algorithm.hpp"

namespace graphm::algos {

class PageRank final : public StreamingAlgorithm {
 public:
  PageRank(double damping, std::uint32_t max_iterations)
      : damping_(damping), max_iterations_(max_iterations) {}

  [[nodiscard]] std::string name() const override { return "PageRank"; }
  void init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& out_degrees,
            sim::MemoryTracker* tracker) override;
  void iteration_start(std::uint64_t iteration) override;
  [[nodiscard]] const util::AtomicBitmap& active_vertices() const override { return active_; }
  void process_edge(const graph::Edge& e) override;
  graph::EdgeCount process_edge_block(const graph::Edge* edges, graph::EdgeCount n,
                                      const util::AtomicBitmap& active) override;
  // parallel_safe() stays false: next_[dst] += contribution_[src] is a
  // floating-point accumulation whose result depends on summation order, so
  // concurrent blocks would break the bit-identical determinism the engines
  // guarantee. Engines still stream PageRank through the devirtualized block
  // path — just on a single worker. (A deterministic parallel reduction is a
  // ROADMAP open item.)
  void iteration_end() override;
  [[nodiscard]] bool done() const override { return iterations_done_ >= max_iterations_; }
  [[nodiscard]] std::pair<const void*, std::size_t> values_span() const override {
    return {rank_.data(), rank_.size() * sizeof(double)};
  }
  [[nodiscard]] std::vector<double> result() const override { return rank_; }

  [[nodiscard]] double damping() const { return damping_; }

 private:
  double damping_;
  std::uint32_t max_iterations_;
  std::uint32_t iterations_done_ = 0;
  std::vector<double> rank_;
  std::vector<double> next_;
  std::vector<double> contribution_;  // rank[v]/deg[v], frozen per iteration
  const std::vector<std::uint32_t>* degrees_ref_ = nullptr;
  util::AtomicBitmap active_;
  sim::TrackedAllocation tracking_;
};

}  // namespace graphm::algos
