// Weakly connected components by iterative min-label propagation.
//
// Every iteration streams the full edge set and relaxes the label across the
// edge in both directions (weak connectivity ignores direction), so WCC is
// network-intensive like PageRank — exactly how the paper characterizes it.
// The propagation is Jacobi-style (reads come from the previous iteration's
// labels) so the outcome of an iteration-capped job is independent of the
// order partitions are streamed in — a property the cross-scheme equivalence
// tests rely on, since GraphM deliberately reorders partition loading. The
// writes into next_labels_ are atomic mins, which extends that order
// independence to concurrent block workers within one job.
// The iteration budget is a job parameter because the paper's WCC jobs run a
// random number of iterations (Section 5.1); when the budget exceeds the
// convergence point the result equals the true components (label == minimum
// vertex id in the component).
#pragma once

#include <atomic>

#include "algos/algorithm.hpp"

namespace graphm::algos {

class Wcc final : public StreamingAlgorithm {
 public:
  explicit Wcc(std::uint32_t max_iterations) : max_iterations_(max_iterations) {}

  [[nodiscard]] std::string name() const override { return "WCC"; }
  void init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& out_degrees,
            sim::MemoryTracker* tracker) override;
  void iteration_start(std::uint64_t iteration) override;
  [[nodiscard]] const util::AtomicBitmap& active_vertices() const override { return active_; }
  void process_edge(const graph::Edge& e) override;
  graph::EdgeCount process_edge_block(const graph::Edge* edges, graph::EdgeCount n,
                                      const util::AtomicBitmap& active) override;
  [[nodiscard]] bool parallel_safe() const override { return true; }
  void iteration_end() override;
  [[nodiscard]] bool done() const override {
    return converged_ || iterations_done_ >= max_iterations_;
  }
  [[nodiscard]] std::pair<const void*, std::size_t> values_span() const override {
    return {labels_.data(), labels_.size() * sizeof(graph::VertexId)};
  }
  [[nodiscard]] std::vector<double> result() const override {
    return {labels_.begin(), labels_.end()};
  }

 private:
  /// Atomic min of `label` into next_labels_[v]; order-independent, so the
  /// iteration's outcome is the same under any interleaving.
  void relax_min(graph::VertexId v, graph::VertexId label) {
    std::atomic_ref<graph::VertexId> slot(next_labels_[v]);
    graph::VertexId current = slot.load(std::memory_order_relaxed);
    while (label < current) {
      if (slot.compare_exchange_weak(current, label, std::memory_order_relaxed)) {
        changed_this_iteration_.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }

  std::uint32_t max_iterations_;
  std::uint32_t iterations_done_ = 0;
  bool converged_ = false;
  std::atomic<bool> changed_this_iteration_{false};
  std::vector<graph::VertexId> labels_;
  std::vector<graph::VertexId> next_labels_;
  util::AtomicBitmap active_;
  sim::TrackedAllocation tracking_;
};

}  // namespace graphm::algos
