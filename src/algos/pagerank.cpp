#include "algos/pagerank.hpp"

#include <algorithm>

namespace graphm::algos {

void PageRank::init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& out_degrees,
                    sim::MemoryTracker* tracker) {
  const double n = num_vertices == 0 ? 1.0 : static_cast<double>(num_vertices);
  rank_.assign(num_vertices, 1.0 / n);
  next_.assign(num_vertices, 0.0);
  contribution_.assign(num_vertices, 0.0);
  degrees_ref_ = &out_degrees;
  partials_.clear();
  partial_cur_ = next_.data();  // flat mode until an engine announces partitions
  active_ = util::AtomicBitmap(num_vertices);
  active_.set_all();
  tracker_ = tracker;
  partials_tracking_ = sim::TrackedAllocation();
  tracking_ = sim::TrackedAllocation(tracker, sim::MemoryCategory::kJobSpecific,
                                     3 * num_vertices * sizeof(double) + num_vertices / 8);
}

void PageRank::iteration_start(std::uint64_t /*iteration*/) {
  const auto& degrees = *degrees_ref_;
  for (std::size_t v = 0; v < rank_.size(); ++v) {
    contribution_[v] = degrees[v] == 0 ? 0.0 : rank_[v] / degrees[v];
    next_[v] = 0.0;
  }
  for (std::vector<double>& partial : partials_) {
    if (!partial.empty()) std::fill(partial.begin(), partial.end(), 0.0);
  }
}

void PageRank::begin_partition(std::uint32_t pid, std::uint32_t num_partitions) {
  if (num_partitions <= 1) {
    // One partition: partition grouping degenerates to the flat fold.
    partial_cur_ = next_.data();
    return;
  }
  if (partials_.empty()) partials_.resize(num_partitions);
  std::vector<double>& partial = partials_[pid];
  if (partial.empty()) {
    partial.assign(rank_.size(), 0.0);
    std::size_t allocated = 0;
    for (const std::vector<double>& p : partials_) allocated += p.size();
    partials_tracking_ = sim::TrackedAllocation(tracker_, sim::MemoryCategory::kJobSpecific,
                                                allocated * sizeof(double));
  }
  partial_cur_ = partial.data();
}

void PageRank::process_edge(const graph::Edge& e) { partial_cur_[e.dst] += contribution_[e.src]; }

graph::EdgeCount PageRank::process_edge_block(const graph::Edge* edges, graph::EdgeCount n,
                                              const util::AtomicBitmap& active) {
  const double* contribution = contribution_.data();
  double* next = partial_cur_;
  if (&active == &active_) {
    // Our own frontier is all-set by construction (PageRank touches every
    // vertex every iteration), so the gate is a tautology — drop it.
    for (graph::EdgeCount i = 0; i < n; ++i) {
      const graph::Edge& e = edges[i];
      next[e.dst] += contribution[e.src];
    }
    return n;
  }
  return gated_block_loop(edges, n, active, [contribution, next](const graph::Edge& e) {
    next[e.dst] += contribution[e.src];
  });
}

graph::EdgeCount PageRank::process_edge_block_striped(const graph::Edge* edges,
                                                      graph::EdgeCount n,
                                                      const util::AtomicBitmap& active,
                                                      std::uint32_t stripe) {
  // One stripe task scans the whole range but relaxes only its own dst
  // slice, in stream order — per destination, exactly the serial order.
  // Equal-width stripes make the ownership test two compares on a dense
  // range instead of a division per edge.
  const graph::VertexId lo = stripe_begin(stripe);
  const graph::VertexId hi = stripe_begin(stripe + 1);  // == n at the last stripe
  const double* contribution = contribution_.data();
  double* next = partial_cur_;
  if (&active == &active_) {
    graph::EdgeCount processed = 0;
    for (graph::EdgeCount i = 0; i < n; ++i) {
      const graph::Edge& e = edges[i];
      if (e.dst >= lo && e.dst < hi) {
        next[e.dst] += contribution[e.src];
        ++processed;
      }
    }
    return processed;
  }
  // Foreign frontier: gate per edge, but count only the edges this stripe
  // actually relaxed (gated_block_loop would count every source-active edge).
  util::WordCache active_words(active);
  graph::EdgeCount processed = 0;
  for (graph::EdgeCount i = 0; i < n; ++i) {
    const graph::Edge& e = edges[i];
    if (!active_words.test(e.src)) continue;
    if (e.dst >= lo && e.dst < hi) {
      next[e.dst] += contribution[e.src];
      ++processed;
    }
  }
  return processed;
}

void PageRank::iteration_end() {
  // Fixed-shape merge: partials fold into next_ in ascending partition order
  // regardless of the order partitions were streamed in. Untouched entries
  // (empty-edge partitions, flat mode) contribute nothing.
  for (const std::vector<double>& partial : partials_) {
    if (partial.empty()) continue;
    for (std::size_t v = 0; v < next_.size(); ++v) next_[v] += partial[v];
  }
  const double n = rank_.empty() ? 1.0 : static_cast<double>(rank_.size());
  for (std::size_t v = 0; v < rank_.size(); ++v) {
    rank_[v] = (1.0 - damping_) / n + damping_ * next_[v];
  }
  ++iterations_done_;
}

}  // namespace graphm::algos
