#include "algos/pagerank.hpp"

namespace graphm::algos {

void PageRank::init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& out_degrees,
                    sim::MemoryTracker* tracker) {
  const double n = num_vertices == 0 ? 1.0 : static_cast<double>(num_vertices);
  rank_.assign(num_vertices, 1.0 / n);
  next_.assign(num_vertices, 0.0);
  contribution_.assign(num_vertices, 0.0);
  degrees_ref_ = &out_degrees;
  active_ = util::AtomicBitmap(num_vertices);
  active_.set_all();
  tracking_ = sim::TrackedAllocation(tracker, sim::MemoryCategory::kJobSpecific,
                                     3 * num_vertices * sizeof(double) + num_vertices / 8);
}

void PageRank::iteration_start(std::uint64_t /*iteration*/) {
  const auto& degrees = *degrees_ref_;
  for (std::size_t v = 0; v < rank_.size(); ++v) {
    contribution_[v] = degrees[v] == 0 ? 0.0 : rank_[v] / degrees[v];
    next_[v] = 0.0;
  }
}

void PageRank::process_edge(const graph::Edge& e) { next_[e.dst] += contribution_[e.src]; }

graph::EdgeCount PageRank::process_edge_block(const graph::Edge* edges, graph::EdgeCount n,
                                              const util::AtomicBitmap& active) {
  const double* contribution = contribution_.data();
  double* next = next_.data();
  if (&active == &active_) {
    // Our own frontier is all-set by construction (PageRank touches every
    // vertex every iteration), so the gate is a tautology — drop it.
    for (graph::EdgeCount i = 0; i < n; ++i) {
      const graph::Edge& e = edges[i];
      next[e.dst] += contribution[e.src];
    }
    return n;
  }
  return gated_block_loop(edges, n, active, [contribution, next](const graph::Edge& e) {
    next[e.dst] += contribution[e.src];
  });
}

void PageRank::iteration_end() {
  const double n = rank_.empty() ? 1.0 : static_cast<double>(rank_.size());
  for (std::size_t v = 0; v < rank_.size(); ++v) {
    rank_[v] = (1.0 - damping_) / n + damping_ * next_[v];
  }
  ++iterations_done_;
}

}  // namespace graphm::algos
