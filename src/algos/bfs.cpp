#include "algos/bfs.hpp"

namespace graphm::algos {

void Bfs::init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& /*out_degrees*/,
               sim::MemoryTracker* tracker) {
  levels_.assign(num_vertices, kUnreached);
  frontier_ = util::AtomicBitmap(num_vertices);
  next_frontier_ = util::AtomicBitmap(num_vertices);
  if (root_ < num_vertices) {
    levels_[root_] = 0;
    frontier_.set(root_);
  } else {
    done_ = true;
  }
  tracking_ = sim::TrackedAllocation(tracker, sim::MemoryCategory::kJobSpecific,
                                     num_vertices * sizeof(std::uint32_t) + num_vertices / 4);
}

void Bfs::iteration_start(std::uint64_t /*iteration*/) { next_frontier_.clear_all(); }

graph::EdgeCount Bfs::process_edge_block(const graph::Edge* edges, graph::EdgeCount n,
                                         const util::AtomicBitmap& active) {
  return gated_block_loop(edges, n, active, [this](const graph::Edge& e) { relax(e.dst); });
}

void Bfs::iteration_end() {
  ++current_level_;
  std::swap(frontier_, next_frontier_);
  done_ = !frontier_.any();
}

}  // namespace graphm::algos
