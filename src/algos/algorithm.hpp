// The vertex-program contract every engine in this repository streams edges
// through. A job = one StreamingAlgorithm instance; all job-specific data
// (the paper's `S`) lives inside the instance, while the graph structure
// data (`G`) is owned by the engine/storage layer — the decoupling GraphM's
// Share-Synchronize mechanism relies on (Section 3.1).
//
// Execution protocol (driven by the engine):
//   init(n, out_degrees, tracker)
//   while (!done()):
//     iteration_start(iter)
//     for every streamed edge block [e0, e0+n):
//       process_edge_block(e0, n, active_vertices())  // relaxes edges whose
//                                                     // source is active
//     iteration_end()
//
// process_edge_block is the hot path: engines hand the algorithm whole chunk
// blocks and the algorithm runs a tight non-virtual inner loop (one virtual
// dispatch per block instead of per edge, frontier words loaded 64 sources at
// a time). The per-edge process_edge remains the semantic definition and the
// default block implementation falls back to it. See docs/streaming.md for
// the full contract, including the thread-safety rules parallel_safe()
// opts into.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "sim/memory_tracker.hpp"
#include "util/bitmap.hpp"

namespace graphm::algos {

/// The canonical gated block loop the built-in process_edge_block overrides
/// share: one cached-frontier-word test per edge, relax the active ones,
/// count them. `relax` is a functor taking (const graph::Edge&); with the
/// override calling this directly the functor inlines, keeping the loop
/// devirtualized. One definition keeps the gating/counting contract — which
/// the equivalence tests pin against the scalar fallback — in one place.
template <typename Relax>
graph::EdgeCount gated_block_loop(const graph::Edge* edges, graph::EdgeCount n,
                                  const util::AtomicBitmap& active, Relax&& relax) {
  util::WordCache active_words(active);
  graph::EdgeCount processed = 0;
  for (graph::EdgeCount i = 0; i < n; ++i) {
    const graph::Edge& e = edges[i];
    if (!active_words.test(e.src)) continue;
    relax(e);
    ++processed;
  }
  return processed;
}

class StreamingAlgorithm {
 public:
  virtual ~StreamingAlgorithm() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Allocates job-specific state; `tracker` (may be null) records it under
  /// MemoryCategory::kJobSpecific.
  virtual void init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& out_degrees,
                    sim::MemoryTracker* tracker) = 0;

  virtual void iteration_start(std::uint64_t iteration) = 0;

  /// Source-side active set for the current iteration. Engines use it both
  /// for selective scheduling (skip partitions with no active sources) and to
  /// gate process_edge.
  [[nodiscard]] virtual const util::AtomicBitmap& active_vertices() const = 0;

  /// Relaxes one edge whose source is active. Must only touch job-local
  /// state — the graph buffer may be shared with other jobs.
  virtual void process_edge(const graph::Edge& e) = 0;

  /// Streams a block of `n` edges, relaxing every edge whose source bit is
  /// set in `active`; returns the number of edges relaxed. The default
  /// implementation gates each edge with active.get and calls process_edge —
  /// the scalar fallback the equivalence tests pin overrides against.
  /// Overrides must be observably identical to that fallback.
  ///
  /// When parallel_safe() is true, engines may invoke this concurrently from
  /// several worker threads on disjoint blocks of the same iteration.
  virtual graph::EdgeCount process_edge_block(const graph::Edge* edges, graph::EdgeCount n,
                                              const util::AtomicBitmap& active);

  /// True iff concurrent process_edge_block / process_edge calls within one
  /// iteration are safe AND leave a state independent of the interleaving
  /// (order-independent relaxations: atomic min, idempotent writes). Engines
  /// only fan a job's blocks across a thread pool when this holds; ordering-
  /// sensitive algorithms (floating-point accumulation) keep the serial block
  /// path so results stay bit-identical at any thread count.
  [[nodiscard]] virtual bool parallel_safe() const { return false; }

  virtual void iteration_end() = 0;

  [[nodiscard]] virtual bool done() const = 0;

  /// The job-specific value array (for LLC modeling of `S` accesses and for
  /// result comparison). Second = bytes.
  [[nodiscard]] virtual std::pair<const void*, std::size_t> values_span() const = 0;

  /// Result vector as doubles, for cross-scheme equivalence checks.
  [[nodiscard]] virtual std::vector<double> result() const = 0;
};

}  // namespace graphm::algos
