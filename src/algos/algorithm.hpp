// The vertex-program contract every engine in this repository streams edges
// through. A job = one StreamingAlgorithm instance; all job-specific data
// (the paper's `S`) lives inside the instance, while the graph structure
// data (`G`) is owned by the engine/storage layer — the decoupling GraphM's
// Share-Synchronize mechanism relies on (Section 3.1).
//
// Execution protocol (driven by the engine):
//   init(n, out_degrees, tracker)
//   while (!done()):
//     iteration_start(iter)
//     for every streamed edge block [e0, e0+n):
//       process_edge_block(e0, n, active_vertices())  // relaxes edges whose
//                                                     // source is active
//     iteration_end()
//
// process_edge_block is the hot path: engines hand the algorithm whole chunk
// blocks and the algorithm runs a tight non-virtual inner loop (one virtual
// dispatch per block instead of per edge, frontier words loaded 64 sources at
// a time). The per-edge process_edge remains the semantic definition and the
// default block implementation falls back to it. See docs/streaming.md for
// the full contract, including the thread-safety rules parallel_safe()
// opts into.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "sim/memory_tracker.hpp"
#include "util/bitmap.hpp"

namespace graphm::algos {

/// The canonical gated block loop the built-in process_edge_block overrides
/// share: one cached-frontier-word test per edge, relax the active ones,
/// count them. `relax` is a functor taking (const graph::Edge&); with the
/// override calling this directly the functor inlines, keeping the loop
/// devirtualized. One definition keeps the gating/counting contract — which
/// the equivalence tests pin against the scalar fallback — in one place.
template <typename Relax>
graph::EdgeCount gated_block_loop(const graph::Edge* edges, graph::EdgeCount n,
                                  const util::AtomicBitmap& active, Relax&& relax) {
  util::WordCache active_words(active);
  graph::EdgeCount processed = 0;
  for (graph::EdgeCount i = 0; i < n; ++i) {
    const graph::Edge& e = edges[i];
    if (!active_words.test(e.src)) continue;
    relax(e);
    ++processed;
  }
  return processed;
}

class StreamingAlgorithm {
 public:
  virtual ~StreamingAlgorithm() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Allocates job-specific state; `tracker` (may be null) records it under
  /// MemoryCategory::kJobSpecific.
  virtual void init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& out_degrees,
                    sim::MemoryTracker* tracker) = 0;

  virtual void iteration_start(std::uint64_t iteration) = 0;

  /// Source-side active set for the current iteration. Engines use it both
  /// for selective scheduling (skip partitions with no active sources) and to
  /// gate process_edge.
  [[nodiscard]] virtual const util::AtomicBitmap& active_vertices() const = 0;

  /// Relaxes one edge whose source is active. Must only touch job-local
  /// state — the graph buffer may be shared with other jobs.
  virtual void process_edge(const graph::Edge& e) = 0;

  /// Streams a block of `n` edges, relaxing every edge whose source bit is
  /// set in `active`; returns the number of edges relaxed. The default
  /// implementation gates each edge with active.get and calls process_edge —
  /// the scalar fallback the equivalence tests pin overrides against.
  /// Overrides must be observably identical to that fallback.
  ///
  /// When parallel_safe() is true and dst_stripes() == 0, engines may invoke
  /// this concurrently from several worker threads on disjoint blocks of the
  /// same iteration. Striped algorithms (dst_stripes() > 0) are fanned out
  /// via process_edge_block_striped instead; their plain block calls stay
  /// serial.
  virtual graph::EdgeCount process_edge_block(const graph::Edge* edges, graph::EdgeCount n,
                                              const util::AtomicBitmap& active);

  /// True iff the engine may fan this job's relaxations across a thread pool
  /// without changing the result at any thread count. Two ways to qualify:
  ///
  ///  * dst_stripes() == 0 — concurrent process_edge_block / process_edge
  ///    calls on disjoint blocks are safe AND leave a state independent of
  ///    the interleaving (order-independent relaxations: atomic min,
  ///    idempotent writes).
  ///  * dst_stripes() > 0 — striped accumulation: the engine partitions the
  ///    fan-out by destination stripe (process_edge_block_striped), never by
  ///    block, so an order-sensitive reduction stays deterministic. See below.
  [[nodiscard]] virtual bool parallel_safe() const { return false; }

  // -------------------------------------------------------------------------
  // Striped accumulation — the deterministic parallel mode for algorithms
  // whose relaxation is an order-sensitive reduction (PageRank's
  // floating-point `next[dst] += contribution[src]`).
  //
  // Ownership rule: destination vertices are split into dst_stripes() fixed
  // stripes — a pure function of the graph, never of the thread count — and
  // each stripe is relaxed by exactly one task that scans the range in
  // stream order. A given destination's contributions therefore arrive in
  // exactly the order the serial scan would deliver them, no matter how many
  // workers the engine owns or which worker picks up which stripe, so the
  // result is bit-identical to the serial block path at any thread count.
  //
  // Partition grouping: engines additionally announce each partition with
  // begin_partition() before streaming its chunks. Algorithms that
  // accumulate use it to keep one partial accumulator per partition and
  // merge them in ascending partition order at iteration_end — a fixed-shape
  // reduction keyed by the graph layout, not by arrival order — so the
  // result is also independent of the order partitions are visited in
  // (GraphM's scheduler reorders loads; mid-round attaches rotate a job's
  // traversal). Drivers that never call begin_partition (the engine-free
  // reference oracle, the job profiler) get the flat single-group behaviour.
  // -------------------------------------------------------------------------

  /// Number of destination stripes for striped accumulation; 0 (default)
  /// means the algorithm does not use the striped mode. Must be constant for
  /// the lifetime of the instance and independent of any engine/thread
  /// configuration.
  [[nodiscard]] virtual std::uint32_t dst_stripes() const { return 0; }

  /// Maps a destination vertex to its owning stripe, < dst_stripes(). Must be
  /// a pure function of (dst, init-time inputs). Only meaningful when
  /// dst_stripes() > 0.
  [[nodiscard]] virtual std::uint32_t dst_stripe_of(graph::VertexId dst) const {
    (void)dst;
    return 0;
  }

  /// Streams a block like process_edge_block but relaxes only the edges whose
  /// destination lies in `stripe` (source gating unchanged); returns the
  /// number relaxed. Engines may call this concurrently for *different*
  /// stripes of the same range; calls for the same stripe are serial and in
  /// stream order. The default gates per edge via dst_stripe_of + process_edge
  /// (the scalar fallback, observably identical to any override).
  virtual graph::EdgeCount process_edge_block_striped(const graph::Edge* edges,
                                                      graph::EdgeCount n,
                                                      const util::AtomicBitmap& active,
                                                      std::uint32_t stripe);

  /// Announces that the edges streamed until the next begin_partition (or
  /// iteration end) belong to partition `pid` of `num_partitions`. Called by
  /// engines on the job's own thread, before the partition's first chunk,
  /// once per partition per iteration. Default: ignored.
  virtual void begin_partition(std::uint32_t pid, std::uint32_t num_partitions) {
    (void)pid;
    (void)num_partitions;
  }

  virtual void iteration_end() = 0;

  [[nodiscard]] virtual bool done() const = 0;

  /// The job-specific value array (for LLC modeling of `S` accesses and for
  /// result comparison). Second = bytes.
  [[nodiscard]] virtual std::pair<const void*, std::size_t> values_span() const = 0;

  /// Result vector as doubles, for cross-scheme equivalence checks.
  [[nodiscard]] virtual std::vector<double> result() const = 0;
};

}  // namespace graphm::algos
