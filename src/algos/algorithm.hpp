// The vertex-program contract every engine in this repository streams edges
// through. A job = one StreamingAlgorithm instance; all job-specific data
// (the paper's `S`) lives inside the instance, while the graph structure
// data (`G`) is owned by the engine/storage layer — the decoupling GraphM's
// Share-Synchronize mechanism relies on (Section 3.1).
//
// Execution protocol (driven by the engine):
//   init(n, out_degrees, tracker)
//   while (!done()):
//     iteration_start(iter)
//     for every streamed edge e with active_vertices().get(e.src):
//       process_edge(e)              // may activate e.dst for next iteration
//     iteration_end()
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "sim/memory_tracker.hpp"
#include "util/bitmap.hpp"

namespace graphm::algos {

class StreamingAlgorithm {
 public:
  virtual ~StreamingAlgorithm() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Allocates job-specific state; `tracker` (may be null) records it under
  /// MemoryCategory::kJobSpecific.
  virtual void init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& out_degrees,
                    sim::MemoryTracker* tracker) = 0;

  virtual void iteration_start(std::uint64_t iteration) = 0;

  /// Source-side active set for the current iteration. Engines use it both
  /// for selective scheduling (skip partitions with no active sources) and to
  /// gate process_edge.
  [[nodiscard]] virtual const util::AtomicBitmap& active_vertices() const = 0;

  /// Relaxes one edge whose source is active. Must only touch job-local
  /// state — the graph buffer may be shared with other jobs.
  virtual void process_edge(const graph::Edge& e) = 0;

  virtual void iteration_end() = 0;

  [[nodiscard]] virtual bool done() const = 0;

  /// The job-specific value array (for LLC modeling of `S` accesses and for
  /// result comparison). Second = bytes.
  [[nodiscard]] virtual std::pair<const void*, std::size_t> values_span() const = 0;

  /// Result vector as doubles, for cross-scheme equivalence checks.
  [[nodiscard]] virtual std::vector<double> result() const = 0;
};

}  // namespace graphm::algos
