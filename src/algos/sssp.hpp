// Single-source shortest paths (frontier-driven Bellman-Ford relaxation).
// Converges to exact distances; the min-relaxation is order-independent so
// results are identical under every execution scheme.
#pragma once

#include "algos/algorithm.hpp"

namespace graphm::algos {

class Sssp final : public StreamingAlgorithm {
 public:
  explicit Sssp(graph::VertexId root) : root_(root) {}

  [[nodiscard]] std::string name() const override { return "SSSP"; }
  void init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& out_degrees,
            sim::MemoryTracker* tracker) override;
  void iteration_start(std::uint64_t iteration) override;
  [[nodiscard]] const util::AtomicBitmap& active_vertices() const override { return frontier_; }
  void process_edge(const graph::Edge& e) override;
  void iteration_end() override;
  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] std::pair<const void*, std::size_t> values_span() const override {
    return {distance_.data(), distance_.size() * sizeof(float)};
  }
  [[nodiscard]] std::vector<double> result() const override {
    return {distance_.begin(), distance_.end()};
  }

  static constexpr float kInfinity = 3.4e38f;

 private:
  graph::VertexId root_;
  bool done_ = false;
  std::vector<float> distance_;
  util::AtomicBitmap frontier_;
  util::AtomicBitmap next_frontier_;
  sim::TrackedAllocation tracking_;
};

}  // namespace graphm::algos
