// Single-source shortest paths (frontier-driven Bellman-Ford relaxation).
// Converges to exact distances; the min-relaxation is order-independent so
// results are identical under every execution scheme.
//
// Relaxation is Jacobi-style: candidates are computed from the previous
// iteration's distances (frozen in prev_distance_) and applied to distance_
// with an atomic min. That makes an iteration's outcome — final distances
// AND the next frontier — independent of the order edges are streamed in,
// which is what lets engines fan this job's edge blocks across a thread pool
// while staying bit-identical to the serial path.
#pragma once

#include <atomic>

#include "algos/algorithm.hpp"

namespace graphm::algos {

class Sssp final : public StreamingAlgorithm {
 public:
  explicit Sssp(graph::VertexId root) : root_(root) {}

  [[nodiscard]] std::string name() const override { return "SSSP"; }
  void init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& out_degrees,
            sim::MemoryTracker* tracker) override;
  void iteration_start(std::uint64_t iteration) override;
  [[nodiscard]] const util::AtomicBitmap& active_vertices() const override { return frontier_; }
  void process_edge(const graph::Edge& e) override { relax(e); }
  graph::EdgeCount process_edge_block(const graph::Edge* edges, graph::EdgeCount n,
                                      const util::AtomicBitmap& active) override;
  [[nodiscard]] bool parallel_safe() const override { return true; }
  void iteration_end() override;
  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] std::pair<const void*, std::size_t> values_span() const override {
    return {distance_.data(), distance_.size() * sizeof(float)};
  }
  [[nodiscard]] std::vector<double> result() const override {
    return {distance_.begin(), distance_.end()};
  }

  static constexpr float kInfinity = 3.4e38f;

 private:
  /// Atomic min into distance_[e.dst]; activates e.dst iff this call lowered
  /// the value. Min is order-independent, so any interleaving of concurrent
  /// relax calls yields the same distances and the same next frontier.
  void relax(const graph::Edge& e) {
    const float candidate = prev_distance_[e.src] + e.weight;
    std::atomic_ref<float> dist(distance_[e.dst]);
    float current = dist.load(std::memory_order_relaxed);
    while (candidate < current) {
      if (dist.compare_exchange_weak(current, candidate, std::memory_order_relaxed)) {
        next_frontier_.set(e.dst);
        return;
      }
    }
  }

  graph::VertexId root_;
  bool done_ = false;
  std::vector<float> distance_;
  std::vector<float> prev_distance_;  // frozen copy read during an iteration
  util::AtomicBitmap frontier_;
  util::AtomicBitmap next_frontier_;
  sim::TrackedAllocation tracking_;
};

}  // namespace graphm::algos
