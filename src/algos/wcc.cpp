#include "algos/wcc.hpp"

#include <numeric>

namespace graphm::algos {

void Wcc::init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& /*out_degrees*/,
               sim::MemoryTracker* tracker) {
  labels_.resize(num_vertices);
  std::iota(labels_.begin(), labels_.end(), graph::VertexId{0});
  next_labels_ = labels_;
  active_ = util::AtomicBitmap(num_vertices);
  active_.set_all();
  tracking_ = sim::TrackedAllocation(tracker, sim::MemoryCategory::kJobSpecific,
                                     2 * num_vertices * sizeof(graph::VertexId) +
                                         num_vertices / 8);
}

void Wcc::iteration_start(std::uint64_t /*iteration*/) {
  changed_this_iteration_.store(false, std::memory_order_relaxed);
  next_labels_ = labels_;
}

void Wcc::process_edge(const graph::Edge& e) {
  // Jacobi min-relax in both directions: reads go to the previous iteration's
  // labels so the result is independent of edge/partition streaming order.
  const graph::VertexId ls = labels_[e.src];
  const graph::VertexId ld = labels_[e.dst];
  if (ls < ld) {
    relax_min(e.dst, ls);
  } else if (ld < ls) {
    relax_min(e.src, ld);
  }
}

graph::EdgeCount Wcc::process_edge_block(const graph::Edge* edges, graph::EdgeCount n,
                                         const util::AtomicBitmap& active) {
  const graph::VertexId* labels = labels_.data();
  if (&active == &active_) {
    // Our own active set is all-set by construction — drop the per-edge gate.
    // The relax direction is data-random before convergence, so it is chosen
    // with selects (cmov) behind one unequal-labels branch that converges to
    // predictable-false.
    for (graph::EdgeCount i = 0; i < n; ++i) {
      const graph::Edge& e = edges[i];
      const graph::VertexId ls = labels[e.src];
      const graph::VertexId ld = labels[e.dst];
      if (ls != ld) {
        relax_min(ls < ld ? e.dst : e.src, ls < ld ? ls : ld);
      }
    }
    return n;
  }
  return gated_block_loop(edges, n, active, [this, labels](const graph::Edge& e) {
    const graph::VertexId ls = labels[e.src];
    const graph::VertexId ld = labels[e.dst];
    if (ls != ld) {
      relax_min(ls < ld ? e.dst : e.src, ls < ld ? ls : ld);
    }
  });
}

void Wcc::iteration_end() {
  labels_.swap(next_labels_);
  ++iterations_done_;
  if (!changed_this_iteration_.load(std::memory_order_relaxed)) converged_ = true;
}

}  // namespace graphm::algos
