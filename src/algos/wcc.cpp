#include "algos/wcc.hpp"

#include <numeric>

namespace graphm::algos {

void Wcc::init(graph::VertexId num_vertices, const std::vector<std::uint32_t>& /*out_degrees*/,
               sim::MemoryTracker* tracker) {
  labels_.resize(num_vertices);
  std::iota(labels_.begin(), labels_.end(), graph::VertexId{0});
  next_labels_ = labels_;
  active_ = util::AtomicBitmap(num_vertices);
  active_.set_all();
  tracking_ = sim::TrackedAllocation(tracker, sim::MemoryCategory::kJobSpecific,
                                     2 * num_vertices * sizeof(graph::VertexId) +
                                         num_vertices / 8);
}

void Wcc::iteration_start(std::uint64_t /*iteration*/) {
  changed_this_iteration_ = false;
  next_labels_ = labels_;
}

void Wcc::process_edge(const graph::Edge& e) {
  // Jacobi min-relax in both directions: reads go to the previous iteration's
  // labels so the result is independent of edge/partition streaming order.
  const graph::VertexId ls = labels_[e.src];
  const graph::VertexId ld = labels_[e.dst];
  if (ls < next_labels_[e.dst]) {
    next_labels_[e.dst] = ls;
    changed_this_iteration_ = true;
  }
  if (ld < next_labels_[e.src]) {
    next_labels_[e.src] = ld;
    changed_this_iteration_ = true;
  }
}

void Wcc::iteration_end() {
  labels_.swap(next_labels_);
  ++iterations_done_;
  if (!changed_this_iteration_) converged_ = true;
}

}  // namespace graphm::algos
