#include "algos/factory.hpp"

#include <sstream>

#include "algos/bfs.hpp"
#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "algos/wcc.hpp"
#include "util/rng.hpp"

namespace graphm::algos {

const char* to_string(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kPageRank: return "PageRank";
    case AlgorithmKind::kWcc: return "WCC";
    case AlgorithmKind::kBfs: return "BFS";
    case AlgorithmKind::kSssp: return "SSSP";
  }
  return "?";
}

std::string JobSpec::label() const {
  std::ostringstream oss;
  oss << to_string(kind);
  switch (kind) {
    case AlgorithmKind::kPageRank:
      oss << "(d=" << damping << ",it=" << max_iterations << ")";
      break;
    case AlgorithmKind::kWcc:
      oss << "(it<=" << max_iterations << ")";
      break;
    case AlgorithmKind::kBfs:
    case AlgorithmKind::kSssp:
      oss << "(root=" << root << ")";
      break;
  }
  return oss.str();
}

std::unique_ptr<StreamingAlgorithm> make_algorithm(const JobSpec& spec) {
  switch (spec.kind) {
    case AlgorithmKind::kPageRank:
      return std::make_unique<PageRank>(spec.damping, spec.max_iterations);
    case AlgorithmKind::kWcc:
      return std::make_unique<Wcc>(spec.max_iterations);
    case AlgorithmKind::kBfs:
      return std::make_unique<Bfs>(spec.root);
    case AlgorithmKind::kSssp:
      return std::make_unique<Sssp>(spec.root);
  }
  return nullptr;
}

JobSpec random_job_spec(std::size_t index, graph::VertexId num_vertices, std::uint64_t seed) {
  // "we submit WCC, PageRank, SSSP, and BFS in turn ... where the parameters
  // are randomly set for different jobs" (Section 5.1).
  util::SplitMix64 rng(seed ^ (0x9E3779B9ULL * (index + 1)));
  JobSpec spec;
  switch (index % 4) {
    case 0:
      spec.kind = AlgorithmKind::kWcc;
      spec.max_iterations = 1 + static_cast<std::uint32_t>(rng.next_below(24));
      break;
    case 1:
      spec.kind = AlgorithmKind::kPageRank;
      spec.damping = rng.next_double(0.1, 0.85);
      spec.max_iterations = 6 + static_cast<std::uint32_t>(rng.next_below(6));
      break;
    case 2:
      spec.kind = AlgorithmKind::kSssp;
      spec.root = static_cast<graph::VertexId>(rng.next_below(num_vertices));
      break;
    default:
      spec.kind = AlgorithmKind::kBfs;
      spec.root = static_cast<graph::VertexId>(rng.next_below(num_vertices));
      break;
  }
  return spec;
}

}  // namespace graphm::algos
