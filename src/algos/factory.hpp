// Job specifications and the algorithm factory. A JobSpec is the unit the
// runtime submits: which algorithm, with which (paper-style randomized)
// parameters — damping factor in [0.1, 0.85] for PageRank, random roots for
// BFS/SSSP, random iteration budgets for WCC (Section 5.1).
#pragma once

#include <memory>
#include <string>

#include "algos/algorithm.hpp"

namespace graphm::algos {

enum class AlgorithmKind : int { kPageRank = 0, kWcc = 1, kBfs = 2, kSssp = 3 };

const char* to_string(AlgorithmKind kind);

struct JobSpec {
  AlgorithmKind kind = AlgorithmKind::kPageRank;
  double damping = 0.85;             // PageRank
  std::uint32_t max_iterations = 10; // PageRank / WCC budget
  graph::VertexId root = 0;          // BFS / SSSP

  [[nodiscard]] std::string label() const;
};

std::unique_ptr<StreamingAlgorithm> make_algorithm(const JobSpec& spec);

/// Draws a randomized spec the way the paper does: algorithms submitted in
/// turn (WCC, PageRank, SSSP, BFS), parameters randomized per job.
JobSpec random_job_spec(std::size_t index, graph::VertexId num_vertices, std::uint64_t seed);

}  // namespace graphm::algos
