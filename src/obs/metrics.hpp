// The metrics half of the observability substrate (src/obs/): named
// counters, gauges and log-bucketed histograms behind one registry with a
// single JSON snapshot call.
//
// Every serving surface reports through instruments instead of inventing its
// own stat structs: the JobService re-homes its submit/reject/finish counters
// and the sharing economy here, the cluster service publishes its
// fault/failover outcomes, and the simulated platform's page-cache/LLC
// totals land as gauges. Instrument names follow `layer.component.metric`
// (docs/observability.md) so a dashboard or test can address any counter in
// the system by one stable string.
//
// Design constraints (the overhead contract):
//  * recording is lock-free — counters/gauges are single atomics, a
//    histogram record is one relaxed fetch_add into a fixed bucket array
//    plus sum/min/max maintenance; nothing allocates after the instrument
//    exists;
//  * histograms are bounded: ~15 KB each regardless of how many samples they
//    absorb, which is what lets per-job stats hold at millions of jobs where
//    the old store-every-outcome vectors grew without limit;
//  * bucket resolution is logarithmic (32 sub-buckets per power of two,
//    ~3.1% relative width), so p50/p95/p99 are within one bucket width of
//    the exact nearest-rank value — the accuracy contract
//    tests/test_obs.cpp pins on adversarial distributions.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/annotations.hpp"

namespace graphm::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void increment() { add(1); }
  /// Publish-style overwrite for components that keep their own totals and
  /// re-home them at snapshot time (FaultStats, sim counters).
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous level (queue depth, resident bytes, ...).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-bucketed histogram over non-negative 64-bit samples.
///
/// Bucket layout: values below 2^kSubBucketBits get one exact bucket each;
/// above that, every power-of-two octave is split into 2^kSubBucketBits
/// sub-buckets, so the relative bucket width is 2^-kSubBucketBits (~3.1%).
/// The layout is a pure function of the value, which makes merging two
/// histograms a bucket-wise add — associative and commutative by
/// construction (the merge test pins it).
class Histogram {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ULL << kSubBucketBits;
  /// Highest index + 1: values with exponent 63 land in octave group
  /// 64 - kSubBucketBits, so the array spans 64 - kSubBucketBits + 1 groups
  /// of kSubBuckets buckets each.
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>((64 - kSubBucketBits + 1) << kSubBucketBits);

  /// Bucket index holding `v` (total over [0, 2^64)).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v);
  /// Inclusive lower bound of bucket `index`.
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t index);
  /// Width of bucket `index` (upper bound = lower + width, exclusive).
  [[nodiscard]] static std::uint64_t bucket_width(std::size_t index);

  void record(std::uint64_t v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t min() const;  // 0 when empty
  [[nodiscard]] std::uint64_t max() const;  // 0 when empty
  [[nodiscard]] double mean() const;

  /// Nearest-rank quantile estimate (same rank convention as
  /// service::summarize_latency): the midpoint of the bucket containing the
  /// rank, hence within one bucket width of the exact order statistic.
  [[nodiscard]] double quantile(double q) const;

  /// Bucket-wise accumulate of `other` into this histogram.
  void merge(const Histogram& other);

  /// Zeroes every bucket and the count/sum/min/max accumulators — O(buckets),
  /// not O(samples). Not atomic with respect to concurrent record() calls;
  /// owners that rotate (obs::WindowedHistogram) serialize reset against
  /// recording themselves.
  void reset();

  /// Raw bucket count (tests and exporters).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
};

/// Named instruments, created on first use and stable for the registry's
/// lifetime (references handed out never dangle or move). Snapshot is one
/// JSON object over every instrument, sorted by name.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Convenience for refresh-on-snapshot publishing.
  void set_gauge(std::string_view name, std::int64_t v) { gauge(name).set(v); }
  void set_counter(std::string_view name, std::uint64_t v);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,p50,
  /// p95,p99,max},...}} — machine-readable, stable key order.
  [[nodiscard]] std::string json() const;

  /// The process-wide registry (components that have no natural owner).
  static Registry& global();

 private:
  mutable Mutex mutex_;  // guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mutex_);
};

}  // namespace graphm::obs
