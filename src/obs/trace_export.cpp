#include "obs/trace_export.hpp"

#include <algorithm>

namespace graphm::obs {

namespace {

void write_escaped(std::FILE* f, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      std::fputc('\\', f);
      std::fputc(c, f);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(f, "\\u%04x", c);
    } else {
      std::fputc(c, f);
    }
  }
}

void write_meta(std::FILE* f, const char* kind, std::uint32_t pid, std::int64_t tid,
                const std::string& name, bool* first) {
  std::fprintf(f, "%s\n  {\"name\": \"%s\", \"ph\": \"M\", \"pid\": %u", *first ? "" : ",",
               kind, pid);
  *first = false;
  if (tid >= 0) std::fprintf(f, ", \"tid\": %lld", static_cast<long long>(tid));
  std::fprintf(f, ", \"args\": {\"name\": \"");
  write_escaped(f, name.c_str());
  std::fprintf(f, "\"}}");
}

void write_event(std::FILE* f, std::uint32_t pid, const TraceEvent& e, bool* first) {
  std::fprintf(f, "%s\n  {\"name\": \"", *first ? "" : ",");
  *first = false;
  write_escaped(f, e.name);
  std::fprintf(f, "\", \"ph\": \"%c\", \"pid\": %u, \"tid\": %u, \"ts\": %.3f", e.phase,
               pid, e.track, static_cast<double>(e.ts_ns) / 1000.0);
  if (e.phase == 'X') {
    std::fprintf(f, ", \"dur\": %.3f", static_cast<double>(e.dur_ns) / 1000.0);
  }
  if (e.phase == 'b' || e.phase == 'e') {
    // Async pairs match on (cat, id); the job id is the natural key.
    std::fprintf(f, ", \"cat\": \"job\", \"id\": %u", e.job);
  }
  if (e.phase == 'i') std::fprintf(f, ", \"s\": \"t\"");
  std::fprintf(f, ", \"args\": {\"job\": %u, \"detail\": %llu}}", e.job,
               static_cast<unsigned long long>(e.detail));
}

}  // namespace

bool write_chrome_trace(std::FILE* f, const std::vector<TraceProcess>& processes) {
  std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
  bool first = true;
  for (const TraceProcess& process : processes) {
    write_meta(f, "process_name", process.pid, -1, process.name, &first);
    for (std::size_t t = 0; t < process.tracks.size(); ++t) {
      write_meta(f, "thread_name", process.pid, static_cast<std::int64_t>(t),
                 process.tracks[t], &first);
    }
    std::vector<TraceEvent> events = process.events;
    // (ts asc, dur desc): a parent span sorts before the children it
    // encloses, the order the viewers' nesting validators expect.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                       return a.dur_ns > b.dur_ns;
                     });
    for (const TraceEvent& event : events) {
      write_event(f, process.pid, event, &first);
    }
  }
  std::fprintf(f, "\n]}\n");
  return std::ferror(f) == 0;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<TraceProcess>& processes) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = write_chrome_trace(f, processes);
  return std::fclose(f) == 0 && ok;
}

bool export_tracer(const std::string& path, const Tracer& tracer,
                   const std::string& process_name) {
  TraceProcess process;
  process.pid = 1;
  process.name = process_name;
  process.tracks = tracer.track_names();
  process.events = tracer.snapshot();
  return write_chrome_trace(path, {std::move(process)});
}

}  // namespace graphm::obs
