#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"

namespace graphm::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<std::uint64_t> next_tracer_id{1};

/// Per-thread ring cache, keyed by tracer id so a recycled Tracer address
/// can never alias a stale cache entry.
struct ThreadRingCache {
  std::uint64_t tracer_id = 0;
  void* ring = nullptr;
  std::uint32_t thread_track = 0xFFFFFFFFu;  // lazily interned
};
thread_local ThreadRingCache t_ring_cache;

}  // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : tracer_id_(next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      ring_capacity_(std::max<std::size_t>(16, ring_capacity)),
      epoch_ns_(steady_now_ns()) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() const { return steady_now_ns() - epoch_ns_; }

std::uint32_t Tracer::track(std::string_view name) {
  MutexLock lock(registry_mutex_);
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return static_cast<std::uint32_t>(i);
  }
  tracks_.emplace_back(name);
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

Tracer::Ring& Tracer::this_thread_ring() {
  if (t_ring_cache.tracer_id == tracer_id_) {
    return *static_cast<Ring*>(t_ring_cache.ring);
  }
  MutexLock lock(registry_mutex_);
  Ring& ring = rings_.emplace_back(ring_capacity_);
  t_ring_cache = {tracer_id_, &ring, 0xFFFFFFFFu};
  return ring;
}

std::uint32_t Tracer::thread_track() {
  // The first event on a thread creates its ring, so the ring index is a
  // stable small integer per thread — the default track name derives from
  // it. The interned id is cached thread-locally alongside the ring.
  this_thread_ring();
  if (t_ring_cache.thread_track != 0xFFFFFFFFu) return t_ring_cache.thread_track;
  std::uint32_t id;
  {
    MutexLock lock(registry_mutex_);
    std::size_t index = 0;
    for (const Ring& r : rings_) {
      if (&r == t_ring_cache.ring) break;
      ++index;
    }
    tracks_.push_back("thread " + std::to_string(index));
    id = static_cast<std::uint32_t>(tracks_.size() - 1);
  }
  t_ring_cache.thread_track = id;
  return id;
}

void Tracer::name_thread_track(std::string_view name) {
  const std::uint32_t id = thread_track();
  MutexLock lock(registry_mutex_);
  tracks_[id].assign(name);
}

std::vector<std::string> Tracer::track_names() const {
  MutexLock lock(registry_mutex_);
  return tracks_;
}

void Tracer::record(char phase, std::uint32_t track, std::string_view name,
                    std::uint64_t ts_ns, std::uint64_t dur_ns, std::uint32_t job,
                    std::uint64_t detail) {
  if (!enabled()) return;
  Ring& ring = this_thread_ring();
  MutexLock lock(ring.mutex);
  TraceEvent& event = ring.events[ring.next];
  if (ring.size == ring.events.size()) {
    ++ring.dropped;  // overwriting the oldest retained event
  } else {
    ++ring.size;
  }
  ring.next = (ring.next + 1) % ring.events.size();
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.track = track;
  event.job = job;
  event.detail = detail;
  event.phase = phase;
  const std::size_t n = std::min(name.size(), TraceEvent::kNameCapacity);
  std::memcpy(event.name, name.data(), n);
  event.name[n] = '\0';
}

void Tracer::complete(std::uint32_t track, std::string_view name, std::uint64_t start_ns,
                      std::uint64_t dur_ns, std::uint32_t job, std::uint64_t detail) {
  record('X', track, name, start_ns, dur_ns, job, detail);
}

void Tracer::instant(std::uint32_t track, std::string_view name, std::uint64_t ts_ns,
                     std::uint32_t job, std::uint64_t detail) {
  record('i', track, name, ts_ns, 0, job, detail);
}

void Tracer::async_begin(std::uint32_t track, std::string_view name, std::uint64_t ts_ns,
                         std::uint32_t job, std::uint64_t detail) {
  record('b', track, name, ts_ns, 0, job, detail);
}

void Tracer::async_end(std::uint32_t track, std::string_view name, std::uint64_t ts_ns,
                       std::uint32_t job, std::uint64_t detail) {
  record('e', track, name, ts_ns, 0, job, detail);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> events;
  MutexLock registry_lock(registry_mutex_);
  for (const Ring& ring : rings_) {
    MutexLock ring_lock(ring.mutex);
    // Oldest retained event first: the ring wrapped iff size == capacity,
    // in which case `next` points at the oldest entry.
    const std::size_t capacity = ring.events.size();
    const std::size_t start = ring.size == capacity ? ring.next : 0;
    for (std::size_t i = 0; i < ring.size; ++i) {
      events.push_back(ring.events[(start + i) % capacity]);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     return a.dur_ns > b.dur_ns;  // parents before children
                   });
  return events;
}

std::uint64_t Tracer::dropped() const {
  MutexLock registry_lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const Ring& ring : rings_) {
    MutexLock ring_lock(ring.mutex);
    total += ring.dropped;
  }
  return total;
}

std::size_t Tracer::ring_count() const {
  MutexLock registry_lock(registry_mutex_);
  return rings_.size();
}

std::uint64_t Tracer::approx_memory_bytes() const {
  MutexLock registry_lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const Ring& ring : rings_) {
    total += static_cast<std::uint64_t>(ring.events.size()) * sizeof(TraceEvent);
  }
  return total;
}

void Tracer::clear() {
  MutexLock registry_lock(registry_mutex_);
  for (Ring& ring : rings_) {
    MutexLock ring_lock(ring.mutex);
    ring.next = 0;
    ring.size = 0;
    ring.dropped = 0;
  }
}

const char* trace_env_path() { return std::getenv("GRAPHM_TRACE"); }

void publish_tracer_metrics(Registry& registry, const Tracer& tracer) {
  registry.set_counter("graphm.obs.tracer.dropped", tracer.dropped());
  registry.set_gauge("graphm.obs.tracer.rings",
                     static_cast<std::int64_t>(tracer.ring_count()));
  registry.set_gauge("graphm.obs.tracer.bytes",
                     static_cast<std::int64_t>(tracer.approx_memory_bytes()));
}

}  // namespace graphm::obs
