#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace graphm::obs {

std::size_t Histogram::bucket_index(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const int exponent = 63 - std::countl_zero(v);  // floor(log2 v), >= kSubBucketBits
  const std::uint64_t sub = (v >> (exponent - kSubBucketBits)) - kSubBuckets;
  return (static_cast<std::size_t>(exponent - kSubBucketBits + 1) << kSubBucketBits) +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_lower(std::size_t index) {
  const std::size_t octave = index >> kSubBucketBits;
  if (octave == 0) return index;
  const std::uint64_t sub = index & (kSubBuckets - 1);
  return (kSubBuckets + sub) << (octave - 1);
}

std::uint64_t Histogram::bucket_width(std::size_t index) {
  const std::size_t octave = index >> kSubBucketBits;
  return octave == 0 ? 1 : 1ULL << (octave - 1);
}

void Histogram::record(std::uint64_t v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen && !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen && !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~0ULL ? 0 : m;
}

std::uint64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The same nearest-rank convention as service::summarize_latency: the rank
  // indexes the sorted sample vector; here it indexes the cumulative bucket
  // walk instead.
  const auto rank = std::min<std::uint64_t>(
      n - 1, static_cast<std::uint64_t>(q * static_cast<double>(n - 1) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen > rank) {
      // Midpoint of the containing bucket: off from the exact order statistic
      // by at most half the bucket width.
      return static_cast<double>(bucket_lower(b)) +
             static_cast<double>(bucket_width(b) - 1) / 2.0;
    }
  }
  return static_cast<double>(max());
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    const std::uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  if (other.count() != 0) {
    const std::uint64_t omin = other.min();
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (omin < seen &&
           !min_.compare_exchange_weak(seen, omin, std::memory_order_relaxed)) {
    }
    const std::uint64_t omax = other.max();
    seen = max_.load(std::memory_order_relaxed);
    while (omax > seen &&
           !max_.compare_exchange_weak(seen, omax, std::memory_order_relaxed)) {
    }
  }
}

void Histogram::reset() {
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ULL, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& Registry::counter(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

void Registry::set_counter(std::string_view name, std::uint64_t v) { counter(name).set(v); }

namespace {

void append_key(std::string& out, const std::string& name) {
  out += '"';
  for (const char c : name) {
    // Instrument names are dotted identifiers; escape just enough that a
    // stray quote or backslash can never break the document.
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\": ";
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out += buf;
}

}  // namespace

std::string Registry::json() const {
  MutexLock lock(mutex_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ", ";
    first = false;
    append_key(out, name);
    out += std::to_string(c->value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ", ";
    first = false;
    append_key(out, name);
    out += std::to_string(g->value());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    append_key(out, name);
    out += "{\"count\": " + std::to_string(h->count()) + ", \"mean\": ";
    append_double(out, h->mean());
    out += ", \"p50\": ";
    append_double(out, h->quantile(0.50));
    out += ", \"p95\": ";
    append_double(out, h->quantile(0.95));
    out += ", \"p99\": ";
    append_double(out, h->quantile(0.99));
    out += ", \"max\": " + std::to_string(h->max()) + "}";
  }
  out += "}}";
  return out;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace graphm::obs
