// The tracing half of the observability substrate (src/obs/): per-job spans
// and instant events recorded into bounded per-thread ring buffers — a flight
// recorder, not an unbounded log — and exported as Chrome trace-event JSON
// (obs/trace_export.hpp) viewable in Perfetto or chrome://tracing.
//
// Two clock domains feed the same event shape:
//  * live surfaces (JobService, StreamEngine, SharingController) stamp spans
//    on the tracer's monotonic clock (now_ns(), steady since construction);
//  * the simulated cluster stamps on the DES clock — its EventLoop trace
//    records are converted after the run (cluster/trace_export.hpp), so the
//    golden FNV trace pins never see a tracing-dependent code path.
//
// Overhead contract (docs/observability.md): when disabled, a call site pays
// one relaxed atomic load and a branch — nothing else, no allocation, no
// lock. When enabled, recording is one short critical section on the calling
// thread's own ring (never contended across threads) and a fixed-size copy;
// rings overwrite their oldest entry when full and count the drops, so
// memory is bounded no matter how long the service runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hpp"

namespace graphm::obs {

/// One recorded event. Fixed-size (the ring never allocates per event): the
/// name is truncated into an inline buffer, the track is an interned id.
struct TraceEvent {
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;     // complete spans only
  std::uint32_t track = 0;      // interned via Tracer::track()
  std::uint32_t job = 0;        // primary argument (job id, 0 if none)
  std::uint64_t detail = 0;     // secondary argument (code-specific)
  char phase = 'X';             // 'X' complete, 'i' instant, 'b'/'e' async
  char name[39] = {};           // NUL-terminated, truncated copy

  static constexpr std::size_t kNameCapacity = sizeof(name) - 1;
};

class Tracer {
 public:
  static constexpr std::uint32_t kNoTrack = 0xFFFFFFFFu;
  static constexpr std::size_t kDefaultRingCapacity = 1 << 14;

  explicit Tracer(std::size_t ring_capacity = kDefaultRingCapacity);

  /// The process-wide tracer every live surface records through.
  static Tracer& global();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Monotonic ns since construction — the clock every live span stamps.
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Interns `name` into a stable track id (one Perfetto track per id).
  /// Repeated calls with the same name return the same id.
  std::uint32_t track(std::string_view name);
  /// The calling thread's own track ("thread N" on first use) — spans
  /// recorded on it by nested layers (service worker -> engine iterations)
  /// nest correctly because they genuinely ran on one thread.
  std::uint32_t thread_track();
  /// Renames the calling thread's track (e.g. "svc-worker 3").
  void name_thread_track(std::string_view name);
  [[nodiscard]] std::vector<std::string> track_names() const;

  /// Recording. All no-ops when disabled; `name` is truncated to
  /// TraceEvent::kNameCapacity.
  void complete(std::uint32_t track, std::string_view name, std::uint64_t start_ns,
                std::uint64_t dur_ns, std::uint32_t job = 0, std::uint64_t detail = 0);
  void instant(std::uint32_t track, std::string_view name, std::uint64_t ts_ns,
               std::uint32_t job = 0, std::uint64_t detail = 0);
  /// Async begin/end pair (Chrome 'b'/'e'): spans that overlap without
  /// nesting, e.g. admission waits of many queued jobs. Matched by `job` id.
  void async_begin(std::uint32_t track, std::string_view name, std::uint64_t ts_ns,
                   std::uint32_t job, std::uint64_t detail = 0);
  void async_end(std::uint32_t track, std::string_view name, std::uint64_t ts_ns,
                 std::uint32_t job, std::uint64_t detail = 0);

  /// Every retained event across all thread rings, oldest first per ring,
  /// globally sorted by (ts, dur desc) so parents precede their children.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  /// Events overwritten because a ring was full (flight-recorder drops).
  [[nodiscard]] std::uint64_t dropped() const;
  /// Per-thread rings allocated so far (threads that recorded at least once).
  [[nodiscard]] std::size_t ring_count() const;
  /// Event storage retained across all rings — fixed per ring (capacity ×
  /// sizeof(TraceEvent)), so this is the recorder's bounded-memory witness.
  [[nodiscard]] std::uint64_t approx_memory_bytes() const;
  /// Forgets every recorded event (track interning is kept).
  void clear();

 private:
  struct Ring {
    explicit Ring(std::size_t capacity) : events(capacity) {}
    mutable Mutex mutex;
    /// Fixed-size at construction; only the *elements* are written under
    /// `mutex` — the vector itself never reallocates, so size() is safe to
    /// read under registry_mutex_ alone (approx_memory_bytes does).
    std::vector<TraceEvent> events;
    std::size_t next GUARDED_BY(mutex) = 0;
    std::size_t size GUARDED_BY(mutex) = 0;
    std::uint64_t dropped GUARDED_BY(mutex) = 0;
  };

  Ring& this_thread_ring();
  void record(char phase, std::uint32_t track, std::string_view name,
              std::uint64_t ts_ns, std::uint64_t dur_ns, std::uint32_t job,
              std::uint64_t detail);

  const std::uint64_t tracer_id_;
  const std::size_t ring_capacity_;
  std::atomic<bool> enabled_{false};
  std::uint64_t epoch_ns_;  // steady-clock origin

  mutable Mutex registry_mutex_;
  /// deque: stable addresses for TLS caching. Growth serializes on
  /// registry_mutex_; threads reach their own ring through the cached
  /// pointer, never by indexing rings_.
  std::deque<Ring> rings_ GUARDED_BY(registry_mutex_);
  std::vector<std::string> tracks_ GUARDED_BY(registry_mutex_);
};

/// RAII complete-span: captures the start on construction, records on
/// destruction. Inert (and cost-free beyond one atomic load) when the tracer
/// is disabled at construction.
class Span {
 public:
  Span() = default;
  Span(Tracer& tracer, std::uint32_t track, std::string_view name,
       std::uint32_t job = 0, std::uint64_t detail = 0)
      : tracer_(tracer.enabled() ? &tracer : nullptr),
        track_(track),
        name_(name),
        job_(job),
        detail_(detail),
        start_ns_(tracer_ != nullptr ? tracer.now_ns() : 0) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->complete(track_, name_, start_ns_, tracer_->now_ns() - start_ns_, job_,
                        detail_);
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  std::uint32_t track_ = 0;
  std::string_view name_;
  std::uint32_t job_ = 0;
  std::uint64_t detail_ = 0;
  std::uint64_t start_ns_ = 0;
};

/// GRAPHM_TRACE=<path> turns the global tracer on and names the Chrome JSON
/// output file the enabling surface (bench, example) writes at exit.
/// Returns nullptr when unset. The check is one getenv per call — callers
/// cache it.
const char* trace_env_path();

class Registry;  // metrics.hpp

/// Publishes the tracer's own health into `registry`:
/// graphm.obs.tracer.{dropped,rings,bytes} — the flight recorder reporting
/// on itself (drops mean the ring capacity is too small for the workload).
void publish_tracer_metrics(Registry& registry, const Tracer& tracer);

}  // namespace graphm::obs
