#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>

namespace graphm::obs {

const char* slo_state_name(SloState state) {
  switch (state) {
    case SloState::kHealthy: return "healthy";
    case SloState::kWarning: return "warning";
    case SloState::kCritical: return "critical";
  }
  return "?";
}

SloTracker::SloTracker(SloSpec spec)
    : spec_(std::move(spec)),
      window_(std::max<std::uint64_t>(1, spec_.window_ns),
              std::max<std::size_t>(1, spec_.sub_windows)) {}

void SloTracker::record(std::uint64_t now_ns, std::uint64_t latency_ns) {
  window_.record(now_ns, latency_ns);
}

void SloTracker::record_violation(std::uint64_t now_ns) {
  // First value of the bucket after the threshold's: threshold_ns + 1 could
  // land in the threshold's own (good-by-contract) bucket, but the next
  // bucket's lower bound is strictly past the threshold, so the sample is
  // guaranteed to count bad while distorting the distribution by at most one
  // bucket.
  const std::size_t next = Histogram::bucket_index(spec_.threshold_ns) + 1;
  const std::uint64_t v = next < Histogram::kNumBuckets
                              ? Histogram::bucket_lower(next)
                              : ~0ULL;
  window_.record(now_ns, std::max<std::uint64_t>(1, v));
}

void SloTracker::set_capacity(double fraction) {
  MutexLock lock(mutex_);
  capacity_ = std::clamp(fraction, 1e-3, 1.0);
}

double SloTracker::capacity() const {
  MutexLock lock(mutex_);
  return capacity_;
}

std::uint64_t SloTracker::good_count(const Histogram& h) const {
  std::uint64_t good = 0;
  for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    if (Histogram::bucket_lower(b) > spec_.threshold_ns) break;
    good += h.bucket_count(b);
  }
  return good;
}

double SloTracker::burn(std::uint64_t good, std::uint64_t bad) const {
  const std::uint64_t total = good + bad;
  if (total == 0) return 0.0;
  const double allowed = std::max(1e-9, 1.0 - spec_.target_quantile);
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(total);
  return bad_fraction / allowed / capacity_;
}

SloEval SloTracker::evaluate(std::uint64_t now_ns) {
  // Both views merge at the same `now_ns`, so they see the same ring
  // alignment (rotation happens inside the first call at the latest).
  Histogram fast;
  window_.merged(now_ns, 1, fast);
  Histogram slow;
  window_.merged(now_ns, window_.sub_windows(), slow);

  MutexLock lock(mutex_);
  SloEval eval;
  eval.good = good_count(slow);
  eval.bad = slow.count() - eval.good;
  const std::uint64_t fast_good = good_count(fast);
  eval.fast_burn = burn(fast_good, fast.count() - fast_good);
  eval.slow_burn = burn(eval.good, eval.bad);
  const double allowed = std::max(1e-9, 1.0 - spec_.target_quantile);
  const double budget =
      allowed * static_cast<double>(eval.good + eval.bad);
  eval.budget_remaining =
      budget <= 0.0
          ? 1.0
          : std::clamp(1.0 - static_cast<double>(eval.bad) / budget, 0.0, 1.0);

  switch (state_) {
    case SloState::kHealthy:
    case SloState::kWarning:
      if (eval.fast_burn >= spec_.critical_burn &&
          eval.slow_burn >= spec_.critical_burn) {
        state_ = SloState::kCritical;
      } else {
        state_ = eval.slow_burn >= spec_.warn_burn ? SloState::kWarning
                                                   : SloState::kHealthy;
      }
      break;
    case SloState::kCritical:
      // Hysteresis: stay latched until the fast window genuinely cools below
      // reopen_burn — hovering at critical_burn cannot flap the signal.
      if (eval.fast_burn < spec_.reopen_burn) {
        state_ = eval.slow_burn >= spec_.warn_burn ? SloState::kWarning
                                                   : SloState::kHealthy;
      }
      break;
  }
  eval.state = state_;
  last_eval_ = eval;
  last_window_.reset();
  last_window_.merge(slow);
  return eval;
}

SloEval SloTracker::last_eval() const {
  MutexLock lock(mutex_);
  return last_eval_;
}

void SloTracker::merge_last_window(Histogram& out) const {
  MutexLock lock(mutex_);
  out.merge(last_window_);
}

SloMonitor::SloMonitor(std::vector<SloSpec> objectives)
    : objectives_(std::move(objectives)) {}

SloMonitor::Scoped& SloMonitor::scoped(std::string_view scope) {
  auto it = scopes_.find(scope);
  if (it == scopes_.end()) {
    Scoped s;
    s.scope = std::string(scope);
    s.trackers.reserve(objectives_.size());
    for (const SloSpec& spec : objectives_) {
      s.trackers.push_back(std::make_unique<SloTracker>(spec));
      s.trackers.back()->set_capacity(capacity_);
    }
    it = scopes_.emplace(std::string(scope), std::move(s)).first;
  }
  return it->second;
}

void SloMonitor::observe(std::string_view scope, std::uint64_t now_ns,
                         std::uint64_t latency_ns) {
  if (!enabled()) return;
  MutexLock lock(mutex_);
  for (auto& tracker : scoped(scope).trackers) tracker->record(now_ns, latency_ns);
}

void SloMonitor::violation(std::string_view scope, std::uint64_t now_ns) {
  if (!enabled()) return;
  MutexLock lock(mutex_);
  for (auto& tracker : scoped(scope).trackers) tracker->record_violation(now_ns);
}

void SloMonitor::count_shed(std::string_view scope) {
  if (!enabled()) return;
  MutexLock lock(mutex_);
  for (auto& tracker : scoped(scope).trackers) tracker->count_shed();
}

void SloMonitor::set_capacity(double fraction) {
  if (!enabled()) return;
  MutexLock lock(mutex_);
  capacity_ = std::clamp(fraction, 1e-3, 1.0);
  for (auto& [name, s] : scopes_) {
    for (auto& tracker : s.trackers) tracker->set_capacity(capacity_);
  }
}

SloState SloMonitor::evaluate(std::uint64_t now_ns) {
  if (!enabled()) return SloState::kHealthy;
  MutexLock lock(mutex_);
  SloState worst = SloState::kHealthy;
  SloEval worst_eval;
  for (auto& [name, s] : scopes_) {
    for (auto& tracker : s.trackers) {
      const SloEval eval = tracker->evaluate(now_ns);
      if (static_cast<int>(eval.state) > static_cast<int>(worst) ||
          (eval.state == worst && eval.fast_burn > worst_eval.fast_burn)) {
        worst = eval.state;
        worst_eval = eval;
      }
    }
  }
  state_ = worst;
  worst_eval_ = worst_eval;
  return worst;
}

SloState SloMonitor::state() const {
  MutexLock lock(mutex_);
  return state_;
}

SloEval SloMonitor::worst_eval() const {
  MutexLock lock(mutex_);
  return worst_eval_;
}

std::uint64_t SloMonitor::total_sheds() const {
  MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, s] : scopes_) {
    for (const auto& tracker : s.trackers) total += tracker->sheds();
  }
  return total;
}

void SloMonitor::publish(Registry& registry) const {
  MutexLock lock(mutex_);
  for (const auto& [name, s] : scopes_) {
    for (const auto& tracker : s.trackers) {
      std::string prefix = "graphm.slo." + tracker->spec().name;
      if (!s.scope.empty()) prefix += "." + s.scope;
      prefix += ".";
      const SloEval eval = tracker->last_eval();
      registry.set_gauge(prefix + "budget_remaining",
                         std::llround(eval.budget_remaining * 1e6));
      registry.set_gauge(prefix + "burn_rate", std::llround(eval.slow_burn * 1e3));
      registry.set_gauge(prefix + "state", static_cast<std::int64_t>(eval.state));
      registry.set_counter(prefix + "shed", tracker->sheds());
      Histogram& latency = registry.histogram(prefix + "latency_ns");
      latency.reset();
      tracker->merge_last_window(latency);
    }
  }
}

}  // namespace graphm::obs
