// Sliding-window histograms for the observability substrate: a ring of the
// existing log-bucketed obs::Histogram sub-windows over a time axis the
// caller supplies (live tracer clock or simulated DES clock — the window
// itself never reads a clock, which is what keeps it usable on both).
//
// Layout: the window spans `sub_windows` sub-spans of `sub_span_ns` each.
// Time t lands in absolute slot t / sub_span_ns; the ring holds the
// `sub_windows` most recent slots. Advancing to a new slot resets the
// histograms that fell out of the window — O(buckets) per expired slot, not
// O(samples) — and querying merges the k most recent slots bucket-wise into
// a caller-provided scratch histogram. Merging is associative and
// commutative by construction (it is the Histogram::merge the merge tests
// pin), so a windowed quantile is within one bucket width (~3.1%) of the
// exact nearest-rank statistic over the retained samples.
//
// Concurrency: record() is lock-free on the common path (the sample's slot
// is the current one: one relaxed load + a Histogram::record). Rotation and
// cross-slot merges serialize on one mutex; a recorder that observes a stale
// slot takes that mutex to rotate first. Timestamps are expected to be
// near-monotone; a sample older than the retained window is dropped (and
// counted) rather than smeared into the wrong slot.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "util/annotations.hpp"

namespace graphm::obs {

class WindowedHistogram {
 public:
  /// `span_ns` is the full (slow) window; it is cut into `sub_windows` equal
  /// sub-spans (>= 1; span is rounded up to a multiple of sub_windows).
  WindowedHistogram(std::uint64_t span_ns, std::size_t sub_windows);

  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  [[nodiscard]] std::uint64_t sub_span_ns() const { return sub_span_ns_; }
  [[nodiscard]] std::size_t sub_windows() const { return slots_.size(); }
  [[nodiscard]] std::uint64_t span_ns() const {
    return sub_span_ns_ * slots_.size();
  }

  /// Records `v` at time `now_ns`, rotating expired sub-windows first.
  /// Samples older than the retained window are dropped (see dropped()).
  void record(std::uint64_t now_ns, std::uint64_t v);

  /// Bucket-wise merge of the `sub_count` most recent sub-windows (clamped
  /// to sub_windows(); the current, still-filling slot counts as one) into
  /// `out`, after rotating to `now_ns`. `out` is not reset first — pass a
  /// fresh or explicitly reset() scratch histogram.
  void merged(std::uint64_t now_ns, std::size_t sub_count, Histogram& out);

  /// Total samples retained in the `sub_count` most recent sub-windows.
  [[nodiscard]] std::uint64_t count(std::uint64_t now_ns, std::size_t sub_count);

  /// Samples dropped because their timestamp predated the retained window.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  /// Rotates so that `slot` is current, resetting every slot that expired.
  void advance_locked(std::uint64_t slot) REQUIRES(mutex_);

  const std::uint64_t sub_span_ns_;
  /// Deliberately NOT GUARDED_BY(mutex_): record()'s fast path touches the
  /// current slot with no lock (Histogram::record is atomic per bucket); the
  /// mutex only serializes rotation and cross-slot merges.
  std::vector<Histogram> slots_;  // slot s of absolute index i: i % size
  /// Absolute index of the newest (current) slot. Relaxed fast-path check;
  /// transitions happen under mutex_.
  std::atomic<std::uint64_t> current_slot_{0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable Mutex mutex_;  // rotation + merges
};

}  // namespace graphm::obs
