// SLO tracking over the observability substrate: declarative latency
// objectives, windowed error-budget accounting, and SRE-style multi-window
// burn-rate evaluation producing the tri-state health signal the admission
// layers act on (service::AdmissionPolicy::kAdaptive, docs/observability.md
// "SLOs and error budgets").
//
// The math, in one place:
//  * an objective "p<q> latency <= threshold over window W" allows a bad
//    fraction of (1 - q): a sample is GOOD iff latency <= threshold_ns, and
//    the error budget of a window is (1 - q) * total samples;
//  * burn rate = (bad / total) / (1 - q), scaled by 1/capacity — the
//    multiple of the sustainable error rate currently being spent. Burn 1.0
//    exactly exhausts the budget at the window's edge; burn 2.0 exhausts it
//    in half the window;
//  * two windows vote (the SRE multi-window rule): the FAST window (one
//    sub-window of the ring) must agree with the SLOW window (the full ring)
//    before Critical latches — a brief spike can't trip it, and a long burn
//    can't hide behind one quiet sub-window;
//  * Critical exits hysteretically: only when the fast burn falls below
//    reopen_burn (< critical_burn), so the signal cannot flap while burn
//    hovers at the threshold (the no-flapping test pins this);
//  * capacity in (0, 1] folds backend health into the detector: at half
//    capacity every burn doubles, so a degraded cluster sheds earlier —
//    before the queues collapse, which is the whole point.
//
// Samples land in obs::WindowedHistogram rings (both clock domains work: the
// caller supplies timestamps), bad counts are read off the merged buckets
// (within one bucket width of exact), and everything publishes back through
// obs::Registry under graphm.slo.<objective>[.<scope>].{budget_remaining,
// burn_rate,state,shed}.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hpp"

#include "obs/metrics.hpp"
#include "obs/window.hpp"

namespace graphm::obs {

/// One declarative latency objective.
struct SloSpec {
  std::string name = "e2e";          // objective name (metric key component)
  double target_quantile = 0.99;     // pXX that must meet threshold_ns; also
                                     // fixes the budget: allowed bad
                                     // fraction = 1 - target_quantile
  std::uint64_t threshold_ns = 0;    // latency bound at that quantile
  std::uint64_t window_ns = 60'000'000'000;  // slow window (full ring span)
  std::size_t sub_windows = 6;       // ring slots; fast window = one slot
  double warn_burn = 1.0;            // slow burn >= this -> Warning
  double critical_burn = 2.0;        // fast AND slow burn >= this -> Critical
  double reopen_burn = 0.5;          // Critical exits when fast burn < this
};

enum class SloState : int { kHealthy = 0, kWarning = 1, kCritical = 2 };

const char* slo_state_name(SloState state);

/// One evaluation of one objective at one instant.
struct SloEval {
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  /// Fraction of the slow window's error budget left, clamped to [0, 1]
  /// (1.0 when the window is empty).
  double budget_remaining = 1.0;
  std::uint64_t good = 0;  // slow-window samples within threshold
  std::uint64_t bad = 0;   // slow-window samples over threshold
  SloState state = SloState::kHealthy;
};

/// Tracks one objective for one scope (tenant/dataset). record() is cheap
/// and mostly lock-free (WindowedHistogram fast path); evaluate() merges the
/// ring (O(buckets)) and advances the hysteretic state machine.
class SloTracker {
 public:
  explicit SloTracker(SloSpec spec);

  const SloSpec& spec() const { return spec_; }

  /// Records an observed latency; good iff latency_ns <= threshold_ns.
  void record(std::uint64_t now_ns, std::uint64_t latency_ns);
  /// Records an unconditional violation (deadline abort, failed request):
  /// counted as a bad sample just past the threshold.
  void record_violation(std::uint64_t now_ns);

  /// Folds external capacity (live replicas / total, in (0, 1]) into the
  /// burn: burn is divided by capacity, so degraded capacity trips earlier.
  void set_capacity(double fraction);
  [[nodiscard]] double capacity() const;

  /// Recomputes both windows at `now_ns` and advances the state machine.
  SloEval evaluate(std::uint64_t now_ns);
  /// The most recent evaluate() result (identity eval before the first).
  [[nodiscard]] SloEval last_eval() const;
  /// Accumulates the slow-window distribution cached by the most recent
  /// evaluate() into `out` (empty before the first evaluate()).
  void merge_last_window(Histogram& out) const;

  /// Shed accounting for the admission layer that acts on this tracker.
  void count_shed() { sheds_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t sheds() const {
    return sheds_.load(std::memory_order_relaxed);
  }

 private:
  /// Samples at or under the threshold in `h` (the straddling bucket counts
  /// as good — within one bucket width of exact, same contract as quantile).
  [[nodiscard]] std::uint64_t good_count(const Histogram& h) const;
  [[nodiscard]] double burn(std::uint64_t good, std::uint64_t bad) const
      REQUIRES(mutex_);

  const SloSpec spec_;
  WindowedHistogram window_;
  std::atomic<std::uint64_t> sheds_{0};

  mutable Mutex mutex_;  // state machine + cached eval + capacity
  double capacity_ GUARDED_BY(mutex_) = 1.0;
  SloState state_ GUARDED_BY(mutex_) = SloState::kHealthy;
  SloEval last_eval_ GUARDED_BY(mutex_);
  /// Slow window at the last evaluate().
  Histogram last_window_ GUARDED_BY(mutex_);
};

/// A set of objectives tracked per scope (tenant/dataset), with one combined
/// worst-of health signal for the admission layer and per-tracker publishing.
/// Scopes materialize on first observation; with no objectives configured
/// the monitor is inert (enabled() == false, every call cheap).
class SloMonitor {
 public:
  SloMonitor() = default;
  explicit SloMonitor(std::vector<SloSpec> objectives);

  [[nodiscard]] bool enabled() const { return !objectives_.empty(); }

  void observe(std::string_view scope, std::uint64_t now_ns, std::uint64_t latency_ns);
  void violation(std::string_view scope, std::uint64_t now_ns);
  void count_shed(std::string_view scope);
  void set_capacity(double fraction);

  /// Re-evaluates every tracker at `now_ns`; returns (and caches) the worst
  /// state across objectives and scopes.
  SloState evaluate(std::uint64_t now_ns);
  /// Last evaluate() result (kHealthy before the first, or when disabled).
  [[nodiscard]] SloState state() const;
  /// The worst tracker's eval at the last evaluate() (burn detail for
  /// traces; identity eval before the first).
  [[nodiscard]] SloEval worst_eval() const;
  [[nodiscard]] std::uint64_t total_sheds() const;

  /// Publishes every tracker's cached eval under
  /// `graphm.slo.<objective>.<scope>.{budget_remaining,burn_rate,state,shed}`
  /// (no `.<scope>` component for the empty scope). Gauges are scaled:
  /// budget_remaining in ppm of the window budget, burn_rate in milli-burns,
  /// state 0/1/2. The slow-window latency distribution at the last
  /// evaluate() publishes as the `latency_ns` histogram (replaced, not
  /// accumulated, so repeated snapshots stay idempotent).
  void publish(Registry& registry) const;

 private:
  struct Scoped {
    std::string scope;
    std::vector<std::unique_ptr<SloTracker>> trackers;  // one per objective
  };

  Scoped& scoped(std::string_view scope) REQUIRES(mutex_);

  std::vector<SloSpec> objectives_;
  mutable Mutex mutex_;  // scopes_ growth + cached worst
  std::map<std::string, Scoped, std::less<>> scopes_ GUARDED_BY(mutex_);
  double capacity_ GUARDED_BY(mutex_) = 1.0;
  SloState state_ GUARDED_BY(mutex_) = SloState::kHealthy;
  SloEval worst_eval_ GUARDED_BY(mutex_);
};

}  // namespace graphm::obs
