// Chrome trace-event JSON writer: turns recorded TraceEvents into a file
// Perfetto (ui.perfetto.dev) and chrome://tracing open directly.
//
// The trace-event format (JSON Array / JSON Object flavor) models a set of
// processes, each with named threads ("tracks") carrying complete spans
// ('X'), instants ('i') and async begin/end pairs ('b'/'e'). We map:
//   process  -> one clock domain (live service = pid 1, simulated cluster =
//               pid 2; their clocks never mix on one track);
//   thread   -> one obs track (worker thread, sharing group, DES backend);
//   ts / dur -> microseconds (fractional, so ns precision survives).
// Metadata events name every process and track so the viewer shows
// "svc-worker 3" instead of "tid 7".
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace graphm::obs {

/// One process (= clock domain) of the exported trace.
struct TraceProcess {
  std::uint32_t pid = 1;
  std::string name;                  // e.g. "graphm service (live clock)"
  std::vector<std::string> tracks;   // index == TraceEvent::track
  std::vector<TraceEvent> events;    // any order; sorted on write
};

/// Writes `{"displayTimeUnit":"ms","traceEvents":[...]}` with every
/// process's metadata + events. Returns false on I/O failure.
bool write_chrome_trace(std::FILE* f, const std::vector<TraceProcess>& processes);
bool write_chrome_trace(const std::string& path, const std::vector<TraceProcess>& processes);

/// Convenience: exports a live tracer's snapshot as one process.
bool export_tracer(const std::string& path, const Tracer& tracer,
                   const std::string& process_name = "graphm live");

}  // namespace graphm::obs
