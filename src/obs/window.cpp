#include "obs/window.hpp"

#include <algorithm>

namespace graphm::obs {

WindowedHistogram::WindowedHistogram(std::uint64_t span_ns, std::size_t sub_windows)
    : sub_span_ns_(std::max<std::uint64_t>(
          1, (span_ns + std::max<std::size_t>(1, sub_windows) - 1) /
                 std::max<std::size_t>(1, sub_windows))),
      slots_(std::max<std::size_t>(1, sub_windows)) {}

void WindowedHistogram::advance_locked(std::uint64_t slot) {
  const std::uint64_t current = current_slot_.load(std::memory_order_relaxed);
  if (slot <= current) return;
  // Every slot strictly between current and the new slot expired; resetting
  // is capped at the ring size (a long quiet period clears the whole ring
  // once, not once per elapsed sub-span).
  const std::uint64_t steps = std::min<std::uint64_t>(slot - current, slots_.size());
  for (std::uint64_t i = 1; i <= steps; ++i) {
    slots_[(current + i) % slots_.size()].reset();
  }
  current_slot_.store(slot, std::memory_order_relaxed);
}

void WindowedHistogram::record(std::uint64_t now_ns, std::uint64_t v) {
  const std::uint64_t slot = now_ns / sub_span_ns_;
  // Fast path: the sample lands in the slot that is already current — one
  // relaxed load, then a lock-free Histogram::record. A concurrent rotation
  // past this slot can at worst smear one sample into a resetting slot,
  // which the monitoring contract tolerates (timestamps are near-monotone).
  if (slot == current_slot_.load(std::memory_order_relaxed)) {
    slots_[slot % slots_.size()].record(v);
    return;
  }
  MutexLock lock(mutex_);
  const std::uint64_t current = current_slot_.load(std::memory_order_relaxed);
  if (slot > current) {
    advance_locked(slot);
  } else if (current - slot >= slots_.size()) {
    // Older than the whole retained window: smearing it into a live slot
    // would corrupt a future sub-span, so drop and count.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slots_[slot % slots_.size()].record(v);
}

void WindowedHistogram::merged(std::uint64_t now_ns, std::size_t sub_count,
                               Histogram& out) {
  MutexLock lock(mutex_);
  advance_locked(now_ns / sub_span_ns_);
  const std::uint64_t current = current_slot_.load(std::memory_order_relaxed);
  const std::size_t k = std::clamp<std::size_t>(sub_count, 1, slots_.size());
  for (std::size_t i = 0; i < k && i <= current; ++i) {
    out.merge(slots_[(current - i) % slots_.size()]);
  }
}

std::uint64_t WindowedHistogram::count(std::uint64_t now_ns, std::size_t sub_count) {
  MutexLock lock(mutex_);
  advance_locked(now_ns / sub_span_ns_);
  const std::uint64_t current = current_slot_.load(std::memory_order_relaxed);
  const std::size_t k = std::clamp<std::size_t>(sub_count, 1, slots_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < k && i <= current; ++i) {
    total += slots_[(current - i) % slots_.size()].count();
  }
  return total;
}

}  // namespace graphm::obs
