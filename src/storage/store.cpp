#include "storage/store.hpp"

#include <algorithm>

namespace graphm::storage {

std::pair<graph::VertexId, graph::VertexId> StoreMeta::vertex_range(std::uint32_t i) const {
  if (!partitions_by_source) return {0, num_vertices};
  const graph::VertexId per = (num_vertices + num_partitions - 1) / num_partitions;
  const graph::VertexId begin = std::min<graph::VertexId>(num_vertices, i * per);
  const graph::VertexId end = std::min<graph::VertexId>(num_vertices, begin + per);
  return {begin, end};
}

std::uint32_t StoreMeta::partition_of(graph::VertexId v) const {
  const graph::VertexId per = (num_vertices + num_partitions - 1) / num_partitions;
  return per == 0 ? 0 : std::min<std::uint32_t>(num_partitions - 1, v / per);
}

std::uint64_t StoreMeta::partition_offset(std::uint32_t i) const {
  return block_offsets[block_index(i, 0)];
}

graph::EdgeCount StoreMeta::partition_edges(std::uint32_t i) const {
  graph::EdgeCount total = 0;
  for (std::uint32_t j = 0; j < blocks_per_partition; ++j) total += block_edges[block_index(i, j)];
  return total;
}

std::uint64_t StoreMeta::max_partition_bytes() const {
  std::uint64_t best = 0;
  for (std::uint32_t i = 0; i < num_partitions; ++i) {
    best = std::max(best, partition_bytes(i));
  }
  return best;
}

}  // namespace graphm::storage
