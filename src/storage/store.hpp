// The storage abstraction every engine-specific format implements.
//
// The paper's point two (Section 1) is that graph processing systems couple
// their own storage engines, and that decoupling storage lets one optimized
// storage system serve them all. PartitionedStore is that decoupling in this
// repository: the GridGraph-like grid format and the GraphChi-like shard
// format both implement it, and the streaming engine, the default loaders and
// all of GraphM (sharing controller, chunk labelling, snapshots) are written
// against it — so plugging GraphM into another system is exactly the paper's
// "replace Load() with Sharing()" story.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "sim/platform.hpp"

namespace graphm::storage {

/// Layout metadata of a partitioned on-disk graph. `partition` is the unit
/// the loaders move in and out of memory; partitions subdivide into blocks
/// only for formats that need it (the grid's P columns per row).
struct StoreMeta {
  graph::VertexId num_vertices = 0;
  graph::EdgeCount num_edges = 0;
  std::uint32_t num_partitions = 0;
  std::uint64_t preprocess_ns = 0;

  // Row-major num_partitions * blocks_per_partition arrays.
  std::uint32_t blocks_per_partition = 1;
  std::vector<std::uint64_t> block_offsets;
  std::vector<std::uint64_t> block_edges;

  /// When false, a partition's source vertices span the whole graph (shard
  /// formats bucket by destination), so source-side selective scheduling
  /// must treat every partition as potentially active.
  bool partitions_by_source = true;

  [[nodiscard]] std::size_t block_index(std::uint32_t i, std::uint32_t j) const {
    return static_cast<std::size_t>(i) * blocks_per_partition + j;
  }
  /// Source-vertex range [begin, end) of partition i (the full range when
  /// !partitions_by_source).
  [[nodiscard]] std::pair<graph::VertexId, graph::VertexId> vertex_range(std::uint32_t i) const;
  [[nodiscard]] std::uint32_t partition_of(graph::VertexId v) const;

  [[nodiscard]] std::uint64_t partition_offset(std::uint32_t i) const;
  [[nodiscard]] graph::EdgeCount partition_edges(std::uint32_t i) const;
  [[nodiscard]] std::uint64_t partition_bytes(std::uint32_t i) const {
    return partition_edges(i) * sizeof(graph::Edge);
  }
  [[nodiscard]] std::uint64_t max_partition_bytes() const;
};

/// Read-only, thread-safe handle on a preprocessed graph.
class PartitionedStore {
 public:
  virtual ~PartitionedStore() = default;

  [[nodiscard]] virtual const StoreMeta& meta() const = 0;
  /// Stable id keying the simulated page cache.
  [[nodiscard]] virtual std::uint32_t file_id() const = 0;

  /// Reads partition i into `out` (resized), charging the simulated disk /
  /// page cache on behalf of `job_id`. Returns modeled stall (ns).
  virtual std::uint64_t read_partition(std::uint32_t i, std::vector<graph::Edge>& out,
                                       sim::Platform& platform, std::uint32_t job_id) const = 0;

  /// Reads [first_edge, first_edge+count) of partition i.
  virtual std::uint64_t read_edges(std::uint32_t i, graph::EdgeCount first_edge,
                                   graph::EdgeCount count, graph::Edge* out,
                                   sim::Platform& platform, std::uint32_t job_id) const = 0;

  /// Out-degree array persisted at preprocess time.
  [[nodiscard]] virtual std::vector<std::uint32_t> load_out_degrees() const = 0;
};

}  // namespace graphm::storage
