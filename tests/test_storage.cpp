#include <gtest/gtest.h>

#include "storage/store.hpp"
#include "test_helpers.hpp"

namespace graphm::storage {
namespace {

StoreMeta make_meta(graph::VertexId n, std::uint32_t partitions, bool by_source = true) {
  StoreMeta meta;
  meta.num_vertices = n;
  meta.num_partitions = partitions;
  meta.partitions_by_source = by_source;
  meta.blocks_per_partition = 1;
  meta.block_offsets.assign(partitions, 0);
  meta.block_edges.assign(partitions, 0);
  return meta;
}

class VertexRangeProperties
    : public ::testing::TestWithParam<std::tuple<graph::VertexId, std::uint32_t>> {};

TEST_P(VertexRangeProperties, RangesTileTheVertexSpace) {
  const auto [n, partitions] = GetParam();
  const StoreMeta meta = make_meta(n, partitions);

  graph::VertexId cursor = 0;
  for (std::uint32_t p = 0; p < partitions; ++p) {
    const auto [begin, end] = meta.vertex_range(p);
    EXPECT_EQ(begin, cursor) << "partition " << p;
    EXPECT_LE(begin, end);
    cursor = end;
  }
  EXPECT_EQ(cursor, n) << "ranges must cover every vertex exactly once";
}

TEST_P(VertexRangeProperties, PartitionOfIsInverseOfVertexRange) {
  const auto [n, partitions] = GetParam();
  const StoreMeta meta = make_meta(n, partitions);
  for (graph::VertexId v = 0; v < n; ++v) {
    const std::uint32_t p = meta.partition_of(v);
    ASSERT_LT(p, partitions);
    const auto [begin, end] = meta.vertex_range(p);
    ASSERT_GE(v, begin) << "vertex " << v;
    ASSERT_LT(v, end) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, VertexRangeProperties,
                         ::testing::Values(std::tuple{100u, 4u}, std::tuple{101u, 4u},
                                           std::tuple{7u, 8u}, std::tuple{1u, 1u},
                                           std::tuple{64u, 64u}, std::tuple{1000u, 3u},
                                           std::tuple{65u, 64u}));

TEST(StoreMeta, DestinationPartitionedStoresSpanEverything) {
  const StoreMeta meta = make_meta(1000, 8, /*by_source=*/false);
  for (std::uint32_t p = 0; p < 8; ++p) {
    const auto [begin, end] = meta.vertex_range(p);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1000u);
  }
}

TEST(StoreMeta, PartitionBytesFollowBlockEdges) {
  StoreMeta meta = make_meta(100, 2);
  meta.blocks_per_partition = 2;
  meta.block_offsets = {0, 120, 240, 360};
  meta.block_edges = {10, 10, 5, 3};
  EXPECT_EQ(meta.partition_edges(0), 20u);
  EXPECT_EQ(meta.partition_edges(1), 8u);
  EXPECT_EQ(meta.partition_bytes(0), 20 * sizeof(graph::Edge));
  EXPECT_EQ(meta.max_partition_bytes(), 20 * sizeof(graph::Edge));
  EXPECT_EQ(meta.partition_offset(1), 240u);
}

TEST(PartitionedStore, GridAndShardExposeTheSameEdgeMultiset) {
  // The two formats must describe the same graph — the precondition for
  // GraphM serving both ("one storage system for all").
  const auto g = test::small_rmat(200, 2000);
  const grid::GridStore grid_store = test::make_grid(g, 4);
  const shard::ShardStore shard_store = test::make_shards(g, 4);

  auto collect = [](const PartitionedStore& store) {
    sim::Platform platform;
    std::vector<graph::Edge> buffer;
    std::vector<std::uint64_t> keys;
    for (std::uint32_t p = 0; p < store.meta().num_partitions; ++p) {
      store.read_partition(p, buffer, platform, 0);
      for (const auto& e : buffer) {
        keys.push_back((static_cast<std::uint64_t>(e.src) << 32) | e.dst);
      }
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  EXPECT_EQ(collect(grid_store), collect(shard_store));
}

}  // namespace
}  // namespace graphm::storage
