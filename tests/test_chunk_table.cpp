#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "graphm/chunk_table.hpp"
#include "test_helpers.hpp"

namespace graphm::core {
namespace {

TEST(ChunkSize, Formula1RespectsLlcBudget) {
  sim::PlatformConfig config;
  config.llc_bytes = 256 * 1024;
  config.llc_reserved_bytes = 16 * 1024;
  config.num_cores = 16;
  const std::uint64_t graph_bytes = 100ull << 20;
  const std::uint64_t vertices = 1u << 20;
  const std::size_t uv = 8;
  const std::size_t sc = chunk_size_bytes(config, graph_bytes, vertices, uv);

  // Plug Sc back into Formula 1: must fit, and Sc + one quantum must not.
  const double n = config.num_cores;
  const double vertex_term = static_cast<double>(vertices) * uv / graph_bytes;
  auto footprint = [&](double s) { return s * n + s * n * vertex_term; };
  EXPECT_LE(footprint(static_cast<double>(sc)),
            static_cast<double>(config.llc_bytes - config.llc_reserved_bytes) + 1.0);
  const std::size_t quantum = std::lcm(sizeof(graph::Edge), config.cache_line);
  EXPECT_GT(footprint(static_cast<double>(sc + quantum)),
            static_cast<double>(config.llc_bytes - config.llc_reserved_bytes));
}

TEST(ChunkSize, MultipleOfEdgeAndCacheLine) {
  sim::PlatformConfig config;
  const std::size_t sc = chunk_size_bytes(config, 1 << 20, 1 << 12, 8);
  EXPECT_EQ(sc % sizeof(graph::Edge), 0u);
  EXPECT_EQ(sc % config.cache_line, 0u);
  EXPECT_GT(sc, 0u);
}

TEST(ChunkSize, MoreCoresMeansSmallerChunks) {
  sim::PlatformConfig few;
  few.num_cores = 2;
  sim::PlatformConfig many;
  many.num_cores = 16;
  EXPECT_GT(chunk_size_bytes(few, 1 << 24, 1 << 12, 8),
            chunk_size_bytes(many, 1 << 24, 1 << 12, 8));
}

TEST(ChunkSize, NeverZeroEvenForTinyLlc) {
  sim::PlatformConfig config;
  config.llc_bytes = 128;
  config.llc_reserved_bytes = 0;
  config.num_cores = 64;
  EXPECT_GT(chunk_size_bytes(config, 1 << 20, 1 << 10, 8), 0u);
}

class LabelPartitionTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LabelPartitionTest, Algorithm1Invariants) {
  const auto [edge_count, chunk_edges] = GetParam();
  const auto g = test::small_rmat(100, edge_count, edge_count);
  const std::size_t chunk_bytes = chunk_edges * sizeof(graph::Edge);
  const ChunkTable table = label_partition(g.edges().data(), g.num_edges(), chunk_bytes);

  // Invariant 1: chunks tile the partition exactly.
  graph::EdgeCount cursor = 0;
  for (const ChunkInfo& chunk : table.chunks) {
    EXPECT_EQ(chunk.edge_begin, cursor);
    cursor = chunk.edge_end;
  }
  EXPECT_EQ(cursor, g.num_edges());
  EXPECT_EQ(table.total_edges(), g.num_edges());

  // Invariant 2: every chunk except the last is exactly the target size.
  for (std::size_t c = 0; c + 1 < table.chunks.size(); ++c) {
    EXPECT_EQ(table.chunks[c].total_edges(), static_cast<graph::EdgeCount>(chunk_edges));
  }
  EXPECT_LE(table.chunks.back().total_edges(), static_cast<graph::EdgeCount>(chunk_edges));

  // Invariant 3: per-chunk N+(v) sums to the chunk's edge count, and matches
  // a recount of the chunk's source occurrences.
  for (const ChunkInfo& chunk : table.chunks) {
    std::uint64_t sum = 0;
    std::map<graph::VertexId, std::uint32_t> recount;
    for (graph::EdgeCount i = chunk.edge_begin; i < chunk.edge_end; ++i) {
      ++recount[g.edges()[i].src];
    }
    for (const ChunkEntry& entry : chunk.entries) {
      sum += entry.out_edges;
      EXPECT_EQ(entry.out_edges, recount.at(entry.source));
    }
    EXPECT_EQ(sum, chunk.total_edges());
    EXPECT_EQ(recount.size(), chunk.entries.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LabelPartitionTest,
                         ::testing::Values(std::tuple{257, 16}, std::tuple{1024, 64},
                                           std::tuple{1000, 128}, std::tuple{4096, 1000},
                                           std::tuple{300, 1024}, std::tuple{4096, 1}));

TEST(LabelPartition, EmptyPartition) {
  const ChunkTable table = label_partition(nullptr, 0, 1024);
  EXPECT_TRUE(table.chunks.empty());
  EXPECT_EQ(table.total_edges(), 0u);
}

TEST(ChunkInfo, ActiveEdgesHonorsBitmap) {
  graph::EdgeList g;
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const ChunkInfo info = label_chunk(g.edges().data(), g.num_edges(), 0);

  util::AtomicBitmap active(3);
  EXPECT_EQ(info.active_edges(active), 0u);
  active.set(0);
  EXPECT_EQ(info.active_edges(active), 2u);
  active.set(2);
  EXPECT_EQ(info.active_edges(active), 3u);
  active.set(1);
  EXPECT_EQ(info.active_edges(active), 4u);
}

TEST(ChunkTable, FootprintGrowsWithEntries) {
  const auto g = test::small_rmat(100, 2000);
  const ChunkTable fine = label_partition(g.edges().data(), g.num_edges(), 64 * 12);
  const ChunkTable coarse = label_partition(g.edges().data(), g.num_edges(), 1024 * 12);
  EXPECT_GT(fine.footprint_bytes(), 0u);
  EXPECT_GT(fine.chunks.size(), coarse.chunks.size());
}

}  // namespace
}  // namespace graphm::core
