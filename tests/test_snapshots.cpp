#include <gtest/gtest.h>

#include "graphm/graphm.hpp"
#include "test_helpers.hpp"

namespace graphm::core {
namespace {

struct Fixture {
  graph::EdgeList g = test::small_rmat(256, 3000);
  grid::GridStore store = test::make_grid(g, 2);
  sim::Platform platform;
  GraphM graphm{store, platform};
  Fixture() { graphm.init(); }

  std::vector<graph::Edge> base_chunk(std::uint32_t pid, std::uint32_t chunk) {
    // Content as an overlay-free job would see it.
    controller().register_job(9999);
    auto content = controller().chunk_content(9999, pid, chunk);
    controller().job_finished(9999);
    return content;
  }
  SharingController& controller() { return graphm.controller(); }
};

std::vector<graph::Edge> tweaked(std::vector<graph::Edge> edges) {
  for (auto& e : edges) e.weight += 100.0f;
  return edges;
}

TEST(Snapshots, MutationVisibleOnlyToOwningJob) {
  Fixture f;
  f.controller().register_job(1);
  f.controller().register_job(2);
  const auto base = f.base_chunk(0, 0);

  f.controller().apply_mutation(1, 0, 0, tweaked(base));
  EXPECT_EQ(f.controller().chunk_content(1, 0, 0), tweaked(base)) << "owner sees mutation";
  EXPECT_EQ(f.controller().chunk_content(2, 0, 0), base) << "other jobs see shared data";
}

TEST(Snapshots, MutationReleasedWhenJobFinishes) {
  Fixture f;
  f.controller().register_job(1);
  const auto base = f.base_chunk(0, 0);
  f.controller().apply_mutation(1, 0, 0, tweaked(base));
  EXPECT_EQ(f.controller().snapshot_chunks_live(), 1u);
  f.controller().job_finished(1);
  EXPECT_EQ(f.controller().snapshot_chunks_live(), 0u);
}

TEST(Snapshots, UpdateVisibleOnlyToLaterJobs) {
  Fixture f;
  const auto base = f.base_chunk(0, 0);
  f.controller().register_job(1);  // submitted before the update
  f.controller().apply_update(0, 0, tweaked(base));
  f.controller().register_job(2);  // submitted after the update

  EXPECT_EQ(f.controller().chunk_content(1, 0, 0), base)
      << "previous jobs keep the pre-update snapshot";
  EXPECT_EQ(f.controller().chunk_content(2, 0, 0), tweaked(base))
      << "new jobs see the updated graph";
}

TEST(Snapshots, ChainedUpdatesResolvePerVersion) {
  Fixture f;
  const auto base = f.base_chunk(1, 0);
  auto v1 = tweaked(base);
  auto v2 = tweaked(v1);

  f.controller().register_job(1);
  f.controller().apply_update(1, 0, v1);
  f.controller().register_job(2);
  f.controller().apply_update(1, 0, v2);
  f.controller().register_job(3);

  EXPECT_EQ(f.controller().chunk_content(1, 1, 0), base);
  EXPECT_EQ(f.controller().chunk_content(2, 1, 0), v1);
  EXPECT_EQ(f.controller().chunk_content(3, 1, 0), v2);
}

TEST(Snapshots, MutationWinsOverUpdateForOwner) {
  Fixture f;
  const auto base = f.base_chunk(0, 0);
  const auto updated = tweaked(base);
  auto mutated = tweaked(updated);

  f.controller().apply_update(0, 0, updated);
  f.controller().register_job(1);
  f.controller().apply_mutation(1, 0, 0, mutated);
  EXPECT_EQ(f.controller().chunk_content(1, 0, 0), mutated);
}

TEST(Snapshots, OldVersionsGarbageCollected) {
  Fixture f;
  const auto base = f.base_chunk(0, 0);
  f.controller().register_job(1);
  f.controller().apply_update(0, 0, tweaked(base));          // v1 (job 1 pre-dates it)
  f.controller().apply_update(0, 0, tweaked(tweaked(base)));  // v2
  f.controller().register_job(2);
  EXPECT_EQ(f.controller().snapshot_chunks_live(), 2u);

  // Once job 1 finishes, v1 serves no live job (job 2 resolves to v2).
  f.controller().job_finished(1);
  EXPECT_EQ(f.controller().snapshot_chunks_live(), 1u);
}

TEST(Snapshots, UpdateChangingEdgeCountIsServedCorrectly) {
  Fixture f;
  auto base = f.base_chunk(0, 0);
  base.push_back(graph::Edge{0, 1, 7.0f});  // update adds an edge
  f.controller().apply_update(0, 0, base);
  f.controller().register_job(5);
  const auto content = f.controller().chunk_content(5, 0, 0);
  EXPECT_EQ(content.size(), base.size());
  EXPECT_EQ(content.back(), (graph::Edge{0, 1, 7.0f}));
}

TEST(Snapshots, SnapshotCopiesTracked) {
  Fixture f;
  const auto before = f.controller().stats().snapshot_copies;
  f.controller().apply_update(0, 0, f.base_chunk(0, 0));
  EXPECT_EQ(f.controller().stats().snapshot_copies, before + 1);
}

}  // namespace
}  // namespace graphm::core
