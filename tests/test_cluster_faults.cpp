// Fault injection + replica failover contracts (src/cluster/faults.*):
// (1) stream isolation — the fault RNG stream never perturbs the jitter
// stream, and an empty FaultPlan reproduces the pre-fault traces bit for bit
// (golden FNV hashes pinned from the seed build); (2) conservation — every
// submission lands in exactly one terminal outcome, faults or not; (3)
// failover correctness — a crashed backend's queue drains to its replica,
// replicas serve byte-identical shard data, windowed crashes rejoin; (4)
// fault plans replay deterministically.
#include <gtest/gtest.h>

#include <cstring>

#include "cluster/cluster_service.hpp"
#include "cluster/des_engine.hpp"
#include "cluster/faults.hpp"
#include "runtime/workloads.hpp"
#include "test_helpers.hpp"

namespace graphm::cluster {
namespace {

graph::EdgeList test_graph() { return test::small_rmat(1024, 20000, 31); }

// Golden FNV trace hashes captured from the build BEFORE the fault subsystem
// landed (same graph, seeds and configs as below). The RNG stream split, the
// heartbeat monitor and the replica routing rework must all be invisible to
// a fault-free run — these constants are the regression pin.
constexpr std::uint64_t kGoldenDesRunHash = 0x739338c924ff3b85ULL;
constexpr std::uint64_t kGoldenServiceHash = 0x690a2c7e75a0f08fULL;

DesEstimate golden_des_run(const graph::EdgeList& g) {
  const auto profiles = dist::profile_jobs(g, runtime::paper_mix(4, g.num_vertices(), 4));
  dist::ClusterConfig cluster;
  cluster.num_nodes = 8;
  DesConfig config;
  config.seed = 0xFA11;
  return des_run(Backend::kPowerGraph, {dist::DistScheme::kShared}, profiles, g, cluster,
                 config);
}

std::vector<Submission> golden_submissions(const graph::EdgeList& g) {
  const auto specs = runtime::paper_mix(8, g.num_vertices(), 9);
  std::vector<Submission> submissions(8);
  for (std::size_t j = 0; j < 8; ++j) {
    submissions[j].spec = specs[j];
    submissions[j].arrival_ns = j * 300'000;
    submissions[j].dataset = j % 2 == 0 ? "a" : "b";
  }
  return submissions;
}

ClusterService golden_service(const graph::EdgeList& g, bool record_trace = false) {
  std::vector<BackendConfig> backends(2);
  backends[0].dataset = "a";
  backends[0].num_nodes = 4;
  backends[1].dataset = "b";
  backends[1].engine = Backend::kChaos;
  backends[1].num_nodes = 4;
  ClusterServiceConfig config;
  config.des.seed = 0xFA11;
  config.des.record_trace = record_trace;
  return ClusterService(g, backends, config);
}

/// Two replicas of one dataset — the failover fixture.
ClusterService replica_service(const graph::EdgeList& g, std::uint64_t seed = 0xFA11) {
  std::vector<BackendConfig> backends(2);
  backends[0].dataset = "d";
  backends[0].num_nodes = 4;
  backends[0].replica_id = 0;
  backends[1].dataset = "d";
  backends[1].num_nodes = 4;
  backends[1].replica_id = 1;
  ClusterServiceConfig config;
  config.des.seed = seed;
  return ClusterService(g, backends, config);
}

std::vector<Submission> replica_submissions(const graph::EdgeList& g, std::size_t count) {
  const auto specs = runtime::paper_mix(count, g.num_vertices(), 9);
  std::vector<Submission> submissions(count);
  for (std::size_t j = 0; j < count; ++j) {
    submissions[j].spec = specs[j];
    submissions[j].arrival_ns = j * 300'000;
    submissions[j].dataset = "d";
  }
  return submissions;
}

std::uint64_t count_outcome(const std::vector<JobReport>& reports,
                            service::Outcome outcome) {
  std::uint64_t n = 0;
  for (const JobReport& r : reports) {
    if (r.outcome == outcome) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Satellite 1: named RNG streams + empty-plan golden pins
// ---------------------------------------------------------------------------

TEST(RngStreams, StreamZeroIsTheRootItself) {
  EXPECT_EQ(util::derive_stream_seed(0xFA11, 0), 0xFA11u);
  EXPECT_NE(util::derive_stream_seed(0xFA11, 1), 0xFA11u);
  EXPECT_NE(util::derive_stream_seed(0xFA11, 1), util::derive_stream_seed(0xFA11, 2));
  // Siblings of different roots differ too (no accidental collisions for
  // nearby roots).
  EXPECT_NE(util::derive_stream_seed(1, 1), util::derive_stream_seed(2, 1));
}

TEST(RngStreams, FaultStreamDrawsNeverPerturbJitterSequence) {
  EventLoop clean(0xFA11);
  EventLoop drained(0xFA11);
  for (int i = 0; i < 100; ++i) drained.fault_rng().next();  // fault-side noise
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(clean.jittered(1'000'000, 0.05), drained.jittered(1'000'000, 0.05));
  }
}

TEST(GoldenPin, DesRunTraceHashUnchangedFromSeedBuild) {
  const auto g = test_graph();
  const DesEstimate estimate = golden_des_run(g);
  EXPECT_EQ(estimate.trace_hash, kGoldenDesRunHash)
      << "a fault-free des_run no longer reproduces the pre-fault-subsystem trace";
}

TEST(GoldenPin, ServiceEmptyFaultPlanTraceHashUnchangedFromSeedBuild) {
  const auto g = test_graph();
  auto service = golden_service(g);
  const auto submissions = golden_submissions(g);

  const auto stats = service.run(submissions);
  EXPECT_EQ(service.last_trace_hash(), kGoldenServiceHash);
  EXPECT_EQ(stats[0].completed + stats[1].completed, 8u);

  // Passing an explicitly empty plan is the same run.
  service.run(submissions, FaultPlan{});
  EXPECT_EQ(service.last_trace_hash(), kGoldenServiceHash);
}

TEST(GoldenPin, NoOpFaultAfterCompletionOnlyAppendsFaultRecords) {
  // A 1.0x slowdown landing long after the last completion must not change
  // any scheduling decision: the faulted trace is the fault-free trace plus
  // exactly the inject/clear records at the end.
  const auto g = test_graph();
  auto service = golden_service(g, /*record_trace=*/true);
  const auto submissions = golden_submissions(g);

  service.run(submissions);
  const std::vector<TraceRecord> clean = service.last_trace();

  FaultPlan plan;
  FaultEvent late;
  late.kind = FaultKind::kSlowdown;
  late.backend = 0;
  late.at_ns = 1'000'000'000;  // way past the last job
  late.duration_ns = 1'000;
  late.factor = 1.0;
  plan.events.push_back(late);
  service.run(submissions, plan);
  const std::vector<TraceRecord> faulted = service.last_trace();

  ASSERT_EQ(faulted.size(), clean.size() + 2);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(faulted[i], clean[i]) << "prefix diverged at record " << i;
  }
  EXPECT_EQ(faulted[clean.size()].code, TraceCode::kFaultInjected);
  EXPECT_EQ(faulted[clean.size() + 1].code, TraceCode::kFaultCleared);
}

// ---------------------------------------------------------------------------
// Satellite 2: terminal-outcome conservation
// ---------------------------------------------------------------------------

TEST(Conservation, EverySubmissionLandsInExactlyOneOutcomeUnderAStorm) {
  const auto g = test_graph();
  auto service = replica_service(g);
  const auto submissions = replica_submissions(g, 16);

  StormConfig storm;
  storm.horizon_ns = 4'000'000;
  storm.crashes = 2;
  storm.slowdowns = 2;
  storm.partitions = 1;
  const FaultPlan plan = FaultPlan::storm(0xFA11, service.num_backends(), storm);
  ASSERT_EQ(plan.events.size(), 5u);

  service.run(submissions, plan);
  const auto& reports = service.last_job_reports();
  ASSERT_EQ(reports.size(), submissions.size()) << "jobs lost or duplicated";

  std::uint64_t sum = 0;
  for (const auto outcome :
       {service::Outcome::kCompleted, service::Outcome::kRejected,
        service::Outcome::kDeadlineShed, service::Outcome::kDeadlineAborted,
        service::Outcome::kFailoverShed, service::Outcome::kUnroutable,
        service::Outcome::kSloShed}) {
    sum += count_outcome(reports, outcome);
  }
  EXPECT_EQ(sum, submissions.size()) << "conservation law violated";
  for (std::size_t j = 0; j < reports.size(); ++j) {
    EXPECT_EQ(reports[j].job, static_cast<std::uint32_t>(j));
    EXPECT_GT(reports[j].completion_ns + 1, 0u);  // terminal state latched
  }
  // Cross-check the per-backend completed counters against the reports.
  const auto stats2 = service.run(submissions, plan);
  EXPECT_EQ(stats2[0].completed + stats2[1].completed,
            count_outcome(service.last_job_reports(), service::Outcome::kCompleted));
}

TEST(Conservation, UnroutableDatasetIsATerminalOutcome) {
  const auto g = test_graph();
  auto service = replica_service(g);
  auto submissions = replica_submissions(g, 4);
  submissions[2].dataset = "nonexistent";

  service.run(submissions);
  EXPECT_EQ(service.unroutable(), 1u);
  const auto& reports = service.last_job_reports();
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports[2].outcome, service::Outcome::kUnroutable);
  EXPECT_EQ(reports[2].backend, kNoBackend);
  EXPECT_EQ(count_outcome(reports, service::Outcome::kCompleted), 3u);
}

// ---------------------------------------------------------------------------
// Satellite 3: failover correctness
// ---------------------------------------------------------------------------

TEST(Failover, ReplicasServeByteIdenticalShardData) {
  const auto g = test_graph();
  auto service = replica_service(g);
  ASSERT_EQ(service.num_shards(), 1u);
  const graph::EdgeList& a = service.shard(0);
  const graph::EdgeList& b = service.shard(1);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(0, std::memcmp(a.edges().data(), b.edges().data(),
                           a.num_edges() * sizeof(graph::Edge)))
      << "a failover would route reads to different data";
}

TEST(Failover, PermanentCrashDrainsQueueToSurvivingReplica) {
  const auto g = test_graph();
  auto service = replica_service(g);
  const auto submissions = replica_submissions(g, 8);

  // Fault-free baseline: everything completes, spread over both replicas.
  const auto clean = service.run(submissions);
  ASSERT_EQ(clean[0].completed + clean[1].completed, 8u);
  ASSERT_GT(clean[0].completed, 0u);
  const auto clean_reports = service.last_job_reports();

  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.backend = 0;
  crash.at_ns = 500'000;     // mid-run: jobs in flight and queued
  crash.duration_ns = 0;     // permanent
  plan.events.push_back(crash);

  const auto stats = service.run(submissions, plan);
  const auto& reports = service.last_job_reports();
  const FaultStats& fstats = service.last_fault_stats();

  // Zero jobs lost: the survivor absorbed everything.
  EXPECT_EQ(count_outcome(reports, service::Outcome::kCompleted), 8u);
  EXPECT_EQ(stats[0].completed + stats[1].completed, 8u);
  EXPECT_GT(stats[1].completed, clean[1].completed) << "replica 1 absorbed failovers";

  // The protocol actually ran: crash observed, backend declared dead, at
  // least one job redispatched into the survivor.
  EXPECT_EQ(fstats.crashes, 1u);
  EXPECT_GE(fstats.failovers, 1u) << "dead declaration (queue drain) never happened";
  EXPECT_GE(fstats.redispatched_jobs, 1u);
  EXPECT_EQ(stats[1].redispatched_in, fstats.redispatched_jobs);
  EXPECT_EQ(fstats.failover_shed, 0u) << "a live replica existed; nothing may shed";

  // Surviving jobs end in the same terminal outcome as the fault-free run
  // (all completed), against byte-identical shard data — the failover
  // changed placement and timing, never results.
  for (std::size_t j = 0; j < reports.size(); ++j) {
    EXPECT_EQ(reports[j].outcome, clean_reports[j].outcome) << "job " << j;
  }
}

TEST(Failover, CrashWindowClearsAndBackendRejoins) {
  const auto g = test_graph();
  auto service = replica_service(g);
  // Long arrival tail so traffic continues well past the rejoin.
  const auto specs = runtime::paper_mix(12, g.num_vertices(), 9);
  std::vector<Submission> submissions(12);
  for (std::size_t j = 0; j < 12; ++j) {
    submissions[j].spec = specs[j];
    submissions[j].arrival_ns = j * 1'500'000;
    submissions[j].dataset = "d";
  }

  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.backend = 0;
  crash.at_ns = 500'000;
  crash.duration_ns = 6'000'000;  // > dead_after_ns: declared dead, then back
  plan.events.push_back(crash);

  const auto stats = service.run(submissions, plan);
  const FaultStats& fstats = service.last_fault_stats();
  const auto& reports = service.last_job_reports();

  EXPECT_GE(fstats.failovers, 1u);
  EXPECT_GE(fstats.rejoins, 1u) << "the backend never rejoined after its window";
  EXPECT_EQ(count_outcome(reports, service::Outcome::kCompleted), 12u);
  // Routing resumed: the rejoined backend completed work arriving after the
  // window (it was dead 0.5ms..6.5ms; arrivals run to 16.5ms).
  EXPECT_GT(stats[0].completed, 0u);
}

TEST(Failover, AllReplicasDownShedsGracefullyWithinRetryBudget) {
  const auto g = test_graph();
  auto service = replica_service(g);
  const auto submissions = replica_submissions(g, 6);

  FaultPlan plan;
  for (std::uint32_t b = 0; b < 2; ++b) {
    FaultEvent crash;
    crash.kind = FaultKind::kCrash;
    crash.backend = b;
    crash.at_ns = 200'000;
    crash.duration_ns = 0;  // both replicas permanently dead
    plan.events.push_back(crash);
  }

  service.run(submissions, plan);
  const auto& reports = service.last_job_reports();
  const FaultStats& fstats = service.last_fault_stats();

  // Nothing hangs, nothing is lost: every job reaches a terminal outcome,
  // and everything that could not run was shed gracefully.
  ASSERT_EQ(reports.size(), 6u);
  const std::uint64_t completed = count_outcome(reports, service::Outcome::kCompleted);
  const std::uint64_t shedded = count_outcome(reports, service::Outcome::kFailoverShed);
  EXPECT_EQ(completed + shedded, 6u);
  EXPECT_GE(shedded, 1u);
  EXPECT_EQ(fstats.failover_shed, shedded);
  for (const JobReport& r : reports) {
    if (r.outcome == service::Outcome::kFailoverShed) {
      EXPECT_LE(r.attempts, FailoverConfig{}.retry_budget);
    }
  }
}

TEST(Failover, PartitionHoldsCrossCutTrafficUntilHeal) {
  const auto g = test_graph();
  auto service = replica_service(g);
  const auto submissions = replica_submissions(g, 4);

  const auto clean = service.run(submissions);
  const std::uint64_t clean_max = std::max(clean[0].e2e.max_ns, clean[1].e2e.max_ns);

  FaultPlan plan;
  FaultEvent cut;
  cut.kind = FaultKind::kPartition;
  cut.backend = 0;
  cut.at_ns = 100'000;
  cut.duration_ns = 2'000'000;
  plan.events.push_back(cut);

  const auto faulted = service.run(submissions, plan);
  const auto& reports = service.last_job_reports();

  // A partition stalls barriers but loses nothing: all jobs still complete
  // (after the heal releases the held transfers), strictly slower.
  EXPECT_EQ(count_outcome(reports, service::Outcome::kCompleted), 4u);
  const std::uint64_t faulted_max =
      std::max(faulted[0].e2e.max_ns, faulted[1].e2e.max_ns);
  EXPECT_GT(faulted_max, clean_max);
  EXPECT_EQ(service.last_fault_stats().partitions, 1u);
}

// ---------------------------------------------------------------------------
// Fault plans replay deterministically
// ---------------------------------------------------------------------------

TEST(FaultDeterminism, SameSeedSamePlanBitIdenticalRuns) {
  const auto g = test_graph();
  auto service = replica_service(g);
  const auto submissions = replica_submissions(g, 12);
  const FaultPlan plan = FaultPlan::storm(0xFA11, 2);

  service.run(submissions, plan);
  const std::uint64_t hash_a = service.last_trace_hash();
  const std::uint64_t events_a = service.last_events();
  const auto reports_a = service.last_job_reports();

  service.run(submissions, plan);
  EXPECT_EQ(service.last_trace_hash(), hash_a);
  EXPECT_EQ(service.last_events(), events_a);
  const auto& reports_b = service.last_job_reports();
  ASSERT_EQ(reports_a.size(), reports_b.size());
  for (std::size_t j = 0; j < reports_a.size(); ++j) {
    EXPECT_EQ(reports_a[j].outcome, reports_b[j].outcome);
    EXPECT_EQ(reports_a[j].backend, reports_b[j].backend);
    EXPECT_EQ(reports_a[j].completion_ns, reports_b[j].completion_ns);
    EXPECT_EQ(reports_a[j].attempts, reports_b[j].attempts);
  }
}

TEST(FaultDeterminism, StormSynthesisIsSeedStable) {
  const FaultPlan a = FaultPlan::storm(7, 4);
  const FaultPlan b = FaultPlan::storm(7, 4);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.events, b.events);
  const FaultPlan c = FaultPlan::storm(8, 4);
  EXPECT_NE(a.events, c.events);
  // sorted() is a total order over (time, backend, kind).
  const auto sorted = a.sorted();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i - 1].at_ns, sorted[i].at_ns);
  }
}

TEST(FaultDeterminism, FaultJitterDrawsFromFaultStreamOnly) {
  // With fault_jitter_ns set, injection times shift — but only fault-side:
  // the fault-free run at the same seed still matches the golden hash
  // because the jitter stream never sees the fault draws.
  const auto g = test_graph();
  std::vector<BackendConfig> backends(2);
  backends[0].dataset = "d";
  backends[0].num_nodes = 4;
  backends[1].dataset = "d";
  backends[1].num_nodes = 4;
  ClusterServiceConfig config;
  config.des.seed = 0xFA11;
  config.des.fault_jitter_ns = 200'000;
  ClusterService service(g, backends, config);
  const auto submissions = replica_submissions(g, 8);

  const FaultPlan plan = FaultPlan::storm(0xFA11, 2);
  service.run(submissions, plan);
  const std::uint64_t jittered_hash = service.last_trace_hash();
  service.run(submissions, plan);
  EXPECT_EQ(service.last_trace_hash(), jittered_hash) << "fault jitter must be seeded";

  // Same service, no plan: identical to a service without fault jitter.
  service.run(submissions);
  const std::uint64_t clean_hash = service.last_trace_hash();
  ClusterService no_jitter(g, backends, [&] {
    ClusterServiceConfig c;
    c.des.seed = 0xFA11;
    return c;
  }());
  no_jitter.run(submissions);
  EXPECT_EQ(no_jitter.last_trace_hash(), clean_hash);
}

}  // namespace
}  // namespace graphm::cluster
