// The cluster subsystem's contracts: (1) determinism — a DES run is a pure
// function of (inputs, seed), witnessed by bit-identical event traces; (2)
// the analytic anchor — on single-bottleneck configs with the noise knobs
// zeroed, the message-level simulation lands within a stated tolerance of
// the closed-form engines (sanity, not equivalence); (3) the paper's scheme
// shapes emerge from messages (sharing wins, Chaos-C inversion, node
// scaling); (4) ClusterService routing/admission/SLO reporting.
#include <gtest/gtest.h>

#include "cluster/cluster_service.hpp"
#include "cluster/des_engine.hpp"
#include "dist/chaos_engine.hpp"
#include "dist/powergraph_engine.hpp"
#include "runtime/workloads.hpp"
#include "test_helpers.hpp"

namespace graphm::cluster {
namespace {

graph::EdgeList test_graph() { return test::small_rmat(1024, 20000, 31); }

/// Noise knobs zeroed: the DES collapses onto pure bandwidth/compute terms.
DesConfig quiet_config(std::uint64_t seed = 1) {
  DesConfig config;
  config.seed = seed;
  config.compute_jitter = 0.0;
  config.disk_switch_ns = 0;
  config.net_latency_ns = 0;
  config.superstep_overhead_ns = 0;
  return config;
}

algos::JobSpec pagerank_spec(std::uint32_t iterations) {
  algos::JobSpec spec;
  spec.kind = algos::AlgorithmKind::kPageRank;
  spec.max_iterations = iterations;
  return spec;
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(DesDeterminism, SameSeedBitIdenticalTraceAndStats) {
  const auto g = test_graph();
  const auto profiles = dist::profile_jobs(g, runtime::paper_mix(6, g.num_vertices(), 4));
  dist::ClusterConfig cluster;
  cluster.num_nodes = 8;
  DesConfig config;
  config.seed = 0xABCD;
  config.record_trace = true;

  for (const Backend backend : {Backend::kPowerGraph, Backend::kChaos}) {
    for (const auto kind :
         {dist::DistScheme::kSequential, dist::DistScheme::kConcurrent,
          dist::DistScheme::kShared}) {
      const dist::DistScheme scheme{kind};
      const DesEstimate a = des_run(backend, scheme, profiles, g, cluster, config);
      const DesEstimate b = des_run(backend, scheme, profiles, g, cluster, config);
      ASSERT_FALSE(a.trace.empty());
      EXPECT_EQ(a.trace, b.trace) << backend_name(backend) << " scheme " << kind;
      EXPECT_EQ(a.trace_hash, b.trace_hash);
      EXPECT_EQ(a.events, b.events);
      EXPECT_EQ(a.seconds, b.seconds) << "not even last-bit drift is allowed";
      EXPECT_EQ(a.job_completion_s, b.job_completion_s);
      EXPECT_EQ(a.structure_loads, b.structure_loads);
    }
  }
}

TEST(DesDeterminism, DifferentSeedDifferentJitteredTrace) {
  const auto g = test_graph();
  const auto profiles = dist::profile_jobs(g, runtime::paper_mix(4, g.num_vertices(), 4));
  dist::ClusterConfig cluster;
  cluster.num_nodes = 8;
  DesConfig config;
  config.compute_jitter = 0.05;  // seeds must matter through the jitter draws
  config.seed = 1;
  const auto a = des_run(Backend::kPowerGraph, {dist::DistScheme::kShared}, profiles, g,
                         cluster, config);
  config.seed = 2;
  const auto b = des_run(Backend::kPowerGraph, {dist::DistScheme::kShared}, profiles, g,
                         cluster, config);
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

// ---------------------------------------------------------------------------
// Analytic anchor: single job, single bottleneck, zero noise
// ---------------------------------------------------------------------------

TEST(DesAnchor, PowerGraphSingleJobMatchesAnalyticWithin15Percent) {
  const auto g = test_graph();
  const auto profiles = dist::profile_jobs(g, {pagerank_spec(6)});
  dist::ClusterConfig cluster;
  cluster.num_nodes = 4;
  const dist::DistScheme scheme{dist::DistScheme::kSequential};

  const dist::RunEstimate analytic = dist::run_powergraph(scheme, profiles, g, cluster);
  const DesEstimate des =
      des_run(Backend::kPowerGraph, scheme, profiles, g, cluster, quiet_config());
  ASSERT_GT(analytic.seconds, 0.0);
  ASSERT_GT(des.seconds, 0.0);
  EXPECT_NEAR(des.seconds / analytic.seconds, 1.0, 0.15)
      << "des=" << des.seconds << "s analytic=" << analytic.seconds << "s";
  EXPECT_EQ(des.structure_loads, analytic.structure_loads);
}

TEST(DesAnchor, ChaosSingleJobMatchesAnalyticWithin15Percent) {
  const auto g = test_graph();
  const auto profiles = dist::profile_jobs(g, {pagerank_spec(6)});
  dist::ClusterConfig cluster;
  cluster.num_nodes = 4;
  const dist::DistScheme scheme{dist::DistScheme::kSequential};

  const dist::RunEstimate analytic = dist::run_chaos(scheme, profiles, g, cluster);
  const DesEstimate des =
      des_run(Backend::kChaos, scheme, profiles, g, cluster, quiet_config());
  ASSERT_GT(analytic.seconds, 0.0);
  EXPECT_NEAR(des.seconds / analytic.seconds, 1.0, 0.15)
      << "des=" << des.seconds << "s analytic=" << analytic.seconds << "s";
  EXPECT_EQ(des.structure_loads, analytic.structure_loads);
}

// ---------------------------------------------------------------------------
// Scheme shapes emerge from messages
// ---------------------------------------------------------------------------

struct DesCase {
  Backend backend;
};

class DesSchemes : public ::testing::TestWithParam<DesCase> {};

TEST_P(DesSchemes, SharedBeatsSequentialAndConcurrent) {
  const auto g = test_graph();
  const auto profiles = dist::profile_jobs(g, runtime::paper_mix(8, g.num_vertices(), 4));
  dist::ClusterConfig cluster;
  cluster.num_nodes = 16;
  const Backend backend = GetParam().backend;

  const auto s = des_run(backend, {dist::DistScheme::kSequential}, profiles, g, cluster);
  const auto c = des_run(backend, {dist::DistScheme::kConcurrent}, profiles, g, cluster);
  const auto m = des_run(backend, {dist::DistScheme::kShared}, profiles, g, cluster);

  EXPECT_LT(m.seconds, s.seconds) << "-M must beat -S (Table 4, DES)";
  EXPECT_LT(m.seconds, c.seconds) << "-M must beat -C (Table 4, DES)";
  EXPECT_LT(m.structure_loads, s.structure_loads);
  EXPECT_LT(m.disk_gb, s.disk_gb) << "sharing must remove structure traffic, not just time";
}

TEST_P(DesSchemes, MoreNodesHelp) {
  const auto g = test_graph();
  const auto profiles = dist::profile_jobs(g, runtime::paper_mix(4, g.num_vertices(), 4));
  dist::ClusterConfig small;
  small.num_nodes = 8;
  dist::ClusterConfig big;
  big.num_nodes = 16;
  const Backend backend = GetParam().backend;
  const auto t8 = des_run(backend, {dist::DistScheme::kShared}, profiles, g, small);
  const auto t16 = des_run(backend, {dist::DistScheme::kShared}, profiles, g, big);
  EXPECT_LT(t16.seconds, t8.seconds) << "Figure 21 under the DES: scaling out helps";
}

INSTANTIATE_TEST_SUITE_P(Backends, DesSchemes,
                         ::testing::Values(DesCase{Backend::kPowerGraph},
                                           DesCase{Backend::kChaos}),
                         [](const auto& info) { return backend_name(info.param.backend); });

TEST(DesChaos, ConcurrentStreamsSeekPastEachOther) {
  // The Table-4 inversion as an *emergent* effect: -C's interleaved
  // full-graph streams pay disk seeks that back-to-back -S never does.
  const auto g = test_graph();
  const auto profiles = dist::profile_jobs(g, runtime::paper_mix(8, g.num_vertices(), 4));
  dist::ClusterConfig cluster;
  cluster.num_nodes = 8;
  const auto s = des_run(Backend::kChaos, {dist::DistScheme::kSequential}, profiles, g, cluster);
  const auto c = des_run(Backend::kChaos, {dist::DistScheme::kConcurrent}, profiles, g, cluster);
  EXPECT_GT(c.seconds, s.seconds);
  // With the seek zeroed the inversion disappears — the effect is the seek,
  // nothing else in the model.
  const auto c_no_seek = des_run(Backend::kChaos, {dist::DistScheme::kConcurrent}, profiles,
                                 g, cluster, quiet_config());
  const auto s_no_seek = des_run(Backend::kChaos, {dist::DistScheme::kSequential}, profiles,
                                 g, cluster, quiet_config());
  EXPECT_LE(c_no_seek.seconds, s_no_seek.seconds * 1.01);
}

TEST(DesPowerGraph, InfeasibleWhenGraphExceedsNodeMemory) {
  const auto g = test_graph();
  const auto profiles = dist::profile_jobs(g, runtime::paper_mix(2, g.num_vertices(), 4));
  dist::ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.node_memory_bytes = 1024;
  const auto m = des_run(Backend::kPowerGraph, {dist::DistScheme::kShared}, profiles, g, cluster);
  EXPECT_FALSE(m.feasible);
  EXPECT_GT(m.seconds, 0.0) << "infeasible configs still report a time, like the analytic model";
}

TEST(DesPowerGraph, SharedModeAccountsEveryResidentJobsMemory) {
  // -M loads the structure once, but every resident job still adds its
  // replicated vertex data — the analytic engine's k * job_mem_per_node
  // term. Size node memory so the structure plus one job fits and eight
  // concurrent jobs do not.
  const auto g = test_graph();
  const auto profiles = dist::profile_jobs(g, runtime::paper_mix(8, g.num_vertices(), 4));
  const Placement placement = vertex_cut_placement(g, 4);
  const double structure_bytes =
      static_cast<double>(g.num_edges()) * sizeof(graph::Edge);
  const double vertex_bytes =
      static_cast<double>(g.num_vertices()) * dist::kVertexValueBytes;
  const double structure_per_node =
      (structure_bytes + placement.replication * vertex_bytes) / 4.0;
  const double job_per_node = placement.replication * vertex_bytes / 4.0;

  dist::ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.node_memory_bytes =
      static_cast<std::uint64_t>(structure_per_node + 2.0 * job_per_node);

  const std::vector<dist::JobProfile> one{profiles[0]};
  EXPECT_TRUE(
      des_run(Backend::kPowerGraph, {dist::DistScheme::kShared}, one, g, cluster).feasible);
  EXPECT_FALSE(
      des_run(Backend::kPowerGraph, {dist::DistScheme::kShared}, profiles, g, cluster)
          .feasible)
      << "concurrent -M jobs' vertex data must count against node memory";
}

TEST(DesGroups, GroupsAreResourceDisjoint) {
  const auto g = test_graph();
  const auto profiles = dist::profile_jobs(g, runtime::paper_mix(4, g.num_vertices(), 4));
  dist::ClusterConfig one;
  one.num_nodes = 16;
  one.num_groups = 1;
  dist::ClusterConfig four = one;
  four.num_groups = 4;
  const auto grouped =
      des_run(Backend::kPowerGraph, {dist::DistScheme::kSequential}, profiles, g, four);
  const auto single =
      des_run(Backend::kPowerGraph, {dist::DistScheme::kSequential}, profiles, g, one);
  EXPECT_GT(grouped.seconds, 0.0);
  EXPECT_GT(single.seconds, 0.0);
  for (const double t : grouped.job_completion_s) EXPECT_GT(t, 0.0);
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

TEST(Placement, SharesSumToOneAndReplicationMatchesDist) {
  const auto g = test_graph();
  const Placement p = vertex_cut_placement(g, 8);
  double total = 0.0;
  for (const double share : p.edge_share) total += share;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(p.replication, dist::replication_factor(g, 8));
  EXPECT_GE(p.max_share(), 1.0 / 8.0);
}

TEST(Placement, ShardBySourcePartitionsEdgesExactly) {
  const auto g = test_graph();
  const auto shards = shard_by_source(g, 3);
  ASSERT_EQ(shards.size(), 3u);
  graph::EdgeCount total = 0;
  for (const auto& shard : shards) {
    EXPECT_EQ(shard.num_vertices(), g.num_vertices()) << "full vertex space per shard";
    total += shard.num_edges();
  }
  EXPECT_EQ(total, g.num_edges());
  // Source ranges are disjoint: max src of shard i < min src of shard i+1.
  for (std::size_t s = 0; s + 1 < shards.size(); ++s) {
    if (shards[s].num_edges() == 0 || shards[s + 1].num_edges() == 0) continue;
    graph::VertexId max_src = 0;
    for (const auto& e : shards[s].edges()) max_src = std::max(max_src, e.src);
    graph::VertexId min_next = shards[s + 1].edges().front().src;
    for (const auto& e : shards[s + 1].edges()) min_next = std::min(min_next, e.src);
    EXPECT_LT(max_src, min_next);
  }
}

// ---------------------------------------------------------------------------
// ClusterService: routing, admission, SLO stats
// ---------------------------------------------------------------------------

ClusterServiceConfig service_config() {
  ClusterServiceConfig config;
  config.node.num_nodes = 0;  // ignored; BackendConfig::num_nodes governs
  config.des = quiet_config(7);
  return config;
}

std::vector<Submission> staggered_submissions(std::size_t count, const graph::EdgeList& g,
                                              std::uint64_t gap_ns,
                                              const std::string& dataset = "") {
  const auto specs = runtime::paper_mix(count, g.num_vertices(), 9);
  std::vector<Submission> submissions;
  for (std::size_t j = 0; j < count; ++j) {
    Submission s;
    s.spec = specs[j];
    s.arrival_ns = j * gap_ns;
    s.dataset = dataset;
    submissions.push_back(std::move(s));
  }
  return submissions;
}

TEST(ClusterServiceTest, RoutesByDatasetAndReportsPerBackendStats) {
  const auto g = test_graph();
  std::vector<BackendConfig> backends(2);
  backends[0].dataset = "left";
  backends[0].engine = Backend::kPowerGraph;
  backends[0].num_nodes = 4;
  backends[1].dataset = "right";
  backends[1].engine = Backend::kChaos;
  backends[1].num_nodes = 4;
  ClusterService service(g, backends, service_config());

  auto submissions = staggered_submissions(8, g, 1'000'000);
  for (std::size_t j = 0; j < submissions.size(); ++j) {
    submissions[j].dataset = j % 2 == 0 ? "left" : "right";
  }
  const auto stats = service.run(submissions);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].submitted, 4u);
  EXPECT_EQ(stats[1].submitted, 4u);
  EXPECT_EQ(stats[0].completed, 4u);
  EXPECT_EQ(stats[1].completed, 4u);
  EXPECT_EQ(service.unroutable(), 0u);
  for (const auto& backend : stats) {
    EXPECT_EQ(backend.e2e.count, 4u);
    EXPECT_GT(backend.e2e.p50_ns, 0u);
    EXPECT_GE(backend.e2e.p99_ns, backend.e2e.p50_ns);
    EXPECT_GT(backend.stream_time.p50_ns, 0u);
    EXPECT_GT(backend.structure_loads, 0.0);
  }
}

TEST(ClusterServiceTest, UnnamedSubmissionsBalanceAndUnknownDatasetsDrop) {
  const auto g = test_graph();
  std::vector<BackendConfig> backends(2);
  backends[0].dataset = "a";
  backends[0].num_nodes = 4;
  backends[1].dataset = "b";
  backends[1].num_nodes = 4;
  ClusterService service(g, backends, service_config());

  auto submissions = staggered_submissions(6, g, 0);  // all at t=0, unnamed
  Submission stray;
  stray.spec = pagerank_spec(2);
  stray.dataset = "nope";
  submissions.push_back(stray);

  const auto stats = service.run(submissions);
  EXPECT_EQ(service.unroutable(), 1u);
  EXPECT_GT(stats[0].submitted, 0u) << "least-loaded routing must spread jobs";
  EXPECT_GT(stats[1].submitted, 0u);
  EXPECT_EQ(stats[0].submitted + stats[1].submitted, 6u);
}

TEST(ClusterServiceTest, BackpressureRejectsBeyondQueueDepth) {
  const auto g = test_graph();
  std::vector<BackendConfig> backends(1);
  backends[0].dataset = "only";
  backends[0].num_nodes = 2;
  backends[0].max_concurrent = 1;
  backends[0].max_queue_depth = 2;
  ClusterService service(g, backends, service_config());

  const auto stats = service.run(staggered_submissions(8, g, 0, "only"));
  EXPECT_GT(stats[0].rejected, 0u);
  EXPECT_EQ(stats[0].submitted, 8u);
  EXPECT_EQ(stats[0].completed + stats[0].rejected, 8u);
}

TEST(ClusterServiceTest, SharedStructureLoadsOnceAndServesEveryJob) {
  const auto g = test_graph();
  const auto submissions = staggered_submissions(6, g, 100'000, "pg");

  std::vector<BackendConfig> backends(1);
  backends[0].dataset = "pg";
  backends[0].engine = Backend::kPowerGraph;
  backends[0].num_nodes = 4;
  backends[0].shared_structure = true;
  ClusterService shared(g, backends, service_config());
  const auto shared_stats = shared.run(submissions);

  backends[0].shared_structure = false;
  ClusterService isolated(g, backends, service_config());
  const auto isolated_stats = isolated.run(submissions);

  EXPECT_EQ(shared_stats[0].completed, 6u);
  EXPECT_EQ(isolated_stats[0].completed, 6u);
  EXPECT_EQ(shared_stats[0].structure_loads, 1.0)
      << "first job loads, every later arrival attaches";
  EXPECT_EQ(isolated_stats[0].structure_loads, 6.0);
  EXPECT_LE(shared_stats[0].e2e.p95_ns, isolated_stats[0].e2e.p95_ns)
      << "sharing the structure must not cost latency on this stream";
}

TEST(ClusterServiceTest, ChaosSharedStreamCarriesMidStreamAttaches) {
  const auto g = test_graph();
  std::vector<BackendConfig> backends(1);
  backends[0].dataset = "chaos";
  backends[0].engine = Backend::kChaos;
  backends[0].num_nodes = 4;
  backends[0].shared_structure = true;
  ClusterService service(g, backends, service_config());

  // Stagger arrivals so later jobs land mid-stream and attach at superstep
  // boundaries instead of starting their own pass.
  const auto submissions = staggered_submissions(5, g, 400'000, "chaos");
  const auto stats = service.run(submissions);
  EXPECT_EQ(stats[0].completed, 5u);

  double sum_iterations = 0;
  for (const auto& s : submissions) {
    sum_iterations += static_cast<double>(dist::profile_job(g, s.spec).iterations());
  }
  EXPECT_LT(stats[0].structure_loads, sum_iterations)
      << "riders must share full-graph passes";
}

TEST(ClusterServiceTest, BatchPolicyHoldsUntilKThenReleasesTogether) {
  const auto g = test_graph();
  std::vector<BackendConfig> backends(1);
  backends[0].dataset = "batched";
  backends[0].num_nodes = 4;
  backends[0].policy = service::AdmissionPolicy::kBatchUntilK;
  backends[0].batch_k = 3;
  backends[0].batch_max_wait_ns = 1'000'000'000;  // far beyond the arrivals
  ClusterService service(g, backends, service_config());

  const std::uint64_t gap = 2'000'000;
  const auto stats = service.run(staggered_submissions(3, g, gap, "batched"));
  ASSERT_EQ(stats[0].completed, 3u);
  // Held until the third arrival: the first job waited ~2 gaps, the last ~0.
  EXPECT_GE(stats[0].queue_wait.max_ns, static_cast<double>(2 * gap));
}

TEST(ClusterServiceTest, BatchTimerFlushesPartialBatches) {
  const auto g = test_graph();
  std::vector<BackendConfig> backends(1);
  backends[0].dataset = "batched";
  backends[0].num_nodes = 4;
  backends[0].policy = service::AdmissionPolicy::kBatchUntilK;
  backends[0].batch_k = 16;  // never reached
  backends[0].batch_max_wait_ns = 5'000'000;
  ClusterService service(g, backends, service_config());
  const auto stats = service.run(staggered_submissions(2, g, 1'000'000, "batched"));
  EXPECT_EQ(stats[0].completed, 2u) << "a partial batch must not dam the queue forever";
  EXPECT_GE(stats[0].queue_wait.max_ns, 4e6);
}

TEST(ClusterServiceTest, DeadlinePolicyDispatchesTightestFirstAndCountsMisses) {
  const auto g = test_graph();
  std::vector<BackendConfig> backends(1);
  backends[0].dataset = "edf";
  backends[0].num_nodes = 4;
  backends[0].max_concurrent = 1;  // force queueing so order is observable
  backends[0].policy = service::AdmissionPolicy::kDeadline;
  ClusterServiceConfig config = service_config();
  config.des.record_trace = true;  // dispatch order read from the trace
  ClusterService service(g, backends, config);

  auto submissions = staggered_submissions(4, g, 0, "edf");
  // Arrival order 0..3 but deadlines inverted; an impossible deadline on the
  // last job must be counted as a miss.
  submissions[0].deadline_ns = 0;  // none: sorts last
  submissions[1].deadline_ns = 400'000'000;
  submissions[2].deadline_ns = 200'000'000;
  submissions[3].deadline_ns = 1;
  const auto stats = service.run(submissions);
  EXPECT_EQ(stats[0].completed, 4u);
  EXPECT_GE(stats[0].deadline_misses, 1u);

  // Job 0 grabs the free slot on arrival; the queued rest must leave EDF:
  // tightest deadline first, the deadline-less job last.
  std::vector<std::uint32_t> dispatch_order;
  for (const TraceRecord& record : service.last_trace()) {
    if (record.code == TraceCode::kJobDispatched) dispatch_order.push_back(record.job);
  }
  EXPECT_EQ(dispatch_order, (std::vector<std::uint32_t>{0, 3, 2, 1}));
}

TEST(ClusterServiceTest, RunsAreDeterministic) {
  const auto g = test_graph();
  std::vector<BackendConfig> backends(2);
  backends[0].dataset = "a";
  backends[0].num_nodes = 4;
  backends[1].dataset = "b";
  backends[1].engine = Backend::kChaos;
  backends[1].num_nodes = 4;
  ClusterServiceConfig config = service_config();
  config.des.compute_jitter = 0.05;  // noise on, still reproducible
  config.des.record_trace = true;
  ClusterService service(g, backends, config);

  const auto submissions = staggered_submissions(8, g, 300'000);
  const auto first = service.run(submissions);
  const std::uint64_t hash = service.last_trace_hash();
  const auto trace = service.last_trace();
  const auto second = service.run(submissions);
  EXPECT_EQ(service.last_trace_hash(), hash);
  EXPECT_EQ(service.last_trace(), trace);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t b = 0; b < first.size(); ++b) {
    EXPECT_EQ(first[b].completed, second[b].completed);
    EXPECT_EQ(first[b].e2e.p95_ns, second[b].e2e.p95_ns);
    EXPECT_EQ(first[b].structure_loads, second[b].structure_loads);
  }
}

// ---------------------------------------------------------------------------
// Deadline aborts on the simulated clock
// ---------------------------------------------------------------------------

TEST(DeadlineAbort, DispatchedJobAbortsAtBarrierAndStopsReservingResources) {
  // One 2-node Chaos backend, no sharing: every private superstep re-streams
  // the node's slice from its disk, so an aborted job's disappearance is
  // directly visible as disk bytes never reserved.
  const auto g = test_graph();
  const auto profile =
      dist::profile_job(g, pagerank_spec(/*iterations=*/12));
  dist::ClusterConfig cluster;

  auto run_once = [&](std::uint64_t abort_deadline_ns) {
    EventLoop loop(quiet_config().seed, /*record_trace=*/true);
    BackendSim sim(loop, 0, 2, g, cluster, quiet_config(), Backend::kChaos,
                   /*shared_structure=*/false);
    std::uint64_t completion_ns = 0;
    bool aborted = false;
    loop.schedule_at(0, [&] {
      sim.start_job(0, profile,
                    [&loop, &completion_ns, &aborted](JobEnd end) {
                      completion_ns = loop.now_ns();
                      aborted = end == JobEnd::kAborted;
                    },
                    abort_deadline_ns);
    });
    loop.run();
    struct Result {
      std::uint64_t completion_ns;
      bool aborted;
      std::uint64_t jobs_aborted;
      double disk_bytes;
      std::vector<TraceRecord> trace;
    };
    return Result{completion_ns, aborted, sim.jobs_aborted(), sim.disk_bytes(),
                  loop.take_trace_records()};
  };

  const auto full = run_once(/*abort_deadline_ns=*/0);
  ASSERT_FALSE(full.aborted);
  ASSERT_GT(full.completion_ns, 0u);

  // Deadline a third of the way through the full run: the job must stop at
  // the first superstep barrier past it, well before the full completion.
  const std::uint64_t deadline = full.completion_ns / 3;
  const auto cut = run_once(deadline);
  EXPECT_TRUE(cut.aborted);
  EXPECT_EQ(cut.jobs_aborted, 1u);
  EXPECT_GT(cut.completion_ns, deadline) << "aborts happen at the next barrier, not mid-superstep";
  EXPECT_LT(cut.completion_ns, full.completion_ns);
  EXPECT_LT(cut.disk_bytes, full.disk_bytes)
      << "an aborted job must stop reserving disk service on the simulated clock";

  // The abort is a traced barrier-time event carrying the deadline.
  bool saw_abort = false;
  for (const TraceRecord& record : cut.trace) {
    if (record.code == TraceCode::kJobAborted) {
      saw_abort = true;
      EXPECT_EQ(record.job, 0u);
      EXPECT_EQ(record.detail, deadline);
      EXPECT_EQ(record.t_ns, cut.completion_ns);
      EXPECT_GT(record.t_ns, deadline);
    }
  }
  EXPECT_TRUE(saw_abort);
}

TEST(DeadlineAbort, ClusterServiceFreesTheBackendForCompetingJobs) {
  // Serialized backend (max_concurrent = 1): job 0 is a long run with a
  // tight deadline, job 1 arrives behind it. With cancel_past_deadline the
  // DES aborts job 0 at a barrier and job 1 both starts and finishes
  // earlier on the simulated clock.
  const auto g = test_graph();
  std::vector<BackendConfig> backends(1);
  backends[0].dataset = "abort";
  backends[0].engine = Backend::kChaos;
  backends[0].shared_structure = false;
  backends[0].num_nodes = 2;
  backends[0].max_concurrent = 1;

  std::vector<Submission> submissions(2);
  submissions[0].spec = pagerank_spec(12);
  submissions[0].arrival_ns = 0;
  submissions[0].dataset = "abort";
  submissions[1].spec = pagerank_spec(2);
  submissions[1].arrival_ns = 1;
  submissions[1].dataset = "abort";

  // Baseline (no cancellation) to size a mid-run deadline for job 0.
  ClusterService baseline(g, backends, service_config());
  const auto without = baseline.run(submissions);
  ASSERT_EQ(without[0].completed, 2u);
  ASSERT_EQ(without[0].deadline_aborts, 0u);

  submissions[0].deadline_ns =
      service::deadline_from(submissions[0].arrival_ns, without[0].stream_time.max_ns / 4);
  backends[0].cancel_past_deadline = true;
  ClusterService service(g, backends, service_config());
  const auto with = service.run(submissions);

  EXPECT_EQ(with[0].deadline_aborts, 1u);
  EXPECT_GE(with[0].deadline_misses, 1u);
  EXPECT_EQ(with[0].completed, 1u) << "the aborted job must not count as completed";
  EXPECT_LT(with[0].e2e.max_ns, without[0].e2e.max_ns)
      << "job 1 must see the backend freed early";
}

TEST(DeadlineAbort, QueuedPastDeadlineJobIsShedAtDispatch) {
  const auto g = test_graph();
  std::vector<BackendConfig> backends(1);
  backends[0].dataset = "shed";
  backends[0].num_nodes = 2;
  backends[0].max_concurrent = 1;
  backends[0].cancel_past_deadline = true;

  std::vector<Submission> submissions(2);
  submissions[0].spec = pagerank_spec(6);
  submissions[0].arrival_ns = 0;
  submissions[0].dataset = "shed";
  // Job 1 queues behind job 0 and its deadline passes in the queue: it must
  // be shed at dispatch, never reaching the backend sim.
  submissions[1].spec = pagerank_spec(6);
  submissions[1].arrival_ns = 1;
  submissions[1].deadline_ns = 2;
  submissions[1].dataset = "shed";

  ClusterService service(g, backends, service_config());
  const auto stats = service.run(submissions);
  EXPECT_EQ(stats[0].completed, 1u);
  EXPECT_EQ(stats[0].deadline_aborts, 1u);
  EXPECT_GE(stats[0].deadline_misses, 1u);
}

// ---------------------------------------------------------------------------
// Deadline sentinel convention
// ---------------------------------------------------------------------------

TEST(DeadlineSentinel, SharedKeyAndNormalizationEnforceTheConvention) {
  // 0 is the reserved "no deadline" sentinel: it sorts after every real
  // deadline in both EDF queues (they share this key), and deadline_from
  // can never produce it — a genuine time-zero deadline stays a (tight,
  // already-missed) real deadline instead of silently becoming infinitely
  // lax.
  EXPECT_EQ(service::edf_deadline_key(service::kNoDeadline),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_LT(service::edf_deadline_key(1), service::edf_deadline_key(service::kNoDeadline));
  EXPECT_EQ(service::deadline_from(0, 0), 1u);
  EXPECT_EQ(service::deadline_from(5, 7), 12u);
}

TEST(DeadlineSentinel, NormalizedZeroDeadlineDispatchesFirstNotLast) {
  // Same shape as DeadlinePolicyDispatchesTightestFirstAndCountsMisses, but
  // the "impossible" job's deadline is built with deadline_from(0, 0). Under
  // the raw sentinel convention it would sort last; normalized it is the
  // tightest deadline in the queue and dispatches first.
  const auto g = test_graph();
  std::vector<BackendConfig> backends(1);
  backends[0].dataset = "edf0";
  backends[0].num_nodes = 4;
  backends[0].max_concurrent = 1;
  backends[0].policy = service::AdmissionPolicy::kDeadline;
  ClusterServiceConfig config = service_config();
  config.des.record_trace = true;
  ClusterService service(g, backends, config);

  auto submissions = staggered_submissions(4, g, 0, "edf0");
  submissions[0].deadline_ns = service::kNoDeadline;  // sorts last
  submissions[1].deadline_ns = 400'000'000;
  submissions[2].deadline_ns = 200'000'000;
  submissions[3].deadline_ns = service::deadline_from(0, 0);  // genuine t=0 deadline
  const auto stats = service.run(submissions);
  EXPECT_EQ(stats[0].completed, 4u);
  EXPECT_GE(stats[0].deadline_misses, 1u) << "the normalized 0-ns deadline is still a miss";

  std::vector<std::uint32_t> dispatch_order;
  for (const TraceRecord& record : service.last_trace()) {
    if (record.code == TraceCode::kJobDispatched) dispatch_order.push_back(record.job);
  }
  EXPECT_EQ(dispatch_order, (std::vector<std::uint32_t>{0, 3, 2, 1}));
}

}  // namespace
}  // namespace graphm::cluster
