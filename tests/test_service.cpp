// Service-layer tests: mid-stream attach without a fresh structure load,
// result equivalence for jobs joining an in-flight sharing group,
// admission policies (batch-until-k, EDF, backpressure), deadline handling
// (shed + mid-run cancellation via the controller's detach seam), group
// lifecycle, and the service-vs-isolated throughput relationship.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "graphm/graphm.hpp"
#include "grid/stream_engine.hpp"
#include "runtime/workloads.hpp"
#include "service/job_service.hpp"
#include "test_helpers.hpp"

namespace graphm::service {
namespace {

algos::JobSpec pagerank_spec(std::uint32_t iterations, double damping = 0.85) {
  algos::JobSpec spec;
  spec.kind = algos::AlgorithmKind::kPageRank;
  spec.damping = damping;
  spec.max_iterations = iterations;
  return spec;
}

algos::JobSpec sssp_spec(graph::VertexId root) {
  algos::JobSpec spec;
  spec.kind = algos::AlgorithmKind::kSssp;
  spec.root = root;
  return spec;
}

std::vector<double> solo_run(const grid::GridStore& store, const algos::JobSpec& spec) {
  sim::Platform platform;
  const grid::StreamEngine engine(store, platform);
  grid::DefaultLoader loader(store, platform);
  auto algorithm = algos::make_algorithm(spec);
  engine.run_job(0, *algorithm, loader);
  return algorithm->result();
}

/// WCC/BFS/SSSP relax via order-independent min/idempotent writes; PageRank's
/// striped accumulation fixes its summation shape per graph layout. Any group
/// interleaving — including sharing-scheduler permutations of the partition
/// order — is therefore bit-identical to a solo run for every algorithm.
void expect_matches_solo(const grid::GridStore& store, const algos::JobSpec& spec,
                         const std::vector<double>& actual) {
  const auto expected = solo_run(store, spec);
  ASSERT_EQ(actual.size(), expected.size()) << spec.label();
  EXPECT_EQ(actual, expected) << spec.label() << " must be bit-identical";
}

// ---------------------------------------------------------------------------
// The Algorithm-2 seam itself, driven deterministically (no thread timing):
// a job that registers while a round is in flight attaches to the resident
// partition — the attach counter moves, the load counter does not.
// ---------------------------------------------------------------------------
TEST(MidStreamAttach, JoinsResidentPartitionWithoutReload) {
  const auto g = test::small_rmat(512, 6000);
  const grid::GridStore store = test::make_grid(g, 4);
  sim::Platform platform;
  core::GraphMOptions options;
  options.allow_mid_round_attach = true;
  core::GraphM graphm(store, platform, options);
  graphm.init();

  auto a = graphm.make_loader(0);
  a->register_iteration(0, {0, 1, 2, 3});
  // A loads a partition, streams it, releases; then acquires the next one
  // and holds it mid-stream.
  auto view_a0 = a->acquire_next(0);
  ASSERT_TRUE(view_a0.has_value());
  a->release(0, view_a0->pid);
  auto view_a1 = a->acquire_next(0);
  ASSERT_TRUE(view_a1.has_value());
  const auto before = graphm.controller().stats();
  EXPECT_EQ(before.partition_loads, 2u);
  EXPECT_EQ(before.attaches, 0u);

  // B arrives mid-round, needing the partition A currently holds. It must be
  // served from the shared buffer: attaches +1, loads unchanged.
  auto b = graphm.make_loader(1);
  b->register_iteration(1, {view_a1->pid});
  auto view_b = b->acquire_next(1);
  ASSERT_TRUE(view_b.has_value());
  EXPECT_EQ(view_b->pid, view_a1->pid);

  const auto after = graphm.controller().stats();
  EXPECT_EQ(after.partition_loads, before.partition_loads) << "no fresh structure load";
  EXPECT_EQ(after.attaches, before.attaches + 1);
  EXPECT_EQ(after.mid_round_attaches, 1u);

  // The late attacher sees the very bytes A streams (the shared buffer).
  ASSERT_EQ(view_b->chunks.size(), view_a1->chunks.size());
  for (std::size_t c = 0; c < view_b->chunks.size(); ++c) {
    EXPECT_EQ(view_b->chunks[c].edges, view_a1->chunks[c].edges)
        << "late attach must alias the resident shared buffer";
  }

  b->release(1, view_b->pid);
  b->job_finished(1);
  a->release(0, view_a1->pid);
  a->job_finished(0);
}

TEST(MidStreamAttach, LateAttacherStreamsOutsideTheChunkBarrier) {
  const auto g = test::small_rmat(512, 6000);
  const grid::GridStore store = test::make_grid(g, 4);
  sim::Platform platform;
  core::GraphMOptions options;
  options.allow_mid_round_attach = true;
  core::GraphM graphm(store, platform, options);
  graphm.init();

  auto a = graphm.make_loader(0);
  a->register_iteration(0, {0});
  auto view_a = a->acquire_next(0);
  ASSERT_TRUE(view_a.has_value());

  auto b = graphm.make_loader(1);
  b->register_iteration(1, {0});
  auto view_b = b->acquire_next(1);
  ASSERT_TRUE(view_b.has_value());

  // B free-runs through every chunk while A has not even begun streaming —
  // as a barrier member this single-threaded walk could not complete.
  for (const auto& span : view_b->chunks) {
    b->begin_chunk(1, view_b->pid, span.chunk_id);
    b->end_chunk(1, view_b->pid, span.chunk_id, 0, span.edge_count, 1);
  }
  b->release(1, view_b->pid);
  b->job_finished(1);
  a->release(0, view_a->pid);
  a->job_finished(0);
  EXPECT_EQ(graphm.controller().stats().mid_round_attaches, 1u);
}

// ---------------------------------------------------------------------------
// Service-level mid-stream submission: the late job rides the long job's
// loads (attaches increase; loads stay at what the long job alone needed)
// and both results match solo runs.
// ---------------------------------------------------------------------------
TEST(JobService, MidStreamSubmitSharesLoadsAndMatchesSolo) {
  const auto g = test::small_rmat(1024, 16000);
  const grid::GridStore store = test::make_grid(g, 4);

  ServiceConfig config;
  config.mode = ExecMode::kShared;
  config.workers = 4;
  config.record_results = true;
  JobService svc(store, config);

  // A long dense job opens the group: every iteration needs all 4
  // partitions, so solo it costs exactly 60 * 4 loads.
  const auto long_spec = pagerank_spec(60);
  auto long_handle = svc.submit(long_spec);
  // Wait until the group is demonstrably mid-stream (two iterations in).
  while (svc.sharing_stats().partition_loads < 8) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  const auto short_spec = pagerank_spec(10, 0.5);
  auto short_handle = svc.submit(short_spec);
  const auto& short_record = short_handle.await();
  const auto& long_record = long_handle.await();
  svc.drain();

  EXPECT_EQ(short_handle.state(), JobState::kDone);
  EXPECT_EQ(long_handle.state(), JobState::kDone);
  EXPECT_GT(short_record.outcome.arrival_ns, long_record.outcome.start_ns)
      << "the short job must have arrived after the long job started";

  const auto sharing = svc.sharing_stats();
  EXPECT_GT(sharing.attaches, 8u) << "the late job's rounds must attach, not load";
  // Both jobs are dense, so once attached they share every round: the
  // scheduler serves both-jobs partitions first and the iteration-boundary
  // deferral keeps them aligned. A handful of extra loads may appear from
  // the first-iteration phase offset; the short job's own 40 partition
  // visits must NOT replay as loads.
  EXPECT_LE(sharing.partition_loads, 60u * 4u + 8u)
      << "late submission must not reload what the group already streams";

  expect_matches_solo(store, short_spec, short_record.outcome.result);
  expect_matches_solo(store, long_spec, long_record.outcome.result);
}

TEST(JobService, MixedJobsMatchSoloRuns) {
  const auto g = test::small_rmat(600, 8000, 11);
  const grid::GridStore store = test::make_grid(g, 4);

  ServiceConfig config;
  config.mode = ExecMode::kShared;
  config.workers = 6;
  config.record_results = true;
  JobService svc(store, config);

  std::vector<algos::JobSpec> specs;
  std::vector<JobHandle> handles;
  for (std::size_t j = 0; j < 6; ++j) {
    specs.push_back(algos::random_job_spec(j, g.num_vertices(), 31));
    handles.push_back(svc.submit(specs[j]));
  }
  svc.drain();
  for (std::size_t j = 0; j < handles.size(); ++j) {
    const auto& record = handles[j].await();
    ASSERT_EQ(handles[j].state(), JobState::kDone) << specs[j].label();
    expect_matches_solo(store, specs[j], record.outcome.result);
  }
  // No attaches assertion here: on a single-core host the six jobs may
  // legitimately serialize (each finishing before the next worker thread is
  // scheduled). MidStreamSubmitSharesLoadsAndMatchesSolo pins sharing.
}

// ---------------------------------------------------------------------------
// Admission policies.
// ---------------------------------------------------------------------------
TEST(Admission, BatchUntilKHoldsUntilThreshold) {
  const auto g = test::small_rmat(256, 2000);
  const grid::GridStore store = test::make_grid(g, 2);

  ServiceConfig config;
  config.mode = ExecMode::kShared;
  config.workers = 4;
  config.policy = AdmissionPolicy::kBatchUntilK;
  config.batch_k = 3;
  config.batch_max_wait_ns = 10'000'000'000ULL;  // effectively: only k releases
  JobService svc(store, config);

  auto h1 = svc.submit(pagerank_spec(2));
  auto h2 = svc.submit(pagerank_spec(2));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(h1.state(), JobState::kQueued) << "held until the batch fills";
  EXPECT_EQ(h2.state(), JobState::kQueued);

  auto h3 = svc.submit(pagerank_spec(2));  // completes the batch
  h1.await();
  h2.await();
  h3.await();
  EXPECT_EQ(h1.state(), JobState::kDone);
  EXPECT_EQ(h2.state(), JobState::kDone);
  EXPECT_EQ(h3.state(), JobState::kDone);
  svc.drain();
  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, 3u);
  // The first two waited out the hold window before entering the stream.
  EXPECT_GE(stats.queue_wait.max_ns, 25e6);
}

TEST(Admission, BatchTimeoutReleasesPartialBatch) {
  const auto g = test::small_rmat(256, 2000);
  const grid::GridStore store = test::make_grid(g, 2);

  ServiceConfig config;
  config.policy = AdmissionPolicy::kBatchUntilK;
  config.batch_k = 8;
  config.batch_max_wait_ns = 5'000'000;  // 5 ms window
  JobService svc(store, config);

  auto handle = svc.submit(pagerank_spec(1));
  handle.await();
  EXPECT_EQ(handle.state(), JobState::kDone)
      << "a lone job must not wait forever for a batch that never fills";
}

TEST(Admission, DeadlinePolicyRunsTightestDeadlineFirst) {
  const auto g = test::small_rmat(512, 8000);
  const grid::GridStore store = test::make_grid(g, 2);

  ServiceConfig config;
  config.mode = ExecMode::kIsolated;
  config.workers = 1;  // force queueing behind the running job
  config.policy = AdmissionPolicy::kDeadline;
  JobService svc(store, config);

  // Occupy the single worker long enough for both queued jobs to be present
  // when the next pop happens.
  auto blocker = svc.submit(pagerank_spec(500));
  auto loose = svc.submit(pagerank_spec(2), svc.now_ns() + 3'000'000'000ULL);
  auto tight = svc.submit(pagerank_spec(2), svc.now_ns() + 1'000'000'000ULL);
  svc.drain();

  const auto& loose_record = loose.await();
  const auto& tight_record = tight.await();
  EXPECT_LT(tight_record.outcome.start_ns, loose_record.outcome.start_ns)
      << "EDF must dispatch the tighter deadline first despite FIFO arrival";
  (void)blocker;
}

TEST(Admission, BoundedQueueRejectsWhenFull) {
  const auto g = test::small_rmat(512, 8000);
  const grid::GridStore store = test::make_grid(g, 2);

  ServiceConfig config;
  config.mode = ExecMode::kIsolated;
  config.workers = 1;
  config.max_queue_depth = 2;
  JobService svc(store, config);

  std::vector<JobHandle> handles;
  for (int j = 0; j < 8; ++j) handles.push_back(svc.submit(pagerank_spec(30)));
  std::size_t rejected = 0;
  for (auto& handle : handles) {
    handle.await();
    if (handle.state() == JobState::kRejected) ++rejected;
  }
  EXPECT_GT(rejected, 0u) << "backpressure must shed beyond max_queue_depth";
  svc.drain();

  // An unknown dataset index is rejected too, not clamped to some dataset.
  auto bogus = svc.submit(pagerank_spec(1), 0, /*dataset=*/7);
  EXPECT_EQ(bogus.await().state.load(), JobState::kRejected);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.rejected, rejected + 1);
  EXPECT_EQ(stats.completed + stats.rejected, 9u);
}

// ---------------------------------------------------------------------------
// Deadlines: shed-at-dispatch and mid-run cancellation through the sharing
// controller's detach seam (the group must keep going).
// ---------------------------------------------------------------------------
TEST(Deadlines, PastDeadlineJobIsShedAtDispatch) {
  const auto g = test::small_rmat(256, 2000);
  const grid::GridStore store = test::make_grid(g, 2);

  ServiceConfig config;
  config.mode = ExecMode::kIsolated;
  config.workers = 1;
  config.cancel_past_deadline = true;
  JobService svc(store, config);

  auto blocker = svc.submit(pagerank_spec(200));
  // Expired by the time the worker frees up.
  auto doomed = svc.submit(pagerank_spec(2), svc.now_ns() + 1);
  doomed.await();
  svc.drain();
  EXPECT_EQ(doomed.state(), JobState::kCancelled);
  const auto stats = svc.stats();
  EXPECT_GE(stats.cancelled, 1u);
  EXPECT_GE(stats.deadline_misses, 1u);
  (void)blocker;
}

TEST(Deadlines, MidRunCancellationDetachesWithoutStallingGroup) {
  const auto g = test::small_rmat(1024, 16000);
  const grid::GridStore store = test::make_grid(g, 4);

  ServiceConfig config;
  config.mode = ExecMode::kShared;
  config.workers = 4;
  config.cancel_past_deadline = true;
  config.record_results = true;
  JobService svc(store, config);

  // The victim's deadline lands mid-run (5000 iterations do not finish in
  // 20 ms); the survivor has none and must finish with a bit-identical
  // result even though its group partner vanished.
  auto victim = svc.submit(pagerank_spec(5000), svc.now_ns() + 20'000'000);
  const auto survivor_spec = sssp_spec(3);
  auto survivor = svc.submit(survivor_spec);
  const auto& victim_record = victim.await();
  const auto& survivor_record = survivor.await();
  svc.drain();

  EXPECT_EQ(victim.state(), JobState::kCancelled);
  EXPECT_TRUE(victim_record.outcome.stats.cancelled);
  EXPECT_LT(victim_record.outcome.stats.iterations, 5000u) << "aborted mid-run";
  EXPECT_EQ(survivor.state(), JobState::kDone);
  expect_matches_solo(store, survivor_spec, survivor_record.outcome.result);
  EXPECT_GE(svc.stats().cancelled, 1u);
}

// ---------------------------------------------------------------------------
// Group lifecycle and the SLO report.
// ---------------------------------------------------------------------------
TEST(Groups, BusyIntervalsOpenAndCloseGroups) {
  const auto g = test::small_rmat(512, 6000);
  const grid::GridStore store = test::make_grid(g, 2);

  ServiceConfig config;
  config.workers = 4;
  JobService svc(store, config, "rmat-512");

  svc.submit(pagerank_spec(3));
  svc.drain();  // dataset idle: the first group closes
  svc.submit(pagerank_spec(3));
  svc.drain();

  const auto stats = svc.stats();
  ASSERT_EQ(stats.groups.size(), 2u);
  for (const auto& group : stats.groups) {
    EXPECT_EQ(group.dataset, "rmat-512");
    EXPECT_EQ(group.jobs_served, 1u);
    EXPECT_GT(group.closed_ns, group.opened_ns);
    EXPECT_GT(group.partition_loads, 0u);
  }
  EXPECT_GT(stats.groups[1].group_id, stats.groups[0].group_id);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(Stats, LatencyDecompositionIsConsistent) {
  const auto g = test::small_rmat(512, 6000);
  const grid::GridStore store = test::make_grid(g, 2);

  ServiceConfig config;
  config.mode = ExecMode::kIsolated;
  config.workers = 1;  // serialize: queue wait becomes visible
  JobService svc(store, config);
  std::vector<JobHandle> handles;
  for (int j = 0; j < 4; ++j) handles.push_back(svc.submit(pagerank_spec(5)));
  svc.drain();

  for (auto& handle : handles) {
    const auto& record = handle.await();
    EXPECT_GE(record.outcome.start_ns, record.outcome.arrival_ns);
    EXPECT_GE(record.outcome.completion_ns, record.outcome.start_ns);
    EXPECT_EQ(record.outcome.latency_ns(),
              record.outcome.queue_wait_ns() +
                  (record.outcome.completion_ns - record.outcome.start_ns));
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.e2e.count, 4u);
  EXPECT_GT(stats.e2e.p95_ns, 0.0);
  EXPECT_GE(stats.e2e.p95_ns, stats.e2e.p50_ns);
  EXPECT_GE(stats.e2e.max_ns, stats.e2e.p99_ns);
  EXPECT_GT(stats.sustained_jobs_per_s, 0.0);
  // With one worker the fourth job waits behind the other three.
  EXPECT_GT(stats.queue_wait.max_ns, 0.0);
  EXPECT_EQ(stats.e2e_modeled.count, 4u);
  EXPECT_GE(stats.peak_concurrency, 1u);
  EXPECT_FALSE(stats.timeline.empty());
}

// ---------------------------------------------------------------------------
// Acceptance (c): on the fig09-style mix the service mode sustains at least
// the isolated-concurrent throughput while sharing loads. Both throughputs
// are wall-clock measurements; the 0.9 factor absorbs scheduler noise — the
// expected relationship is a clear service win, asserted without slack as
// the SHAPE line of bench/service_slo.cpp.
// ---------------------------------------------------------------------------
TEST(JobService, ServiceModeSustainsIsolatedThroughputOnPaperMix) {
  const auto g = test::small_rmat(2048, 40000, 17);
  const grid::GridStore store = test::make_grid(g, 4);
  const auto jobs = runtime::paper_mix(8, g.num_vertices(), 0x09);

  struct ModeRun {
    ServiceStats stats;
    core::SharingController::Stats sharing;
    std::vector<runtime::JobOutcome> outcomes;  // submission order
  };
  const auto run_mode = [&](ExecMode mode) {
    ServiceConfig config;
    config.mode = mode;
    config.workers = 8;
    JobService svc(store, config);
    std::vector<JobHandle> handles;
    for (const auto& spec : jobs) handles.push_back(svc.submit(spec));
    svc.drain();
    ModeRun run;
    run.stats = svc.stats();
    run.sharing = svc.sharing_stats();
    for (auto& handle : handles) run.outcomes.push_back(handle.await().outcome);
    return run;
  };

  const ModeRun shared = run_mode(ExecMode::kShared);
  const ModeRun isolated = run_mode(ExecMode::kIsolated);

  ASSERT_EQ(shared.stats.completed, jobs.size());
  ASSERT_EQ(isolated.stats.completed, jobs.size());
  EXPECT_GT(shared.sharing.attaches, 0u);
  EXPECT_EQ(isolated.sharing.partition_loads, 0u);  // no sharing machinery

  // The throughput comparison runs on the modeled clock — the repo-wide
  // answer to measuring schemes on an oversubscribed host. One noise source
  // remains: in-loop compute, identical work in both modes but inflated by
  // whatever preemptions land inside the loops of a given run. Job j runs
  // the same edge loops in both modes, so take the cross-mode minimum as its
  // compute and let the simulated LLC/disk stalls — the actual scheme
  // difference — decide the replay.
  const auto replay = [&](const ModeRun& mine, const ModeRun& other) {
    std::vector<ReplayJob> replay_jobs;
    for (std::size_t j = 0; j < mine.outcomes.size(); ++j) {
      const runtime::JobOutcome& a = mine.outcomes[j];
      const runtime::JobOutcome& b = other.outcomes[j];
      const std::uint64_t compute = std::min(a.stats.compute_ns, b.stats.compute_ns);
      replay_jobs.push_back(
          {a.arrival_ns,
           (compute + a.mem_stall_ns) / a.modeled_cores + a.stats.io_stall_ns});
    }
    return modeled_replay(std::move(replay_jobs), 8);
  };
  const ModeledReplay shared_replay = replay(shared, isolated);
  const ModeledReplay isolated_replay = replay(isolated, shared);
  EXPECT_GE(shared_replay.sustained_jobs_per_s,
            isolated_replay.sustained_jobs_per_s * 0.95)
      << "sharing one structure stream must not cost modeled throughput";
  EXPECT_GT(shared.stats.e2e.p95_ns, 0.0);
  EXPECT_GT(isolated.stats.e2e.p95_ns, 0.0);
  EXPECT_GT(shared.stats.modeled.e2e.p95_ns, 0.0);
}

}  // namespace
}  // namespace graphm::service
