#include <gtest/gtest.h>

#include <numeric>

#include "runtime/executor.hpp"
#include "runtime/job_queue.hpp"
#include "runtime/workloads.hpp"
#include "service/service_stats.hpp"
#include "test_helpers.hpp"

namespace graphm::runtime {
namespace {

TEST(Workloads, PaperMixCyclesKinds) {
  const auto jobs = paper_mix(8, 100, 1);
  ASSERT_EQ(jobs.size(), 8u);
  EXPECT_EQ(jobs[0].kind, algos::AlgorithmKind::kWcc);
  EXPECT_EQ(jobs[1].kind, algos::AlgorithmKind::kPageRank);
  EXPECT_EQ(jobs[2].kind, algos::AlgorithmKind::kSssp);
  EXPECT_EQ(jobs[3].kind, algos::AlgorithmKind::kBfs);
  EXPECT_EQ(jobs[4].kind, algos::AlgorithmKind::kWcc);
}

TEST(Workloads, RootedMixStaysWithinHops) {
  std::vector<std::uint32_t> levels = {0, 1, 1, 2, 3, 0xFFFFFFFFu};
  const auto jobs = rooted_mix(algos::AlgorithmKind::kBfs, 20, levels, 1, 7);
  for (const auto& job : jobs) {
    EXPECT_LE(levels[job.root], 1u);
  }
}

TEST(JobQueue, PoissonArrivalsMonotoneAndScaleWithLambda) {
  const auto sparse = poisson_arrivals(50, 2.0, 1'000'000, 3);
  const auto dense = poisson_arrivals(50, 10.0, 1'000'000, 3);
  EXPECT_EQ(sparse[0], 0u);
  for (std::size_t i = 1; i < 50; ++i) EXPECT_GE(sparse[i], sparse[i - 1]);
  EXPECT_GT(sparse.back(), dense.back()) << "larger lambda packs submissions tighter";
}

TEST(JobQueue, WeekTraceMatchesPaperStatistics) {
  const auto trace = synthesize_week_trace(168, 42);
  ASSERT_EQ(trace.size(), 168u);
  double sum = 0.0;
  std::uint32_t peak = 0;
  for (const auto& point : trace) {
    sum += point.concurrent_jobs;
    peak = std::max(peak, point.concurrent_jobs);
  }
  const double mean = sum / 168.0;
  EXPECT_NEAR(mean, 16.0, 2.5) << "average ~16 concurrent jobs (Figure 2)";
  EXPECT_GT(peak, 30u) << "peak above 30 concurrent jobs (Figure 2)";
}

TEST(JobQueue, TraceToArrivalsTracksLevel) {
  std::vector<TracePoint> trace = {{0.0, 4}, {1.0, 4}};
  const auto arrivals = trace_to_arrivals(trace, 1.0, 1000, 100);
  EXPECT_EQ(arrivals.size(), 8u) << "4 jobs/hour for 2 hours at duration 1h";
  for (std::size_t i = 1; i < arrivals.size(); ++i) EXPECT_GE(arrivals[i], arrivals[i - 1]);
}

TEST(JobQueue, ArrivalProcessesAreDeterministicUnderFixedSeeds) {
  // The benches replay the identical arrival stream across execution modes;
  // that comparison is only meaningful if the generators are pure functions
  // of their seed.
  EXPECT_EQ(poisson_arrivals(64, 16.0, 1'000'000, 42),
            poisson_arrivals(64, 16.0, 1'000'000, 42));
  EXPECT_NE(poisson_arrivals(64, 16.0, 1'000'000, 42),
            poisson_arrivals(64, 16.0, 1'000'000, 43));

  const auto trace_a = synthesize_week_trace(168, 7);
  const auto trace_b = synthesize_week_trace(168, 7);
  ASSERT_EQ(trace_a.size(), trace_b.size());
  for (std::size_t h = 0; h < trace_a.size(); ++h) {
    EXPECT_EQ(trace_a[h].concurrent_jobs, trace_b[h].concurrent_jobs) << "hour " << h;
    EXPECT_EQ(trace_a[h].hour, trace_b[h].hour);
  }
  const auto trace_c = synthesize_week_trace(168, 8);
  bool any_differs = false;
  for (std::size_t h = 0; h < trace_a.size(); ++h) {
    any_differs = any_differs || trace_a[h].concurrent_jobs != trace_c[h].concurrent_jobs;
  }
  EXPECT_TRUE(any_differs) << "different seeds must synthesize different weeks";
}

TEST(JobQueue, WeekTraceStaysWithinClampBounds) {
  // Multiple seeds and a multi-week horizon: every sample within the
  // documented [2, 34] clamp, every week keeps the Figure-2 statistics.
  for (const std::uint64_t seed : {1ull, 9ull, 123ull}) {
    const auto trace = synthesize_week_trace(2 * 168, seed);
    double sum = 0.0;
    std::uint32_t peak = 0;
    for (const auto& point : trace) {
      EXPECT_GE(point.concurrent_jobs, 2u);
      EXPECT_LE(point.concurrent_jobs, 34u);
      sum += point.concurrent_jobs;
      peak = std::max(peak, point.concurrent_jobs);
    }
    EXPECT_NEAR(sum / static_cast<double>(trace.size()), 16.0, 2.5) << "seed " << seed;
    EXPECT_GT(peak, 30u) << "seed " << seed;
  }
}

TEST(JobQueue, TraceToArrivalsOffsetsAreMonotoneAndBounded) {
  const auto trace = synthesize_week_trace(168, 5);
  constexpr std::uint64_t kHourNs = 10'000;
  const auto arrivals = trace_to_arrivals(trace, /*job_duration_hours=*/2.0, kHourNs, 500);
  ASSERT_FALSE(arrivals.empty());
  EXPECT_LE(arrivals.size(), 500u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i], arrivals[i - 1]) << "submission offsets must be monotone";
  }
  // No offset can land beyond the trace horizon (+1 fractional hour).
  EXPECT_LT(arrivals.back(), (static_cast<std::uint64_t>(trace.size()) + 1) * kHourNs);
}

TEST(Executor, MemoryUsageOrderingAcrossSchemes) {
  // Figure 11: -M consumes less memory than -C but more than -S.
  const auto g = test::small_rmat(600, 9000, 8);
  const grid::GridStore store = test::make_grid(g, 4);
  const auto jobs = paper_mix(6, g.num_vertices(), 5);
  ExecutorConfig config;

  const auto s = run_jobs(Scheme::kSequential, store, jobs, config);
  const auto c = run_jobs(Scheme::kConcurrent, store, jobs, config);
  const auto m = run_jobs(Scheme::kShared, store, jobs, config);

  EXPECT_LT(m.peak_graph_memory_bytes, c.peak_graph_memory_bytes)
      << "one shared copy vs per-job copies";
  EXPECT_GE(m.peak_memory_bytes, s.peak_memory_bytes)
      << "-M holds all jobs' vertex data at once, -S only one";
}

TEST(Executor, SharedSchemeReducesLlcTraffic) {
  const auto g = test::small_rmat(600, 9000, 8);
  const grid::GridStore store = test::make_grid(g, 4);
  const auto jobs = uniform_mix(algos::AlgorithmKind::kPageRank, 4, g.num_vertices(), 2);
  ExecutorConfig config;

  const auto c = run_jobs(Scheme::kConcurrent, store, jobs, config);
  const auto m = run_jobs(Scheme::kShared, store, jobs, config);
  EXPECT_LT(m.llc.bytes_swapped_in, c.llc.bytes_swapped_in)
      << "Figure 14: -M swaps less data into the LLC than -C";
}

TEST(Executor, StatsAreInternallyConsistent) {
  const auto g = test::small_rmat(300, 4000, 6);
  const grid::GridStore store = test::make_grid(g, 2);
  const auto jobs = paper_mix(3, g.num_vertices(), 1);
  ExecutorConfig config;
  const auto m = run_jobs(Scheme::kShared, store, jobs, config);

  EXPECT_EQ(m.jobs.size(), 3u);
  EXPECT_GT(m.makespan_wall_ns, 0u);
  EXPECT_GT(m.compute_ns, 0u);
  EXPECT_EQ(m.scheme, "GridGraph-M");
  // Modeled total = (compute + DRAM + sync)/cores + disk (metrics.hpp).
  EXPECT_EQ(m.total_time_ns(),
            (m.compute_ns + m.mem_stall_ns + m.sync_cost_ns()) / m.modeled_cores +
                m.io_stall_ns);
  EXPECT_GT(m.total_time_ns(), 0u);
  std::uint64_t compute_sum = 0;
  for (const auto& job : m.jobs) compute_sum += job.stats.compute_ns;
  EXPECT_EQ(compute_sum, m.compute_ns);
  EXPECT_GT(m.sharing.partition_loads, 0u);
}

TEST(Executor, SequentialHasNoSharing) {
  const auto g = test::small_rmat(300, 4000, 6);
  const grid::GridStore store = test::make_grid(g, 2);
  const auto jobs = paper_mix(2, g.num_vertices(), 1);
  const auto s = run_jobs(Scheme::kSequential, store, jobs, {});
  EXPECT_EQ(s.sharing.partition_loads, 0u);
  EXPECT_EQ(s.sharing.attaches, 0u);
}

TEST(Executor, RecordsPerJobLifecycleTimestamps) {
  const auto g = test::small_rmat(300, 4000, 6);
  const grid::GridStore store = test::make_grid(g, 2);
  const auto jobs = paper_mix(4, g.num_vertices(), 1);

  // Staggered open-loop arrivals: each job's arrival/start/completion land
  // on the run clock and latency = completion − arrival is reportable.
  ExecutorConfig config;
  config.arrival_offsets_ns.assign(jobs.size(), 0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    config.arrival_offsets_ns[j] = j * 500'000;  // 0.5 ms apart
  }
  const auto m = run_jobs(Scheme::kShared, store, jobs, config);
  for (std::size_t j = 0; j < m.jobs.size(); ++j) {
    const JobOutcome& job = m.jobs[j];
    EXPECT_GE(job.arrival_ns, config.arrival_offsets_ns[j]) << "job " << j;
    EXPECT_GE(job.start_ns, job.arrival_ns) << "job " << j;
    EXPECT_GT(job.completion_ns, job.start_ns) << "job " << j;
    EXPECT_EQ(job.latency_ns(), job.completion_ns - job.arrival_ns);
    EXPECT_LE(job.completion_ns, m.makespan_wall_ns);
  }
  // The executor's outcomes feed the service stats module directly.
  const auto latency = service::latency_from_outcomes(m.jobs);
  EXPECT_EQ(latency.count, m.jobs.size());
  EXPECT_GT(latency.p50_ns, 0.0);
  EXPECT_GE(latency.max_ns, latency.p95_ns);

  // A sequential batch is submitted up front: arrivals stay 0 and each job's
  // latency includes the wait behind its predecessors.
  const auto s = run_jobs(Scheme::kSequential, store, jobs, {});
  for (std::size_t j = 1; j < s.jobs.size(); ++j) {
    EXPECT_EQ(s.jobs[j].arrival_ns, 0u);
    EXPECT_GE(s.jobs[j].start_ns, s.jobs[j - 1].completion_ns);
    EXPECT_GE(s.jobs[j].queue_wait_ns(), s.jobs[j - 1].completion_ns -
                                             s.jobs[j - 1].start_ns);
  }
}

TEST(Executor, EmptyJobListIsAnEmptyRun) {
  const auto g = test::small_rmat(100, 500, 6);
  const grid::GridStore store = test::make_grid(g, 2);
  const auto m = run_jobs(Scheme::kShared, store, {}, {});
  EXPECT_EQ(m.jobs.size(), 0u);
  EXPECT_EQ(m.makespan_wall_ns, 0u);
}

}  // namespace
}  // namespace graphm::runtime
