#include <gtest/gtest.h>

#include <algorithm>

#include "algos/bfs.hpp"
#include "algos/factory.hpp"
#include "algos/pagerank.hpp"
#include "algos/reference.hpp"
#include "grid/loader.hpp"
#include "grid/stream_engine.hpp"
#include "test_helpers.hpp"

namespace graphm::grid {
namespace {

TEST(GridStore, PartitionsCoverAllEdgesExactlyOnce) {
  const auto g = test::small_rmat(300, 2500);
  const GridStore store = test::make_grid(g, 4);
  EXPECT_EQ(store.meta().num_edges, g.num_edges());

  sim::Platform platform;
  std::vector<Edge> buffer;
  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < store.meta().num_partitions; ++p) {
    store.read_partition(p, buffer, platform, 0);
    total += buffer.size();
    const auto [vb, ve] = store.meta().vertex_range(p);
    for (const Edge& e : buffer) {
      EXPECT_GE(e.src, vb);
      EXPECT_LT(e.src, ve);
    }
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(GridStore, EdgeMultisetPreserved) {
  const auto g = test::small_rmat(100, 1000);
  const GridStore store = test::make_grid(g, 3);
  sim::Platform platform;

  auto key = [](const Edge& e) {
    return (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
  };
  std::vector<std::uint64_t> original;
  for (const Edge& e : g.edges()) original.push_back(key(e));
  std::sort(original.begin(), original.end());

  std::vector<std::uint64_t> stored;
  std::vector<Edge> buffer;
  for (std::uint32_t p = 0; p < store.meta().num_partitions; ++p) {
    store.read_partition(p, buffer, platform, 0);
    for (const Edge& e : buffer) stored.push_back(key(e));
  }
  std::sort(stored.begin(), stored.end());
  EXPECT_EQ(original, stored);
}

TEST(GridStore, DegreesPersisted) {
  const auto g = test::small_rmat(64, 700);
  const GridStore store = test::make_grid(g, 2);
  EXPECT_EQ(store.load_out_degrees(), g.out_degrees());
}

TEST(GridStore, ReadEdgesSubrange) {
  const auto g = test::small_rmat(64, 700);
  const GridStore store = test::make_grid(g, 2);
  sim::Platform platform;
  std::vector<Edge> whole;
  store.read_partition(0, whole, platform, 0);
  ASSERT_GT(whole.size(), 10u);
  std::vector<Edge> part(5);
  store.read_edges(0, 3, 5, part.data(), platform, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(part[i], whole[3 + i]);
}

TEST(GridStore, PreprocessRecordsTime) {
  const auto g = test::small_rmat(64, 700);
  const GridStore store = test::make_grid(g, 2);
  EXPECT_GT(store.meta().preprocess_ns, 0u);
}

TEST(StreamEngine, ActivePartitionsFollowBitmap) {
  const auto g = test::small_rmat(400, 3000);
  const GridStore store = test::make_grid(g, 4);
  sim::Platform platform;
  const StreamEngine engine(store, platform);

  util::AtomicBitmap active(g.num_vertices());
  active.set(0);  // vertex 0 lives in partition 0
  const auto parts = engine.active_partitions(active);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], 0u);

  active.set_all();
  EXPECT_EQ(engine.active_partitions(active).size(), 4u);
}

TEST(StreamEngine, PageRankMatchesReference) {
  const auto g = test::small_rmat(256, 3000);
  const GridStore store = test::make_grid(g, 4);
  sim::Platform platform;
  const StreamEngine engine(store, platform);

  algos::PageRank pr(0.85, 5);
  DefaultLoader loader(store, platform);
  const JobRunStats stats = engine.run_job(0, pr, loader);
  EXPECT_EQ(stats.iterations, 5u);
  EXPECT_EQ(stats.edges_streamed, 5 * g.num_edges());

  const auto expected = algos::reference::pagerank(g, 0.85, 5);
  const auto got = pr.result();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    EXPECT_NEAR(got[v], expected[v], 1e-12);
  }
}

TEST(StreamEngine, BfsSkipsInactivePartitions) {
  // A ring: the frontier is one vertex per iteration, so most iterations only
  // touch one partition (GridGraph's selective scheduling).
  const auto g = graph::generate_ring(64);
  const GridStore store = test::make_grid(g, 8);
  sim::Platform platform;
  const StreamEngine engine(store, platform);

  algos::Bfs bfs(0);
  DefaultLoader loader(store, platform);
  const JobRunStats stats = engine.run_job(0, bfs, loader);
  EXPECT_EQ(stats.edges_processed, 64u) << "one relaxation per ring edge";
  EXPECT_LT(stats.edges_streamed, 64u * 16u)
      << "selective scheduling must not stream the whole ring every level";

  const auto expected = algos::reference::bfs_levels(g, 0);
  const auto got = bfs.result();
  for (std::size_t v = 0; v < got.size(); ++v) {
    EXPECT_DOUBLE_EQ(got[v], static_cast<double>(expected[v]));
  }
}

TEST(SourceRuns, SortedRunSegmentsBoundaries) {
  // A concatenation of sorted pieces (what a multi-block partition span looks
  // like): one segment per piece, boundaries exactly at the descents.
  std::vector<graph::SourceRun> runs;
  for (const graph::VertexId src : {1u, 4u, 9u, /*block break*/ 2u, 3u, 8u,
                                    /*block break*/ 0u, 5u}) {
    graph::append_source_run(runs, src);
    graph::append_source_run(runs, src);  // extend: runs, not edges
  }
  ASSERT_EQ(runs.size(), 8u);
  EXPECT_FALSE(graph::source_runs_sorted(runs));
  const auto bounds = graph::sorted_run_segments(runs);
  EXPECT_EQ(bounds, (std::vector<std::uint32_t>{0, 3, 6, 8}));

  // Fully sorted: one segment covering everything.
  std::vector<graph::SourceRun> sorted_runs;
  for (const graph::VertexId src : {0u, 2u, 7u}) graph::append_source_run(sorted_runs, src);
  EXPECT_TRUE(graph::source_runs_sorted(sorted_runs));
  EXPECT_EQ(graph::sorted_run_segments(sorted_runs),
            (std::vector<std::uint32_t>{0, 3}));
}

TEST(StreamEngine, SegmentJumpsMatchScalarOracleOnMultiBlockPartitions) {
  // A DefaultLoader partition span concatenates the row's P src-sorted blocks,
  // so its run index is unsorted — the engine must jump via the per-block
  // ascending segments. Pin the whole path against the legacy scalar loop:
  // bit-identical results and identical relaxation counts, on the sparse
  // frontiers (BFS) that actually take the jump branch.
  const auto g = test::small_rmat(900, 12000, 13);
  const GridStore store = test::make_grid(g, 8);

  // Premise check: a partition's concatenated run index really is
  // multi-segment (otherwise this test pins nothing).
  {
    sim::Platform platform;
    std::vector<Edge> buffer;
    store.read_partition(0, buffer, platform, 0);
    std::vector<graph::SourceRun> runs;
    for (const Edge& e : buffer) graph::append_source_run(runs, e.src);
    ASSERT_FALSE(graph::source_runs_sorted(runs));
    ASSERT_GT(graph::sorted_run_segments(runs).size(), 2u);
  }

  for (const auto kind : {algos::AlgorithmKind::kBfs, algos::AlgorithmKind::kSssp}) {
    algos::JobSpec spec;
    spec.kind = kind;
    spec.root = 1;

    auto run_path = [&](bool blocks) {
      sim::Platform platform;
      StreamConfig config;
      config.use_blocks = blocks;
      config.model_llc = false;
      const StreamEngine engine(store, platform, config);
      auto algorithm = algos::make_algorithm(spec);
      DefaultLoader loader(store, platform);
      const JobRunStats stats = engine.run_job(0, *algorithm, loader);
      return std::pair{algorithm->result(), stats};
    };
    const auto [oracle_result, oracle_stats] = run_path(false);
    const auto [block_result, block_stats] = run_path(true);
    ASSERT_EQ(oracle_result, block_result) << algos::to_string(kind);
    EXPECT_EQ(oracle_stats.edges_processed, block_stats.edges_processed)
        << algos::to_string(kind);
    EXPECT_EQ(oracle_stats.iterations, block_stats.iterations) << algos::to_string(kind);
  }
}

TEST(StreamEngine, JobStatsAccounting) {
  const auto g = test::small_rmat(256, 3000);
  const GridStore store = test::make_grid(g, 4);
  sim::Platform platform;
  const StreamEngine engine(store, platform);

  algos::PageRank pr(0.5, 2);
  DefaultLoader loader(store, platform);
  const JobRunStats stats = engine.run_job(3, pr, loader);
  EXPECT_GT(stats.wall_ns, 0u);
  EXPECT_GT(stats.partitions_loaded, 0u);
  EXPECT_EQ(stats.edges_processed, 2 * g.num_edges()) << "PageRank relaxes every edge";
  EXPECT_GT(platform.llc().job_stats(3).accesses, 0u) << "LLC modeling attributed to job";
  EXPECT_GT(platform.instructions(3), 0u);
}

}  // namespace
}  // namespace graphm::grid
