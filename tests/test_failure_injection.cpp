// Failure injection: corrupt or missing on-disk state and invalid arguments
// must fail loudly (exceptions), never silently return wrong graphs.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/datasets.hpp"
#include "sim/cache_sim.hpp"
#include "test_helpers.hpp"

namespace graphm {
namespace {

namespace fs = std::filesystem;

void write_bytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

TEST(FailureInjection, GridOpenMissingFilesThrows) {
  EXPECT_THROW(grid::GridStore::open(test::unique_temp_path("nope")), std::runtime_error);
}

TEST(FailureInjection, GridOpenCorruptMetaThrows) {
  const std::string path = test::unique_temp_path("corrupt_grid");
  write_bytes(path + ".meta", "garbage that is not a grid meta header");
  write_bytes(path + ".data", "");
  EXPECT_THROW(grid::GridStore::open(path), std::runtime_error);
}

TEST(FailureInjection, GridOpenTruncatedMetaThrows) {
  const auto g = test::small_rmat(64, 500);
  const std::string path = test::unique_temp_path("trunc_grid");
  grid::GridStore::preprocess(g, 2, path);
  // Truncate the meta file to half its size.
  const auto size = fs::file_size(path + ".meta");
  fs::resize_file(path + ".meta", size / 2);
  EXPECT_THROW(grid::GridStore::open(path), std::runtime_error);
}

TEST(FailureInjection, GridReadPastTruncatedDataThrows) {
  const auto g = test::small_rmat(64, 500);
  const std::string path = test::unique_temp_path("trunc_data");
  grid::GridStore::preprocess(g, 2, path);
  fs::resize_file(path + ".data", 10);
  const auto store = grid::GridStore::open(path);
  sim::Platform platform;
  std::vector<graph::Edge> buffer;
  EXPECT_THROW(store.read_partition(0, buffer, platform, 0), std::runtime_error);
}

TEST(FailureInjection, MissingDegreeFileThrows) {
  const auto g = test::small_rmat(64, 500);
  const std::string path = test::unique_temp_path("nodeg");
  grid::GridStore::preprocess(g, 2, path);
  fs::remove(path + ".deg");
  const auto store = grid::GridStore::open(path);
  EXPECT_THROW(store.load_out_degrees(), std::runtime_error);
}

TEST(FailureInjection, ShardOpenCorruptMetaThrows) {
  const std::string path = test::unique_temp_path("corrupt_shard");
  write_bytes(path + ".meta", "not a shard header either");
  write_bytes(path + ".data", "");
  EXPECT_THROW(shard::ShardStore::open(path), std::runtime_error);
}

TEST(FailureInjection, GridMetaIsNotAValidShardMeta) {
  // Magic numbers differ: opening a grid as shards must fail, not misread.
  const auto g = test::small_rmat(64, 500);
  const std::string path = test::unique_temp_path("cross_format");
  grid::GridStore::preprocess(g, 2, path);
  EXPECT_THROW(shard::ShardStore::open(path), std::runtime_error);
}

TEST(FailureInjection, ZeroPartitionPreprocessRejected) {
  const auto g = test::small_rmat(64, 500);
  EXPECT_THROW(grid::GridStore::preprocess(g, 0, test::unique_temp_path("p0")),
               std::invalid_argument);
  EXPECT_THROW(shard::ShardStore::preprocess(g, 0, test::unique_temp_path("s0")),
               std::invalid_argument);
}

TEST(FailureInjection, CacheSimRejectsDegenerateGeometry) {
  EXPECT_THROW(sim::CacheSim(1024, 0, 64), std::invalid_argument);
  EXPECT_THROW(sim::CacheSim(1024, 4, 0), std::invalid_argument);
}

TEST(FailureInjection, UnknownDatasetThrows) {
  EXPECT_THROW(graph::load_dataset("no_such_graph"), std::invalid_argument);
}

}  // namespace
}  // namespace graphm
