#include <gtest/gtest.h>

#include "algos/reference.hpp"
#include "dist/chaos_engine.hpp"
#include "dist/powergraph_engine.hpp"
#include "runtime/workloads.hpp"
#include "test_helpers.hpp"

namespace graphm::dist {
namespace {

graph::EdgeList test_graph() { return test::small_rmat(1024, 20000, 31); }

TEST(Profiles, BfsProfileMatchesReferenceLevels) {
  const auto g = test_graph();
  algos::JobSpec spec;
  spec.kind = algos::AlgorithmKind::kBfs;
  spec.root = 0;
  const JobProfile profile = profile_job(g, spec);
  const auto levels = algos::reference::bfs_levels(g, 0);
  // Iterations in the profile = BFS rounds until the frontier empties, which
  // is at least the max finite level.
  std::uint32_t max_level = 0;
  for (auto l : levels) {
    if (l != 0xFFFFFFFFu) max_level = std::max(max_level, l);
  }
  EXPECT_GE(profile.iterations(), max_level);
  // First frontier is just the root.
  ASSERT_FALSE(profile.active_vertices.empty());
  EXPECT_EQ(profile.active_vertices[0], 1u);
}

TEST(Profiles, PageRankProfileIsFullScans) {
  const auto g = test_graph();
  algos::JobSpec spec;
  spec.kind = algos::AlgorithmKind::kPageRank;
  spec.max_iterations = 6;
  const JobProfile profile = profile_job(g, spec);
  ASSERT_EQ(profile.iterations(), 6u);
  for (auto e : profile.active_edges) EXPECT_EQ(e, g.num_edges());
}

TEST(Profiles, WccStopsAtConvergence) {
  const auto g = graph::generate_ring(32);  // diameter 31, converges in <= 17 Jacobi rounds
  algos::JobSpec spec;
  spec.kind = algos::AlgorithmKind::kWcc;
  spec.max_iterations = 1000;
  const JobProfile profile = profile_job(g, spec);
  EXPECT_LT(profile.iterations(), 40u);
  EXPECT_GT(profile.iterations(), 2u);
}

TEST(Replication, GrowsWithNodesAndBounded) {
  const auto g = test_graph();
  const double r8 = replication_factor(g, 8);
  const double r64 = replication_factor(g, 64);
  EXPECT_GE(r8, 1.0);
  EXPECT_LE(r8, 8.0);
  EXPECT_GE(r64, r8) << "more nodes cannot reduce replication";
  EXPECT_LE(r64, 64.0);
}

struct DistCase {
  bool chaos;
};

class DistSchemes : public ::testing::TestWithParam<DistCase> {
 protected:
  RunEstimate run(DistScheme::Kind kind, const std::vector<JobProfile>& profiles,
                  const graph::EdgeList& g, const ClusterConfig& cluster) {
    DistScheme scheme;
    scheme.kind = kind;
    return GetParam().chaos ? run_chaos(scheme, profiles, g, cluster)
                            : run_powergraph(scheme, profiles, g, cluster);
  }
};

TEST_P(DistSchemes, SharedBeatsSequentialAndConcurrent) {
  const auto g = test_graph();
  const auto jobs = runtime::paper_mix(16, g.num_vertices(), 4);
  const auto profiles = profile_jobs(g, jobs);
  ClusterConfig cluster;
  cluster.num_nodes = 64;

  const auto s = run(DistScheme::kSequential, profiles, g, cluster);
  const auto c = run(DistScheme::kConcurrent, profiles, g, cluster);
  const auto m = run(DistScheme::kShared, profiles, g, cluster);

  EXPECT_LT(m.seconds, s.seconds) << "-M must beat -S (Table 4)";
  EXPECT_LT(m.seconds, c.seconds) << "-M must beat -C (Table 4)";
  EXPECT_LT(m.structure_loads, s.structure_loads)
      << "sharing moves the structure fewer times";
}

TEST_P(DistSchemes, MoreNodesHelp) {
  const auto g = test_graph();
  const auto jobs = runtime::paper_mix(8, g.num_vertices(), 4);
  const auto profiles = profile_jobs(g, jobs);
  ClusterConfig small;
  small.num_nodes = 64;
  ClusterConfig big;
  big.num_nodes = 128;
  const auto t64 = run(DistScheme::kShared, profiles, g, small);
  const auto t128 = run(DistScheme::kShared, profiles, g, big);
  EXPECT_LT(t128.seconds, t64.seconds) << "Figure 21: scaling out helps";
}

INSTANTIATE_TEST_SUITE_P(Engines, DistSchemes,
                         ::testing::Values(DistCase{false}, DistCase{true}));

TEST(Chaos, ConcurrentStreamsSlowerThanSequential) {
  // The paper's Table 4 inversion: Chaos-C < Chaos-S in throughput because
  // concurrent full-graph streams interfere on spinning disks.
  const auto g = test_graph();
  const auto jobs = runtime::paper_mix(16, g.num_vertices(), 4);
  const auto profiles = profile_jobs(g, jobs);
  ClusterConfig cluster;
  cluster.num_nodes = 64;
  DistScheme s{DistScheme::kSequential};
  DistScheme c{DistScheme::kConcurrent};
  EXPECT_GT(run_chaos(c, profiles, g, cluster).seconds,
            run_chaos(s, profiles, g, cluster).seconds);
}

TEST(PowerGraph, InfeasibleWhenGraphExceedsClusterMemory) {
  const auto g = test_graph();
  const auto jobs = runtime::paper_mix(2, g.num_vertices(), 4);
  const auto profiles = profile_jobs(g, jobs);
  ClusterConfig cluster;
  cluster.num_nodes = 4;
  cluster.node_memory_bytes = 1024;  // absurdly small: the paper's "-"
  DistScheme m{DistScheme::kShared};
  EXPECT_FALSE(run_powergraph(m, profiles, g, cluster).feasible);
}

TEST(PowerGraph, GroupsBoundTheMakespanByWorstGroup) {
  const auto g = test_graph();
  const auto jobs = runtime::paper_mix(8, g.num_vertices(), 4);
  const auto profiles = profile_jobs(g, jobs);
  ClusterConfig one_group;
  one_group.num_nodes = 64;
  one_group.num_groups = 1;
  ClusterConfig eight_groups = one_group;
  eight_groups.num_groups = 8;
  DistScheme s{DistScheme::kSequential};
  // With 8 groups each group runs 1 job on 8 nodes; with 1 group all 8 jobs
  // queue on 64 nodes. Both are finite and positive; grouping changes the
  // balance, not the validity.
  EXPECT_GT(run_powergraph(s, profiles, g, one_group).seconds, 0.0);
  EXPECT_GT(run_powergraph(s, profiles, g, eight_groups).seconds, 0.0);
}

}  // namespace
}  // namespace graphm::dist
