#include <gtest/gtest.h>

#include <filesystem>

#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "test_helpers.hpp"

namespace graphm::graph {
namespace {

TEST(EdgeList, RoundTripsThroughFile) {
  EdgeList g;
  g.add_edge(0, 1, 2.0f);
  g.add_edge(1, 2, 3.0f);
  g.add_edge(5, 0, 1.0f);
  const std::string path = test::unique_temp_path("edgelist") + ".bin";
  g.save(path);
  const EdgeList loaded = EdgeList::load(path);
  EXPECT_EQ(loaded, g);
  EXPECT_EQ(loaded.num_vertices(), 6u);
}

TEST(EdgeList, OutDegrees) {
  EdgeList g;
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 0);
  const auto degrees = g.out_degrees();
  EXPECT_EQ(degrees[0], 2u);
  EXPECT_EQ(degrees[1], 0u);
  EXPECT_EQ(degrees[2], 1u);
  EXPECT_EQ(g.max_out_degree(), 2u);
}

TEST(EdgeList, LoadRejectsGarbage) {
  const std::string path = test::unique_temp_path("garbage") + ".bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fwrite("not a graph file at all", 1, 23, f);
    std::fclose(f);
  }
  EXPECT_THROW(EdgeList::load(path), std::runtime_error);
}

TEST(Generators, RmatDeterministicAndInRange) {
  const auto a = generate_rmat(1000, 5000, 42);
  const auto b = generate_rmat(1000, 5000, 42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.num_edges(), 5000u);
  for (const Edge& e : a.edges()) {
    EXPECT_LT(e.src, 1000u);
    EXPECT_LT(e.dst, 1000u);
  }
}

TEST(Generators, RmatIsSkewed) {
  const auto g = generate_rmat(4096, 80000, 7);
  const auto er = generate_erdos_renyi(4096, 80000, 7);
  EXPECT_GT(g.max_out_degree(), 2 * er.max_out_degree())
      << "RMAT should concentrate many more edges on hubs than uniform";
}

TEST(Generators, ChungLuFollowsSeedAndCount) {
  const auto g = generate_chung_lu(500, 3000, 0.6, 11);
  EXPECT_EQ(g.num_edges(), 3000u);
  EXPECT_EQ(g, generate_chung_lu(500, 3000, 0.6, 11));
}

TEST(Generators, RingHasExpectedShape) {
  const auto ring = generate_ring(10);
  EXPECT_EQ(ring.num_edges(), 10u);
  const auto degrees = ring.out_degrees();
  for (auto d : degrees) EXPECT_EQ(d, 1u);
  const auto chords = generate_ring(10, 3);
  EXPECT_EQ(chords.num_edges(), 20u);
}

TEST(Generators, RandomizeWeightsWithinRange) {
  auto g = generate_ring(100);
  randomize_weights(g, 2.0f, 8.0f, 3);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 2.0f);
    EXPECT_LT(e.weight, 8.0f);
  }
}

TEST(Csr, MatchesEdgeList) {
  const auto g = test::small_rmat(128, 1024);
  const Csr csr = Csr::build(g);
  EXPECT_EQ(csr.num_vertices(), g.num_vertices());
  EXPECT_EQ(csr.num_edges(), g.num_edges());
  const auto degrees = g.out_degrees();
  std::uint64_t total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(csr.degree(v), degrees[v]);
    total += csr.neighbors(v).size();
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(Csr, TransposeSwapsEndpoints) {
  EdgeList g;
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  const Csr in_csr = Csr::build(g, /*transpose=*/true);
  EXPECT_EQ(in_csr.degree(1), 2u);
  EXPECT_EQ(in_csr.degree(0), 0u);
}

TEST(Datasets, SpecsMatchPaperTable2Shape) {
  const auto& specs = dataset_specs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "livej_s");
  EXPECT_EQ(specs[4].name, "clueweb_s");
  // The in-memory/out-of-core split of the paper.
  EXPECT_TRUE(specs[0].fits_in_memory);
  EXPECT_TRUE(specs[2].fits_in_memory);
  EXPECT_FALSE(specs[3].fits_in_memory);
  EXPECT_FALSE(specs[4].fits_in_memory);
}

TEST(Datasets, LoadIsCachedAndDeterministic) {
  const auto a = load_dataset("livej_s", 0.05);
  const auto b = load_dataset("livej_s", 0.05);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.num_edges(), 0u);
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(dataset_spec("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace graphm::graph
