// End-to-end integration across modules: GraphM serving two different host
// engines, snapshots taken between runs, scheduling ablation equivalence, and
// the full executor pipeline on every dataset stand-in at test scale.
#include <gtest/gtest.h>

#include <thread>

#include "algos/pagerank.hpp"
#include "algos/reference.hpp"
#include "graph/datasets.hpp"
#include "graphm/graphm.hpp"
#include "runtime/executor.hpp"
#include "runtime/workloads.hpp"
#include "shard/graphchi_engine.hpp"
#include "test_helpers.hpp"

namespace graphm {
namespace {

TEST(Integration, OneGraphMServesGridAndShardJobsAlike) {
  // The same algorithm must produce identical answers whether the host is the
  // grid engine or the shard engine, both under GraphM.
  const auto g = test::small_rmat(400, 5000, 77);
  const grid::GridStore grid_store = test::make_grid(g, 4);
  const shard::ShardStore shard_store = test::make_shards(g, 4);

  auto run = [&](const storage::PartitionedStore& store) {
    sim::Platform platform;
    core::GraphM graphm(store, platform);
    graphm.init();
    const grid::StreamEngine engine(store, platform);
    algos::PageRank a(0.7, 5);
    algos::PageRank b(0.7, 5);
    auto la = graphm.make_loader(0);
    auto lb = graphm.make_loader(1);
    std::thread ta([&] { engine.run_job(0, a, *la); });
    std::thread tb([&] { engine.run_job(1, b, *lb); });
    ta.join();
    tb.join();
    return a.result();
  };

  const auto from_grid = run(grid_store);
  const auto from_shards = run(shard_store);
  const auto expected = algos::reference::pagerank(g, 0.7, 5);
  ASSERT_EQ(from_grid.size(), expected.size());
  for (std::size_t v = 0; v < expected.size(); ++v) {
    EXPECT_NEAR(from_grid[v], expected[v], 1e-11);
    EXPECT_NEAR(from_shards[v], expected[v], 1e-11);
  }
}

TEST(Integration, SchedulingAblationChangesOrderNotAnswers) {
  const auto g = test::small_rmat(500, 6000, 3);
  const grid::GridStore store = test::make_grid(g, 8);
  const auto jobs = runtime::paper_mix(6, g.num_vertices(), 9);

  runtime::ExecutorConfig with;
  with.record_results = true;
  runtime::ExecutorConfig without = with;
  without.graphm.use_scheduling = false;

  const auto a = runtime::run_jobs(runtime::Scheme::kShared, store, jobs, with);
  const auto b = runtime::run_jobs(runtime::Scheme::kShared, store, jobs, without);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    // Exact, PageRank included: striped accumulation fixes the summation
    // shape, so the scheduler ablation may only change order, never bits.
    ASSERT_EQ(a.jobs[j].result, b.jobs[j].result) << "job " << j;
  }
}

TEST(Integration, MutationDuringConcurrentRunStaysPrivate) {
  // A job mutates a chunk before streaming; a concurrent job must see the
  // original graph and compute the unmutated answer.
  const auto g = test::small_rmat(300, 3000, 5);
  const grid::GridStore store = test::make_grid(g, 2);
  sim::Platform platform;
  core::GraphM graphm(store, platform);
  graphm.init();

  // Mutation: clear partition 0 / chunk 0 for job 0 (drop those edges).
  auto loader0 = graphm.make_loader(0);
  auto loader1 = graphm.make_loader(1);
  graphm.controller().apply_mutation(0, 0, 0, {});

  const grid::StreamEngine engine(store, platform);
  algos::PageRank job0(0.8, 3);
  algos::PageRank job1(0.8, 3);
  std::thread t0([&] { engine.run_job(0, job0, *loader0); });
  std::thread t1([&] { engine.run_job(1, job1, *loader1); });
  t0.join();
  t1.join();

  const auto expected = algos::reference::pagerank(g, 0.8, 3);
  const auto r1 = job1.result();
  for (std::size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(r1[v], expected[v], 1e-11) << "job 1 must see the unmutated graph";
  }
  // Job 0 computed on fewer edges: its result must differ somewhere.
  const auto r0 = job0.result();
  bool differs = false;
  for (std::size_t v = 0; v < expected.size() && !differs; ++v) {
    differs = std::abs(r0[v] - expected[v]) > 1e-12;
  }
  EXPECT_TRUE(differs) << "the mutation (dropped chunk) must affect the owner";
}

TEST(Integration, EveryDatasetStandInRunsEndToEnd) {
  for (const auto& spec : graph::dataset_specs()) {
    const double tiny = 0.02;
    const grid::GridStore store = grid::open_dataset_grid(spec.name, 4, tiny);
    const auto jobs = runtime::paper_mix(3, store.meta().num_vertices, 1);
    runtime::ExecutorConfig config;
    config.record_results = true;
    const auto s = runtime::run_jobs(runtime::Scheme::kSequential, store, jobs, config);
    const auto m = runtime::run_jobs(runtime::Scheme::kShared, store, jobs, config);
    ASSERT_EQ(s.jobs.size(), m.jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      ASSERT_EQ(s.jobs[j].result, m.jobs[j].result)
          << spec.name << " job " << j << " must be bit-identical across -S/-M";
    }
  }
}

TEST(Integration, SyncManagerProfilesRealJobs) {
  // After a mixed run the sync manager must have profiled T(F_j) for jobs
  // that processed at least two partitions, and T(E) must be positive once a
  // frontier job streamed inactive chunks.
  const auto g = test::small_rmat(600, 8000, 11);
  const grid::GridStore store = test::make_grid(g, 8);
  sim::Platform platform;
  core::GraphM graphm(store, platform);
  graphm.init();
  const grid::StreamEngine engine(store, platform);

  algos::PageRank pr(0.85, 4);
  auto loader = graphm.make_loader(0);
  engine.run_job(0, pr, *loader);

  EXPECT_TRUE(graphm.sync().profiled(0));
  EXPECT_GT(graphm.sync().t_f(0), 0.0);
  EXPECT_FALSE(graphm.sync().observations(0).empty());
}

}  // namespace
}  // namespace graphm
