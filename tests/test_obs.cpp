// Observability substrate contracts (src/obs/ + the surfaces that feed it):
// (1) histogram accuracy — p50/p95/p99 within one bucket width of the exact
// nearest-rank order statistic on adversarial distributions, and bucket-wise
// merge associativity/commutativity; (2) the tracer is a bounded flight
// recorder (drop-oldest with counted drops, zero events when disabled);
// (3) trace_code_name stays exhaustive over the DES TraceCode space and DES
// trace records round-trip into valid Chrome trace events, with failover
// rendering as span migration between backend tracks; (4) StatsCollector
// memory stays flat across 100k finishes while small runs keep exact
// percentiles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster_service.hpp"
#include "cluster/event_loop.hpp"
#include "cluster/faults.hpp"
#include "cluster/trace_export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "runtime/workloads.hpp"
#include "service/service_stats.hpp"
#include "test_helpers.hpp"

namespace graphm {
namespace {

// ---------------------------------------------------------------------------
// Histogram: bucket layout
// ---------------------------------------------------------------------------

TEST(Histogram, BucketLayoutRoundTrips) {
  using obs::Histogram;
  const std::uint64_t probes[] = {0,   1,    31,   32,    33,    100,  1023, 1024,
                                  4097, 1u << 20, (1ull << 40) + 12345, ~0ull};
  for (const std::uint64_t v : probes) {
    const std::size_t index = Histogram::bucket_index(v);
    ASSERT_LT(index, Histogram::kNumBuckets) << v;
    const std::uint64_t lower = Histogram::bucket_lower(index);
    const std::uint64_t width = Histogram::bucket_width(index);
    EXPECT_LE(lower, v) << v;
    // Upper bound is lower + width (exclusive); guard overflow at the top.
    if (lower + width > lower) EXPECT_LT(v, lower + width) << v;
    EXPECT_EQ(Histogram::bucket_index(lower), index) << v;
  }
  // Small values are exact buckets.
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lower(v), v);
    EXPECT_EQ(Histogram::bucket_width(v), 1u);
  }
}

// ---------------------------------------------------------------------------
// Histogram: quantile accuracy on adversarial distributions
// ---------------------------------------------------------------------------

// Same nearest-rank convention as service::summarize_latency.
std::uint64_t exact_nearest_rank(std::vector<std::uint64_t> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const auto rank =
      static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

// The accuracy contract: the estimate lands inside (or within one width of)
// the bucket holding the exact order statistic.
void expect_quantiles_within_one_bucket(const std::vector<std::uint64_t>& samples) {
  obs::Histogram hist;
  for (const std::uint64_t s : samples) hist.record(s);
  ASSERT_EQ(hist.count(), samples.size());
  for (const double q : {0.50, 0.95, 0.99}) {
    const std::uint64_t exact = exact_nearest_rank(samples, q);
    const double estimate = hist.quantile(q);
    const double width = static_cast<double>(
        obs::Histogram::bucket_width(obs::Histogram::bucket_index(exact)));
    EXPECT_NEAR(estimate, static_cast<double>(exact), width)
        << "q=" << q << " exact=" << exact;
  }
}

TEST(Histogram, ConstantDistributionQuantiles) {
  expect_quantiles_within_one_bucket(std::vector<std::uint64_t>(1000, 777));
}

TEST(Histogram, BimodalDistributionQuantiles) {
  // Two far-apart modes: 90% fast at ~1us, 10% slow at ~1s. The p95/p99
  // straddle the gap — the case where a linear-bucket histogram collapses.
  std::vector<std::uint64_t> samples;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t jitter = state >> 52;  // [0, 4096)
    samples.push_back(i % 10 == 0 ? 1'000'000'000ull + jitter * 1000 : 1000 + jitter);
  }
  expect_quantiles_within_one_bucket(samples);
}

TEST(Histogram, HeavyTailDistributionQuantiles) {
  // Power-law-ish tail spanning six orders of magnitude.
  std::vector<std::uint64_t> samples;
  std::uint64_t state = 42;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const int octave = static_cast<int>((state >> 60) & 15);  // 0..15
    const std::uint64_t base = 1ull << (10 + octave);
    samples.push_back(base + (state >> 40) % base);
  }
  expect_quantiles_within_one_bucket(samples);
}

TEST(Histogram, MinMaxMeanSumAreExact) {
  obs::Histogram hist;
  hist.record(5);
  hist.record(1000);
  hist.record(3);
  EXPECT_EQ(hist.min(), 3u);
  EXPECT_EQ(hist.max(), 1000u);
  EXPECT_EQ(hist.sum(), 1008u);
  EXPECT_DOUBLE_EQ(hist.mean(), 1008.0 / 3.0);
  const obs::Histogram empty;
  EXPECT_EQ(empty.min(), 0u);
  EXPECT_EQ(empty.max(), 0u);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  const auto fill = [](obs::Histogram& h, std::uint64_t seed, int n) {
    std::uint64_t state = seed;
    for (int i = 0; i < n; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      h.record(state >> 30);
    }
  };
  obs::Histogram a, b, c;
  fill(a, 1, 400);
  fill(b, 2, 300);
  fill(c, 3, 200);

  obs::Histogram left;   // (a + b) + c
  left.merge(a);
  left.merge(b);
  left.merge(c);
  obs::Histogram right;  // c + (b + a)
  obs::Histogram inner;
  inner.merge(b);
  inner.merge(a);
  right.merge(c);
  right.merge(inner);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.sum(), right.sum());
  EXPECT_EQ(left.min(), right.min());
  EXPECT_EQ(left.max(), right.max());
  for (std::size_t i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    ASSERT_EQ(left.bucket_count(i), right.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(left.count(), 900u);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, InstrumentsAreCreatedOnceAndStable) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("graphm.test.counter");
  counter.add(41);
  registry.counter("graphm.test.counter").increment();
  EXPECT_EQ(counter.value(), 42u);
  registry.gauge("graphm.test.gauge").set(-7);
  EXPECT_EQ(registry.gauge("graphm.test.gauge").value(), -7);
  registry.histogram("graphm.test.hist").record(100);
  EXPECT_EQ(registry.histogram("graphm.test.hist").count(), 1u);
}

TEST(Registry, JsonSnapshotCarriesEveryInstrument) {
  obs::Registry registry;
  registry.counter("graphm.a.events").add(3);
  registry.set_gauge("graphm.b.depth", 9);
  obs::Histogram& hist = registry.histogram("graphm.c.latency_ns");
  for (int i = 1; i <= 100; ++i) hist.record(static_cast<std::uint64_t>(i) * 1000);
  const std::string json = registry.json();
  EXPECT_NE(json.find("\"graphm.a.events\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"graphm.b.depth\": 9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"graphm.c.latency_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer: bounded flight recorder
// ---------------------------------------------------------------------------

TEST(Tracer, DisabledTracerRecordsNothing) {
  obs::Tracer tracer(64);
  const std::uint32_t track = tracer.track("t");
  tracer.complete(track, "never", 0, 10);
  tracer.instant(track, "never", 5);
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RingIsBoundedAndCountsDrops) {
  obs::Tracer tracer(/*ring_capacity=*/16);
  tracer.set_enabled(true);
  const std::uint32_t track = tracer.track("t");
  for (std::uint64_t i = 0; i < 100; ++i) {
    tracer.complete(track, "e", i, 1, static_cast<std::uint32_t>(i));
  }
  const auto events = tracer.snapshot();
  EXPECT_EQ(events.size(), 16u);
  EXPECT_EQ(tracer.dropped(), 84u);
  // Drop-oldest: the survivors are the newest 16, in timestamp order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, 84 + i);
  }
  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, SpanRecordsOnDestructionAndNamesTruncate) {
  obs::Tracer tracer(64);
  tracer.set_enabled(true);
  const std::uint32_t track = tracer.track("worker");
  {
    obs::Span span(tracer, track, "a-very-long-span-name-that-exceeds-the-inline-capacity",
                   /*job=*/7);
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].job, 7u);
  EXPECT_EQ(std::string(events[0].name).size(), obs::TraceEvent::kNameCapacity);
}

TEST(Tracer, ThreadTrackIsStableAndRenamable) {
  obs::Tracer tracer(64);
  tracer.set_enabled(true);
  const std::uint32_t track = tracer.thread_track();
  EXPECT_EQ(tracer.thread_track(), track);
  tracer.name_thread_track("svc-worker 3");
  const auto names = tracer.track_names();
  ASSERT_LT(track, names.size());
  EXPECT_EQ(names[track], "svc-worker 3");
}

TEST(Tracer, TrackInterningDeduplicates) {
  obs::Tracer tracer(64);
  EXPECT_EQ(tracer.track("sharing #0"), tracer.track("sharing #0"));
  EXPECT_NE(tracer.track("sharing #0"), tracer.track("sharing #1"));
}

// ---------------------------------------------------------------------------
// Chrome exporter
// ---------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(TraceExport, WritesWellFormedChromeJson) {
  obs::TraceProcess process;
  process.pid = 1;
  process.name = "test \"proc\"";
  process.tracks = {"track zero"};
  obs::TraceEvent complete;
  complete.ts_ns = 1500;
  complete.dur_ns = 2500;
  complete.phase = 'X';
  std::snprintf(complete.name, sizeof(complete.name), "span \"q\"");
  obs::TraceEvent instant;
  instant.ts_ns = 2000;
  instant.phase = 'i';
  std::snprintf(instant.name, sizeof(instant.name), "mark");
  process.events = {instant, complete};  // exporter must sort by ts

  const std::string path = testing::TempDir() + "obs_export_test.json";
  ASSERT_TRUE(obs::write_chrome_trace(path, {process}));
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("span \\\"q\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(json.find("\"ts\": 1.500"), std::string::npos);   // ns -> fractional us
  EXPECT_NE(json.find("\"dur\": 2.500"), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);    // instant scope
  // The complete span (ts 1.5us) must be written before the instant (2us).
  EXPECT_LT(json.find("span \\\"q\\\""), json.find("\"mark\""));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// DES trace codes + round-trip into exporter events
// ---------------------------------------------------------------------------

TEST(DesTrace, TraceCodeNamesAreExhaustive) {
  for (int code = 1; code <= 16; ++code) {
    EXPECT_STRNE(cluster::trace_code_name(static_cast<cluster::TraceCode>(code)), "?")
        << "TraceCode " << code << " has no name — update trace_code_name and the "
        << "cluster/trace_export.cpp converter together";
  }
}

TEST(DesTrace, RecordsRoundTripIntoBackendTrackEvents) {
  using cluster::TraceCode;
  using cluster::TraceRecord;
  // Hand-built episode: job 5 dispatched on backend 0, backend 0 crashes,
  // job is redispatched on backend 1 and completes there.
  std::vector<TraceRecord> records = {
      {1000, TraceCode::kJobDispatched, 0, 5, 0},
      {1500, TraceCode::kSuperstep, 0, 5, 1},
      {2000, TraceCode::kFaultInjected, 0, 0,
       static_cast<std::uint64_t>(cluster::FaultKind::kCrash)},
      {2100, TraceCode::kJobFailed, 0, 5, 0},
      {2200, TraceCode::kBackendDead, 0, 0, 0},
      {3000, TraceCode::kJobRedispatched, 1, 5, 0},
      {4500, TraceCode::kJobComplete, 1, 5, 0},
  };
  const obs::TraceProcess process = cluster::des_trace_process(records);
  ASSERT_EQ(process.tracks.size(), 2u);
  EXPECT_EQ(process.tracks[0], "backend 0");
  EXPECT_EQ(process.tracks[1], "backend 1");

  // Exactly two job spans, one per backend track — the crash -> redispatch
  // migration the Perfetto view renders as the span hopping tracks.
  std::vector<const obs::TraceEvent*> spans;
  for (const obs::TraceEvent& e : process.events) {
    if (e.phase == 'X') spans.push_back(&e);
  }
  ASSERT_EQ(spans.size(), 2u);
  std::sort(spans.begin(), spans.end(),
            [](const obs::TraceEvent* a, const obs::TraceEvent* b) {
              return a->ts_ns < b->ts_ns;
            });
  EXPECT_EQ(spans[0]->track, 0u);
  EXPECT_EQ(spans[0]->ts_ns, 1000u);
  EXPECT_EQ(spans[0]->dur_ns, 1100u);  // dispatched 1000 -> failed 2100
  EXPECT_NE(std::string(spans[0]->name).find("(failed)"), std::string::npos);
  EXPECT_EQ(spans[1]->track, 1u);
  EXPECT_EQ(spans[1]->ts_ns, 3000u);
  EXPECT_EQ(spans[1]->dur_ns, 1500u);  // redispatched 3000 -> complete 4500
  EXPECT_EQ(std::string(spans[1]->name), "job 5");

  // The crash is an instant naming its fault kind on the crashed track.
  bool saw_crash = false;
  for (const obs::TraceEvent& e : process.events) {
    if (e.phase == 'i' && std::string(e.name) == "fault crash") {
      EXPECT_EQ(e.track, 0u);
      saw_crash = true;
    }
  }
  EXPECT_TRUE(saw_crash);
}

TEST(DesTrace, OpenJobsAreClosedAtHorizonNotDropped) {
  using cluster::TraceCode;
  std::vector<cluster::TraceRecord> records = {
      {100, TraceCode::kJobDispatched, 0, 1, 0},
      {900, TraceCode::kSuperstep, 0, 1, 0},
  };
  const obs::TraceProcess process = cluster::des_trace_process(records);
  bool saw_open = false;
  for (const obs::TraceEvent& e : process.events) {
    if (e.phase == 'X') {
      EXPECT_NE(std::string(e.name).find("(open)"), std::string::npos);
      EXPECT_EQ(e.ts_ns, 100u);
      EXPECT_EQ(e.dur_ns, 800u);  // closed at the last record's timestamp
      saw_open = true;
    }
  }
  EXPECT_TRUE(saw_open);
}

TEST(DesTrace, ClusterCrashRunExportsJobSpansOnBothReplicaTracks) {
  const auto g = test::small_rmat(1024, 20000, 31);
  std::vector<cluster::BackendConfig> backends(2);
  backends[0].dataset = "d";
  backends[0].num_nodes = 4;
  backends[1].dataset = "d";
  backends[1].num_nodes = 4;
  backends[1].replica_id = 1;
  cluster::ClusterServiceConfig config;
  config.des.seed = 0xFA11;
  config.des.record_trace = true;
  cluster::ClusterService service(g, backends, config);

  const auto specs = runtime::paper_mix(8, g.num_vertices(), 9);
  std::vector<cluster::Submission> submissions(8);
  for (std::size_t j = 0; j < 8; ++j) {
    submissions[j].spec = specs[j];
    submissions[j].arrival_ns = j * 300'000;
    submissions[j].dataset = "d";
  }
  cluster::FaultPlan plan;
  plan.events.push_back({cluster::FaultKind::kCrash, /*backend=*/0,
                         /*at_ns=*/400'000, /*duration_ns=*/0});
  service.run(submissions, plan);
  const auto& records = service.last_trace();
  ASSERT_FALSE(records.empty());

  const obs::TraceProcess process = cluster::des_trace_process(records);
  bool track0_span = false, track1_span = false;
  for (const obs::TraceEvent& e : process.events) {
    if (e.phase != 'X') continue;
    if (e.track == 0) track0_span = true;
    if (e.track == 1) track1_span = true;
  }
  EXPECT_TRUE(track0_span) << "no job span on the crashed backend's track";
  EXPECT_TRUE(track1_span) << "no job span on the surviving replica's track";

  const std::string path = testing::TempDir() + "obs_des_trace_test.json";
  ASSERT_TRUE(cluster::export_des_trace(path, records));
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("backend 1"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// StatsCollector: bounded memory, exact when small
// ---------------------------------------------------------------------------

runtime::JobOutcome synthetic_outcome(std::uint64_t i, std::uint64_t latency_ns) {
  runtime::JobOutcome outcome;
  outcome.arrival_ns = i * 10'000;
  outcome.start_ns = outcome.arrival_ns + 100;
  outcome.completion_ns = outcome.start_ns + latency_ns;
  return outcome;
}

TEST(StatsCollector, ExactPercentilesBelowTheSampleCap) {
  service::StatsCollector collector;
  std::vector<std::uint64_t> latencies;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const std::uint64_t latency = (i * 7919) % 100'000 + 1000;
    latencies.push_back(latency + 100);  // e2e includes the 100ns queue wait
    collector.on_submit();
    collector.on_start(i * 10'000, 1);
    collector.on_finish(synthetic_outcome(i, latency), latency, false, false,
                        i * 10'000 + latency, 0);
  }
  const service::ServiceStats stats = collector.snapshot({}, 4);
  const service::LatencySummary exact = service::summarize_latency(latencies);
  EXPECT_EQ(stats.e2e.count, 100u);
  EXPECT_DOUBLE_EQ(stats.e2e.p50_ns, exact.p50_ns);
  EXPECT_DOUBLE_EQ(stats.e2e.p95_ns, exact.p95_ns);
  EXPECT_DOUBLE_EQ(stats.e2e.p99_ns, exact.p99_ns);
  EXPECT_DOUBLE_EQ(stats.e2e.max_ns, exact.max_ns);
}

TEST(StatsCollector, MemoryStaysFlatAcross100kFinishes) {
  service::StatsCollector collector;
  const auto feed = [&collector](std::uint64_t from, std::uint64_t to) {
    for (std::uint64_t i = from; i < to; ++i) {
      collector.on_submit();
      collector.on_start(i * 1000, static_cast<std::uint32_t>(i % 8));
      collector.on_finish(synthetic_outcome(i, (i * 7919) % 1'000'000),
                          (i * 7919) % 1'000'000, false, false, i * 1000 + 500,
                          static_cast<std::uint32_t>(i % 8));
    }
  };
  feed(0, 10'000);
  const std::size_t bytes_at_10k = collector.approx_memory_bytes();
  feed(10'000, 100'000);
  const std::size_t bytes_at_100k = collector.approx_memory_bytes();
  EXPECT_EQ(bytes_at_10k, bytes_at_100k)
      << "StatsCollector retained memory grew with the job count";

  const service::ServiceStats stats = collector.snapshot({}, 8);
  EXPECT_EQ(stats.completed, 100'000u);
  EXPECT_LE(stats.timeline.size(), service::StatsCollector::kTimelineCap);
  EXPECT_FALSE(stats.timeline.empty());
  // Timeline decimation keeps span coverage: first point at stride origin,
  // last point within a stride of the final event.
  EXPECT_EQ(stats.timeline.front().t_ns, 0u);
  EXPECT_GT(stats.timeline.back().t_ns, 190'000'000u / 2);
  // Histogram-backed percentiles stay within a bucket of the exact ones.
  std::vector<std::uint64_t> latencies;
  latencies.reserve(100'000);
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    latencies.push_back((i * 7919) % 1'000'000 + 100);
  }
  const std::uint64_t exact_p99 = exact_nearest_rank(latencies, 0.99);
  const double width = static_cast<double>(
      obs::Histogram::bucket_width(obs::Histogram::bucket_index(exact_p99)));
  EXPECT_NEAR(stats.e2e.p99_ns, static_cast<double>(exact_p99), width);
}

TEST(StatsCollector, PublishMetricsRehomesCountersAndHistograms) {
  service::StatsCollector collector;
  for (std::uint64_t i = 0; i < 10; ++i) {
    collector.on_submit();
    collector.on_start(i, 1);
    collector.on_finish(synthetic_outcome(i, 1000), 1000, /*cancelled=*/i == 9,
                        /*missed_deadline=*/i == 9, i, 0);
  }
  collector.on_reject();
  obs::Registry registry;
  collector.publish_metrics(registry);
  EXPECT_EQ(registry.counter("graphm.service.submitted").value(), 10u);
  EXPECT_EQ(registry.counter("graphm.service.rejected").value(), 1u);
  EXPECT_EQ(registry.counter("graphm.service.completed").value(), 9u);
  EXPECT_EQ(registry.counter("graphm.service.cancelled").value(), 1u);
  EXPECT_EQ(registry.counter("graphm.service.deadline_misses").value(), 1u);
  EXPECT_EQ(registry.histogram("graphm.service.e2e_ns").count(), 9u);
}

}  // namespace
}  // namespace graphm
