// Shared helpers for the test suite: temporary stores built from generated
// graphs, plus small comparison utilities.
#pragma once

#include <atomic>
#include <filesystem>
#include <string>

#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "grid/grid_store.hpp"
#include "shard/shard_store.hpp"

namespace graphm::test {

inline std::string unique_temp_path(const std::string& tag) {
  static std::atomic<std::uint64_t> counter{0};
  const auto dir = std::filesystem::temp_directory_path() / "graphm_tests";
  std::filesystem::create_directories(dir);
  return (dir / (tag + "_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter.fetch_add(1))))
      .string();
}

/// Preprocesses `graph` into a fresh temporary grid and opens it.
inline grid::GridStore make_grid(const graph::EdgeList& graph, std::uint32_t partitions) {
  const std::string path = unique_temp_path("grid");
  grid::GridStore::preprocess(graph, partitions, path);
  return grid::GridStore::open(path);
}

/// Preprocesses `graph` into fresh temporary shards and opens them.
inline shard::ShardStore make_shards(const graph::EdgeList& graph, std::uint32_t shards) {
  const std::string path = unique_temp_path("shard");
  shard::ShardStore::preprocess(graph, shards, path);
  return shard::ShardStore::open(path);
}

/// A small skewed test graph (deterministic).
inline graph::EdgeList small_rmat(graph::VertexId vertices = 512,
                                  graph::EdgeCount edges = 4096, std::uint64_t seed = 7) {
  auto g = graph::generate_rmat(vertices, edges, seed);
  graph::randomize_weights(g, 1.0f, 16.0f, seed * 31);
  return g;
}

}  // namespace graphm::test
