#include <gtest/gtest.h>

#include "algos/bfs.hpp"
#include "algos/factory.hpp"
#include "algos/pagerank.hpp"
#include "algos/reference.hpp"
#include "algos/sssp.hpp"
#include "algos/wcc.hpp"
#include "grid/loader.hpp"
#include "grid/stream_engine.hpp"
#include "test_helpers.hpp"

namespace graphm::algos {
namespace {

// Runs one algorithm on the grid engine and returns its result vector.
std::vector<double> run_on_grid(const graph::EdgeList& g, const JobSpec& spec,
                                std::uint32_t partitions) {
  const grid::GridStore store = test::make_grid(g, partitions);
  sim::Platform platform;
  const grid::StreamEngine engine(store, platform);
  auto algorithm = make_algorithm(spec);
  grid::DefaultLoader loader(store, platform);
  engine.run_job(0, *algorithm, loader);
  return algorithm->result();
}

struct Case {
  const char* name;
  graph::EdgeList graph;
};

std::vector<Case> test_graphs() {
  std::vector<Case> cases;
  cases.push_back({"ring", graph::generate_ring(97)});
  cases.push_back({"ring_chords", graph::generate_ring(64, 7)});
  cases.push_back({"rmat_small", test::small_rmat(128, 1000, 3)});
  cases.push_back({"rmat_mid", test::small_rmat(700, 9000, 4)});
  cases.push_back({"er", graph::generate_erdos_renyi(300, 2000, 5)});
  cases.push_back({"chung_lu", graph::generate_chung_lu(256, 2500, 0.7, 6)});
  for (auto& c : cases) graph::randomize_weights(c.graph, 1.0f, 10.0f, 17);
  return cases;
}

class AlgorithmOnGraphs : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AlgorithmOnGraphs, PageRankMatchesReference) {
  for (const Case& c : test_graphs()) {
    JobSpec spec;
    spec.kind = AlgorithmKind::kPageRank;
    spec.damping = 0.8;
    spec.max_iterations = 4;
    const auto got = run_on_grid(c.graph, spec, GetParam());
    const auto expected = reference::pagerank(c.graph, 0.8, 4);
    ASSERT_EQ(got.size(), expected.size()) << c.name;
    for (std::size_t v = 0; v < got.size(); ++v) {
      ASSERT_NEAR(got[v], expected[v], 1e-11) << c.name << " vertex " << v;
    }
  }
}

TEST_P(AlgorithmOnGraphs, WccMatchesReferenceCapped) {
  for (const Case& c : test_graphs()) {
    for (std::uint32_t cap : {1u, 3u, 200u}) {
      JobSpec spec;
      spec.kind = AlgorithmKind::kWcc;
      spec.max_iterations = cap;
      const auto got = run_on_grid(c.graph, spec, GetParam());
      const auto expected = reference::wcc_labels(c.graph, cap);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t v = 0; v < got.size(); ++v) {
        ASSERT_DOUBLE_EQ(got[v], static_cast<double>(expected[v]))
            << c.name << " cap=" << cap << " vertex " << v;
      }
    }
  }
}

TEST_P(AlgorithmOnGraphs, ConvergedWccEqualsUnionFind) {
  for (const Case& c : test_graphs()) {
    JobSpec spec;
    spec.kind = AlgorithmKind::kWcc;
    spec.max_iterations = static_cast<std::uint32_t>(c.graph.num_vertices() + 2);
    const auto got = run_on_grid(c.graph, spec, GetParam());
    const auto expected = reference::wcc_union_find(c.graph);
    for (std::size_t v = 0; v < got.size(); ++v) {
      ASSERT_DOUBLE_EQ(got[v], static_cast<double>(expected[v])) << c.name;
    }
  }
}

TEST_P(AlgorithmOnGraphs, BfsMatchesReference) {
  for (const Case& c : test_graphs()) {
    for (graph::VertexId root : {graph::VertexId{0}, c.graph.num_vertices() / 2}) {
      JobSpec spec;
      spec.kind = AlgorithmKind::kBfs;
      spec.root = root;
      const auto got = run_on_grid(c.graph, spec, GetParam());
      const auto expected = reference::bfs_levels(c.graph, root);
      for (std::size_t v = 0; v < got.size(); ++v) {
        ASSERT_DOUBLE_EQ(got[v], static_cast<double>(expected[v]))
            << c.name << " root=" << root << " vertex " << v;
      }
    }
  }
}

TEST_P(AlgorithmOnGraphs, SsspMatchesDijkstra) {
  for (const Case& c : test_graphs()) {
    JobSpec spec;
    spec.kind = AlgorithmKind::kSssp;
    spec.root = 1 % c.graph.num_vertices();
    const auto got = run_on_grid(c.graph, spec, GetParam());
    const auto expected = reference::sssp_distances(c.graph, spec.root);
    for (std::size_t v = 0; v < got.size(); ++v) {
      ASSERT_FLOAT_EQ(static_cast<float>(got[v]), expected[v]) << c.name << " vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, AlgorithmOnGraphs, ::testing::Values(1u, 3u, 8u));

TEST(PageRank, RanksSumNearOneWithFullDamping) {
  // With damping d, total rank = (1-d) + d * (retained mass); on a graph with
  // no dangling vertices the sum stays exactly 1.
  const auto g = graph::generate_ring(50);
  JobSpec spec;
  spec.kind = AlgorithmKind::kPageRank;
  spec.damping = 0.85;
  spec.max_iterations = 10;
  const auto ranks = run_on_grid(g, spec, 4);
  double sum = 0.0;
  for (double r : ranks) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Bfs, UnreachedStayUnreached) {
  graph::EdgeList g;
  g.add_edge(0, 1);
  g.add_edge(2, 3);  // separate component
  JobSpec spec;
  spec.kind = AlgorithmKind::kBfs;
  spec.root = 0;
  const auto levels = run_on_grid(g, spec, 2);
  EXPECT_DOUBLE_EQ(levels[1], 1.0);
  EXPECT_DOUBLE_EQ(levels[2], static_cast<double>(Bfs::kUnreached));
  EXPECT_DOUBLE_EQ(levels[3], static_cast<double>(Bfs::kUnreached));
}

TEST(Sssp, TakesCheaperLongerPath) {
  graph::EdgeList g;
  g.add_edge(0, 1, 10.0f);
  g.add_edge(0, 2, 1.0f);
  g.add_edge(2, 1, 2.0f);  // 0->2->1 costs 3 < direct 10
  JobSpec spec;
  spec.kind = AlgorithmKind::kSssp;
  spec.root = 0;
  const auto dist = run_on_grid(g, spec, 1);
  EXPECT_DOUBLE_EQ(dist[1], 3.0);
}

TEST(Factory, RandomSpecsCycleAlgorithms) {
  const auto s0 = random_job_spec(0, 1000, 1);
  const auto s1 = random_job_spec(1, 1000, 1);
  const auto s2 = random_job_spec(2, 1000, 1);
  const auto s3 = random_job_spec(3, 1000, 1);
  EXPECT_EQ(s0.kind, AlgorithmKind::kWcc);
  EXPECT_EQ(s1.kind, AlgorithmKind::kPageRank);
  EXPECT_EQ(s2.kind, AlgorithmKind::kSssp);
  EXPECT_EQ(s3.kind, AlgorithmKind::kBfs);
  EXPECT_GE(s1.damping, 0.1);
  EXPECT_LE(s1.damping, 0.85);
  EXPECT_LT(s2.root, 1000u);
}

TEST(Factory, LabelsAreDescriptive) {
  JobSpec spec;
  spec.kind = AlgorithmKind::kBfs;
  spec.root = 42;
  EXPECT_EQ(spec.label(), "BFS(root=42)");
}

}  // namespace
}  // namespace graphm::algos
