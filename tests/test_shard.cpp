#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "algos/pagerank.hpp"
#include "algos/reference.hpp"
#include "graphm/graphm.hpp"
#include "shard/graphchi_engine.hpp"
#include "test_helpers.hpp"

namespace graphm::shard {
namespace {

TEST(ShardStore, ShardsPartitionByDestination) {
  const auto g = test::small_rmat(300, 2500);
  const ShardStore store = test::make_shards(g, 4);
  EXPECT_FALSE(store.meta().partitions_by_source);

  sim::Platform platform;
  std::vector<graph::Edge> buffer;
  std::uint64_t total = 0;
  const graph::VertexId per = (g.num_vertices() + 3) / 4;
  for (std::uint32_t s = 0; s < 4; ++s) {
    store.read_partition(s, buffer, platform, 0);
    total += buffer.size();
    for (const graph::Edge& e : buffer) {
      EXPECT_EQ(std::min<std::uint32_t>(3, e.dst / per), s) << "edge in wrong shard";
    }
    EXPECT_TRUE(std::is_sorted(buffer.begin(), buffer.end(),
                               [](const graph::Edge& a, const graph::Edge& b) {
                                 return a.src < b.src;
                               }))
        << "GraphChi shards are sorted by source";
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(ShardStore, VertexRangeIsFullGraph) {
  const auto g = test::small_rmat(100, 800);
  const ShardStore store = test::make_shards(g, 4);
  const auto [begin, end] = store.meta().vertex_range(2);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, g.num_vertices());
}

TEST(GraphChiEngine, PageRankMatchesReference) {
  const auto g = test::small_rmat(256, 3000);
  const ShardStore store = test::make_shards(g, 4);
  sim::Platform platform;
  const GraphChiEngine engine(store, platform);

  algos::PageRank pr(0.85, 4);
  auto loader = engine.make_default_loader();
  engine.run_job(0, pr, *loader);

  const auto expected = algos::reference::pagerank(g, 0.85, 4);
  const auto got = pr.result();
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-11) << "vertex " << v;
  }
}

TEST(GraphChiEngine, GraphMPluggedIntoShardsSharesLoads) {
  // Table 4's GraphChi-M: the same GraphM instance drives LoadSubgraph().
  const auto g = test::small_rmat(256, 3000);
  const ShardStore store = test::make_shards(g, 4);
  sim::Platform platform;
  const GraphChiEngine engine(store, platform);
  core::GraphM graphm(store, platform);
  graphm.init();

  algos::PageRank pr0(0.85, 3);
  algos::PageRank pr1(0.6, 3);
  auto l0 = graphm.make_loader(0);
  auto l1 = graphm.make_loader(1);
  std::thread t0([&] { engine.run_job(0, pr0, *l0); });
  std::thread t1([&] { engine.run_job(1, pr1, *l1); });
  t0.join();
  t1.join();

  EXPECT_EQ(graphm.controller().stats().partition_loads, 12u) << "3 iters x 4 shards";
  EXPECT_EQ(graphm.controller().stats().attaches, 12u);

  const auto expected = algos::reference::pagerank(g, 0.85, 3);
  const auto got = pr0.result();
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-11);
  }
}

TEST(ShardStore, DegreesMatchEdgeList) {
  const auto g = test::small_rmat(128, 900);
  const ShardStore store = test::make_shards(g, 3);
  EXPECT_EQ(store.load_out_degrees(), g.out_degrees());
}

}  // namespace
}  // namespace graphm::shard
