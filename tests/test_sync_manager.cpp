#include <gtest/gtest.h>

#include "graph/edge_list.hpp"
#include "graphm/sync_manager.hpp"

namespace graphm::core {
namespace {

TEST(SyncManager, PureStreamingChunkCalibratesTe) {
  SyncManager sync;
  // 1000 edges streamed with no active vertex in 5000 ns -> T(E) = 5 ns/edge.
  sync.record_chunk(0, 0, 1000, 5000);
  EXPECT_DOUBLE_EQ(sync.t_e(), 5.0);
  // Running mean over a second sample.
  sync.record_chunk(0, 0, 1000, 7000);
  EXPECT_DOUBLE_EQ(sync.t_e(), 6.0);
}

TEST(SyncManager, TfRecoveredFromFormula2) {
  SyncManager sync;
  // Known ground truth: T(E)=5 ns/edge, T(F)=20 ns/edge.
  constexpr double kTe = 5.0;
  constexpr double kTf = 20.0;
  sync.record_chunk(7, 0, 500, static_cast<std::uint64_t>(kTe * 500));  // calibrate T(E)

  // Partition 1: 300 active of 1000; partition 2: 800 active of 1200.
  sync.record_chunk(7, 300, 1000, static_cast<std::uint64_t>(kTf * 300 + kTe * 1000));
  sync.finish_partition(7);
  EXPECT_FALSE(sync.profiled(7)) << "needs two profiled partitions";
  sync.record_chunk(7, 800, 1200, static_cast<std::uint64_t>(kTf * 800 + kTe * 1200));
  sync.finish_partition(7);
  EXPECT_TRUE(sync.profiled(7));
  EXPECT_NEAR(sync.t_f(7), kTf, 0.5);
}

TEST(SyncManager, SolvesTwoByTwoWithoutDirectTeSample) {
  SyncManager sync;
  constexpr double kTe = 4.0;
  constexpr double kTf = 30.0;
  // Two partitions with different active ratios make Formula 2 solvable.
  sync.record_chunk(2, 200, 1000, static_cast<std::uint64_t>(kTf * 200 + kTe * 1000));
  sync.finish_partition(2);
  sync.record_chunk(2, 900, 1000, static_cast<std::uint64_t>(kTf * 900 + kTe * 1000));
  sync.finish_partition(2);
  EXPECT_NEAR(sync.t_e(), kTe, 0.5);
  EXPECT_NEAR(sync.t_f(2), kTf, 1.0);
}

TEST(SyncManager, SingularSystemDoesNotBlowUp) {
  SyncManager sync;
  // PageRank-like: all edges active in both partitions (A == B): the 2x2
  // system is singular; T(E) must stay 0 and T(F) absorb the whole time.
  sync.record_chunk(1, 1000, 1000, 10000);
  sync.finish_partition(1);
  sync.record_chunk(1, 2000, 2000, 20000);
  sync.finish_partition(1);
  EXPECT_DOUBLE_EQ(sync.t_e(), 0.0);
  EXPECT_NEAR(sync.t_f(1), 10.0, 0.1);
}

TEST(SyncManager, ChunkLoadFormula3) {
  SyncManager sync;
  sync.record_chunk(3, 0, 100, 500);  // T(E) = 5
  sync.record_chunk(3, 100, 200, 100 * 10 + 200 * 5);
  sync.finish_partition(3);
  sync.record_chunk(3, 50, 100, 50 * 10 + 100 * 5);
  sync.finish_partition(3);

  graph::EdgeList g;
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const ChunkInfo chunk = label_chunk(g.edges().data(), 3, 0);

  util::AtomicBitmap active(3);
  active.set(0);  // 2 active edges
  // Formula 3: L = T(F) * active; Formula 4 adds T(E) * total.
  EXPECT_NEAR(sync.chunk_load_ns(3, chunk, active), 10.0 * 2, 0.5);
  EXPECT_NEAR(sync.first_toucher_ns(3, chunk, active), 10.0 * 2 + 5.0 * 3, 0.8);
}

TEST(SyncManager, UnknownJobIsZero) {
  SyncManager sync;
  EXPECT_DOUBLE_EQ(sync.t_f(42), 0.0);
  EXPECT_FALSE(sync.profiled(42));
  EXPECT_TRUE(sync.observations(42).empty());
}

TEST(SyncManager, EmptyPartitionNotRecorded) {
  SyncManager sync;
  sync.finish_partition(1);
  EXPECT_TRUE(sync.observations(1).empty());
}

TEST(SyncManager, ObservationsAccumulateChunks) {
  SyncManager sync;
  sync.record_chunk(5, 10, 100, 1000);
  sync.record_chunk(5, 20, 200, 2000);
  sync.finish_partition(5);
  const auto obs = sync.observations(5);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].active_edges, 30u);
  EXPECT_EQ(obs[0].total_edges, 300u);
  EXPECT_EQ(obs[0].elapsed_ns, 3000u);
}

}  // namespace
}  // namespace graphm::core
