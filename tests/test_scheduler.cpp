#include <gtest/gtest.h>

#include "graphm/scheduler.hpp"

namespace graphm::core {
namespace {

TEST(Priority, Formula5FavorsJobsWithFewActivePartitions) {
  // Rule 1: a partition handled by a job with fewer active partitions gets a
  // higher priority.
  std::map<JobId, std::size_t> counts{{1, 1}, {2, 4}};
  const double p_few = partition_priority({1}, counts);
  const double p_many = partition_priority({2}, counts);
  EXPECT_GT(p_few, p_many);
  EXPECT_DOUBLE_EQ(p_few, 1.0);
  EXPECT_DOUBLE_EQ(p_many, 0.25);
}

TEST(Priority, Formula5FavorsPartitionsNeededByMoreJobs) {
  // Rule 2: the partition processed by the most jobs gets the highest
  // priority (N(J) scales the score).
  std::map<JobId, std::size_t> counts{{1, 2}, {2, 2}, {3, 2}};
  const double one_job = partition_priority({1}, counts);
  const double three_jobs = partition_priority({1, 2, 3}, counts);
  EXPECT_DOUBLE_EQ(three_jobs, 3.0 * one_job);
}

TEST(Priority, MaxOverJobs) {
  std::map<JobId, std::size_t> counts{{1, 8}, {2, 2}};
  // Pri = max(1/8, 1/2) * 2 = 1.0
  EXPECT_DOUBLE_EQ(partition_priority({1, 2}, counts), 1.0);
}

TEST(Priority, EmptyJobSetIsZero) {
  EXPECT_DOUBLE_EQ(partition_priority({}, {}), 0.0);
}

TEST(LoadingOrder, DefaultIsAscendingPid) {
  GlobalTable table;
  table[3] = {1};
  table[1] = {2};
  table[2] = {1, 2};
  EXPECT_EQ(loading_order(table, false), (std::vector<PartitionId>{1, 2, 3}));
}

TEST(LoadingOrder, PriorityPutsSharedPartitionFirst) {
  // Figure 8: partition 1 is needed by both jobs; job 1 has only one active
  // partition. Partition 1 should be loaded first under the strategy.
  GlobalTable table;
  table[1] = {1, 2};  // both jobs
  table[2] = {2};
  table[3] = {2};
  table[4] = {2};
  const auto order = loading_order(table, true);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);
}

TEST(LoadingOrder, TieBreakIsPidAscending) {
  GlobalTable table;
  table[7] = {1};
  table[2] = {2};
  // Both jobs have one active partition -> equal priority; pid breaks ties.
  const auto order = loading_order(table, true);
  EXPECT_EQ(order, (std::vector<PartitionId>{2, 7}));
}

TEST(LoadingOrder, SkipsPartitionsWithNoJobs) {
  GlobalTable table;
  table[0] = {};
  table[1] = {3};
  EXPECT_EQ(loading_order(table, true), (std::vector<PartitionId>{1}));
  EXPECT_EQ(loading_order(table, false), (std::vector<PartitionId>{1}));
}

TEST(LoadingOrder, NearlyDoneJobPullsItsPartitionForward) {
  // Job 9 needs only partition 5 (it can finish its iteration and activate
  // more partitions); job 8 needs many. Partition 5 must come first even
  // though 0-4 have lower pids.
  GlobalTable table;
  for (PartitionId p = 0; p < 5; ++p) table[p] = {8};
  table[5] = {9};
  const auto order = loading_order(table, true);
  EXPECT_EQ(order.front(), 5u);
}

}  // namespace
}  // namespace graphm::core
