// The central correctness property of a concurrent-job *storage* system:
// executing the same job set sequentially (-S), concurrently with private
// copies (-C) or concurrently through GraphM (-M) must not change any job's
// answer — GraphM reorders partition loads and interleaves jobs, but results
// stay the same (Section 4: "loading the partitions in different orders does
// not influence the correctness of the final results").
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "algos/reference.hpp"
#include "graphm/graphm.hpp"
#include "runtime/executor.hpp"
#include "runtime/workloads.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace graphm::runtime {
namespace {

void expect_same_results(const RunMetrics& a, const RunMetrics& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    const auto& ra = a.jobs[j].result;
    const auto& rb = b.jobs[j].result;
    ASSERT_EQ(ra.size(), rb.size()) << a.scheme << " vs " << b.scheme << " job " << j;
    for (std::size_t v = 0; v < ra.size(); ++v) {
      // Bit-identical across schemes for every algorithm — including
      // PageRank, whose striped accumulation fixes the summation shape
      // regardless of partition visit order (no tolerance escape hatch).
      ASSERT_EQ(ra[v], rb[v])
          << a.scheme << " vs " << b.scheme << " job " << j << " ("
          << a.jobs[j].spec.label() << ") vertex " << v;
    }
  }
}

struct Params {
  std::size_t num_jobs;
  std::uint32_t partitions;
  bool scheduling;
  bool fine_sync;
};

class SchemeEquivalence : public ::testing::TestWithParam<Params> {};

TEST_P(SchemeEquivalence, AllSchemesAgree) {
  const Params p = GetParam();
  const auto g = test::small_rmat(600, 8000, 21);
  const grid::GridStore store = test::make_grid(g, p.partitions);
  const auto jobs = paper_mix(p.num_jobs, g.num_vertices(), 77);

  ExecutorConfig config;
  config.record_results = true;
  config.graphm.use_scheduling = p.scheduling;
  config.graphm.fine_grained_sync = p.fine_sync;

  const auto s = run_jobs(Scheme::kSequential, store, jobs, config);
  const auto c = run_jobs(Scheme::kConcurrent, store, jobs, config);
  const auto m = run_jobs(Scheme::kShared, store, jobs, config);

  expect_same_results(s, c);
  expect_same_results(s, m);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchemeEquivalence,
    ::testing::Values(Params{1, 4, true, true}, Params{4, 4, true, true},
                      Params{4, 4, false, true}, Params{4, 4, true, false},
                      Params{8, 2, true, true}, Params{8, 8, true, true},
                      Params{6, 1, true, true}));

TEST(SchemeEquivalence, SharedModeWithManyIdenticalJobs) {
  // All jobs identical: maximal sharing; results must still be identical to a
  // solo sequential run.
  const auto g = test::small_rmat(400, 5000, 5);
  const grid::GridStore store = test::make_grid(g, 4);
  const auto jobs = uniform_mix(algos::AlgorithmKind::kSssp, 8, g.num_vertices(), 3);

  ExecutorConfig config;
  config.record_results = true;
  const auto s = run_jobs(Scheme::kSequential, store, jobs, config);
  const auto m = run_jobs(Scheme::kShared, store, jobs, config);
  expect_same_results(s, m);
}

// ---------------------------------------------------------------------------
// Block-vs-scalar oracle: every algorithm's process_edge_block override must
// be observably identical to the per-edge fallback — bit-identical result(),
// identical edges_processed — and the engine's simulated metrics must be
// deterministic at any worker-thread count (1/2/8).
// ---------------------------------------------------------------------------

/// Forwards everything except process_edge_block, so the engine exercises the
/// base-class scalar fallback (which loops the wrapped algorithm's
/// process_edge) instead of the algorithm's devirtualized override.
class ScalarFallback final : public algos::StreamingAlgorithm {
 public:
  explicit ScalarFallback(std::unique_ptr<algos::StreamingAlgorithm> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override { return inner_->name() + "-fallback"; }
  void init(graph::VertexId n, const std::vector<std::uint32_t>& degrees,
            sim::MemoryTracker* tracker) override {
    inner_->init(n, degrees, tracker);
  }
  void iteration_start(std::uint64_t iteration) override { inner_->iteration_start(iteration); }
  [[nodiscard]] const util::AtomicBitmap& active_vertices() const override {
    return inner_->active_vertices();
  }
  void process_edge(const graph::Edge& e) override { inner_->process_edge(e); }
  [[nodiscard]] bool parallel_safe() const override { return inner_->parallel_safe(); }
  // Striped-accumulation plumbing forwards so the engine drives the wrapped
  // algorithm in the same mode — but process_edge_block_striped is NOT
  // forwarded: the base-class striped fallback (per-edge dst_stripe_of +
  // process_edge) is what this wrapper exists to exercise.
  [[nodiscard]] std::uint32_t dst_stripes() const override { return inner_->dst_stripes(); }
  [[nodiscard]] std::uint32_t dst_stripe_of(graph::VertexId dst) const override {
    return inner_->dst_stripe_of(dst);
  }
  void begin_partition(std::uint32_t pid, std::uint32_t num_partitions) override {
    inner_->begin_partition(pid, num_partitions);
  }
  void iteration_end() override { inner_->iteration_end(); }
  [[nodiscard]] bool done() const override { return inner_->done(); }
  [[nodiscard]] std::pair<const void*, std::size_t> values_span() const override {
    return inner_->values_span();
  }
  [[nodiscard]] std::vector<double> result() const override { return inner_->result(); }

 private:
  std::unique_ptr<algos::StreamingAlgorithm> inner_;
};

struct EngineRun {
  std::vector<double> result;
  grid::JobRunStats stats;
  std::uint64_t instructions = 0;
};

enum class Path { kLegacyScalar, kBlocks, kBlockFallback };

EngineRun run_single(const grid::GridStore& store, const algos::JobSpec& spec, Path path,
                     std::size_t threads) {
  sim::Platform platform;
  grid::StreamConfig config;
  config.use_blocks = path != Path::kLegacyScalar;
  config.num_stream_threads = threads;
  config.block_edges = 512;  // small blocks: several per chunk even on test graphs
  // LLC modeling feeds *real* buffer addresses through the cache simulator,
  // which vary run to run with the allocator; instruction counts are the
  // address-independent determinism witness compared below.
  config.model_llc = false;
  grid::StreamEngine engine(store, platform, config);
  std::unique_ptr<algos::StreamingAlgorithm> algorithm = algos::make_algorithm(spec);
  if (path == Path::kBlockFallback) {
    algorithm = std::make_unique<ScalarFallback>(std::move(algorithm));
  }
  grid::DefaultLoader loader(store, platform);
  EngineRun run;
  run.stats = engine.run_job(0, *algorithm, loader);
  run.result = algorithm->result();
  run.instructions = platform.instructions(0);
  return run;
}

class BlockVsScalar : public ::testing::TestWithParam<algos::AlgorithmKind> {};

TEST_P(BlockVsScalar, BlockPathMatchesScalarOracleAtAnyThreadCount) {
  const auto g = test::small_rmat(700, 9000, 3);
  const grid::GridStore store = test::make_grid(g, 4);
  algos::JobSpec spec;
  spec.kind = GetParam();
  spec.damping = 0.85;
  spec.max_iterations = 6;
  spec.root = 1;

  // The oracle: the legacy per-edge loop (one virtual call + one atomic bit
  // test per edge), single-threaded — the seed's exact hot path.
  const EngineRun oracle = run_single(store, spec, Path::kLegacyScalar, 1);
  ASSERT_GT(oracle.stats.edges_processed, 0u);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const Path path : {Path::kBlocks, Path::kBlockFallback}) {
      const EngineRun run = run_single(store, spec, path, threads);
      const char* label = path == Path::kBlocks ? "override" : "fallback";
      ASSERT_EQ(oracle.result, run.result)
          << label << " result not bit-identical at " << threads << " threads";
      EXPECT_EQ(oracle.stats.edges_processed, run.stats.edges_processed)
          << label << " at " << threads << " threads";
      EXPECT_EQ(oracle.stats.edges_streamed, run.stats.edges_streamed);
      EXPECT_EQ(oracle.stats.iterations, run.stats.iterations);
      // Simulated metrics must be deterministic: instruction counts derive
      // from per-chunk active-edge totals and are issued in canonical chunk
      // order regardless of how the blocks were fanned out.
      EXPECT_EQ(oracle.instructions, run.instructions)
          << label << " at " << threads << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, BlockVsScalar,
                         ::testing::Values(algos::AlgorithmKind::kPageRank,
                                           algos::AlgorithmKind::kWcc,
                                           algos::AlgorithmKind::kBfs,
                                           algos::AlgorithmKind::kSssp),
                         [](const auto& info) { return algos::to_string(info.param); });

TEST(BlockVsScalar, EngineAgreesWithEngineFreeStreamingOracle) {
  // reference::run_streaming drives the same algorithms per-edge over the raw
  // edge list — no engine, no grid, no blocks. Exact for the order-independent
  // algorithms; PageRank's engine runs group contributions per partition
  // (striped-accumulation contract) while the engine-free oracle folds flat,
  // a different rounding shape — hence the (tiny) tolerance here. Cross-
  // scheme and cross-thread-count comparisons are exact; see
  // PageRankBitIdentical below.
  const auto g = test::small_rmat(500, 6000, 11);
  const grid::GridStore store = test::make_grid(g, 4);
  for (const auto kind : {algos::AlgorithmKind::kWcc, algos::AlgorithmKind::kBfs,
                          algos::AlgorithmKind::kSssp, algos::AlgorithmKind::kPageRank}) {
    algos::JobSpec spec;
    spec.kind = kind;
    spec.max_iterations = 8;
    spec.root = 2;
    auto algorithm = algos::make_algorithm(spec);
    const auto expected = algos::reference::run_streaming(g, *algorithm);
    const auto run = run_single(store, spec, Path::kBlocks, 2);
    ASSERT_EQ(expected.size(), run.result.size());
    const double tolerance = kind == algos::AlgorithmKind::kPageRank ? 1e-12 : 0.0;
    for (std::size_t v = 0; v < expected.size(); ++v) {
      ASSERT_NEAR(expected[v], run.result[v], tolerance)
          << algos::to_string(kind) << " vertex " << v;
    }
  }
}

TEST(BlockVsScalar, SortedRunJumpMatchesScalarOnSparseFrontiers) {
  // Word-granular run skipping: on a single-partition grid the engine's
  // partition run index is fully src-sorted, so sparse iterations take the
  // next_set_in_range + binary-search jump path. BFS/SSSP frontiers go from
  // one vertex through a wave to a sparse tail — every segmentation edge
  // case (jump over long inactive stretches, short-gap absorption, trailing
  // segment) against the seed's per-edge scalar oracle.
  const auto g = test::small_rmat(4096, 20000, 13);  // sparse: long inactive gaps
  for (const std::uint32_t partitions : {1u, 4u}) {
    const grid::GridStore store = test::make_grid(g, partitions);
    for (const auto kind : {algos::AlgorithmKind::kBfs, algos::AlgorithmKind::kSssp}) {
      algos::JobSpec spec;
      spec.kind = kind;
      spec.root = 17;
      const EngineRun oracle = run_single(store, spec, Path::kLegacyScalar, 1);
      const EngineRun run = run_single(store, spec, Path::kBlocks, 1);
      ASSERT_EQ(oracle.result, run.result)
          << algos::to_string(kind) << " P=" << partitions;
      EXPECT_EQ(oracle.stats.edges_processed, run.stats.edges_processed)
          << algos::to_string(kind) << " P=" << partitions;
      EXPECT_EQ(oracle.stats.iterations, run.stats.iterations);
      EXPECT_EQ(oracle.instructions, run.instructions);
    }
  }
}

// ---------------------------------------------------------------------------
// PageRank bit-identity: raw values_span() bytes (memcmp, not ASSERT_NEAR)
// must agree across stream-thread counts {1, 2, 8}, across the -S/-C/-M
// loader schemes, and across adversarially permuted partition visit orders —
// the striped-accumulation guarantee.
// ---------------------------------------------------------------------------

/// DefaultLoader-alike that serves a job's active partitions in a seeded
/// permutation that changes every iteration — the adversarial stand-in for
/// the sharing scheduler reordering loads and mid-round attaches rotating a
/// job's traversal.
class PermutedLoader final : public grid::PartitionLoader {
 public:
  PermutedLoader(const storage::PartitionedStore& store, sim::Platform& platform,
                 std::uint64_t seed)
      : store_(store), platform_(platform), rng_(seed) {}

  void register_iteration(std::uint32_t /*job_id*/,
                          const std::vector<std::uint32_t>& active_partitions) override {
    pending_.assign(active_partitions.begin(), active_partitions.end());
    for (std::size_t i = pending_.size(); i > 1; --i) {
      std::swap(pending_[i - 1], pending_[rng_.next_below(i)]);
    }
  }

  std::optional<grid::PartitionView> acquire_next(std::uint32_t job_id) override {
    if (pending_.empty()) return std::nullopt;
    const std::uint32_t pid = pending_.back();
    pending_.pop_back();
    store_.read_partition(pid, buffer_, platform_, job_id);
    grid::PartitionView view;
    view.pid = pid;
    const auto [vb, ve] = store_.meta().vertex_range(pid);
    view.vertex_begin = vb;
    view.vertex_end = ve;
    grid::ChunkSpan span;
    span.edges = buffer_.data();
    span.edge_count = buffer_.size();
    span.llc_base = reinterpret_cast<std::uint64_t>(buffer_.data());
    view.chunks.push_back(span);
    return view;
  }

  void release(std::uint32_t /*job_id*/, std::uint32_t /*pid*/) override {}

 private:
  const storage::PartitionedStore& store_;
  sim::Platform& platform_;
  util::SplitMix64 rng_;
  std::vector<std::uint32_t> pending_;
  std::vector<graph::Edge> buffer_;
};

enum class LoaderKind { kDefault, kPermuted, kShared };

/// Runs `num_jobs` copies of `spec` on one engine and returns each job's raw
/// values_span() bytes, captured straight off the algorithm instance.
std::vector<std::vector<unsigned char>> run_value_bytes(const grid::GridStore& store,
                                                        const algos::JobSpec& spec,
                                                        std::size_t num_jobs,
                                                        std::size_t threads,
                                                        LoaderKind kind) {
  sim::Platform platform;
  grid::StreamConfig config;
  config.num_stream_threads = threads;
  config.block_edges = 512;
  config.model_llc = false;
  grid::StreamEngine engine(store, platform, config);
  std::unique_ptr<core::GraphM> graphm;
  if (kind == LoaderKind::kShared) {
    graphm = std::make_unique<core::GraphM>(store, platform);
    graphm->init();
  }
  std::vector<std::unique_ptr<algos::StreamingAlgorithm>> algorithms;
  std::vector<std::unique_ptr<grid::PartitionLoader>> loaders;
  for (std::uint32_t j = 0; j < num_jobs; ++j) {
    algorithms.push_back(algos::make_algorithm(spec));
    switch (kind) {
      case LoaderKind::kDefault:
        loaders.push_back(std::make_unique<grid::DefaultLoader>(store, platform));
        break;
      case LoaderKind::kPermuted:
        loaders.push_back(std::make_unique<PermutedLoader>(store, platform, 1000 + j));
        break;
      case LoaderKind::kShared:
        loaders.push_back(graphm->make_loader(j));
        break;
    }
  }
  std::vector<std::thread> workers;
  for (std::uint32_t j = 0; j < num_jobs; ++j) {
    workers.emplace_back([&, j] { engine.run_job(j, *algorithms[j], *loaders[j]); });
  }
  for (auto& t : workers) t.join();
  std::vector<std::vector<unsigned char>> bytes;
  for (const auto& algorithm : algorithms) {
    const auto [ptr, len] = algorithm->values_span();
    const auto* p = static_cast<const unsigned char*>(ptr);
    bytes.emplace_back(p, p + len);
  }
  return bytes;
}

TEST(PageRankBitIdentical, AcrossThreadCountsSchemesAndPartitionOrder) {
  const auto g = test::small_rmat(700, 9000, 7);
  const grid::GridStore store = test::make_grid(g, 4);
  algos::JobSpec spec;
  spec.kind = algos::AlgorithmKind::kPageRank;
  spec.damping = 0.85;
  spec.max_iterations = 6;

  // The reference bytes: solo job, ascending partition order, one thread.
  const auto baseline = run_value_bytes(store, spec, 1, 1, LoaderKind::kDefault).front();
  ASSERT_FALSE(baseline.empty());

  const auto expect_bytes = [&](const std::vector<std::vector<unsigned char>>& runs,
                                const char* label, std::size_t threads) {
    for (std::size_t j = 0; j < runs.size(); ++j) {
      ASSERT_EQ(baseline.size(), runs[j].size()) << label << " job " << j;
      EXPECT_EQ(0, std::memcmp(baseline.data(), runs[j].data(), baseline.size()))
          << label << " job " << j << " at " << threads
          << " stream threads: values_span bytes differ";
    }
  };

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    // -S: one job, private loader, ascending order.
    expect_bytes(run_value_bytes(store, spec, 1, threads, LoaderKind::kDefault),
                 "sequential", threads);
    // -C: three concurrent jobs with private loaders sharing the engine pool.
    expect_bytes(run_value_bytes(store, spec, 3, threads, LoaderKind::kDefault),
                 "concurrent", threads);
    // -M: three concurrent jobs through the GraphM sharing controller (its
    // scheduler chooses the loading order).
    expect_bytes(run_value_bytes(store, spec, 3, threads, LoaderKind::kShared),
                 "shared", threads);
    // Adversarial: partitions served in a per-iteration seeded permutation.
    expect_bytes(run_value_bytes(store, spec, 2, threads, LoaderKind::kPermuted),
                 "permuted", threads);
  }
}

TEST(SchemeEquivalence, StaggeredArrivalsDoNotChangeResults) {
  const auto g = test::small_rmat(400, 5000, 9);
  const grid::GridStore store = test::make_grid(g, 4);
  const auto jobs = paper_mix(6, g.num_vertices(), 13);

  ExecutorConfig config;
  config.record_results = true;
  const auto s = run_jobs(Scheme::kSequential, store, jobs, config);

  ExecutorConfig staggered = config;
  staggered.arrival_offsets_ns.assign(jobs.size(), 0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    staggered.arrival_offsets_ns[j] = j * 2'000'000;  // 2 ms apart
  }
  const auto m = run_jobs(Scheme::kShared, store, jobs, staggered);
  expect_same_results(s, m);
}

}  // namespace
}  // namespace graphm::runtime
