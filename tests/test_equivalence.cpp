// The central correctness property of a concurrent-job *storage* system:
// executing the same job set sequentially (-S), concurrently with private
// copies (-C) or concurrently through GraphM (-M) must not change any job's
// answer — GraphM reorders partition loads and interleaves jobs, but results
// stay the same (Section 4: "loading the partitions in different orders does
// not influence the correctness of the final results").
#include <gtest/gtest.h>

#include "runtime/executor.hpp"
#include "runtime/workloads.hpp"
#include "test_helpers.hpp"

namespace graphm::runtime {
namespace {

void expect_same_results(const RunMetrics& a, const RunMetrics& b, double tolerance) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    const auto& ra = a.jobs[j].result;
    const auto& rb = b.jobs[j].result;
    ASSERT_EQ(ra.size(), rb.size()) << a.scheme << " vs " << b.scheme << " job " << j;
    for (std::size_t v = 0; v < ra.size(); ++v) {
      ASSERT_NEAR(ra[v], rb[v], tolerance)
          << a.scheme << " vs " << b.scheme << " job " << j << " ("
          << a.jobs[j].spec.label() << ") vertex " << v;
    }
  }
}

struct Params {
  std::size_t num_jobs;
  std::uint32_t partitions;
  bool scheduling;
  bool fine_sync;
};

class SchemeEquivalence : public ::testing::TestWithParam<Params> {};

TEST_P(SchemeEquivalence, AllSchemesAgree) {
  const Params p = GetParam();
  const auto g = test::small_rmat(600, 8000, 21);
  const grid::GridStore store = test::make_grid(g, p.partitions);
  const auto jobs = paper_mix(p.num_jobs, g.num_vertices(), 77);

  ExecutorConfig config;
  config.record_results = true;
  config.graphm.use_scheduling = p.scheduling;
  config.graphm.fine_grained_sync = p.fine_sync;

  const auto s = run_jobs(Scheme::kSequential, store, jobs, config);
  const auto c = run_jobs(Scheme::kConcurrent, store, jobs, config);
  const auto m = run_jobs(Scheme::kShared, store, jobs, config);

  // Integer-valued algorithms (WCC/BFS) and min-based SSSP are exact;
  // PageRank sums in a fixed per-iteration order, so 1e-9 is generous.
  expect_same_results(s, c, 1e-9);
  expect_same_results(s, m, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchemeEquivalence,
    ::testing::Values(Params{1, 4, true, true}, Params{4, 4, true, true},
                      Params{4, 4, false, true}, Params{4, 4, true, false},
                      Params{8, 2, true, true}, Params{8, 8, true, true},
                      Params{6, 1, true, true}));

TEST(SchemeEquivalence, SharedModeWithManyIdenticalJobs) {
  // All jobs identical: maximal sharing; results must still be identical to a
  // solo sequential run.
  const auto g = test::small_rmat(400, 5000, 5);
  const grid::GridStore store = test::make_grid(g, 4);
  const auto jobs = uniform_mix(algos::AlgorithmKind::kSssp, 8, g.num_vertices(), 3);

  ExecutorConfig config;
  config.record_results = true;
  const auto s = run_jobs(Scheme::kSequential, store, jobs, config);
  const auto m = run_jobs(Scheme::kShared, store, jobs, config);
  expect_same_results(s, m, 0.0);
}

TEST(SchemeEquivalence, StaggeredArrivalsDoNotChangeResults) {
  const auto g = test::small_rmat(400, 5000, 9);
  const grid::GridStore store = test::make_grid(g, 4);
  const auto jobs = paper_mix(6, g.num_vertices(), 13);

  ExecutorConfig config;
  config.record_results = true;
  const auto s = run_jobs(Scheme::kSequential, store, jobs, config);

  ExecutorConfig staggered = config;
  staggered.arrival_offsets_ns.assign(jobs.size(), 0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    staggered.arrival_offsets_ns[j] = j * 2'000'000;  // 2 ms apart
  }
  const auto m = run_jobs(Scheme::kShared, store, jobs, staggered);
  expect_same_results(s, m, 1e-9);
}

}  // namespace
}  // namespace graphm::runtime
