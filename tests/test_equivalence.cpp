// The central correctness property of a concurrent-job *storage* system:
// executing the same job set sequentially (-S), concurrently with private
// copies (-C) or concurrently through GraphM (-M) must not change any job's
// answer — GraphM reorders partition loads and interleaves jobs, but results
// stay the same (Section 4: "loading the partitions in different orders does
// not influence the correctness of the final results").
#include <gtest/gtest.h>

#include "algos/reference.hpp"
#include "runtime/executor.hpp"
#include "runtime/workloads.hpp"
#include "test_helpers.hpp"

namespace graphm::runtime {
namespace {

void expect_same_results(const RunMetrics& a, const RunMetrics& b, double tolerance) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    const auto& ra = a.jobs[j].result;
    const auto& rb = b.jobs[j].result;
    ASSERT_EQ(ra.size(), rb.size()) << a.scheme << " vs " << b.scheme << " job " << j;
    for (std::size_t v = 0; v < ra.size(); ++v) {
      ASSERT_NEAR(ra[v], rb[v], tolerance)
          << a.scheme << " vs " << b.scheme << " job " << j << " ("
          << a.jobs[j].spec.label() << ") vertex " << v;
    }
  }
}

struct Params {
  std::size_t num_jobs;
  std::uint32_t partitions;
  bool scheduling;
  bool fine_sync;
};

class SchemeEquivalence : public ::testing::TestWithParam<Params> {};

TEST_P(SchemeEquivalence, AllSchemesAgree) {
  const Params p = GetParam();
  const auto g = test::small_rmat(600, 8000, 21);
  const grid::GridStore store = test::make_grid(g, p.partitions);
  const auto jobs = paper_mix(p.num_jobs, g.num_vertices(), 77);

  ExecutorConfig config;
  config.record_results = true;
  config.graphm.use_scheduling = p.scheduling;
  config.graphm.fine_grained_sync = p.fine_sync;

  const auto s = run_jobs(Scheme::kSequential, store, jobs, config);
  const auto c = run_jobs(Scheme::kConcurrent, store, jobs, config);
  const auto m = run_jobs(Scheme::kShared, store, jobs, config);

  // Integer-valued algorithms (WCC/BFS) and min-based SSSP are exact;
  // PageRank sums in a fixed per-iteration order, so 1e-9 is generous.
  expect_same_results(s, c, 1e-9);
  expect_same_results(s, m, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchemeEquivalence,
    ::testing::Values(Params{1, 4, true, true}, Params{4, 4, true, true},
                      Params{4, 4, false, true}, Params{4, 4, true, false},
                      Params{8, 2, true, true}, Params{8, 8, true, true},
                      Params{6, 1, true, true}));

TEST(SchemeEquivalence, SharedModeWithManyIdenticalJobs) {
  // All jobs identical: maximal sharing; results must still be identical to a
  // solo sequential run.
  const auto g = test::small_rmat(400, 5000, 5);
  const grid::GridStore store = test::make_grid(g, 4);
  const auto jobs = uniform_mix(algos::AlgorithmKind::kSssp, 8, g.num_vertices(), 3);

  ExecutorConfig config;
  config.record_results = true;
  const auto s = run_jobs(Scheme::kSequential, store, jobs, config);
  const auto m = run_jobs(Scheme::kShared, store, jobs, config);
  expect_same_results(s, m, 0.0);
}

// ---------------------------------------------------------------------------
// Block-vs-scalar oracle: every algorithm's process_edge_block override must
// be observably identical to the per-edge fallback — bit-identical result(),
// identical edges_processed — and the engine's simulated metrics must be
// deterministic at any worker-thread count (1/2/8).
// ---------------------------------------------------------------------------

/// Forwards everything except process_edge_block, so the engine exercises the
/// base-class scalar fallback (which loops the wrapped algorithm's
/// process_edge) instead of the algorithm's devirtualized override.
class ScalarFallback final : public algos::StreamingAlgorithm {
 public:
  explicit ScalarFallback(std::unique_ptr<algos::StreamingAlgorithm> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override { return inner_->name() + "-fallback"; }
  void init(graph::VertexId n, const std::vector<std::uint32_t>& degrees,
            sim::MemoryTracker* tracker) override {
    inner_->init(n, degrees, tracker);
  }
  void iteration_start(std::uint64_t iteration) override { inner_->iteration_start(iteration); }
  [[nodiscard]] const util::AtomicBitmap& active_vertices() const override {
    return inner_->active_vertices();
  }
  void process_edge(const graph::Edge& e) override { inner_->process_edge(e); }
  [[nodiscard]] bool parallel_safe() const override { return inner_->parallel_safe(); }
  void iteration_end() override { inner_->iteration_end(); }
  [[nodiscard]] bool done() const override { return inner_->done(); }
  [[nodiscard]] std::pair<const void*, std::size_t> values_span() const override {
    return inner_->values_span();
  }
  [[nodiscard]] std::vector<double> result() const override { return inner_->result(); }

 private:
  std::unique_ptr<algos::StreamingAlgorithm> inner_;
};

struct EngineRun {
  std::vector<double> result;
  grid::JobRunStats stats;
  std::uint64_t instructions = 0;
};

enum class Path { kLegacyScalar, kBlocks, kBlockFallback };

EngineRun run_single(const grid::GridStore& store, const algos::JobSpec& spec, Path path,
                     std::size_t threads) {
  sim::Platform platform;
  grid::StreamConfig config;
  config.use_blocks = path != Path::kLegacyScalar;
  config.num_stream_threads = threads;
  config.block_edges = 512;  // small blocks: several per chunk even on test graphs
  // LLC modeling feeds *real* buffer addresses through the cache simulator,
  // which vary run to run with the allocator; instruction counts are the
  // address-independent determinism witness compared below.
  config.model_llc = false;
  grid::StreamEngine engine(store, platform, config);
  std::unique_ptr<algos::StreamingAlgorithm> algorithm = algos::make_algorithm(spec);
  if (path == Path::kBlockFallback) {
    algorithm = std::make_unique<ScalarFallback>(std::move(algorithm));
  }
  grid::DefaultLoader loader(store, platform);
  EngineRun run;
  run.stats = engine.run_job(0, *algorithm, loader);
  run.result = algorithm->result();
  run.instructions = platform.instructions(0);
  return run;
}

class BlockVsScalar : public ::testing::TestWithParam<algos::AlgorithmKind> {};

TEST_P(BlockVsScalar, BlockPathMatchesScalarOracleAtAnyThreadCount) {
  const auto g = test::small_rmat(700, 9000, 3);
  const grid::GridStore store = test::make_grid(g, 4);
  algos::JobSpec spec;
  spec.kind = GetParam();
  spec.damping = 0.85;
  spec.max_iterations = 6;
  spec.root = 1;

  // The oracle: the legacy per-edge loop (one virtual call + one atomic bit
  // test per edge), single-threaded — the seed's exact hot path.
  const EngineRun oracle = run_single(store, spec, Path::kLegacyScalar, 1);
  ASSERT_GT(oracle.stats.edges_processed, 0u);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const Path path : {Path::kBlocks, Path::kBlockFallback}) {
      const EngineRun run = run_single(store, spec, path, threads);
      const char* label = path == Path::kBlocks ? "override" : "fallback";
      ASSERT_EQ(oracle.result, run.result)
          << label << " result not bit-identical at " << threads << " threads";
      EXPECT_EQ(oracle.stats.edges_processed, run.stats.edges_processed)
          << label << " at " << threads << " threads";
      EXPECT_EQ(oracle.stats.edges_streamed, run.stats.edges_streamed);
      EXPECT_EQ(oracle.stats.iterations, run.stats.iterations);
      // Simulated metrics must be deterministic: instruction counts derive
      // from per-chunk active-edge totals and are issued in canonical chunk
      // order regardless of how the blocks were fanned out.
      EXPECT_EQ(oracle.instructions, run.instructions)
          << label << " at " << threads << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, BlockVsScalar,
                         ::testing::Values(algos::AlgorithmKind::kPageRank,
                                           algos::AlgorithmKind::kWcc,
                                           algos::AlgorithmKind::kBfs,
                                           algos::AlgorithmKind::kSssp),
                         [](const auto& info) { return algos::to_string(info.param); });

TEST(BlockVsScalar, EngineAgreesWithEngineFreeStreamingOracle) {
  // reference::run_streaming drives the same algorithms per-edge over the raw
  // edge list — no engine, no grid, no blocks. Exact for the order-independent
  // algorithms; PageRank sums in a different edge order, hence the tolerance.
  const auto g = test::small_rmat(500, 6000, 11);
  const grid::GridStore store = test::make_grid(g, 4);
  for (const auto kind : {algos::AlgorithmKind::kWcc, algos::AlgorithmKind::kBfs,
                          algos::AlgorithmKind::kSssp, algos::AlgorithmKind::kPageRank}) {
    algos::JobSpec spec;
    spec.kind = kind;
    spec.max_iterations = 8;
    spec.root = 2;
    auto algorithm = algos::make_algorithm(spec);
    const auto expected = algos::reference::run_streaming(g, *algorithm);
    const auto run = run_single(store, spec, Path::kBlocks, 2);
    ASSERT_EQ(expected.size(), run.result.size());
    const double tolerance = kind == algos::AlgorithmKind::kPageRank ? 1e-12 : 0.0;
    for (std::size_t v = 0; v < expected.size(); ++v) {
      ASSERT_NEAR(expected[v], run.result[v], tolerance)
          << algos::to_string(kind) << " vertex " << v;
    }
  }
}

TEST(BlockVsScalar, SortedRunJumpMatchesScalarOnSparseFrontiers) {
  // Word-granular run skipping: on a single-partition grid the engine's
  // partition run index is fully src-sorted, so sparse iterations take the
  // next_set_in_range + binary-search jump path. BFS/SSSP frontiers go from
  // one vertex through a wave to a sparse tail — every segmentation edge
  // case (jump over long inactive stretches, short-gap absorption, trailing
  // segment) against the seed's per-edge scalar oracle.
  const auto g = test::small_rmat(4096, 20000, 13);  // sparse: long inactive gaps
  for (const std::uint32_t partitions : {1u, 4u}) {
    const grid::GridStore store = test::make_grid(g, partitions);
    for (const auto kind : {algos::AlgorithmKind::kBfs, algos::AlgorithmKind::kSssp}) {
      algos::JobSpec spec;
      spec.kind = kind;
      spec.root = 17;
      const EngineRun oracle = run_single(store, spec, Path::kLegacyScalar, 1);
      const EngineRun run = run_single(store, spec, Path::kBlocks, 1);
      ASSERT_EQ(oracle.result, run.result)
          << algos::to_string(kind) << " P=" << partitions;
      EXPECT_EQ(oracle.stats.edges_processed, run.stats.edges_processed)
          << algos::to_string(kind) << " P=" << partitions;
      EXPECT_EQ(oracle.stats.iterations, run.stats.iterations);
      EXPECT_EQ(oracle.instructions, run.instructions);
    }
  }
}

TEST(SchemeEquivalence, StaggeredArrivalsDoNotChangeResults) {
  const auto g = test::small_rmat(400, 5000, 9);
  const grid::GridStore store = test::make_grid(g, 4);
  const auto jobs = paper_mix(6, g.num_vertices(), 13);

  ExecutorConfig config;
  config.record_results = true;
  const auto s = run_jobs(Scheme::kSequential, store, jobs, config);

  ExecutorConfig staggered = config;
  staggered.arrival_offsets_ns.assign(jobs.size(), 0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    staggered.arrival_offsets_ns[j] = j * 2'000'000;  // 2 ms apart
  }
  const auto m = run_jobs(Scheme::kShared, store, jobs, staggered);
  expect_same_results(s, m, 1e-9);
}

}  // namespace
}  // namespace graphm::runtime
