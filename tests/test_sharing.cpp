#include <gtest/gtest.h>

#include <thread>

#include "graphm/graphm.hpp"
#include "grid/stream_engine.hpp"
#include "algos/factory.hpp"
#include "algos/pagerank.hpp"
#include "algos/bfs.hpp"
#include "test_helpers.hpp"

namespace graphm::core {
namespace {

struct Fixture {
  graph::EdgeList g = test::small_rmat(512, 6000);
  grid::GridStore store = test::make_grid(g, 4);
  sim::Platform platform;
  GraphM graphm{store, platform};
  Fixture() { graphm.init(); }
};

TEST(GraphMInit, BuildsTablesForEveryPartition) {
  Fixture f;
  ASSERT_EQ(f.graphm.chunk_tables().size(), 4u);
  graph::EdgeCount total = 0;
  for (const auto& table : f.graphm.chunk_tables()) total += table.total_edges();
  EXPECT_EQ(total, f.g.num_edges());
  EXPECT_GT(f.graphm.metadata_bytes(), 0u);
  EXPECT_GT(f.graphm.chunk_bytes(), 0u);
}

TEST(GraphMInit, MetadataTrackedInMemoryTracker) {
  Fixture f;
  EXPECT_EQ(f.platform.memory().current(sim::MemoryCategory::kChunkTables),
            f.graphm.metadata_bytes());
}

TEST(GraphMInit, MakeLoaderBeforeInitThrows) {
  const auto g = test::small_rmat(64, 500);
  const grid::GridStore store = test::make_grid(g, 2);
  sim::Platform platform;
  GraphM graphm(store, platform);
  EXPECT_THROW(graphm.make_loader(0), std::logic_error);
}

TEST(SharingController, SingleJobDrainsItsNeeds) {
  Fixture f;
  auto loader = f.graphm.make_loader(0);
  loader->register_iteration(0, {0, 2, 3});
  std::vector<std::uint32_t> seen;
  while (auto view = loader->acquire_next(0)) {
    seen.push_back(view->pid);
    EXPECT_GT(view->chunks.size(), 0u);
    // Walk the chunk barrier protocol exactly as the engine does.
    for (const auto& span : view->chunks) {
      loader->begin_chunk(0, view->pid, span.chunk_id);
      loader->end_chunk(0, view->pid, span.chunk_id, 0, span.edge_count, 10);
    }
    loader->release(0, view->pid);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 2, 3}));
  loader->job_finished(0);
  EXPECT_EQ(f.graphm.controller().live_jobs(), 0u);
}

TEST(SharingController, ViewsTileThePartition) {
  Fixture f;
  auto loader = f.graphm.make_loader(0);
  loader->register_iteration(0, {1});
  auto view = loader->acquire_next(0);
  ASSERT_TRUE(view.has_value());
  sim::Platform scratch;
  std::vector<graph::Edge> direct;
  f.store.read_partition(1, direct, scratch, 0);
  graph::EdgeCount cursor = 0;
  for (const auto& span : view->chunks) {
    for (graph::EdgeCount i = 0; i < span.edge_count; ++i) {
      ASSERT_LT(cursor, direct.size());
      EXPECT_EQ(span.edges[i], direct[cursor]) << "shared view must expose the disk bytes";
      ++cursor;
    }
  }
  EXPECT_EQ(cursor, direct.size());
  loader->release(0, 1);
  loader->job_finished(0);
}

TEST(SharingController, TwoJobsShareOneLoad) {
  Fixture f;
  // Two PageRank jobs running concurrently through GraphM: every partition
  // must be Load()ed once and Attach()ed once per additional job.
  const grid::StreamEngine engine(f.store, f.platform);
  algos::PageRank pr0(0.85, 3);
  algos::PageRank pr1(0.5, 3);
  auto l0 = f.graphm.make_loader(0);
  auto l1 = f.graphm.make_loader(1);
  std::thread t0([&] { engine.run_job(0, pr0, *l0); });
  std::thread t1([&] { engine.run_job(1, pr1, *l1); });
  t0.join();
  t1.join();

  const auto stats = f.graphm.controller().stats();
  // 3 iterations x 4 partitions = 12 rounds; each loaded once...
  EXPECT_EQ(stats.partition_loads, 12u);
  // ...and attached by the second job.
  EXPECT_EQ(stats.attaches, 12u);
  EXPECT_GT(stats.chunk_barriers, 0u);
}

TEST(SharingController, SharedBufferHitsSameSimulatedLines) {
  Fixture f;
  const grid::StreamEngine engine(f.store, f.platform);

  // First: one job alone.
  {
    algos::PageRank pr(0.85, 1);
    auto loader = f.graphm.make_loader(0);
    engine.run_job(0, pr, *loader);
  }
  const auto solo_swapped = f.platform.llc().total_stats().bytes_swapped_in;

  f.platform.llc().reset();
  // Then: two jobs sharing. The second job's accesses land on the same
  // buffer, so total bytes swapped into the LLC should be far less than 2x.
  {
    algos::PageRank pr0(0.85, 1);
    algos::PageRank pr1(0.85, 1);
    auto l0 = f.graphm.make_loader(10);
    auto l1 = f.graphm.make_loader(11);
    std::thread t0([&] { engine.run_job(10, pr0, *l0); });
    std::thread t1([&] { engine.run_job(11, pr1, *l1); });
    t0.join();
    t1.join();
  }
  const auto shared_swapped = f.platform.llc().total_stats().bytes_swapped_in;
  EXPECT_LT(shared_swapped, solo_swapped * 2)
      << "sharing must not double the LLC traffic the way -C does";
}

TEST(SharingController, SuspensionHappensWhenNeedsDiverge) {
  Fixture f;
  const grid::StreamEngine engine(f.store, f.platform);
  // A BFS job (few active partitions) and a PageRank job (all partitions):
  // the BFS job must be suspended while partitions it does not need are
  // served.
  algos::PageRank pr(0.85, 4);
  algos::Bfs bfs(0);
  auto l0 = f.graphm.make_loader(0);
  auto l1 = f.graphm.make_loader(1);
  std::thread t0([&] { engine.run_job(0, pr, *l0); });
  std::thread t1([&] { engine.run_job(1, bfs, *l1); });
  t0.join();
  t1.join();
  EXPECT_GT(f.graphm.controller().stats().suspensions, 0u);
}

TEST(SharingController, ManyJobsProduceCorrectResults) {
  // Stress the barrier/suspend logic with 6 mixed jobs.
  Fixture f;
  const grid::StreamEngine engine(f.store, f.platform);
  std::vector<std::unique_ptr<algos::StreamingAlgorithm>> algorithms;
  std::vector<std::unique_ptr<grid::PartitionLoader>> loaders;
  for (std::uint32_t j = 0; j < 6; ++j) {
    algorithms.push_back(algos::make_algorithm(
        algos::random_job_spec(j, f.g.num_vertices(), 99)));
    loaders.push_back(f.graphm.make_loader(j));
  }
  std::vector<std::thread> threads;
  for (std::uint32_t j = 0; j < 6; ++j) {
    threads.emplace_back([&, j] { engine.run_job(j, *algorithms[j], *loaders[j]); });
  }
  for (auto& t : threads) t.join();
  // Each result must match a solo run of the same spec.
  for (std::uint32_t j = 0; j < 6; ++j) {
    auto solo = algos::make_algorithm(algos::random_job_spec(j, f.g.num_vertices(), 99));
    sim::Platform platform;
    const grid::StreamEngine solo_engine(f.store, platform);
    grid::DefaultLoader loader(f.store, platform);
    solo_engine.run_job(0, *solo, loader);
    const auto a = algorithms[j]->result();
    const auto b = solo->result();
    // Bit-identical for every kind, PageRank included: the sharing
    // controller may reorder partition loads, but striped accumulation
    // makes the summation shape order-independent.
    ASSERT_EQ(a, b) << "job " << j;
  }
}

}  // namespace
}  // namespace graphm::core
