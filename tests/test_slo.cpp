// Closed-loop SLO monitoring contracts (src/obs/window.*, src/obs/slo.*,
// and the admission layers that act on the signal):
// (1) windowed histograms — rotation matches a flat oracle over the retained
// samples, quantiles stay within one bucket width across window boundaries,
// old samples drop (counted) instead of smearing, and concurrent recorders
// merge exactly (the TSan suite runs the WindowedHistogram* tests);
// (2) burn-rate math — good/bad accounting, capacity scaling, and the
// hysteretic tri-state machine that cannot flap at the threshold;
// (3) the closed loop — SLO *tracking* alone leaves the golden fault-free
// cluster trace bit-identical (pinned FNV hash), kAdaptive sheds exactly the
// lowest-priority work while Critical, shed decisions replay bit-identically,
// and conservation holds with kSloShed in the outcome set.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "cluster/cluster_service.hpp"
#include "cluster/faults.hpp"
#include "obs/slo.hpp"
#include "obs/window.hpp"
#include "runtime/workloads.hpp"
#include "service/job_service.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace graphm::obs {
namespace {

// ---------------------------------------------------------------------------
// WindowedHistogram: rotation vs a flat oracle
// ---------------------------------------------------------------------------

TEST(WindowedHistogram, SubSpanRoundsUpAndNeverZero) {
  const WindowedHistogram w(100, 6);  // 100 / 6 rounds up to 17
  EXPECT_EQ(w.sub_span_ns(), 17u);
  EXPECT_EQ(w.sub_windows(), 6u);
  EXPECT_EQ(w.span_ns(), 17u * 6);
  const WindowedHistogram tiny(0, 0);  // degenerate inputs clamp to 1x1
  EXPECT_EQ(tiny.sub_span_ns(), 1u);
  EXPECT_EQ(tiny.sub_windows(), 1u);
}

TEST(WindowedHistogram, FullMergeMatchesFlatOracleWhileNothingExpires) {
  WindowedHistogram w(/*span_ns=*/1000, /*sub_windows=*/4);  // 250ns slots
  Histogram oracle;
  util::SplitMix64 rng(42);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t t = rng.next() % 1000;  // all within one window span
    const std::uint64_t v = rng.next() % 100000;
    w.record(t, v);
    oracle.record(v);
  }
  Histogram merged;
  w.merged(/*now_ns=*/999, w.sub_windows(), merged);
  EXPECT_EQ(merged.count(), oracle.count());
  EXPECT_EQ(merged.sum(), oracle.sum());
  EXPECT_EQ(merged.min(), oracle.min());
  EXPECT_EQ(merged.max(), oracle.max());
  for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    ASSERT_EQ(merged.bucket_count(b), oracle.bucket_count(b)) << "bucket " << b;
  }
  EXPECT_EQ(w.dropped(), 0u);
}

TEST(WindowedHistogram, RotationDropsExactlyTheExpiredSlots) {
  WindowedHistogram w(1000, 4);  // slots [0,250) [250,500) [500,750) [750,1000)
  // One distinctive value per slot.
  w.record(100, 10);    // slot 0
  w.record(300, 20);    // slot 1
  w.record(600, 30);    // slot 2
  w.record(800, 40);    // slot 3
  // Advance one slot: slot 0 (value 10) falls out of the ring.
  Histogram merged;
  w.merged(/*now_ns=*/1100, w.sub_windows(), merged);
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_EQ(merged.min(), 20u);
  EXPECT_EQ(merged.max(), 40u);
  // Advance far: everything expires at once (cap at ring size, no O(elapsed)
  // loop), the window comes back empty.
  Histogram empty;
  w.merged(/*now_ns=*/1'000'000, w.sub_windows(), empty);
  EXPECT_EQ(empty.count(), 0u);
}

TEST(WindowedHistogram, FastWindowSeesOnlyTheCurrentSlot) {
  WindowedHistogram w(1000, 4);
  w.record(100, 10);  // slot 0
  w.record(300, 20);  // slot 1 (current)
  Histogram fast;
  w.merged(/*now_ns=*/300, /*sub_count=*/1, fast);
  EXPECT_EQ(fast.count(), 1u);
  EXPECT_EQ(fast.max(), 20u);
  EXPECT_EQ(w.count(300, 1), 1u);
  EXPECT_EQ(w.count(300, w.sub_windows()), 2u);
}

TEST(WindowedHistogram, QuantileAccurateAcrossWindowBoundaries) {
  // Uniform 1..1000 spread over 8 slots; after rotating past the first two
  // slots the retained samples are still uniform, so p50/p99 of the merge
  // must stay within one bucket width (~3.1% + bucket granularity) of the
  // exact nearest-rank statistic over exactly the retained samples.
  WindowedHistogram w(8000, 8);
  std::vector<std::uint64_t> all;
  util::SplitMix64 rng(7);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t t = rng.next() % 8000;
    const std::uint64_t v = 1 + rng.next() % 1000;
    w.record(t, v);
    all.push_back((t / 1000) * 1'000'000 + v);  // slot-tagged for the oracle
  }
  // Advance two slots: slots 0 and 1 expire.
  const std::uint64_t now = 8000 + 1999;
  std::vector<std::uint64_t> retained;
  for (const std::uint64_t tagged : all) {
    if (tagged / 1'000'000 >= 2) retained.push_back(tagged % 1'000'000);
  }
  ASSERT_FALSE(retained.empty());
  std::sort(retained.begin(), retained.end());
  Histogram merged;
  w.merged(now, w.sub_windows(), merged);
  ASSERT_EQ(merged.count(), retained.size());
  for (const double q : {0.5, 0.95, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        std::max<double>(0.0, q * static_cast<double>(retained.size()) - 1));
    const double exact = static_cast<double>(retained[rank]);
    const double est = merged.quantile(q);
    EXPECT_NEAR(est, exact, exact * 0.05 + 2.0) << "q=" << q;
  }
}

TEST(WindowedHistogram, StaleSamplesDropAndAreCounted) {
  WindowedHistogram w(1000, 4);
  w.record(5000, 1);  // jump forward: current slot = 20
  w.record(100, 99);  // t=100 is slot 0, long expired -> dropped
  EXPECT_EQ(w.dropped(), 1u);
  Histogram merged;
  w.merged(5000, w.sub_windows(), merged);
  EXPECT_EQ(merged.count(), 1u);
  EXPECT_EQ(merged.max(), 1u);
  // A sample in a retained *past* slot still lands (near-monotone tolerance).
  w.record(4800, 7);  // slot 19, one behind current -> retained
  Histogram merged2;
  w.merged(5000, w.sub_windows(), merged2);
  EXPECT_EQ(merged2.count(), 2u);
  EXPECT_EQ(w.dropped(), 1u);
}

// Runs under TSan in CI (gtest_filter includes WindowedHistogram*): many
// writers into one window at fixed timestamps (no rotation) must lose
// nothing — the fast path is a relaxed slot check plus Histogram::record,
// both already data-race-free.
TEST(WindowedHistogramConcurrency, ParallelRecordersLoseNothing) {
  WindowedHistogram w(1'000'000, 4);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&w, t] {
      util::SplitMix64 rng(1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        // Timestamps within the current window span: slots 0..3, no expiry.
        w.record(rng.next() % 1'000'000, 1 + rng.next() % 4096);
      }
    });
  }
  for (auto& th : threads) th.join();
  Histogram merged;
  w.merged(999'999, w.sub_windows(), merged);
  EXPECT_EQ(merged.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(w.dropped(), 0u);
}

TEST(WindowedHistogramConcurrency, RecordersRaceRotationWithoutLosingRetained) {
  // Writers sweep time forward together; every sample lands in the current
  // or previous slot, so none may be dropped and the final ring must hold
  // everything recorded in the last window span.
  WindowedHistogram w(4000, 4);
  constexpr int kThreads = 4;
  std::atomic<std::uint64_t> clock{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        const std::uint64_t now = clock.fetch_add(1, std::memory_order_relaxed);
        w.record(now, 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::uint64_t final_now = clock.load();
  // Everything recorded in the retained window is still there: the sweep
  // advanced by 1ns per sample, so the last span_ns() ticks are retained.
  EXPECT_EQ(w.dropped(), 0u);
  EXPECT_GE(w.count(final_now, w.sub_windows()), w.span_ns() - w.sub_span_ns());
}

// ---------------------------------------------------------------------------
// SloTracker: burn math + hysteresis
// ---------------------------------------------------------------------------

SloSpec test_spec() {
  SloSpec spec;
  spec.name = "e2e";
  spec.target_quantile = 0.99;  // budget: 1% bad
  spec.threshold_ns = 1000;
  spec.window_ns = 6000;
  spec.sub_windows = 6;
  spec.warn_burn = 1.0;
  spec.critical_burn = 2.0;
  spec.reopen_burn = 0.5;
  return spec;
}

TEST(SloTracker, BurnIsBadFractionOverAllowedFraction) {
  SloTracker tracker(test_spec());
  // 96 good + 4 bad = 4% bad over a 1% budget -> burn 4.0 in both windows
  // (all samples in one slot -> fast == slow), comfortably past critical_burn
  // (tests avoid the exact >= boundary, where FP division is one ulp shy).
  for (int i = 0; i < 96; ++i) tracker.record(10, 500);
  for (int i = 0; i < 4; ++i) tracker.record(10, 5000);
  const SloEval eval = tracker.evaluate(10);
  EXPECT_EQ(eval.good, 96u);
  EXPECT_EQ(eval.bad, 4u);
  EXPECT_NEAR(eval.slow_burn, 4.0, 1e-6);
  EXPECT_NEAR(eval.fast_burn, 4.0, 1e-6);
  // Budget: 1% of 100 samples = 1 allowed bad; 4 spent -> clamped to 0.
  EXPECT_NEAR(eval.budget_remaining, 0.0, 1e-9);
  EXPECT_EQ(eval.state, SloState::kCritical);
}

TEST(SloTracker, EmptyWindowIsHealthyWithFullBudget) {
  SloTracker tracker(test_spec());
  const SloEval eval = tracker.evaluate(0);
  EXPECT_EQ(eval.state, SloState::kHealthy);
  EXPECT_NEAR(eval.budget_remaining, 1.0, 1e-9);
  EXPECT_NEAR(eval.fast_burn, 0.0, 1e-9);
}

TEST(SloTracker, ViolationCountsAsBadSample) {
  SloTracker tracker(test_spec());
  for (int i = 0; i < 99; ++i) tracker.record(10, 500);
  tracker.record_violation(10);  // deadline abort: bad by definition
  const SloEval eval = tracker.evaluate(10);
  EXPECT_EQ(eval.bad, 1u);
  EXPECT_NEAR(eval.slow_burn, 1.0, 1e-6);
}

TEST(SloTracker, CapacityScalesBurnSoDegradedClustersTripEarlier) {
  SloTracker tracker(test_spec());
  for (int i = 0; i < 99; ++i) tracker.record(10, 500);
  tracker.record(10, 5000);  // 1% bad: burn 1.0 at full capacity
  EXPECT_NEAR(tracker.evaluate(10).slow_burn, 1.0, 1e-6);
  tracker.set_capacity(0.25);  // 3 of 4 replicas down: every burn quadruples
  EXPECT_NEAR(tracker.evaluate(10).slow_burn, 4.0, 1e-6);
  EXPECT_EQ(tracker.evaluate(10).state, SloState::kCritical)
      << "degraded capacity must trip the detector at unchanged traffic";
}

TEST(SloTracker, FastSpikeAloneIsWarningNotCritical) {
  // Bad samples only in the newest slot: fast burn is huge but the slow
  // window dilutes below critical_burn -> multi-window rule holds at Warning.
  SloSpec spec = test_spec();
  spec.target_quantile = 0.9;  // 10% budget, easier arithmetic
  SloTracker tracker(spec);
  // 5 slots of clean history (t in [0, 5000)), 100 samples each.
  for (int s = 0; s < 5; ++s) {
    for (int i = 0; i < 100; ++i) {
      tracker.record(static_cast<std::uint64_t>(s) * 1000 + 10, 500);
    }
  }
  // Newest slot: 30 bad out of 30 -> fast burn 10; slow: 30/530 ~ 5.7% bad
  // -> slow burn ~0.57, under warn... so push more: 80 bad.
  for (int i = 0; i < 80; ++i) tracker.record(5010, 5000);
  const SloEval eval = tracker.evaluate(5010);
  EXPECT_GT(eval.fast_burn, spec.critical_burn);
  EXPECT_GE(eval.slow_burn, spec.warn_burn);
  EXPECT_LT(eval.slow_burn, spec.critical_burn);
  EXPECT_EQ(eval.state, SloState::kWarning) << "fast spike alone must not latch Critical";
}

TEST(SloTracker, CriticalExitsHysteretically) {
  SloSpec spec = test_spec();
  SloTracker tracker(spec);
  // Trip it: all-bad traffic in slot 0.
  for (int i = 0; i < 100; ++i) tracker.record(10, 5000);
  ASSERT_EQ(tracker.evaluate(10).state, SloState::kCritical);
  // Burn cools but stays above reopen_burn: 1% bad -> burn 1.0 in the new
  // fast slot. Critical must hold (no flap back through Warning).
  for (int i = 0; i < 99; ++i) tracker.record(1010, 500);
  tracker.record(1010, 5000);
  EXPECT_EQ(tracker.evaluate(1010).state, SloState::kCritical)
      << "burn above reopen_burn may not exit Critical";
  // A clean fast window (burn 0 < reopen 0.5) re-opens.
  for (int i = 0; i < 50; ++i) tracker.record(2010, 500);
  const SloEval after = tracker.evaluate(2010);
  EXPECT_NE(after.state, SloState::kCritical);
}

TEST(SloTracker, NoFlappingWhileBurnHoversAtTheCriticalThreshold) {
  // Traffic alternates just above / just below critical_burn each slot.
  // Without hysteresis the state would toggle every evaluation; with it, the
  // signal latches Critical once and stays (burn never falls below
  // reopen_burn).
  SloSpec spec = test_spec();
  spec.target_quantile = 0.9;  // 10% budget
  SloTracker tracker(spec);
  int transitions = 0;
  SloState prev = SloState::kHealthy;
  for (int slot = 0; slot < 12; ++slot) {
    const std::uint64_t t = static_cast<std::uint64_t>(slot) * 1000 + 10;
    const int bad = slot % 2 == 0 ? 25 : 18;  // 25% / 18% bad: burn 2.5 / 1.8
    for (int i = 0; i < 100 - bad; ++i) tracker.record(t, 500);
    for (int i = 0; i < bad; ++i) tracker.record(t, 5000);
    const SloState s = tracker.evaluate(t).state;
    if (s != prev) ++transitions;
    prev = s;
  }
  EXPECT_EQ(prev, SloState::kCritical);
  EXPECT_LE(transitions, 2) << "tri-state signal flapped while burn hovered";
}

// ---------------------------------------------------------------------------
// SloMonitor: scopes, worst-of, publishing
// ---------------------------------------------------------------------------

TEST(SloMonitor, DisabledMonitorIsInert) {
  SloMonitor monitor;
  EXPECT_FALSE(monitor.enabled());
  monitor.observe("a", 10, 500);
  EXPECT_EQ(monitor.evaluate(10), SloState::kHealthy);
  EXPECT_EQ(monitor.total_sheds(), 0u);
}

TEST(SloMonitor, WorstScopeWins) {
  SloMonitor monitor({test_spec()});
  ASSERT_TRUE(monitor.enabled());
  for (int i = 0; i < 50; ++i) monitor.observe("calm", 10, 500);
  for (int i = 0; i < 50; ++i) monitor.observe("burning", 10, 5000);
  EXPECT_EQ(monitor.evaluate(10), SloState::kCritical);
  EXPECT_EQ(monitor.state(), SloState::kCritical);
  EXPECT_GT(monitor.worst_eval().fast_burn, 1.0);
}

TEST(SloMonitor, PublishesScopedInstrumentsWithDocumentedScaling) {
  SloMonitor monitor({test_spec()});
  for (int i = 0; i < 97; ++i) monitor.observe("wk", 10, 500);
  for (int i = 0; i < 3; ++i) monitor.observe("wk", 10, 5000);  // burn 3.0
  monitor.count_shed("wk");
  monitor.count_shed("wk");
  monitor.evaluate(10);
  Registry registry;
  monitor.publish(registry);
  EXPECT_EQ(registry.gauge("graphm.slo.e2e.wk.burn_rate").value(), 3000);  // milli
  EXPECT_EQ(registry.gauge("graphm.slo.e2e.wk.state").value(),
            static_cast<int>(SloState::kCritical));
  EXPECT_EQ(registry.counter("graphm.slo.e2e.wk.shed").value(), 2u);
  // 1% budget of 100 samples = 1 bad allowed, 3 spent -> 0 ppm remaining.
  EXPECT_EQ(registry.gauge("graphm.slo.e2e.wk.budget_remaining").value(), 0);
}

TEST(SloMonitor, StateNamesAreExhaustive) {
  EXPECT_STREQ(slo_state_name(SloState::kHealthy), "healthy");
  EXPECT_STREQ(slo_state_name(SloState::kWarning), "warning");
  EXPECT_STREQ(slo_state_name(SloState::kCritical), "critical");
}

}  // namespace
}  // namespace graphm::obs

// ---------------------------------------------------------------------------
// The closed loop on the simulated clock (cluster) and the live clock
// (JobService): tracking is free, acting sheds exactly the lowest-priority
// work, and everything replays bit-identically.
// ---------------------------------------------------------------------------

namespace graphm::cluster {
namespace {

graph::EdgeList slo_test_graph() { return test::small_rmat(1024, 20000, 31); }

/// Mirrors the golden fixture in test_cluster_faults.cpp — same graph, seed
/// and configs, so the same pinned hash must come out.
constexpr std::uint64_t kGoldenServiceHash = 0x690a2c7e75a0f08fULL;

std::vector<Submission> golden_submissions(const graph::EdgeList& g) {
  const auto specs = runtime::paper_mix(8, g.num_vertices(), 9);
  std::vector<Submission> submissions(8);
  for (std::size_t j = 0; j < 8; ++j) {
    submissions[j].spec = specs[j];
    submissions[j].arrival_ns = j * 300'000;
    submissions[j].dataset = j % 2 == 0 ? "a" : "b";
  }
  return submissions;
}

TEST(SloClosedLoop, InertObjectiveLeavesGoldenTraceBitIdentical) {
  // SLO tracking enabled (objectives configured, observations recorded,
  // evaluation at every arrival) but the objective can never fire: the
  // fault-free trace must still match the pre-SLO golden pin — the detector
  // is pure computation until it acts.
  const auto g = slo_test_graph();
  std::vector<BackendConfig> backends(2);
  backends[0].dataset = "a";
  backends[0].num_nodes = 4;
  backends[1].dataset = "b";
  backends[1].engine = Backend::kChaos;
  backends[1].num_nodes = 4;
  ClusterServiceConfig config;
  config.des.seed = 0xFA11;
  obs::SloSpec inert;
  inert.name = "e2e";
  inert.threshold_ns = ~0ULL >> 1;  // nothing is ever bad
  config.objectives = {inert};
  ClusterService service(g, backends, config);

  service.run(golden_submissions(g));
  EXPECT_EQ(service.last_trace_hash(), kGoldenServiceHash)
      << "SLO tracking alone must not move the simulation";
  ASSERT_NE(service.last_slo(), nullptr);
  EXPECT_EQ(service.last_slo()->state(), obs::SloState::kHealthy);
}

/// Two replicas of one dataset under kAdaptive with a deliberately
/// trip-happy objective (threshold 0: every completion is a bad sample).
ClusterService adaptive_service(const graph::EdgeList& g,
                                std::uint64_t threshold_ns = 0) {
  std::vector<BackendConfig> backends(2);
  for (std::uint32_t b = 0; b < 2; ++b) {
    backends[b].dataset = "d";
    backends[b].num_nodes = 4;
    backends[b].replica_id = b;
    backends[b].policy = service::AdmissionPolicy::kAdaptive;
    backends[b].max_concurrent = 2;
  }
  ClusterServiceConfig config;
  config.des.seed = 0xFA11;
  obs::SloSpec spec;
  spec.name = "e2e";
  spec.threshold_ns = threshold_ns;
  spec.window_ns = 60'000'000;  // 60ms sim window >> the whole run
  spec.sub_windows = 6;
  config.objectives = {spec};
  return ClusterService(g, backends, config);
}

std::vector<Submission> burst_submissions(const graph::EdgeList& g, std::size_t count,
                                          std::uint64_t slo_ns) {
  const auto specs = runtime::paper_mix(count, g.num_vertices(), 9);
  std::vector<Submission> submissions(count);
  for (std::size_t j = 0; j < count; ++j) {
    submissions[j].spec = specs[j];
    submissions[j].arrival_ns = j * 300'000;
    submissions[j].dataset = "d";
    // Odd jobs carry a deadline; even jobs are best-effort — the shed
    // ordering test keys off this split.
    if (j % 2 == 1) {
      submissions[j].deadline_ns = service::deadline_from(submissions[j].arrival_ns, slo_ns);
    }
  }
  return submissions;
}

TEST(SloClosedLoop, AdaptiveShedsDeadlinelessWorkOnceCritical) {
  const auto g = slo_test_graph();
  auto service = adaptive_service(g);
  const auto submissions = burst_submissions(g, 16, /*slo_ns=*/1'000'000'000);

  service.run(submissions);
  const auto& reports = service.last_job_reports();
  const FaultStats& fstats = service.last_fault_stats();

  std::uint64_t shed = 0, shed_with_deadline = 0, completed = 0;
  for (const JobReport& r : reports) {
    if (r.outcome == service::Outcome::kSloShed) {
      ++shed;
      if (submissions[r.job].deadline_ns != service::kNoDeadline) ++shed_with_deadline;
    }
    if (r.outcome == service::Outcome::kCompleted) ++completed;
  }
  // The first completion trips the objective (threshold 0); every later
  // deadline-less arrival sheds. Deadlined jobs keep flowing (queue stays
  // under quota at this load).
  EXPECT_GE(shed, 1u) << "Critical never caused a shed";
  EXPECT_EQ(shed_with_deadline, 0u)
      << "adaptive admission shed deadlined work while under quota";
  EXPECT_GT(completed, 0u);
  EXPECT_EQ(fstats.slo_shed, shed);
  ASSERT_NE(service.last_slo(), nullptr);
  EXPECT_EQ(service.last_slo()->total_sheds(), shed);
  EXPECT_EQ(service.last_slo()->state(), obs::SloState::kCritical);

  // Conservation with kSloShed in the outcome set.
  std::uint64_t sum = 0;
  for (const auto outcome :
       {service::Outcome::kCompleted, service::Outcome::kRejected,
        service::Outcome::kDeadlineShed, service::Outcome::kDeadlineAborted,
        service::Outcome::kFailoverShed, service::Outcome::kUnroutable,
        service::Outcome::kSloShed}) {
    for (const JobReport& r : reports) {
      if (r.outcome == outcome) ++sum;
    }
  }
  EXPECT_EQ(sum, submissions.size()) << "conservation law violated by SLO sheds";
}

TEST(SloClosedLoop, ShedDecisionsReplayBitIdentically) {
  const auto g = slo_test_graph();
  auto service = adaptive_service(g);
  const auto submissions = burst_submissions(g, 20, 1'000'000'000);
  StormConfig storm;
  storm.horizon_ns = 6'000'000;
  storm.crashes = 1;
  storm.slowdowns = 1;
  storm.partitions = 0;
  const FaultPlan plan = FaultPlan::storm(0xFA11, service.num_backends(), storm);

  service.run(submissions, plan);
  const std::uint64_t hash_a = service.last_trace_hash();
  const std::uint64_t sheds_a = service.last_fault_stats().slo_shed;
  const auto reports_a = service.last_job_reports();

  service.run(submissions, plan);
  EXPECT_EQ(service.last_trace_hash(), hash_a)
      << "SLO shed decisions did not replay deterministically";
  EXPECT_EQ(service.last_fault_stats().slo_shed, sheds_a);
  const auto& reports_b = service.last_job_reports();
  ASSERT_EQ(reports_a.size(), reports_b.size());
  for (std::size_t j = 0; j < reports_a.size(); ++j) {
    EXPECT_EQ(reports_a[j].outcome, reports_b[j].outcome) << "job " << j;
    EXPECT_EQ(reports_a[j].completion_ns, reports_b[j].completion_ns) << "job " << j;
  }
}

TEST(SloClosedLoop, SloShedTraceRecordsLandOnTheDetector) {
  const auto g = slo_test_graph();
  std::vector<BackendConfig> backends(2);
  for (std::uint32_t b = 0; b < 2; ++b) {
    backends[b].dataset = "d";
    backends[b].num_nodes = 4;
    backends[b].replica_id = b;
    backends[b].policy = service::AdmissionPolicy::kAdaptive;
    backends[b].max_concurrent = 2;
  }
  ClusterServiceConfig config;
  config.des.seed = 0xFA11;
  config.des.record_trace = true;
  obs::SloSpec spec;
  spec.threshold_ns = 0;
  spec.window_ns = 60'000'000;
  config.objectives = {spec};
  ClusterService service(g, backends, config);
  const auto stats = service.run(burst_submissions(g, 16, 1'000'000'000));

  std::uint64_t shed_records = 0, state_changes = 0;
  for (const TraceRecord& r : service.last_trace()) {
    if (r.code == TraceCode::kJobSloShed) ++shed_records;
    if (r.code == TraceCode::kSloStateChange) ++state_changes;
  }
  EXPECT_EQ(shed_records, service.last_fault_stats().slo_shed);
  EXPECT_GE(state_changes, 1u) << "the tri-state transition never hit the trace";
  // The publish path carries the same story.
  obs::Registry registry;
  service.publish_metrics(registry, stats);
  EXPECT_EQ(registry.counter("graphm.cluster.slo_shed").value(),
            service.last_fault_stats().slo_shed);
  EXPECT_EQ(registry.gauge("graphm.slo.e2e.d.state").value(),
            static_cast<int>(obs::SloState::kCritical));
}

}  // namespace
}  // namespace graphm::cluster

namespace graphm::service {
namespace {

TEST(SloClosedLoopLive, AdaptiveServiceShedsWhileCriticalAndRecovers) {
  const auto g = test::small_rmat(256, 2000);
  const grid::GridStore store = test::make_grid(g, 2);

  ServiceConfig config;
  config.workers = 2;
  config.policy = AdmissionPolicy::kAdaptive;
  obs::SloSpec spec;
  spec.name = "e2e";
  spec.threshold_ns = 0;            // every completion is a bad sample
  spec.window_ns = 600'000'000'000; // 10 min: the whole test sits in one slot
  spec.sub_windows = 6;
  config.objectives = {spec};
  JobService svc(store, config);

  algos::JobSpec job;
  job.kind = algos::AlgorithmKind::kPageRank;
  job.max_iterations = 1;

  // First submission: window empty, objective Healthy, job admitted.
  auto h1 = svc.submit(job);
  ASSERT_TRUE(h1.valid());
  h1.await();
  ASSERT_EQ(h1.state(), JobState::kDone);

  // Its completion was a bad sample; the next deadline-less submission must
  // be shed by adaptive admission (client-visible as a rejection).
  auto h2 = svc.submit(job);
  EXPECT_EQ(h2.state(), JobState::kRejected) << "Critical did not shed";
  EXPECT_EQ(svc.slo_monitor().state(), obs::SloState::kCritical);
  EXPECT_EQ(svc.slo_monitor().total_sheds(), 1u);

  // A deadlined submission still flows while the queue is under quota.
  auto h3 = svc.submit(job, svc.now_ns() + 60'000'000'000ULL);
  h3.await();
  EXPECT_EQ(h3.state(), JobState::kDone) << "deadlined work shed while under quota";

  svc.drain();
  const auto stats = svc.stats();
  EXPECT_EQ(stats.rejected, 1u);

  // The published snapshot names the objective per dataset.
  obs::Registry registry;
  svc.publish_metrics(registry);
  EXPECT_EQ(registry.counter("graphm.slo.e2e.default.shed").value(), 1u);
  EXPECT_EQ(registry.gauge("graphm.slo.e2e.default.state").value(),
            static_cast<int>(obs::SloState::kCritical));
  // Tracer health rides the same snapshot (satellite: obs self-observation).
  EXPECT_EQ(registry.counter("graphm.obs.tracer.dropped").value(), 0u);
}

TEST(SloClosedLoopLive, NoObjectivesMeansNoShedding) {
  const auto g = test::small_rmat(256, 2000);
  const grid::GridStore store = test::make_grid(g, 2);
  ServiceConfig config;
  config.workers = 2;
  config.policy = AdmissionPolicy::kAdaptive;  // adaptive with nothing to act on
  JobService svc(store, config);
  algos::JobSpec job;
  job.kind = algos::AlgorithmKind::kPageRank;
  job.max_iterations = 1;
  for (int i = 0; i < 4; ++i) {
    auto h = svc.submit(job);
    h.await();
    EXPECT_EQ(h.state(), JobState::kDone);
  }
  svc.drain();
  EXPECT_EQ(svc.stats().rejected, 0u);
  EXPECT_FALSE(svc.slo_monitor().enabled());
}

}  // namespace
}  // namespace graphm::service
