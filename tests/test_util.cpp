#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "util/bitmap.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace graphm::util {
namespace {

TEST(Bitmap, SetGetClear) {
  AtomicBitmap bitmap(130);
  EXPECT_EQ(bitmap.size(), 130u);
  EXPECT_FALSE(bitmap.get(0));
  EXPECT_TRUE(bitmap.set(0));
  EXPECT_FALSE(bitmap.set(0)) << "second set reports already-set";
  EXPECT_TRUE(bitmap.get(0));
  EXPECT_TRUE(bitmap.set(129));
  EXPECT_EQ(bitmap.count(), 2u);
  EXPECT_TRUE(bitmap.clear(0));
  EXPECT_FALSE(bitmap.clear(0));
  EXPECT_EQ(bitmap.count(), 1u);
}

TEST(Bitmap, SetAllRespectsSize) {
  AtomicBitmap bitmap(70);
  bitmap.set_all();
  EXPECT_EQ(bitmap.count(), 70u);
  bitmap.clear_all();
  EXPECT_EQ(bitmap.count(), 0u);
  EXPECT_FALSE(bitmap.any());
}

TEST(Bitmap, CountRangeAndAnyInRange) {
  AtomicBitmap bitmap(256);
  for (std::size_t i = 0; i < 256; i += 8) bitmap.set(i);
  EXPECT_EQ(bitmap.count_range(0, 256), 32u);
  EXPECT_EQ(bitmap.count_range(0, 8), 1u);
  EXPECT_EQ(bitmap.count_range(1, 8), 0u);
  EXPECT_TRUE(bitmap.any_in_range(64, 128));
  EXPECT_FALSE(bitmap.any_in_range(65, 72));
}

TEST(Bitmap, ForEachSetVisitsInOrder) {
  AtomicBitmap bitmap(200);
  const std::set<std::size_t> expected = {3, 64, 65, 130, 199};
  for (std::size_t i : expected) bitmap.set(i);
  std::vector<std::size_t> seen;
  bitmap.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(std::vector<std::size_t>(expected.begin(), expected.end()), seen);
}

TEST(Bitmap, ConcurrentSetCountsEveryFirstSet) {
  AtomicBitmap bitmap(10000);
  std::atomic<std::size_t> first_sets{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < 10000; ++i) {
        if (bitmap.set(i)) first_sets.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(first_sets.load(), 10000u) << "each bit's first set observed exactly once";
  EXPECT_EQ(bitmap.count(), 10000u);
}

TEST(Bitmap, CopySemantics) {
  AtomicBitmap a(100);
  a.set(42);
  AtomicBitmap b(a);
  EXPECT_TRUE(b.get(42));
  b.set(43);
  EXPECT_FALSE(a.get(43)) << "copies are independent";
  a = b;
  EXPECT_TRUE(a.get(43));
}

TEST(Rng, Deterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DoublesInRange) {
  SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatesRate) {
  SplitMix64 rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += exponential_sample(rng, 4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.02);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table("demo");
  table.set_header({"a", "longer"});
  table.add_row({"xxxx", "1"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("xxxx"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(TablePrinter, FmtPrecision) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Timer, MeasuresElapsed) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(timer.elapsed_ms(), 4.0);
}

TEST(Timer, ScopedAccumulator) {
  std::uint64_t sink = 0;
  {
    ScopedAccumulator acc(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(sink, 1'000'000u);
}

}  // namespace
}  // namespace graphm::util
