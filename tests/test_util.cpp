#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "util/bitmap.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace graphm::util {
namespace {

TEST(Bitmap, SetGetClear) {
  AtomicBitmap bitmap(130);
  EXPECT_EQ(bitmap.size(), 130u);
  EXPECT_FALSE(bitmap.get(0));
  EXPECT_TRUE(bitmap.set(0));
  EXPECT_FALSE(bitmap.set(0)) << "second set reports already-set";
  EXPECT_TRUE(bitmap.get(0));
  EXPECT_TRUE(bitmap.set(129));
  EXPECT_EQ(bitmap.count(), 2u);
  EXPECT_TRUE(bitmap.clear(0));
  EXPECT_FALSE(bitmap.clear(0));
  EXPECT_EQ(bitmap.count(), 1u);
}

TEST(Bitmap, SetAllRespectsSize) {
  AtomicBitmap bitmap(70);
  bitmap.set_all();
  EXPECT_EQ(bitmap.count(), 70u);
  bitmap.clear_all();
  EXPECT_EQ(bitmap.count(), 0u);
  EXPECT_FALSE(bitmap.any());
}

TEST(Bitmap, CountRangeAndAnyInRange) {
  AtomicBitmap bitmap(256);
  for (std::size_t i = 0; i < 256; i += 8) bitmap.set(i);
  EXPECT_EQ(bitmap.count_range(0, 256), 32u);
  EXPECT_EQ(bitmap.count_range(0, 8), 1u);
  EXPECT_EQ(bitmap.count_range(1, 8), 0u);
  EXPECT_TRUE(bitmap.any_in_range(64, 128));
  EXPECT_FALSE(bitmap.any_in_range(65, 72));
}

TEST(Bitmap, ForEachSetVisitsInOrder) {
  AtomicBitmap bitmap(200);
  const std::set<std::size_t> expected = {3, 64, 65, 130, 199};
  for (std::size_t i : expected) bitmap.set(i);
  std::vector<std::size_t> seen;
  bitmap.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(std::vector<std::size_t>(expected.begin(), expected.end()), seen);
}

TEST(Bitmap, ConcurrentSetCountsEveryFirstSet) {
  AtomicBitmap bitmap(10000);
  std::atomic<std::size_t> first_sets{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < 10000; ++i) {
        if (bitmap.set(i)) first_sets.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(first_sets.load(), 10000u) << "each bit's first set observed exactly once";
  EXPECT_EQ(bitmap.count(), 10000u);
}

TEST(Bitmap, NextSetInRange) {
  AtomicBitmap bitmap(300);
  bitmap.set(5);
  bitmap.set(64);
  bitmap.set(250);
  EXPECT_EQ(bitmap.next_set_in_range(0, 300), 5u);
  EXPECT_EQ(bitmap.next_set_in_range(5, 300), 5u) << "begin itself counts";
  EXPECT_EQ(bitmap.next_set_in_range(6, 300), 64u);
  EXPECT_EQ(bitmap.next_set_in_range(65, 250), 250u) << "none in range returns end";
  EXPECT_EQ(bitmap.next_set_in_range(65, 300), 250u);
  EXPECT_EQ(bitmap.next_set_in_range(251, 300), 300u);
  EXPECT_EQ(bitmap.next_set_in_range(100, 100), 100u) << "empty range";
  EXPECT_EQ(bitmap.next_set_in_range(250, 1000), 250u) << "end clamps to size";
}

TEST(Bitmap, NextSetInRangeAgreesWithLinearScan) {
  AtomicBitmap bitmap(517);
  for (std::size_t i = 0; i < 517; i += 13) bitmap.set(i);
  for (std::size_t begin = 0; begin < 517; begin += 7) {
    std::size_t expected = 517;
    for (std::size_t i = begin; i < 517; ++i) {
      if (bitmap.get(i)) {
        expected = i;
        break;
      }
    }
    EXPECT_EQ(bitmap.next_set_in_range(begin, 517), expected) << "begin=" << begin;
  }
}

TEST(Bitmap, WordExposesRawBits) {
  AtomicBitmap bitmap(130);
  bitmap.set(0);
  bitmap.set(63);
  bitmap.set(64);
  bitmap.set(129);
  ASSERT_EQ(bitmap.num_words(), 3u);
  EXPECT_EQ(bitmap.word(0), (1ULL << 63) | 1ULL);
  EXPECT_EQ(bitmap.word(1), 1ULL);
  EXPECT_EQ(bitmap.word(2), 1ULL << (129 - 128));
}

TEST(Bitmap, WordCacheMatchesGet) {
  AtomicBitmap bitmap(1000);
  for (std::size_t i = 0; i < 1000; i += 3) bitmap.set(i);
  WordCache cache(bitmap);
  // Mixed strides so the cache both hits and reloads.
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(cache.test(i), bitmap.get(i));
  for (std::size_t i = 999; i-- > 0;) EXPECT_EQ(cache.test(i), bitmap.get(i));
}

TEST(Bitmap, CopySemantics) {
  AtomicBitmap a(100);
  a.set(42);
  AtomicBitmap b(a);
  EXPECT_TRUE(b.get(42));
  b.set(43);
  EXPECT_FALSE(a.get(43)) << "copies are independent";
  a = b;
  EXPECT_TRUE(a.get(43));
}

TEST(Rng, Deterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DoublesInRange) {
  SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatesRate) {
  SplitMix64 rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += exponential_sample(rng, 4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.02);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table("demo");
  table.set_header({"a", "longer"});
  table.add_row({"xxxx", "1"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("xxxx"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(TablePrinter, FmtPrecision) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ConcurrentParallelForCallsAreIndependent) {
  // Several jobs share one engine pool: each parallel_for call must complete
  // exactly its own indices and return without waiting for the others' work.
  ThreadPool pool(3);
  constexpr int kCallers = 6;
  constexpr std::size_t kN = 200;
  std::vector<std::atomic<int>> hits(kCallers * kN);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.parallel_for(kN, [&, c](std::size_t i) {
        hits[static_cast<std::size_t>(c) * kN + i].fetch_add(1);
      });
    });
  }
  for (auto& t : callers) t.join();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Timer, MeasuresElapsed) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(timer.elapsed_ms(), 4.0);
}

TEST(Timer, ScopedAccumulator) {
  std::uint64_t sink = 0;
  {
    ScopedAccumulator acc(sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(sink, 1'000'000u);
}

}  // namespace
}  // namespace graphm::util
