#include <gtest/gtest.h>

#include "sim/cache_sim.hpp"
#include "sim/memory_tracker.hpp"
#include "sim/page_cache.hpp"
#include "sim/platform.hpp"

namespace graphm::sim {
namespace {

TEST(CacheSim, ColdMissThenHit) {
  CacheSim cache(64 * 1024, 16, 64);
  cache.access(0x1000, 0);
  cache.access(0x1000, 0);
  const CacheStats stats = cache.total_stats();
  EXPECT_EQ(stats.accesses, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes_swapped_in, 64u);
}

TEST(CacheSim, RangeWalksCacheLines) {
  CacheSim cache(64 * 1024, 16, 64);
  cache.access_range(0, 640, 0);  // 10 lines
  EXPECT_EQ(cache.total_stats().misses, 10u);
  cache.access_range(0, 640, 1);  // same lines, other job: all hits
  EXPECT_EQ(cache.total_stats().misses, 10u);
  EXPECT_EQ(cache.job_stats(1).misses, 0u);
}

TEST(CacheSim, DistinctBuffersMissSeparately) {
  // The -C vs -M mechanism: two jobs over private copies double the misses.
  CacheSim cache(1024 * 1024, 16, 64);
  cache.access_range(0x100000, 64 * 100, 0);
  cache.access_range(0x900000, 64 * 100, 1);
  EXPECT_EQ(cache.total_stats().misses, 200u);
}

TEST(CacheSim, LruEvictionWithinSet) {
  // 2-way, 2 sets, 64B lines: capacity 4 lines. Lines 0,2,4 map to set 0.
  CacheSim cache(4 * 64, 2, 64);
  cache.access(0 * 64, 0);    // miss, set0 way0
  cache.access(2 * 64, 0);    // miss, set0 way1
  cache.access(0 * 64, 0);    // hit (refreshes line 0)
  cache.access(4 * 64, 0);    // miss, evicts line 2 (LRU)
  cache.access(0 * 64, 0);    // hit
  cache.access(2 * 64, 0);    // miss again (was evicted)
  EXPECT_EQ(cache.total_stats().misses, 4u);
  EXPECT_EQ(cache.total_stats().accesses, 6u);
}

TEST(CacheSim, CapacityExceededCausesRepeatMisses) {
  CacheSim cache(64 * 64, 4, 64);  // 64 lines capacity
  // Stream 256 lines twice: both passes miss everything (streaming >> LLC).
  cache.access_range(0, 64 * 256, 0);
  const auto first = cache.total_stats().misses;
  cache.access_range(0, 64 * 256, 0);
  const auto second = cache.total_stats().misses - first;
  EXPECT_EQ(first, 256u);
  EXPECT_EQ(second, 256u);
}

TEST(CacheSim, ResetClearsContents) {
  CacheSim cache(64 * 1024, 16, 64);
  cache.access(0, 0);
  cache.reset();
  EXPECT_EQ(cache.total_stats().accesses, 0u);
  cache.access(0, 0);
  EXPECT_EQ(cache.total_stats().misses, 1u) << "contents invalidated by reset";
}

TEST(PageCache, MissThenHit) {
  PageCacheSim cache(1 << 20, 4096, 100e6, 0.0);
  const auto stall1 = cache.read(1, 0, 8192, 0);
  EXPECT_GT(stall1, 0u);
  const auto stall2 = cache.read(1, 0, 8192, 0);
  EXPECT_EQ(stall2, 0u);
  const IoStats stats = cache.total_stats();
  EXPECT_EQ(stats.read_bytes, 16384u);
  EXPECT_EQ(stats.disk_read_bytes, 8192u);
}

TEST(PageCache, LruEvictsOldest) {
  PageCacheSim cache(2 * 4096, 4096, 100e6, 0.0);  // 2 pages
  cache.read(1, 0, 4096, 0);      // page 0
  cache.read(1, 4096, 4096, 0);   // page 1
  cache.read(1, 8192, 4096, 0);   // page 2 evicts page 0
  EXPECT_EQ(cache.read(1, 4096, 4096, 0), 0u) << "page 1 still resident";
  EXPECT_GT(cache.read(1, 0, 4096, 0), 0u) << "page 0 was evicted";
}

TEST(PageCache, DistinctFilesDoNotCollide) {
  PageCacheSim cache(1 << 20, 4096, 100e6, 0.0);
  cache.read(1, 0, 4096, 0);
  EXPECT_GT(cache.read(2, 0, 4096, 0), 0u) << "same offset, different file misses";
}

TEST(PageCache, PerJobAttribution) {
  PageCacheSim cache(1 << 20, 4096, 100e6, 0.0);
  cache.read(1, 0, 4096, 3);
  cache.read(1, 4096, 4096, 5);
  EXPECT_EQ(cache.job_stats(3).disk_read_bytes, 4096u);
  EXPECT_EQ(cache.job_stats(5).disk_read_bytes, 4096u);
  EXPECT_EQ(cache.job_stats(4).disk_read_bytes, 0u);
}

TEST(PageCache, InvalidateFile) {
  PageCacheSim cache(1 << 20, 4096, 100e6, 0.0);
  cache.read(7, 0, 4096, 0);
  cache.invalidate_file(7);
  EXPECT_GT(cache.read(7, 0, 4096, 0), 0u);
}

TEST(PageCache, StallScalesWithBytes) {
  PageCacheSim cache(64 << 20, 4096, 100.0 * 1024 * 1024, 0.0);
  const auto small = cache.read(1, 0, 1 << 20, 0);
  const auto big = cache.read(2, 0, 8 << 20, 0);
  EXPECT_NEAR(static_cast<double>(big) / static_cast<double>(small), 8.0, 0.5);
}

TEST(MemoryTracker, PeakTracksHighWater) {
  MemoryTracker tracker;
  tracker.allocate(MemoryCategory::kGraphStructure, 100);
  tracker.allocate(MemoryCategory::kJobSpecific, 50);
  EXPECT_EQ(tracker.current_total(), 150u);
  tracker.release(MemoryCategory::kGraphStructure, 100);
  EXPECT_EQ(tracker.current_total(), 50u);
  EXPECT_EQ(tracker.peak_total(), 150u);
  EXPECT_EQ(tracker.peak(MemoryCategory::kGraphStructure), 100u);
}

TEST(MemoryTracker, TrackedAllocationRaii) {
  MemoryTracker tracker;
  {
    TrackedAllocation alloc(&tracker, MemoryCategory::kChunkTables, 64);
    EXPECT_EQ(tracker.current(MemoryCategory::kChunkTables), 64u);
  }
  EXPECT_EQ(tracker.current(MemoryCategory::kChunkTables), 0u);
}

TEST(MemoryTracker, TrackedAllocationMove) {
  MemoryTracker tracker;
  TrackedAllocation a(&tracker, MemoryCategory::kOther, 10);
  TrackedAllocation b = std::move(a);
  EXPECT_EQ(tracker.current(MemoryCategory::kOther), 10u);
  b = TrackedAllocation(&tracker, MemoryCategory::kOther, 4);
  EXPECT_EQ(tracker.current(MemoryCategory::kOther), 4u) << "old allocation released on assign";
}

TEST(Platform, LpiUsesPerJobCounters) {
  Platform platform;
  platform.llc().access_range(0, 64 * 10, 0);  // 10 misses for job 0
  platform.add_instructions(0, 1000);
  EXPECT_DOUBLE_EQ(platform.average_lpi({0}), 0.01);
  EXPECT_DOUBLE_EQ(platform.average_lpi({1}), 0.0);
}

TEST(Platform, ResetStatsClearsEverything) {
  Platform platform;
  platform.llc().access(0, 0);
  platform.page_cache().read(1, 0, 4096, 0);
  platform.add_instructions(0, 5);
  platform.memory().allocate(MemoryCategory::kOther, 1);
  platform.reset_stats();
  EXPECT_EQ(platform.llc().total_stats().accesses, 0u);
  EXPECT_EQ(platform.page_cache().total_stats().read_bytes, 0u);
  EXPECT_EQ(platform.total_instructions(), 0u);
  EXPECT_EQ(platform.memory().current_total(), 0u);
}

}  // namespace
}  // namespace graphm::sim
