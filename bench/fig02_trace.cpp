// Figure 2: number of concurrent graph processing jobs over one week,
// synthesized to the paper's published statistics (peak > 30, mean ~16).
#include "bench_support.hpp"

#include "runtime/job_queue.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  const auto trace = runtime::synthesize_week_trace(168, 42);

  std::printf("== Figure 2: concurrent jobs over one week (hourly) ==\n");
  // Sparkline-style rows of 24 hours each.
  for (std::size_t day = 0; day < 7; ++day) {
    std::printf("day %zu  ", day + 1);
    for (std::size_t h = 0; h < 24; ++h) {
      std::printf("%3u", trace[day * 24 + h].concurrent_jobs);
    }
    std::printf("\n");
  }

  double sum = 0.0;
  std::uint32_t peak = 0;
  for (const auto& point : trace) {
    sum += point.concurrent_jobs;
    peak = std::max(peak, point.concurrent_jobs);
  }
  const double mean = sum / static_cast<double>(trace.size());
  std::printf("mean concurrency: %.1f   peak: %u\n", mean, peak);
  print_shape("peak above 30 concurrent jobs", peak > 30);
  print_shape("mean concurrency near 16", mean > 13.0 && mean < 19.0);
  return 0;
}
