// google-benchmark microbenchmarks of GraphM's core primitives: chunk
// labelling (Algorithm 1), the LLC/page-cache simulators, the Formula-5
// priority computation and raw edge streaming.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "graphm/chunk_table.hpp"
#include "graphm/scheduler.hpp"
#include "sim/cache_sim.hpp"
#include "sim/page_cache.hpp"
#include "util/bitmap.hpp"

namespace {

using namespace graphm;

const graph::EdgeList& bench_graph() {
  static const graph::EdgeList g = graph::generate_rmat(1 << 14, 1 << 18, 99);
  return g;
}

void BM_LabelPartition(benchmark::State& state) {
  const auto& g = bench_graph();
  const std::size_t chunk_bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto table = core::label_partition(g.edges().data(), g.num_edges(), chunk_bytes);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_LabelPartition)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_ActiveEdges(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto table = core::label_partition(g.edges().data(), g.num_edges(), 16384);
  util::AtomicBitmap active(g.num_vertices());
  for (std::size_t v = 0; v < g.num_vertices(); v += 3) active.set(v);
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (const auto& chunk : table.chunks) total += chunk.active_edges(active);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ActiveEdges);

void BM_CacheSimStream(benchmark::State& state) {
  sim::CacheSim cache(256 * 1024, 16, 64);
  const std::size_t bytes = 1 << 20;
  for (auto _ : state) {
    cache.access_range(0x100000, bytes, 0);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CacheSimStream);

void BM_PageCacheRead(benchmark::State& state) {
  sim::PageCacheSim cache(32 << 20, 4096, 100e6, 1e-4);
  std::uint64_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.read(1, offset, 1 << 16, 0));
    offset = (offset + (1 << 16)) % (64 << 20);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 16));
}
BENCHMARK(BM_PageCacheRead);

void BM_LoadingOrder(benchmark::State& state) {
  core::GlobalTable table;
  for (core::PartitionId p = 0; p < 64; ++p) {
    for (core::JobId j = 0; j < 16; ++j) {
      if ((p + j) % 3 == 0) table[p].insert(j);
    }
  }
  for (auto _ : state) {
    auto order = core::loading_order(table, true);
    benchmark::DoNotOptimize(order);
  }
}
BENCHMARK(BM_LoadingOrder);

void BM_EdgeStreamGated(benchmark::State& state) {
  const auto& g = bench_graph();
  util::AtomicBitmap active(g.num_vertices());
  active.set_all();
  std::vector<double> sums(g.num_vertices(), 0.0);
  for (auto _ : state) {
    for (const auto& e : g.edges()) {
      if (active.get(e.src)) sums[e.dst] += e.weight;
    }
    benchmark::DoNotOptimize(sums.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_EdgeStreamGated);

}  // namespace
