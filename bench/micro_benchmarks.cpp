// google-benchmark microbenchmarks of GraphM's core primitives: chunk
// labelling (Algorithm 1), the LLC/page-cache simulators, the Formula-5
// priority computation and raw edge streaming — plus the streaming-path
// comparison this repo's perf trajectory is tracked by: scalar per-edge vs
// block-batched vs block+pool streaming on a fig09-style 16-job concurrent
// mix, written to BENCH_stream.json (override the path with
// GRAPHM_BENCH_OUT).
//
// Run with no arguments to execute the stream comparison and emit the JSON;
// pass any google-benchmark flag (e.g. --benchmark_filter=.) to also run the
// registered microbenchmarks.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "graph/generators.hpp"
#include "graphm/chunk_table.hpp"
#include "graphm/scheduler.hpp"
#include "grid/grid_store.hpp"
#include "runtime/executor.hpp"
#include "runtime/workloads.hpp"
#include "sim/cache_sim.hpp"
#include "sim/page_cache.hpp"
#include "util/bitmap.hpp"

namespace {

using namespace graphm;

const graph::EdgeList& bench_graph() {
  static const graph::EdgeList g = graph::generate_rmat(1 << 14, 1 << 18, 99);
  return g;
}

void BM_LabelPartition(benchmark::State& state) {
  const auto& g = bench_graph();
  const std::size_t chunk_bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto table = core::label_partition(g.edges().data(), g.num_edges(), chunk_bytes);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_LabelPartition)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_ActiveEdges(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto table = core::label_partition(g.edges().data(), g.num_edges(), 16384);
  util::AtomicBitmap active(g.num_vertices());
  for (std::size_t v = 0; v < g.num_vertices(); v += 3) active.set(v);
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (const auto& chunk : table.chunks) total += chunk.active_edges(active);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ActiveEdges);

void BM_CacheSimStream(benchmark::State& state) {
  sim::CacheSim cache(256 * 1024, 16, 64);
  const std::size_t bytes = 1 << 20;
  for (auto _ : state) {
    cache.access_range(0x100000, bytes, 0);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CacheSimStream);

void BM_PageCacheRead(benchmark::State& state) {
  sim::PageCacheSim cache(32 << 20, 4096, 100e6, 1e-4);
  std::uint64_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.read(1, offset, 1 << 16, 0));
    offset = (offset + (1 << 16)) % (64 << 20);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 16));
}
BENCHMARK(BM_PageCacheRead);

void BM_LoadingOrder(benchmark::State& state) {
  core::GlobalTable table;
  for (core::PartitionId p = 0; p < 64; ++p) {
    for (core::JobId j = 0; j < 16; ++j) {
      if ((p + j) % 3 == 0) table[p].insert(j);
    }
  }
  for (auto _ : state) {
    auto order = core::loading_order(table, true);
    benchmark::DoNotOptimize(order);
  }
}
BENCHMARK(BM_LoadingOrder);

void BM_EdgeStreamGated(benchmark::State& state) {
  const auto& g = bench_graph();
  util::AtomicBitmap active(g.num_vertices());
  active.set_all();
  std::vector<double> sums(g.num_vertices(), 0.0);
  for (auto _ : state) {
    for (const auto& e : g.edges()) {
      if (active.get(e.src)) sums[e.dst] += e.weight;
    }
    benchmark::DoNotOptimize(sums.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_EdgeStreamGated);

void BM_EdgeStreamWordGated(benchmark::State& state) {
  // The block path's inner-loop idiom: one cached frontier word per 64
  // sources instead of one atomic bit test per edge.
  const auto& g = bench_graph();
  util::AtomicBitmap active(g.num_vertices());
  active.set_all();
  std::vector<double> sums(g.num_vertices(), 0.0);
  for (auto _ : state) {
    util::WordCache words(active);
    for (const auto& e : g.edges()) {
      if (words.test(e.src)) sums[e.dst] += e.weight;
    }
    benchmark::DoNotOptimize(sums.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_EdgeStreamWordGated);

// --------------------------------------------------------------------------
// Stream-path comparison -> BENCH_stream.json
// --------------------------------------------------------------------------

struct StreamMeasurement {
  double edges_per_sec = 0.0;
  double compute_s = 0.0;
  std::uint64_t edges_streamed = 0;
  std::uint64_t edges_processed = 0;
};

StreamMeasurement run_stream_mode(const grid::GridStore& store,
                                  const std::vector<algos::JobSpec>& jobs,
                                  runtime::Scheme scheme, bool use_blocks,
                                  std::size_t threads) {
  // Best-of-5: per-chunk wall timers are at the mercy of the host scheduler
  // (under the concurrent scheme especially), and the fastest repetition is
  // the closest to the loop's true cost.
  StreamMeasurement out;
  for (int rep = 0; rep < 5; ++rep) {
    runtime::ExecutorConfig config;
    config.stream.use_blocks = use_blocks;
    config.stream.num_stream_threads = threads;
    const auto metrics = runtime::run_jobs(scheme, store, jobs, config);
    StreamMeasurement sample;
    for (const auto& job : metrics.jobs) {
      sample.edges_streamed += job.stats.edges_streamed;
      sample.edges_processed += job.stats.edges_processed;
      sample.compute_s += static_cast<double>(job.stats.compute_ns) / 1e9;
    }
    sample.edges_per_sec =
        sample.compute_s == 0.0
            ? 0.0
            : static_cast<double>(sample.edges_streamed) / sample.compute_s;
    if (sample.edges_per_sec > out.edges_per_sec) out = sample;
  }
  return out;
}

int stream_comparison() {
  // The fig09 workload: 16 concurrent paper-mix jobs on one grid store under
  // the GridGraph-C scheme (every job streams privately, so the measured loop
  // time is pure streaming). The scalar baseline reproduces the seed
  // end-to-end: ungrouped block layout AND the per-edge virtual loop — the
  // configuration this PR replaced — so the speedups are the PR's perf
  // trajectory. Only compute_ns (time inside the edge loops) enters the
  // rates; simulated-platform bookkeeping runs outside the timers and is
  // identical across modes. A sequential-scheme pair is reported as well:
  // same loops, no 16-thread oversubscription jitter on the timers.
  const auto g = graph::generate_rmat(1 << 14, 1 << 18, 42);
  const char* tmp = std::getenv("TMPDIR");
  const std::string base = std::string(tmp != nullptr ? tmp : "/tmp");
  const std::string seed_path = base + "/graphm_bench_stream_seed";
  const std::string path = base + "/graphm_bench_stream_grid";
  grid::GridStore::preprocess(g, 8, seed_path, /*src_sort=*/false);
  grid::GridStore::preprocess(g, 8, path);
  const grid::GridStore seed_store = grid::GridStore::open(seed_path);
  const grid::GridStore store = grid::GridStore::open(path);
  const auto jobs = runtime::paper_mix(16, g.num_vertices(), 0x09);

  const std::size_t pool_threads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const auto concurrent = runtime::Scheme::kConcurrent;
  const auto scalar = run_stream_mode(seed_store, jobs, concurrent, /*use_blocks=*/false, 1);
  const auto block = run_stream_mode(store, jobs, concurrent, /*use_blocks=*/true, 1);
  // With one hardware thread the engine creates no pool, so block+pool is the
  // same configuration as block — reuse the measurement instead of reporting
  // scheduler noise as a difference.
  const auto block_pool =
      pool_threads <= 1
          ? block
          : run_stream_mode(store, jobs, concurrent, /*use_blocks=*/true, pool_threads);

  const auto sequential = runtime::Scheme::kSequential;
  const auto scalar_seq =
      run_stream_mode(seed_store, jobs, sequential, /*use_blocks=*/false, 1);
  const auto block_pool_seq =
      run_stream_mode(store, jobs, sequential, /*use_blocks=*/true, pool_threads);

  // Deterministic parallel PageRank: the network-intensive headline workload
  // used to be serial-by-contract (fp summation order); striped accumulation
  // lets it fan out across the pool with bit-identical results, so the
  // multi-thread column below is the algorithm the fig09 mix is heaviest on
  // actually using the workers. Serial-path measurement guards against
  // regression from the striping itself (same config as before the change,
  // one thread, sequential scheme — clean timers).
  const auto pagerank_jobs =
      runtime::uniform_mix(algos::AlgorithmKind::kPageRank, 4, g.num_vertices(), 7);
  const auto pagerank_serial =
      run_stream_mode(store, pagerank_jobs, sequential, /*use_blocks=*/true, 1);
  const auto pagerank_pool =
      pool_threads <= 1
          ? pagerank_serial
          : run_stream_mode(store, pagerank_jobs, sequential, /*use_blocks=*/true,
                            pool_threads);

  const auto speedup = [](const StreamMeasurement& a, const StreamMeasurement& b) {
    return a.edges_per_sec == 0.0 ? 0.0 : b.edges_per_sec / a.edges_per_sec;
  };

  const char* out_path = std::getenv("GRAPHM_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_stream.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  const auto emit = [f](const char* name, const StreamMeasurement& m, const char* tail) {
    std::fprintf(f,
                 "  \"%s\": {\"edges_per_sec\": %.0f, \"compute_s\": %.4f, "
                 "\"edges_streamed\": %llu, \"edges_processed\": %llu}%s\n",
                 name, m.edges_per_sec, m.compute_s,
                 static_cast<unsigned long long>(m.edges_streamed),
                 static_cast<unsigned long long>(m.edges_processed), tail);
  };
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"stream_throughput\",\n");
  std::fprintf(f,
               "  \"workload\": \"fig09: 16 concurrent paper-mix jobs, rmat "
               "16384v/262144e, 8 partitions, GridGraph-C\",\n");
  std::fprintf(f,
               "  \"baseline\": \"seed configuration: ungrouped grid layout + "
               "per-edge virtual dispatch + per-edge atomic frontier test, "
               "single-threaded\",\n");
  std::fprintf(f, "  \"pool_threads\": %zu,\n", pool_threads);
  emit("scalar", scalar, ",");
  emit("block", block, ",");
  emit("block_pool", block_pool, ",");
  emit("scalar_sequential", scalar_seq, ",");
  emit("block_pool_sequential", block_pool_seq, ",");
  emit("pagerank_serial", pagerank_serial, ",");
  emit("pagerank_pool", pagerank_pool, ",");
  std::fprintf(f, "  \"speedup_block_vs_scalar\": %.2f,\n", speedup(scalar, block));
  std::fprintf(f, "  \"speedup_block_pool_vs_scalar\": %.2f,\n",
               speedup(scalar, block_pool));
  std::fprintf(f, "  \"speedup_block_pool_vs_scalar_sequential\": %.2f,\n",
               speedup(scalar_seq, block_pool_seq));
  std::fprintf(f, "  \"speedup_pagerank_pool_vs_serial\": %.2f\n",
               speedup(pagerank_serial, pagerank_pool));
  std::fprintf(f, "}\n");
  if (std::fclose(f) != 0) {
    std::fprintf(stderr, "short write to %s\n", out_path);
    return 1;
  }

  std::printf("stream throughput (edges/sec): scalar %.3g, block %.3g (%.2fx), "
              "block+pool(%zu) %.3g (%.2fx); sequential-scheme pair %.3g -> %.3g "
              "(%.2fx); pagerank serial %.3g -> pool %.3g (%.2fx) -> %s\n",
              scalar.edges_per_sec, block.edges_per_sec, speedup(scalar, block),
              pool_threads, block_pool.edges_per_sec, speedup(scalar, block_pool),
              scalar_seq.edges_per_sec, block_pool_seq.edges_per_sec,
              speedup(scalar_seq, block_pool_seq), pagerank_serial.edges_per_sec,
              pagerank_pool.edges_per_sec, speedup(pagerank_serial, pagerank_pool),
              out_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = stream_comparison();
  if (rc != 0) return rc;
  if (argc > 1) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
