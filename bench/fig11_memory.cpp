// Figure 11: peak memory usage of 16 jobs under the three schemes,
// normalized to -C. Paper: -M uses less than -C (single shared structure
// copy) but more than -S (all jobs' vertex data resident at once); on
// UK-union, GridGraph-M ~71% of GridGraph-C.
#include "bench_support.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  util::TablePrinter table("Figure 11: normalized peak memory usage, 16 jobs");
  table.set_header({"dataset", "S", "C", "M", "M graph MB", "M job-data MB", "M tables MB"});

  bool ordering_holds = true;
  for (const std::string& dataset : bench_datasets()) {
    const auto s = run_scheme(runtime::Scheme::kSequential, dataset, 16);
    const auto c = run_scheme(runtime::Scheme::kConcurrent, dataset, 16);
    const auto m = run_scheme(runtime::Scheme::kShared, dataset, 16);
    table.add_row({dataset, util::TablePrinter::fmt(s.peak_mem_mb / c.peak_mem_mb),
                   util::TablePrinter::fmt(1.0),
                   util::TablePrinter::fmt(m.peak_mem_mb / c.peak_mem_mb),
                   util::TablePrinter::fmt(m.peak_graph_mb, 2),
                   util::TablePrinter::fmt(m.peak_job_mb, 2),
                   util::TablePrinter::fmt(m.peak_table_mb, 2)});
    ordering_holds = ordering_holds && m.peak_mem_mb < c.peak_mem_mb &&
                     m.peak_mem_mb >= s.peak_mem_mb;
  }
  table.print();
  print_shape("S <= M < C peak memory on every dataset", ordering_holds);
  return 0;
}
