// Table 3: preprocessing time of GridGraph vs GridGraph-M (grid conversion
// plus GraphM's chunk-labelling pass) and GraphM's extra space overhead.
// Paper: labelling adds ~4% (in-memory graphs) to ~16% (out-of-core), and
// chunk tables occupy 5.5%-19.2% of the original graph size.
#include "bench_support.hpp"

#include "graphm/graphm.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  util::TablePrinter table("Table 3: preprocessing time (seconds) and GraphM space overhead");
  table.set_header({"dataset", "GridGraph", "GridGraph-M", "overhead %", "tables MB",
                    "space %"});

  bool overhead_small = true;
  bool space_in_band = true;
  for (const std::string& dataset : bench_datasets()) {
    const double scale = bench_scale();
    const grid::GridStore store = grid::open_dataset_grid(dataset, kPartitions, scale);
    const double graph_bytes =
        static_cast<double>(store.meta().num_edges) * sizeof(graph::Edge);

    // The paper's conversion runs against a 1 TB HDD: the original edges are
    // read and the P x P block streams written back, at seek-degraded
    // bandwidth. Our measured conversion is in-memory, so the disk part is
    // charged through the platform's cost model (DESIGN.md section 2).
    // Note: since the block-batched streaming PR the measured conversion also
    // source-groups each block (GridStore::preprocess src_sort) — a real cost
    // of our grid format that the paper's GridGraph did not pay. It is a few
    // percent of the modeled disk term below, so the baseline row is not
    // materially inflated.
    const double kConversionDiskBw = 25.0 * 1024 * 1024;  // block-stream writes seek
    const double conv_disk_s =
        2.0 * graph_bytes / kConversionDiskBw;  // read original + write grid
    const double grid_s = seconds(store.meta().preprocess_ns) + conv_disk_s;

    sim::Platform platform(bench_platform());
    core::GraphM graphm(store, platform);
    double label_s = seconds(graphm.init());
    // Labelling re-reads the converted graph; for in-memory graphs it comes
    // from the page cache the conversion just filled, out-of-core graphs pay
    // a sequential disk pass (the paper's 4% vs 16.1% split).
    if (graph_bytes > platform.config().memory_bytes) {
      label_s += graph_bytes / platform.config().disk_bandwidth_bytes_per_s;
    }
    const double total_s = grid_s + label_s;

    const double graph_mb = graph_bytes / 1e6;
    const double tables_mb = static_cast<double>(graphm.metadata_bytes()) / 1e6;
    const double overhead_pct = 100.0 * label_s / std::max(grid_s, 1e-9);
    const double space_pct = 100.0 * tables_mb / graph_mb;

    table.add_row({dataset, util::TablePrinter::fmt(grid_s, 3),
                   util::TablePrinter::fmt(total_s, 3),
                   util::TablePrinter::fmt(overhead_pct, 1),
                   util::TablePrinter::fmt(tables_mb, 2),
                   util::TablePrinter::fmt(space_pct, 1)});
    overhead_small = overhead_small && overhead_pct < 35.0;
    space_in_band = space_in_band && space_pct > 1.0 && space_pct < 60.0;
  }
  table.print();
  print_shape("labelling adds <35% to preprocessing (paper: 4-16%)", overhead_small);
  print_shape("chunk-table space is a small fraction of the graph", space_in_band);
  return 0;
}
