// Figure 10: execution time breakdown (graph processing vs data accessing)
// per scheme and dataset. Paper: -M's data-access share shrinks drastically,
// e.g. 11.48x/13.06x less data-access time on UK-union.
#include "bench_support.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  util::TablePrinter table(
      "Figure 10: time breakdown (seconds), 16 jobs — data access = DRAM + disk stalls");
  table.set_header({"dataset", "scheme", "processing", "data access", "access share"});

  bool m_smallest_access_everywhere = true;
  double ukunion_ratio = 0.0;

  for (const std::string& dataset : bench_datasets()) {
    struct Row {
      const char* name;
      runtime::Scheme scheme;
    };
    const Row rows[] = {{"S", runtime::Scheme::kSequential},
                        {"C", runtime::Scheme::kConcurrent},
                        {"M", runtime::Scheme::kShared}};
    double access[3] = {0, 0, 0};
    for (int i = 0; i < 3; ++i) {
      const auto r = run_scheme(rows[i].scheme, dataset, 16);
      const double data_access = r.io_stall_s + r.mem_stall_s;
      access[i] = data_access;
      table.add_row({dataset, rows[i].name, util::TablePrinter::fmt(r.compute_s, 3),
                     util::TablePrinter::fmt(data_access, 3),
                     util::TablePrinter::fmt(100.0 * data_access / r.total_s, 1) + "%"});
    }
    m_smallest_access_everywhere =
        m_smallest_access_everywhere && access[2] <= access[0] && access[2] <= access[1];
    if (dataset == "ukunion_s") ukunion_ratio = access[0] / access[2];
  }
  table.print();
  std::printf("UK-union data-access reduction S vs M: %.2fx (paper: 11.48x)\n", ukunion_ratio);
  print_shape("-M has the smallest data-access time on every dataset",
              m_smallest_access_everywhere);
  print_shape("UK-union access-time reduction > 3x (paper: 11.48x)", ukunion_ratio > 3.0);
  return 0;
}
