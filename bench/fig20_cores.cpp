// Figure 20: 16 jobs on Twitter while varying the number of CPU cores
// (1..16). The container has one physical core, so the compute term is
// modeled as measured_serial_compute / cores on top of the (unchanged)
// modeled memory/disk stalls — DESIGN.md section 2 records this substitution.
// Paper: -M is fastest at every core count, and the gap widens with cores
// because the data-access share (which GraphM removes) limits the others.
#include "bench_support.hpp"

using namespace graphm;
using namespace graphm::bench;

namespace {
double modeled_time(const BenchResult& r, int cores) {
  return r.compute_s / cores + r.io_stall_s + r.mem_stall_s;
}
}  // namespace

int main() {
  const std::string dataset = "twitter_s";
  const auto s = run_scheme(runtime::Scheme::kSequential, dataset, 16);
  const auto c = run_scheme(runtime::Scheme::kConcurrent, dataset, 16);
  const auto m = run_scheme(runtime::Scheme::kShared, dataset, 16);

  util::TablePrinter table("Figure 20: modeled total time vs #cores, 16 jobs on twitter_s (s)");
  table.set_header({"cores", "S", "C", "M", "S/M"});
  bool m_always_fastest = true;
  double first_ratio = 0.0;
  double last_ratio = 0.0;
  for (const int cores : {1, 2, 4, 8, 16}) {
    const double ts = modeled_time(s, cores);
    const double tc = modeled_time(c, cores);
    const double tm = modeled_time(m, cores);
    table.add_row({std::to_string(cores), util::TablePrinter::fmt(ts, 3),
                   util::TablePrinter::fmt(tc, 3), util::TablePrinter::fmt(tm, 3),
                   util::TablePrinter::fmt(ts / tm)});
    m_always_fastest = m_always_fastest && tm <= ts && tm <= tc;
    if (cores == 1) first_ratio = ts / tm;
    last_ratio = ts / tm;
  }
  table.print();
  print_shape("-M fastest at every core count", m_always_fastest);
  print_shape("-M's advantage grows with cores", last_ratio >= first_ratio);
  return 0;
}
