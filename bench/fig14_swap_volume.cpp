// Figure 14: volume of data swapped into the LLC, normalized per dataset.
// Paper: -C swaps the most (cache interference between private copies); -M
// swaps much less than even -S (on UK-union, -S is 65% of -C and -M is 55%
// of -S).
#include "bench_support.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  util::TablePrinter table("Figure 14: normalized volume swapped into the LLC, 16 jobs");
  table.set_header({"dataset", "S", "C", "M", "M GB"});

  bool ordering = true;
  for (const std::string& dataset : bench_datasets()) {
    const auto s = run_scheme(runtime::Scheme::kSequential, dataset, 16);
    const auto c = run_scheme(runtime::Scheme::kConcurrent, dataset, 16);
    const auto m = run_scheme(runtime::Scheme::kShared, dataset, 16);
    const double base = std::max({s.llc_swapped_gb, c.llc_swapped_gb, m.llc_swapped_gb, 1e-12});
    table.add_row({dataset, util::TablePrinter::fmt(s.llc_swapped_gb / base),
                   util::TablePrinter::fmt(c.llc_swapped_gb / base),
                   util::TablePrinter::fmt(m.llc_swapped_gb / base),
                   util::TablePrinter::fmt(m.llc_swapped_gb, 3)});
    ordering = ordering && m.llc_swapped_gb < s.llc_swapped_gb &&
               s.llc_swapped_gb <= c.llc_swapped_gb * 1.05;
  }
  table.print();
  print_shape("M < S <= C swapped volume on every dataset", ordering);
  return 0;
}
