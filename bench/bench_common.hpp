// Shared helpers for the per-figure/table bench harnesses.
//
// Every bench prints the same rows/series the paper reports plus a SHAPE
// line: a PASS/FAIL check of the qualitative claim (who wins, by roughly what
// factor). EXPERIMENTS.md records paper-vs-measured for each one.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "graph/datasets.hpp"
#include "grid/grid_store.hpp"
#include "runtime/executor.hpp"
#include "runtime/workloads.hpp"
#include "util/table_printer.hpp"

namespace graphm::bench {

/// Bench-wide dataset scale. GRAPHM_SCALE overrides; the default keeps the
/// full suite within a few minutes while preserving every in-memory vs
/// out-of-core relationship (the simulated platform scales with it).
inline double bench_scale() {
  const char* env = std::getenv("GRAPHM_SCALE");
  if (env != nullptr) {
    const double v = std::atof(env);
    if (v > 0.0 && v <= 1.0) return v;
  }
  return 0.25;
}

/// Number of partitions used by every grid bench (GridGraph's P).
inline constexpr std::uint32_t kPartitions = 8;

/// The platform the benches simulate, scaled alongside bench_scale() so the
/// Table-2 split (3 in-memory graphs, 2 out-of-core) is preserved.
inline sim::PlatformConfig bench_platform() {
  sim::PlatformConfig config;
  // The simulated LLC and memory shrink with the dataset scale so that the
  // paper's in-memory (LiveJ/Orkut/Twitter) vs out-of-core (UK-union/
  // Clueweb12) split survives scaling (DESIGN.md section 4).
  const double s = bench_scale();
  config.llc_bytes = std::max<std::size_t>(
      16 * 1024, static_cast<std::size_t>(256.0 * 1024 * s));
  config.llc_reserved_bytes = config.llc_bytes / 16;
  config.memory_bytes = std::max<std::size_t>(
      1 << 20, static_cast<std::size_t>(32.0 * 1024 * 1024 * s));
  // N of Formula 1: chunks sized so a handful of them plus the jobs'
  // vertex-value slices fit the (scaled) LLC together.
  config.num_cores = 4;
  return config;
}

inline std::vector<std::string> bench_datasets() {
  return {"livej_s", "orkut_s", "twitter_s", "ukunion_s", "clueweb_s"};
}

/// Fewer iterations/jobs for the two big graphs keeps the suite fast without
/// touching the comparisons (all schemes see identical job sets).
inline std::size_t bench_jobs_for(const std::string& dataset, std::size_t requested) {
  if (dataset == "clueweb_s" || dataset == "ukunion_s") {
    return std::min<std::size_t>(requested, 8);
  }
  return requested;
}

inline void print_shape(const std::string& claim, bool pass) {
  std::printf("SHAPE %-60s %s\n", claim.c_str(), pass ? "PASS" : "FAIL");
}

inline double seconds(std::uint64_t ns) { return static_cast<double>(ns) / 1e9; }

}  // namespace graphm::bench
