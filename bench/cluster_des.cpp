// Cluster DES benchmark: the Figure-21 node sweep priced by the message-level
// simulator instead of the closed-form engines, plus a service-mode λ sweep
// per backend kind (the JobService story on the simulated cluster).
//
//   node sweep : 64..128 nodes × {-S,-C,-M} × {PowerGraph, Chaos}, paper mix
//                on ukunion_s. SHAPE checks the paper's claims: every scheme
//                speeds up with more nodes, -M scales best on both engines —
//                now as emergent message-level effects.
//   λ sweep    : Poisson arrivals routed through ClusterService per backend
//                kind, shared-structure vs private, reporting the same
//                queue-wait/stream/e2e p50-p95-p99 stats JobService emits.
//
// Emits BENCH_cluster.json. GRAPHM_CLUSTER_SMOKE=1 shrinks everything to a
// few seconds (tiny RMAT graph, 8..16 nodes) for the CI smoke invocation;
// GRAPHM_BENCH_OUT overrides the output path. GRAPHM_TRACE=<path> records
// the final shared-mode λ-sweep run's DES timeline plus a metrics snapshot
// next to it (<path>.metrics.json).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster_service.hpp"
#include "cluster/des_engine.hpp"
#include "cluster/trace_export.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/job_queue.hpp"

using namespace graphm;
using namespace graphm::bench;
using namespace graphm::cluster;

namespace {

bool smoke() { return std::getenv("GRAPHM_CLUSTER_SMOKE") != nullptr; }

}  // namespace

int main() {
  const bool tiny = smoke();
  const auto g = tiny ? graph::generate_rmat(1 << 12, 1 << 15, 42)
                      : graph::load_dataset("ukunion_s", bench_scale());
  const std::size_t num_jobs = tiny ? 8 : 16;
  const auto jobs = runtime::paper_mix(num_jobs, g.num_vertices(), 0x21);
  const auto profiles = dist::profile_jobs(g, jobs);
  const std::vector<std::size_t> node_counts =
      tiny ? std::vector<std::size_t>{8, 16}
           : std::vector<std::size_t>{64, 80, 96, 112, 128};
  const Backend backends[] = {Backend::kPowerGraph, Backend::kChaos};

  const char* out_path = std::getenv("GRAPHM_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_cluster.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"cluster_des\",\n");
  std::fprintf(f,
               "  \"workload\": \"paper mix, %s, %zu jobs, message-level DES\",\n",
               tiny ? "rmat smoke" : "ukunion_s", num_jobs);

  // -------------------------------------------------------------------------
  // Node sweep: Figure 21 under the DES.
  // -------------------------------------------------------------------------
  bool all_speed_up = true;
  bool shared_scales_best = true;
  bool deterministic = true;
  std::fprintf(f, "  \"node_sweep\": {\n");
  for (std::size_t e = 0; e < 2; ++e) {
    const Backend backend = backends[e];
    util::TablePrinter table(std::string("cluster DES: ") + backend_name(backend) +
                             " seconds vs nodes (" + std::to_string(num_jobs) +
                             " jobs)");
    table.set_header({"nodes", "-S", "-C", "-M", "-M loads"});
    double first[3] = {0, 0, 0};
    double last[3] = {0, 0, 0};
    std::fprintf(f, "    \"%s\": {\n", backend_name(backend));
    for (std::size_t ni = 0; ni < node_counts.size(); ++ni) {
      const std::size_t nodes = node_counts[ni];
      dist::ClusterConfig cluster;
      cluster.num_nodes = nodes;
      cluster.num_groups = 1;
      // One vertex-cut per width, shared by the three schemes (and the
      // determinism repeat) — placement is two full edge scans.
      const Placement placement = vertex_cut_placement(g, nodes);
      double seconds[3] = {0, 0, 0};
      double loads[3] = {0, 0, 0};
      for (int k = 0; k < 3; ++k) {
        const dist::DistScheme scheme{static_cast<dist::DistScheme::Kind>(k)};
        const DesEstimate estimate =
            des_run(backend, scheme, profiles, g, cluster, {}, &placement);
        seconds[k] = estimate.seconds;
        loads[k] = estimate.structure_loads;
        if (ni == 0) first[k] = estimate.seconds;
        if (ni + 1 == node_counts.size()) last[k] = estimate.seconds;
        if (ni == 0 && k == 0) {
          // Determinism witness: the same configuration replayed must match
          // event for event and bit for bit.
          const DesEstimate repeat =
              des_run(backend, scheme, profiles, g, cluster, {}, &placement);
          deterministic = deterministic && repeat.trace_hash == estimate.trace_hash &&
                          repeat.seconds == estimate.seconds &&
                          repeat.events == estimate.events;
        }
      }
      table.add_row({std::to_string(nodes), util::TablePrinter::fmt(seconds[0]),
                     util::TablePrinter::fmt(seconds[1]),
                     util::TablePrinter::fmt(seconds[2]),
                     util::TablePrinter::fmt(loads[2], 0)});
      std::fprintf(f,
                   "      \"nodes_%zu\": {\"S_s\": %.6f, \"C_s\": %.6f, \"M_s\": %.6f, "
                   "\"S_loads\": %.0f, \"C_loads\": %.0f, \"M_loads\": %.0f}%s\n",
                   nodes, seconds[0], seconds[1], seconds[2], loads[0], loads[1],
                   loads[2], ni + 1 < node_counts.size() ? "," : "");
    }
    table.print();
    for (int k = 0; k < 3; ++k) {
      all_speed_up = all_speed_up && last[k] < first[k];
    }
    shared_scales_best = shared_scales_best && last[2] < last[0] && last[2] < last[1];
    std::fprintf(f, "    }%s\n", e == 0 ? "," : "");
  }
  std::fprintf(f, "  },\n");

  // -------------------------------------------------------------------------
  // Service-mode λ sweep per backend kind: Poisson arrivals through
  // ClusterService, shared structure vs private.
  // -------------------------------------------------------------------------
  const std::vector<double> lambdas =
      tiny ? std::vector<double>{8.0} : std::vector<double>{4.0, 16.0};
  const std::size_t service_jobs = tiny ? 6 : 12;
  const std::size_t service_nodes = tiny ? 8 : 64;
  const auto service_specs = runtime::paper_mix(service_jobs, g.num_vertices(), 0x5E);
  // One λ unit ≈ 2 ms of simulated time between arrivals at λ=1.
  constexpr std::uint64_t kMeanScaleNs = 2'000'000;

  util::TablePrinter table("cluster DES service: open-loop λ sweep per backend");
  table.set_header({"backend", "mode", "lambda", "jobs/s", "p50 ms", "p95 ms",
                    "queue p95 ms", "loads"});
  bool shared_loads_fewer = true;
  const char* trace_path = obs::trace_env_path();
  std::vector<TraceRecord> traced_records;
  obs::Registry traced_metrics;
  std::fprintf(f, "  \"lambda_sweep\": {\n");
  for (std::size_t e = 0; e < 2; ++e) {
    const Backend backend = backends[e];
    // One service per mode, reused across the λ sweep: shard copy, placement
    // and the per-spec profile cache are construction/first-run work the
    // class amortizes across run() calls (each run is independent).
    std::vector<std::unique_ptr<ClusterService>> services(2);
    for (int shared = 0; shared < 2; ++shared) {
      std::vector<BackendConfig> spec(1);
      spec[0].dataset = "main";
      spec[0].engine = backend;
      spec[0].shared_structure = shared == 1;
      spec[0].num_nodes = service_nodes;
      ClusterServiceConfig config;
      // Flight-recorder check rides the shared mode: each traced run
      // overwrites the last, so the export below holds the final λ.
      config.des.record_trace = trace_path != nullptr && shared == 1;
      services[shared] = std::make_unique<ClusterService>(g, spec, config);
    }
    std::fprintf(f, "    \"%s\": {\n", backend_name(backend));
    for (std::size_t li = 0; li < lambdas.size(); ++li) {
      const double lambda = lambdas[li];
      const auto offsets = runtime::poisson_arrivals(service_jobs, lambda, kMeanScaleNs,
                                                     0xFEED + li);
      std::vector<Submission> submissions(service_jobs);
      for (std::size_t j = 0; j < service_jobs; ++j) {
        submissions[j].spec = service_specs[j];
        submissions[j].arrival_ns = offsets[j];
        submissions[j].dataset = "main";
      }
      double loads_by_mode[2] = {0, 0};
      std::fprintf(f, "      \"lambda_%g\": {\n", lambda);
      for (int shared = 1; shared >= 0; --shared) {
        const auto stats = services[shared]->run(submissions);
        const auto& s = stats[0];
        if (shared == 1 && trace_path != nullptr) {
          traced_records = services[shared]->last_trace();
          services[shared]->publish_metrics(traced_metrics, stats);
        }
        loads_by_mode[shared] = s.structure_loads;
        const char* mode = shared == 1 ? "shared" : "private";
        table.add_row({backend_name(backend), mode, util::TablePrinter::fmt(lambda, 0),
                       util::TablePrinter::fmt(s.sustained_jobs_per_s, 1),
                       util::TablePrinter::fmt(s.e2e.p50_ns / 1e6, 2),
                       util::TablePrinter::fmt(s.e2e.p95_ns / 1e6, 2),
                       util::TablePrinter::fmt(s.queue_wait.p95_ns / 1e6, 2),
                       util::TablePrinter::fmt(s.structure_loads, 0)});
        std::fprintf(f,
                     "        \"%s\": {\"completed\": %llu, \"jobs_per_s\": %.3f, "
                     "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                     "\"queue_wait_p95_ms\": %.3f, \"stream_p95_ms\": %.3f, "
                     "\"loads\": %.0f, \"network_gb\": %.4f}%s\n",
                     mode, static_cast<unsigned long long>(s.completed),
                     s.sustained_jobs_per_s, s.e2e.p50_ns / 1e6, s.e2e.p95_ns / 1e6,
                     s.e2e.p99_ns / 1e6, s.queue_wait.p95_ns / 1e6,
                     s.stream_time.p95_ns / 1e6, s.structure_loads, s.network_gb,
                     shared == 1 ? "," : "");
      }
      shared_loads_fewer = shared_loads_fewer && loads_by_mode[1] < loads_by_mode[0];
      std::fprintf(f, "      }%s\n", li + 1 < lambdas.size() ? "," : "");
    }
    std::fprintf(f, "    }%s\n", e == 0 ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"deterministic\": %s\n}\n", deterministic ? "true" : "false");
  if (std::fclose(f) != 0) {
    std::fprintf(stderr, "short write to %s\n", out_path);
    return 1;
  }

  if (trace_path != nullptr) {
    if (!export_des_trace(trace_path, traced_records)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path);
      return 1;
    }
    const std::string metrics_path = std::string(trace_path) + ".metrics.json";
    std::FILE* mf = std::fopen(metrics_path.c_str(), "w");
    if (mf != nullptr) {
      const std::string json = traced_metrics.json();
      std::fwrite(json.data(), 1, json.size(), mf);
      std::fclose(mf);
    }
    std::printf("wrote %s (%zu trace records)\n", trace_path, traced_records.size());
  }

  table.print();
  print_shape("every scheme speeds up 64->128 nodes (both engines)", all_speed_up);
  print_shape("-M fastest at max nodes on both engines (DES)", shared_scales_best);
  print_shape("DES bit-identical across repeats at fixed seed", deterministic);
  print_shape("shared backend moves the structure fewer times (all lambdas)",
              shared_loads_fewer);
  std::printf("wrote %s\n", out_path);
  return (all_speed_up && shared_scales_best && deterministic && shared_loads_fewer) ? 0
                                                                                     : 1;
}
