// Figure 18: ablation of Section 4's scheduling strategy — GridGraph-M with
// the Formula-5 loading order vs GridGraph-M-without (default pid order).
// Paper: the strategy always helps; on Clueweb12, -M runs in 72.5% of
// -M-without's time.
#include "bench_support.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  util::TablePrinter table("Figure 18: scheduling strategy ablation (normalized time)");
  table.set_header({"dataset", "M-without", "M", "M/M-without"});

  int wins = 0;
  int count = 0;
  for (const std::string& dataset : bench_datasets()) {
    const auto without = run_scheme(
        runtime::Scheme::kShared, dataset, 16, "fig18_nosched",
        [](runtime::ExecutorConfig& config, std::vector<algos::JobSpec>&) {
          config.graphm.use_scheduling = false;
        });
    const auto with = run_scheme(runtime::Scheme::kShared, dataset, 16);
    const double ratio = with.total_s / without.total_s;
    table.add_row({dataset, util::TablePrinter::fmt(1.0),
                   util::TablePrinter::fmt(ratio),
                   util::TablePrinter::fmt(100.0 * ratio, 1) + "%"});
    ++count;
    if (ratio <= 1.05) ++wins;
  }
  table.print();
  print_shape("scheduling strategy never hurts materially (ratio <= 1.05)",
              wins == count);
  return 0;
}
