// Chaos benchmark: the one-week concurrency trace (Figure 2) replayed through
// ClusterService on a two-replica backend pair, fault-free and then under a
// seeded FaultPlan::storm (crashes, slowdowns, a partition). Reports SLO
// percentiles both ways plus the p99 degradation ratio, and SHAPE-checks the
// robustness story: zero jobs lost under the storm (conservation law), at
// least one observed failover, bounded p99 degradation, and bit-identical
// replay of the same seed + plan.
//
// Emits BENCH_cluster_faults.json. GRAPHM_CLUSTER_SMOKE=1 shrinks the trace
// to 48 hours on a tiny RMAT graph for the CI smoke invocation;
// GRAPHM_BENCH_OUT overrides the output path. GRAPHM_TRACE=<path> records the
// storm run's DES trace and writes it there as Perfetto-loadable Chrome JSON
// (crash -> drain -> redispatch shows as job spans migrating between the two
// replica tracks), plus a metrics snapshot next to it (<path>.metrics.json).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster_service.hpp"
#include "cluster/faults.hpp"
#include "cluster/trace_export.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/job_queue.hpp"
#include "service/service_stats.hpp"

using namespace graphm;
using namespace graphm::bench;
using namespace graphm::cluster;

namespace {

bool smoke() { return std::getenv("GRAPHM_CLUSTER_SMOKE") != nullptr; }

/// End-to-end latency percentiles over the completed jobs of one run,
/// aggregated across replicas (the per-backend BackendStats summaries only
/// see their own completions; the SLO story is cluster-wide).
service::LatencySummary e2e_summary(const std::vector<JobReport>& reports,
                                    const std::vector<Submission>& submissions) {
  std::vector<std::uint64_t> samples;
  samples.reserve(reports.size());
  for (const JobReport& r : reports) {
    if (r.outcome != service::Outcome::kCompleted) continue;
    samples.push_back(r.completion_ns - submissions[r.job].arrival_ns);
  }
  return service::summarize_latency(std::move(samples));
}

std::uint64_t completed_of(const std::vector<JobReport>& reports) {
  std::uint64_t n = 0;
  for (const JobReport& r : reports) {
    if (r.outcome == service::Outcome::kCompleted) ++n;
  }
  return n;
}

bool conserved(const std::vector<JobReport>& reports, std::size_t submitted) {
  // Every submission must hold a terminal outcome — nothing lost, nothing
  // counted twice (reports are keyed by submission index).
  if (reports.size() != submitted) return false;
  for (std::size_t j = 0; j < reports.size(); ++j) {
    if (reports[j].job != j) return false;
  }
  return true;
}

void emit_summary(std::FILE* f, const char* key, const service::LatencySummary& s,
                  const char* tail) {
  std::fprintf(f,
               "    \"%s\": {\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
               "\"max_ms\": %.3f}%s\n",
               key, s.p50_ns / 1e6, s.p95_ns / 1e6, s.p99_ns / 1e6, s.max_ns / 1e6,
               tail);
}

}  // namespace

int main() {
  const bool tiny = smoke();
  const auto g = tiny ? graph::generate_rmat(1 << 12, 1 << 15, 42)
                      : graph::load_dataset("ukunion_s", bench_scale());

  // The Figure-2 week trace drives the arrival schedule: one trace hour is
  // compressed into 1 ms of simulated time, so the full week replays in
  // ~170 ms of sim clock — long enough for fault windows to open and close
  // mid-traffic.
  constexpr std::uint64_t kHourNs = 1'000'000;
  const std::size_t hours = tiny ? 48 : 168;
  const std::size_t num_jobs = tiny ? 24 : 96;
  const auto trace = runtime::synthesize_week_trace(hours, 7);
  const auto arrivals =
      runtime::trace_to_arrivals(trace, /*job_duration_hours=*/tiny ? 8.0 : 12.0,
                                 kHourNs, num_jobs);
  const auto specs = runtime::paper_mix(arrivals.size(), g.num_vertices(), 0x5E);
  std::vector<Submission> submissions(arrivals.size());
  for (std::size_t j = 0; j < arrivals.size(); ++j) {
    submissions[j].spec = specs[j];
    submissions[j].arrival_ns = arrivals[j];
    submissions[j].dataset = "wk";
  }

  // Two replicas of the one dataset: the failover target is always live
  // unless the storm takes both down at once.
  std::vector<BackendConfig> backends(2);
  for (std::uint32_t b = 0; b < 2; ++b) {
    backends[b].dataset = "wk";
    backends[b].num_nodes = tiny ? 8 : 32;
    backends[b].replica_id = b;
  }
  const char* trace_path = obs::trace_env_path();
  ClusterServiceConfig config;
  config.des.seed = 0xC4A05;
  config.des.record_trace = trace_path != nullptr;
  ClusterService service(g, backends, config);

  // Storm sized to the arrival window so faults land while traffic flows.
  StormConfig storm;
  storm.horizon_ns = arrivals.empty() ? kHourNs : arrivals.back();
  storm.crashes = 2;
  storm.slowdowns = 2;
  storm.partitions = 1;
  storm.min_duration_ns = 4 * kHourNs;
  storm.max_duration_ns = 16 * kHourNs;
  const FaultPlan plan = FaultPlan::storm(0xC4A05, service.num_backends(), storm);

  const char* out_path = std::getenv("GRAPHM_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_cluster_faults.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"cluster_faults\",\n");
  std::fprintf(f,
               "  \"workload\": \"week trace, %s, %zu jobs, 2 replicas, %zu faults\",\n",
               tiny ? "rmat smoke" : "ukunion_s", arrivals.size(), plan.events.size());

  // -------------------------------------------------------------------------
  // Fault-free baseline.
  // -------------------------------------------------------------------------
  service.run(submissions);
  const auto clean_reports = service.last_job_reports();
  const service::LatencySummary clean = e2e_summary(clean_reports, submissions);
  const std::uint64_t clean_completed = completed_of(clean_reports);
  const bool clean_conserved = conserved(clean_reports, submissions.size());

  // -------------------------------------------------------------------------
  // Fault storm, plus a replay of the identical seed + plan.
  // -------------------------------------------------------------------------
  service.run(submissions, plan);
  const auto storm_reports = service.last_job_reports();
  const FaultStats fstats = service.last_fault_stats();
  const std::uint64_t storm_hash = service.last_trace_hash();
  const std::uint64_t storm_events = service.last_events();
  const service::LatencySummary faulted = e2e_summary(storm_reports, submissions);
  const std::uint64_t storm_completed = completed_of(storm_reports);
  const bool storm_conserved = conserved(storm_reports, submissions.size());
  const auto storm_stats = service.run(submissions, plan);
  // (That re-run regenerates last_trace() identically — record_trace keeps the
  // storm timeline available for export below while also serving as the
  // determinism witness.)
  if (trace_path != nullptr) {
    if (!cluster::export_des_trace(trace_path, service.last_trace())) {
      std::fprintf(stderr, "cannot write %s\n", trace_path);
      return 1;
    }
    obs::Registry registry;
    service.publish_metrics(registry, storm_stats);
    const std::string metrics_path = std::string(trace_path) + ".metrics.json";
    std::FILE* mf = std::fopen(metrics_path.c_str(), "w");
    if (mf != nullptr) {
      const std::string json = registry.json();
      std::fwrite(json.data(), 1, json.size(), mf);
      std::fclose(mf);
    }
    std::printf("wrote %s (%zu trace records)\n", trace_path,
                service.last_trace().size());
  }
  const bool deterministic = service.last_trace_hash() == storm_hash &&
                             service.last_events() == storm_events;

  const double p99_ratio =
      clean.p99_ns > 0 ? static_cast<double>(faulted.p99_ns) /
                             static_cast<double>(clean.p99_ns)
                       : 0.0;
  // "Bounded" degradation: a storm may stretch the tail (failed attempts,
  // backoff, queue drains land on the survivor) but must not blow it up by
  // orders of magnitude — the survivor keeps serving throughout.
  const bool bounded_p99 = faulted.p99_ns > 0 && p99_ratio < 50.0;
  const bool observed_failover = fstats.failovers >= 1;
  const bool zero_lost = storm_conserved && clean_conserved;

  util::TablePrinter table("cluster chaos: week trace, fault-free vs storm");
  table.set_header({"run", "completed", "shed", "p50 ms", "p95 ms", "p99 ms"});
  table.add_row({"fault-free", std::to_string(clean_completed), "0",
                 util::TablePrinter::fmt(clean.p50_ns / 1e6, 2),
                 util::TablePrinter::fmt(clean.p95_ns / 1e6, 2),
                 util::TablePrinter::fmt(clean.p99_ns / 1e6, 2)});
  table.add_row({"storm", std::to_string(storm_completed),
                 std::to_string(fstats.failover_shed),
                 util::TablePrinter::fmt(faulted.p50_ns / 1e6, 2),
                 util::TablePrinter::fmt(faulted.p95_ns / 1e6, 2),
                 util::TablePrinter::fmt(faulted.p99_ns / 1e6, 2)});
  table.print();

  util::TablePrinter ftable("fault/failover counters under the storm");
  ftable.set_header({"injected", "crashes", "slow", "parts", "failovers", "redisp",
                     "retries", "rejoins", "shed"});
  ftable.add_row({std::to_string(fstats.faults_injected), std::to_string(fstats.crashes),
                  std::to_string(fstats.slowdowns), std::to_string(fstats.partitions),
                  std::to_string(fstats.failovers),
                  std::to_string(fstats.redispatched_jobs),
                  std::to_string(fstats.retries), std::to_string(fstats.rejoins),
                  std::to_string(fstats.failover_shed)});
  ftable.print();

  std::fprintf(f, "  \"fault_free\": {\n");
  emit_summary(f, "e2e", clean, ",");
  std::fprintf(f, "    \"completed\": %llu\n  },\n",
               static_cast<unsigned long long>(clean_completed));
  std::fprintf(f, "  \"storm\": {\n");
  emit_summary(f, "e2e", faulted, ",");
  std::fprintf(
      f,
      "    \"completed\": %llu,\n    \"faults_injected\": %llu,\n"
      "    \"crashes\": %llu,\n    \"slowdowns\": %llu,\n    \"partitions\": %llu,\n"
      "    \"failovers\": %llu,\n    \"redispatched_jobs\": %llu,\n"
      "    \"retries\": %llu,\n    \"rejoins\": %llu,\n    \"failover_shed\": %llu\n"
      "  },\n",
      static_cast<unsigned long long>(storm_completed),
      static_cast<unsigned long long>(fstats.faults_injected),
      static_cast<unsigned long long>(fstats.crashes),
      static_cast<unsigned long long>(fstats.slowdowns),
      static_cast<unsigned long long>(fstats.partitions),
      static_cast<unsigned long long>(fstats.failovers),
      static_cast<unsigned long long>(fstats.redispatched_jobs),
      static_cast<unsigned long long>(fstats.retries),
      static_cast<unsigned long long>(fstats.rejoins),
      static_cast<unsigned long long>(fstats.failover_shed));
  std::fprintf(f, "  \"p99_degradation\": %.3f,\n", p99_ratio);
  std::fprintf(f, "  \"conserved\": %s,\n", zero_lost ? "true" : "false");
  std::fprintf(f, "  \"deterministic\": %s\n}\n", deterministic ? "true" : "false");
  if (std::fclose(f) != 0) {
    std::fprintf(stderr, "short write to %s\n", out_path);
    return 1;
  }

  print_shape("zero jobs lost: every submission reaches a terminal outcome", zero_lost);
  print_shape("at least one failover observed under the storm", observed_failover);
  print_shape("p99 degradation bounded (< 50x fault-free)", bounded_p99);
  print_shape("storm replay bit-identical at fixed seed + plan", deterministic);
  std::printf("wrote %s\n", out_path);
  return (zero_lost && observed_failover && bounded_p99 && deterministic) ? 0 : 1;
}
