// Figure 16: sensitivity to the job-submission frequency lambda on UK-union.
// Paper: the higher the lambda (more tightly packed submissions), the higher
// GraphM's speedup, because more jobs overlap and share each traversal.
#include "bench_support.hpp"

#include "runtime/job_queue.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  util::TablePrinter table("Figure 16: normalized execution time vs lambda (ukunion_s)");
  table.set_header({"lambda", "S", "C", "M", "S/M speedup"});

  double first_speedup = 0.0;
  double last_speedup = 0.0;
  for (const double lambda : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    const std::string tag = "fig16_l" + std::to_string(static_cast<int>(lambda));
    const auto customize = [&](runtime::ExecutorConfig& config,
                               std::vector<algos::JobSpec>& specs) {
      config.arrival_offsets_ns =
          runtime::poisson_arrivals(specs.size(), lambda, 40'000'000, 7);
    };
    const auto s = run_scheme(runtime::Scheme::kSequential, "ukunion_s", 8, tag, customize);
    const auto c = run_scheme(runtime::Scheme::kConcurrent, "ukunion_s", 8, tag, customize);
    const auto m = run_scheme(runtime::Scheme::kShared, "ukunion_s", 8, tag, customize);
    const double speedup = s.total_s / m.total_s;
    table.add_row({util::TablePrinter::fmt(lambda, 0), util::TablePrinter::fmt(1.0),
                   util::TablePrinter::fmt(c.total_s / s.total_s),
                   util::TablePrinter::fmt(m.total_s / s.total_s),
                   util::TablePrinter::fmt(speedup)});
    if (first_speedup == 0.0) first_speedup = speedup;
    last_speedup = speedup;
  }
  table.print();
  print_shape("speedup grows with lambda (paper: higher lambda, higher gain)",
              last_speedup > first_speedup);
  return 0;
}
