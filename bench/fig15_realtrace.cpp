// Figure 15: replaying the Figure-2 production trace (compressed) on every
// dataset. Paper: GridGraph-M improves throughput 1.5-7.1x over -S and
// 1.48-9.8x over -C across datasets.
#include "bench_support.hpp"

#include "runtime/job_queue.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  util::TablePrinter table("Figure 15: trace replay (normalized total time)");
  table.set_header({"dataset", "S", "C", "M", "S/M", "C/M"});

  bool m_wins = true;
  for (const std::string& dataset : bench_datasets()) {
    // 24 trace hours compressed to 2 ms each; the job mix follows the trace.
    const auto trace = runtime::synthesize_week_trace(24, 42);
    const auto arrivals = runtime::trace_to_arrivals(trace, 8.0, 2'000'000, 16);
    const auto customize = [&](runtime::ExecutorConfig& config,
                               std::vector<algos::JobSpec>& specs) {
      specs.resize(std::min<std::size_t>(specs.size(), arrivals.size()));
      config.arrival_offsets_ns.assign(arrivals.begin(),
                                       arrivals.begin() + specs.size());
    };
    const auto s = run_scheme(runtime::Scheme::kSequential, dataset, 16, "fig15", customize);
    const auto c = run_scheme(runtime::Scheme::kConcurrent, dataset, 16, "fig15", customize);
    const auto m = run_scheme(runtime::Scheme::kShared, dataset, 16, "fig15", customize);

    table.add_row({dataset, util::TablePrinter::fmt(1.0),
                   util::TablePrinter::fmt(c.total_s / s.total_s),
                   util::TablePrinter::fmt(m.total_s / s.total_s),
                   util::TablePrinter::fmt(s.total_s / m.total_s),
                   util::TablePrinter::fmt(c.total_s / m.total_s)});
    m_wins = m_wins && m.total_s < s.total_s && m.total_s < c.total_s;
  }
  table.print();
  print_shape("-M fastest under the real trace on every dataset", m_wins);
  return 0;
}
