// Table 2: properties of the dataset stand-ins (DESIGN.md section 4 maps
// each to the paper's graph and explains the scaling).
#include "bench_support.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  const double scale = bench_scale();
  util::TablePrinter table("Table 2: graph datasets (stand-ins at scale " +
                           util::TablePrinter::fmt(scale, 2) + ")");
  table.set_header({"dataset", "paper analogue", "vertices", "edges", "size MB",
                    "max out-deg", "in sim-memory?"});

  const std::size_t memory_budget = bench_platform().memory_bytes;
  bool split_matches = true;
  for (const auto& spec : graph::dataset_specs()) {
    const auto g = graph::load_dataset(spec.name, scale);
    const double mb = static_cast<double>(g.data_bytes()) / 1e6;
    const bool fits = g.data_bytes() <= memory_budget;
    table.add_row({spec.name, spec.paper_name, std::to_string(g.num_vertices()),
                   std::to_string(g.num_edges()), util::TablePrinter::fmt(mb, 1),
                   std::to_string(g.max_out_degree()), fits ? "yes" : "no"});
    split_matches = split_matches && fits == spec.fits_in_memory;
  }
  table.print();
  std::printf("simulated memory budget: %.1f MB\n", memory_budget / 1e6);
  print_shape("in-memory/out-of-core split matches the paper's Table 2", split_matches);
  return 0;
}
