// Closed-loop SLO guard benchmark: the one-week concurrency trace replayed
// through a two-replica ClusterService under a seeded fault storm, with
// static admission (kImmediate: admit everything, suffer the queues) against
// adaptive admission (kAdaptive: obs::SloMonitor burn-rate tracking sheds
// best-effort work while an objective is Critical). The SLO threshold is
// derived from the measured fault-free p99 — deterministic in the DES — so
// the same margin applies at every scale.
//
// Headline metrics (bench/baselines/BENCH_slo.json, tools/bench_compare.py):
// goodput (completions inside the SLO per sim-second of offered load) and
// p99 of admitted jobs, adaptive vs static at equal offered load. The SHAPE
// story: under the storm, adaptive keeps admitted-job p99 within the SLO
// threshold while static blows through it, at equal-or-better goodput.
//
// Emits BENCH_slo.json. GRAPHM_SLO_SMOKE=1 shrinks the trace to 48 hours on
// a tiny RMAT graph for the CI smoke invocation; GRAPHM_BENCH_OUT overrides
// the output path. GRAPHM_TRACE=<path> records the adaptive storm run's DES
// trace (SLO sheds and tri-state transitions render on the "slo" track) plus
// a metrics snapshot next to it (<path>.metrics.json) including the
// graphm.slo.* instruments.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster_service.hpp"
#include "cluster/faults.hpp"
#include "cluster/trace_export.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "runtime/job_queue.hpp"
#include "service/service_stats.hpp"

using namespace graphm;
using namespace graphm::bench;
using namespace graphm::cluster;

namespace {

bool smoke() { return std::getenv("GRAPHM_SLO_SMOKE") != nullptr; }

constexpr std::uint64_t kHourNs = 1'000'000;  // one trace hour = 1 ms sim

struct RunSummary {
  std::uint64_t completed = 0;
  std::uint64_t good = 0;       // completed within the SLO threshold
  std::uint64_t slo_shed = 0;
  std::uint64_t p99_ns = 0;     // over admitted (completed) jobs
  double goodput = 0.0;         // good completions / offered-load second
};

RunSummary summarize(const std::vector<JobReport>& reports,
                     const std::vector<Submission>& submissions,
                     const FaultStats& fstats, std::uint64_t threshold_ns,
                     std::uint64_t span_ns) {
  RunSummary s;
  std::vector<std::uint64_t> latencies;
  latencies.reserve(reports.size());
  for (const JobReport& r : reports) {
    if (r.outcome != service::Outcome::kCompleted) continue;
    ++s.completed;
    const std::uint64_t e2e = r.completion_ns - submissions[r.job].arrival_ns;
    latencies.push_back(e2e);
    if (e2e <= threshold_ns) ++s.good;
  }
  s.slo_shed = fstats.slo_shed;
  s.p99_ns = service::summarize_latency(std::move(latencies)).p99_ns;
  s.goodput = span_ns > 0 ? static_cast<double>(s.good) / seconds(span_ns) : 0.0;
  return s;
}

/// Static is today's baseline: admit everything, run everything to
/// completion, late or not. Adaptive is the whole closed loop: burn-rate
/// tracking sheds over-quota work while Critical, and work that turns late
/// anyway is aborted at its deadline — which records the violation right
/// then, so the burn windows see the storm while it is happening instead of
/// when the stragglers finally finish.
std::vector<BackendConfig> make_backends(bool tiny, service::AdmissionPolicy policy,
                                         bool cancel_past_deadline) {
  std::vector<BackendConfig> backends(2);
  for (std::uint32_t b = 0; b < 2; ++b) {
    backends[b].dataset = "wk";
    backends[b].num_nodes = tiny ? 8 : 32;
    backends[b].max_concurrent = 2;
    backends[b].replica_id = b;
    backends[b].policy = policy;
    backends[b].cancel_past_deadline = cancel_past_deadline;
    // While Critical, shed arrivals as soon as anything at all is queued —
    // a storm-degraded backend has no business building backlog.
    backends[b].adaptive_queue_quota = 2;
  }
  return backends;
}

void emit_run(std::FILE* f, const char* key, const RunSummary& s, const char* tail) {
  std::fprintf(f,
               "    \"%s\": {\"completed\": %llu, \"good\": %llu, "
               "\"slo_shed\": %llu, \"p99_ms\": %.3f, \"goodput_per_s\": %.1f}%s\n",
               key, static_cast<unsigned long long>(s.completed),
               static_cast<unsigned long long>(s.good),
               static_cast<unsigned long long>(s.slo_shed), s.p99_ns / 1e6,
               s.goodput, tail);
}

}  // namespace

int main() {
  const bool tiny = smoke();
  const auto g = tiny ? graph::generate_rmat(1 << 12, 1 << 15, 42)
                      : graph::load_dataset("ukunion_s", bench_scale());

  // Week trace drives arrivals (one trace hour = 1 ms sim), same compression
  // as bench_cluster_faults so fault windows open and close mid-traffic.
  // At full scale the jobs are an order of magnitude heavier, so the trace
  // hour stretches to keep the cluster service-dominated rather than
  // saturated: admission feedback must arrive while admissions still happen.
  const std::uint64_t hour_ns = tiny ? kHourNs : 4 * kHourNs;
  const std::size_t hours = tiny ? 48 : 168;
  const std::size_t num_jobs = tiny ? 64 : 96;
  const auto trace = runtime::synthesize_week_trace(hours, 7);
  const auto arrivals = runtime::trace_to_arrivals(
      trace, /*job_duration_hours=*/tiny ? 8.0 : 12.0, hour_ns, num_jobs);
  const auto specs = runtime::paper_mix(arrivals.size(), g.num_vertices(), 0x51);
  const std::uint64_t span_ns = arrivals.empty() ? hour_ns : arrivals.back();

  // -------------------------------------------------------------------------
  // Calibration: fault-free static run with no deadlines measures the clean
  // p99; the SLO threshold is that p99 with headroom. Deterministic in the
  // DES, so the margin is scale-independent.
  // -------------------------------------------------------------------------
  std::vector<Submission> calibration(arrivals.size());
  for (std::size_t j = 0; j < arrivals.size(); ++j) {
    calibration[j].spec = specs[j];
    calibration[j].arrival_ns = arrivals[j];
    calibration[j].dataset = "wk";
  }
  ClusterServiceConfig calib_config;
  calib_config.des.seed = 0x510;
  ClusterService calibrator(
      g,
      make_backends(tiny, service::AdmissionPolicy::kImmediate,
                    /*cancel_past_deadline=*/false),
      calib_config);
  calibrator.run(calibration);
  std::vector<std::uint64_t> clean_latencies;
  std::uint64_t clean_max = 0;
  for (const JobReport& r : calibrator.last_job_reports()) {
    if (r.outcome == service::Outcome::kCompleted) {
      clean_latencies.push_back(r.completion_ns - calibration[r.job].arrival_ns);
      clean_max = std::max(clean_max, clean_latencies.back());
    }
  }
  const std::uint64_t clean_p99 =
      service::summarize_latency(std::move(clean_latencies)).p99_ns;
  // p99 * 1.5, clamped above the fault-free max: the objective must be
  // satisfiable with zero violations on a healthy cluster, or the detector
  // would be reacting to the workload instead of the faults.
  const std::uint64_t threshold_ns = std::max<std::uint64_t>(
      1, std::max(clean_p99 + clean_p99 / 2, clean_max + clean_max / 10));

  // The guarded submissions: every job carries a deadline equal to the SLO
  // budget, so "good" (completed within threshold) and "met the deadline"
  // are the same predicate on both policies.
  std::vector<Submission> submissions = calibration;
  for (Submission& s : submissions) {
    s.deadline_ns = service::deadline_from(s.arrival_ns, threshold_ns);
  }

  obs::SloSpec objective;
  objective.name = "e2e";
  objective.target_quantile = 0.99;  // 1% error budget: storm violations dominate
  objective.threshold_ns = threshold_ns;
  objective.window_ns = 24 * hour_ns;  // 24 trace hours; fast window = 6
  objective.sub_windows = 4;

  // Storm sized to the arrival window, as in bench_cluster_faults.
  StormConfig storm;
  storm.horizon_ns = span_ns;
  storm.crashes = 2;
  storm.slowdowns = tiny ? 3 : 5;
  storm.partitions = 1;
  storm.min_duration_ns = 8 * hour_ns;
  storm.max_duration_ns = (tiny ? 24 : 36) * hour_ns;
  storm.slowdown_factor = tiny ? 8.0 : 12.0;

  const char* trace_path = obs::trace_env_path();

  struct PairResult {
    RunSummary clean;
    RunSummary storm;
    std::unique_ptr<ClusterService> service;       // still holds the storm run
    std::vector<BackendStats> storm_stats;
  };
  const auto run_pair = [&](service::AdmissionPolicy policy, bool cancel,
                            bool record_trace) {
    PairResult result;
    ClusterServiceConfig config;
    config.des.seed = 0x510;
    config.des.record_trace = record_trace;
    config.objectives = {objective};
    result.service = std::make_unique<ClusterService>(
        g, make_backends(tiny, policy, cancel), config);
    ClusterService& service = *result.service;
    const FaultPlan plan = FaultPlan::storm(0x510, service.num_backends(), storm);
    service.run(submissions);
    result.clean = summarize(service.last_job_reports(), submissions,
                             service.last_fault_stats(), threshold_ns, span_ns);
    result.storm_stats = service.run(submissions, plan);
    result.storm = summarize(service.last_job_reports(), submissions,
                             service.last_fault_stats(), threshold_ns, span_ns);
    return result;
  };

  const PairResult statics = run_pair(service::AdmissionPolicy::kImmediate,
                                      /*cancel=*/false, /*record_trace=*/false);
  const PairResult adaptives = run_pair(service::AdmissionPolicy::kAdaptive,
                                        /*cancel=*/true, trace_path != nullptr);
  const RunSummary& static_clean = statics.clean;
  const RunSummary& static_storm = statics.storm;
  const RunSummary& adaptive_clean = adaptives.clean;
  const RunSummary& adaptive_storm = adaptives.storm;

  if (trace_path != nullptr) {
    // The adaptive storm run was the service's last: its trace carries the
    // "slo" track (sheds + tri-state transitions).
    if (!cluster::export_des_trace(trace_path, adaptives.service->last_trace())) {
      std::fprintf(stderr, "cannot write %s\n", trace_path);
      return 1;
    }
    obs::Registry registry;
    adaptives.service->publish_metrics(registry, adaptives.storm_stats);
    const std::string metrics_path = std::string(trace_path) + ".metrics.json";
    std::FILE* mf = std::fopen(metrics_path.c_str(), "w");
    if (mf != nullptr) {
      const std::string json = registry.json();
      std::fwrite(json.data(), 1, json.size(), mf);
      std::fclose(mf);
    }
    std::printf("wrote %s (%zu trace records)\n", trace_path,
                adaptives.service->last_trace().size());
  }

  util::TablePrinter table("SLO guard: week trace, static vs adaptive admission");
  table.set_header({"run", "completed", "good", "slo-shed", "p99 ms", "goodput/s"});
  const auto row = [&table](const char* name, const RunSummary& s) {
    table.add_row({name, std::to_string(s.completed), std::to_string(s.good),
                   std::to_string(s.slo_shed),
                   util::TablePrinter::fmt(s.p99_ns / 1e6, 2),
                   util::TablePrinter::fmt(s.goodput, 1)});
  };
  row("static clean", static_clean);
  row("static storm", static_storm);
  row("adaptive clean", adaptive_clean);
  row("adaptive storm", adaptive_storm);
  table.print();
  std::printf("slo threshold: %.2f ms (clean p99 %.2f ms x 1.5)\n",
              threshold_ns / 1e6, clean_p99 / 1e6);

  // The closed-loop story, as SHAPE checks:
  //  * clean runs never trip the detector — adaptive == static fault-free;
  //  * under the storm, adaptive keeps admitted-job p99 inside the SLO
  //    threshold while static blows through it;
  //  * shedding buys that tail without losing goodput at equal offered load.
  // "Inert when healthy": fault-free, the detector never sheds, everything
  // completes inside the SLO on both policies. (EDF ordering under kAdaptive
  // may permute equal-deadline dispatches, so timings need not be
  // bit-identical — the golden-pin test covers that with a static policy.)
  const bool clean_identical = adaptive_clean.slo_shed == 0 &&
                               adaptive_clean.completed == static_clean.completed &&
                               adaptive_clean.good == adaptive_clean.completed &&
                               static_clean.good == static_clean.completed;
  // Deadline aborts land on the backend's next checkpoint, so an admitted
  // job can finish up to one superstep past its deadline — grant the tail
  // that much grace (5%) rather than tuning the threshold around it.
  const bool adaptive_within_slo =
      adaptive_storm.p99_ns <= threshold_ns + threshold_ns / 20;
  const bool static_blows_slo = static_storm.p99_ns > threshold_ns;
  const bool goodput_held = adaptive_storm.goodput >= static_storm.goodput;
  const bool detector_acted = adaptive_storm.slo_shed > 0;

  const char* out_path = std::getenv("GRAPHM_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_slo.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"slo_guard\",\n");
  std::fprintf(f,
               "  \"workload\": \"week trace, %s, %zu jobs, 2 replicas, "
               "adaptive vs static admission\",\n",
               tiny ? "rmat smoke" : "ukunion_s", submissions.size());
  std::fprintf(f, "  \"slo_threshold_ms\": %.3f,\n", threshold_ns / 1e6);
  std::fprintf(f, "  \"runs\": {\n");
  emit_run(f, "static_clean", static_clean, ",");
  emit_run(f, "static_storm", static_storm, ",");
  emit_run(f, "adaptive_clean", adaptive_clean, ",");
  emit_run(f, "adaptive_storm", adaptive_storm, "");
  std::fprintf(f, "  },\n");
  // Headline metrics for tools/bench_compare.py (direction-aware).
  std::fprintf(f, "  \"goodput_adaptive_storm\": %.1f,\n", adaptive_storm.goodput);
  std::fprintf(f, "  \"p99_adaptive_storm_ms\": %.3f,\n", adaptive_storm.p99_ns / 1e6);
  std::fprintf(f, "  \"shape_pass\": %s\n}\n",
               (clean_identical && adaptive_within_slo && static_blows_slo &&
                goodput_held && detector_acted)
                   ? "true"
                   : "false");
  if (std::fclose(f) != 0) {
    std::fprintf(stderr, "short write to %s\n", out_path);
    return 1;
  }

  print_shape("fault-free: adaptive == static (detector never fires)", clean_identical);
  print_shape("storm: adaptive keeps admitted p99 within the SLO", adaptive_within_slo);
  print_shape("storm: static admission blows through the SLO", static_blows_slo);
  print_shape("storm: adaptive goodput >= static at equal offered load", goodput_held);
  print_shape("storm: the detector actually shed work", detector_acted);
  std::printf("wrote %s\n", out_path);
  return (clean_identical && adaptive_within_slo && static_blows_slo &&
          goodput_held && detector_acted)
             ? 0
             : 1;
}
