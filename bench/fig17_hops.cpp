// Figure 17: 16 BFS or SSSP jobs whose roots are drawn from within 1..5 hops
// of a base vertex on LiveJ. Paper: the closer the roots (fewer hops), the
// stronger the spatial/temporal similarity and the higher GraphM's speedup.
#include "bench_support.hpp"

#include "algos/reference.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  const std::string dataset = "livej_s";
  const auto g = graph::load_dataset(dataset, bench_scale());
  // Base vertex: a well-connected one (vertex with max out-degree).
  const auto degrees = g.out_degrees();
  graph::VertexId base = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (degrees[v] > degrees[base]) base = v;
  }
  const auto levels = algos::reference::bfs_levels(g, base);

  util::TablePrinter table("Figure 17: root distance sweep on livej_s (normalized time)");
  table.set_header({"algo", "hops", "S", "C", "M", "S/M speedup"});

  double near_sum = 0.0;  // mean speedup at hops <= 2
  double far_sum = 0.0;   // mean speedup at hops >= 4
  int near_count = 0;
  int far_count = 0;
  for (const auto kind : {algos::AlgorithmKind::kBfs, algos::AlgorithmKind::kSssp}) {
    for (std::uint32_t hops = 1; hops <= 5; ++hops) {
      const std::string tag =
          std::string("fig17_") + algos::to_string(kind) + "_h" + std::to_string(hops);
      const auto customize = [&](runtime::ExecutorConfig&,
                                 std::vector<algos::JobSpec>& specs) {
        specs = runtime::rooted_mix(kind, specs.size(), levels, hops, 1000 + hops);
      };
      const auto s = run_scheme(runtime::Scheme::kSequential, dataset, 16, tag, customize);
      const auto c = run_scheme(runtime::Scheme::kConcurrent, dataset, 16, tag, customize);
      const auto m = run_scheme(runtime::Scheme::kShared, dataset, 16, tag, customize);
      const double speedup = s.total_s / m.total_s;
      table.add_row({algos::to_string(kind), std::to_string(hops),
                     util::TablePrinter::fmt(1.0),
                     util::TablePrinter::fmt(c.total_s / s.total_s),
                     util::TablePrinter::fmt(m.total_s / s.total_s),
                     util::TablePrinter::fmt(speedup)});
      if (hops <= 2) {
        near_sum += speedup;
        ++near_count;
      } else if (hops >= 4) {
        far_sum += speedup;
        ++far_count;
      }
    }
  }
  table.print();
  // The paper's claim is about the aggregate trend across the BFS and SSSP
  // job sets; individual root draws are noisy at bench scale.
  const double near_avg = near_sum / near_count;
  const double far_avg = far_sum / far_count;
  std::printf("mean S/M speedup: roots within 2 hops %.2fx, beyond 4 hops %.2fx\n",
              near_avg, far_avg);
  print_shape("closer roots give higher mean -M speedup", near_avg >= far_avg * 0.95);
  return 0;
}
