// Table 4: 64 concurrent jobs on the other host systems — GraphChi (real
// shard engine, executed), PowerGraph and Chaos (simulated cluster) — with
// the -S / -C / -M schemes. Paper's shape: every system speeds up with
// GraphM; Chaos-C is *slower* than Chaos-S (disk interference).
#include "bench_support.hpp"

#include <memory>
#include <thread>

#include "dist/chaos_engine.hpp"
#include "dist/powergraph_engine.hpp"
#include "graphm/graphm.hpp"
#include "shard/graphchi_engine.hpp"

using namespace graphm;
using namespace graphm::bench;

namespace {

// GraphChi runs for real on the shard store. Job counts are kept modest on
// the big graphs (bench_jobs_for), as everywhere in the suite.
double run_graphchi(runtime::Scheme scheme, const std::string& dataset, std::size_t jobs) {
  const double scale = bench_scale();
  const shard::ShardStore store = shard::open_dataset_shards(dataset, kPartitions, scale);
  const auto specs = runtime::paper_mix(bench_jobs_for(dataset, jobs),
                                        store.meta().num_vertices, 0x44);
  runtime::ExecutorConfig config;
  config.platform = bench_platform();
  const auto metrics = runtime::run_jobs(scheme, store, specs, config);
  return seconds(metrics.total_time_ns());
}

}  // namespace

int main() {
  util::TablePrinter table("Table 4: other systems, 64-job workload (seconds; sim cluster "
                           "for PowerGraph/Chaos)");
  table.set_header({"system", "dataset", "-S", "-C", "-M", "S/M", "shape"});

  bool graphchi_ok = true;
  for (const std::string& dataset : bench_datasets()) {
    const double s = run_graphchi(runtime::Scheme::kSequential, dataset, 64);
    const double c = run_graphchi(runtime::Scheme::kConcurrent, dataset, 64);
    const double m = run_graphchi(runtime::Scheme::kShared, dataset, 64);
    const bool ok = m < s && m < c;
    graphchi_ok = graphchi_ok && ok;
    table.add_row({"GraphChi", dataset, util::TablePrinter::fmt(s, 2),
                   util::TablePrinter::fmt(c, 2), util::TablePrinter::fmt(m, 2),
                   util::TablePrinter::fmt(s / m), ok ? "ok" : "BAD"});
  }

  // Simulated-cluster systems. Groups per Section 5.1's Table-4 setup.
  const std::map<std::string, std::pair<int, int>> groups = {
      {"livej_s", {8, 8}}, {"orkut_s", {8, 4}}, {"twitter_s", {4, 2}},
      {"ukunion_s", {1, 1}}, {"clueweb_s", {1, 1}}};
  bool power_ok = true;
  bool chaos_ok = true;
  bool chaos_inversion = true;
  for (const std::string& dataset : bench_datasets()) {
    const auto g = graph::load_dataset(dataset, bench_scale());
    const auto jobs = runtime::paper_mix(64, g.num_vertices(), 0x45);
    const auto profiles = dist::profile_jobs(g, jobs);

    dist::ClusterConfig cluster;
    cluster.num_nodes = 128;
    // Scale node memory with the bench scale so Clueweb behaves like the
    // paper's memory-error case for PowerGraph.
    cluster.node_memory_bytes =
        static_cast<std::uint64_t>(1.2 * 1024 * 1024 * bench_scale() / 0.12);

    for (const bool chaos : {false, true}) {
      cluster.num_groups = chaos ? groups.at(dataset).second : groups.at(dataset).first;
      double secs[3];
      bool feasible = true;
      for (int k = 0; k < 3; ++k) {
        dist::DistScheme scheme;
        scheme.kind = static_cast<dist::DistScheme::Kind>(k);
        const auto estimate = chaos ? dist::run_chaos(scheme, profiles, g, cluster)
                                    : dist::run_powergraph(scheme, profiles, g, cluster);
        secs[k] = estimate.seconds;
        feasible = feasible && estimate.feasible;
      }
      const char* name = chaos ? "Chaos" : "PowerGraph";
      if (!feasible) {
        table.add_row({name, dataset, "-", "-", "-", "-", "mem"});
        continue;
      }
      const bool ok = secs[2] < secs[0] && secs[2] < secs[1];
      if (chaos) {
        chaos_ok = chaos_ok && ok;
        chaos_inversion = chaos_inversion && secs[1] > secs[0];
      } else {
        power_ok = power_ok && ok;
      }
      table.add_row({name, dataset, util::TablePrinter::fmt(secs[0], 2),
                     util::TablePrinter::fmt(secs[1], 2),
                     util::TablePrinter::fmt(secs[2], 2),
                     util::TablePrinter::fmt(secs[0] / secs[2]), ok ? "ok" : "BAD"});
    }
  }
  table.print();
  print_shape("GraphChi-M fastest on every dataset", graphchi_ok);
  print_shape("PowerGraph-M fastest where feasible", power_ok);
  print_shape("Chaos-M fastest on every dataset", chaos_ok);
  print_shape("Chaos-C slower than Chaos-S (paper's inversion)", chaos_inversion);
  return 0;
}
