#include "bench_support.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

namespace graphm::bench {

namespace fs = std::filesystem;

BenchResult summarize(const runtime::RunMetrics& m) {
  BenchResult r;
  r.total_s = seconds(m.total_time_ns());
  r.makespan_s = seconds(m.makespan_wall_ns);
  r.compute_s = seconds(m.compute_ns);
  r.io_stall_s = seconds(m.io_stall_ns);
  r.mem_stall_s = seconds(m.mem_stall_ns);
  r.llc_accesses = static_cast<double>(m.llc.accesses);
  r.llc_misses = static_cast<double>(m.llc.misses);
  r.llc_swapped_gb = static_cast<double>(m.llc.bytes_swapped_in) / 1e9;
  r.llc_miss_rate = m.llc.miss_rate();
  r.io_read_gb = static_cast<double>(m.io.read_bytes) / 1e9;
  r.disk_read_gb = static_cast<double>(m.io.disk_read_bytes) / 1e9;
  r.peak_mem_mb = static_cast<double>(m.peak_memory_bytes) / 1e6;
  r.peak_graph_mb = static_cast<double>(m.peak_graph_memory_bytes) / 1e6;
  r.peak_job_mb = static_cast<double>(m.peak_job_memory_bytes) / 1e6;
  r.peak_table_mb = static_cast<double>(m.peak_table_memory_bytes) / 1e6;
  r.avg_lpi = m.average_lpi;
  r.avg_job_time_s = m.average_job_time_ns() / 1e9;
  r.loads = static_cast<double>(m.sharing.partition_loads);
  r.attaches = static_cast<double>(m.sharing.attaches);
  r.suspensions = static_cast<double>(m.sharing.suspensions);
  r.barriers = static_cast<double>(m.sharing.chunk_barriers);
  return r;
}

namespace {

std::vector<double*> fields(BenchResult& r) {
  return {&r.total_s,        &r.makespan_s,   &r.compute_s,    &r.io_stall_s,
          &r.mem_stall_s,    &r.llc_accesses, &r.llc_misses,   &r.llc_swapped_gb,
          &r.llc_miss_rate,  &r.io_read_gb,   &r.disk_read_gb, &r.peak_mem_mb,
          &r.peak_graph_mb,  &r.peak_job_mb,  &r.peak_table_mb, &r.avg_lpi,
          &r.avg_job_time_s, &r.loads,        &r.attaches,     &r.suspensions,
          &r.barriers};
}

bool load_result(const std::string& path, BenchResult& r) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  bool ok = true;
  for (double* field : fields(r)) {
    if (std::fscanf(f, "%lf", field) != 1) {
      ok = false;
      break;
    }
  }
  std::fclose(f);
  return ok;
}

void save_result(const std::string& path, BenchResult r) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;
  for (double* field : fields(r)) std::fprintf(f, "%.17g\n", *field);
  std::fclose(f);
}

}  // namespace

BenchResult run_scheme(runtime::Scheme scheme, const std::string& dataset,
                       std::size_t requested_jobs, const std::string& tag,
                       const Customize& customize) {
  const double scale = bench_scale();
  const std::size_t num_jobs = bench_jobs_for(dataset, requested_jobs);

  std::ostringstream key;
  key << "result_" << scheme_name(scheme) << "_" << dataset << "_" << num_jobs << "_"
      << scale << (tag.empty() ? "" : "_" + tag);
  const fs::path dir = fs::path(graph::dataset_cache_dir()) / "bench_results";
  fs::create_directories(dir);
  const std::string cache_path = (dir / (key.str() + ".txt")).string();

  const bool no_cache = std::getenv("GRAPHM_NO_CACHE") != nullptr;
  BenchResult cached;
  if (!no_cache && load_result(cache_path, cached)) return cached;

  const grid::GridStore store = grid::open_dataset_grid(dataset, kPartitions, scale);
  auto jobs = runtime::paper_mix(num_jobs, store.meta().num_vertices, 0xBEEF);
  runtime::ExecutorConfig config;
  config.platform = bench_platform();
  if (customize) customize(config, jobs);

  const BenchResult result = summarize(runtime::run_jobs(scheme, store, jobs, config));
  if (!no_cache) save_result(cache_path, result);
  return result;
}

}  // namespace graphm::bench
