// Figure 9: total execution time of 16 concurrent jobs under GridGraph-S /
// GridGraph-C / GridGraph-M, normalized to GridGraph-S, for all five graphs.
// Paper: -M improves throughput ~2.6x/1.73x (in-memory) and ~11.6x/13x
// (out-of-core) over -S/-C.
#include "bench_support.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  util::TablePrinter table("Figure 9: normalized total execution time, 16 concurrent jobs");
  table.set_header({"dataset", "GridGraph-S", "GridGraph-C", "GridGraph-M",
                    "S/M speedup", "C/M speedup"});

  double in_memory_speedup = 0.0;
  int in_memory_count = 0;
  double ooc_speedup = 0.0;
  int ooc_count = 0;
  bool m_wins_everywhere = true;

  for (const std::string& dataset : bench_datasets()) {
    const auto s = run_scheme(runtime::Scheme::kSequential, dataset, 16);
    const auto c = run_scheme(runtime::Scheme::kConcurrent, dataset, 16);
    const auto m = run_scheme(runtime::Scheme::kShared, dataset, 16);

    const double sm = s.total_s / m.total_s;
    const double cm = c.total_s / m.total_s;
    table.add_row({dataset, util::TablePrinter::fmt(1.0),
                   util::TablePrinter::fmt(c.total_s / s.total_s),
                   util::TablePrinter::fmt(m.total_s / s.total_s),
                   util::TablePrinter::fmt(sm), util::TablePrinter::fmt(cm)});

    if (graph::dataset_spec(dataset).fits_in_memory) {
      in_memory_speedup += sm;
      ++in_memory_count;
    } else {
      ooc_speedup += sm;
      ++ooc_count;
    }
    m_wins_everywhere = m_wins_everywhere && m.total_s < s.total_s && m.total_s < c.total_s;
  }
  table.print();

  const double in_mem_avg = in_memory_speedup / in_memory_count;
  const double ooc_avg = ooc_speedup / ooc_count;
  std::printf("average S/M speedup: in-memory %.2fx, out-of-core %.2fx\n", in_mem_avg, ooc_avg);
  print_shape("GridGraph-M fastest on every dataset", m_wins_everywhere);
  print_shape("out-of-core speedup exceeds in-memory speedup", ooc_avg > in_mem_avg);
  print_shape("in-memory speedup > 1.2x (paper: ~2.6x)", in_mem_avg > 1.2);
  print_shape("out-of-core speedup > 3x (paper: ~11.6x)", ooc_avg > 3.0);
  return 0;
}
