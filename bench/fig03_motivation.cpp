// Figure 3: the motivation experiment — running 1/2/4/8 concurrent jobs of
// the SAME algorithm on GridGraph-C (independent copies) on Twitter:
// (a) total memory usage grows with the job count,
// (b) total LLC misses grow,
// (c) the average LPI (LLC misses per instruction) grows (~10% at 8 jobs),
// (d) the average per-job execution time grows.
#include "bench_support.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  const char* dataset = "twitter_s";
  const algos::AlgorithmKind kinds[] = {
      algos::AlgorithmKind::kPageRank, algos::AlgorithmKind::kWcc,
      algos::AlgorithmKind::kBfs, algos::AlgorithmKind::kSssp};

  util::TablePrinter table("Figure 3: concurrent jobs on GridGraph-C over twitter_s");
  table.set_header({"algo", "#jobs", "(a) mem MB", "(b) LLC misses M", "(c) LPI",
                    "(d) avg job time s"});

  bool memory_grows = true;
  bool misses_grow = true;
  bool lpi_grows = true;
  bool time_grows = true;

  // Warm the host's file cache and the dataset files so the 1-job runs are
  // not polluted by one-time cold costs.
  run_scheme(runtime::Scheme::kConcurrent, dataset, 1, "fig03_warmup",
             [&](runtime::ExecutorConfig&, std::vector<algos::JobSpec>& specs) {
               specs = runtime::uniform_mix(algos::AlgorithmKind::kBfs, specs.size(), 2, 1);
             });

  for (const auto kind : kinds) {
    double prev_mem = 0, prev_miss = 0, first_lpi = 0, last_lpi = 0, prev_time = 0;
    for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
      const std::string tag = std::string("fig03_") + algos::to_string(kind);
      const auto r = run_scheme(
          runtime::Scheme::kConcurrent, dataset, jobs, tag,
          [&](runtime::ExecutorConfig&, std::vector<algos::JobSpec>& specs) {
            const auto uniform = runtime::uniform_mix(
                kind, specs.size(), graph::load_dataset(dataset, bench_scale()).num_vertices(),
                11);
            specs = uniform;
          });
      table.add_row({algos::to_string(kind), std::to_string(jobs),
                     util::TablePrinter::fmt(r.peak_mem_mb, 1),
                     util::TablePrinter::fmt(r.llc_misses / 1e6, 2),
                     util::TablePrinter::fmt(r.avg_lpi, 5),
                     util::TablePrinter::fmt(r.avg_job_time_s, 3)});
      if (jobs == 1) {
        first_lpi = r.avg_lpi;
      } else {
        memory_grows = memory_grows && r.peak_mem_mb > prev_mem;
        misses_grow = misses_grow && r.llc_misses > prev_miss;
        // Contention signal: compare against the 2-job point — the 1-job
        // runs carry one-time cold costs that dominate at bench scale.
        if (jobs > 2) time_grows = time_grows && r.avg_job_time_s > prev_time * 0.95;
      }
      prev_mem = r.peak_mem_mb;
      prev_miss = r.llc_misses;
      prev_time = r.avg_job_time_s;
      last_lpi = r.avg_lpi;
    }
    // The paper measures ~10% LPI growth from fine-grained cache interference
    // between co-scheduled jobs; the scaled simulator interleaves at chunk
    // granularity, so the check is that sharing-free concurrency at least
    // never *improves* LPI (GridGraph-M does, see fig13).
    lpi_grows = lpi_grows && last_lpi > first_lpi * 0.95;
  }
  table.print();
  print_shape("(a) memory usage grows with #jobs", memory_grows);
  print_shape("(b) total LLC misses grow with #jobs", misses_grow);
  print_shape("(c) average LPI does not improve with more jobs", lpi_grows);
  print_shape("(d) average per-job time grows with contention (2->8)", time_grows);
  return 0;
}
