// Bench support: scheme runner with a disk-backed result cache so the
// per-figure binaries (which share the same underlying 16-job S/C/M runs)
// compute each configuration once per cache directory.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace graphm::bench {

/// Flat, serializable summary of one scheme run.
struct BenchResult {
  double total_s = 0;       // figure-9 style total execution time
  double makespan_s = 0;
  double compute_s = 0;
  double io_stall_s = 0;
  double mem_stall_s = 0;
  double llc_accesses = 0;
  double llc_misses = 0;
  double llc_swapped_gb = 0;
  double llc_miss_rate = 0;
  double io_read_gb = 0;
  double disk_read_gb = 0;
  double peak_mem_mb = 0;
  double peak_graph_mb = 0;
  double peak_job_mb = 0;
  double peak_table_mb = 0;
  double avg_lpi = 0;
  double avg_job_time_s = 0;
  double loads = 0;
  double attaches = 0;
  double suspensions = 0;
  double barriers = 0;
};

BenchResult summarize(const runtime::RunMetrics& metrics);

using Customize =
    std::function<void(runtime::ExecutorConfig&, std::vector<algos::JobSpec>&)>;

/// Runs `requested_jobs` of the paper mix on `dataset` under `scheme`,
/// honouring the shared bench platform/scale. Results are cached on disk
/// keyed by (scheme, dataset, jobs, scale, tag); pass a distinct `tag`
/// whenever `customize` changes the configuration. GRAPHM_NO_CACHE=1
/// disables the cache.
BenchResult run_scheme(runtime::Scheme scheme, const std::string& dataset,
                       std::size_t requested_jobs, const std::string& tag = "",
                       const Customize& customize = nullptr);

}  // namespace graphm::bench
