// Figure 13: LLC miss rate of 16 jobs per scheme. Paper: on UK-union the
// miss rate drops from 45.3% (-S) / 43.3% (-C) to 15.69% (-M) because the
// shared chunk is loaded once and reused by every job.
#include "bench_support.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  util::TablePrinter table("Figure 13: LLC miss rate (%), 16 jobs");
  table.set_header({"dataset", "GridGraph-S", "GridGraph-C", "GridGraph-M"});

  bool m_lowest = true;
  for (const std::string& dataset : bench_datasets()) {
    const auto s = run_scheme(runtime::Scheme::kSequential, dataset, 16);
    const auto c = run_scheme(runtime::Scheme::kConcurrent, dataset, 16);
    const auto m = run_scheme(runtime::Scheme::kShared, dataset, 16);
    table.add_row({dataset, util::TablePrinter::fmt(100.0 * s.llc_miss_rate, 1),
                   util::TablePrinter::fmt(100.0 * c.llc_miss_rate, 1),
                   util::TablePrinter::fmt(100.0 * m.llc_miss_rate, 1)});
    m_lowest = m_lowest && m.llc_miss_rate <= s.llc_miss_rate + 1e-9 &&
               m.llc_miss_rate <= c.llc_miss_rate + 1e-9;
  }
  table.print();
  print_shape("-M has the lowest LLC miss rate on every dataset", m_lowest);
  return 0;
}
