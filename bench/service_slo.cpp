// Open-loop service-level benchmark: the fig09-style mixed job stream
// submitted to the always-on JobService under three execution modes —
//   service   : GraphM sharing groups with dynamic mid-stream attach (-M,
//               open-loop);
//   isolated  : one private loader per job, all jobs concurrent (-C as a
//               service);
//   sequential: one worker, private loaders (-S as a service; queue wait
//               dominates under load).
// Every mode replays the *identical* arrival streams: a Poisson λ sweep
// (Figure 16's axis) and the synthesized Figure-2 week trace. Reported per
// mode: sustained throughput, p50/p95/p99 end-to-end latency (measured and
// modeled), queue wait, and the sharing economy (loads vs attaches vs
// mid-round attaches). Emits BENCH_service.json.
//
// GRAPHM_SERVICE_SMOKE=1 shrinks the graph and job counts to a few seconds
// (the CI smoke invocation). GRAPHM_BENCH_OUT overrides the output path.
// GRAPHM_TRACE=<path> turns the flight recorder on and writes a
// Perfetto-loadable Chrome trace of the week-trace service run there, plus a
// metrics snapshot next to it (<path>.metrics.json).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "grid/grid_store.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "runtime/job_queue.hpp"
#include "runtime/workloads.hpp"
#include "service/job_service.hpp"
#include "util/table_printer.hpp"

using namespace graphm;

namespace {

bool smoke() { return std::getenv("GRAPHM_SERVICE_SMOKE") != nullptr; }

struct ModeResult {
  std::string mode;
  service::ServiceStats stats;
  core::SharingController::Stats sharing;
};

/// Replays `offsets` (ns) open-loop against a fresh service and returns the
/// stats. The submitter thread paces submissions on the service clock.
ModeResult run_mode(const grid::GridStore& store, const std::vector<algos::JobSpec>& jobs,
                    const std::vector<std::uint64_t>& offsets, service::ExecMode mode,
                    std::size_t workers, const char* label) {
  service::ServiceConfig config;
  config.mode = mode;
  config.workers = workers;
  config.policy = service::AdmissionPolicy::kImmediate;
  service::JobService svc(store, config);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::uint64_t offset = j < offsets.size() ? offsets[j] : 0;
    while (svc.now_ns() < offset) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(
          std::min<std::uint64_t>(offset - svc.now_ns(), 200'000)));
    }
    svc.submit(jobs[j]);
  }
  svc.drain();
  ModeResult result;
  result.mode = label;
  result.stats = svc.stats();
  result.sharing = svc.sharing_stats();
  if (const char* trace_path = obs::trace_env_path();
      trace_path != nullptr && mode == service::ExecMode::kShared) {
    // Metrics snapshot next to the trace; each shared-mode run overwrites,
    // so the file ends up describing the final (week-trace) service run.
    const std::string metrics_path = std::string(trace_path) + ".metrics.json";
    std::FILE* mf = std::fopen(metrics_path.c_str(), "w");
    if (mf != nullptr) {
      const std::string json = svc.metrics_json();
      std::fwrite(json.data(), 1, json.size(), mf);
      std::fclose(mf);
    }
  }
  return result;
}

void emit_mode(std::FILE* f, const ModeResult& r, const char* tail) {
  const auto& s = r.stats;
  std::fprintf(f,
               "    \"%s\": {\"completed\": %llu, "
               "\"modeled_throughput_jobs_per_s\": %.3f, \"modeled_p50_ms\": %.3f, "
               "\"modeled_p95_ms\": %.3f, \"modeled_p99_ms\": %.3f, "
               "\"exec_modeled_p95_ms\": %.3f, \"wall_throughput_jobs_per_s\": %.3f, "
               "\"wall_p50_ms\": %.3f, \"wall_p95_ms\": %.3f, \"wall_p99_ms\": %.3f, "
               "\"queue_wait_p95_ms\": %.3f, \"peak_concurrency\": %u, "
               "\"loads\": %llu, \"attaches\": %llu, \"mid_round_attaches\": %llu}%s\n",
               r.mode.c_str(), static_cast<unsigned long long>(s.completed),
               s.modeled.sustained_jobs_per_s, s.modeled.e2e.p50_ns / 1e6,
               s.modeled.e2e.p95_ns / 1e6, s.modeled.e2e.p99_ns / 1e6,
               s.exec_modeled.p95_ns / 1e6, s.sustained_jobs_per_s, s.e2e.p50_ns / 1e6,
               s.e2e.p95_ns / 1e6, s.e2e.p99_ns / 1e6, s.queue_wait.p95_ns / 1e6,
               s.peak_concurrency,
               static_cast<unsigned long long>(r.sharing.partition_loads),
               static_cast<unsigned long long>(r.sharing.attaches),
               static_cast<unsigned long long>(r.sharing.mid_round_attaches), tail);
}

void print_rows(util::TablePrinter& table, const std::string& workload,
                const ModeResult& r) {
  const auto& s = r.stats;
  table.add_row({workload, r.mode,
                 util::TablePrinter::fmt(s.modeled.sustained_jobs_per_s, 1),
                 util::TablePrinter::fmt(s.modeled.e2e.p50_ns / 1e6, 2),
                 util::TablePrinter::fmt(s.modeled.e2e.p95_ns / 1e6, 2),
                 util::TablePrinter::fmt(s.sustained_jobs_per_s, 1),
                 util::TablePrinter::fmt(s.e2e.p95_ns / 1e6, 2),
                 util::TablePrinter::fmt(static_cast<double>(s.peak_concurrency), 0),
                 util::TablePrinter::fmt(static_cast<double>(r.sharing.partition_loads), 0),
                 util::TablePrinter::fmt(static_cast<double>(r.sharing.attaches), 0)});
}

void print_shape(const std::string& claim, bool pass) {
  std::printf("SHAPE %-60s %s\n", claim.c_str(), pass ? "PASS" : "FAIL");
}

}  // namespace

int main() {
  const bool tiny = smoke();
  const char* trace_path = obs::trace_env_path();
  if (trace_path != nullptr) obs::Tracer::global().set_enabled(true);
  // The graph must overflow the simulated LLC (256 KB) even in smoke mode:
  // sharing's DRAM-stall advantage — the modeled signal the SHAPE lines
  // check — only exists when streams don't fit the cache.
  const graph::VertexId vertices = tiny ? 1 << 12 : 1 << 13;
  const graph::EdgeCount edges = tiny ? 1 << 16 : 1 << 17;
  const std::size_t num_jobs = tiny ? 8 : 24;
  const std::size_t workers = 16;

  const auto g = graph::generate_rmat(vertices, edges, 42);
  const char* tmp = std::getenv("TMPDIR");
  const std::string path = std::string(tmp != nullptr ? tmp : "/tmp") +
                           "/graphm_bench_service_grid" + (tiny ? "_smoke" : "");
  grid::GridStore::preprocess(g, 8, path);
  const grid::GridStore store = grid::GridStore::open(path);
  const auto jobs = runtime::paper_mix(num_jobs, g.num_vertices(), 0x5E27);

  const std::vector<double> lambdas = tiny ? std::vector<double>{16.0}
                                           : std::vector<double>{4.0, 16.0, 32.0};
  // One "λ unit" of the paper's submission process mapped to ~2 ms of replay
  // time: λ=16 packs the whole stream into a few tens of milliseconds.
  constexpr std::uint64_t kMeanScaleNs = 2'000'000;

  // "model" columns: the measured arrival stream replayed against the
  // modeled per-job times ((wall + DRAM stall)/16 cores + disk stall) on the
  // worker count — the paper-machine view every fig bench reports. "wall"
  // columns are the raw host clock (noisy on small/oversubscribed hosts).
  util::TablePrinter table("service SLO: open-loop job streams, three execution modes");
  table.set_header({"workload", "mode", "jobs/s model", "p50 model", "p95 model",
                    "jobs/s wall", "p95 wall", "peak", "loads", "attaches"});

  const char* out_path = std::getenv("GRAPHM_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_service.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"service_slo\",\n");
  std::fprintf(f,
               "  \"workload\": \"paper mix, rmat %uv/%llue, 8 partitions, %zu jobs, "
               "open-loop\",\n",
               vertices, static_cast<unsigned long long>(edges), num_jobs);
  std::fprintf(f, "  \"modes\": \"service=shared+dynamic-attach, isolated=-C, "
                  "sequential=-S (1 worker)\",\n");

  bool service_wins_throughput = true;
  bool service_p95_not_worse = true;
  bool service_attaches = false;

  std::fprintf(f, "  \"lambda_sweep\": {\n");
  for (std::size_t li = 0; li < lambdas.size(); ++li) {
    const double lambda = lambdas[li];
    const auto offsets =
        runtime::poisson_arrivals(num_jobs, lambda, kMeanScaleNs, 0xFEED + li);
    const auto svc = run_mode(store, jobs, offsets, service::ExecMode::kShared, workers,
                              "service");
    const auto iso = run_mode(store, jobs, offsets, service::ExecMode::kIsolated, workers,
                              "isolated");
    const auto seq = run_mode(store, jobs, offsets, service::ExecMode::kIsolated, 1,
                              "sequential");
    const std::string workload = "lambda=" + util::TablePrinter::fmt(lambda, 0);
    print_rows(table, workload, svc);
    print_rows(table, workload, iso);
    print_rows(table, workload, seq);
    std::fprintf(f, "  \"lambda_%g\": {\n", lambda);
    emit_mode(f, svc, ",");
    emit_mode(f, iso, ",");
    emit_mode(f, seq, "");
    std::fprintf(f, "  }%s\n", li + 1 < lambdas.size() ? "," : "");
    service_wins_throughput = service_wins_throughput &&
                              svc.stats.modeled.sustained_jobs_per_s >=
                                  iso.stats.modeled.sustained_jobs_per_s;
    // p95 at smoke scale is the single longest job; a 5% band keeps exact
    // near-ties from reading as regressions.
    service_p95_not_worse =
        service_p95_not_worse &&
        svc.stats.modeled.e2e.p95_ns <= iso.stats.modeled.e2e.p95_ns * 1.05;
    service_attaches = service_attaches || svc.sharing.attaches > 0;
  }
  std::fprintf(f, "  },\n");

  // Figure-2 week trace replay (compressed): the diurnal concurrency level
  // becomes the submission schedule.
  const auto trace = runtime::synthesize_week_trace(tiny ? 48 : 168, 7);
  const auto trace_offsets = runtime::trace_to_arrivals(
      trace, /*job_duration_hours=*/tiny ? 8.0 : 12.0, /*hour_ns=*/kMeanScaleNs / 2,
      num_jobs);
  // The exported trace covers exactly the week-trace service-mode run: drop
  // the sweep's events first, export right after.
  if (trace_path != nullptr) obs::Tracer::global().clear();
  const auto svc_trace = run_mode(store, jobs, trace_offsets, service::ExecMode::kShared,
                                  workers, "service");
  if (trace_path != nullptr) {
    if (obs::export_tracer(trace_path, obs::Tracer::global(),
                           "graphm service (live clock)")) {
      std::printf("wrote %s (%llu dropped)\n", trace_path,
                  static_cast<unsigned long long>(obs::Tracer::global().dropped()));
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_path);
      return 1;
    }
    obs::Tracer::global().set_enabled(false);
  }
  const auto iso_trace = run_mode(store, jobs, trace_offsets, service::ExecMode::kIsolated,
                                  workers, "isolated");
  const auto seq_trace = run_mode(store, jobs, trace_offsets, service::ExecMode::kIsolated,
                                  1, "sequential");
  print_rows(table, "week-trace", svc_trace);
  print_rows(table, "week-trace", iso_trace);
  print_rows(table, "week-trace", seq_trace);
  std::fprintf(f, "  \"week_trace\": {\n");
  emit_mode(f, svc_trace, ",");
  emit_mode(f, iso_trace, ",");
  emit_mode(f, seq_trace, "");
  std::fprintf(f, "  }\n}\n");
  if (std::fclose(f) != 0) {
    std::fprintf(stderr, "short write to %s\n", out_path);
    return 1;
  }

  table.print();
  print_shape("service mode attaches jobs to shared loads", service_attaches);
  print_shape("service modeled throughput >= isolated (all lambdas)",
              service_wins_throughput);
  print_shape("service modeled p95 latency <= isolated (all lambdas)",
              service_p95_not_worse);
  std::printf("wrote %s\n", out_path);
  return 0;
}
