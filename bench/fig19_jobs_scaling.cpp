// Figure 19: total execution time of 1/2/4/8/16 concurrent PageRank jobs on
// Clueweb12 per scheme. Paper: GridGraph-M's speedup over -S grows with the
// job count (1.79x at 2 jobs up to 5.94x at 16) because the shared traversal
// amortizes over more jobs; with one job the three schemes are comparable.
#include "bench_support.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  const std::string dataset = "clueweb_s";
  util::TablePrinter table("Figure 19: PageRank job-count scaling on clueweb_s (seconds)");
  table.set_header({"#jobs", "S", "C", "M", "S/M speedup"});

  const auto customize = [&](runtime::ExecutorConfig&, std::vector<algos::JobSpec>& specs) {
    specs = runtime::uniform_mix(algos::AlgorithmKind::kPageRank, specs.size(), 1, 19);
    // uniform_mix needs the vertex count only for roots; PageRank ignores it.
    for (auto& spec : specs) spec.max_iterations = 3;
  };

  std::vector<double> speedups;
  double single_gap = 0.0;
  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    const std::string tag = "fig19_" + std::to_string(jobs);
    const auto s = run_scheme(runtime::Scheme::kSequential, dataset, jobs, tag, customize);
    const auto c = run_scheme(runtime::Scheme::kConcurrent, dataset, jobs, tag, customize);
    const auto m = run_scheme(runtime::Scheme::kShared, dataset, jobs, tag, customize);
    const double speedup = s.total_s / m.total_s;
    table.add_row({std::to_string(jobs), util::TablePrinter::fmt(s.total_s, 2),
                   util::TablePrinter::fmt(c.total_s, 2),
                   util::TablePrinter::fmt(m.total_s, 2),
                   util::TablePrinter::fmt(speedup)});
    if (jobs == 1) single_gap = speedup;
    speedups.push_back(speedup);
  }
  table.print();
  print_shape("speedup grows with the number of jobs", speedups.back() > speedups.front());
  print_shape("with one job the schemes are comparable (|S/M - 1| < 0.35)",
              single_gap > 0.65 && single_gap < 1.35);
  return 0;
}
