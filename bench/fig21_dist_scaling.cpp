// Figure 21: scalability of PowerGraph and Chaos (with and without GraphM)
// on the simulated cluster, 64 jobs on UK-union, 64..128 nodes. Paper: all
// schemes speed up with more nodes, and the -M variants scale best (less
// communication/storage redundancy). Each scheme is priced twice: by the
// closed-form engines (src/dist/, the fast path) and by the message-level
// discrete-event simulator (src/cluster/) — the "des" columns — so the
// analytic speedup curve can be checked against emergent cluster behavior.
#include "bench_support.hpp"

#include "cluster/des_engine.hpp"
#include "dist/chaos_engine.hpp"
#include "dist/powergraph_engine.hpp"

using namespace graphm;
using namespace graphm::bench;
using namespace graphm::dist;

int main() {
  const auto g = graph::load_dataset("ukunion_s", bench_scale());
  const auto jobs = runtime::paper_mix(64, g.num_vertices(), 0x21);
  const auto profiles = profile_jobs(g, jobs);

  struct Engine {
    const char* name;
    cluster::Backend backend;
    RunEstimate (*run)(DistScheme, const std::vector<JobProfile>&, const graph::EdgeList&,
                       const ClusterConfig&);
  };
  const Engine engines[] = {{"PowerGraph", cluster::Backend::kPowerGraph, run_powergraph},
                            {"Chaos", cluster::Backend::kChaos, run_chaos}};

  bool shared_scales_best = true;
  bool des_shared_scales_best = true;
  for (const Engine& engine : engines) {
    util::TablePrinter table(std::string("Figure 21: ") + engine.name +
                             " speedup vs nodes (64 jobs, ukunion_s)");
    table.set_header({"nodes", "-S", "-C", "-M", "-S des", "-C des", "-M des"});
    double base[3] = {0, 0, 0};
    double last[3] = {0, 0, 0};
    double des_base[3] = {0, 0, 0};
    double des_last[3] = {0, 0, 0};
    for (const std::size_t nodes : {64u, 80u, 96u, 112u, 128u}) {
      ClusterConfig cluster;
      cluster.num_nodes = nodes;
      cluster.num_groups = 1;
      const cluster::Placement placement = cluster::vertex_cut_placement(g, nodes);
      std::vector<std::string> row{std::to_string(nodes)};
      std::vector<std::string> des_cells;
      for (int k = 0; k < 3; ++k) {
        DistScheme scheme;
        scheme.kind = static_cast<DistScheme::Kind>(k);
        const auto estimate = engine.run(scheme, profiles, g, cluster);
        if (nodes == 64) base[k] = estimate.seconds;
        last[k] = estimate.seconds;
        row.push_back(util::TablePrinter::fmt(base[k] / estimate.seconds));

        const auto des =
            cluster::des_run(engine.backend, scheme, profiles, g, cluster, {}, &placement);
        if (nodes == 64) des_base[k] = des.seconds;
        des_last[k] = des.seconds;
        des_cells.push_back(util::TablePrinter::fmt(des_base[k] / des.seconds));
      }
      for (auto& cell : des_cells) row.push_back(std::move(cell));
      table.add_row(std::move(row));
    }
    table.print();
    // -M must remain the fastest in absolute terms at max scale, under both
    // the analytic model and the DES.
    shared_scales_best = shared_scales_best && last[2] < last[0] && last[2] < last[1];
    des_shared_scales_best =
        des_shared_scales_best && des_last[2] < des_last[0] && des_last[2] < des_last[1];
  }
  print_shape("-M variants fastest at 128 nodes on both engines", shared_scales_best);
  print_shape("-M variants fastest at 128 nodes under the DES", des_shared_scales_best);
  return 0;
}
