// Figure 4: spatial/temporal similarity of concurrent jobs' data accesses.
// (a) percentage of the graph's chunks needed by more than 1/2/4/8 of the
//     live jobs at each sampled "hour" (spatial similarity; paper: >82%),
// (b) average number of jobs re-accessing a shared chunk per hour (temporal
//     similarity; paper: ~7 on average).
// Computed honestly from the jobs' active-vertex bitmaps and the chunk
// tables, stepping a 16-job mix iteration by iteration.
#include "bench_support.hpp"

#include "graphm/graphm.hpp"
#include "grid/stream_engine.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  const double scale = bench_scale();
  const grid::GridStore store = grid::open_dataset_grid("twitter_s", kPartitions, scale);
  sim::Platform platform(bench_platform());
  core::GraphM graphm(store, platform);
  graphm.init();
  const grid::StreamEngine engine(store, platform);

  // Instantiate 16 jobs and drive them iteration-by-iteration in lock-step so
  // we can snapshot the chunk-level overlap each "hour".
  const auto specs = runtime::paper_mix(16, store.meta().num_vertices, 0xF16);
  std::vector<std::unique_ptr<algos::StreamingAlgorithm>> jobs;
  for (const auto& spec : specs) {
    jobs.push_back(algos::make_algorithm(spec));
    jobs.back()->init(store.meta().num_vertices, engine.out_degrees(), nullptr);
  }

  util::TablePrinter table("Figure 4: data-access similarity between 16 concurrent jobs");
  table.set_header({"hour", "% chunks >1 job", ">2", ">4", ">8", "avg accesses/chunk"});

  std::size_t total_chunks = 0;
  for (const auto& t : graphm.chunk_tables()) total_chunks += t.chunks.size();

  bool spatial_high = true;
  double temporal_sum = 0.0;
  int hours = 0;
  for (int hour = 1; hour <= 6; ++hour) {
    // Count, for every chunk, how many live jobs have an active source in it.
    std::vector<std::size_t> counts;
    counts.reserve(total_chunks);
    for (std::uint32_t pid = 0; pid < store.meta().num_partitions; ++pid) {
      for (const auto& chunk : graphm.chunk_tables()[pid].chunks) {
        std::size_t needed_by = 0;
        for (const auto& job : jobs) {
          if (!job->done() && chunk.active_edges(job->active_vertices()) > 0) ++needed_by;
        }
        counts.push_back(needed_by);
      }
    }
    auto pct_over = [&](std::size_t k) {
      std::size_t n = 0;
      for (std::size_t c : counts) {
        if (c > k) ++n;
      }
      return 100.0 * static_cast<double>(n) / static_cast<double>(counts.size());
    };
    double accessed_sum = 0.0;
    std::size_t accessed = 0;
    for (std::size_t c : counts) {
      if (c > 1) {
        accessed_sum += static_cast<double>(c);
        ++accessed;
      }
    }
    const double avg_access = accessed == 0 ? 0.0 : accessed_sum / accessed;
    table.add_row({std::to_string(hour), util::TablePrinter::fmt(pct_over(1), 1),
                   util::TablePrinter::fmt(pct_over(2), 1),
                   util::TablePrinter::fmt(pct_over(4), 1),
                   util::TablePrinter::fmt(pct_over(8), 1),
                   util::TablePrinter::fmt(avg_access, 1)});
    spatial_high = spatial_high && pct_over(1) > 50.0;
    temporal_sum += avg_access;
    ++hours;

    // Advance every live job by one iteration ("one hour" of trace time).
    for (auto& job : jobs) {
      if (job->done()) continue;
      job->iteration_start(hour - 1);
      const auto& active = job->active_vertices();
      sim::Platform scratch;
      std::vector<graph::Edge> buffer;
      for (std::uint32_t pid = 0; pid < store.meta().num_partitions; ++pid) {
        const auto [vb, ve] = store.meta().vertex_range(pid);
        if (!active.any_in_range(vb, ve)) continue;
        store.read_partition(pid, buffer, scratch, 0);
        job->process_edge_block(buffer.data(), buffer.size(), active);
      }
      job->iteration_end();
    }
  }
  table.print();
  print_shape("most chunks shared by >1 job every hour (paper: >82%)", spatial_high);
  print_shape("shared chunks re-accessed by several jobs (paper: ~7)",
              temporal_sum / hours > 3.0);
  return 0;
}
