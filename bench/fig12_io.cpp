// Figure 12: total I/O overhead (bytes actually read from disk) of 16 jobs,
// normalized per dataset. Paper: little difference for in-memory graphs (one
// cold read, then page-cache hits); for UK-union, -M reduces I/O by
// 9.2x/10.1x vs -S/-C, and -C reads more than -S due to cache contention.
#include "bench_support.hpp"

using namespace graphm;
using namespace graphm::bench;

int main() {
  util::TablePrinter table("Figure 12: normalized disk I/O, 16 jobs");
  table.set_header({"dataset", "S", "C", "M", "S GB", "C GB", "M GB"});

  bool in_memory_flat = true;
  bool ooc_m_wins = true;
  double ukunion_sm = 0.0;
  double ukunion_cm = 0.0;

  for (const std::string& dataset : bench_datasets()) {
    const auto s = run_scheme(runtime::Scheme::kSequential, dataset, 16);
    const auto c = run_scheme(runtime::Scheme::kConcurrent, dataset, 16);
    const auto m = run_scheme(runtime::Scheme::kShared, dataset, 16);
    const double base = std::max({s.disk_read_gb, c.disk_read_gb, m.disk_read_gb, 1e-12});
    table.add_row({dataset, util::TablePrinter::fmt(s.disk_read_gb / base),
                   util::TablePrinter::fmt(c.disk_read_gb / base),
                   util::TablePrinter::fmt(m.disk_read_gb / base),
                   util::TablePrinter::fmt(s.disk_read_gb, 3),
                   util::TablePrinter::fmt(c.disk_read_gb, 3),
                   util::TablePrinter::fmt(m.disk_read_gb, 3)});
    if (graph::dataset_spec(dataset).fits_in_memory) {
      // "no much difference": within 2x of each other.
      in_memory_flat = in_memory_flat && c.disk_read_gb < 2.0 * s.disk_read_gb + 1e-12 &&
                       s.disk_read_gb < 2.0 * m.disk_read_gb + 1e-12;
    } else {
      ooc_m_wins = ooc_m_wins && m.disk_read_gb < s.disk_read_gb &&
                   m.disk_read_gb < c.disk_read_gb;
      if (dataset == "ukunion_s") {
        ukunion_sm = s.disk_read_gb / m.disk_read_gb;
        ukunion_cm = c.disk_read_gb / m.disk_read_gb;
      }
    }
  }
  table.print();
  std::printf("UK-union I/O reduction: %.2fx vs S, %.2fx vs C (paper: 9.2x / 10.1x)\n",
              ukunion_sm, ukunion_cm);
  print_shape("in-memory graphs: no big I/O differences", in_memory_flat);
  print_shape("out-of-core: -M reads least from disk", ooc_m_wins);
  print_shape("UK-union reduction vs S > 3x (paper: 9.2x)", ukunion_sm > 3.0);
  return 0;
}
