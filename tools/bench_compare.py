#!/usr/bin/env python3
"""Perf-regression gate: compare BENCH_*.json against bench/baselines/.

Each bench binary emits a BENCH_<name>.json; the committed baselines under
bench/baselines/ hold the blessed smoke-scale numbers (CI runs every bench in
smoke mode, so baselines are smoke-scale too). For every current file that has
a baseline of the same filename, the headline metrics registered below are
compared direction-aware: a metric whose direction is "higher" regresses when
it drops, "lower" when it rises. Any regression worse than the threshold
(default 15%) fails the run; everything is printed as a trajectory table
either way.

Only deterministic headline metrics are gated — the DES benches replay
bit-identically, and service_slo's modeled_* numbers come from the cost model
rather than the wall clock. Wall-clock benches (bench_micro) are deliberately
not baselined: a shared CI runner cannot hold a 15% bar on real time.

Boolean invariants (shape_pass, conserved, deterministic) are gated exactly:
a baseline of true must stay true.

Usage:
  bench_compare.py [--baselines DIR] [--threshold PCT] BENCH_a.json ...
  bench_compare.py --update BENCH_a.json ...   # bless current as baseline

Exits 0 when nothing regressed, 1 on regression or missing/invalid input.
"""

import argparse
import json
import os
import shutil
import sys

# bench-name -> list of (dotted path, direction). A "*" segment fans out over
# every key at that level; missing paths are an error when the baseline has
# them (a headline metric disappearing IS a regression of the bench contract).
HEADLINE = {
    "slo_guard": [
        ("goodput_adaptive_storm", "higher"),
        ("p99_adaptive_storm_ms", "lower"),
        ("shape_pass", "true"),
    ],
    "cluster_faults": [
        ("fault_free.e2e.p99_ms", "lower"),
        ("storm.e2e.p99_ms", "lower"),
        ("p99_degradation", "lower"),
        ("storm.completed", "higher"),
        ("conserved", "true"),
        ("deterministic", "true"),
    ],
    "cluster_des": [
        ("lambda_sweep.*.*.shared.jobs_per_s", "higher"),
        ("lambda_sweep.*.*.shared.p99_ms", "lower"),
    ],
    "service_slo": [
        ("lambda_sweep.*.service.modeled_throughput_jobs_per_s", "higher"),
        ("lambda_sweep.*.service.modeled_p99_ms", "lower"),
    ],
}


def walk(doc, path):
    """Yield (concrete_path, value) for a dotted path with '*' wildcards."""
    parts = path.split(".")

    def rec(node, idx, trail):
        if idx == len(parts):
            yield ".".join(trail), node
            return
        part = parts[idx]
        if part == "*":
            if isinstance(node, dict):
                for key in sorted(node):
                    yield from rec(node[key], idx + 1, trail + [key])
        elif isinstance(node, dict) and part in node:
            yield from rec(node[part], idx + 1, trail + [part])

    yield from rec(doc, 0, [])


def compare_file(current_path, baseline_path, threshold):
    """Return (rows, failures) for one bench file."""
    with open(current_path, encoding="utf-8") as f:
        current = json.load(f)
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)

    bench = baseline.get("bench")
    rows, failures = [], []
    if current.get("bench") != bench:
        failures.append(
            f"{current_path}: bench {current.get('bench')!r} does not match "
            f"baseline {bench!r}"
        )
        return rows, failures
    metrics = HEADLINE.get(bench)
    if metrics is None:
        rows.append((f"{bench}: (no headline metrics registered)", "", "", "", "skip"))
        return rows, failures

    for path, direction in metrics:
        base_vals = dict(walk(baseline, path))
        cur_vals = dict(walk(current, path))
        if not base_vals:
            rows.append((f"{bench}.{path}", "-", "-", "", "no baseline"))
            continue
        for concrete, base in sorted(base_vals.items()):
            label = f"{bench}.{concrete}"
            if concrete not in cur_vals:
                failures.append(f"{label}: headline metric missing from current run")
                rows.append((label, fmt(base), "missing", "", "FAIL"))
                continue
            cur = cur_vals[concrete]
            if direction == "true":
                ok = (cur is True) or (base is not True)
                rows.append((label, str(base), str(cur), "", "ok" if ok else "FAIL"))
                if not ok:
                    failures.append(f"{label}: was {base}, now {cur}")
                continue
            if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)):
                failures.append(f"{label}: non-numeric ({base!r} -> {cur!r})")
                continue
            if base == 0:
                delta = 0.0 if cur == 0 else float("inf")
            else:
                delta = (cur - base) / abs(base)
            regressed = delta < -threshold if direction == "higher" else delta > threshold
            status = "FAIL" if regressed else "ok"
            rows.append((label, fmt(base), fmt(cur), f"{delta * 100:+.1f}%", status))
            if regressed:
                failures.append(
                    f"{label}: {fmt(base)} -> {fmt(cur)} ({delta * 100:+.1f}%, "
                    f"{direction} is better, threshold {threshold * 100:.0f}%)"
                )
    return rows, failures


def fmt(v):
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


def print_table(rows):
    headers = ("metric", "baseline", "current", "delta", "status")
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(5)
    ]
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(r[i].ljust(widths[i]) for i in range(5)))


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="current BENCH_*.json files")
    parser.add_argument(
        "--baselines",
        default=os.path.join(os.path.dirname(__file__), "..", "bench", "baselines"),
    )
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="regression threshold in percent (default 15)")
    parser.add_argument("--update", action="store_true",
                        help="copy current files over the baselines and exit")
    args = parser.parse_args(argv[1:])
    threshold = args.threshold / 100.0

    if args.update:
        os.makedirs(args.baselines, exist_ok=True)
        for path in args.files:
            dest = os.path.join(args.baselines, os.path.basename(path))
            shutil.copyfile(path, dest)
            print(f"blessed {path} -> {dest}")
        return 0

    all_rows, all_failures = [], []
    for path in args.files:
        baseline_path = os.path.join(args.baselines, os.path.basename(path))
        if not os.path.exists(path):
            all_failures.append(f"{path}: missing current bench output")
            continue
        if not os.path.exists(baseline_path):
            all_rows.append((os.path.basename(path), "-", "-", "", "no baseline"))
            continue
        try:
            rows, failures = compare_file(path, baseline_path, threshold)
        except (json.JSONDecodeError, OSError) as e:
            all_failures.append(f"{path}: unreadable ({e})")
            continue
        all_rows.extend(rows)
        all_failures.extend(failures)

    if all_rows:
        print_table(all_rows)
    if all_failures:
        print(f"\n{len(all_failures)} regression(s) past "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for f in all_failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nno regressions past {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
