#!/usr/bin/env python3
"""Self-test for tools/lint_invariants.py: each rule must fire on a minimal
violating fixture, stay quiet on a conforming twin, and the real tree must be
clean. Registered in ctest as `lint_invariants_selftest` (stdlib unittest, no
dependencies)."""

from __future__ import annotations

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import lint_invariants as lint  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class FixtureTree:
    """A throwaway repo skeleton the rule checks run against."""

    def __init__(self) -> None:
        self._tmp = tempfile.TemporaryDirectory(prefix="lint_fixture_")
        self.root = pathlib.Path(self._tmp.name)

    def write(self, rel: str, content: str) -> None:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)

    def cleanup(self) -> None:
        self._tmp.cleanup()


class LintRuleTests(unittest.TestCase):
    def setUp(self) -> None:
        self.tree = FixtureTree()
        self.addCleanup(self.tree.cleanup)

    def rules_fired(self, violations):
        return {v.rule for v in violations}

    # -- wall-clock -----------------------------------------------------------

    def test_wall_clock_fires_in_des_dirs(self) -> None:
        self.tree.write("src/cluster/bad.cpp", """
            #include <chrono>
            std::uint64_t now() {
              return std::chrono::steady_clock::now().time_since_epoch().count();
            }
            std::uint64_t epoch() { return time(nullptr); }
        """)
        violations = lint.check_wall_clock(self.tree.root)
        self.assertEqual(self.rules_fired(violations), {"wall-clock"})
        self.assertEqual(len(violations), 2)

    def test_wall_clock_ignores_comments_and_non_des_code(self) -> None:
        self.tree.write("src/cluster/ok.cpp", """
            // std::chrono::steady_clock is banned here; the DES clock rules.
            std::uint64_t now(const EventLoop& loop) { return loop.now_ns(); }
        """)
        self.tree.write("src/obs/fine.cpp", """
            #include <chrono>
            auto t = std::chrono::steady_clock::now();  // live surface: allowed
        """)
        self.assertEqual(lint.check_wall_clock(self.tree.root), [])

    # -- rng ------------------------------------------------------------------

    def test_rng_fires_outside_util_rng(self) -> None:
        self.tree.write("src/cluster/bad.cpp", """
            #include <cstdlib>
            int jitter() { return rand() % 7; }
            std::random_device entropy;
        """)
        violations = lint.check_rng(self.tree.root)
        self.assertEqual(self.rules_fired(violations), {"rng"})
        self.assertEqual(len(violations), 2)

    def test_rng_exempts_util_rng_and_spares_identifiers(self) -> None:
        self.tree.write("src/util/rng.hpp", """
            #include <random>
            inline std::uint64_t entropy() { std::random_device rd; return rd(); }
        """)
        self.tree.write("src/graph/ok.cpp", """
            int operand(int x) { return x; }      // 'rand(' inside a word
            int y = my_rand(3);                   // not the libc rand()
        """)
        self.assertEqual(lint.check_rng(self.tree.root), [])

    # -- trace-codes ----------------------------------------------------------

    ENUM_HPP = """
        enum class TraceCode : int {
          kJobDispatched = 1,  // job handed to a backend
          kIngestDone = 2,
        };
    """

    def test_trace_codes_fires_on_missing_case(self) -> None:
        self.tree.write("src/cluster/event_loop.hpp", self.ENUM_HPP)
        self.tree.write("src/cluster/event_loop.cpp", """
            const char* trace_code_name(TraceCode code) {
              switch (code) {
                case TraceCode::kJobDispatched: return "dispatch";
              }
              return "?";
            }
        """)
        violations = lint.check_trace_codes(self.tree.root)
        self.assertEqual(self.rules_fired(violations), {"trace-codes"})
        self.assertIn("kIngestDone", violations[0].message)

    def test_trace_codes_quiet_when_covered(self) -> None:
        self.tree.write("src/cluster/event_loop.hpp", self.ENUM_HPP)
        self.tree.write("src/cluster/event_loop.cpp", """
            const char* trace_code_name(TraceCode code) {
              switch (code) {
                case TraceCode::kJobDispatched: return "dispatch";
                case TraceCode::kIngestDone: return "ingest-done";
              }
              return "?";
            }
        """)
        self.assertEqual(lint.check_trace_codes(self.tree.root), [])

    # -- metric-names ---------------------------------------------------------

    def test_metric_names_fires_on_bad_charset(self) -> None:
        self.tree.write("src/obs/bad.cpp", """
            registry.set_counter("graphm.Cluster.events", 1);
            registry.set_gauge("graphm.slo-state", 2);
        """)
        violations = lint.check_metric_names(self.tree.root)
        self.assertEqual(self.rules_fired(violations), {"metric-names"})
        self.assertEqual(len(violations), 2)

    def test_metric_names_accepts_valid_and_prefix_literals(self) -> None:
        self.tree.write("src/obs/ok.cpp", """
            registry.set_counter("graphm.cluster.events", 1);
            std::string prefix = "graphm.slo." + name;  // built-up prefix
        """)
        self.assertEqual(lint.check_metric_names(self.tree.root), [])

    # -- seed-derivation ------------------------------------------------------

    def test_seed_derivation_fires_on_raw_splitmix_and_arithmetic(self) -> None:
        self.tree.write("src/cluster/bad.cpp", """
            util::SplitMix64 rng(seed);
            util::SplitMix64 other(util::derive_stream_seed(seed ^ 17, 1));
        """)
        violations = lint.check_seed_derivation(self.tree.root)
        self.assertEqual(self.rules_fired(violations), {"seed-derivation"})
        self.assertEqual(len(violations), 2)  # raw ctor + seed ^ arithmetic

    def test_seed_derivation_quiet_on_derived_streams(self) -> None:
        self.tree.write("src/cluster/ok.cpp", """
            util::SplitMix64 rng(util::derive_stream_seed(seed, kJitterStream));
        """)
        self.assertEqual(lint.check_seed_derivation(self.tree.root), [])

    # -- the real tree --------------------------------------------------------

    def test_real_tree_is_clean(self) -> None:
        violations = lint.run_all(REPO_ROOT)
        self.assertEqual(violations, [],
                         "\n".join(f"{v.path}:{v.line}: [{v.rule}] {v.message}"
                                   for v in violations))


if __name__ == "__main__":
    unittest.main()
