#!/usr/bin/env python3
"""Project invariant linter: mechanical checks for the contracts the test
suite can't see (docs/static-analysis.md).

Rules
-----
wall-clock        src/cluster/ and src/dist/ are discrete-event-simulated:
                  every timestamp must come from the DES clock. Any wall-clock
                  read (std::chrono::steady_clock / system_clock, time(),
                  gettimeofday, clock_gettime) would break the golden FNV
                  trace pins.
rng               rand()/srand() and raw std::random_device are banned
                  everywhere outside src/util/rng*: all randomness flows from
                  the seeded util::SplitMix64 streams so runs replay
                  bit-identically.
trace-codes       every cluster::TraceCode enumerator must have a case in
                  trace_code_name() — an unnamed code would export as "?" and
                  silently degrade the Perfetto timeline.
metric-names      every string literal that starts with "graphm." must match
                  graphm.[a-z0-9_.]+ — one flat lowercase dotted namespace,
                  so dashboards and validate_trace.py can rely on the charset.
seed-derivation   in src/cluster/ and src/dist/, util::derive_stream_seed is
                  the ONLY way to turn the root seed into a stream seed: a
                  SplitMix64 seeded any other way, or ad-hoc seed arithmetic
                  (seed ^ x, seed + x, ...), silently decorrelates streams
                  (docs/cluster.md, determinism contract).

Exit status: 0 when clean, 1 when any rule fires. Output is one
`path:line: [rule] message` per violation — clickable in editors and CI logs.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import Callable, List, NamedTuple

CXX_SUFFIXES = {".hpp", ".cpp", ".h", ".cc", ".cxx"}
DES_DIRS = ("src/cluster", "src/dist")
RNG_EXEMPT_PREFIX = "src/util/rng"

WALL_CLOCK_PATTERNS = [
    (re.compile(r"std::chrono::steady_clock"), "std::chrono::steady_clock"),
    (re.compile(r"std::chrono::system_clock"), "std::chrono::system_clock"),
    (re.compile(r"\bsteady_clock::now\b"), "steady_clock::now"),
    (re.compile(r"\bsystem_clock::now\b"), "system_clock::now"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0|\))"), "time()"),
]

RNG_PATTERNS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"std::random_device"), "std::random_device"),
]

METRIC_LITERAL = re.compile(r'"(graphm\.[^"]*)"')
METRIC_NAME_OK = re.compile(r"graphm\.[a-z0-9_.]+\Z")

SEED_ARITHMETIC = re.compile(r"\b(?:root_)?seed\b\s*[\^+*%]|[\^+*%]\s*\b(?:root_)?seed\b")
SPLITMIX_CTOR = re.compile(r"\bSplitMix64\b(?:\s+\w+)?\s*[({]")

ENUMERATOR = re.compile(r"^\s*(k[A-Za-z0-9]+)\s*=\s*\d+\s*,", re.MULTILINE)
CASE_LABEL = re.compile(r"case\s+TraceCode::(k[A-Za-z0-9]+)\s*:")


class Violation(NamedTuple):
    path: pathlib.Path
    line: int
    rule: str
    message: str


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blanks // and /* */ comments (and, unless keep_strings, string/char
    literals) while preserving every newline, so line numbers survive."""
    out: List[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'" and not keep_strings:
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def cxx_files(root: pathlib.Path, subdirs: List[str]) -> List[pathlib.Path]:
    files: List[pathlib.Path] = []
    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        files.extend(p for p in sorted(base.rglob("*")) if p.suffix in CXX_SUFFIXES)
    return files


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def check_wall_clock(root: pathlib.Path) -> List[Violation]:
    violations: List[Violation] = []
    for path in cxx_files(root, list(DES_DIRS)):
        code = strip_comments_and_strings(path.read_text())
        flagged_lines = set()  # the patterns overlap; one finding per line
        for pattern, label in WALL_CLOCK_PATTERNS:
            for m in pattern.finditer(code):
                line = line_of(code, m.start())
                if line in flagged_lines:
                    continue
                flagged_lines.add(line)
                violations.append(Violation(
                    path.relative_to(root), line, "wall-clock",
                    f"{label} in DES code — all time must come from the simulated clock"))
    return violations


def check_rng(root: pathlib.Path) -> List[Violation]:
    violations: List[Violation] = []
    for path in cxx_files(root, ["src"]):
        rel = path.relative_to(root).as_posix()
        if rel.startswith(RNG_EXEMPT_PREFIX):
            continue
        code = strip_comments_and_strings(path.read_text())
        for pattern, label in RNG_PATTERNS:
            for m in pattern.finditer(code):
                violations.append(Violation(
                    path.relative_to(root), line_of(code, m.start()), "rng",
                    f"{label} — use the seeded util::SplitMix64 streams (util/rng.hpp)"))
    return violations


def check_trace_codes(root: pathlib.Path) -> List[Violation]:
    header = root / "src/cluster/event_loop.hpp"
    source = root / "src/cluster/event_loop.cpp"
    if not header.is_file() or not source.is_file():
        return []  # fixture trees without the cluster layer skip this rule
    header_text = header.read_text()
    enum_match = re.search(r"enum class TraceCode[^{]*\{(.*?)\};", header_text, re.DOTALL)
    if enum_match is None:
        return [Violation(header.relative_to(root), 1, "trace-codes",
                          "TraceCode enum not found")]
    enumerators = ENUMERATOR.findall(strip_comments_and_strings(enum_match.group(1)))
    cases = set(CASE_LABEL.findall(strip_comments_and_strings(source.read_text())))
    violations: List[Violation] = []
    for name in enumerators:
        if name not in cases:
            line = line_of(header_text, header_text.find(name))
            violations.append(Violation(
                header.relative_to(root), line, "trace-codes",
                f"TraceCode::{name} has no case in trace_code_name() "
                "(src/cluster/event_loop.cpp)"))
    return violations


def check_metric_names(root: pathlib.Path) -> List[Violation]:
    violations: List[Violation] = []
    for path in cxx_files(root, ["src"]):
        text = strip_comments_and_strings(path.read_text(), keep_strings=True)
        for m in METRIC_LITERAL.finditer(text):
            name = m.group(1)
            if not METRIC_NAME_OK.match(name):
                violations.append(Violation(
                    path.relative_to(root), line_of(text, m.start()), "metric-names",
                    f'metric literal "{name}" must match graphm.[a-z0-9_.]+'))
    return violations


def check_seed_derivation(root: pathlib.Path) -> List[Violation]:
    violations: List[Violation] = []
    for path in cxx_files(root, list(DES_DIRS)):
        code = strip_comments_and_strings(path.read_text())
        for m in SPLITMIX_CTOR.finditer(code):
            # The seed expression is everything up to the matching closer;
            # a statement-sized window is enough for the derive check.
            window = code[m.end():m.end() + 200].split(";", 1)[0]
            if "derive_stream_seed" not in window:
                violations.append(Violation(
                    path.relative_to(root), line_of(code, m.start()), "seed-derivation",
                    "SplitMix64 seeded without util::derive_stream_seed — named "
                    "streams are the only sanctioned root-seed derivation"))
        for m in SEED_ARITHMETIC.finditer(code):
            violations.append(Violation(
                path.relative_to(root), line_of(code, m.start()), "seed-derivation",
                "ad-hoc arithmetic on a seed — derive stream seeds with "
                "util::derive_stream_seed only"))
    return violations


CHECKS: List[Callable[[pathlib.Path], List[Violation]]] = [
    check_wall_clock,
    check_rng,
    check_trace_codes,
    check_metric_names,
    check_seed_derivation,
]


def run_all(root: pathlib.Path) -> List[Violation]:
    violations: List[Violation] = []
    for check in CHECKS:
        violations.extend(check(root))
    return violations


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root to lint (default: this repo)")
    args = parser.parse_args(argv)
    violations = run_all(args.root.resolve())
    for v in sorted(violations):
        print(f"{v.path}:{v.line}: [{v.rule}] {v.message}")
    if violations:
        print(f"lint_invariants: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
