#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by the obs exporters.

Checks that the file is the structural subset of the trace-event format that
Perfetto / chrome://tracing actually require to render a timeline:

  * top level is an object with "traceEvents" (list) and "displayTimeUnit";
  * every event carries name/ph/pid/tid and a numeric non-negative ts
    (metadata 'M' events are exempt from ts);
  * ph is one of the phases the exporters emit: X, i, b, e, M;
  * 'X' events carry a non-negative numeric dur;
  * 'i' events carry a scope "s";
  * 'b'/'e' events carry cat and id, and every 'e' closes a matching 'b'
    (same cat + id, begin-before-end) with no async pair left open;
  * 'X' spans nest properly per (pid, tid): sorted by ts, a span must either
    lie fully inside the span on top of the stack or start at-or-after its
    end — partial overlap means the exporter produced a malformed timeline.

Also validates metrics snapshots (the <path>.metrics.json the benches write
next to their traces, or any *.metrics.json passed directly):

  * top level holds "counters", "gauges" and "histograms" objects;
  * every instrument name is dotted lower-case under the graphm. namespace;
  * counters are non-negative integers, gauges are integers;
  * every histogram carries numeric count/mean/p50/p95/p99/max with
    non-negative count and monotone quantiles (p50 <= p95 <= p99 <= ~max).

A sibling <trace>.metrics.json is picked up automatically when present.

Exits 0 and prints a one-line summary on success; prints every violation and
exits 1 otherwise. Usage: validate_trace.py TRACE.json [TRACE2.json ...]
"""

import json
import os
import re
import sys

ALLOWED_PHASES = {"X", "i", "b", "e", "M"}

# Segments are lower-case; scope segments carry dataset names, which may
# contain dashes (e.g. graphm.slo.e2e.rmat-4k.state).
METRIC_NAME = re.compile(r"^graphm(\.[a-z0-9_-]+)+$")

# Live spans are stamped on a nanosecond clock and exported at microsecond
# resolution with three decimals; allow half an exported tick of slop before
# calling two spans overlapping rather than nested.
EPSILON_US = 0.0005


def validate(path):
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: not readable JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object"]
    if "displayTimeUnit" not in doc:
        err('missing "displayTimeUnit"')
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return errors + [f'{path}: "traceEvents" must be a list']
    if not events:
        err("traceEvents is empty")

    spans = {}  # (pid, tid) -> [(ts, dur, name)]
    open_async = {}  # (cat, id) -> count of open begins
    for i, ev in enumerate(events):
        where = f"event #{i}"
        if not isinstance(ev, dict):
            err(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ALLOWED_PHASES:
            err(f"{where}: bad ph {ph!r}")
            continue
        if ph == "M":
            # Process-level metadata (process_name) carries no tid;
            # thread-level metadata must say which thread it names.
            required = ("name", "pid")
            if ev.get("name") in ("thread_name", "thread_sort_index"):
                required = ("name", "pid", "tid")
        else:
            required = ("name", "pid", "tid")
        for key in required:
            if key not in ev:
                err(f"{where} (ph={ph}): missing {key!r}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            err(f"{where} (ph={ph}): bad ts {ts!r}")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                err(f"{where}: 'X' with bad dur {dur!r}")
                continue
            spans.setdefault((ev.get("pid"), ev.get("tid")), []).append(
                (ts, dur, ev.get("name", "?"))
            )
        elif ph == "i":
            if ev.get("s") not in ("t", "p", "g"):
                err(f"{where}: 'i' with bad scope {ev.get('s')!r}")
        elif ph in ("b", "e"):
            if "cat" not in ev or "id" not in ev:
                err(f"{where}: '{ph}' missing cat/id")
                continue
            key = (ev["cat"], ev["id"])
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                if open_async.get(key, 0) <= 0:
                    err(f"{where}: 'e' for {key} with no open 'b'")
                else:
                    open_async[key] -= 1

    for key, count in sorted(open_async.items()):
        if count != 0:
            err(f"async pair {key} left open ({count} unmatched 'b')")

    # Monotone nesting per track: walking spans in start order, each span is
    # either contained in the innermost open span or starts after it ends.
    for (pid, tid), track in sorted(spans.items(), key=lambda kv: str(kv[0])):
        track.sort(key=lambda s: (s[0], -s[1]))
        stack = []
        for ts, dur, name in track:
            while stack and ts >= stack[-1][0] + stack[-1][1] - EPSILON_US:
                stack.pop()
            if stack:
                parent_end = stack[-1][0] + stack[-1][1]
                if ts + dur > parent_end + EPSILON_US:
                    err(
                        f"track (pid={pid}, tid={tid}): span {name!r} "
                        f"[{ts}, {ts + dur}] partially overlaps "
                        f"{stack[-1][2]!r} [{stack[-1][0]}, {parent_end}]"
                    )
                    continue
            stack.append((ts, dur, name))

    return errors


def validate_metrics(path):
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: not readable JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            err(f'missing or non-object "{section}"')
    if errors:
        return errors

    names = []
    for section in ("counters", "gauges", "histograms"):
        names.extend(doc[section])
    if not names:
        err("snapshot is empty (no instruments in any section)")
    for name in names:
        if not METRIC_NAME.match(name):
            err(f"instrument {name!r} outside the graphm. dotted namespace")

    for name, v in doc["counters"].items():
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            err(f"counter {name!r}: not a non-negative integer ({v!r})")
    for name, v in doc["gauges"].items():
        if not isinstance(v, int) or isinstance(v, bool):
            err(f"gauge {name!r}: not an integer ({v!r})")
    for name, h in doc["histograms"].items():
        if not isinstance(h, dict):
            err(f"histogram {name!r}: not an object")
            continue
        bad_field = False
        for field in ("count", "mean", "p50", "p95", "p99", "max"):
            if not isinstance(h.get(field), (int, float)) or isinstance(
                h.get(field), bool
            ):
                err(f"histogram {name!r}: missing/non-numeric {field!r}")
                bad_field = True
        if bad_field:
            continue
        if h["count"] < 0:
            err(f"histogram {name!r}: negative count")
        if not (h["p50"] <= h["p95"] <= h["p99"]):
            err(
                f"histogram {name!r}: quantiles not monotone "
                f"(p50={h['p50']}, p95={h['p95']}, p99={h['p99']})"
            )
        # Quantiles are bucket midpoints, so p99 may sit up to half a bucket
        # (~3.1% relative width) past the exact max.
        if h["count"] > 0 and h["p99"] > h["max"] * 1.04:
            err(f"histogram {name!r}: p99 {h['p99']} past max {h['max']}")

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        if path.endswith(".metrics.json"):
            checks = [(path, validate_metrics, "instruments")]
        else:
            checks = [(path, validate, "events")]
            sibling = path + ".metrics.json"
            if os.path.exists(sibling):
                checks.append((sibling, validate_metrics, "instruments"))
        for check_path, check, unit in checks:
            errors = check(check_path)
            if errors:
                failed = True
                for e in errors:
                    print(e, file=sys.stderr)
                continue
            with open(check_path, "r", encoding="utf-8") as f:
                doc = json.load(f)
            if unit == "events":
                n = len(doc["traceEvents"])
            else:
                n = sum(len(doc[s]) for s in ("counters", "gauges", "histograms"))
            print(f"{check_path}: OK ({n} {unit})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
