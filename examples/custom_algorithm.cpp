// Custom algorithm: GraphM imposes no programming model of its own — any
// StreamingAlgorithm runs unchanged under every scheme. This example
// implements *degree-weighted label propagation* (a simple community
// detection pass, the Facebook/Giraph-style workload the paper's introduction
// cites) and runs four differently-seeded instances concurrently through one
// shared graph. It also overrides process_edge_block — optional (the default
// falls back to process_edge) but worth doing for any hot algorithm; see
// docs/streaming.md for the contract.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <thread>

#include "algos/algorithm.hpp"
#include "graph/generators.hpp"
#include "graphm/graphm.hpp"
#include "grid/grid_store.hpp"
#include "grid/stream_engine.hpp"

using namespace graphm;

namespace {

// Each vertex adopts the smallest label among itself and its in-neighbors,
// weighted by hop count: labels stop spreading after `max_hops` rounds.
class LabelPropagation final : public algos::StreamingAlgorithm {
 public:
  explicit LabelPropagation(std::uint32_t max_hops) : max_hops_(max_hops) {}

  [[nodiscard]] std::string name() const override { return "LabelProp"; }

  void init(graph::VertexId n, const std::vector<std::uint32_t>&,
            sim::MemoryTracker* tracker) override {
    labels_.resize(n);
    std::iota(labels_.begin(), labels_.end(), graph::VertexId{0});
    next_ = labels_;
    active_ = util::AtomicBitmap(n);
    active_.set_all();
    tracking_ = sim::TrackedAllocation(tracker, sim::MemoryCategory::kJobSpecific,
                                       2 * n * sizeof(graph::VertexId));
  }

  void iteration_start(std::uint64_t) override {
    next_ = labels_;
    changed_ = false;
  }

  [[nodiscard]] const util::AtomicBitmap& active_vertices() const override { return active_; }

  void process_edge(const graph::Edge& e) override {
    if (labels_[e.src] < next_[e.dst]) {
      next_[e.dst] = labels_[e.src];
      changed_ = true;
    }
  }

  // The devirtualized hot loop: one virtual dispatch per block, one frontier
  // word per 64 sources. algos::gated_block_loop supplies the canonical
  // gate-and-count loop; the lambda is this algorithm's relaxation, and it
  // must relax exactly the edges the per-edge fallback would.
  graph::EdgeCount process_edge_block(const graph::Edge* edges, graph::EdgeCount n,
                                      const util::AtomicBitmap& active) override {
    return algos::gated_block_loop(edges, n, active, [this](const graph::Edge& e) {
      process_edge(e);
    });
  }

  void iteration_end() override {
    labels_.swap(next_);
    ++hops_;
    done_ = !changed_ || hops_ >= max_hops_;
  }

  [[nodiscard]] bool done() const override { return done_; }

  [[nodiscard]] std::pair<const void*, std::size_t> values_span() const override {
    return {labels_.data(), labels_.size() * sizeof(graph::VertexId)};
  }
  [[nodiscard]] std::vector<double> result() const override {
    return {labels_.begin(), labels_.end()};
  }

  [[nodiscard]] std::size_t num_communities() const {
    std::vector<graph::VertexId> sorted(labels_);
    std::sort(sorted.begin(), sorted.end());
    return std::unique(sorted.begin(), sorted.end()) - sorted.begin();
  }

 private:
  std::uint32_t max_hops_;
  std::uint32_t hops_ = 0;
  bool changed_ = false;
  bool done_ = false;
  std::vector<graph::VertexId> labels_;
  std::vector<graph::VertexId> next_;
  util::AtomicBitmap active_;
  sim::TrackedAllocation tracking_;
};

}  // namespace

int main() {
  const auto graph = graph::generate_rmat(20'000, 200'000, /*seed=*/5);
  const std::string path = std::string(std::getenv("TMPDIR") ? std::getenv("TMPDIR") : "/tmp") +
                           "/graphm_custom";
  grid::GridStore::preprocess(graph, 8, path);
  const grid::GridStore store = grid::GridStore::open(path);

  sim::Platform platform;
  core::GraphM graphm(store, platform);
  graphm.init();
  const grid::StreamEngine engine(store, platform);

  // Four analyses at different propagation depths share one graph copy.
  const std::uint32_t depths[] = {1, 2, 4, 8};
  std::vector<std::unique_ptr<LabelPropagation>> jobs;
  std::vector<std::unique_ptr<grid::PartitionLoader>> loaders;
  for (std::uint32_t j = 0; j < 4; ++j) {
    jobs.push_back(std::make_unique<LabelPropagation>(depths[j]));
    loaders.push_back(graphm.make_loader(j));
  }
  std::vector<std::thread> threads;
  for (std::uint32_t j = 0; j < 4; ++j) {
    threads.emplace_back([&, j] { engine.run_job(j, *jobs[j], *loaders[j]); });
  }
  for (auto& t : threads) t.join();

  for (std::uint32_t j = 0; j < 4; ++j) {
    std::printf("depth %u: %zu communities\n", depths[j], jobs[j]->num_communities());
  }
  const auto stats = graphm.controller().stats();
  std::printf("shared partition loads: %llu, attaches: %llu, chunk barriers: %llu\n",
              static_cast<unsigned long long>(stats.partition_loads),
              static_cast<unsigned long long>(stats.attaches),
              static_cast<unsigned long long>(stats.chunk_barriers));
  return 0;
}
