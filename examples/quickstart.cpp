// Quickstart: run two concurrent PageRank jobs over one shared graph through
// GraphM, mirroring the paper's Figure 6 integration:
//   1. preprocess the graph into the engine's grid format,
//   2. GraphM.Init() labels the partitions into chunks,
//   3. each job streams through a Sharing() loader instead of the engine's
//      own Load() — one copy of the graph serves both jobs.
#include <cstdio>
#include <thread>

#include "algos/pagerank.hpp"
#include "graph/generators.hpp"
#include "graphm/graphm.hpp"
#include "grid/grid_store.hpp"
#include "grid/stream_engine.hpp"

using namespace graphm;

int main() {
  // A small synthetic social network (RMAT: skewed degrees like real graphs).
  const auto graph = graph::generate_rmat(10'000, 120'000, /*seed=*/1);
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 1. Convert to the engine's on-disk format (GridGraph-style P x P grid).
  const std::string path = std::string(std::getenv("TMPDIR") ? std::getenv("TMPDIR") : "/tmp") +
                           "/graphm_quickstart";
  grid::GridStore::preprocess(graph, /*num_partitions=*/8, path);
  const grid::GridStore store = grid::GridStore::open(path);

  // 2. Bring up the simulated platform and GraphM.
  sim::Platform platform;
  core::GraphM graphm(store, platform);
  graphm.init();
  std::printf("GraphM chunk size (Formula 1): %zu bytes, metadata %.1f KB\n",
              graphm.chunk_bytes(), graphm.metadata_bytes() / 1024.0);

  // 3. Two concurrent jobs share the graph through Sharing() loaders.
  const grid::StreamEngine engine(store, platform);
  algos::PageRank job0(/*damping=*/0.85, /*iterations=*/10);
  algos::PageRank job1(/*damping=*/0.50, /*iterations=*/10);
  auto loader0 = graphm.make_loader(0);
  auto loader1 = graphm.make_loader(1);

  std::thread t0([&] { engine.run_job(0, job0, *loader0); });
  std::thread t1([&] { engine.run_job(1, job1, *loader1); });
  t0.join();
  t1.join();

  const auto stats = graphm.controller().stats();
  std::printf("partition loads: %llu, attaches served from the shared buffer: %llu\n",
              static_cast<unsigned long long>(stats.partition_loads),
              static_cast<unsigned long long>(stats.attaches));

  const auto ranks = job0.result();
  std::size_t best = 0;
  for (std::size_t v = 1; v < ranks.size(); ++v) {
    if (ranks[v] > ranks[best]) best = v;
  }
  std::printf("top-ranked vertex (d=0.85): %zu with rank %.6f\n", best, ranks[best]);
  return 0;
}
