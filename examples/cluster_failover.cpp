// Crash-and-failover demo: two replica backends serve one dataset; a fault
// plan crashes replica 0 mid-run for a fixed window. The heartbeat monitor
// walks it alive -> suspect -> dead, its queue drains to replica 1,
// dispatched-but-dead jobs are redispatched with backoff, and the backend
// rejoins once the window clears — all on the simulated clock, so the printed
// trace replays bit-identically at a fixed seed.
#include <cstdio>

#include "cluster/cluster_service.hpp"
#include "cluster/faults.hpp"
#include "graph/generators.hpp"
#include "runtime/workloads.hpp"
#include "util/table_printer.hpp"

using namespace graphm;
using namespace graphm::cluster;

int main() {
  const auto g = graph::generate_rmat(1 << 11, 1 << 14, 42);

  std::vector<BackendConfig> backends(2);
  for (std::uint32_t b = 0; b < 2; ++b) {
    backends[b].dataset = "social";
    backends[b].num_nodes = 4;
    backends[b].replica_id = b;
  }
  ClusterServiceConfig config;
  config.des.seed = 0xFA11;
  config.des.record_trace = true;  // keep the full trace for printing
  ClusterService service(g, backends, config);

  const std::size_t num_jobs = 10;
  const auto specs = runtime::paper_mix(num_jobs, g.num_vertices(), 9);
  std::vector<Submission> submissions(num_jobs);
  for (std::size_t j = 0; j < num_jobs; ++j) {
    submissions[j].spec = specs[j];
    submissions[j].arrival_ns = j * 1'000'000;  // one arrival per sim ms
    submissions[j].dataset = "social";
  }

  // Replica 0 crashes half a millisecond in and stays down for 6 ms — past
  // the monitor's dead_after threshold, so it is declared dead (queue drains
  // to replica 1) and later rejoins.
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.backend = 0;
  crash.at_ns = 500'000;
  crash.duration_ns = 6'000'000;
  plan.events.push_back(crash);

  std::printf("replaying %zu jobs against 2 replicas; crash on replica 0 at "
              "0.5 ms for 6 ms\n\n",
              num_jobs);
  const auto stats = service.run(submissions, plan);

  // The fault/failover milestones of the trace, in simulated-time order.
  std::printf("fault + failover trace (job completions elided):\n");
  for (const TraceRecord& r : service.last_trace()) {
    switch (r.code) {
      case TraceCode::kFaultInjected:
      case TraceCode::kFaultCleared:
        std::printf("  %8.3f ms  %-11s backend=%u kind=%s\n", r.t_ns / 1e6,
                    trace_code_name(r.code), r.actor,
                    fault_kind_name(static_cast<FaultKind>(r.detail)));
        break;
      case TraceCode::kBackendSuspect:
      case TraceCode::kBackendRejoined:
        std::printf("  %8.3f ms  %-11s backend=%u\n", r.t_ns / 1e6,
                    trace_code_name(r.code), r.actor);
        break;
      case TraceCode::kBackendDead:
        std::printf("  %8.3f ms  %-11s backend=%u queue-drained=%llu\n", r.t_ns / 1e6,
                    trace_code_name(r.code), r.actor,
                    static_cast<unsigned long long>(r.detail));
        break;
      case TraceCode::kJobFailed:
      case TraceCode::kJobRedispatched:
      case TraceCode::kJobShed:
        std::printf("  %8.3f ms  %-11s job=%u backend=%u attempt=%llu\n", r.t_ns / 1e6,
                    trace_code_name(r.code), r.job, r.actor,
                    static_cast<unsigned long long>(r.detail));
        break;
      default:
        break;  // dispatch/superstep/complete records: too chatty to print
    }
  }

  const FaultStats& fs = service.last_fault_stats();
  std::printf("\nfailovers=%llu redispatched=%llu retries=%llu rejoins=%llu shed=%llu\n\n",
              static_cast<unsigned long long>(fs.failovers),
              static_cast<unsigned long long>(fs.redispatched_jobs),
              static_cast<unsigned long long>(fs.retries),
              static_cast<unsigned long long>(fs.rejoins),
              static_cast<unsigned long long>(fs.failover_shed));

  util::TablePrinter table("per-replica outcome (all jobs survive the crash)");
  table.set_header({"replica", "completed", "failed", "redispatched in", "crashes"});
  for (std::size_t b = 0; b < stats.size(); ++b) {
    const BackendStats& s = stats[b];
    table.add_row({std::to_string(s.replica_id), std::to_string(s.completed),
                   std::to_string(s.failed), std::to_string(s.redispatched_in),
                   std::to_string(s.crashes)});
  }
  table.print();
  return 0;
}
