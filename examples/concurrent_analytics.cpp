// Concurrent analytics: the paper's motivating scenario — a mixed stream of
// analysis jobs (WCC / PageRank / SSSP / BFS with randomized parameters)
// arriving as a Poisson process over one social graph. Runs the same job set
// under the three execution schemes and prints the figure-9 style comparison.
#include <cstdio>

#include "graph/datasets.hpp"
#include "grid/grid_store.hpp"
#include "runtime/executor.hpp"
#include "runtime/job_queue.hpp"
#include "runtime/workloads.hpp"
#include "util/table_printer.hpp"

using namespace graphm;

int main() {
  const double scale = 0.08;  // small enough to finish in seconds
  const grid::GridStore store = grid::open_dataset_grid("twitter_s", 8, scale);

  const std::size_t num_jobs = 12;
  const auto jobs = runtime::paper_mix(num_jobs, store.meta().num_vertices, /*seed=*/2024);
  std::printf("submitting %zu jobs:\n", jobs.size());
  for (const auto& job : jobs) std::printf("  %s\n", job.label().c_str());

  runtime::ExecutorConfig config;
  config.arrival_offsets_ns = runtime::poisson_arrivals(num_jobs, /*lambda=*/16.0,
                                                        /*mean_scale_ns=*/5'000'000, 7);

  util::TablePrinter table("concurrent analytics: 12 mixed jobs on twitter_s");
  table.set_header({"scheme", "total s", "disk GB", "LLC miss %", "peak mem MB"});
  for (const auto scheme : {runtime::Scheme::kSequential, runtime::Scheme::kConcurrent,
                            runtime::Scheme::kShared}) {
    const auto metrics = runtime::run_jobs(scheme, store, jobs, config);
    table.add_row({metrics.scheme,
                   util::TablePrinter::fmt(metrics.total_time_ns() / 1e9, 3),
                   util::TablePrinter::fmt(metrics.io.disk_read_bytes / 1e9, 3),
                   util::TablePrinter::fmt(100.0 * metrics.llc.miss_rate(), 1),
                   util::TablePrinter::fmt(metrics.peak_memory_bytes / 1e6, 1)});
  }
  table.print();
  return 0;
}
