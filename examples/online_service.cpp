// Online analytics service: the Figure-2 scenario end to end. A compressed
// week of diurnal traffic (synthesize_week_trace) drives an open-loop stream
// of mixed WCC/PageRank/SSSP/BFS jobs into the always-on JobService; jobs
// arriving while the sharing group is mid-stream attach to the resident
// partition instead of reloading it. The report is what a production service
// is judged by: per-job latency percentiles, queue wait, sustained
// throughput, and the sharing-group economy.
//
// GRAPHM_TRACE=<path> turns the flight recorder on and writes the run's
// Perfetto-loadable timeline there, plus a metrics snapshot next to it
// (<path>.metrics.json) — including the graphm.slo.* instruments from the
// tracked latency objective below.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "grid/grid_store.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "runtime/job_queue.hpp"
#include "runtime/workloads.hpp"
#include "service/job_service.hpp"
#include "util/table_printer.hpp"

using namespace graphm;

int main() {
  const char* trace_path = obs::trace_env_path();
  if (trace_path != nullptr) obs::Tracer::global().set_enabled(true);
  const auto g = graph::generate_rmat(1 << 12, 1 << 15, 2026);
  const std::string path = std::string(std::getenv("TMPDIR") ? std::getenv("TMPDIR") : "/tmp") +
                           "/graphm_online_service_grid";
  grid::GridStore::preprocess(g, 8, path);
  const grid::GridStore store = grid::GridStore::open(path);

  // A compressed week: each trace hour replays in 1 ms, the concurrency
  // level of the hour decides how many jobs are submitted.
  const std::size_t num_jobs = 16;
  const auto trace = runtime::synthesize_week_trace(/*hours=*/72, /*seed=*/7);
  const auto offsets =
      runtime::trace_to_arrivals(trace, /*job_duration_hours=*/12.0, /*hour_ns=*/1'000'000,
                                 num_jobs);
  const auto jobs = runtime::paper_mix(num_jobs, g.num_vertices(), 99);

  service::ServiceConfig config;
  config.mode = service::ExecMode::kShared;
  config.policy = service::AdmissionPolicy::kImmediate;
  config.workers = 16;
  // Track (but do not act on — the policy stays kImmediate) a p99 latency
  // objective, so the metrics snapshot carries the burn-rate instruments.
  obs::SloSpec objective;
  objective.name = "e2e";
  objective.threshold_ns = 250'000'000;  // generous: the demo should stay Healthy
  config.objectives = {objective};
  service::JobService svc(store, config, "rmat-4k");

  std::printf("replaying %zu mixed jobs over a compressed week trace...\n", jobs.size());
  std::vector<service::JobHandle> handles;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const std::uint64_t offset = j < offsets.size() ? offsets[j] : 0;
    while (svc.now_ns() < offset) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    handles.push_back(svc.submit(jobs[j]));
  }
  svc.drain();

  const auto stats = svc.stats();
  const auto sharing = svc.sharing_stats();

  util::TablePrinter table("online service: per-job latency (ms)");
  table.set_header({"metric", "p50", "p95", "p99", "max"});
  const auto row = [&](const char* name, const service::LatencySummary& s) {
    table.add_row({name, util::TablePrinter::fmt(s.p50_ns / 1e6, 2),
                   util::TablePrinter::fmt(s.p95_ns / 1e6, 2),
                   util::TablePrinter::fmt(s.p99_ns / 1e6, 2),
                   util::TablePrinter::fmt(s.max_ns / 1e6, 2)});
  };
  row("queue wait", stats.queue_wait);
  row("stream time", stats.stream_time);
  row("e2e latency", stats.e2e);
  row("e2e modeled", stats.modeled.e2e);
  table.print();

  std::printf("completed %llu/%llu jobs, %.1f jobs/s wall / %.1f jobs/s modeled, "
              "peak concurrency %u\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.submitted), stats.sustained_jobs_per_s,
              stats.modeled.sustained_jobs_per_s, stats.peak_concurrency);
  std::printf("sharing groups: %zu; loads %llu, attaches %llu (%llu mid-round)\n",
              stats.groups.size(), static_cast<unsigned long long>(sharing.partition_loads),
              static_cast<unsigned long long>(sharing.attaches),
              static_cast<unsigned long long>(sharing.mid_round_attaches));
  for (const auto& group : stats.groups) {
    std::printf("  group %llu [%s]: %u jobs, peak %u, %.2f ms, loads %llu, attaches %llu\n",
                static_cast<unsigned long long>(group.group_id), group.dataset.c_str(),
                group.jobs_served, group.peak_concurrency,
                (group.closed_ns - group.opened_ns) / 1e6,
                static_cast<unsigned long long>(group.partition_loads),
                static_cast<unsigned long long>(group.attaches));
  }

  if (trace_path != nullptr) {
    if (!obs::export_tracer(trace_path, obs::Tracer::global(),
                            "graphm online service (live clock)")) {
      std::fprintf(stderr, "cannot write %s\n", trace_path);
      return 1;
    }
    const std::string metrics_path = std::string(trace_path) + ".metrics.json";
    std::FILE* mf = std::fopen(metrics_path.c_str(), "w");
    if (mf != nullptr) {
      const std::string json = svc.metrics_json();
      std::fwrite(json.data(), 1, json.size(), mf);
      std::fclose(mf);
    }
    std::printf("wrote %s (%llu dropped)\n", trace_path,
                static_cast<unsigned long long>(obs::Tracer::global().dropped()));
  }
  return 0;
}
