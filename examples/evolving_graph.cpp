// Evolving graph: Section 3.3.2's consistent snapshots.
//   * a *mutation* is private to the job that made it;
//   * an *update* is visible only to jobs submitted afterwards;
//   * earlier jobs keep computing on their original snapshot.
// This example mirrors the paper's Figure 7 scenario with two jobs.
#include <cstdio>

#include "graph/generators.hpp"
#include "graphm/graphm.hpp"
#include "grid/grid_store.hpp"

using namespace graphm;

int main() {
  const auto graph = graph::generate_rmat(2'000, 20'000, /*seed=*/3);
  const std::string path = std::string(std::getenv("TMPDIR") ? std::getenv("TMPDIR") : "/tmp") +
                           "/graphm_evolving";
  grid::GridStore::preprocess(graph, 4, path);
  const grid::GridStore store = grid::GridStore::open(path);

  sim::Platform platform;
  core::GraphM graphm(store, platform);
  graphm.init();
  auto& controller = graphm.controller();

  // Job 1 is submitted first (Figure 7's "job 1").
  controller.register_job(1);
  const auto original = controller.chunk_content(1, /*pid=*/0, /*chunk=*/2);
  std::printf("chunk (0,2): %zu edges, first weight %.1f\n", original.size(),
              original.empty() ? 0.0 : original[0].weight);

  // A graph *update* arrives: edge weights change (e.g. road costs). Only
  // jobs submitted after it will see the new values.
  auto updated = original;
  for (auto& e : updated) e.weight *= 2.0f;
  controller.apply_update(0, 2, updated);

  // Job 2 is submitted after the update (Figure 7's "job 2").
  controller.register_job(2);

  const auto view1 = controller.chunk_content(1, 0, 2);
  const auto view2 = controller.chunk_content(2, 0, 2);
  std::printf("job 1 (pre-update snapshot) first weight:  %.1f\n", view1[0].weight);
  std::printf("job 2 (post-update snapshot) first weight: %.1f\n", view2[0].weight);

  // Job 2 additionally *mutates* the chunk for a what-if analysis; job 1's
  // view is untouched, and even job 2's update-level view stays intact for
  // other jobs.
  auto mutated = view2;
  for (auto& e : mutated) e.weight += 100.0f;
  controller.apply_mutation(2, 0, 2, mutated);
  std::printf("job 2 after private mutation:              %.1f\n",
              controller.chunk_content(2, 0, 2)[0].weight);
  controller.register_job(3);
  std::printf("job 3 (sees update, not the mutation):     %.1f\n",
              controller.chunk_content(3, 0, 2)[0].weight);

  // Snapshot copies are released as their jobs finish.
  std::printf("live snapshot chunks before finishing: %zu\n",
              controller.snapshot_chunks_live());
  controller.job_finished(1);
  controller.job_finished(2);
  controller.job_finished(3);
  std::printf("live snapshot chunks after finishing:  %zu\n",
              controller.snapshot_chunks_live());
  return 0;
}
